(* nakamoto-consistency: command-line front end for the analysis library.

   Subcommands map one-to-one onto the paper's artifacts: figure1, figure2,
   table1, remark1 regenerate the evaluation; bound/numax query the bounds;
   simulate/montecarlo run the Delta-delay simulator; verify audits the
   Lemma 2-8 implication chain. *)

open Cmdliner
module Core = Nakamoto_core
module Sim = Nakamoto_sim
module Campaign = Nakamoto_campaign
module Serve = Nakamoto_serve
module Surface = Nakamoto_surface

(* NAKAMOTO_TELEMETRY_CLOCK=zero freezes every span at 0s — the hook
   behind the byte-stable golden smoke checks. *)
let telemetry_clock_env () =
  match Sys.getenv_opt "NAKAMOTO_TELEMETRY_CLOCK" with
  | Some "zero" -> Some (fun () -> 0.)
  | _ -> None

(* Shared argument definitions. *)

let nu_arg =
  let doc = "Adversarial fraction of computing power, in (0, 1/2)." in
  Arg.(value & opt float 0.25 & info [ "nu" ] ~docv:"NU" ~doc)

let c_arg ~default =
  let doc = "The ratio c = 1/(p n Delta): expected network delays per block." in
  Arg.(value & opt float default & info [ "c" ] ~docv:"C" ~doc)

let n_arg =
  let doc = "Number of miners (analysis-side, real-valued)." in
  Arg.(value & opt float 1e5 & info [ "n" ] ~docv:"N" ~doc)

let delta_arg =
  let doc = "Maximum adversarial message delay Delta, in rounds." in
  Arg.(value & opt float 1e13 & info [ "delta" ] ~docv:"DELTA" ~doc)

let seed_arg =
  let doc = "PRNG seed (simulations are reproducible given the seed)." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let csv_arg =
  let doc = "Also write the table as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH" ~doc)

let verbose_arg =
  let doc = "Enable debug logging of reorgs and adversarial releases." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logging verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

let emit_table ?csv table =
  print_string (Nakamoto_numerics.Table.render table);
  match csv with
  | None -> ()
  | Some path ->
    Nakamoto_numerics.Table.save_csv table ~path;
    Printf.printf "(csv written to %s)\n" path

(* bound: all thresholds at one nu. *)

let bound_cmd =
  let run nu delta =
    if not (nu > 0. && nu < 0.5) then `Error (false, "--nu must lie in (0, 1/2)")
    else begin
      let neat = Core.Bounds.neat_c_min ~nu in
      Printf.printf "nu = %g (mu = %g), Delta = %g\n" nu (1. -. nu) delta;
      Printf.printf "  neat bound (Thm 2):      c > %.6f\n" neat;
      Printf.printf "  Thm 2 exact (eps2->0):   c >= %.6f\n"
        (Core.Bounds.theorem2_c_min_optimal ~nu ~delta ~eps2:1e-9);
      let c_pss =
        (* closed-form PSS: c >= 2 (1-nu)^2 / (1 - 2 nu) *)
        2. *. (1. -. nu) *. (1. -. nu) /. (1. -. (2. *. nu))
      in
      Printf.printf "  PSS consistency (closed): c > %.6f\n" c_pss;
      let c_attack = 1. /. ((1. /. nu) -. (1. /. (1. -. nu))) in
      Printf.printf "  PSS attack succeeds for: c < %.6f\n" c_attack;
      `Ok ()
    end
  in
  let term = Term.(ret (const run $ nu_arg $ delta_arg)) in
  Cmd.v
    (Cmd.info "bound" ~doc:"Print all consistency thresholds at a given nu.")
    term

(* numax: all curves at one c. *)

let numax_cmd =
  let run c n delta =
    if c <= 0. then `Error (false, "--c must be positive")
    else begin
      let r = Core.Figure1.compute_row ~n ~delta ~c () in
      Printf.printf "c = %g (n = %g, Delta = %g)\n" c n delta;
      Printf.printf "  ours (neat):      nu_max = %.6f\n" r.Core.Figure1.ours_neat;
      Printf.printf "  Theorem 1 exact:  nu_max = %.6f\n" r.Core.Figure1.theorem1_exact;
      Printf.printf "  Theorem 2 exact:  nu_max = %.6f\n" r.Core.Figure1.theorem2_exact;
      Printf.printf "  PSS consistency:  nu_max = %.6f\n" r.Core.Figure1.pss_consistency;
      Printf.printf "  PSS attack above: nu     = %.6f\n" r.Core.Figure1.pss_attack;
      `Ok ()
    end
  in
  let term = Term.(ret (const run $ c_arg ~default:3. $ n_arg $ delta_arg)) in
  Cmd.v (Cmd.info "numax" ~doc:"Print all tolerable-nu curves at a given c.") term

(* figure1 *)

let figure1_cmd =
  let run n delta csv plot =
    let rows = Core.Figure1.series ~n ~delta ~c_grid:(Core.Figure1.default_c_grid ()) () in
    emit_table ?csv (Core.Figure1.to_table rows);
    if plot then print_string (Core.Figure1.to_plot rows);
    Printf.printf "shape invariants hold: %b\n"
      (Core.Figure1.shape_invariants_hold rows)
  in
  let plot_arg =
    Arg.(value & flag & info [ "plot" ] ~doc:"Render the ASCII plot too.")
  in
  let term = Term.(const run $ n_arg $ delta_arg $ csv_arg $ plot_arg) in
  Cmd.v (Cmd.info "figure1" ~doc:"Regenerate the paper's Figure 1 series.") term

(* figure2 *)

let figure2_cmd =
  let run delta alpha dot =
    if dot then print_string (Core.Figure2.dot ~delta ~alpha)
    else begin
      let censuses =
        List.map (fun d -> Core.Figure2.census ~delta:d ~alpha) [ 2; 3; 4; 8; delta ]
      in
      emit_table (Core.Figure2.to_table censuses)
    end
  in
  let delta_small =
    Arg.(value & opt int 5
         & info [ "delta" ] ~docv:"DELTA" ~doc:"Delay bound for the explicit chain.")
  in
  let alpha_arg =
    Arg.(value & opt float 0.2
         & info [ "alpha" ] ~docv:"ALPHA" ~doc:"Per-round honest success probability.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz DOT instead of the census.")
  in
  let term = Term.(const run $ delta_small $ alpha_arg $ dot_arg) in
  Cmd.v
    (Cmd.info "figure2" ~doc:"Audit / render the suffix Markov chain (Figure 2).")
    term

(* table1 *)

let table1_cmd =
  let run nu c n delta csv =
    let p = Core.Params.of_c ~n ~delta ~nu ~c in
    emit_table ?csv (Core.Table1.for_params p);
    Printf.printf "identities hold: %b\n" (Core.Table1.identities_hold p)
  in
  let term =
    Term.(const run $ nu_arg $ c_arg ~default:3. $ n_arg $ delta_arg $ csv_arg)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print Table I with computed values.") term

(* remark1 *)

let remark1_cmd =
  let run () =
    let t =
      Nakamoto_numerics.Table.create
        ~title:"Remark 1: (delta1, delta2) regimes at Delta = 1e13"
        ~columns:[ "delta1"; "delta2"; "nu lower"; "1/2 - nu upper"; "inflation - 1" ]
    in
    List.iter
      (fun (r : Core.Theorem2.regime) ->
        Nakamoto_numerics.Table.add_row t
          [
            Nakamoto_numerics.Table.Float r.delta1;
            Nakamoto_numerics.Table.Float r.delta2;
            Nakamoto_numerics.Table.Log10 r.log_nu_lo;
            Nakamoto_numerics.Table.Sci r.half_minus_nu_hi;
            Nakamoto_numerics.Table.Sci (r.inflation -. 1.);
          ])
      (Core.Theorem2.remark1_rows ());
    emit_table t
  in
  Cmd.v
    (Cmd.info "remark1" ~doc:"Print the Remark 1 nu-range / inflation table.")
    Term.(const run $ const ())

(* simulate *)

let simulate_cmd =
  let run scenario nu seed verbose =
    setup_logging verbose;
    let cfg =
      match scenario with
      | "honest" -> Sim.Scenarios.honest_baseline ~seed
      | "safe" -> Sim.Scenarios.safe_zone ~seed ~nu
      | "attack" -> Sim.Scenarios.attack_zone ~seed ~nu
      | "split" -> Sim.Scenarios.split_world ~seed
      | "selfish" -> Sim.Scenarios.selfish ~seed ~nu
      | other -> failwith (Printf.sprintf "unknown scenario %S" other)
    in
    let r = Sim.Execution.run cfg in
    let cons = Sim.Metrics.check_consistency r in
    let growth = Sim.Metrics.chain_growth r in
    Printf.printf "scenario %s: n=%d nu=%.3f c=%.4f Delta=%d rounds=%d seed=%Ld\n"
      scenario cfg.Sim.Config.n cfg.nu (Sim.Config.c cfg) cfg.delta cfg.rounds
      cfg.seed;
    Printf.printf "  honest blocks         %d\n" r.honest_blocks;
    Printf.printf "  adversary blocks      %d\n" r.adversary_blocks;
    Printf.printf "  convergence opps      %d\n" r.convergence_opportunities;
    Printf.printf "  max reorg depth       %d\n" r.max_reorg_depth;
    Printf.printf "  consistency(T=%d)     %d violations / %d pairs (worst depth %d)\n"
      cons.truncate cons.violations cons.pairs_checked cons.worst_violation_depth;
    Printf.printf "  max disagreement      %d\n" (Sim.Metrics.max_disagreement r);
    Printf.printf "  chain growth          %.4f blocks/round\n" growth.growth_rate;
    Printf.printf "  chain quality         %.4f honest fraction\n"
      (Sim.Metrics.chain_quality r);
    Printf.printf "  messages              %d (orphans left: %d)\n" r.messages_sent
      r.orphans_remaining
  in
  let scenario_arg =
    Arg.(value & pos 0 string "honest"
         & info [] ~docv:"SCENARIO" ~doc:"honest | safe | attack | split | selfish")
  in
  let term = Term.(const run $ scenario_arg $ nu_arg $ seed_arg $ verbose_arg) in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a full Delta-delay protocol simulation.")
    term

(* montecarlo *)

let montecarlo_cmd =
  let run nu c delta_i rounds seed =
    let n = 50 in
    let honest = n - int_of_float (nu *. float_of_int n) in
    let p = 1. /. (c *. float_of_int n *. float_of_int delta_i) in
    let cfg =
      { Sim.State_process.honest; adversarial = n - honest; p; delta = delta_i }
    in
    let rng = Nakamoto_prob.Rng.create ~seed in
    let r = Sim.State_process.run ~rng cfg ~rounds in
    let params =
      Core.Params.create ~n:(float_of_int n) ~delta:(float_of_int delta_i) ~p
        ~nu:(float_of_int (n - honest) /. float_of_int n)
    in
    let t = float_of_int rounds in
    Printf.printf "state process: %d rounds at c=%.4f nu=%.3f Delta=%d\n" rounds c
      nu delta_i;
    Printf.printf "  C/T  empirical %.6g   theory (Eq. 44) %.6g\n"
      (float_of_int r.convergence_opportunities /. t)
      (Core.Conv_chain.convergence_rate params);
    Printf.printf "  A/T  empirical %.6g   theory (Eq. 27) %.6g\n"
      (float_of_int r.adversary_blocks /. t)
      (Core.Params.adversary_rate params);
    Printf.printf "  H-round rate   %.6g   alpha %.6g\n"
      (float_of_int r.h_rounds /. t)
      (Core.Params.alpha params);
    Printf.printf "  H1-round rate  %.6g   alpha1 %.6g\n"
      (float_of_int r.h1_rounds /. t)
      (Core.Params.alpha1 params)
  in
  let delta_i_arg =
    Arg.(value & opt int 4 & info [ "delta" ] ~docv:"DELTA" ~doc:"Delay bound.")
  in
  let rounds_arg =
    Arg.(value & opt int 1_000_000
         & info [ "rounds" ] ~docv:"ROUNDS" ~doc:"Rounds to simulate.")
  in
  let term =
    Term.(const run $ nu_arg $ c_arg ~default:2.5 $ delta_i_arg $ rounds_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "montecarlo"
       ~doc:"Validate the stationary theory against the raw state process.")
    term

(* assess *)

(* One JSONL batch line: {"nu":..., "c":...} or {"nu":..., "p":...},
   with optional "n" and "delta" falling back to the point-mode
   defaults.  Bad lines become {"ok":false,...} records — the batch
   never aborts; in particular a depth-limited confirmation search
   (Confirmation.Depth_limited) comes back as an ok record with no
   "confirmations" key and "conf_reason":"depth_limited". *)
let batch_params_of_json j =
  let open Campaign.Json in
  let fopt k = Option.map to_float (member_opt j k) in
  let n = Option.value (fopt "n") ~default:1e5 in
  let delta = Option.value (fopt "delta") ~default:1e13 in
  let nu =
    match fopt "nu" with
    | Some v -> v
    | None -> raise (Malformed "missing key nu")
  in
  match (fopt "p", fopt "c") with
  | Some _, Some _ -> raise (Malformed "give p or c, not both")
  | Some p, None -> Core.Params.create ~p ~n ~delta ~nu
  | None, Some c -> Core.Params.of_c ~n ~delta ~nu ~c
  | None, None -> raise (Malformed "missing key p or c")

let batch_record_of_verdict ~line (v : Core.Assessment.verdict) =
  let open Campaign.Json in
  let p = v.Core.Assessment.v_params in
  let opt k = function None -> [] | Some x -> [ (k, x) ] in
  render
    (Obj
       ([
          ("ok", Bool true);
          ("line", Num (string_of_int line));
          ("p", Num (float_str p.Core.Params.p));
          ("n", Num (float_str p.Core.Params.n));
          ("delta", Num (float_str p.Core.Params.delta));
          ("nu", Num (float_str p.Core.Params.nu));
          ("c", Num (float_str (Core.Params.c p)));
          ("zone", Str (Core.Assessment.zone_to_string v.v_zone));
          ("margin", Num (float_str v.v_margin));
          ("margin_lo", Num (float_str v.v_margin_lo));
          ("margin_hi", Num (float_str v.v_margin_hi));
          ("cached", Bool v.v_cached);
        ]
       @ opt "confirmations"
           (Option.map (fun z -> Num (string_of_int z)) v.v_confirmations)
       @ opt "conf_reason" (Option.map (fun r -> Str r) v.v_conf_reason)
       @ opt "fallback" (Option.map (fun r -> Str r) v.v_fallback)))

let batch_error ~line msg =
  let open Campaign.Json in
  render
    (Obj
       [
         ("ok", Bool false);
         ("line", Num (string_of_int line));
         ("error", Str msg);
       ])

let assess_cmd =
  let run nu c n delta surface_path stdin_jsonl =
    let surface =
      match surface_path with
      | None -> Ok None
      | Some path -> Result.map Option.some (Surface.Table.load path)
    in
    match surface with
    | Error e -> `Error (false, e)
    | Ok surface ->
      let assess_one params =
        match surface with
        | Some t -> Surface.Table.assess_cached t params
        | None -> Core.Assessment.verdict_of (Core.Assessment.assess params)
      in
      if stdin_jsonl then begin
        let hits = ref 0 and fallbacks = ref 0 and errors = ref 0 in
        let line = ref 0 in
        (try
           while true do
             let raw = input_line stdin in
             incr line;
             if String.trim raw <> "" then
               let record =
                 match
                   assess_one (batch_params_of_json (Campaign.Json.parse raw))
                 with
                 | v ->
                   if v.Core.Assessment.v_cached then incr hits
                   else incr fallbacks;
                   batch_record_of_verdict ~line:!line v
                 | exception Campaign.Json.Malformed m ->
                   incr errors;
                   batch_error ~line:!line m
                 | exception Invalid_argument m ->
                   incr errors;
                   batch_error ~line:!line m
               in
               print_endline record
           done
         with End_of_file -> ());
        if surface <> None then
          Printf.eprintf "assess: %d cached, %d exact, %d bad lines\n%!" !hits
            !fallbacks !errors;
        `Ok ()
      end
      else begin
        let p = Core.Params.of_c ~n ~delta ~nu ~c in
        (match surface with
        | Some _ ->
          Format.printf "%a@." Core.Assessment.pp_verdict (assess_one p)
        | None -> Format.printf "%a@." Core.Assessment.pp (Core.Assessment.assess p));
        `Ok ()
      end
  in
  let surface_arg =
    Arg.(value & opt (some string) None
         & info [ "surface" ] ~docv:"FILE"
             ~doc:"Answer from a precomputed certified surface (see \
                   $(b,surface build)); queries outside the table or in \
                   inconclusive cells fall back to the exact solver.")
  in
  let stdin_jsonl_arg =
    Arg.(value & flag
         & info [ "stdin-jsonl" ]
             ~doc:"Batch mode: read one JSON object per stdin line \
                   ({\"nu\":..,\"c\":..} or {\"nu\":..,\"p\":..}, optional \
                   \"n\"/\"delta\") and write one JSON verdict per line.  \
                   Bad lines yield {\"ok\":false} records; the batch \
                   continues.")
  in
  let term =
    Term.(
      ret
        (const run $ nu_arg $ c_arg ~default:3. $ n_arg $ delta_arg
        $ surface_arg $ stdin_jsonl_arg))
  in
  Cmd.v
    (Cmd.info "assess"
       ~doc:"Full security assessment of one parameter point (the flagship query).")
    term

(* surface *)

let parse_axis s =
  match String.split_on_char ':' s with
  | [ lo; hi; count; scale ] -> (
    match
      (float_of_string_opt lo, float_of_string_opt hi, int_of_string_opt count)
    with
    | Some lo, Some hi, Some count -> (
      let mk scale =
        match Surface.Grid.axis ~lo ~hi ~count ~scale with
        | axis -> Ok axis
        | exception Invalid_argument m -> Error m
      in
      match scale with
      | "lin" -> mk Surface.Grid.Linear
      | "log" -> mk Surface.Grid.Log
      | other -> Error (Printf.sprintf "%S: scale must be lin or log" other))
    | _ -> Error (Printf.sprintf "%S: expected LO:HI:COUNT:SCALE" s))
  | _ -> Error (Printf.sprintf "%S: expected LO:HI:COUNT:SCALE" s)

let axis_arg ~name ~default ~doc =
  Arg.(value & opt string default & info [ name ] ~docv:"LO:HI:COUNT:SCALE" ~doc)

let surface_build_cmd =
  let run p n delta nu out jobs epsilon conf_limit refine =
    match (parse_axis p, parse_axis n, parse_axis delta, parse_axis nu) with
    | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
      ->
      `Error (false, e)
    | Ok p, Ok n, Ok delta, Ok nu -> (
      match
        let grid = Surface.Grid.create ~p ~n ~delta ~nu in
        Surface.Table.build ~jobs ~epsilon ~conf_limit ~refine grid
      with
      | exception Invalid_argument m -> `Error (false, m)
      | table ->
        Surface.Table.save table ~path:out;
        Printf.printf "%s\n" (Surface.Table.describe table);
        Printf.printf "(surface written to %s)\n" out;
        `Ok ())
  in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"PATH" ~doc:"Output surface file.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"J"
             ~doc:"Certify cells on J domains (the bytes are identical \
                   for every J).")
  in
  let epsilon_arg =
    Arg.(value & opt float Surface.Table.default_epsilon
         & info [ "epsilon" ] ~docv:"EPS"
             ~doc:"Double-spend risk target for the certified depths.")
  in
  let conf_limit_arg =
    Arg.(value & opt int Surface.Table.default_conf_limit
         & info [ "conf-limit" ] ~docv:"Z"
             ~doc:"Give up certifying a cell's depth past Z confirmations.")
  in
  let refine_arg =
    Arg.(value & opt int Surface.Table.default_refine
         & info [ "refine" ] ~docv:"R"
             ~doc:"Split each cell into R^4 sub-boxes for the depth \
                   certification (fights interval dependency blow-up).")
  in
  let term =
    Term.(
      ret
        (const run
        $ axis_arg ~name:"p" ~default:"1.1e-4:1.4e-4:4:log"
            ~doc:"Proof-of-work hardness axis."
        $ axis_arg ~name:"n" ~default:"100:140:4:log" ~doc:"Miner-count axis."
        $ axis_arg ~name:"delta" ~default:"28:36:4:log"
            ~doc:"Delay-bound axis."
        $ axis_arg ~name:"nu" ~default:"0.012:0.016:4:lin"
            ~doc:"Adversarial-fraction axis."
        $ out_arg $ jobs_arg $ epsilon_arg $ conf_limit_arg $ refine_arg))
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Precompute an interval-certified assessment surface over a \
          (p, n, Delta, nu) box.")
    term

let surface_info_cmd =
  let run path header =
    match Surface.Table.load path with
    | Error e -> `Error (false, e)
    | Ok t ->
      if header then print_endline (Surface.Table.header_json t)
      else begin
        print_endline (Surface.Table.describe t);
        let zones, confs, full = Surface.Table.conclusive_counts t in
        Printf.printf
          "zones certified %d, depths certified %d, fully conclusive %d\n"
          zones confs full
      end;
      `Ok ()
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Surface file to inspect.")
  in
  let header_arg =
    Arg.(value & flag
         & info [ "header" ] ~doc:"Print the canonical JSON header only.")
  in
  let term = Term.(ret (const run $ path_arg $ header_arg)) in
  Cmd.v
    (Cmd.info "info" ~doc:"Describe a surface file (or dump its header).")
    term

let surface_cmd =
  Cmd.group
    (Cmd.info "surface"
       ~doc:
         "Build and inspect precomputed interval-certified assessment \
          surfaces.")
    [ surface_build_cmd; surface_info_cmd ]

(* sweep *)

let sweep_cmd =
  let run lo hi points n delta csv =
    if not (lo > 0. && hi > lo) then
      `Error (false, "--lo and --hi must satisfy 0 < lo < hi")
    else if points < 2 then `Error (false, "--points must be >= 2")
    else begin
      let grid =
        List.init points (fun i ->
            let t = float_of_int i /. float_of_int (points - 1) in
            lo *. ((hi /. lo) ** t))
      in
      let rows = Core.Figure1.series ~n ~delta ~c_grid:grid () in
      emit_table ?csv (Core.Figure1.to_table rows);
      `Ok ()
    end
  in
  let lo_arg =
    Arg.(value & opt float 0.5 & info [ "lo" ] ~docv:"LO" ~doc:"Smallest c.")
  in
  let hi_arg =
    Arg.(value & opt float 50. & info [ "hi" ] ~docv:"HI" ~doc:"Largest c.")
  in
  let points_arg =
    Arg.(value & opt int 21 & info [ "points" ] ~docv:"N" ~doc:"Grid size (log-spaced).")
  in
  let term =
    Term.(ret (const run $ lo_arg $ hi_arg $ points_arg $ n_arg $ delta_arg $ csv_arg))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Tabulate every tolerable-nu curve over a custom log-spaced c grid.")
    term

(* trace *)

let trace_cmd =
  let run scenario nu seed out =
    let cfg =
      match scenario with
      | "honest" -> Sim.Scenarios.honest_baseline ~seed
      | "safe" -> Sim.Scenarios.safe_zone ~seed ~nu
      | "attack" -> Sim.Scenarios.attack_zone ~seed ~nu
      | "split" -> Sim.Scenarios.split_world ~seed
      | "selfish" -> Sim.Scenarios.selfish ~seed ~nu
      | other -> failwith (Printf.sprintf "unknown scenario %S" other)
    in
    let trace = Sim.Trace.capture cfg in
    (match out with
    | None -> print_string (Sim.Trace.to_string trace)
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Sim.Trace.to_string trace));
      Printf.printf "trace written to %s\n" path);
    print_endline (Sim.Trace.summarize trace)
  in
  let scenario_arg =
    Arg.(value & pos 0 string "honest"
         & info [] ~docv:"SCENARIO" ~doc:"honest | safe | attack | split | selfish")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH" ~doc:"Write the trace to $(docv) instead of stdout.")
  in
  let term = Term.(const run $ scenario_arg $ nu_arg $ seed_arg $ out_arg) in
  Cmd.v
    (Cmd.info "trace" ~doc:"Capture a round-by-round execution trace.")
    term

(* confirm *)

let confirm_cmd =
  let run nu c delta epsilon =
    let p = Core.Params.of_c ~n:1e5 ~delta ~nu ~c in
    match Core.Confirmation.assess ~epsilon p with
    | exception Invalid_argument msg -> `Error (false, msg)
    | a ->
      Printf.printf "settlement at nu=%g, c=%g, Delta=%g, target risk %g:\n" nu c
        delta epsilon;
      Printf.printf "  honest effective rate (Eq. 44)  %.6g per round\n"
        a.Core.Confirmation.honest_rate;
      Printf.printf "  adversary rate (Eq. 27)         %.6g per round\n"
        a.Core.Confirmation.adversary_rate;
      Printf.printf "  rate ratio                      %.4f\n"
        a.Core.Confirmation.rate_ratio;
      Printf.printf "  confirmations needed            %d\n"
        a.Core.Confirmation.confirmations;
      Printf.printf "  residual double-spend risk      %.3e\n"
        a.Core.Confirmation.residual_risk;
      `Ok ()
  in
  let epsilon_arg =
    Arg.(value & opt float 1e-3
         & info [ "epsilon" ] ~docv:"EPS" ~doc:"Acceptable double-spend probability.")
  in
  let delta_small =
    Arg.(value & opt float 10.
         & info [ "delta" ] ~docv:"DELTA" ~doc:"Delay bound (rounds).")
  in
  let term =
    Term.(ret (const run $ nu_arg $ c_arg ~default:6. $ delta_small $ epsilon_arg))
  in
  Cmd.v
    (Cmd.info "confirm"
       ~doc:"Compute a safe confirmation depth from the paper's rates.")
    term

(* campaign *)

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    if host = "" then Error (Printf.sprintf "%S: empty host" s)
    else
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
      | _ -> Error (Printf.sprintf "%S: bad port %S" s port))

(* The same pair of flags on campaign and worker: dial a Unix socket or
   a TCP endpoint, exactly one of the two (or neither, where in-process
   compute is an option). *)
let resolve_addr ~what ~sock ~tcp =
  match (sock, tcp) with
  | None, None ->
    Error
      (Printf.sprintf "%s needs --connect SOCK or --connect-tcp HOST:PORT"
         what)
  | Some _, Some _ -> Error "--connect and --connect-tcp are mutually exclusive"
  | Some s, None -> Ok (Serve.Conn.Unix_path s)
  | None, Some hp ->
    Result.map (fun (h, p) -> Serve.Conn.Tcp (h, p)) (parse_hostport hp)

let campaign_cmd =
  let run ps ns deltas nus trials rounds mode strategy mining jobs seed resume
      out shard_size progress_interval retries fault telemetry connect
      connect_tcp =
    let strategy =
      match strategy with
      | "idle" -> Ok Sim.Adversary.Idle
      | "private" -> Ok (Sim.Adversary.Private_chain { reorg_target = 12 })
      | "balance" -> Ok (Sim.Adversary.Balance { group_boundary = 15 })
      | "selfish" -> Ok Sim.Adversary.Selfish_mining
      | other -> Error (Printf.sprintf "unknown strategy %S" other)
    in
    let mode =
      match mode with
      | "full" -> Ok Campaign.Spec.Full_protocol
      | "state" -> Ok Campaign.Spec.State_process
      | other -> Error (Printf.sprintf "unknown mode %S" other)
    in
    let mining =
      match mining with
      | "exact" -> Ok Sim.Config.Exact
      | "aggregate" -> Ok Sim.Config.Aggregate
      | "skip" -> Ok Sim.Config.Skip
      | other -> Error (Printf.sprintf "unknown mining mode %S" other)
    in
    let fault =
      match fault with
      | None -> Ok None
      | Some s -> (
        match Campaign.Faultplan.of_string s with
        | Ok plan -> Ok (Some plan)
        | Error e -> Error e)
    in
    match (strategy, mode, mining, fault) with
    | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
      ->
      `Error (false, e)
    | Ok strategy, Ok mode, Ok mining_mode, Ok fault -> (
      let spec =
        {
          Campaign.Spec.ps;
          ns;
          deltas;
          nus;
          trials_per_cell = trials;
          rounds;
          mode;
          strategy;
          mining_mode;
          truncate = Campaign.Spec.default.Campaign.Spec.truncate;
          seed;
          shard_size;
        }
      in
      match (connect, connect_tcp) with
      | (Some _, _ | _, Some _) -> (
        (* Daemon mode: the coordinator and its workers do the computing
           and the journaling; this process submits and watches. *)
        match resolve_addr ~what:"campaign" ~sock:connect ~tcp:connect_tcp with
        | Error e -> `Error (false, e)
        | Ok addr -> (
          if fault <> None then
            `Error
              (false, "--fault applies to compute processes; arm it on the \
                       worker subcommand instead")
          else if telemetry <> None then
            `Error
              (false, "--telemetry is configured on the serve daemon, not \
                       per submission")
          else
            let on_progress (p : Nakamoto_wire.Message.progress) =
              if progress_interval > 0. then
                Printf.eprintf
                  "campaign: %d/%d trials, %d/%d cells (daemon)\n%!"
                  p.Nakamoto_wire.Message.p_trials_done p.p_trials_total
                  p.p_cells_done p.p_cells_total
            in
            match
              Serve.Client.submit ~addr ?journal:out ~resume ~on_progress spec
            with
            | Ok (table, journal) ->
              print_string table;
              (match journal with
              | Some path -> Printf.printf "(journal: %s, daemon-side)\n" path
              | None -> ());
              `Ok ()
            | Error e -> `Error (false, e)
            | exception Unix.Unix_error (err, _, _) ->
              `Error
                ( false,
                  Printf.sprintf "cannot reach the daemon at %s: %s"
                    (Serve.Conn.addr_to_string addr)
                    (Unix.error_message err) )))
      | None, None -> (
      let jobs = if jobs = 0 then None else Some jobs in
      let telemetry_clock = telemetry_clock_env () in
      match
        Campaign.Campaign.run ?jobs ?journal_path:out ~resume ~retries ?fault
          ~progress_interval ?telemetry ?telemetry_clock spec
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Failure msg -> `Error (false, msg)
      | exception Campaign.Faultplan.Injected_crash msg ->
        (* EX_SOFTWARE: the injected crash fired as planned; the journal
           holds every line fsynced before the crash point. *)
        Printf.eprintf "campaign: injected crash: %s\n%!" msg;
        exit 70
      | outcome ->
        print_string
          (Nakamoto_numerics.Table.render
             (Campaign.Campaign.summary_table outcome));
        (match out with
        | Some path -> Printf.printf "(journal: %s)\n" path
        | None -> ());
        (match telemetry with
        | Some dir -> Printf.printf "(telemetry: %s)\n" dir
        | None -> ());
        `Ok ()))
  in
  let list_of names cv ~default ~doc =
    Arg.(value & opt (list cv) default & info names ~docv:"LIST" ~doc)
  in
  let ps_arg =
    list_of [ "p"; "ps" ] Arg.float ~default:[ 0.005 ]
      ~doc:"Comma-separated per-query success probabilities."
  in
  let ns_arg =
    list_of [ "n"; "miners" ] Arg.int ~default:[ 40 ]
      ~doc:"Comma-separated miner counts."
  in
  let deltas_arg =
    list_of [ "delta" ] Arg.int ~default:[ 4 ]
      ~doc:"Comma-separated delay bounds (rounds)."
  in
  let nus_arg =
    list_of [ "nu" ] Arg.float ~default:[ 0.1; 0.25; 0.4 ]
      ~doc:"Comma-separated adversarial fractions."
  in
  let trials_arg =
    Arg.(value & opt int 8
         & info [ "trials" ] ~docv:"K" ~doc:"Independent trials per grid cell.")
  in
  let rounds_arg =
    Arg.(value & opt int 1500
         & info [ "rounds" ] ~docv:"R" ~doc:"Rounds simulated per trial.")
  in
  let mode_arg =
    Arg.(value & opt string "full"
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"full (protocol + consistency audit) | state (fast \
                   binomial state process).")
  in
  let strategy_arg =
    Arg.(value & opt string "private"
         & info [ "strategy" ] ~docv:"S"
             ~doc:"Adversary for full mode: idle | private | balance | selfish.")
  in
  let mining_arg =
    Arg.(value & opt string "exact"
         & info [ "mining" ] ~docv:"M"
             ~doc:"Executor for full mode: exact (per-miner queries) | \
                   aggregate (binomial counts + shared delivery lane) | \
                   skip (aggregate that fast-forwards empty rounds; \
                   O(events)).  aggregate and skip exclude the balance \
                   strategy.")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "jobs" ] ~docv:"J"
             ~doc:"Worker domains; 0 = recommended_domain_count - 1.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Skip cells already present in the journal at --out.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH" ~doc:"JSONL journal path.")
  in
  let shard_arg =
    Arg.(value & opt int 2
         & info [ "shard-size" ] ~docv:"T" ~doc:"Trials per work-queue shard.")
  in
  let progress_arg =
    Arg.(value & opt float 5.
         & info [ "progress-interval" ] ~docv:"SEC"
             ~doc:"Seconds between progress reports on stderr; 0 disables.")
  in
  let retries_arg =
    Arg.(value & opt int 2
         & info [ "retries" ] ~docv:"K"
             ~doc:"Requeue a failing shard up to K times before giving up.")
  in
  let fault_arg =
    Arg.(value & opt (some string) None
         & info [ "fault" ] ~docv:"PLAN"
             ~doc:"Arm a fault-injection plan (testing): \
                   crash-after-appends=N | torn-write=N | \
                   raising-worker=TASK[:FAILURES] | \
                   slow-worker=TASK[:SECONDS].  An injected crash exits \
                   with status 70.")
  in
  let telemetry_arg =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"DIR"
             ~doc:"Write telemetry.prom and telemetry.jsonl (per-domain \
                   shard timings, executor phase spans, journal fsync \
                   latency) into DIR when the campaign completes.")
  in
  let connect_arg =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"SOCK"
             ~doc:"Submit to a serve daemon at this Unix-domain socket \
                   instead of computing in-process.  --out then names a \
                   daemon-side journal path.")
  in
  let connect_tcp_arg =
    Arg.(value & opt (some string) None
         & info [ "connect-tcp" ] ~docv:"HOST:PORT"
             ~doc:"Submit to a serve daemon over TCP instead of a Unix \
                   socket.")
  in
  let term =
    Term.(
      ret
        (const run $ ps_arg $ ns_arg $ deltas_arg $ nus_arg $ trials_arg
        $ rounds_arg $ mode_arg $ strategy_arg $ mining_arg $ jobs_arg
        $ seed_arg $ resume_arg $ out_arg $ shard_arg $ progress_arg
        $ retries_arg $ fault_arg $ telemetry_arg $ connect_arg
        $ connect_tcp_arg))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a parallel Monte Carlo campaign over a (p, n, Delta, nu) grid \
          and compare observed violation rates with the analytic regions.")
    term

(* serve *)

let serve_cmd =
  let run socket listen max_campaigns max_conns lease_timeout telemetry
      surface_path verbose =
    setup_logging verbose;
    let max_campaigns = if max_campaigns = 0 then None else Some max_campaigns in
    let telemetry_clock = telemetry_clock_env () in
    let tcp =
      match listen with
      | None -> Ok None
      | Some hp -> Result.map Option.some (parse_hostport hp)
    in
    let surface =
      match surface_path with
      | None -> Ok None
      | Some path -> Result.map Option.some (Surface.Table.load path)
    in
    match (tcp, surface) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok _, _ when socket = None && listen = None ->
      `Error (false, "serve needs --socket SOCK, --listen HOST:PORT, or both")
    | Ok tcp, Ok surface -> (
      let on_tcp_port p = Printf.eprintf "serve: tcp port %d\n%!" p in
      match
        Serve.Coordinator.serve ?socket ?tcp ?max_campaigns ~max_conns
          ~lease_timeout ?telemetry ?telemetry_clock ?surface ~on_tcp_port ()
      with
      | served ->
        Printf.printf "served %d campaign%s\n" served
          (if served = 1 then "" else "s");
        `Ok ()
      | exception Invalid_argument m -> `Error (false, m)
      | exception Failure m -> `Error (false, m)
      | exception Unix.Unix_error (err, fn, arg) ->
        `Error
          ( false,
            Printf.sprintf "%s %s: %s" fn arg (Unix.error_message err) ))
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"SOCK"
             ~doc:"Unix-domain socket path to listen on (stale files are \
                   unlinked).")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"HOST:PORT"
             ~doc:"Also (or instead) listen on TCP.  PORT 0 lets the \
                   kernel pick; the bound port is printed on stderr.")
  in
  let max_campaigns_arg =
    Arg.(value & opt int 0
         & info [ "max-campaigns" ] ~docv:"N"
             ~doc:"Exit cleanly after N campaigns complete; 0 = serve \
                   forever.")
  in
  let max_conns_arg =
    Arg.(value & opt int 240
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Shed new connections past N simultaneous peers.")
  in
  let lease_timeout_arg =
    Arg.(value & opt float 30.
         & info [ "lease-timeout" ] ~docv:"SEC"
             ~doc:"Reassign a granted shard whose worker has not answered \
                   within SEC seconds.  Heartbeat probes run at SEC/6 and \
                   drop a silent lease holder after SEC/2.")
  in
  let telemetry_arg =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"DIR"
             ~doc:"Write telemetry.prom and telemetry.jsonl (lease and \
                   frame counters, fold spans, shed / heartbeat-drop / \
                   late-result counters, the workers' shard instruments) \
                   into DIR at each campaign completion.")
  in
  let surface_arg =
    Arg.(value & opt (some string) None
         & info [ "surface" ] ~docv:"FILE"
             ~doc:"Answer assess queries from this precomputed certified \
                   surface, falling back to the exact solver outside its \
                   conclusive cells.")
  in
  let term =
    Term.(
      ret
        (const run $ socket_arg $ listen_arg $ max_campaigns_arg
        $ max_conns_arg $ lease_timeout_arg $ telemetry_arg $ surface_arg
        $ verbose_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign daemon: accept specs over a Unix-domain socket \
          and/or TCP, lease cells to worker processes, fold results and \
          journal them.")
    term

(* worker *)

let worker_cmd =
  let run sock tcp lease_batch fault connect_timeout verbose =
    setup_logging verbose;
    let fault =
      match fault with
      | None -> Ok None
      | Some s -> (
        match Campaign.Faultplan.of_string s with
        | Ok plan -> Ok (Some plan)
        | Error e -> Error e)
    in
    match (resolve_addr ~what:"worker" ~sock ~tcp, fault) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok addr, Ok fault -> (
      let telemetry_clock = telemetry_clock_env () in
      match
        Serve.Worker.run ~addr ~connect_timeout ~lease_batch ?fault
          ?telemetry_clock ()
      with
      | shards ->
        Printf.printf "worker done: %d shard%s computed\n" shards
          (if shards = 1 then "" else "s");
        `Ok ()
      | exception Campaign.Faultplan.Injected_crash msg ->
        Printf.eprintf "worker: injected crash: %s\n%!" msg;
        exit 70
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Failure msg -> `Error (false, msg)
      | exception Unix.Unix_error (err, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot reach the daemon at %s: %s"
              (Serve.Conn.addr_to_string addr)
              (Unix.error_message err) ))
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"SOCK"
             ~doc:"The serve daemon's Unix-domain socket.")
  in
  let tcp_arg =
    Arg.(value & opt (some string) None
         & info [ "connect-tcp" ] ~docv:"HOST:PORT"
             ~doc:"Dial the daemon over TCP instead of a Unix socket.")
  in
  let lease_batch_arg =
    Arg.(value & opt int 1
         & info [ "lease-batch" ] ~docv:"K"
             ~doc:"Ask for up to K leases per request (amortizes round \
                   trips at high shard counts).")
  in
  let fault_arg =
    Arg.(value & opt (some string) None
         & info [ "fault" ] ~docv:"PLAN"
             ~doc:"Arm a fault-injection plan (testing): \
                   raising-worker=TASK[:FAILURES] kills this worker when \
                   it leases shard TASK — the coordinator reassigns the \
                   lease.")
  in
  let connect_timeout_arg =
    Arg.(value & opt float 10.
         & info [ "connect-timeout" ] ~docv:"SEC"
             ~doc:"Keep retrying the connection for SEC seconds (covers \
                   starting the worker before the daemon).")
  in
  let term =
    Term.(
      ret (const run $ socket_arg $ tcp_arg $ lease_batch_arg $ fault_arg
           $ connect_timeout_arg $ verbose_arg))
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run a compute worker: lease shards from a serve daemon, execute \
          them, return aggregates.  Start as many as you want cores used.")
    term

(* verify *)

let verify_cmd =
  let run nu c n delta eps1 eps2 =
    let p = Core.Params.of_c ~n ~delta ~nu ~c in
    let r = Core.Lemmas.verify_chain ~eps1 ~eps2 p in
    Printf.printf "implication chain at %s, eps1=%g eps2=%g:\n"
      (Format.asprintf "%a" Core.Params.pp p)
      eps1 eps2;
    Printf.printf "  delta4 = %.6g, delta1 = %.6g\n" r.delta4 r.delta1;
    List.iter
      (fun (s : Core.Lemmas.chain_step) ->
        Printf.printf "  [%s] %-42s %s\n"
          (if s.holds then "ok" else "FAIL")
          s.name s.detail)
      r.steps;
    Printf.printf "all steps hold: %b\n" r.all_hold
  in
  let eps1_arg =
    Arg.(value & opt float 0.5 & info [ "eps1" ] ~docv:"EPS1" ~doc:"Constant eps1 in (0,1).")
  in
  let eps2_arg =
    Arg.(value & opt float 0.1 & info [ "eps2" ] ~docv:"EPS2" ~doc:"Constant eps2 > 0.")
  in
  let term =
    Term.(const run $ nu_arg $ c_arg ~default:4. $ n_arg $ delta_arg $ eps1_arg $ eps2_arg)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Audit the Lemma 2-8 implication chain numerically.")
    term

let () =
  let doc =
    "Consistency analysis of Nakamoto's blockchain protocol in asynchronous \
     networks (reproduction of Zhao, ICDCS 2020)"
  in
  let info = Cmd.info "nakamoto-consistency" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        bound_cmd; numax_cmd; figure1_cmd; figure2_cmd; table1_cmd; remark1_cmd;
        simulate_cmd; montecarlo_cmd; campaign_cmd; verify_cmd; confirm_cmd;
        trace_cmd; sweep_cmd; assess_cmd; surface_cmd; serve_cmd; worker_cmd;
      ]
  in
  exit (Cmd.eval group)
