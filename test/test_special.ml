open Helpers
module Special = Nakamoto_numerics.Special

let test_log_pow1p () =
  close "log ((1-p)^k)"
    (3000. *. log (1. -. 1e-4))
    (Special.log_pow1p ~base:(-1e-4) ~exponent:3000.);
  (* The whole point: exact where naive exponentiation underflows. *)
  let extreme = Special.log_pow1p ~base:(-1e-13) ~exponent:2e13 in
  close ~rtol:1e-6 "extreme exponent" (-2.) extreme;
  check_raises_invalid "base <= -1 rejected" (fun () ->
      Special.log_pow1p ~base:(-1.) ~exponent:2.)

let test_log_add_sub () =
  close "log_add" (log 5.) (Special.log_add (log 2.) (log 3.));
  close "log_add neg_inf identity" (log 2.) (Special.log_add neg_infinity (log 2.));
  close "log_sub" (log 1.) (Special.log_sub (log 3.) (log 2.));
  check_true "log_sub equal -> -inf"
    (Special.log_sub (log 2.) (log 2.) = neg_infinity);
  check_raises_invalid "log_sub lb > la" (fun () ->
      ignore (Special.log_sub (log 2.) (log 3.)))

let test_log_sum () =
  close "log_sum basic" (log 10.) (Special.log_sum [ log 1.; log 2.; log 3.; log 4. ]);
  check_true "log_sum empty" (Special.log_sum [] = neg_infinity);
  close "log_sum with -inf entries" (log 2.)
    (Special.log_sum [ neg_infinity; log 2.; neg_infinity ]);
  (* Max-shift keeps extreme magnitudes exact. *)
  close "log_sum extreme" (-1000. +. log 2.)
    (Special.log_sum [ -1000.; -1000. ])

let test_log_one_minus_exp () =
  (* For x = 1e-9, 1 - e^{-x} = x (1 - x/2 + ...); the naive
     log (1. -. exp (-1e-9)) loses eight digits and cannot serve as the
     reference. *)
  close "near zero"
    (log 1e-9 +. Special.log1p (-0.5e-9))
    (Special.log_one_minus_exp (-1e-9));
  close "far" (log (1. -. exp (-30.))) (Special.log_one_minus_exp (-30.));
  check_true "at 0 -> -inf" (Special.log_one_minus_exp 0. = neg_infinity);
  check_raises_invalid "positive rejected" (fun () ->
      ignore (Special.log_one_minus_exp 0.1))

let test_logit_sigmoid () =
  close "logit(1/2)" 0. (Special.logit 0.5);
  close "sigmoid(0)" 0.5 (Special.sigmoid 0.);
  close "sigmoid(-800) underflows gracefully" 0. (Special.sigmoid (-800.));
  close "sigmoid(800)" 1. (Special.sigmoid 800.);
  check_raises_invalid "logit domain" (fun () -> ignore (Special.logit 1.))

let test_log_factorial () =
  close "0!" 0. (Special.log_factorial 0);
  close "5!" (log 120.) (Special.log_factorial 5);
  close "20!" (log 2432902008176640000.) (Special.log_factorial 20);
  (* Stirling region must agree with the recurrence at the table edge. *)
  close ~rtol:1e-12 "300! via recurrence"
    (Special.log_factorial 299 +. log 300.)
    (Special.log_factorial 300);
  check_raises_invalid "negative" (fun () -> ignore (Special.log_factorial (-1)))

let test_log_binomial_coefficient () =
  close "C(10,3)" (log 120.) (Special.log_binomial_coefficient 10 3);
  close "C(n,0)" 0. (Special.log_binomial_coefficient 7 0);
  check_true "out of range is -inf"
    (Special.log_binomial_coefficient 5 6 = neg_infinity);
  check_true "negative k is -inf"
    (Special.log_binomial_coefficient 5 (-1) = neg_infinity)

let test_approx_equal () =
  check_true "exact" (Special.approx_equal 1. 1.);
  check_true "close" (Special.approx_equal 1. (1. +. 1e-12));
  check_false "far" (Special.approx_equal 1. 1.001);
  check_false "nan" (Special.approx_equal nan nan);
  check_true "inf = inf" (Special.approx_equal infinity infinity)

let test_clamp_and_probability () =
  close "clamp low" 0. (Special.clamp ~lo:0. ~hi:1. (-3.));
  close "clamp high" 1. (Special.clamp ~lo:0. ~hi:1. 3.);
  close "clamp inside" 0.4 (Special.clamp ~lo:0. ~hi:1. 0.4);
  check_raises_invalid "lo > hi" (fun () -> ignore (Special.clamp ~lo:1. ~hi:0. 0.5));
  check_true "probability" (Special.is_probability 0.3);
  check_false "nan not probability" (Special.is_probability nan);
  check_false "1.5 not probability" (Special.is_probability 1.5)

let test_geometric_series () =
  close "ratio 1/2, 4 terms" 1.875 (Special.geometric_series_sum ~ratio:0.5 ~terms:4);
  close "ratio 1" 7. (Special.geometric_series_sum ~ratio:1. ~terms:7);
  close "zero terms" 0. (Special.geometric_series_sum ~ratio:0.3 ~terms:0);
  check_raises_invalid "negative terms" (fun () ->
      ignore (Special.geometric_series_sum ~ratio:0.5 ~terms:(-1)))

let props =
  [
    prop "log_add commutes" QCheck2.Gen.(pair (float_range (-50.) 50.) (float_range (-50.) 50.))
      (fun (a, b) ->
        Special.approx_equal (Special.log_add a b) (Special.log_add b a));
    prop "log_add = log of sum"
      QCheck2.Gen.(pair (float_range (-30.) 30.) (float_range (-30.) 30.))
      (fun (a, b) ->
        Special.approx_equal ~rtol:1e-9 (Special.log_add a b)
          (log (exp a +. exp b)));
    prop "sigmoid inverts logit" QCheck2.Gen.(float_range 0.001 0.999)
      (fun x -> Special.approx_equal ~rtol:1e-9 x (Special.sigmoid (Special.logit x)));
    prop "geometric closed form vs fold"
      QCheck2.Gen.(pair (float_range 0.01 0.99) (int_range 0 40))
      (fun (ratio, terms) ->
        let direct = ref 0. and pow = ref 1. in
        for _ = 1 to terms do
          direct := !direct +. !pow;
          pow := !pow *. ratio
        done;
        Special.approx_equal ~rtol:1e-9
          (Special.geometric_series_sum ~ratio ~terms)
          !direct);
  ]

let test_log_gamma () =
  (* Exact at integers (Gamma n = (n-1)!) across both the recursion and
     the Stirling branch. *)
  List.iter
    (fun n ->
      close
        (Printf.sprintf "log_gamma %d" n)
        (Special.log_factorial (n - 1))
        (Special.log_gamma (float_of_int n)))
    [ 1; 2; 3; 7; 10; 40; 170 ];
  (* Gamma(1/2) = sqrt(pi), and the reflection-free half-integer ladder. *)
  close ~rtol:1e-9 "log_gamma 0.5" (0.5 *. log Float.pi)
    (Special.log_gamma 0.5);
  close ~rtol:1e-9 "log_gamma 1.5"
    (log (0.5 *. sqrt Float.pi))
    (Special.log_gamma 1.5);
  (match Special.log_gamma 0. with
  | _ -> Alcotest.fail "log_gamma 0 should raise"
  | exception Invalid_argument _ -> ())

let test_regularized_gamma () =
  (* a = 1: P(1, x) = 1 - exp(-x) exactly (exponential CDF). *)
  List.iter
    (fun x ->
      close ~rtol:1e-12
        (Printf.sprintf "P(1, %g)" x)
        (-.Special.expm1 (-.x))
        (Special.regularized_gamma_lower ~a:1. ~x);
      close ~rtol:1e-12
        (Printf.sprintf "Q(1, %g)" x)
        (exp (-.x))
        (Special.regularized_gamma_upper ~a:1. ~x))
    [ 1e-6; 0.1; 1.; 5.; 30. ];
  (* Boundaries and complementarity across the series/continued-fraction
     split at x = a + 1. *)
  close "P(a, 0)" 0. (Special.regularized_gamma_lower ~a:3.2 ~x:0.);
  close "Q(a, 0)" 1. (Special.regularized_gamma_upper ~a:3.2 ~x:0.);
  List.iter
    (fun (a, x) ->
      let p = Special.regularized_gamma_lower ~a ~x in
      let q = Special.regularized_gamma_upper ~a ~x in
      close ~rtol:1e-10
        (Printf.sprintf "P + Q = 1 at a=%g x=%g" a x)
        1. (p +. q))
    [ (0.5, 0.3); (2., 2.9); (2., 3.1); (10., 40.); (100., 80.) ];
  (* Q(a, x) for large x decays like the exponential tail: a known value,
     Q(5, 20) = e^{-20} sum_{k=0}^{4} 20^k / k! (Erlang survival). *)
  let erlang_survival =
    exp (-20.)
    *. List.fold_left ( +. ) 0.
         (List.init 5 (fun k ->
              (20. ** float_of_int k) /. exp (Special.log_factorial k)))
  in
  close ~rtol:1e-10 "Q(5, 20) Erlang" erlang_survival
    (Special.regularized_gamma_upper ~a:5. ~x:20.)

let suite =
  [
    case "log_pow1p" test_log_pow1p;
    case "log_gamma" test_log_gamma;
    case "regularized incomplete gamma" test_regularized_gamma;
    case "log_add/log_sub" test_log_add_sub;
    case "log_sum" test_log_sum;
    case "log_one_minus_exp" test_log_one_minus_exp;
    case "logit/sigmoid" test_logit_sigmoid;
    case "log_factorial" test_log_factorial;
    case "log_binomial_coefficient" test_log_binomial_coefficient;
    case "approx_equal" test_approx_equal;
    case "clamp/is_probability" test_clamp_and_probability;
    case "geometric_series_sum" test_geometric_series;
  ]
  @ props
