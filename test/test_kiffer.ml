open Helpers
module Kiffer = Nakamoto_core.Kiffer_comparison
module Params = Nakamoto_core.Params

let p0 = Params.create ~n:100. ~delta:5. ~p:0.002 ~nu:0.25

let test_lumped_chain_shape () =
  let l = Kiffer.lumped_chain ~alpha:0.3 ~delta:4 in
  check_int "two states" 2 (Nakamoto_markov.Chain.size l.chain);
  check_true "ergodic" (Nakamoto_markov.Chain.is_ergodic l.chain);
  check_raises_invalid "bad alpha" (fun () ->
      ignore (Kiffer.lumped_chain ~alpha:0. ~delta:4));
  check_raises_invalid "bad delta" (fun () ->
      ignore (Kiffer.lumped_chain ~alpha:0.3 ~delta:0))

let test_lumping_error_positive () =
  (* The paper's point: two states cannot reproduce the suffix structure.
     The lumped Quiet mass differs from abar^Delta whenever alpha is
     non-negligible. *)
  let err = Kiffer.lumping_error ~alpha:0.3 ~delta:4 in
  check_true (Printf.sprintf "visible error %.4f" err) (err > 0.01);
  (* And shrinks as alpha -> 0 (rare events hide the structure). *)
  let small = Kiffer.lumping_error ~alpha:0.001 ~delta:4 in
  check_true "vanishes for rare H" (small < err /. 10.)

let test_exact_quiet_is_eq37c () =
  let delta = 6 and alpha = 0.2 in
  let exact = Kiffer.exact_quiet_probability ~alpha ~delta in
  close "matches Eq. 37c" (0.8 ** 6.) exact;
  (* And matches the full suffix chain's Deep mass. *)
  let pi = Nakamoto_core.Suffix_chain.stationary_closed_form ~delta ~alpha in
  close "matches suffix chain"
    pi.(Nakamoto_core.Suffix_chain.index_of_state ~delta Nakamoto_core.Suffix_chain.Deep)
    exact

let test_waiting_times () =
  close "correct ell" (1. /. Params.alpha p0) (Kiffer.ell_correct p0);
  close "flawed ell" (1. /. (0.002 *. 0.75 *. 100.)) (Kiffer.ell_flawed p0);
  (* 1/alpha >= 1/(p mu n): multi-block rounds make H-rounds rarer than
     blocks. *)
  check_true "correct waits longer" (Kiffer.ell_correct p0 >= Kiffer.ell_flawed p0);
  check_true "ratio <= 1" (Kiffer.waiting_time_ratio p0 >= 1.)

let test_rate_overstatement () =
  check_true "flawed rate dominates" (Kiffer.flawed_rate p0 >= Kiffer.correct_rate p0);
  (* The correct renewal rate must approximate the true per-round rate
     abar^2D alpha1 (they differ by the renewal approximation only). *)
  let true_rate = Nakamoto_core.Conv_chain.convergence_rate p0 in
  let renewal = Kiffer.correct_rate p0 in
  check_true
    (Printf.sprintf "renewal %.3e within 2x of exact %.3e" renewal true_rate)
    (renewal > true_rate /. 2. && renewal < true_rate *. 2.)

let test_table () =
  let t = Kiffer.to_table [ p0; Params.create ~n:50. ~delta:3. ~p:0.01 ~nu:0.2 ] in
  check_int "two rows" 2 (Nakamoto_numerics.Table.row_count t)

let props =
  [
    prop ~count:80 "flawed >= correct everywhere"
      QCheck2.Gen.(
        let* nu = float_range 0.05 0.45 in
        let* p = float_range 0.0005 0.05 in
        return (nu, p))
      (fun (nu, p) ->
        let params = Params.create ~n:100. ~delta:4. ~p ~nu in
        Kiffer.flawed_rate params >= Kiffer.correct_rate params -. 1e-15);
  ]

let suite =
  [
    case "lumped chain shape" test_lumped_chain_shape;
    case "lumping error is real (critique #1)" test_lumping_error_positive;
    case "exact quiet mass = Eq. 37c" test_exact_quiet_is_eq37c;
    case "waiting times (critique #2)" test_waiting_times;
    case "rate overstatement" test_rate_overstatement;
    case "comparison table" test_table;
  ]
  @ props
