open Helpers
module Theorem1 = Nakamoto_core.Theorem1
module Theorem2 = Nakamoto_core.Theorem2
module Bounds = Nakamoto_core.Bounds
module Params = Nakamoto_core.Params
module Conv_chain = Nakamoto_core.Conv_chain
module Table1 = Nakamoto_core.Table1

let test_constants_eq23 () =
  let k = Theorem1.constants ~delta1:0.7 in
  let third = 1.7 ** (1. /. 3.) in
  close "delta2" (1. -. (1. /. third)) k.delta2;
  close "delta3" (third -. 1.) k.delta3;
  close "gap factor" ((third *. third) -. third) k.gap_factor;
  (* The defining property: (1-d2)(1+d1) - (1+d3) equals the gap factor. *)
  close "Ineq. 24 identity"
    (((1. -. k.delta2) *. 1.7) -. (1. +. k.delta3))
    k.gap_factor;
  check_true "all positive" (k.delta2 > 0. && k.delta3 > 0. && k.gap_factor > 0.);
  check_true "delta2 < 1 (needed by Ineq. 19)" (k.delta2 < 1.);
  check_raises_invalid "delta1 = 0" (fun () ->
      ignore (Theorem1.constants ~delta1:0.))

let test_guarantee_shape () =
  let p = Params.create ~n:50. ~delta:3. ~p:0.002 ~nu:0.2 in
  check_true "condition holds here" (Theorem1.holds p);
  let g = Theorem1.guarantee ~delta1:0.2 ~horizon:100_000 ~mixing_time:30. p in
  close "E C" (Conv_chain.expected_convergence_count p ~horizon:100_000)
    g.expected_convergence;
  close "E A" (Conv_chain.expected_adversary_blocks p ~horizon:100_000)
    g.expected_adversary;
  check_true "C exceeds A in expectation (Ineq. 18)"
    (g.expected_convergence > g.expected_adversary);
  check_true "failure bound in [0,1]"
    (g.failure_bound >= 0. && g.failure_bound <= 1.);
  check_true "gap positive" (g.expected_gap > 0.);
  check_raises_invalid "bad horizon" (fun () ->
      ignore (Theorem1.guarantee ~delta1:0.2 ~horizon:0 ~mixing_time:1. p))

let test_guarantee_improves_with_horizon () =
  (* Theorem 1's constants are weak (the 72 tau of Ineq. 47, a squared
     delta2): a generous delta1 and long horizons are needed before the
     bound drops below its saturation at 1 — faithful to the theorem. *)
  let p = Params.create ~n:50. ~delta:3. ~p:0.002 ~nu:0.2 in
  let g t = Theorem1.guarantee ~delta1:5. ~horizon:t ~mixing_time:30. p in
  let small = g 1_000_000 and large = g 100_000_000 in
  check_true "failure probability shrinks"
    (large.failure_bound < small.failure_bound);
  check_true "eventually negligible" (large.failure_bound < 1e-6)

let test_guarantee_uses_real_mixing_time () =
  (* Wire in the explicit chain's measured 1/8-mixing time. *)
  let p = Params.create ~n:50. ~delta:2. ~p:0.002 ~nu:0.2 in
  let ex = Conv_chain.build_explicit ~delta:2 p in
  match Nakamoto_markov.Chain.mixing_time ex.chain with
  | None -> Alcotest.fail "the ergodic chain must mix"
  | Some tau ->
    check_true "mixing time sane" (tau > 0 && tau < 10_000);
    let g =
      Theorem1.guarantee ~delta1:5. ~horizon:100_000_000
        ~mixing_time:(float_of_int tau) p
    in
    check_true "guarantee kicks in at large T" (g.failure_bound < 0.01)

let test_theorem2_condition () =
  (* eps1 inflates the threshold by (1+eps2)/(1-eps1); keep it small. *)
  let p = Params.of_c ~n:1e5 ~delta:1e13 ~nu:0.25 ~c:3. in
  check_true "holds at c = 3 (threshold 1.37 x 1.12)"
    (Theorem2.condition_holds ~eps1:0.1 ~eps2:0.01 p);
  check_false "fails with heavy eps1 inflation at c = 3"
    (Theorem2.condition_holds ~eps1:0.6 ~eps2:0.5 p);
  let tight = Params.of_c ~n:1e5 ~delta:1e13 ~nu:0.25 ~c:1.3 in
  check_false "fails below the neat bound"
    (Theorem2.condition_holds ~eps1:0.1 ~eps2:0.01 tight)

let test_regime_validation () =
  check_raises_invalid "delta1+delta2 >= 1" (fun () ->
      ignore (Theorem2.regime ~delta:1e13 ~delta1:0.5 ~delta2:0.5));
  check_raises_invalid "nonpositive" (fun () ->
      ignore (Theorem2.regime ~delta:1e13 ~delta1:0. ~delta2:0.5));
  check_raises_invalid "delta < 2" (fun () ->
      ignore (Theorem2.regime ~delta:1. ~delta1:0.1 ~delta2:0.5))

let test_remark1_first_regime () =
  (* Paper: delta1 = 1/6, delta2 = 1/2 at Delta = 1e13 gives
     1e-63 <= nu <= 0.5 - 1e-7 and inflation 1 + 5e-5. *)
  match Theorem2.remark1_rows () with
  | [ r1; r2 ] ->
    let log10 x = x /. log 10. in
    check_true "nu_lo ~ 1e-63"
      (Float.abs (log10 r1.log_nu_lo +. 64.) < 1.);
    check_true "1/2 - nu_hi ~ 1e-7"
      (r1.half_minus_nu_hi > 1e-8 && r1.half_minus_nu_hi < 1e-6);
    check_true "inflation ~ 1 + 5e-5"
      (r1.inflation -. 1. > 1e-5 && r1.inflation -. 1. < 1e-4);
    (* Second regime: 1e-18, 0.5 - 1e-9, 1 + 2e-3. *)
    check_true "nu_lo ~ 1e-18"
      (Float.abs (log10 r2.log_nu_lo +. 18.) < 1.);
    check_true "1/2 - nu_hi ~ 1e-9"
      (r2.half_minus_nu_hi > 1e-10 && r2.half_minus_nu_hi < 1e-8);
    check_true "inflation ~ 1 + 2e-3"
      (r2.inflation -. 1. > 1e-3 && r2.inflation -. 1. < 3e-3)
  | _ -> Alcotest.fail "expected two regimes"

let test_regime_algebra_eqs_87_94 () =
  (* The Section VI-B derivation, step by step, at delta = 1e13 with the
     paper's first regime (delta1 = 1/6, delta2 = 1/2). *)
  let delta = 1e13 and delta1 = 1. /. 6. and delta2 = 1. /. 2. in
  let r = Theorem2.regime ~delta ~delta1 ~delta2 in
  let check_at nu =
    let mu = 1. -. nu in
    let l = log (mu /. nu) in
    (* Eq. 87: nu >= nu_lo implies l <= Delta^delta1. *)
    check_true "Eq. 87" (l <= (delta ** delta1) +. 1e-9);
    (* Eq. 88-89: nu <= nu_hi implies l >= 1/(Delta^delta2 - 1), hence
       (l+1)/(Delta l) <= Delta^(delta2-1). *)
    check_true "Eq. 88" (l >= 1. /. ((delta ** delta2) -. 1.) -. 1e-15);
    check_true "Eq. 89" ((l +. 1.) /. (delta *. l) <= (delta ** (delta2 -. 1.)) +. 1e-18);
    (* Eq. 91: with eps1 = Delta^(delta1+delta2-1), the second branch of
       Ineq. 11 is dominated by the first. *)
    let eps1 = delta ** (delta1 +. delta2 -. 1.) in
    check_true "Eq. 91"
      (2. *. mu /. l > (l +. 1.) *. mu /. (eps1 *. delta *. l));
    (* Eq. 93: 1/Delta < (2 mu / l) Delta^(delta1 - 1). *)
    check_true "Eq. 93"
      (1. /. delta < 2. *. mu /. l *. (delta ** (delta1 -. 1.)))
  in
  (* Points inside the regime's nu range (its extremes are ~1e-63 and
     0.5 - 1e-7). *)
  List.iter check_at [ 1e-50; 1e-10; 0.1; 0.25; 0.4; 0.499 ];
  (* And the packaged inflation matches its definition. *)
  close "inflation definition"
    ((1. +. (delta ** (delta1 -. 1.)))
    /. (1. -. (delta ** (delta1 +. delta2 -. 1.))))
    r.inflation

let test_inflated_bound_close_to_neat () =
  let r = List.hd (Theorem2.remark1_rows ()) in
  let nu = 0.3 in
  let neat = Theorem2.consistency_c_threshold ~nu in
  let inflated = Theorem2.neat_bound_with_inflation ~nu ~eps2:1e-9 r in
  check_true "inflated barely above neat"
    (inflated > neat && inflated < neat *. 1.001)

let test_table1 () =
  let p = Params.bitcoin_like in
  check_true "identities hold" (Table1.identities_hold p);
  let rendered = Nakamoto_numerics.Table.render (Table1.for_params p) in
  check_true "has alpha row" (contains_substring ~affix:"alpha" rendered);
  check_true "has c row" (contains_substring ~affix:"delays per block" rendered);
  check_int "11 rows" 11
    (Nakamoto_numerics.Table.row_count (Table1.for_params p))

let props =
  [
    prop "Table I identities hold everywhere"
      QCheck2.Gen.(
        let* nu = float_range 0.01 0.49 in
        let* c = float_range 0.2 50. in
        return (nu, c))
      (fun (nu, c) ->
        Table1.identities_hold (Params.of_c ~n:1e4 ~delta:1e4 ~nu ~c));
    prop "Theorem 2 condition iff c >= c_min"
      QCheck2.Gen.(
        let* nu = float_range 0.05 0.45 in
        let* c = float_range 0.5 50. in
        return (nu, c))
      (fun (nu, c) ->
        let p = Params.of_c ~n:1e5 ~delta:1e10 ~nu ~c in
        Theorem2.condition_holds ~eps1:0.5 ~eps2:0.1 p
        = (c >= Bounds.theorem2_c_min ~nu ~delta:1e10 ~eps1:0.5 ~eps2:0.1));
  ]

let suite =
  [
    case "constants (Eq. 23)" test_constants_eq23;
    case "guarantee ingredients" test_guarantee_shape;
    case "guarantee improves with horizon" test_guarantee_improves_with_horizon;
    case "guarantee with measured mixing time" test_guarantee_uses_real_mixing_time;
    case "Theorem 2 condition" test_theorem2_condition;
    case "regime validation" test_regime_validation;
    case "Remark 1 regimes match the paper" test_remark1_first_regime;
    case "regime algebra (Eqs. 87-94)" test_regime_algebra_eqs_87_94;
    case "inflated bound close to neat" test_inflated_bound_close_to_neat;
    case "Table I" test_table1;
  ]
  @ props
