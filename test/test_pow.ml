open Helpers
module Pow = Nakamoto_chain.Pow
module Hash = Nakamoto_chain.Hash

let oracle ?(p = 0.05) ?(seed = 11L) () = Pow.create ~seed ~p

let test_create_validation () =
  check_raises_invalid "p = 0" (fun () -> ignore (Pow.create ~seed:1L ~p:0.));
  check_raises_invalid "p = 1" (fun () -> ignore (Pow.create ~seed:1L ~p:1.));
  close "hardness stored" 0.05 (Pow.hardness (oracle ()))

let test_threshold_matches_p () =
  (* threshold / 2^64 must equal p to float precision, including p > 1/2
     where the bit pattern wraps negative. *)
  List.iter
    (fun p ->
      let t = Pow.threshold (Pow.create ~seed:1L ~p) in
      (* Unsigned value of the int64 as float. *)
      let unsigned =
        if Int64.compare t 0L >= 0 then Int64.to_float t
        else Int64.to_float t +. 18446744073709551616.
      in
      close ~rtol:1e-9
        (Printf.sprintf "threshold at p=%g" p)
        p
        (unsigned /. 18446744073709551616.))
    [ 1e-6; 0.01; 0.3; 0.5; 0.9; 0.999 ]

let test_query_deterministic () =
  let o = oracle () in
  let q () =
    Pow.query o ~parent:Hash.zero ~miner:3 ~round:7 ~query_index:0
  in
  check_true "same query, same answer" (q () = q ());
  check_raises_invalid "negative round" (fun () ->
      ignore (Pow.query o ~parent:Hash.zero ~miner:0 ~round:(-1) ~query_index:0));
  check_raises_invalid "bad miner" (fun () ->
      ignore (Pow.query o ~parent:Hash.zero ~miner:(-2) ~round:1 ~query_index:0))

let test_success_rate () =
  let o = oracle ~p:0.05 () in
  let hits = ref 0 in
  let n = 100_000 in
  for i = 0 to n - 1 do
    match
      Pow.query o ~parent:Hash.zero ~miner:(i mod 97) ~round:(i / 97)
        ~query_index:0
    with
    | Some _ -> incr hits
    | None -> ()
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_true
    (Printf.sprintf "rate %.4f near 0.05" rate)
    (Float.abs (rate -. 0.05) < 0.005)

let test_verify () =
  let o = oracle ~p:0.2 () in
  (* Find a winning proof. *)
  let rec find round =
    match Pow.query o ~parent:Hash.zero ~miner:1 ~round ~query_index:0 with
    | Some proof -> proof
    | None -> find (round + 1)
  in
  let proof = find 0 in
  check_true "honest proof verifies" (Pow.verify o proof);
  (* A different oracle (other seed or hardness) rejects it. *)
  check_false "wrong seed rejects" (Pow.verify (Pow.create ~seed:99L ~p:0.2) proof);
  check_false "harder target rejects"
    (Pow.verify (Pow.create ~seed:11L ~p:1e-9) proof)

let test_independence_across_fields () =
  (* Changing any field of the query changes the digest (and thus
     decorrelates success). *)
  let o = oracle ~p:0.5 () in
  let outcome ~parent ~miner ~round ~query_index =
    Pow.query o ~parent ~miner ~round ~query_index <> None
  in
  let base = List.init 64 (fun i -> outcome ~parent:Hash.zero ~miner:0 ~round:i ~query_index:0) in
  let other_miner = List.init 64 (fun i -> outcome ~parent:Hash.zero ~miner:1 ~round:i ~query_index:0) in
  check_false "different miners see different coins" (base = other_miner);
  let idx1 = List.init 64 (fun i -> outcome ~parent:Hash.zero ~miner:0 ~round:i ~query_index:1) in
  check_false "query index matters" (base = idx1)

let test_success_count_binomial_law () =
  let o = oracle ~p:0.1 () in
  let total = ref 0 in
  let rounds = 5_000 and queries = 10 in
  for round = 0 to rounds - 1 do
    let wins = Pow.success_count o ~parent:Hash.zero ~miner:(-1) ~round ~queries in
    List.iter (fun proof -> check_true "each win verifies" (Pow.verify o proof)) wins;
    total := !total + List.length wins
  done;
  let mean = float_of_int !total /. float_of_int rounds in
  check_true
    (Printf.sprintf "mean successes %.3f near 1.0" mean)
    (Float.abs (mean -. 1.0) < 0.05)

let test_successes_matches_success_count () =
  (* The allocation-free counter must agree with the proof-collecting
     variant query for query, across rounds and query batch sizes. *)
  let o = oracle ~p:0.1 () in
  for round = 0 to 200 do
    let queries = 1 + (round mod 17) in
    check_int
      (Printf.sprintf "round %d" round)
      (List.length
         (Pow.success_count o ~parent:Hash.zero ~miner:(-1) ~round ~queries))
      (Pow.successes o ~parent:Hash.zero ~miner:(-1) ~round ~queries)
  done;
  check_int "zero queries" 0
    (Pow.successes o ~parent:Hash.zero ~miner:(-1) ~round:0 ~queries:0);
  check_raises_invalid "negative round" (fun () ->
      ignore (Pow.successes o ~parent:Hash.zero ~miner:0 ~round:(-1) ~queries:1))

let test_execution_uses_oracle_rates () =
  (* End-to-end: with the oracle wired in, execution block rates still
     follow the analytic law. *)
  let cfg =
    Nakamoto_sim.Config.with_c
      { Nakamoto_sim.Config.default with rounds = 20_000; seed = 5L }
      ~c:2.
  in
  let r = Nakamoto_sim.Execution.run cfg in
  let p = Nakamoto_core.Params.of_sim_config cfg in
  let t = 20_000. in
  let h_rate = float_of_int r.h_rounds /. t in
  check_true
    (Printf.sprintf "H-round rate %.4f near alpha %.4f" h_rate
       (Nakamoto_core.Params.alpha p))
    (Float.abs (h_rate -. Nakamoto_core.Params.alpha p) < 0.01);
  let a_rate = float_of_int r.adversary_blocks /. t in
  check_true
    (Printf.sprintf "adversary rate %.4f near p nu n %.4f" a_rate
       (Nakamoto_core.Params.adversary_rate p))
    (Float.abs (a_rate -. Nakamoto_core.Params.adversary_rate p) < 0.01)

let suite =
  [
    case "create validation" test_create_validation;
    case "threshold encodes p" test_threshold_matches_p;
    case "query deterministic" test_query_deterministic;
    case "success rate = p" test_success_rate;
    case "verify (H.ver)" test_verify;
    case "field independence" test_independence_across_fields;
    case "sequential queries follow binomial law" test_success_count_binomial_law;
    case "successes matches success_count" test_successes_matches_success_count;
    case "execution rates with the oracle" test_execution_uses_oracle_rates;
  ]
