open Helpers
module Sim = Nakamoto_sim

let run_scenario scenario =
  Sim.Execution.run
    (match scenario with
    | `Honest -> Sim.Scenarios.honest_baseline ~seed:21L
    | `Safe -> Sim.Scenarios.safe_zone ~seed:21L ~nu:0.25
    | `Attack -> Sim.Scenarios.attack_zone ~seed:21L ~nu:0.3
    | `Split -> Sim.Scenarios.split_world ~seed:21L)

let test_honest_run_consistent () =
  let r = run_scenario `Honest in
  let report = Sim.Metrics.check_consistency r in
  check_int "no violations" 0 report.violations;
  check_int "worst depth 0" 0 report.worst_violation_depth;
  check_true "pairs were checked" (report.pairs_checked > 0)

let test_safe_zone_consistent () =
  let r = run_scenario `Safe in
  let report = Sim.Metrics.check_consistency r in
  check_int "no violations above the bound" 0 report.violations;
  check_true "small reorgs only" (r.max_reorg_depth <= 3)

let test_attack_zone_breaks_consistency () =
  let r = run_scenario `Attack in
  let report = Sim.Metrics.check_consistency r in
  check_true "deep reorgs" (r.max_reorg_depth > 6);
  check_true "violations detected" (report.violations > 0);
  check_true "worst depth positive" (report.worst_violation_depth > 0);
  (* A larger audit window hides the attack again (T above the reorg). *)
  let forgiving = Sim.Metrics.check_consistency ~truncate:50 r in
  check_int "huge T forgives" 0 forgiving.violations

let test_truncate_monotone () =
  let r = run_scenario `Attack in
  let v t = (Sim.Metrics.check_consistency ~truncate:t r).violations in
  check_true "violations decrease with T" (v 2 >= v 6 && v 6 >= v 12);
  check_raises_invalid "negative T" (fun () -> ignore (v (-1)))

let test_chain_growth () =
  let r = run_scenario `Honest in
  let g = Sim.Metrics.chain_growth r in
  check_int "rounds recorded" r.config.Sim.Config.rounds g.rounds;
  check_true "grew" (g.final_height > 0);
  close "rate consistent"
    (float_of_int g.final_height /. float_of_int g.rounds)
    g.growth_rate;
  (* Growth is bounded by total honest production. *)
  check_true "height <= honest blocks" (g.final_height <= r.honest_blocks)

let test_chain_quality () =
  let honest = run_scenario `Honest in
  close "all honest" 1. (Sim.Metrics.chain_quality honest);
  let attack = run_scenario `Attack in
  let q = Sim.Metrics.chain_quality attack in
  check_true "attack degrades quality" (q < 0.9);
  check_true "quality in [0,1]" (q >= 0. && q <= 1.)

let test_disagreement () =
  let honest = run_scenario `Honest in
  check_true "honest miners nearly agree"
    (Sim.Metrics.max_disagreement honest <= 2);
  let split = run_scenario `Split in
  check_true "split world disagrees more"
    (Sim.Metrics.max_disagreement split >= Sim.Metrics.max_disagreement honest)

let test_agreed_prefix () =
  let r = run_scenario `Honest in
  match r.snapshots with
  | [] -> Alcotest.fail "expected snapshots"
  | snap :: _ ->
    let h = Sim.Metrics.agreed_prefix_height r snap in
    let min_tip =
      Array.fold_left
        (fun acc (b : Nakamoto_chain.Block.t) -> min acc b.height)
        max_int snap.tips
    in
    check_true "agreed prefix below every tip" (h <= min_tip);
    check_true "agreed prefix nonnegative" (h >= 0)

let suite =
  [
    case "honest run consistent" test_honest_run_consistent;
    case "safe zone consistent" test_safe_zone_consistent;
    case "attack zone breaks consistency" test_attack_zone_breaks_consistency;
    case "violations monotone in T" test_truncate_monotone;
    case "chain growth" test_chain_growth;
    case "chain quality" test_chain_quality;
    case "disagreement" test_disagreement;
    case "agreed prefix" test_agreed_prefix;
  ]
