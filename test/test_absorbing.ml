open Helpers
module Chain = Nakamoto_markov.Chain
module Absorbing = Nakamoto_markov.Absorbing

(* Gambler's ruin on 0..n with up-probability q: absorption at n from k has
   the classic closed form ((r^k - 1) / (r^n - 1)) with r = (1-q)/q. *)
let ruin_chain ~n ~q =
  let rows =
    Array.init (n + 1) (fun i ->
        if i = 0 || i = n then [ (i, 1.) ]
        else [ (i + 1, q); (i - 1, 1. -. q) ])
  in
  Chain.create ~size:(n + 1) ~rows ()

let ruin_closed_form ~n ~q ~k =
  if q = 0.5 then float_of_int k /. float_of_int n
  else begin
    let r = (1. -. q) /. q in
    ((r ** float_of_int k) -. 1.) /. ((r ** float_of_int n) -. 1.)
  end

let test_gamblers_ruin_probabilities () =
  List.iter
    (fun (n, q) ->
      let chain = ruin_chain ~n ~q in
      let a = Absorbing.create ~chain ~absorbing:[ 0; n ] in
      for k = 0 to n do
        close ~rtol:1e-9
          (Printf.sprintf "ruin n=%d q=%g k=%d" n q k)
          (ruin_closed_form ~n ~q ~k)
          (Absorbing.absorption_probability a ~from:k ~into:n)
      done)
    [ (5, 0.5); (10, 0.3); (8, 0.7); (20, 0.45) ]

let test_absorption_distribution_sums_to_one () =
  let chain = ruin_chain ~n:7 ~q:0.4 in
  let a = Absorbing.create ~chain ~absorbing:[ 0; 7 ] in
  for k = 0 to 7 do
    let dist = Absorbing.absorption_distribution a ~from:k in
    let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
    close "distribution sums to 1" 1. total
  done

let test_expected_steps () =
  (* Symmetric ruin on 0..n from k: expected time k (n - k). *)
  let n = 10 in
  let chain = ruin_chain ~n ~q:0.5 in
  let a = Absorbing.create ~chain ~absorbing:[ 0; n ] in
  for k = 0 to n do
    close ~rtol:1e-9
      (Printf.sprintf "expected time from %d" k)
      (float_of_int (k * (n - k)))
      (Absorbing.expected_steps_to_absorption a ~from:k)
  done

let test_absorbing_state_edge_cases () =
  let chain = ruin_chain ~n:4 ~q:0.5 in
  let a = Absorbing.create ~chain ~absorbing:[ 0; 4 ] in
  close "from absorbing into itself" 1.
    (Absorbing.absorption_probability a ~from:4 ~into:4);
  close "from absorbing into other" 0.
    (Absorbing.absorption_probability a ~from:0 ~into:4);
  close "no steps when absorbed" 0. (Absorbing.expected_steps_to_absorption a ~from:0);
  check_int "transient states" 3 (List.length (Absorbing.transient_states a))

let test_validation () =
  let chain = ruin_chain ~n:4 ~q:0.5 in
  check_raises_invalid "empty absorbing set" (fun () ->
      ignore (Absorbing.create ~chain ~absorbing:[]));
  check_raises_invalid "duplicate" (fun () ->
      ignore (Absorbing.create ~chain ~absorbing:[ 0; 0 ]));
  check_raises_invalid "out of range" (fun () ->
      ignore (Absorbing.create ~chain ~absorbing:[ 9 ]));
  let a = Absorbing.create ~chain ~absorbing:[ 0; 4 ] in
  check_raises_invalid "target not absorbing" (fun () ->
      ignore (Absorbing.absorption_probability a ~from:1 ~into:2));
  (* A transient component that cannot reach absorption must be rejected. *)
  let disconnected =
    Chain.create ~size:3
      ~rows:[| [ (0, 1.) ]; [ (2, 1.) ]; [ (1, 1.) ] |]
      ()
  in
  check_raises_invalid "unreachable absorption" (fun () ->
      ignore (Absorbing.create ~chain:disconnected ~absorbing:[ 0 ]))

let test_monte_carlo_agreement () =
  let n = 8 and q = 0.35 in
  let chain = ruin_chain ~n ~q in
  let a = Absorbing.create ~chain ~absorbing:[ 0; n ] in
  let g = rng () in
  let trials = 50_000 in
  let wins = ref 0 in
  for _ = 1 to trials do
    let state = ref 3 in
    while !state <> 0 && !state <> n do
      state := if Nakamoto_prob.Rng.bernoulli g ~p:q then !state + 1 else !state - 1
    done;
    if !state = n then incr wins
  done;
  let empirical = float_of_int !wins /. float_of_int trials in
  let exact = Absorbing.absorption_probability a ~from:3 ~into:n in
  check_true
    (Printf.sprintf "MC %.4f vs exact %.4f" empirical exact)
    (Float.abs (empirical -. exact) < 0.01)

let props =
  [
    prop ~count:60 "probabilities are in [0,1] and monotone in start"
      QCheck2.Gen.(pair (int_range 3 15) (float_range 0.2 0.8))
      (fun (n, q) ->
        let chain = ruin_chain ~n ~q in
        let a = Absorbing.create ~chain ~absorbing:[ 0; n ] in
        let ps =
          List.init (n + 1) (fun k ->
              Absorbing.absorption_probability a ~from:k ~into:n)
        in
        List.for_all (fun p -> p >= -1e-12 && p <= 1. +. 1e-12) ps
        && List.for_all2 (fun a b -> a <= b +. 1e-9) ps (List.tl ps @ [ 1. ]));
  ]

let suite =
  [
    case "gambler's ruin closed form" test_gamblers_ruin_probabilities;
    case "absorption distribution sums to 1" test_absorption_distribution_sums_to_one;
    case "expected steps (symmetric walk)" test_expected_steps;
    case "absorbing-state edge cases" test_absorbing_state_edge_cases;
    case "validation" test_validation;
    case "Monte-Carlo agreement" test_monte_carlo_agreement;
  ]
  @ props
