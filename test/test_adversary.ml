open Helpers
module Adversary = Nakamoto_sim.Adversary
module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree
module Network = Nakamoto_net.Network

let honest_block ~parent ~miner ~round =
  Block.mine ~parent ~miner ~miner_class:Block.Honest ~round ~nonce:0
    ~payload:""

let test_create_validation () =
  check_raises_invalid "no honest" (fun () ->
      ignore (Adversary.create ~strategy:Adversary.Idle ~honest_count:0));
  check_raises_invalid "reorg target" (fun () ->
      ignore
        (Adversary.create
           ~strategy:(Adversary.Private_chain { reorg_target = 0 })
           ~honest_count:4));
  check_raises_invalid "group boundary" (fun () ->
      ignore
        (Adversary.create
           ~strategy:(Adversary.Balance { group_boundary = 4 })
           ~honest_count:4))

let test_idle_does_nothing () =
  let a = Adversary.create ~strategy:Adversary.Idle ~honest_count:4 in
  let releases = Adversary.act a ~round:1 ~successes:5 in
  check_true "no releases" (releases = []);
  check_int "no blocks" 0 (Adversary.blocks_mined a);
  check_raises_invalid "negative successes" (fun () ->
      ignore (Adversary.act a ~round:1 ~successes:(-1)))

let test_private_chain_withholds_until_lead () =
  let a =
    Adversary.create
      ~strategy:(Adversary.Private_chain { reorg_target = 2 })
      ~honest_count:3
  in
  (* Adversary mines two blocks privately: no release (public hasn't grown). *)
  check_true "withholds" (Adversary.act a ~round:1 ~successes:2 = []);
  check_int "mined privately" 2 (Adversary.blocks_mined a);
  check_int "private height 2" 2 (Adversary.private_tip a).Block.height;
  (* Honest chain grows by 2 (public lead = 2 over the genesis fork), while
     the adversary keeps one block ahead. *)
  let h1 = honest_block ~parent:Block.genesis ~miner:0 ~round:2 in
  let h2 = honest_block ~parent:h1 ~miner:1 ~round:3 in
  Adversary.observe a [ h1 ];
  check_true "still quiet" (Adversary.act a ~round:2 ~successes:1 = []);
  Adversary.observe a [ h2 ];
  match Adversary.act a ~round:3 ~successes:1 with
  | [ { Adversary.audience; delay; blocks } ] ->
    check_true "release to all honest" (audience = Adversary.All_honest);
    check_int "immediate release" 1 delay;
    check_int "whole private chain" 4 (List.length blocks);
    check_int "one reorg" 1 (Adversary.reorgs_caused a)
  | _ -> Alcotest.fail "expected one release"

let test_private_chain_adopts_when_behind () =
  let a =
    Adversary.create
      ~strategy:(Adversary.Private_chain { reorg_target = 5 })
      ~honest_count:2
  in
  (* Honest chain runs ahead while the adversary has nothing. *)
  let h1 = honest_block ~parent:Block.genesis ~miner:0 ~round:1 in
  let h2 = honest_block ~parent:h1 ~miner:0 ~round:2 in
  Adversary.observe a [ h1; h2 ];
  ignore (Adversary.act a ~round:3 ~successes:1);
  (* The private tip must now extend the adopted public tip. *)
  let tip = Adversary.private_tip a in
  check_int "forked from public tip" 3 tip.Block.height;
  check_true "parent is public tip"
    (Nakamoto_chain.Hash.equal tip.Block.parent h2.Block.hash)

let test_balance_releases_to_both_groups () =
  let a =
    Adversary.create
      ~strategy:(Adversary.Balance { group_boundary = 2 })
      ~honest_count:4
  in
  let releases = Adversary.act a ~round:1 ~successes:1 in
  check_int "two releases per block" 2 (List.length releases);
  let near = List.nth releases 0 and far = List.nth releases 1 in
  check_int "near group immediate" 1 near.Adversary.delay;
  check_true "far group delayed" (far.Adversary.delay > 1);
  let audience_size r =
    match r.Adversary.audience with
    | Adversary.Only l -> List.length l
    | Adversary.All_honest -> Alcotest.fail "balance releases target one group"
  in
  check_int "near + far = all honest" 4 (audience_size near + audience_size far)

let test_balance_targets_shorter_branch () =
  let a =
    Adversary.create
      ~strategy:(Adversary.Balance { group_boundary = 2 })
      ~honest_count:4
  in
  (* Group A (miners 0,1) builds two blocks; branch B is shorter. *)
  let a1 = honest_block ~parent:Block.genesis ~miner:0 ~round:1 in
  let a2 = honest_block ~parent:a1 ~miner:1 ~round:2 in
  Adversary.observe a [ a1; a2 ];
  (match Adversary.act a ~round:3 ~successes:1 with
  | first :: _ ->
    (* The mined block must go to group B (recipients 2, 3). *)
    check_true "released to group B"
      (match first.Adversary.audience with
      | Adversary.Only l -> List.sort compare l = [ 2; 3 ]
      | Adversary.All_honest -> false)
  | [] -> Alcotest.fail "expected releases");
  check_int "one adversarial block" 1 (Adversary.blocks_mined a)

let test_delay_policy_for () =
  (match Adversary.delay_policy_for Adversary.Idle ~delta:4 ~honest_count:4 with
  | Network.Immediate -> ()
  | _ -> Alcotest.fail "idle should be immediate");
  (match
     Adversary.delay_policy_for
       (Adversary.Private_chain { reorg_target = 3 })
       ~delta:4 ~honest_count:4
   with
  | Network.Maximal -> ()
  | _ -> Alcotest.fail "private chain should be maximal");
  match
    Adversary.delay_policy_for
      (Adversary.Balance { group_boundary = 2 })
      ~delta:4 ~honest_count:4
  with
  | Network.Per_recipient f ->
    let msg sender = { Network.sender; sent_round = 1; blocks = [] } in
    check_int "in-group fast" 1 (f ~recipient:1 (msg 0));
    check_int "cross-group slow" 4 (f ~recipient:3 (msg 0));
    check_int "adversarial releases not slowed" 1 (f ~recipient:3 (msg (-1)))
  | _ -> Alcotest.fail "balance should be per-recipient"

let test_selfish_withholds_then_banks () =
  let a = Adversary.create ~strategy:Adversary.Selfish_mining ~honest_count:3 in
  (* Two private blocks: withheld silently. *)
  check_true "withholds at lead 2" (Adversary.act a ~round:1 ~successes:2 = []);
  check_int "mined 2" 2 (Adversary.blocks_mined a);
  (* An honest block shrinks the lead 2 -> 1: the selfish miner banks the
     whole branch next act. *)
  let h1 = honest_block ~parent:Block.genesis ~miner:0 ~round:2 in
  Adversary.observe a [ h1 ];
  (match Adversary.act a ~round:3 ~successes:0 with
  | [ { Adversary.blocks; audience; delay } ] ->
    check_int "banks both blocks" 2 (List.length blocks);
    check_true "to everyone" (audience = Adversary.All_honest);
    check_int "instantly" 1 delay
  | _ -> Alcotest.fail "expected the branch to be published");
  check_int "one reorg event" 1 (Adversary.reorgs_caused a)

let test_selfish_races_at_tie () =
  let a = Adversary.create ~strategy:Adversary.Selfish_mining ~honest_count:3 in
  (* One private block, then an honest block ties it. *)
  check_true "withholds single block" (Adversary.act a ~round:1 ~successes:1 = []);
  let h1 = honest_block ~parent:Block.genesis ~miner:0 ~round:2 in
  Adversary.observe a [ h1 ];
  (match Adversary.act a ~round:3 ~successes:0 with
  | [ { Adversary.blocks; _ } ] -> check_int "publishes the rival" 1 (List.length blocks)
  | _ -> Alcotest.fail "expected a race release")

let test_selfish_abandons_when_passed () =
  let a = Adversary.create ~strategy:Adversary.Selfish_mining ~honest_count:2 in
  ignore (Adversary.act a ~round:1 ~successes:1);
  (* Honest chain jumps two ahead of the fork: private branch hopeless. *)
  let h1 = honest_block ~parent:Block.genesis ~miner:0 ~round:2 in
  let h2 = honest_block ~parent:h1 ~miner:1 ~round:3 in
  Adversary.observe a [ h1; h2 ];
  (* First act reacts: tie release (lead 1-2 = -1 -> abandon, no release). *)
  check_true "no release when passed" (Adversary.act a ~round:4 ~successes:0 = []);
  (* The next private success must extend the public tip. *)
  ignore (Adversary.act a ~round:5 ~successes:1);
  let tip = Adversary.private_tip a in
  check_int "re-forked from public tip" 3 tip.Block.height

let test_view_is_omniscient () =
  let a =
    Adversary.create
      ~strategy:(Adversary.Private_chain { reorg_target = 10 })
      ~honest_count:2
  in
  let h1 = honest_block ~parent:Block.genesis ~miner:0 ~round:1 in
  Adversary.observe a [ h1 ];
  ignore (Adversary.act a ~round:2 ~successes:3);
  (* god view holds genesis + honest + all withheld private blocks. *)
  check_int "god view size" 5 (Block_tree.block_count (Adversary.view a))

let test_advance_empty_matches_repeated_acts () =
  (* advance_empty over k quiet rounds must leave the adversary in the
     same state as k explicit [act ~successes:0] calls — the Skip
     executor's bulk advance, checked for every shipped strategy. *)
  let strategies =
    [
      ("idle", Adversary.Idle);
      ("private chain", Adversary.Private_chain { reorg_target = 4 });
      ("selfish", Adversary.Selfish_mining);
      ("balance", Adversary.Balance { group_boundary = 3 });
    ]
  in
  List.iter
    (fun (name, strategy) ->
      let prime ad =
        (* Identical non-trivial history on both lanes: one honest block
           observed, one mining round with two successes. *)
        Adversary.observe ad
          [ honest_block ~parent:Block.genesis ~miner:0 ~round:1 ];
        ignore (Adversary.act ad ~round:1 ~successes:2)
      in
      let a = Adversary.create ~strategy ~honest_count:6 in
      let b = Adversary.create ~strategy ~honest_count:6 in
      prime a;
      prime b;
      Adversary.advance_empty a ~round:2 ~rounds:10;
      for r = 2 to 11 do
        check_true
          (Printf.sprintf "%s: quiet round %d releases nothing" name r)
          (Adversary.act b ~round:r ~successes:0 = [])
      done;
      check_int
        (Printf.sprintf "%s: same blocks mined" name)
        (Adversary.blocks_mined b) (Adversary.blocks_mined a);
      check_int
        (Printf.sprintf "%s: same god view" name)
        (Block_tree.block_count (Adversary.view b))
        (Block_tree.block_count (Adversary.view a));
      (* The two lanes must stay in lockstep on the next real event. *)
      let ra = Adversary.act a ~round:12 ~successes:1 in
      let rb = Adversary.act b ~round:12 ~successes:1 in
      check_int
        (Printf.sprintf "%s: same releases after the span" name)
        (List.length rb) (List.length ra);
      check_int
        (Printf.sprintf "%s: same blocks after the span" name)
        (Adversary.blocks_mined b) (Adversary.blocks_mined a))
    strategies;
  let a = Adversary.create ~strategy:Adversary.Idle ~honest_count:2 in
  check_raises_invalid "negative span" (fun () ->
      Adversary.advance_empty a ~round:1 ~rounds:(-1))

let suite =
  [
    case "create validation" test_create_validation;
    case "idle strategy" test_idle_does_nothing;
    case "private chain withholds then releases" test_private_chain_withholds_until_lead;
    case "private chain adopts when behind" test_private_chain_adopts_when_behind;
    case "balance releases to both groups" test_balance_releases_to_both_groups;
    case "balance targets shorter branch" test_balance_targets_shorter_branch;
    case "selfish withholds then banks" test_selfish_withholds_then_banks;
    case "selfish races at tie" test_selfish_races_at_tie;
    case "selfish abandons when passed" test_selfish_abandons_when_passed;
    case "delay policies per strategy" test_delay_policy_for;
    case "omniscient view" test_view_is_omniscient;
    case "advance_empty matches repeated quiet acts"
      test_advance_empty_matches_repeated_acts;
  ]
