open Helpers
module I = Nakamoto_numerics.Interval
module Certify = Nakamoto_core.Certify

let test_make_validation () =
  check_raises_invalid "lo > hi" (fun () -> ignore (I.make ~lo:2. ~hi:1.));
  check_raises_invalid "nan" (fun () -> ignore (I.make ~lo:nan ~hi:1.));
  check_raises_invalid "point nan" (fun () -> ignore (I.point nan));
  let x = I.make ~lo:1. ~hi:2. in
  close "lo" 1. (I.lo x);
  close "hi" 2. (I.hi x);
  close "width" 1. (I.width x)

let test_containment_basics () =
  let x = I.make ~lo:1. ~hi:2. in
  check_true "contains interior" (I.contains x 1.5);
  check_true "contains endpoints" (I.contains x 1. && I.contains x 2.);
  check_false "excludes outside" (I.contains x 2.1)

let contains_true_result op_interval true_value msg =
  check_true
    (Printf.sprintf "%s: %.17g in [%.17g, %.17g]" msg true_value
       (I.lo op_interval) (I.hi op_interval))
    (I.contains op_interval true_value)

let test_arithmetic_encloses () =
  let a = I.point 0.1 and b = I.point 0.2 in
  (* 0.1 + 0.2 <> 0.3 in floats; the enclosure must contain the float sum
     and be wider than a point. *)
  let sum = I.add a b in
  contains_true_result sum (0.1 +. 0.2) "add";
  check_true "widened" (I.width sum > 0.);
  contains_true_result (I.sub a b) (0.1 -. 0.2) "sub";
  contains_true_result (I.mul a b) (0.1 *. 0.2) "mul";
  contains_true_result (I.div a b) (0.1 /. 0.2) "div";
  contains_true_result (I.exp a) (exp 0.1) "exp";
  contains_true_result (I.log b) (log 0.2) "log";
  contains_true_result (I.neg a) (-0.1) "neg";
  contains_true_result (I.one_minus a) 0.9 "one_minus"

let test_mul_signs () =
  (* Mixed-sign multiplication picks the right corners. *)
  let a = I.make ~lo:(-2.) ~hi:3. and b = I.make ~lo:(-5.) ~hi:4. in
  let p = I.mul a b in
  check_true "lower corner" (I.lo p <= -15.);
  check_true "upper corner" (I.hi p >= 12.);
  List.iter
    (fun (x, y) -> contains_true_result p (x *. y) "corner product")
    [ (-2., -5.); (-2., 4.); (3., -5.); (3., 4.) ]

let test_div_zero_rejected () =
  check_raises_invalid "divisor spans zero" (fun () ->
      ignore (I.div (I.point 1.) (I.make ~lo:(-1.) ~hi:1.)));
  check_raises_invalid "log of nonpositive" (fun () ->
      ignore (I.log (I.make ~lo:0. ~hi:1.)))

let test_sign_predicates () =
  check_true "positive" (I.strictly_positive (I.make ~lo:0.1 ~hi:2.));
  check_false "straddles" (I.strictly_positive (I.make ~lo:(-0.1) ~hi:2.));
  check_true "negative" (I.strictly_negative (I.make ~lo:(-2.) ~hi:(-0.1)))

let test_certified_numax () =
  List.iter
    (fun c ->
      match Certify.certify_neat_numax ~c () with
      | Some cert ->
        (* The certificate is internally consistent... *)
        check_true "below margin positive" (I.strictly_positive cert.below_margin);
        check_true "above margin negative" (I.strictly_negative cert.above_margin);
        (* ...and brackets the bisection answer. *)
        close ~rtol:1e-6 (Printf.sprintf "answer at c=%g" c)
          (Nakamoto_core.Bounds.neat_numax ~c)
          cert.nu
      | None -> Alcotest.failf "certification failed at c = %g" c)
    [ 0.5; 1.; 2.; 3.; 10.; 100. ]

let test_certification_fails_when_too_tight () =
  (* A bracket narrower than the bisection tolerance cannot be proven. *)
  check_true "radius below solver tolerance fails"
    (Certify.certify_neat_numax ~radius:1e-16 ~c:3. () = None);
  check_raises_invalid "radius 0" (fun () ->
      ignore (Certify.certify_neat_numax ~radius:0. ~c:3. ()))

let test_certification_domain_edge () =
  (* Huge c puts nu_max within radius of 1/2: certification must decline
     rather than claim anything. *)
  check_true "domain edge declines"
    (Certify.certify_neat_numax ~radius:1e-2 ~c:1e6 () = None)

let props =
  [
    prop "interval ops enclose real arithmetic"
      QCheck2.Gen.(
        let* a = float_range 0.01 10. in
        let* b = float_range 0.01 10. in
        return (a, b))
      (fun (a, b) ->
        let ia = I.point a and ib = I.point b in
        I.contains (I.add ia ib) (a +. b)
        && I.contains (I.sub ia ib) (a -. b)
        && I.contains (I.mul ia ib) (a *. b)
        && I.contains (I.div ia ib) (a /. b)
        && I.contains (I.log ia) (log a)
        && I.contains (I.pow ia b) (a ** b)
        && I.contains (I.log1p (I.point (1. /. (1. +. a)))) (log1p (1. /. (1. +. a))));
    prop ~count:60 "certification succeeds across c"
      QCheck2.Gen.(float_range 0.3 100.)
      (fun c -> Certify.certify_neat_numax ~c () <> None);
  ]

let test_exp_floor_and_log1p () =
  (* exp's outward rounding must never produce a negative lower endpoint
     (Float.pred underflows past zero) — a negative floor would poison
     every division it later feeds. *)
  let tiny = I.exp (I.make ~lo:(-800.) ~hi:(-700.)) in
  check_true "exp lower endpoint never negative" (I.lo tiny >= 0.);
  check_true "exp still contains the true value"
    (I.contains (I.exp (I.point (-2.))) (exp (-2.)));
  check_true "log1p contains the true value"
    (I.contains (I.log1p (I.point (-1e-4))) (log1p (-1e-4)));
  check_raises_invalid "log1p at the domain edge" (fun () ->
      ignore (I.log1p (I.point (-1.))))

let test_pow_and_clamp () =
  let r = I.make ~lo:0.2 ~hi:0.3 in
  check_true "pow contains an interior power"
    (I.contains (I.pow r 3.) (0.25 ** 3.));
  check_true "pow of exponent zero contains one" (I.contains (I.pow r 0.) 1.);
  check_true "pow lower endpoint never negative"
    (I.lo (I.pow (I.make ~lo:0. ~hi:1e-160) 2.) >= 0.);
  check_raises_invalid "pow rejects a negative base" (fun () ->
      ignore (I.pow (I.make ~lo:(-1.) ~hi:1.) 2.));
  check_raises_invalid "pow rejects a negative exponent" (fun () ->
      ignore (I.pow r (-1.)));
  (* clamp is exact: saturated endpoints land on the bounds themselves,
     no outward widening. *)
  let c = I.clamp ~lo:0. ~hi:1. (I.make ~lo:(-0.5) ~hi:2.) in
  check_true "clamp saturates exactly" (I.lo c = 0. && I.hi c = 1.);
  let c2 = I.clamp ~lo:0. ~hi:1. (I.make ~lo:0.25 ~hi:0.5) in
  check_true "clamp keeps interior endpoints" (I.lo c2 = 0.25 && I.hi c2 = 0.5);
  check_raises_invalid "clamp rejects inverted bounds" (fun () ->
      ignore (I.clamp ~lo:1. ~hi:0. (I.point 0.5)))

let suite =
  [
    case "make validation" test_make_validation;
    case "containment" test_containment_basics;
    case "exp floor and log1p" test_exp_floor_and_log1p;
    case "pow and clamp" test_pow_and_clamp;
    case "arithmetic encloses true results" test_arithmetic_encloses;
    case "mixed-sign multiplication" test_mul_signs;
    case "division by zero-spanning rejected" test_div_zero_rejected;
    case "sign predicates" test_sign_predicates;
    case "certified neat numax" test_certified_numax;
    case "too-tight radius fails honestly" test_certification_fails_when_too_tight;
    case "domain edge declines" test_certification_domain_edge;
  ]
  @ props
