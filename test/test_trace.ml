open Helpers
module Trace = Nakamoto_sim.Trace
module Sim = Nakamoto_sim

let entry ?(round = 1) ?(hb = 0) ?(ab = 0) ?(rel = 0) ?(bh = 0) ?(rd = 0) () =
  {
    Trace.round;
    honest_blocks = hb;
    adversary_blocks = ab;
    releases = rel;
    best_height = bh;
    reorg_depth = rd;
  }

let test_record_ordering () =
  let t = Trace.create () in
  Trace.record t (entry ~round:1 ());
  Trace.record t (entry ~round:3 ());
  check_int "length" 2 (Trace.length t);
  check_raises_invalid "non-increasing round" (fun () ->
      Trace.record t (entry ~round:3 ()))

let test_roundtrip () =
  let t = Trace.create () in
  Trace.record t (entry ~round:1 ~hb:2 ~bh:1 ());
  Trace.record t (entry ~round:2 ~ab:1 ~rel:1 ~bh:2 ~rd:3 ());
  let s = Trace.to_string t in
  let back = Trace.of_string s in
  check_true "roundtrip equal" (Trace.equal t back);
  check_true "header present" (contains_substring ~affix:"nakamoto trace v1" s)

let test_parse_errors () =
  (match Trace.of_string "no header\n1 2 3 4 5 6\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing header must fail");
  (match Trace.of_string "# nakamoto trace v1\n1 2 3\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "wrong arity must fail");
  match Trace.of_string "# nakamoto trace v1\n1 2 3 x 5 6\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "non-numeric must fail"

(* The parser's rejection diagnostics, message for message: the exact
   strings are part of the interface (operators grep logs for them), so
   a reworded or mis-numbered error is a regression, not a refactor. *)
let test_parse_error_messages () =
  let expect_message label input expected =
    match Trace.of_string input with
    | exception Failure msg ->
      if msg <> expected then
        Alcotest.failf "%s: error %S, expected %S" label msg expected
    | _ -> Alcotest.failf "%s: expected Failure %S" label expected
  in
  expect_message "missing header" "1 2 3 4 5 6\n"
    "Trace.of_string: missing v1 header";
  expect_message "empty input" "" "Trace.of_string: missing v1 header";
  expect_message "wrong version" "# nakamoto trace v2\n1 2 3 4 5 6\n"
    "Trace.of_string: missing v1 header";
  (* Line numbers are 1-based over the whole file, header included. *)
  expect_message "short line" "# nakamoto trace v1\n1 0 0 0 1 0\n2 0 0\n"
    "Trace.of_string: expected 6 fields on line 3";
  expect_message "trailing garbage"
    "# nakamoto trace v1\n1 0 0 0 1 0 extra\n"
    "Trace.of_string: expected 6 fields on line 2";
  expect_message "non-integer field"
    "# nakamoto trace v1\n1 0 0 0 1 0\n2 0 zero 0 1 0\n"
    "Trace.of_string: non-numeric field on line 3";
  expect_message "float field" "# nakamoto trace v1\n1 0.5 0 0 1 0\n"
    "Trace.of_string: non-numeric field on line 2";
  (* Comment and blank lines are skipped, not line-number-shifting
     errors: the entry on (file) line 4 is reported as line 4. *)
  expect_message "comments keep line numbers"
    "# nakamoto trace v1\n# a comment\n\n1 2 3\n"
    "Trace.of_string: expected 6 fields on line 4"

let test_capture_deterministic () =
  let cfg =
    { (Sim.Scenarios.attack_zone ~seed:9L ~nu:0.3) with Sim.Config.rounds = 400 }
  in
  let a = Trace.capture cfg in
  let b = Trace.capture cfg in
  check_int "rounds captured" 400 (Trace.length a);
  check_true "equal traces from equal seeds" (Trace.equal a b);
  let c = Trace.capture { cfg with seed = 10L } in
  check_false "different seed differs" (Trace.equal a c);
  (* Serialized form also roundtrips. *)
  check_true "capture roundtrip"
    (Trace.equal a (Trace.of_string (Trace.to_string a)))

let test_capture_matches_result () =
  let cfg =
    { (Sim.Scenarios.honest_baseline ~seed:9L) with Sim.Config.rounds = 500 }
  in
  let trace = Trace.capture cfg in
  let result = Sim.Execution.run cfg in
  let total f =
    List.fold_left (fun acc e -> acc + f e) 0 (Trace.entries trace)
  in
  check_int "honest totals agree" result.honest_blocks
    (total (fun (e : Trace.entry) -> e.honest_blocks));
  check_int "adversary totals agree" result.adversary_blocks
    (total (fun (e : Trace.entry) -> e.adversary_blocks));
  let max_reorg =
    List.fold_left
      (fun acc (e : Trace.entry) -> max acc e.reorg_depth)
      0 (Trace.entries trace)
  in
  check_int "reorg agrees" result.max_reorg_depth max_reorg

let test_digest_basics () =
  let a = Trace.create () and b = Trace.create () in
  check_true "empty digests equal" (Trace.digest a = Trace.digest b);
  Trace.record a (entry ~round:1 ~hb:2 ~bh:1 ());
  Trace.record b (entry ~round:1 ~hb:2 ~bh:1 ());
  check_true "equal traces, equal digests" (Trace.digest a = Trace.digest b);
  Trace.record b (entry ~round:2 ());
  check_true "appending moves the digest" (Trace.digest a <> Trace.digest b);
  let c = Trace.create () in
  Trace.record c (entry ~round:1 ~hb:2 ~bh:1 ~rd:1 ());
  check_true "single-field drift moves the digest"
    (Trace.digest a <> Trace.digest c)

(* Golden digests for the Aggregate executor (with their Exact twins for
   contrast): any change to the aggregate sampling order, the Δ-ring
   delivery order, or the trace capture itself moves one of these.  Pins
   were produced by this build; to re-pin after an intentional change,
   run the test and copy the printed actuals. *)
let test_digest_golden () =
  let drifted = ref [] in
  let pin name cfg expected =
    let actual = Trace.digest (Trace.capture cfg) in
    if actual <> expected then
      drifted :=
        Printf.sprintf "%s: digest %LdL, pinned %LdL" name actual expected
        :: !drifted
  in
  let idle = { Sim.Config.default with rounds = 300 } in
  let selfish = { (Sim.Scenarios.selfish ~seed:7L ~nu:0.3) with rounds = 300 } in
  let private_chain =
    { (Sim.Scenarios.attack_zone ~seed:9L ~nu:0.3) with rounds = 300 }
  in
  let aggregate cfg = { cfg with Sim.Config.mining_mode = Sim.Config.Aggregate } in
  pin "idle exact" idle (-8529630278043617785L);
  pin "idle aggregate" (aggregate idle) 8135491591983535470L;
  pin "selfish exact" selfish 593782077359320743L;
  pin "selfish aggregate" (aggregate selfish) (-1688032004928090375L);
  pin "private-chain exact" private_chain 824747865138562576L;
  pin "private-chain aggregate" (aggregate private_chain)
    (-6121173026786046363L);
  if !drifted <> [] then
    Alcotest.failf "%s" (String.concat "\n" (List.rev !drifted))

let test_summarize () =
  let t = Trace.create () in
  Trace.record t (entry ~round:1 ~hb:2 ~bh:1 ());
  let s = Trace.summarize t in
  check_true "mentions rounds" (contains_substring ~affix:"1 rounds" s);
  check_true "mentions blocks" (contains_substring ~affix:"2 honest blocks" s)

let suite =
  [
    case "record ordering" test_record_ordering;
    case "text roundtrip" test_roundtrip;
    case "parse errors" test_parse_errors;
    case "parse error messages" test_parse_error_messages;
    case "capture determinism" test_capture_deterministic;
    case "capture matches execution result" test_capture_matches_result;
    case "digest basics" test_digest_basics;
    case "digest goldens (exact and aggregate)" test_digest_golden;
    case "summarize" test_summarize;
  ]
