open Helpers
module Suffix_chain = Nakamoto_core.Suffix_chain
module Chain = Nakamoto_markov.Chain
module Round_state = Nakamoto_sim.Round_state

let test_state_indexing_bijective () =
  List.iter
    (fun delta ->
      for i = 0 to Suffix_chain.state_count ~delta - 1 do
        let s = Suffix_chain.state_of_index ~delta i in
        check_int
          (Printf.sprintf "roundtrip %d (delta %d)" i delta)
          i
          (Suffix_chain.index_of_state ~delta s)
      done)
    [ 1; 2; 5; 17 ];
  check_int "count" 11 (Suffix_chain.state_count ~delta:5);
  check_raises_invalid "bad index" (fun () ->
      ignore (Suffix_chain.state_of_index ~delta:3 7));
  check_raises_invalid "bad Recent" (fun () ->
      ignore (Suffix_chain.index_of_state ~delta:3 (Suffix_chain.Recent 3)))

let test_transition_rules () =
  let delta = 4 in
  let step = Suffix_chain.step ~delta in
  (* Rule 3: any recent/deep-recent + H -> Recent 0. *)
  check_true "recent + H" (step (Suffix_chain.Recent 2) ~h:true = Suffix_chain.Recent 0);
  check_true "deep-recent + H"
    (step (Suffix_chain.Deep_recent 3) ~h:true = Suffix_chain.Recent 0);
  (* Rule 2: Deep + H -> Deep_recent 0. *)
  check_true "deep + H" (step Suffix_chain.Deep ~h:true = Suffix_chain.Deep_recent 0);
  (* Rule 1: N increments the trailing run. *)
  check_true "recent + N" (step (Suffix_chain.Recent 1) ~h:false = Suffix_chain.Recent 2);
  check_true "deep-recent + N"
    (step (Suffix_chain.Deep_recent 0) ~h:false = Suffix_chain.Deep_recent 1);
  (* Rule 4: a Delta-th trailing N falls into Deep. *)
  check_true "recent overflow"
    (step (Suffix_chain.Recent (delta - 1)) ~h:false = Suffix_chain.Deep);
  check_true "deep-recent overflow"
    (step (Suffix_chain.Deep_recent (delta - 1)) ~h:false = Suffix_chain.Deep);
  check_true "deep + N stays" (step Suffix_chain.Deep ~h:false = Suffix_chain.Deep)

let test_build_structure () =
  let chain = Suffix_chain.build ~delta:5 ~alpha:0.3 in
  check_int "2 delta + 1 states" 11 (Chain.size chain);
  check_true "irreducible" (Chain.is_irreducible chain);
  check_true "ergodic (paper's claim)" (Chain.is_ergodic chain);
  check_raises_invalid "alpha 0" (fun () ->
      ignore (Suffix_chain.build ~delta:2 ~alpha:0.));
  check_raises_invalid "delta 0" (fun () ->
      ignore (Suffix_chain.build ~delta:0 ~alpha:0.5))

let test_closed_form_is_stationary () =
  List.iter
    (fun (delta, alpha) ->
      let chain = Suffix_chain.build ~delta ~alpha in
      let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
      let total = Array.fold_left ( +. ) 0. closed in
      close (Printf.sprintf "sums to 1 (d=%d a=%g)" delta alpha) 1. total;
      (* Eq. 37 must be an exact fixed point of the transition operator. *)
      let pushed = Chain.step_distribution chain closed in
      check_true "fixed point" (Chain.total_variation closed pushed < 1e-12);
      let solved = Chain.stationary_linear_solve chain in
      check_true "matches solve" (Chain.total_variation closed solved < 1e-10))
    [ (1, 0.5); (2, 0.1); (5, 0.23); (10, 0.04); (25, 0.7) ]

let test_eq37_values () =
  (* Spot-check the four formulas at delta = 3, alpha = 0.4. *)
  let delta = 3 and alpha = 0.4 in
  let abar = 0.6 in
  let pi = Suffix_chain.stationary_closed_form ~delta ~alpha in
  let idx s = Suffix_chain.index_of_state ~delta s in
  let abar_d = abar ** 3. in
  close "37a" (alpha *. (1. -. abar_d)) pi.(idx (Suffix_chain.Recent 0));
  close "37b" (alpha *. (1. -. abar_d) *. (abar ** 2.)) pi.(idx (Suffix_chain.Recent 2));
  close "37c" abar_d pi.(idx Suffix_chain.Deep);
  close "37d" (alpha *. abar_d *. abar) pi.(idx (Suffix_chain.Deep_recent 1))

let test_log_stationary_matches () =
  let delta = 6 and alpha = 0.15 in
  let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
  let log_abar = log (1. -. alpha) in
  List.iter
    (fun s ->
      let expected = closed.(Suffix_chain.index_of_state ~delta s) in
      let got =
        exp
          (Suffix_chain.log_stationary ~delta:(float_of_int delta) ~log_abar
             ~state:s)
      in
      close "log matches linear" expected got)
    [
      Suffix_chain.Recent 0; Suffix_chain.Recent 5; Suffix_chain.Deep;
      Suffix_chain.Deep_recent 0; Suffix_chain.Deep_recent 5;
    ];
  check_raises_invalid "log_abar >= 0" (fun () ->
      ignore
        (Suffix_chain.log_stationary ~delta:3. ~log_abar:0.1
           ~state:Suffix_chain.Deep));
  check_raises_invalid "Recent out of range" (fun () ->
      ignore
        (Suffix_chain.log_stationary ~delta:3. ~log_abar:(-0.1)
           ~state:(Suffix_chain.Recent 3)))

let test_log_stationary_extreme_delta () =
  (* Works at the paper's Delta = 1e13 where the chain cannot be built. *)
  let v =
    Suffix_chain.log_stationary ~delta:1e13 ~log_abar:(-1e-13)
      ~state:Suffix_chain.Deep
  in
  close ~rtol:1e-6 "pi(Deep) = abar^Delta = e^-1" (-1.) v

let trace s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | 'N' -> Round_state.N
      | '1' -> Round_state.H 1
      | 'H' -> Round_state.H 2
      | _ -> assert false)

let test_classify_series_paper_example () =
  (* The paper's worked example (Section V-A): delta = 3, states
     H N H H N N H N N N; F_7..F_10 are Recent-class and then Deep. *)
  let classes = Suffix_chain.classify_series ~delta:3 (trace "1N11NN1NNN") in
  let at i = classes.(i - 1) in
  check_true "F7 = HN<=D-1 H" (at 7 = Some (Suffix_chain.Recent 0));
  check_true "F8 = ...N^1" (at 8 = Some (Suffix_chain.Recent 1));
  check_true "F9 = ...N^2" (at 9 = Some (Suffix_chain.Recent 2));
  check_true "F10 = HN>=D" (at 10 = Some Suffix_chain.Deep)

let test_classify_series_unknown_prefix () =
  let classes = Suffix_chain.classify_series ~delta:3 (trace "NN1NN1") in
  check_true "unknown before the second H" (classes.(4) = None);
  check_true "pinned at second H" (classes.(5) = Some (Suffix_chain.Recent 0));
  (* Deep also pins it. *)
  let classes2 = Suffix_chain.classify_series ~delta:2 (trace "1NNN") in
  check_true "pinned at Deep" (classes2.(2) = Some Suffix_chain.Deep);
  check_true "and stays classified" (classes2.(3) = Some Suffix_chain.Deep)

let test_classify_agrees_with_step () =
  (* Once classified, the series classification must evolve by `step`. *)
  let g = rng () in
  let states =
    Array.init 2000 (fun _ ->
        if Nakamoto_prob.Rng.float g < 0.3 then Round_state.H 1 else Round_state.N)
  in
  let classes = Suffix_chain.classify_series ~delta:4 states in
  let ok = ref true in
  for t = 1 to 1999 do
    match (classes.(t - 1), classes.(t)) with
    | Some prev, Some cur ->
      if
        cur
        <> Suffix_chain.step ~delta:4 prev ~h:(Round_state.is_h states.(t))
      then ok := false
    | None, _ | _, None -> ()
  done;
  check_true "classification evolves by the transition rules" !ok

let test_empirical_occupancy_matches_eq37 () =
  (* Long random walk on the real state process: state-class frequencies
     match the closed-form stationary distribution. *)
  let delta = 3 and alpha = 0.3 in
  let g = rng ~seed:77L () in
  let n = 300_000 in
  let states =
    Array.init n (fun _ ->
        if Nakamoto_prob.Rng.float g < alpha then Round_state.H 1 else Round_state.N)
  in
  let classes = Suffix_chain.classify_series ~delta states in
  let counts = Array.make (Suffix_chain.state_count ~delta) 0 in
  let classified = ref 0 in
  Array.iter
    (function
      | Some s ->
        incr classified;
        let i = Suffix_chain.index_of_state ~delta s in
        counts.(i) <- counts.(i) + 1
      | None -> ())
    classes;
  let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
  Array.iteri
    (fun i expected ->
      let got = float_of_int counts.(i) /. float_of_int !classified in
      check_true
        (Printf.sprintf "state %d: %.4f vs %.4f" i got expected)
        (Float.abs (got -. expected) < 0.01))
    closed

let test_to_dot () =
  let dot = Suffix_chain.to_dot ~delta:2 ~alpha:0.25 in
  check_true "digraph" (contains_substring ~affix:"digraph" dot);
  check_true "labels" (contains_substring ~affix:"HN>=D" dot);
  check_true "H probability" (contains_substring ~affix:"H 0.25" dot);
  check_true "N probability" (contains_substring ~affix:"N 0.75" dot)

let props =
  [
    prop ~count:50 "closed form sums to 1"
      QCheck2.Gen.(pair (int_range 1 40) (float_range 0.01 0.99))
      (fun (delta, alpha) ->
        let pi = Suffix_chain.stationary_closed_form ~delta ~alpha in
        Float.abs (Array.fold_left ( +. ) 0. pi -. 1.) < 1e-9);
    prop ~count:50 "all transitions stay in range"
      QCheck2.Gen.(
        triple (int_range 1 20) (int_range 0 60) bool)
      (fun (delta, i, h) ->
        let i = i mod Suffix_chain.state_count ~delta in
        let s = Suffix_chain.state_of_index ~delta i in
        let j =
          Suffix_chain.index_of_state ~delta (Suffix_chain.step ~delta s ~h)
        in
        j >= 0 && j < Suffix_chain.state_count ~delta);
  ]

let suite =
  [
    case "state indexing bijective" test_state_indexing_bijective;
    case "transition rules 1-4" test_transition_rules;
    case "build structure" test_build_structure;
    case "Eq. 37 is the stationary distribution" test_closed_form_is_stationary;
    case "Eq. 37 spot values" test_eq37_values;
    case "log stationary matches linear" test_log_stationary_matches;
    case "log stationary at Delta = 1e13" test_log_stationary_extreme_delta;
    case "classify: paper's worked example" test_classify_series_paper_example;
    case "classify: unknown prefix" test_classify_series_unknown_prefix;
    case "classify evolves by step" test_classify_agrees_with_step;
    case "empirical occupancy matches Eq. 37" test_empirical_occupancy_matches_eq37;
    case "DOT rendering (Figure 2)" test_to_dot;
  ]
  @ props
