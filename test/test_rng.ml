open Helpers
module Rng = Nakamoto_prob.Rng

let test_determinism () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    check_true "same stream" (Rng.bits64 a = Rng.bits64 b)
  done;
  let c = Rng.create ~seed:8L in
  let diverged = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 c then diverged := true
  done;
  check_true "different seeds diverge" !diverged

let test_copy_independent () =
  let a = rng () in
  let b = Rng.copy a in
  check_true "copies agree" (Rng.bits64 a = Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  check_true "desynchronized" (xa <> xb)

let test_split_streams_differ () =
  let a = rng () in
  let b = Rng.split a in
  let overlap = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr overlap
  done;
  check_int "no collisions in 64 draws" 0 !overlap

let test_float_range () =
  let g = rng () in
  for _ = 1 to 10_000 do
    let x = Rng.float g in
    check_true "in [0,1)" (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let g = rng () in
  let sum = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.float g
  done;
  let mean = !sum /. float_of_int n in
  check_true "mean near 1/2" (Float.abs (mean -. 0.5) < 0.01)

let test_int_uniformity () =
  let g = rng () in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int g ~bound:10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      check_true
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        (abs (c - (n / 10)) < n / 50))
    counts;
  check_int "bound 1 always 0" 0 (Rng.int g ~bound:1);
  check_raises_invalid "bound 0" (fun () -> ignore (Rng.int g ~bound:0))

let test_bernoulli () =
  let g = rng () in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli g ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_true "rate near 0.3" (Float.abs (rate -. 0.3) < 0.01);
  check_false "p = 0 never" (Rng.bernoulli g ~p:0.);
  check_true "p = 1 always" (Rng.bernoulli g ~p:1.);
  check_raises_invalid "bad p" (fun () -> ignore (Rng.bernoulli g ~p:1.5))

let test_splitmix_mixing () =
  (* Adjacent inputs map to wildly different outputs. *)
  let a = Rng.splitmix64 1L and b = Rng.splitmix64 2L in
  check_true "adjacent inputs differ" (a <> b);
  let bits_differing = Int64.logxor a b in
  let popcount x =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
    done;
    !c
  in
  check_true "avalanche: ~half the bits flip"
    (abs (popcount bits_differing - 32) < 20)

let test_shuffle () =
  let g = rng () in
  let a = Array.init 10 Fun.id in
  let orig = Array.copy a in
  Rng.shuffle g a;
  Array.sort compare a;
  check_true "permutation preserves multiset" (a = orig);
  (* With 52 elements two shuffles almost surely differ. *)
  let x = Array.init 52 Fun.id and y = Array.init 52 Fun.id in
  Rng.shuffle g x;
  Rng.shuffle g y;
  check_true "shuffles differ" (x <> y)

let test_of_path () =
  (* Identical paths give identical streams. *)
  let a = Rng.of_path ~seed:42L [ 3; 17 ] and b = Rng.of_path ~seed:42L [ 3; 17 ] in
  for _ = 1 to 64 do
    check_true "identical paths, identical stream" (Rng.bits64 a = Rng.bits64 b)
  done;
  (* Distinct paths give decorrelated streams: no collisions in 64 draws,
     and roughly half the bits differ on the first draw. *)
  let decorrelated p q =
    let a = Rng.of_path ~seed:42L p and b = Rng.of_path ~seed:42L q in
    let collisions = ref 0 in
    for _ = 1 to 64 do
      if Rng.bits64 a = Rng.bits64 b then incr collisions
    done;
    check_int "no collisions between distinct paths" 0 !collisions
  in
  decorrelated [ 3; 17 ] [ 3; 18 ];
  decorrelated [ 3; 17 ] [ 4; 17 ];
  decorrelated [ 3; 17 ] [ 17; 3 ];
  (* order matters *)
  decorrelated [ 3 ] [ 3; 0 ];
  (* prefixes differ from extensions *)
  decorrelated [] [ 0 ];
  (* Seed sensitivity at identical paths. *)
  check_true "seeds separate the same path"
    (Rng.seed_of_path ~seed:1L [ 5; 5 ] <> Rng.seed_of_path ~seed:2L [ 5; 5 ]);
  (* of_path is create over seed_of_path. *)
  let direct = Rng.create ~seed:(Rng.seed_of_path ~seed:9L [ 1; 2; 3 ]) in
  let pathed = Rng.of_path ~seed:9L [ 1; 2; 3 ] in
  check_true "of_path = create . seed_of_path"
    (Rng.bits64 direct = Rng.bits64 pathed);
  check_raises_invalid "negative index" (fun () ->
      ignore (Rng.seed_of_path ~seed:0L [ 1; -2 ]))

let test_of_path_statistical_independence () =
  (* Sibling trial streams must look jointly uniform: correlate the float
     outputs of adjacent paths. *)
  let n = 20_000 in
  let a = Rng.of_path ~seed:7L [ 0; 0 ] and b = Rng.of_path ~seed:7L [ 0; 1 ] in
  let sum_ab = ref 0. and sum_a = ref 0. and sum_b = ref 0. in
  for _ = 1 to n do
    let x = Rng.float a and y = Rng.float b in
    sum_ab := !sum_ab +. (x *. y);
    sum_a := !sum_a +. x;
    sum_b := !sum_b +. y
  done;
  let fn = float_of_int n in
  let cov = (!sum_ab /. fn) -. (!sum_a /. fn *. (!sum_b /. fn)) in
  (* Var of the sample covariance of independent U[0,1) is ~ (1/12)^2/n. *)
  check_true
    (Printf.sprintf "covariance near zero (%.2e)" cov)
    (Float.abs cov < 5. /. 12. /. sqrt fn)

let suite =
  [
    case "determinism" test_determinism;
    case "path derivation" test_of_path;
    case "path stream independence" test_of_path_statistical_independence;
    case "copy independence" test_copy_independent;
    case "split streams differ" test_split_streams_differ;
    case "float range" test_float_range;
    case "float mean" test_float_mean;
    case "int uniformity and validation" test_int_uniformity;
    case "bernoulli" test_bernoulli;
    case "splitmix avalanche" test_splitmix_mixing;
    case "shuffle" test_shuffle;
  ]
