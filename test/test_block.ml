open Helpers
module Block = Nakamoto_chain.Block
module Hash = Nakamoto_chain.Hash

let test_genesis () =
  check_true "genesis is genesis" (Block.is_genesis Block.genesis);
  check_int "height 0" 0 Block.genesis.height;
  check_int "round 0" 0 Block.genesis.round;
  check_true "parent is zero" (Hash.equal Block.genesis.parent Hash.zero)

let test_mine () =
  let b =
    Block.mine ~parent:Block.genesis ~miner:3 ~miner_class:Block.Honest
      ~round:5 ~nonce:1 ~payload:"tx"
  in
  check_int "height" 1 b.height;
  check_int "miner" 3 b.miner;
  check_int "round" 5 b.round;
  check_true "parent link" (Hash.equal b.parent Block.genesis.hash);
  check_false "not genesis" (Block.is_genesis b);
  let c =
    Block.mine ~parent:b ~miner:0 ~miner_class:Block.Adversarial ~round:6
      ~nonce:0 ~payload:""
  in
  check_int "grandchild height" 2 c.height;
  check_true "class recorded" (c.miner_class = Block.Adversarial)

let test_mine_validation () =
  check_raises_invalid "round 0" (fun () ->
      ignore
        (Block.mine ~parent:Block.genesis ~miner:0 ~miner_class:Block.Honest
           ~round:0 ~nonce:0 ~payload:""));
  check_raises_invalid "negative miner" (fun () ->
      ignore
        (Block.mine ~parent:Block.genesis ~miner:(-2) ~miner_class:Block.Honest
           ~round:1 ~nonce:0 ~payload:""))

let test_equal_by_hash () =
  let mk () =
    Block.mine ~parent:Block.genesis ~miner:1 ~miner_class:Block.Honest
      ~round:1 ~nonce:7 ~payload:"x"
  in
  check_true "same fields same hash" (Block.equal (mk ()) (mk ()));
  let other =
    Block.mine ~parent:Block.genesis ~miner:1 ~miner_class:Block.Honest
      ~round:1 ~nonce:8 ~payload:"x"
  in
  check_false "different nonce differs" (Block.equal (mk ()) other)

let test_pp () =
  let s = Format.asprintf "%a" Block.pp Block.genesis in
  check_true "pp shows height" (contains_substring ~affix:"h=0" s)

let suite =
  [
    case "genesis" test_genesis;
    case "mine" test_mine;
    case "mine validation" test_mine_validation;
    case "equality by hash" test_equal_by_hash;
    case "pp" test_pp;
  ]
