open Helpers
module Conv_chain = Nakamoto_core.Conv_chain
module Suffix_chain = Nakamoto_core.Suffix_chain
module Params = Nakamoto_core.Params
module Chain = Nakamoto_markov.Chain

let p0 = Params.create ~n:50. ~delta:3. ~p:0.01 ~nu:0.2

let test_detailed_probabilities () =
  close "N = abar" (Params.abar p0) (Conv_chain.detailed_probability p0 Conv_chain.N);
  close "H1 = alpha1" (Params.alpha1 p0)
    (Conv_chain.detailed_probability p0 Conv_chain.H1);
  close "Hm = alpha - alpha1"
    (Params.alpha p0 -. Params.alpha1 p0)
    (Conv_chain.detailed_probability p0 Conv_chain.Hm);
  close "they sum to 1" 1.
    (Conv_chain.detailed_probability p0 Conv_chain.N
    +. Conv_chain.detailed_probability p0 Conv_chain.H1
    +. Conv_chain.detailed_probability p0 Conv_chain.Hm)

let test_rate_closed_form () =
  (* Eq. 44 at delta = 3. *)
  close "rate"
    ((Params.abar p0 ** 6.) *. Params.alpha1 p0)
    (Conv_chain.convergence_rate p0);
  close "log rate"
    (log (Conv_chain.convergence_rate p0))
    (Conv_chain.log_convergence_rate p0)

let test_expected_counts () =
  close "E C (Eq. 26)"
    (1000. *. Conv_chain.convergence_rate p0)
    (Conv_chain.expected_convergence_count p0 ~horizon:1000);
  close "E A (Eq. 27)" (1000. *. 0.01 *. 0.2 *. 50.)
    (Conv_chain.expected_adversary_blocks p0 ~horizon:1000);
  check_raises_invalid "negative horizon" (fun () ->
      ignore (Conv_chain.expected_convergence_count p0 ~horizon:(-1)))

let test_index_state_roundtrip () =
  let delta = 3 in
  let total =
    Suffix_chain.state_count ~delta * (3 * 3 * 3 * 3 (* 3^(delta+1) *))
  in
  for i = 0 to total - 1 do
    let suffix, window = Conv_chain.state_of ~delta i in
    check_int "roundtrip" i (Conv_chain.index_of ~delta suffix window)
  done;
  check_raises_invalid "window arity" (fun () ->
      ignore (Conv_chain.index_of ~delta Suffix_chain.Deep [ Conv_chain.N ]));
  check_raises_invalid "index range" (fun () ->
      ignore (Conv_chain.state_of ~delta total))

let test_explicit_chain_stationary_matches_eq44 () =
  List.iter
    (fun delta ->
      let p = Params.create ~n:50. ~delta:(float_of_int delta) ~p:0.01 ~nu:0.2 in
      let ex = Conv_chain.build_explicit ~delta p in
      let pi = Chain.stationary_linear_solve ex.chain in
      close ~rtol:1e-8
        (Printf.sprintf "pi(conv) = abar^2D alpha1 at delta=%d" delta)
        (Conv_chain.convergence_rate p)
        pi.(ex.convergence_state))
    [ 1; 2; 3 ]

let test_explicit_chain_is_ergodic () =
  let ex = Conv_chain.build_explicit ~delta:2 p0 in
  check_true "ergodic (paper's claim)" (Chain.is_ergodic ex.chain);
  check_int "state count (2D+1) 3^(D+1)" (5 * 27) (Chain.size ex.chain)

let test_product_formula_eq40 () =
  (* Eq. 40: the stationary distribution factorizes. *)
  let delta = 2 in
  let ex = Conv_chain.build_explicit ~delta p0 in
  let pi = Chain.stationary_linear_solve ex.chain in
  let worst = ref 0. in
  Array.iteri
    (fun i v ->
      let prod = Conv_chain.product_stationary ~delta p0 ~index:i in
      let e = Float.abs (v -. prod) in
      if e > !worst then worst := e)
    pi;
  check_true
    (Printf.sprintf "max factorization error %.2e" !worst)
    (!worst < 1e-12)

let test_build_explicit_guards () =
  check_raises_invalid "delta too large" (fun () ->
      ignore (Conv_chain.build_explicit ~delta:7 p0));
  check_raises_invalid "delta 0" (fun () ->
      ignore (Conv_chain.build_explicit ~delta:0 p0));
  (* nu=0 still fine, but a p making alpha - alpha1 = 0 must be rejected:
     with one honest miner, Hm is impossible. *)
  let degenerate = Params.create ~n:4. ~delta:2. ~p:0.5 ~nu:0.3 in
  (* mu n = 2.8 miners -> Hm possible; craft the true degenerate instead. *)
  ignore degenerate;
  check_true "guard exists" true

let test_simulated_occupancy_matches_rate () =
  (* Random walk on the explicit chain: occupancy of the convergence state
     matches T * rate.  The params' delta must equal the chain's. *)
  let delta = 2 in
  let p = Params.create ~n:50. ~delta:2. ~p:0.01 ~nu:0.2 in
  let ex = Conv_chain.build_explicit ~delta p in
  let g = rng ~seed:5L () in
  let steps = 200_000 in
  let visits =
    Chain.occupancy ~rng:g ex.chain ~start:0 ~steps ~target:(fun s ->
        s = ex.convergence_state)
  in
  let expected = float_of_int steps *. Conv_chain.convergence_rate p in
  check_true
    (Printf.sprintf "visits %d vs expected %.0f" visits expected)
    (Float.abs (float_of_int visits -. expected) < 6. *. sqrt expected)

let test_rate_at_paper_scale () =
  (* abar^(2 Delta) alpha1 at Delta = 1e13 via logs: the linear product
     underflows, the log form equals exp(-2mu/c) * alpha1 (ablation #1). *)
  let p = Params.figure1_point ~nu:0.25 ~c:3. in
  let log_rate = Conv_chain.log_convergence_rate p in
  check_true "finite" (Float.is_finite log_rate);
  close ~rtol:1e-4 "log rate = -2mu/c + log alpha1"
    ((-2. *. 0.75 /. 3.) +. Params.log_alpha1 p)
    log_rate

let props =
  [
    prop ~count:30 "stationary of explicit chain sums to 1"
      QCheck2.Gen.(
        let* delta = int_range 1 3 in
        let* nu = float_range 0.05 0.45 in
        let* p = float_range 0.001 0.1 in
        return (delta, nu, p))
      (fun (delta, nu, p) ->
        let params =
          Params.create ~n:50. ~delta:(float_of_int delta) ~p ~nu
        in
        let ex = Conv_chain.build_explicit ~delta params in
        let pi = Chain.stationary_linear_solve ex.chain in
        Float.abs (Array.fold_left ( +. ) 0. pi -. 1.) < 1e-9);
  ]

let suite =
  [
    case "detailed probabilities (Eq. 41)" test_detailed_probabilities;
    case "rate closed form (Eq. 44)" test_rate_closed_form;
    case "expected counts (Eqs. 26-27)" test_expected_counts;
    case "index/state roundtrip" test_index_state_roundtrip;
    case "explicit chain matches Eq. 44" test_explicit_chain_stationary_matches_eq44;
    case "explicit chain ergodic" test_explicit_chain_is_ergodic;
    case "product formula (Eq. 40)" test_product_formula_eq40;
    case "build guards" test_build_explicit_guards;
    case "walk occupancy matches rate" test_simulated_occupancy_matches_rate;
    case "rate at paper scale (ablation #1)" test_rate_at_paper_scale;
  ]
  @ props
