open Helpers
module Poisson = Nakamoto_sim.Poisson

let cfg = { Poisson.lambda = 2.; mu = 0.7; delta = 0.4 }

let test_validation () =
  check_raises_invalid "lambda" (fun () ->
      Poisson.validate { cfg with lambda = 0. });
  check_raises_invalid "mu 0" (fun () -> Poisson.validate { cfg with mu = 0. });
  check_raises_invalid "mu > 1" (fun () -> Poisson.validate { cfg with mu = 1.5 });
  check_raises_invalid "delta" (fun () -> Poisson.validate { cfg with delta = 0. });
  Poisson.validate cfg

let test_rates () =
  (* lambda mu e^{-2 lambda mu delta} with lambda mu = 1.4, delta = 0.4. *)
  close "isolated rate" (1.4 *. exp (-1.12)) (Poisson.isolated_rate cfg);
  close "adversary rate" 0.6 (Poisson.adversary_rate cfg);
  check_true "mu = 1 margin infinite"
    (Poisson.consistency_margin { cfg with mu = 1. } = infinity)

let test_neat_bound_identity () =
  (* The continuous loner condition is algebraically the neat bound; the
     identity must hold on both sides of the threshold and at random
     points. *)
  List.iter
    (fun (lambda, mu, delta) ->
      check_true
        (Printf.sprintf "identity at lambda=%g mu=%g delta=%g" lambda mu delta)
        (Poisson.neat_bound_equivalent { Poisson.lambda; mu; delta }))
    [
      (2., 0.7, 0.4); (1., 0.75, 1.365) (* right at nu=0.25's bound *);
      (1., 0.75, 1.4); (1., 0.75, 1.3); (10., 0.51, 0.05); (0.2, 0.99, 3.);
    ]

let test_threshold_crossing () =
  (* Margin changes sign exactly at c = 2mu/ln(mu/nu). *)
  let mu = 0.75 in
  let c_star = 2. *. mu /. log (mu /. 0.25) in
  let at c = Poisson.consistency_margin { Poisson.lambda = 1.; mu; delta = c } in
  (* c = 1/(lambda delta) and lambda = 1, so delta = 1/c ... careful:
     delta here IS 1/c. *)
  let margin_of_c c = at (1. /. c) in
  check_true "above the bound" (margin_of_c (c_star *. 1.01) > 0.);
  check_true "below the bound" (margin_of_c (c_star *. 0.99) < 0.)

let test_simulation_matches_rates () =
  let rng = rng ~seed:123L () in
  let horizon = 200_000. in
  let r = Poisson.simulate ~rng cfg ~horizon in
  let per_time x = float_of_int x /. horizon in
  check_true
    (Printf.sprintf "arrival rate %.4f near lambda" (per_time r.arrivals))
    (Float.abs (per_time r.arrivals -. 2.) < 0.02);
  check_true "honest rate near lambda mu"
    (Float.abs (per_time r.honest_arrivals -. 1.4) < 0.02);
  check_true "adversary rate near lambda nu"
    (Float.abs (per_time r.adversary_arrivals -. 0.6) < 0.02);
  let expected = Poisson.isolated_rate cfg in
  check_true
    (Printf.sprintf "isolated rate %.4f near %.4f" (per_time r.isolated_honest)
       expected)
    (Float.abs (per_time r.isolated_honest -. expected) < 0.02);
  check_int "arrival split consistent" r.arrivals
    (r.honest_arrivals + r.adversary_arrivals);
  check_true "isolated a subset" (r.isolated_honest <= r.honest_arrivals)

let test_discrete_limit () =
  (* Fixing c = 1/(p n Delta) and growing Delta (shrinking p), the
     per-round discrete rate times Delta converges to the continuous
     per-delay rate mu/c e^{-2mu/c}. *)
  let c = 2.5 and mu = 0.75 and n = 1e5 in
  let continuous = mu /. c *. exp (-2. *. mu /. c) in
  List.iter
    (fun delta_rounds ->
      let p = 1. /. (c *. n *. float_of_int delta_rounds) in
      let discrete =
        Poisson.discrete_rate_per_time ~p ~n ~mu ~delta_rounds
        *. float_of_int delta_rounds
      in
      let rel = Float.abs (discrete -. continuous) /. continuous in
      check_true
        (Printf.sprintf "Delta=%d: discrete %.6f vs continuous %.6f" delta_rounds
           discrete continuous)
        (rel < 2. /. float_of_int delta_rounds +. 1e-3))
    [ 4; 16; 64; 1024; 100_000 ]

let test_simulate_validation () =
  check_raises_invalid "bad horizon" (fun () ->
      ignore (Poisson.simulate ~rng:(rng ()) cfg ~horizon:0.))

let props =
  [
    prop ~count:100 "neat-bound identity over random configs"
      QCheck2.Gen.(
        let* lambda = float_range 0.1 10. in
        let* mu = float_range 0.51 0.99 in
        let* delta = float_range 0.05 5. in
        return (lambda, mu, delta))
      (fun (lambda, mu, delta) ->
        Poisson.neat_bound_equivalent { Poisson.lambda; mu; delta });
  ]

let suite =
  [
    case "validation" test_validation;
    case "closed-form rates" test_rates;
    case "neat bound identity" test_neat_bound_identity;
    case "threshold crossing" test_threshold_crossing;
    case "simulation matches rates" test_simulation_matches_rates;
    case "discrete limit converges" test_discrete_limit;
    case "simulate validation" test_simulate_validation;
  ]
  @ props
