open Helpers
module State_process = Nakamoto_sim.State_process
module Round_state = Nakamoto_sim.Round_state

let cfg = { State_process.honest = 30; adversarial = 10; p = 0.02; delta = 3 }

let test_validation () =
  check_raises_invalid "no honest" (fun () ->
      State_process.validate { cfg with honest = 0 });
  check_raises_invalid "negative adversarial" (fun () ->
      State_process.validate { cfg with adversarial = -1 });
  check_raises_invalid "bad p" (fun () ->
      State_process.validate { cfg with p = 1.5 });
  check_raises_invalid "delta 0" (fun () ->
      State_process.validate { cfg with delta = 0 });
  check_raises_invalid "negative rounds" (fun () ->
      ignore (State_process.run ~rng:(rng ()) cfg ~rounds:(-1)))

let test_zero_rounds () =
  let r = State_process.run ~rng:(rng ()) cfg ~rounds:0 in
  check_int "rounds" 0 r.rounds;
  check_int "C" 0 r.convergence_opportunities;
  check_int "A" 0 r.adversary_blocks

let test_tallies_consistent () =
  let r = State_process.run ~rng:(rng ()) cfg ~rounds:50_000 in
  check_int "rounds recorded" 50_000 r.rounds;
  check_true "h1 subset of h" (r.h1_rounds <= r.h_rounds);
  check_true "h rounds at most rounds" (r.h_rounds <= r.rounds);
  check_true "blocks at least h rounds" (r.honest_blocks >= r.h_rounds);
  check_true "C bounded by H1 rounds" (r.convergence_opportunities <= r.h1_rounds)

let test_rates_match_theory () =
  let r = State_process.run ~rng:(rng ~seed:99L ()) cfg ~rounds:400_000 in
  let t = 400_000. in
  let d = Nakamoto_prob.Binomial.create ~trials:30 ~p:0.02 in
  let alpha = Nakamoto_prob.Binomial.prob_positive d in
  let alpha1 = Nakamoto_prob.Binomial.prob_one d in
  check_true "H rate near alpha"
    (Float.abs ((float_of_int r.h_rounds /. t) -. alpha) < 0.005);
  check_true "H1 rate near alpha1"
    (Float.abs ((float_of_int r.h1_rounds /. t) -. alpha1) < 0.005);
  check_true "honest block rate near mean"
    (Float.abs ((float_of_int r.honest_blocks /. t) -. 0.6) < 0.01);
  check_true "adversary rate near p nu n"
    (Float.abs ((float_of_int r.adversary_blocks /. t) -. 0.2) < 0.01)

let test_trace_matches_run_statistics () =
  let trace = State_process.run_trace ~rng:(rng ()) cfg ~rounds:10_000 in
  check_int "trace length" 10_000 (Array.length trace);
  let h1 = Array.fold_left (fun acc s -> if Round_state.is_h1 s then acc + 1 else acc) 0 trace in
  check_true "some H1 rounds" (h1 > 0)

let test_determinism () =
  let a = State_process.run ~rng:(rng ~seed:5L ()) cfg ~rounds:10_000 in
  let b = State_process.run ~rng:(rng ~seed:5L ()) cfg ~rounds:10_000 in
  check_int "same C" a.convergence_opportunities b.convergence_opportunities;
  check_int "same A" a.adversary_blocks b.adversary_blocks

let test_window_counts () =
  let w =
    State_process.window_counts ~rng:(rng ()) cfg ~windows:20 ~window_length:5_000
  in
  check_int "window count" 20 (Array.length w);
  let total_c = Array.fold_left (fun acc (c, _) -> acc + c) 0 w in
  let one_run = State_process.run ~rng:(rng ()) cfg ~rounds:100_000 in
  (* Same seed, same total rounds: the windowed pass must see exactly the
     same convergence opportunities as the single pass. *)
  check_int "windows partition the trajectory"
    one_run.convergence_opportunities total_c;
  check_raises_invalid "bad window length" (fun () ->
      ignore (State_process.window_counts ~rng:(rng ()) cfg ~windows:2 ~window_length:0))

let suite =
  [
    case "validation" test_validation;
    case "zero rounds" test_zero_rounds;
    case "tally invariants" test_tallies_consistent;
    case "rates match Eqs. 7/9/27" test_rates_match_theory;
    case "trace shape" test_trace_matches_run_statistics;
    case "determinism by seed" test_determinism;
    case "window counts partition" test_window_counts;
  ]
