open Helpers
module Round_state = Nakamoto_sim.Round_state

let test_classification () =
  check_true "0 -> N" (Round_state.of_block_count 0 = Round_state.N);
  check_true "1 -> H 1" (Round_state.of_block_count 1 = Round_state.H 1);
  check_true "5 -> H 5" (Round_state.of_block_count 5 = Round_state.H 5);
  check_raises_invalid "negative" (fun () ->
      ignore (Round_state.of_block_count (-1)))

let test_predicates () =
  check_false "N not H" (Round_state.is_h Round_state.N);
  check_true "H 2 is H" (Round_state.is_h (Round_state.H 2));
  check_true "H 1 is H1" (Round_state.is_h1 (Round_state.H 1));
  check_false "H 2 not H1" (Round_state.is_h1 (Round_state.H 2));
  check_false "N not H1" (Round_state.is_h1 Round_state.N)

let test_block_count () =
  check_int "N count" 0 (Round_state.block_count Round_state.N);
  check_int "H count" 3 (Round_state.block_count (Round_state.H 3))

let test_to_char () =
  Alcotest.(check char) "N" 'N' (Round_state.to_char Round_state.N);
  Alcotest.(check char) "H1" '1' (Round_state.to_char (Round_state.H 1));
  Alcotest.(check char) "Hm" 'H' (Round_state.to_char (Round_state.H 4))

let test_equal () =
  check_true "N = N" (Round_state.equal Round_state.N Round_state.N);
  check_true "H 2 = H 2" (Round_state.equal (Round_state.H 2) (Round_state.H 2));
  check_false "H 1 <> H 2" (Round_state.equal (Round_state.H 1) (Round_state.H 2));
  check_false "N <> H" (Round_state.equal Round_state.N (Round_state.H 1))

let suite =
  [
    case "of_block_count" test_classification;
    case "is_h / is_h1" test_predicates;
    case "block_count" test_block_count;
    case "to_char" test_to_char;
    case "equal" test_equal;
  ]
