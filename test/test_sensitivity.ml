open Helpers
module Sensitivity = Nakamoto_core.Sensitivity
module Bounds = Nakamoto_core.Bounds

let finite_difference f x =
  let h = 1e-7 *. Float.max 1e-3 (Float.abs x) in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let test_threshold_derivative_vs_finite_difference () =
  List.iter
    (fun nu ->
      close ~rtol:1e-5
        (Printf.sprintf "T' at nu=%g" nu)
        (finite_difference (fun nu -> Bounds.neat_c_min ~nu) nu)
        (Sensitivity.threshold_derivative ~nu))
    [ 0.01; 0.05; 0.1; 0.25; 0.4; 0.49 ]

let test_threshold_derivative_positive () =
  List.iter
    (fun nu ->
      check_true
        (Printf.sprintf "positive at %g" nu)
        (Sensitivity.threshold_derivative ~nu > 0.))
    [ 1e-6; 0.1; 0.3; 0.499 ];
  check_raises_invalid "domain" (fun () ->
      ignore (Sensitivity.threshold_derivative ~nu:0.5))

let test_slope_vs_finite_difference () =
  List.iter
    (fun c ->
      close ~rtol:1e-4
        (Printf.sprintf "slope at c=%g" c)
        (finite_difference (fun c -> Bounds.neat_numax ~c) c)
        (Sensitivity.numax_slope ~c))
    [ 0.5; 1.; 2.; 5.; 20. ]

let test_slope_diminishing () =
  (* Safety gets more expensive as nu_max saturates toward 1/2. *)
  check_true "slope decreasing"
    (Sensitivity.numax_slope ~c:10. < Sensitivity.numax_slope ~c:1.);
  check_true "tiny at large c" (Sensitivity.numax_slope ~c:1000. < 1e-3)

let test_elasticity_shape () =
  (* Elasticity is large when nu_max is tiny and vanishes at saturation. *)
  check_true "high at small c" (Sensitivity.numax_elasticity ~c:0.3 > 1.);
  check_true "low at large c" (Sensitivity.numax_elasticity ~c:100. < 0.01)

let test_table () =
  let t = Sensitivity.marginal_value_table ~c_grid:[ 1.; 2.; 4. ] in
  check_int "rows" 3 (Nakamoto_numerics.Table.row_count t)

let props =
  [
    prop "inverse-function identity: T'(numax c) * slope(c) = 1"
      QCheck2.Gen.(float_range 0.3 100.)
      (fun c ->
        let nu = Bounds.neat_numax ~c in
        let product =
          Sensitivity.threshold_derivative ~nu *. Sensitivity.numax_slope ~c
        in
        Float.abs (product -. 1.) < 1e-9);
  ]

let suite =
  [
    case "T' matches finite differences" test_threshold_derivative_vs_finite_difference;
    case "T' positive on the domain" test_threshold_derivative_positive;
    case "slope matches finite differences" test_slope_vs_finite_difference;
    case "diminishing returns" test_slope_diminishing;
    case "elasticity shape" test_elasticity_shape;
    case "table" test_table;
  ]
  @ props
