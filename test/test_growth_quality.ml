open Helpers
module Growth_quality = Nakamoto_core.Growth_quality
module Params = Nakamoto_core.Params
module Sim = Nakamoto_sim

let p0 = Params.of_c ~n:40. ~delta:4. ~nu:0.25 ~c:2.5

let test_growth_bounds_ordered () =
  let lower = Growth_quality.growth_rate_lower_bound p0 in
  let upper = Growth_quality.growth_rate_upper_bound p0 in
  check_true "0 < lower" (lower > 0.);
  check_true "lower < upper" (lower < upper);
  close "upper is alpha" (Params.alpha p0) upper;
  close "lower formula"
    (Params.alpha p0 /. (1. +. (4. *. Params.alpha p0)))
    lower

let test_growth_window () =
  let lo, hi = Growth_quality.growth_in_window p0 ~rounds:1000 in
  close "window scales lower" (1000. *. Growth_quality.growth_rate_lower_bound p0) lo;
  close "window scales upper" (1000. *. Growth_quality.growth_rate_upper_bound p0) hi;
  check_raises_invalid "negative window" (fun () ->
      ignore (Growth_quality.growth_in_window p0 ~rounds:(-1)))

let test_quality_bounds () =
  close "folklore bound" (1. -. (0.25 /. 0.75)) (Growth_quality.quality_lower_bound p0);
  let adjusted = Growth_quality.quality_delta_adjusted p0 in
  check_true "delta haircut weakens the bound"
    (adjusted <= Growth_quality.quality_lower_bound p0 +. 1e-12);
  check_true "still in [0, 1]" (adjusted >= 0. && adjusted <= 1.);
  (* nu = 0: perfect quality. *)
  let honest = Params.of_c ~n:40. ~delta:4. ~nu:0. ~c:2.5 in
  close "no adversary, quality 1" 1. (Growth_quality.quality_lower_bound honest);
  (* near-half adversary at low c: bound collapses to 0, not negative. *)
  let hostile = Params.of_c ~n:40. ~delta:4. ~nu:0.49 ~c:0.2 in
  check_true "clamped at zero" (Growth_quality.quality_delta_adjusted hostile >= 0.)

let test_simulation_inside_envelope () =
  (* Idle-adversary runs must land inside the analytic envelope. *)
  List.iter
    (fun c ->
      let cfg =
        Sim.Config.with_c
          { Sim.Config.default with rounds = 8000; seed = 7L; nu = 0.25 }
          ~c
      in
      let r = Sim.Execution.run cfg in
      let growth = (Sim.Metrics.chain_growth r).growth_rate in
      let quality = Sim.Metrics.chain_quality r in
      let p = Params.of_sim_config cfg in
      check_true
        (Printf.sprintf "c=%g growth %.4f quality %.3f inside envelope" c growth
           quality)
        (Growth_quality.consistent_with_simulation ~growth ~quality p))
    [ 1.; 2.; 4.; 8. ]

let test_selfish_mining_degrades_quality () =
  (* Selfish mining pushes quality below the honest share once nu is past
     the gamma = 0 threshold — and always below an idle adversary. *)
  let quality nu strategy =
    let cfg = { (Sim.Scenarios.selfish ~seed:5L ~nu) with strategy } in
    Sim.Metrics.chain_quality (Sim.Execution.run cfg)
  in
  let idle = quality 0.4 Sim.Adversary.Idle in
  let selfish = quality 0.4 Sim.Adversary.Selfish_mining in
  check_true
    (Printf.sprintf "selfish %.3f < idle %.3f" selfish idle)
    (selfish < idle);
  check_true "profitable at nu = 0.4 (revenue exceeds share)"
    (1. -. selfish > 0.4);
  let weak = quality 0.15 Sim.Adversary.Selfish_mining in
  check_true "unprofitable at nu = 0.15" (1. -. weak < 0.15)

let test_delay_advantaged_selfish_mining () =
  (* With its delay control engaged (honest broadcasts held one extra
     round) and first-seen ties, selfish mining is profitable even for a
     small pool — the gamma ~ 1 regime. *)
  let revenue ~nu ~gamma1 =
    let base = Sim.Scenarios.selfish ~seed:5L ~nu in
    let cfg =
      if gamma1 then
        {
          base with
          tie_break = Nakamoto_chain.Block_tree.First_seen;
          delay_override = Some (Nakamoto_net.Network.Fixed 2);
        }
      else base
    in
    1. -. Sim.Metrics.chain_quality (Sim.Execution.run cfg)
  in
  check_true "gamma~1 dominates gamma=0 at nu = 0.3"
    (revenue ~nu:0.3 ~gamma1:true > revenue ~nu:0.3 ~gamma1:false);
  check_true "gamma~1 profitable even at nu = 0.1"
    (revenue ~nu:0.1 ~gamma1:true > 0.1);
  check_true "gamma=0 unprofitable at nu = 0.1"
    (revenue ~nu:0.1 ~gamma1:false < 0.1)

let props =
  [
    prop "bounds ordered across parameter space"
      QCheck2.Gen.(
        let* nu = float_range 0. 0.49 in
        let* c = float_range 0.2 50. in
        return (nu, c))
      (fun (nu, c) ->
        let p = Params.of_c ~n:100. ~delta:8. ~nu ~c in
        let lower = Growth_quality.growth_rate_lower_bound p in
        let upper = Growth_quality.growth_rate_upper_bound p in
        lower > 0. && lower <= upper
        && Growth_quality.quality_delta_adjusted p
           <= Growth_quality.quality_lower_bound p +. 1e-12);
  ]

let suite =
  [
    case "growth bounds ordered" test_growth_bounds_ordered;
    case "growth window" test_growth_window;
    case "quality bounds" test_quality_bounds;
    case "simulation inside envelope" test_simulation_inside_envelope;
    case "selfish mining degrades quality" test_selfish_mining_degrades_quality;
    case "delay-advantaged selfish mining (gamma ~ 1)"
      test_delay_advantaged_selfish_mining;
  ]
  @ props
