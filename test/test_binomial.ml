open Helpers
module Binomial = Nakamoto_prob.Binomial

let test_create_validation () =
  check_raises_invalid "negative trials" (fun () ->
      ignore (Binomial.create ~trials:(-1) ~p:0.5));
  check_raises_invalid "p > 1" (fun () ->
      ignore (Binomial.create ~trials:3 ~p:1.5));
  check_raises_invalid "nan p" (fun () ->
      ignore (Binomial.create ~trials:3 ~p:nan))

let test_moments () =
  let d = Binomial.create ~trials:100 ~p:0.3 in
  close "mean" 30. (Binomial.mean d);
  close "variance" 21. (Binomial.variance d)

let test_pmf_known_values () =
  let d = Binomial.create ~trials:4 ~p:0.5 in
  close "pmf 0" 0.0625 (Binomial.pmf d 0);
  close "pmf 2" 0.375 (Binomial.pmf d 2);
  close "pmf 4" 0.0625 (Binomial.pmf d 4);
  close "pmf out of range" 0. (Binomial.pmf d 5);
  close "pmf negative" 0. (Binomial.pmf d (-1))

let test_pmf_degenerate () =
  let zero = Binomial.create ~trials:5 ~p:0. in
  close "p=0 mass at 0" 1. (Binomial.pmf zero 0);
  close "p=0 elsewhere" 0. (Binomial.pmf zero 3);
  let one = Binomial.create ~trials:5 ~p:1. in
  close "p=1 mass at n" 1. (Binomial.pmf one 5);
  close "p=1 elsewhere" 0. (Binomial.pmf one 4)

let test_cdf_survival () =
  let d = Binomial.create ~trials:10 ~p:0.4 in
  close "cdf at n" 1. (Binomial.cdf d 10);
  close "cdf negative" 0. (Binomial.cdf d (-1));
  close "survival at n" 0. (Binomial.survival d 10);
  close "survival negative" 1. (Binomial.survival d (-1));
  for k = 0 to 10 do
    close
      (Printf.sprintf "cdf + survival = 1 at %d" k)
      1.
      (Binomial.cdf d k +. Binomial.survival d k)
  done

let test_paper_quantities () =
  (* alpha, abar, alpha1 of Eqs. 7-9 with mu*n = 30 honest miners. *)
  let d = Binomial.create ~trials:30 ~p:0.01 in
  close "abar" (0.99 ** 30.) (Binomial.prob_zero d);
  close "alpha" (1. -. (0.99 ** 30.)) (Binomial.prob_positive d);
  close "alpha1" (30. *. 0.01 *. (0.99 ** 29.)) (Binomial.prob_one d);
  close "log_prob_zero" (30. *. log 0.99) (Binomial.log_prob_zero d);
  (* Log domain must survive the paper's extreme scale. *)
  let extreme = Binomial.create ~trials:100_000 ~p:1e-18 in
  close ~rtol:1e-6 "extreme log_prob_zero" (-1e-13)
    (Binomial.log_prob_zero extreme)

let test_sampling_moments () =
  let g = rng () in
  let check_dist trials p =
    let d = Binomial.create ~trials ~p in
    let n = 20_000 in
    let sum = ref 0 and sumsq = ref 0 in
    for _ = 1 to n do
      let x = Binomial.sample g d in
      check_true "sample in range" (x >= 0 && x <= trials);
      sum := !sum + x;
      sumsq := !sumsq + (x * x)
    done;
    let mean = float_of_int !sum /. float_of_int n in
    let var =
      (float_of_int !sumsq /. float_of_int n) -. (mean *. mean)
    in
    check_true
      (Printf.sprintf "mean near (trials=%d p=%g): %g" trials p mean)
      (Float.abs (mean -. Binomial.mean d)
       < 4. *. sqrt (Binomial.variance d /. float_of_int n) +. 1e-9);
    check_true
      (Printf.sprintf "variance near (trials=%d p=%g): %g" trials p var)
      (Binomial.variance d = 0.
       || Float.abs (var -. Binomial.variance d) /. Binomial.variance d < 0.15)
  in
  check_dist 10 0.5;
  check_dist 50 0.02;
  check_dist 1000 0.001;
  check_dist 5000 0.02 (* exercises the per-trial fallback path *)

let test_sampling_degenerate () =
  let g = rng () in
  check_int "p=0" 0 (Binomial.sample g (Binomial.create ~trials:10 ~p:0.));
  check_int "p=1" 10 (Binomial.sample g (Binomial.create ~trials:10 ~p:1.));
  check_int "0 trials" 0 (Binomial.sample g (Binomial.create ~trials:0 ~p:0.5))

let props =
  let gen_dist =
    QCheck2.Gen.(
      let* trials = int_range 0 60 in
      let* p = float_range 0. 1. in
      return (trials, p))
  in
  [
    prop "pmf sums to 1" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        let total = ref 0. in
        for k = 0 to trials do
          total := !total +. Binomial.pmf d k
        done;
        Float.abs (!total -. 1.) < 1e-9);
    prop "mean equals sum of k pmf(k)" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        let m = ref 0. in
        for k = 0 to trials do
          m := !m +. (float_of_int k *. Binomial.pmf d k)
        done;
        Float.abs (!m -. Binomial.mean d) < 1e-9);
    prop "cdf monotone" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        let ok = ref true in
        for k = 0 to trials - 1 do
          if Binomial.cdf d k > Binomial.cdf d (k + 1) +. 1e-12 then ok := false
        done;
        !ok);
    prop "prob_one <= prob_positive" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        Binomial.prob_one d <= Binomial.prob_positive d +. 1e-12);
  ]

let suite =
  [
    case "create validation" test_create_validation;
    case "moments" test_moments;
    case "pmf known values" test_pmf_known_values;
    case "pmf degenerate p" test_pmf_degenerate;
    case "cdf/survival" test_cdf_survival;
    case "paper quantities (Eqs. 7-9)" test_paper_quantities;
    case "sampling moments" test_sampling_moments;
    case "sampling degenerate" test_sampling_degenerate;
  ]
  @ props
