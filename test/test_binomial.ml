open Helpers
module Binomial = Nakamoto_prob.Binomial

let test_create_validation () =
  check_raises_invalid "negative trials" (fun () ->
      ignore (Binomial.create ~trials:(-1) ~p:0.5));
  check_raises_invalid "p > 1" (fun () ->
      ignore (Binomial.create ~trials:3 ~p:1.5));
  check_raises_invalid "nan p" (fun () ->
      ignore (Binomial.create ~trials:3 ~p:nan))

let test_moments () =
  let d = Binomial.create ~trials:100 ~p:0.3 in
  close "mean" 30. (Binomial.mean d);
  close "variance" 21. (Binomial.variance d)

let test_pmf_known_values () =
  let d = Binomial.create ~trials:4 ~p:0.5 in
  close "pmf 0" 0.0625 (Binomial.pmf d 0);
  close "pmf 2" 0.375 (Binomial.pmf d 2);
  close "pmf 4" 0.0625 (Binomial.pmf d 4);
  close "pmf out of range" 0. (Binomial.pmf d 5);
  close "pmf negative" 0. (Binomial.pmf d (-1))

let test_pmf_degenerate () =
  let zero = Binomial.create ~trials:5 ~p:0. in
  close "p=0 mass at 0" 1. (Binomial.pmf zero 0);
  close "p=0 elsewhere" 0. (Binomial.pmf zero 3);
  let one = Binomial.create ~trials:5 ~p:1. in
  close "p=1 mass at n" 1. (Binomial.pmf one 5);
  close "p=1 elsewhere" 0. (Binomial.pmf one 4)

let test_cdf_survival () =
  let d = Binomial.create ~trials:10 ~p:0.4 in
  close "cdf at n" 1. (Binomial.cdf d 10);
  close "cdf negative" 0. (Binomial.cdf d (-1));
  close "survival at n" 0. (Binomial.survival d 10);
  close "survival negative" 1. (Binomial.survival d (-1));
  for k = 0 to 10 do
    close
      (Printf.sprintf "cdf + survival = 1 at %d" k)
      1.
      (Binomial.cdf d k +. Binomial.survival d k)
  done

let test_paper_quantities () =
  (* alpha, abar, alpha1 of Eqs. 7-9 with mu*n = 30 honest miners. *)
  let d = Binomial.create ~trials:30 ~p:0.01 in
  close "abar" (0.99 ** 30.) (Binomial.prob_zero d);
  close "alpha" (1. -. (0.99 ** 30.)) (Binomial.prob_positive d);
  close "alpha1" (30. *. 0.01 *. (0.99 ** 29.)) (Binomial.prob_one d);
  close "log_prob_zero" (30. *. log 0.99) (Binomial.log_prob_zero d);
  (* Log domain must survive the paper's extreme scale. *)
  let extreme = Binomial.create ~trials:100_000 ~p:1e-18 in
  close ~rtol:1e-6 "extreme log_prob_zero" (-1e-13)
    (Binomial.log_prob_zero extreme)

let test_sampling_moments () =
  let g = rng () in
  let check_dist trials p =
    let d = Binomial.create ~trials ~p in
    let n = 20_000 in
    let sum = ref 0 and sumsq = ref 0 in
    for _ = 1 to n do
      let x = Binomial.sample g d in
      check_true "sample in range" (x >= 0 && x <= trials);
      sum := !sum + x;
      sumsq := !sumsq + (x * x)
    done;
    let mean = float_of_int !sum /. float_of_int n in
    let var =
      (float_of_int !sumsq /. float_of_int n) -. (mean *. mean)
    in
    check_true
      (Printf.sprintf "mean near (trials=%d p=%g): %g" trials p mean)
      (Float.abs (mean -. Binomial.mean d)
       < 4. *. sqrt (Binomial.variance d /. float_of_int n) +. 1e-9);
    check_true
      (Printf.sprintf "variance near (trials=%d p=%g): %g" trials p var)
      (Binomial.variance d = 0.
       || Float.abs (var -. Binomial.variance d) /. Binomial.variance d < 0.15)
  in
  check_dist 10 0.5;
  check_dist 50 0.02;
  check_dist 1000 0.001;
  check_dist 5000 0.02 (* mean 100 > 64: exercises the BTPE path *)

let test_sampling_degenerate () =
  let g = rng () in
  check_int "p=0" 0 (Binomial.sample g (Binomial.create ~trials:10 ~p:0.));
  check_int "p=1" 10 (Binomial.sample g (Binomial.create ~trials:10 ~p:1.));
  check_int "0 trials" 0 (Binomial.sample g (Binomial.create ~trials:0 ~p:0.5))

(* Pearson chi-square goodness of fit of the sampler against the exact
   pmf.  Bins with expected count < 5 are pooled into their neighbours
   (standard practice), and the acceptance threshold is a generous upper
   quantile of chi2(df): df + 4*sqrt(2 df) + 10 sits past the 99.99th
   percentile for every df used here, so a correct sampler essentially
   never fails while a biased envelope or mis-set squeeze fails loudly. *)
let chi_square_gof ~name ~trials ~p ~draws g =
  let d = Binomial.create ~trials ~p in
  let counts = Array.make (trials + 1) 0 in
  for _ = 1 to draws do
    let x = Binomial.sample g d in
    check_true (name ^ ": sample in range") (x >= 0 && x <= trials);
    counts.(x) <- counts.(x) + 1
  done;
  let n = float_of_int draws in
  (* Pool consecutive k into bins until each holds >= 5 expected. *)
  let chi2 = ref 0. and df = ref (-1) in
  let acc_obs = ref 0. and acc_exp = ref 0. in
  for k = 0 to trials do
    acc_obs := !acc_obs +. float_of_int counts.(k);
    acc_exp := !acc_exp +. (n *. Binomial.pmf d k);
    if !acc_exp >= 5. || k = trials then begin
      if !acc_exp > 0. then begin
        let diff = !acc_obs -. !acc_exp in
        chi2 := !chi2 +. (diff *. diff /. !acc_exp);
        incr df
      end;
      acc_obs := 0.;
      acc_exp := 0.
    end
  done;
  let df = float_of_int (max 1 !df) in
  let threshold = df +. (4. *. sqrt (2. *. df)) +. 10. in
  check_true
    (Printf.sprintf "%s: chi2 %.1f under threshold %.1f (df %.0f)" name !chi2
       threshold df)
    (!chi2 < threshold)

let test_sampler_goodness_of_fit () =
  let g = rng () in
  (* Small mean: the BINV inversion path. *)
  chi_square_gof ~name:"binv small mean" ~trials:30 ~p:0.1 ~draws:20_000 g;
  chi_square_gof ~name:"binv moderate" ~trials:200 ~p:0.25 ~draws:20_000 g;
  (* Large mean: the BTPE accept/reject path. *)
  chi_square_gof ~name:"btpe large mean" ~trials:5_000 ~p:0.1 ~draws:20_000 g;
  chi_square_gof ~name:"btpe paper scale" ~trials:100_000 ~p:0.01 ~draws:10_000 g;
  (* p > 1/2: the reflection wrapper (previously an underflow hazard). *)
  chi_square_gof ~name:"reflected btpe" ~trials:2_000 ~p:0.7 ~draws:20_000 g;
  chi_square_gof ~name:"reflected binv" ~trials:40 ~p:0.9 ~draws:20_000 g

let test_binv_btpe_boundary () =
  (* trials = 1000 straddling the mean <= 64 dispatch boundary: just below
     goes through BINV inversion, just above through BTPE.  Both sides must
     be deterministic per seed and statistically sound. *)
  let below = Binomial.create ~trials:1000 ~p:0.0639 in
  let above = Binomial.create ~trials:1000 ~p:0.0641 in
  let draw_seq d seed =
    let g = Nakamoto_prob.Rng.create ~seed in
    List.init 200 (fun _ -> Binomial.sample g d)
  in
  check_true "below boundary deterministic"
    (draw_seq below 123L = draw_seq below 123L);
  check_true "above boundary deterministic"
    (draw_seq above 123L = draw_seq above 123L);
  let mean_of l =
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let tol d =
    4. *. sqrt (Binomial.variance d /. 200.)
  in
  check_true "below boundary mean sane"
    (Float.abs (mean_of (draw_seq below 5L) -. Binomial.mean below) < tol below);
  check_true "above boundary mean sane"
    (Float.abs (mean_of (draw_seq above 5L) -. Binomial.mean above) < tol above);
  (* The dispatch also depends on trials: small trial counts stay on BINV
     even at high mean-per-trial. *)
  let small = Binomial.create ~trials:256 ~p:0.5 in
  check_true "small-trials deterministic"
    (draw_seq small 77L = draw_seq small 77L);
  check_true "small-trials mean sane"
    (Float.abs (mean_of (draw_seq small 5L) -. Binomial.mean small) < tol small)

let test_cdf_survival_edges () =
  (* Degenerate p and out-of-support k, on both sides of the support. *)
  List.iter
    (fun (trials, p) ->
      let d = Binomial.create ~trials ~p in
      let tag = Printf.sprintf "(n=%d, p=%g)" trials p in
      close (tag ^ " cdf below support") 0. (Binomial.cdf d (-1));
      close (tag ^ " cdf far below support") 0. (Binomial.cdf d (-100));
      close (tag ^ " survival below support") 1. (Binomial.survival d (-1));
      close (tag ^ " cdf at n") 1. (Binomial.cdf d trials);
      close (tag ^ " cdf above support") 1. (Binomial.cdf d (trials + 1));
      close (tag ^ " cdf far above support") 1. (Binomial.cdf d (trials + 100));
      close (tag ^ " survival at n") 0. (Binomial.survival d trials);
      close (tag ^ " survival above support") 0.
        (Binomial.survival d (trials + 1)))
    [ (0, 0.3); (7, 0.); (7, 1.); (7, 0.3); (200, 1e-9); (200, 1.) ];
  (* p = 0: all mass at 0; p = 1: all mass at n. *)
  let zero = Binomial.create ~trials:9 ~p:0. in
  close "p=0 cdf 0" 1. (Binomial.cdf zero 0);
  close "p=0 survival 0" 0. (Binomial.survival zero 0);
  let one = Binomial.create ~trials:9 ~p:1. in
  close "p=1 cdf n-1" 0. (Binomial.cdf one 8);
  close "p=1 survival n-1" 1. (Binomial.survival one 8);
  close "p=1 pmf n" 1. (Binomial.pmf one 9)

let test_trials_dispatch_boundary () =
  (* The sampler dispatches on [mean <= 64 || trials <= 256]: at p = 0.5,
     trials = 256 (mean 128) still takes BINV by the trials clause while
     trials = 257 crosses into BTPE.  Both sides must be in-range,
     deterministic per seed, and mean-correct; their pooled tallies must
     also survive an exact binomial test against the law itself. *)
  List.iter
    (fun trials ->
      let d = Binomial.create ~trials ~p:0.5 in
      let draw seed =
        let g = Nakamoto_prob.Rng.create ~seed in
        Array.init 400 (fun _ -> Binomial.sample g d)
      in
      let a = draw 9L in
      check_true
        (Printf.sprintf "trials=%d deterministic" trials)
        (a = draw 9L);
      Array.iter
        (fun k ->
          check_true
            (Printf.sprintf "trials=%d sample in range" trials)
            (k >= 0 && k <= trials))
        a;
      let total = Array.fold_left ( + ) 0 a in
      let pv =
        Nakamoto_prob.Stats.binomial_test ~hits:total ~trials:(400 * trials)
          ~p:0.5
      in
      check_true
        (Printf.sprintf "trials=%d pooled draws match the law (p=%.2e)" trials
           pv)
        (pv > 1e-9))
    [ 255; 256; 257; 258 ]

let props =
  let gen_dist =
    QCheck2.Gen.(
      let* trials = int_range 0 60 in
      let* p = float_range 0. 1. in
      return (trials, p))
  in
  [
    prop "pmf sums to 1" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        let total = ref 0. in
        for k = 0 to trials do
          total := !total +. Binomial.pmf d k
        done;
        Float.abs (!total -. 1.) < 1e-9);
    prop "mean equals sum of k pmf(k)" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        let m = ref 0. in
        for k = 0 to trials do
          m := !m +. (float_of_int k *. Binomial.pmf d k)
        done;
        Float.abs (!m -. Binomial.mean d) < 1e-9);
    prop "cdf monotone" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        let ok = ref true in
        for k = 0 to trials - 1 do
          if Binomial.cdf d k > Binomial.cdf d (k + 1) +. 1e-12 then ok := false
        done;
        !ok);
    prop "prob_one <= prob_positive" gen_dist (fun (trials, p) ->
        let d = Binomial.create ~trials ~p in
        Binomial.prob_one d <= Binomial.prob_positive d +. 1e-12);
  ]

let suite =
  [
    case "create validation" test_create_validation;
    case "moments" test_moments;
    case "pmf known values" test_pmf_known_values;
    case "pmf degenerate p" test_pmf_degenerate;
    case "cdf/survival" test_cdf_survival;
    case "paper quantities (Eqs. 7-9)" test_paper_quantities;
    case "sampling moments" test_sampling_moments;
    case "sampling degenerate" test_sampling_degenerate;
    case "sampler goodness of fit (chi-square)" test_sampler_goodness_of_fit;
    case "BINV/BTPE dispatch boundary" test_binv_btpe_boundary;
    case "cdf/survival edge cases" test_cdf_survival_edges;
    case "trials dispatch boundary (256/257)" test_trials_dispatch_boundary;
  ]
  @ props
