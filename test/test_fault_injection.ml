(* Fault injection: the protocol machinery must stay sound under arbitrary
   (even deliberately nasty) delay policies and malformed inputs — the
   adversary's only real power is the one the model grants. *)

open Helpers
module Sim = Nakamoto_sim
module Network = Nakamoto_net.Network
module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree

(* A delay policy computed from a hash of (recipient, sender, round) with
   deliberately out-of-range outputs: negative, zero, and huge delays.
   The network must clamp everything into [1, delta]. *)
let nasty_policy salt =
  Network.Per_recipient
    (fun ~recipient (msg : Network.message) ->
      let h =
        Nakamoto_prob.Rng.splitmix64
          (Int64.of_int ((recipient * 7919) + (msg.sender * 104729)
                         + (msg.sent_round * 31) + salt))
      in
      (* Map to a range straddling both invalid extremes. *)
      Int64.to_int (Int64.rem h 400L) - 100)

let run_with_policy ~salt ~seed =
  let cfg =
    {
      (Sim.Config.with_c
         { Sim.Config.default with rounds = 1200; seed; nu = 0.25 }
         ~c:1.5)
      with
      delay_override = Some (nasty_policy salt);
    }
  in
  Sim.Execution.run cfg

let test_nasty_policies_keep_invariants () =
  List.iter
    (fun salt ->
      let r = run_with_policy ~salt ~seed:(Int64.of_int (salt + 9)) in
      check_int
        (Printf.sprintf "salt %d: no orphans" salt)
        0 r.orphans_remaining;
      (* Conservation: every honest block is in the god view. *)
      let honest = ref 0 in
      Block_tree.iter_blocks r.god_view (fun b ->
          if (not (Block.is_genesis b)) && b.Block.miner_class = Block.Honest
          then incr honest);
      check_int (Printf.sprintf "salt %d: conservation" salt) r.honest_blocks
        !honest;
      (* Chains are valid: every final tip's chain walks back to genesis. *)
      Array.iter
        (fun tip ->
          let path = Block_tree.chain_to_genesis r.god_view tip in
          check_true "path starts at genesis" (Block.is_genesis (List.hd path)))
        r.final_tips;
      (* The consistency auditor must run without exceptions. *)
      ignore (Sim.Metrics.check_consistency r))
    [ 1; 2; 3; 4; 5 ]

let test_delays_never_exceed_delta () =
  (* Direct check at the network layer: even a policy answering max_int or
     negative numbers delivers within [1, delta]. *)
  let rng = rng () in
  let evil =
    Network.Per_recipient
      (fun ~recipient _ -> if recipient mod 2 = 0 then max_int else -1000)
  in
  let n = Network.create ~delta:5 ~players:4 ~policy:evil ~rng in
  for round = 1 to 50 do
    Network.broadcast n
      { Network.sender = round mod 4; sent_round = round; blocks = [] }
  done;
  let received = ref 0 in
  for recipient = 0 to 3 do
    for round = 1 to 55 do
      received :=
        !received + List.length (Network.deliver n ~recipient ~round)
    done
  done;
  check_int "all messages delivered within delta" (Network.messages_sent n)
    !received

let test_malformed_blocks_rejected_everywhere () =
  (* A block whose parent is unknown is refused by the tree and buffered,
     not inserted, by the miner. *)
  let tree = Block_tree.create () in
  let stranger =
    Block.mine
      ~parent:
        (Block.mine ~parent:Block.genesis ~miner:1 ~miner_class:Block.Honest
           ~round:1 ~nonce:0 ~payload:"")
      ~miner:1 ~miner_class:Block.Honest ~round:2 ~nonce:0 ~payload:""
  in
  check_true "tree refuses orphan" (Block_tree.insert tree stranger = `Orphan);
  let miner = Sim.Miner.create ~id:0 () in
  Sim.Miner.receive miner [ stranger ];
  check_int "miner buffers, does not adopt" 0 (Sim.Miner.chain_length miner);
  check_int "orphan buffered" 1 (Sim.Miner.orphan_count miner)

let props =
  [
    prop ~count:20 "random nasty policies keep the execution sound"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 1000))
      (fun (salt, seed) ->
        let r = run_with_policy ~salt ~seed:(Int64.of_int seed) in
        r.orphans_remaining = 0
        && Array.for_all
             (fun (tip : Block.t) -> Block_tree.mem r.god_view tip.hash)
             r.final_tips);
  ]

let suite =
  [
    case "nasty policies keep invariants" test_nasty_policies_keep_invariants;
    case "delays always clamped to [1, delta]" test_delays_never_exceed_delta;
    case "malformed blocks rejected" test_malformed_blocks_rejected_everywhere;
  ]
  @ props
