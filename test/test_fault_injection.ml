(* Fault injection: the protocol machinery must stay sound under arbitrary
   (even deliberately nasty) delay policies and malformed inputs — the
   adversary's only real power is the one the model grants. *)

open Helpers
module Sim = Nakamoto_sim
module Network = Nakamoto_net.Network
module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree

(* A delay policy computed from a hash of (recipient, sender, round) with
   deliberately out-of-range outputs: negative, zero, and huge delays.
   The network must clamp everything into [1, delta]. *)
let nasty_policy salt =
  Network.Per_recipient
    (fun ~recipient (msg : Network.message) ->
      let h =
        Nakamoto_prob.Rng.splitmix64
          (Int64.of_int ((recipient * 7919) + (msg.sender * 104729)
                         + (msg.sent_round * 31) + salt))
      in
      (* Map to a range straddling both invalid extremes. *)
      Int64.to_int (Int64.rem h 400L) - 100)

let run_with_policy ~salt ~seed =
  let cfg =
    {
      (Sim.Config.with_c
         { Sim.Config.default with rounds = 1200; seed; nu = 0.25 }
         ~c:1.5)
      with
      delay_override = Some (nasty_policy salt);
    }
  in
  Sim.Execution.run cfg

let test_nasty_policies_keep_invariants () =
  List.iter
    (fun salt ->
      let r = run_with_policy ~salt ~seed:(Int64.of_int (salt + 9)) in
      check_int
        (Printf.sprintf "salt %d: no orphans" salt)
        0 r.orphans_remaining;
      (* Conservation: every honest block is in the god view. *)
      let honest = ref 0 in
      Block_tree.iter_blocks r.god_view (fun b ->
          if (not (Block.is_genesis b)) && b.Block.miner_class = Block.Honest
          then incr honest);
      check_int (Printf.sprintf "salt %d: conservation" salt) r.honest_blocks
        !honest;
      (* Chains are valid: every final tip's chain walks back to genesis. *)
      Array.iter
        (fun tip ->
          let path = Block_tree.chain_to_genesis r.god_view tip in
          check_true "path starts at genesis" (Block.is_genesis (List.hd path)))
        r.final_tips;
      (* The consistency auditor must run without exceptions. *)
      ignore (Sim.Metrics.check_consistency r))
    [ 1; 2; 3; 4; 5 ]

let test_delays_never_exceed_delta () =
  (* Direct check at the network layer: even a policy answering max_int or
     negative numbers delivers within [1, delta]. *)
  let rng = rng () in
  let evil =
    Network.Per_recipient
      (fun ~recipient _ -> if recipient mod 2 = 0 then max_int else -1000)
  in
  let n = Network.create ~delta:5 ~players:4 ~policy:evil ~rng in
  for round = 1 to 50 do
    Network.broadcast n
      { Network.sender = round mod 4; sent_round = round; blocks = [] }
  done;
  let received = ref 0 in
  for recipient = 0 to 3 do
    for round = 1 to 55 do
      received :=
        !received + List.length (Network.deliver n ~recipient ~round)
    done
  done;
  check_int "all messages delivered within delta" (Network.messages_sent n)
    !received

let test_malformed_blocks_rejected_everywhere () =
  (* A block whose parent is unknown is refused by the tree and buffered,
     not inserted, by the miner. *)
  let tree = Block_tree.create () in
  let stranger =
    Block.mine
      ~parent:
        (Block.mine ~parent:Block.genesis ~miner:1 ~miner_class:Block.Honest
           ~round:1 ~nonce:0 ~payload:"")
      ~miner:1 ~miner_class:Block.Honest ~round:2 ~nonce:0 ~payload:""
  in
  check_true "tree refuses orphan" (Block_tree.insert tree stranger = `Orphan);
  let miner = Sim.Miner.create ~id:0 () in
  Sim.Miner.receive miner [ stranger ];
  check_int "miner buffers, does not adopt" 0 (Sim.Miner.chain_length miner);
  check_int "orphan buffered" 1 (Sim.Miner.orphan_count miner)

let props =
  [
    prop ~count:20 "random nasty policies keep the execution sound"
      QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 1000))
      (fun (salt, seed) ->
        let r = run_with_policy ~salt ~seed:(Int64.of_int seed) in
        r.orphans_remaining = 0
        && Array.for_all
             (fun (tip : Block.t) -> Block_tree.mem r.god_view tip.hash)
             r.final_tips);
  ]

(* --- Campaign fault plans: kill-then-resume bit-identity ------------ *)

module Campaign = Nakamoto_campaign
module Spec = Campaign.Spec
module Faultplan = Campaign.Faultplan

let crash_spec =
  {
    Spec.default with
    Spec.ps = [ 0.02 ];
    ns = [ 8 ];
    deltas = [ 2 ];
    nus = [ 0.1; 0.3 ];
    trials_per_cell = 4;
    rounds = 120;
    seed = 77L;
    shard_size = 1;
  }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let temp_journal tag =
  let path = Filename.temp_file ("fault_" ^ tag) ".jsonl" in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path

let snapshots (o : Campaign.Campaign.outcome) =
  Array.map
    (fun (r : Campaign.Campaign.cell_result) ->
      Campaign.Aggregate.snapshot r.Campaign.Campaign.aggregate)
    o.Campaign.Campaign.cells

(* The oracle: one uninterrupted run.  Each crash plan must land, after
   resume, on exactly these bytes and aggregates. *)
let with_oracle k =
  let golden = temp_journal "golden" in
  Fun.protect
    ~finally:(fun () -> cleanup golden)
    (fun () ->
      let o = Campaign.Campaign.run ~jobs:2 ~journal_path:golden crash_spec in
      k o (read_file golden))

let crash_then_resume ~fault =
  let path = temp_journal "crash" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      (match
         Campaign.Campaign.run ~jobs:2 ~journal_path:path ~fault ~log:ignore
           crash_spec
       with
      | _ -> Alcotest.fail "expected the injected crash to escape"
      | exception Faultplan.Injected_crash _ -> ());
      let logged = ref [] in
      let r =
        Campaign.Campaign.run ~jobs:2 ~journal_path:path ~resume:true
          ~log:(fun m -> logged := m :: !logged)
          crash_spec
      in
      (r, read_file path, !logged))

let test_crash_after_appends_then_resume () =
  with_oracle (fun o golden_bytes ->
      (* Crash with the header plus one cell fsynced: the resume must
         recover that cell and recompute only the other. *)
      let r, bytes, _ =
        crash_then_resume ~fault:(Faultplan.Crash_after_appends 2)
      in
      check_int "one cell survived the crash" 1
        r.Campaign.Campaign.resumed_cells;
      check_int "only the lost cell recomputed" crash_spec.Spec.trials_per_cell
        r.Campaign.Campaign.fresh_trials;
      check_true "aggregates bit-identical to uninterrupted run"
        (compare (snapshots r) (snapshots o) = 0);
      check_true "journal bytes identical to uninterrupted run"
        (bytes = golden_bytes))

let test_torn_write_then_resume () =
  with_oracle (fun o golden_bytes ->
      (* The second cell append (journal append #3, after the header) is
         cut mid-line: SIGKILL during write.  Resume must repair the
         tear, log it, and recompute the cell. *)
      let r, bytes, logged = crash_then_resume ~fault:(Faultplan.Torn_write 3) in
      check_true "torn tail repair was logged"
        (List.exists (contains_substring ~affix:"torn tail") logged);
      check_int "the intact cell survived" 1 r.Campaign.Campaign.resumed_cells;
      check_true "aggregates bit-identical to uninterrupted run"
        (compare (snapshots r) (snapshots o) = 0);
      check_true "journal bytes identical to uninterrupted run"
        (bytes = golden_bytes));
  (* Tearing the very first append leaves a torn header: no usable
     state, so the resume starts fresh — loudly, never fatally. *)
  let path = temp_journal "torn_header" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      (match
         Campaign.Campaign.run ~jobs:2 ~journal_path:path
           ~fault:(Faultplan.Torn_write 1) ~log:ignore crash_spec
       with
      | _ -> Alcotest.fail "expected the injected crash to escape"
      | exception Faultplan.Injected_crash _ -> ());
      let logged = ref [] in
      let r =
        Campaign.Campaign.run ~jobs:2 ~journal_path:path ~resume:true
          ~log:(fun m -> logged := m :: !logged)
          crash_spec
      in
      check_true "unusable journal logged"
        (List.exists (contains_substring ~affix:"no usable state") !logged);
      check_int "nothing recovered" 0 r.Campaign.Campaign.resumed_cells)

let test_raising_worker_supervision () =
  with_oracle (fun o _ ->
      (* Shard 0's worker raises twice; the default retry budget (2)
         covers it and the outcome is unaffected. *)
      let logged = ref [] in
      let r =
        Campaign.Campaign.run ~jobs:2
          ~fault:(Faultplan.Raising_worker { task = 0; failures = 2 })
          ~log:(fun m -> logged := m :: !logged)
          crash_spec
      in
      check_true "requeues were logged"
        (List.exists (contains_substring ~affix:"requeueing") !logged);
      check_true "retried shard changes nothing"
        (compare (snapshots r) (snapshots o) = 0);
      (* With the budget below the failure count, the failure must
         propagate rather than hang or silently drop the shard. *)
      match
        Campaign.Campaign.run ~jobs:2 ~retries:1
          ~fault:(Faultplan.Raising_worker { task = 0; failures = 2 })
          ~log:ignore crash_spec
      with
      | _ -> Alcotest.fail "expected the exhausted retry budget to re-raise"
      | exception Failure msg ->
        check_true "the worker's own exception surfaces"
          (contains_substring ~affix:"raising-worker" msg))

let test_slow_worker_changes_nothing () =
  with_oracle (fun o golden_bytes ->
      let path = temp_journal "slow" in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          let r =
            Campaign.Campaign.run ~jobs:2 ~journal_path:path
              ~fault:(Faultplan.Slow_worker { task = 0; delay = 0.05 })
              ~log:ignore crash_spec
          in
          check_true "a straggler shard changes nothing"
            (compare (snapshots r) (snapshots o) = 0);
          check_true "journal bytes identical despite reordering"
            (read_file path = golden_bytes)))

let test_faultplan_parsing () =
  let roundtrip s plan =
    match Faultplan.of_string s with
    | Ok p ->
      check_true (Printf.sprintf "parse %s" s) (p = plan);
      check_true
        (Printf.sprintf "round-trip %s" s)
        (Faultplan.of_string (Faultplan.to_string p) = Ok p)
    | Error e -> Alcotest.failf "parse %s: %s" s e
  in
  roundtrip "crash-after-appends=3" (Faultplan.Crash_after_appends 3);
  roundtrip "torn-write=1" (Faultplan.Torn_write 1);
  roundtrip "raising-worker=4" (Faultplan.Raising_worker { task = 4; failures = 1 });
  roundtrip "raising-worker=4:2" (Faultplan.Raising_worker { task = 4; failures = 2 });
  roundtrip "slow-worker=0:0.25" (Faultplan.Slow_worker { task = 0; delay = 0.25 });
  List.iter
    (fun s ->
      match Faultplan.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s)
    [ "crash-after-appends=0"; "torn-write=x"; "raising-worker=-1";
      "slow-worker=1:-2"; "unplugged"; "crash-after-appends" ]

let suite =
  [
    case "nasty policies keep invariants" test_nasty_policies_keep_invariants;
    case "delays always clamped to [1, delta]" test_delays_never_exceed_delta;
    case "malformed blocks rejected" test_malformed_blocks_rejected_everywhere;
    case "crash-after-appends then resume" test_crash_after_appends_then_resume;
    case "torn write then resume" test_torn_write_then_resume;
    case "raising worker supervision" test_raising_worker_supervision;
    case "slow worker changes nothing" test_slow_worker_changes_nothing;
    case "fault plan parsing" test_faultplan_parsing;
  ]
  @ props
