open Helpers
module Tail_bounds = Nakamoto_prob.Tail_bounds
module Binomial = Nakamoto_prob.Binomial

let test_relative_entropy () =
  close "D(p||p) = 0" 0. (Tail_bounds.relative_entropy_bernoulli ~q:0.3 ~p:0.3);
  check_true "D > 0 off-diagonal"
    (Tail_bounds.relative_entropy_bernoulli ~q:0.4 ~p:0.3 > 0.);
  close "Eq. 48 shape"
    ((0.2 *. log (0.2 /. 0.1)) +. (0.8 *. log (0.8 /. 0.9)))
    (Tail_bounds.relative_entropy_bernoulli ~q:0.2 ~p:0.1);
  check_true "support mismatch infinite"
    (Tail_bounds.relative_entropy_bernoulli ~q:0.5 ~p:0. = infinity);
  close "0 ln 0 convention" 0.
    (Tail_bounds.relative_entropy_bernoulli ~q:0. ~p:0.);
  check_raises_invalid "bad input" (fun () ->
      ignore (Tail_bounds.relative_entropy_bernoulli ~q:1.5 ~p:0.5))

let test_binomial_upper_tail_dominates () =
  (* The bound must dominate the exact tail probability (Ineq. 49). *)
  let d = Binomial.create ~trials:500 ~p:0.05 in
  List.iter
    (fun delta ->
      let threshold =
        int_of_float (Float.round ((1. +. delta) *. Binomial.mean d)) - 1
      in
      let exact = Binomial.survival d threshold in
      let bound = Tail_bounds.binomial_upper_tail d ~delta in
      check_true
        (Printf.sprintf "bound %.3g >= exact %.3g at delta=%g" bound exact delta)
        (bound >= exact -. 1e-12))
    [ 0.2; 0.5; 1.0; 2.0 ];
  close "saturates at 1 when (1+d)p >= 1" 1.
    (Tail_bounds.binomial_upper_tail (Binomial.create ~trials:10 ~p:0.6) ~delta:1.);
  check_raises_invalid "negative delta" (fun () ->
      ignore (Tail_bounds.binomial_upper_tail d ~delta:(-0.1)))

let test_binomial_lower_tail_dominates () =
  let d = Binomial.create ~trials:500 ~p:0.05 in
  List.iter
    (fun delta ->
      let threshold =
        int_of_float (Float.round ((1. -. delta) *. Binomial.mean d))
      in
      let exact = Binomial.cdf d threshold in
      let bound = Tail_bounds.binomial_lower_tail d ~delta in
      check_true
        (Printf.sprintf "lower bound %.3g >= exact %.3g at delta=%g" bound exact
           delta)
        (bound >= exact -. 1e-12))
    [ 0.3; 0.5; 0.9 ];
  check_raises_invalid "delta > 1" (fun () ->
      ignore (Tail_bounds.binomial_lower_tail d ~delta:1.5))

let test_tail_decays_exponentially_in_horizon () =
  (* The essence of Ineqs. 19-20: the bound at horizon 2T is (at most) the
     square of the bound at horizon T. *)
  let bound t =
    Tail_bounds.log_binomial_upper_tail
      (Binomial.create ~trials:t ~p:0.01)
      ~delta:0.5
  in
  close ~rtol:1e-9 "log-linear in T" (2. *. bound 1000) (bound 2000);
  check_true "decreasing" (bound 2000 < bound 1000)

let test_hoeffding () =
  close "basic" (exp (-2. *. 100. *. 0.01))
    (Tail_bounds.hoeffding_upper_tail ~trials:100 ~mean_shift:0.1);
  close "zero shift" 1. (Tail_bounds.hoeffding_upper_tail ~trials:5 ~mean_shift:0.);
  check_raises_invalid "bad trials" (fun () ->
      ignore (Tail_bounds.hoeffding_upper_tail ~trials:0 ~mean_shift:0.1))

let test_markov_chain_lower_tail () =
  let bound ~horizon =
    Tail_bounds.markov_chain_lower_tail ~norm_phi_pi:10. ~stationary_rate:0.02
      ~horizon ~mixing_time:5. ~delta:0.5
  in
  check_true "in [0, 1]" (bound ~horizon:100 <= 1. && bound ~horizon:100 >= 0.);
  check_true "saturates at 1 for short horizons" (bound ~horizon:100 = 1.);
  check_true "decays with horizon"
    (bound ~horizon:4_000_000 < bound ~horizon:1_000_000);
  (* Ineq. 47's exponent: delta^2 T mu / (72 tau). *)
  let expected = 10. *. exp (-.(0.25 *. 4e6 *. 0.02) /. (72. *. 5.)) in
  close "exact shape" expected (bound ~horizon:4_000_000);
  check_raises_invalid "bad rate" (fun () ->
      ignore
        (Tail_bounds.markov_chain_lower_tail ~norm_phi_pi:1. ~stationary_rate:0.
           ~horizon:10 ~mixing_time:1. ~delta:0.5))

let test_pi_norm_bound () =
  close "Proposition 1 shape" 10. (Tail_bounds.pi_norm_bound ~min_stationary:0.01);
  check_raises_invalid "zero min" (fun () ->
      ignore (Tail_bounds.pi_norm_bound ~min_stationary:0.))

let props =
  [
    prop "relative entropy nonnegative"
      QCheck2.Gen.(pair (float_range 0.01 0.99) (float_range 0.01 0.99))
      (fun (q, p) -> Tail_bounds.relative_entropy_bernoulli ~q ~p >= 0.);
    prop "upper tail bound within [0,1]"
      QCheck2.Gen.(
        let* trials = int_range 1 1000 in
        let* p = float_range 0.001 0.5 in
        let* delta = float_range 0. 3. in
        return (trials, p, delta))
      (fun (trials, p, delta) ->
        let b =
          Tail_bounds.binomial_upper_tail (Binomial.create ~trials ~p) ~delta
        in
        b >= 0. && b <= 1.);
  ]

let suite =
  [
    case "relative entropy (Eq. 48)" test_relative_entropy;
    case "binomial upper tail dominates exact (Ineq. 49)"
      test_binomial_upper_tail_dominates;
    case "binomial lower tail dominates exact" test_binomial_lower_tail_dominates;
    case "exponential decay in horizon (Ineqs. 19-20)"
      test_tail_decays_exponentially_in_horizon;
    case "hoeffding" test_hoeffding;
    case "markov chain lower tail (Ineq. 47)" test_markov_chain_lower_tail;
    case "pi norm bound (Prop. 1)" test_pi_norm_bound;
  ]
  @ props
