open Helpers
module Sim = Nakamoto_sim
module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree

let quick_config ?(nu = 0.25) ?(rounds = 800) ?(strategy = Sim.Adversary.Idle) ()
    =
  {
    Sim.Config.default with
    nu;
    rounds;
    strategy;
    seed = 7L;
    snapshot_interval = 50;
  }

let test_config_validation () =
  check_raises_invalid "n < 4" (fun () ->
      Sim.Config.validate { Sim.Config.default with n = 3 });
  check_raises_invalid "nu >= 1/2" (fun () ->
      Sim.Config.validate { Sim.Config.default with nu = 0.5 });
  check_raises_invalid "bad p" (fun () ->
      Sim.Config.validate { Sim.Config.default with p = 0. });
  check_raises_invalid "delta < 1" (fun () ->
      Sim.Config.validate { Sim.Config.default with delta = 0 });
  check_raises_invalid "bad snapshot interval" (fun () ->
      Sim.Config.validate { Sim.Config.default with snapshot_interval = 0 });
  Sim.Config.validate Sim.Config.default

let test_config_derivations () =
  let cfg = { Sim.Config.default with n = 40; nu = 0.25 } in
  check_int "adversary count" 10 (Sim.Config.adversary_count cfg);
  check_int "honest count" 30 (Sim.Config.honest_count cfg);
  close "mu" 0.75 (Sim.Config.mu cfg);
  let cfg2 = Sim.Config.with_c cfg ~c:2. in
  close "c roundtrip" 2. (Sim.Config.c cfg2);
  check_raises_invalid "with_c absurd" (fun () ->
      ignore (Sim.Config.with_c cfg ~c:(-1.)))

let test_determinism () =
  let r1 = Sim.Execution.run (quick_config ()) in
  let r2 = Sim.Execution.run (quick_config ()) in
  check_int "same honest blocks" r1.honest_blocks r2.honest_blocks;
  check_int "same adversary blocks" r1.adversary_blocks r2.adversary_blocks;
  check_int "same convergence count" r1.convergence_opportunities
    r2.convergence_opportunities;
  let r3 = Sim.Execution.run { (quick_config ()) with seed = 8L } in
  check_true "different seed differs"
    (r1.honest_blocks <> r3.honest_blocks
    || r1.adversary_blocks <> r3.adversary_blocks)

let test_all_honest_blocks_in_god_view () =
  let r = Sim.Execution.run (quick_config ()) in
  (* Every honest block ever mined lives in the god view; heights match. *)
  let counted = ref 0 in
  Block_tree.iter_blocks r.god_view (fun b ->
      if (not (Block.is_genesis b)) && b.Block.miner_class = Block.Honest then
        incr counted);
  check_int "honest block conservation" r.honest_blocks !counted

let test_tips_known_to_god () =
  let r = Sim.Execution.run (quick_config ()) in
  Array.iter
    (fun (tip : Block.t) ->
      check_true "final tip in god view" (Block_tree.mem r.god_view tip.hash))
    r.final_tips;
  List.iter
    (fun (snap : Sim.Execution.snapshot) ->
      Array.iter
        (fun (tip : Block.t) ->
          check_true "snapshot tip in god view" (Block_tree.mem r.god_view tip.hash))
        snap.tips)
    r.snapshots

let test_no_orphans_remain () =
  let r = Sim.Execution.run (quick_config ~strategy:Sim.Adversary.Idle ()) in
  check_int "no orphans (idle)" 0 r.orphans_remaining;
  let r2 =
    Sim.Execution.run
      (quick_config ~strategy:(Sim.Adversary.Private_chain { reorg_target = 4 }) ())
  in
  check_int "no orphans (attack)" 0 r2.orphans_remaining

let test_honest_convergence_without_adversary () =
  let cfg = Sim.Scenarios.honest_baseline ~seed:3L in
  let r = Sim.Execution.run cfg in
  (* With delay-1 delivery and c comfortably high, all miners agree up to
     the propagation frontier at the end. *)
  let heights = Array.map (fun (b : Block.t) -> b.height) r.final_tips in
  let min_h = Array.fold_left min max_int heights in
  let max_h = Array.fold_left max 0 heights in
  check_true "tips within one block of each other" (max_h - min_h <= 1);
  check_int "nobody mined adversarially" 0 r.adversary_blocks;
  check_true "chain grew" (max_h > 50)

let test_snapshots_cadence () =
  let r = Sim.Execution.run (quick_config ~rounds:200 ()) in
  (* Every 50 rounds plus the final round (200 is on the cadence). *)
  check_int "snapshot count" 4 (List.length r.snapshots);
  let rounds = List.map (fun (s : Sim.Execution.snapshot) -> s.round) r.snapshots in
  Alcotest.(check (list int)) "snapshot rounds" [ 50; 100; 150; 200 ] rounds

let test_counters_against_state_law () =
  (* The execution's per-round H/N tallies follow the same binomial law as
     the state process (same honest trials, same p). *)
  let cfg = quick_config ~rounds:4_000 () in
  let r = Sim.Execution.run cfg in
  let d =
    Nakamoto_prob.Binomial.create ~trials:(Sim.Config.honest_count cfg) ~p:cfg.p
  in
  let t = float_of_int cfg.rounds in
  let alpha = Nakamoto_prob.Binomial.prob_positive d in
  check_true
    (Printf.sprintf "H-round rate %.4f near alpha %.4f"
       (float_of_int r.h_rounds /. t) alpha)
    (Float.abs ((float_of_int r.h_rounds /. t) -. alpha)
    < 5. *. sqrt (alpha /. t) +. 0.01);
  check_true "h1 <= h" (r.h1_rounds <= r.h_rounds);
  check_true "C <= h1" (r.convergence_opportunities <= r.h1_rounds)

let test_delay_override () =
  (* Forcing worst-case delays on an idle adversary slows chain growth
     into the analytic envelope's lower half. *)
  let base = Sim.Config.with_c { (quick_config ~rounds:6000 ()) with nu = 0.25 } ~c:1. in
  let fast = Sim.Execution.run base in
  let slow =
    Sim.Execution.run
      { base with delay_override = Some Nakamoto_net.Network.Maximal }
  in
  let rate (r : Sim.Execution.result) =
    (Sim.Metrics.chain_growth r).growth_rate
  in
  check_true
    (Printf.sprintf "maximal delays slow growth (%.4f < %.4f)" (rate slow)
       (rate fast))
    (rate slow < rate fast);
  (* Blocks still all arrive: no orphans, full consistency machinery ran. *)
  check_int "no orphans under maximal delays" 0 slow.orphans_remaining

let test_concurrent_domains_match_sequential () =
  (* The execution keeps every piece of mutable state per-run (rng, oracle,
     network, miners, adversary) — nothing module-level.  Two executions
     racing in two domains must therefore reproduce the sequential results
     exactly; this is what lets the campaign engine run trials in
     parallel.  *)
  let cfg_a = quick_config ~rounds:400 () in
  let cfg_b =
    {
      (quick_config ~rounds:400
         ~strategy:(Sim.Adversary.Private_chain { reorg_target = 4 })
         ())
      with
      seed = 9L;
    }
  in
  let summary (r : Sim.Execution.result) =
    ( r.honest_blocks,
      r.adversary_blocks,
      r.convergence_opportunities,
      r.max_reorg_depth,
      r.messages_sent,
      Array.map
        (fun (b : Block.t) -> (b.Block.height, Nakamoto_chain.Hash.to_int64 b.Block.hash))
        r.final_tips )
  in
  let seq_a = summary (Sim.Execution.run cfg_a) in
  let seq_b = summary (Sim.Execution.run cfg_b) in
  let da = Domain.spawn (fun () -> summary (Sim.Execution.run cfg_a)) in
  let db = Domain.spawn (fun () -> summary (Sim.Execution.run cfg_b)) in
  let par_a = Domain.join da in
  let par_b = Domain.join db in
  check_true "domain A reproduces the sequential run" (par_a = seq_a);
  check_true "domain B reproduces the sequential run" (par_b = seq_b)

let test_invalid_config_rejected_by_run () =
  check_raises_invalid "run validates" (fun () ->
      ignore (Sim.Execution.run { (quick_config ()) with n = 2 }))

(* ------------------------------------------------------------------ *)
(* Exact-mode regression pins: these exact values were produced by the
   executor before the aggregate fast path landed.  They freeze the
   bit-level behaviour of the default (Exact) mode — any drift here means
   the rng stream layout, oracle consumption order, or release routing
   changed, which would also invalidate the committed campaign goldens. *)
(* ------------------------------------------------------------------ *)

let test_exact_mode_regression_pins () =
  let r = Sim.Execution.run (quick_config ()) in
  check_int "idle honest blocks" 65 r.honest_blocks;
  check_int "idle adversary blocks" 19 r.adversary_blocks;
  check_int "idle convergence opportunities" 38 r.convergence_opportunities;
  check_int "idle max reorg" 0 r.max_reorg_depth;
  check_int "idle messages" 1885 r.messages_sent;
  check_int "idle h rounds" 65 r.h_rounds;
  check_int "idle h1 rounds" 65 r.h1_rounds;
  let r2 =
    Sim.Execution.run
      {
        (quick_config ~strategy:(Sim.Adversary.Private_chain { reorg_target = 4 }) ())
        with
        seed = 9L;
      }
  in
  check_int "attack honest blocks" 70 r2.honest_blocks;
  check_int "attack adversary blocks" 19 r2.adversary_blocks;
  check_int "attack convergence opportunities" 39 r2.convergence_opportunities;
  check_int "attack max reorg" 1 r2.max_reorg_depth;
  check_int "attack messages" 2030 r2.messages_sent

(* ------------------------------------------------------------------ *)
(* Aggregate-mode tests: the fast path must match Exact in distribution
   (same law for every statistic), be deterministic per seed, run the
   attack strategies, and leave no orphans.                             *)
(* ------------------------------------------------------------------ *)

let aggregate_config ?(nu = 0.25) ?(rounds = 800) ?(strategy = Sim.Adversary.Idle)
    ?(seed = 7L) () =
  {
    Sim.Config.default with
    nu;
    rounds;
    strategy;
    seed;
    snapshot_interval = 50;
    mining_mode = Sim.Config.Aggregate;
  }

let test_aggregate_determinism () =
  let summary (r : Sim.Execution.result) =
    ( r.honest_blocks,
      r.adversary_blocks,
      r.convergence_opportunities,
      r.max_reorg_depth,
      r.messages_sent,
      Array.map
        (fun (b : Block.t) -> Nakamoto_chain.Hash.to_int64 b.Block.hash)
        r.final_tips )
  in
  let cfg =
    aggregate_config ~strategy:(Sim.Adversary.Private_chain { reorg_target = 4 })
      ()
  in
  check_true "aggregate deterministic per seed"
    (summary (Sim.Execution.run cfg) = summary (Sim.Execution.run cfg))

let test_aggregate_rejects_recipient_dependent_policies () =
  check_raises_invalid "balance default policy is per-recipient" (fun () ->
      ignore
        (Sim.Execution.run
           (aggregate_config ~strategy:(Sim.Adversary.Balance { group_boundary = 10 })
              ())));
  check_raises_invalid "uniform-random override" (fun () ->
      ignore
        (Sim.Execution.run
           {
             (aggregate_config ()) with
             delay_override = Some Nakamoto_net.Network.Uniform_random;
           }))

let test_aggregate_matches_exact_in_distribution () =
  (* Same configuration, long horizon, different executors: every counter
     is an iid-sum statistic, so the two runs must agree within a few
     standard deviations.  Bounds are ~4 sigma of the difference of two
     independent runs (sigma_diff = sqrt 2 * sigma_run), so a correct
     implementation fails with probability < 1e-4 per check. *)
  let rounds = 20_000 in
  let exact =
    Sim.Execution.run { (quick_config ~rounds ()) with seed = 11L }
  in
  let agg = Sim.Execution.run (aggregate_config ~rounds ~seed:12L ()) in
  let per_round x = float_of_int x /. float_of_int rounds in
  (* honest mean/round = 30 * 0.0025 = 0.075, sd/run ~ 38.7 blocks. *)
  check_true
    (Printf.sprintf "honest blocks close (%d vs %d)" exact.honest_blocks
       agg.honest_blocks)
    (abs (exact.honest_blocks - agg.honest_blocks) < 250);
  (* adversary mean/round = 10 * 0.0025 = 0.025, sd/run ~ 22 blocks. *)
  check_true
    (Printf.sprintf "adversary blocks close (%d vs %d)" exact.adversary_blocks
       agg.adversary_blocks)
    (abs (exact.adversary_blocks - agg.adversary_blocks) < 150);
  check_true
    (Printf.sprintf "h-round rate close (%.4f vs %.4f)" (per_round exact.h_rounds)
       (per_round agg.h_rounds))
    (Float.abs (per_round exact.h_rounds -. per_round agg.h_rounds) < 0.012);
  check_true
    (Printf.sprintf "h1-round rate close (%.4f vs %.4f)"
       (per_round exact.h1_rounds) (per_round agg.h1_rounds))
    (Float.abs (per_round exact.h1_rounds -. per_round agg.h1_rounds) < 0.012);
  check_true
    (Printf.sprintf "convergence-opportunity rate close (%.4f vs %.4f)"
       (per_round exact.convergence_opportunities)
       (per_round agg.convergence_opportunities))
    (Float.abs
       (per_round exact.convergence_opportunities
       -. per_round agg.convergence_opportunities)
    < 0.012)

let test_aggregate_invariants () =
  let r = Sim.Execution.run (aggregate_config ()) in
  check_int "no orphans (idle)" 0 r.orphans_remaining;
  check_int "tips array sized n_honest" 30 (Array.length r.final_tips);
  Array.iter
    (fun (tip : Block.t) ->
      check_true "final tip in god view" (Block_tree.mem r.god_view tip.hash))
    r.final_tips;
  List.iter
    (fun (snap : Sim.Execution.snapshot) ->
      check_int "snapshot sized n_honest" 30 (Array.length snap.tips);
      Array.iter
        (fun (tip : Block.t) ->
          check_true "snapshot tip in god view" (Block_tree.mem r.god_view tip.hash))
        snap.tips)
    r.snapshots;
  (* Honest block conservation through the crowd + materialized views. *)
  let counted = ref 0 in
  Block_tree.iter_blocks r.god_view (fun b ->
      if (not (Block.is_genesis b)) && b.Block.miner_class = Block.Honest then
        incr counted);
  check_int "honest block conservation" r.honest_blocks !counted

let test_aggregate_attack_runs () =
  (* Private-chain attack under Maximal delays (recipient-independent, so
     the aggregate path applies): reorgs happen, nothing is stranded. *)
  let r =
    Sim.Execution.run
      (aggregate_config ~rounds:4_000 ~nu:0.4
         ~strategy:(Sim.Adversary.Private_chain { reorg_target = 2 })
         ())
  in
  check_true "adversary mined" (r.adversary_blocks > 0);
  check_true "releases happened" (r.adversary_releases > 0);
  check_true "reorgs witnessed" (r.max_reorg_depth >= 2);
  check_int "no orphans" 0 r.orphans_remaining

let test_aggregate_honest_convergence () =
  (* Idle adversary, immediate delivery: like the exact-mode convergence
     test, every view (crowd and materialized alike) settles within one
     block of the frontier. *)
  let r = Sim.Execution.run (aggregate_config ~rounds:2_000 ()) in
  let heights = Array.map (fun (b : Block.t) -> b.height) r.final_tips in
  let min_h = Array.fold_left min max_int heights in
  let max_h = Array.fold_left max 0 heights in
  check_true "tips within one block of each other" (max_h - min_h <= 1);
  check_true "chain grew" (max_h > 50)

(* Regression surfaced by the property tier's soak run (seed 42, path
   [38], shrunk): the Balance adversary's [Only]-audience releases
   materialize every honest miner, after which the crowd view stood for
   nobody yet kept receiving ring blocks whose direct-sent parents it
   never saw — phantom orphans counted in [orphans_remaining].  The crowd
   now retires once all miners are materialized; both modes must agree on
   zero orphans after quiescence. *)
let test_aggregate_balance_no_phantom_orphans () =
  let spec =
    {
      Sim.Scenarios.n = 26;
      nu = 0.3703;
      c = 3.9997;
      delta = 1;
      rounds = 200;
      seed = -8843244188913738181L;
      strategy = Sim.Adversary.Balance { group_boundary = 16 };
      delay = Some Nakamoto_net.Network.Immediate;
      tie_break = Nakamoto_chain.Block_tree.Prefer_honest;
      mining_mode = Sim.Config.Exact;
    }
  in
  List.iter
    (fun (label, mode) ->
      let r =
        Sim.Execution.run
          (Sim.Scenarios.of_spec { spec with mining_mode = mode })
      in
      check_int (label ^ ": no orphans after quiescence") 0 r.orphans_remaining)
    [ ("exact", Sim.Config.Exact); ("aggregate", Sim.Config.Aggregate) ]

(* ------------------------------------------------------------------ *)
(* Skip-mode tests: the round-skipping executor must be deterministic,
   reject recipient-dependent delays with the typed error, match the
   aggregate path in distribution, and report how few rounds it actually
   simulated.                                                           *)
(* ------------------------------------------------------------------ *)

let skip_config ?(nu = 0.25) ?(rounds = 800) ?(strategy = Sim.Adversary.Idle)
    ?(seed = 7L) () =
  {
    Sim.Config.default with
    nu;
    rounds;
    strategy;
    seed;
    snapshot_interval = 50;
    mining_mode = Sim.Config.Skip;
  }

let test_skip_determinism () =
  let summary (r : Sim.Execution.result) =
    ( r.honest_blocks,
      r.adversary_blocks,
      r.convergence_opportunities,
      r.max_reorg_depth,
      r.messages_sent,
      r.processed_rounds,
      Array.map
        (fun (b : Block.t) -> Nakamoto_chain.Hash.to_int64 b.Block.hash)
        r.final_tips )
  in
  let cfg =
    skip_config ~strategy:(Sim.Adversary.Private_chain { reorg_target = 4 }) ()
  in
  check_true "skip deterministic per seed"
    (summary (Sim.Execution.run cfg) = summary (Sim.Execution.run cfg))

let test_skip_typed_incompatibility_error () =
  let expect_incompatible label cfg =
    match ignore (Sim.Execution.run cfg) with
    | () -> Alcotest.fail (label ^ ": expected Config.Incompatible")
    | exception Sim.Config.Incompatible { mode; reason } ->
      check_true (label ^ ": mode is Skip") (mode = Sim.Config.Skip);
      Alcotest.(check string)
        (label ^ ": actionable reason")
        "Skip mining requires a recipient-independent delay policy \
         (Immediate, Fixed or Maximal); the effective policy needs \
         per-round inspection"
        reason
  in
  expect_incompatible "balance default policy"
    (skip_config ~strategy:(Sim.Adversary.Balance { group_boundary = 10 }) ());
  expect_incompatible "uniform-random override"
    {
      (skip_config ()) with
      delay_override = Some Nakamoto_net.Network.Uniform_random;
    }

let test_skip_matches_aggregate_in_distribution () =
  (* Same bounds rationale as the exact-vs-aggregate test: every counter
     is an iid-sum statistic, checked to ~4 sigma of a two-run
     difference. *)
  let rounds = 20_000 in
  let agg = Sim.Execution.run (aggregate_config ~rounds ~seed:11L ()) in
  let skip = Sim.Execution.run (skip_config ~rounds ~seed:12L ()) in
  let per_round x = float_of_int x /. float_of_int rounds in
  check_true
    (Printf.sprintf "honest blocks close (%d vs %d)" agg.honest_blocks
       skip.honest_blocks)
    (abs (agg.honest_blocks - skip.honest_blocks) < 250);
  check_true
    (Printf.sprintf "adversary blocks close (%d vs %d)" agg.adversary_blocks
       skip.adversary_blocks)
    (abs (agg.adversary_blocks - skip.adversary_blocks) < 150);
  check_true
    (Printf.sprintf "h-round rate close (%.4f vs %.4f)" (per_round agg.h_rounds)
       (per_round skip.h_rounds))
    (Float.abs (per_round agg.h_rounds -. per_round skip.h_rounds) < 0.012);
  check_true
    (Printf.sprintf "h1-round rate close (%.4f vs %.4f)"
       (per_round agg.h1_rounds) (per_round skip.h1_rounds))
    (Float.abs (per_round agg.h1_rounds -. per_round skip.h1_rounds) < 0.012);
  check_true
    (Printf.sprintf "convergence-opportunity rate close (%.4f vs %.4f)"
       (per_round agg.convergence_opportunities)
       (per_round skip.convergence_opportunities))
    (Float.abs
       (per_round agg.convergence_opportunities
       -. per_round skip.convergence_opportunities)
    < 0.012)

let test_skip_invariants () =
  let r = Sim.Execution.run (skip_config ()) in
  check_int "no orphans (idle)" 0 r.orphans_remaining;
  check_int "tips array sized n_honest" 30 (Array.length r.final_tips);
  Array.iter
    (fun (tip : Block.t) ->
      check_true "final tip in god view" (Block_tree.mem r.god_view tip.hash))
    r.final_tips;
  List.iter
    (fun (snap : Sim.Execution.snapshot) ->
      check_int "snapshot sized n_honest" 30 (Array.length snap.tips);
      Array.iter
        (fun (tip : Block.t) ->
          check_true "snapshot tip in god view" (Block_tree.mem r.god_view tip.hash))
        snap.tips)
    r.snapshots;
  let counted = ref 0 in
  Block_tree.iter_blocks r.god_view (fun b ->
      if (not (Block.is_genesis b)) && b.Block.miner_class = Block.Honest then
        incr counted);
  check_int "honest block conservation" r.honest_blocks !counted

let test_processed_rounds_semantics () =
  (* Exact and aggregate touch every round; skip touches only event
     rounds, so it must report strictly fewer than [rounds] at the
     default block density (1/(c*delta) ~ 1/16) while still accounting
     the full horizon in its statistics. *)
  let rounds = 2_000 in
  let exact = Sim.Execution.run (quick_config ~rounds ()) in
  check_int "exact processes every round" rounds exact.processed_rounds;
  let agg = Sim.Execution.run (aggregate_config ~rounds ()) in
  check_int "aggregate processes every round" rounds agg.processed_rounds;
  let skip = Sim.Execution.run (skip_config ~rounds ()) in
  check_true
    (Printf.sprintf "skip processes fewer rounds (%d of %d)"
       skip.processed_rounds rounds)
    (skip.processed_rounds > 0 && skip.processed_rounds < rounds)

let test_skip_snapshot_cadence () =
  (* Snapshots fall on the configured cadence even when the rounds they
     name were fast-forwarded over. *)
  let r = Sim.Execution.run (skip_config ~rounds:200 ()) in
  check_int "snapshot count" 4 (List.length r.snapshots);
  let rounds = List.map (fun (s : Sim.Execution.snapshot) -> s.round) r.snapshots in
  Alcotest.(check (list int)) "snapshot rounds" [ 50; 100; 150; 200 ] rounds

let test_skip_attack_runs () =
  let r =
    Sim.Execution.run
      (skip_config ~rounds:4_000 ~nu:0.4
         ~strategy:(Sim.Adversary.Private_chain { reorg_target = 2 })
         ())
  in
  check_true "adversary mined" (r.adversary_blocks > 0);
  check_true "releases happened" (r.adversary_releases > 0);
  check_true "reorgs witnessed" (r.max_reorg_depth >= 2);
  check_int "no orphans" 0 r.orphans_remaining

let test_skip_honest_convergence () =
  let r = Sim.Execution.run (skip_config ~rounds:2_000 ()) in
  let heights = Array.map (fun (b : Block.t) -> b.height) r.final_tips in
  let min_h = Array.fold_left min max_int heights in
  let max_h = Array.fold_left max 0 heights in
  check_true "tips within one block of each other" (max_h - min_h <= 1);
  check_true "chain grew" (max_h > 50)

let suite =
  [
    case "config validation" test_config_validation;
    case "config derivations" test_config_derivations;
    case "determinism by seed" test_determinism;
    case "honest block conservation" test_all_honest_blocks_in_god_view;
    case "tips known to god view" test_tips_known_to_god;
    case "no orphans remain" test_no_orphans_remain;
    case "honest-only convergence" test_honest_convergence_without_adversary;
    case "snapshot cadence" test_snapshots_cadence;
    case "counters follow the state law" test_counters_against_state_law;
    case "delay override" test_delay_override;
    case "concurrent domains match sequential" test_concurrent_domains_match_sequential;
    case "run validates config" test_invalid_config_rejected_by_run;
    case "exact-mode regression pins" test_exact_mode_regression_pins;
    case "aggregate determinism" test_aggregate_determinism;
    case "aggregate rejects recipient-dependent policies"
      test_aggregate_rejects_recipient_dependent_policies;
    case "aggregate matches exact in distribution"
      test_aggregate_matches_exact_in_distribution;
    case "aggregate invariants" test_aggregate_invariants;
    case "aggregate attack runs" test_aggregate_attack_runs;
    case "aggregate honest convergence" test_aggregate_honest_convergence;
    case "aggregate balance has no phantom crowd orphans"
      test_aggregate_balance_no_phantom_orphans;
    case "skip determinism" test_skip_determinism;
    case "skip raises the typed incompatibility error"
      test_skip_typed_incompatibility_error;
    case "skip matches aggregate in distribution"
      test_skip_matches_aggregate_in_distribution;
    case "skip invariants" test_skip_invariants;
    case "processed_rounds semantics across modes"
      test_processed_rounds_semantics;
    case "skip snapshot cadence" test_skip_snapshot_cadence;
    case "skip attack runs" test_skip_attack_runs;
    case "skip honest convergence" test_skip_honest_convergence;
  ]
