open Helpers
module Network = Nakamoto_net.Network
module Block = Nakamoto_chain.Block

let make ?(delta = 4) ?(players = 3) ?(policy = Network.Immediate) () =
  Network.create ~delta ~players ~policy ~rng:(rng ())

let msg ?(sender = 0) ~round () =
  { Network.sender; sent_round = round; blocks = [ Block.genesis ] }

let test_create_validation () =
  check_raises_invalid "delta 0" (fun () ->
      ignore (make ~delta:0 ()));
  check_raises_invalid "no players" (fun () -> ignore (make ~players:0 ()))

let test_broadcast_excludes_sender () =
  let n = make () in
  Network.broadcast n (msg ~sender:1 ~round:1 ());
  check_int "two recipients" 2 (Network.messages_sent n);
  check_true "sender gets nothing"
    (Network.deliver n ~recipient:1 ~round:100 = []);
  check_int "others get it" 1
    (List.length (Network.deliver n ~recipient:0 ~round:100))

let test_immediate_delivery_next_round () =
  let n = make () in
  Network.broadcast n (msg ~round:5 ());
  check_true "not yet at round 5" (Network.deliver n ~recipient:1 ~round:5 = []);
  check_int "delivered at round 6" 1
    (List.length (Network.deliver n ~recipient:1 ~round:6))

let test_maximal_policy_delays_delta () =
  let n = make ~delta:4 ~policy:Network.Maximal () in
  Network.broadcast n (msg ~round:10 ());
  check_true "not at 13" (Network.deliver n ~recipient:1 ~round:13 = []);
  check_int "at 14" 1 (List.length (Network.deliver n ~recipient:1 ~round:14))

let test_fixed_policy_clamped () =
  (* Fixed 100 with delta 4 must clamp to 4. *)
  let n = make ~delta:4 ~policy:(Network.Fixed 100) () in
  Network.broadcast n (msg ~round:1 ());
  check_int "clamped to delta" 1
    (List.length (Network.deliver n ~recipient:1 ~round:5));
  (* Fixed 0 clamps up to 1. *)
  let n0 = make ~delta:4 ~policy:(Network.Fixed 0) () in
  Network.broadcast n0 (msg ~round:1 ());
  check_true "same-round delivery impossible"
    (Network.deliver n0 ~recipient:1 ~round:1 = []);
  check_int "clamped to 1" 1
    (List.length (Network.deliver n0 ~recipient:1 ~round:2))

let test_uniform_policy_within_bounds () =
  let n = make ~delta:6 ~policy:Network.Uniform_random ~players:2 () in
  for r = 1 to 200 do
    Network.broadcast n { (msg ~round:r ()) with sender = 0 }
  done;
  (* Everything must arrive within delta rounds. *)
  let received = ref 0 in
  for r = 1 to 206 do
    received := !received + List.length (Network.deliver n ~recipient:1 ~round:r)
  done;
  check_int "all arrive within delta" 200 !received;
  check_int "none pending" 0 (Network.pending n)

let test_per_recipient_policy () =
  let policy =
    Network.Per_recipient
      (fun ~recipient _ -> if recipient = 1 then 1 else 3)
  in
  let n = make ~delta:4 ~players:3 ~policy () in
  Network.broadcast n (msg ~sender:0 ~round:1 ());
  check_int "fast recipient" 1
    (List.length (Network.deliver n ~recipient:1 ~round:2));
  check_true "slow recipient not yet" (Network.deliver n ~recipient:2 ~round:2 = []);
  check_int "slow recipient at 4" 1
    (List.length (Network.deliver n ~recipient:2 ~round:4))

let test_send_direct () =
  let n = make ~delta:4 () in
  Network.send_direct n ~recipient:2 ~delay:2 (msg ~sender:(-1) ~round:1 ());
  check_int "direct delivery" 1
    (List.length (Network.deliver n ~recipient:2 ~round:3));
  check_raises_invalid "recipient range" (fun () ->
      Network.send_direct n ~recipient:7 ~delay:1 (msg ~round:1 ()))

let test_delivery_order () =
  let n = make ~delta:8 ~players:2 () in
  (* Two messages due the same round arrive in send order. *)
  Network.send_direct n ~recipient:1 ~delay:2
    { Network.sender = 0; sent_round = 1; blocks = [] };
  Network.send_direct n ~recipient:1 ~delay:2
    { Network.sender = 0; sent_round = 1; blocks = [ Block.genesis ] };
  match Network.deliver n ~recipient:1 ~round:3 with
  | [ first; second ] ->
    check_int "first sent first" 0 (List.length first.Network.blocks);
    check_int "second second" 1 (List.length second.Network.blocks)
  | _ -> Alcotest.fail "expected both messages"

let test_messages_never_lost () =
  let n = make ~delta:3 ~players:4 ~policy:Network.Uniform_random () in
  for r = 1 to 50 do
    Network.broadcast n (msg ~sender:(r mod 4) ~round:r ())
  done;
  let total = ref 0 in
  for recipient = 0 to 3 do
    for r = 1 to 60 do
      total := !total + List.length (Network.deliver n ~recipient ~round:r)
    done
  done;
  check_int "every enqueued message is delivered exactly once"
    (Network.messages_sent n) !total;
  check_int "nothing pending" 0 (Network.pending n)

(* ------------------------------------------------------------------ *)
(* Δ-ring broadcast lane                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_enable_rules () =
  let n = make () in
  check_false "off by default" (Network.ring_enabled n);
  Network.enable_ring n;
  check_true "enabled" (Network.ring_enabled n);
  check_raises_invalid "double enable" (fun () -> Network.enable_ring n);
  let late = make () in
  Network.broadcast late (msg ~round:1 ());
  check_raises_invalid "enable after a send" (fun () ->
      Network.enable_ring late)

let test_ring_broadcast_and_drain () =
  let n = make ~delta:4 ~players:5 ~policy:(Network.Fixed 2) () in
  Network.enable_ring n;
  Network.broadcast n (msg ~sender:1 ~round:3 ());
  (* One ring insertion stands for players - 1 = 4 deliveries. *)
  check_int "fan-out counted" 4 (Network.messages_sent n);
  check_int "fan-out pending" 4 (Network.pending n);
  (* The queue lane stays empty; the shared lane delivers at round 5. *)
  check_true "queues untouched" (Network.deliver n ~recipient:0 ~round:10 = []);
  check_true "not due yet" (Network.deliver_shared n ~round:4 = []);
  (match Network.deliver_shared n ~round:5 with
  | [ m ] -> check_int "the broadcast message" 1 m.Network.sender
  | _ -> Alcotest.fail "expected exactly one shared message");
  check_true "drained once" (Network.deliver_shared n ~round:5 = []);
  check_int "nothing pending" 0 (Network.pending n)

let test_ring_order_and_skipped_rounds () =
  let n = make ~delta:4 ~players:3 ~policy:Network.Immediate () in
  Network.enable_ring n;
  (* Mixed delays via broadcast_all, plus policy broadcasts; drain with a
     jump over several rounds: due order, send-stable within a round. *)
  Network.broadcast_all n ~delay:3
    { Network.sender = -1; sent_round = 1; blocks = [] };
  Network.broadcast n (msg ~sender:0 ~round:1 ());  (* due 2 *)
  Network.broadcast n (msg ~sender:2 ~round:1 ());  (* due 2 *)
  (match Network.deliver_shared n ~round:6 with
  | [ a; b; c ] ->
    check_int "due-2 first (send order)" 0 a.Network.sender;
    check_int "due-2 second" 2 b.Network.sender;
    check_int "due-4 last" (-1) c.Network.sender
  | l -> Alcotest.fail (Printf.sprintf "expected 3 messages, got %d" (List.length l)));
  (* Ring slots recycle after draining: a later broadcast lands cleanly. *)
  Network.broadcast n (msg ~sender:1 ~round:7 ());
  check_int "recycled slot delivers" 1
    (List.length (Network.deliver_shared n ~round:8))

let test_ring_adversary_fanout () =
  (* A sender outside the player set (the adversary) reaches everyone:
     fan-out players, not players - 1. *)
  let n = make ~delta:4 ~players:3 ~policy:Network.Maximal () in
  Network.enable_ring n;
  Network.broadcast_all n ~delay:1
    { Network.sender = -1; sent_round = 1; blocks = [] };
  check_int "full fan-out counted" 3 (Network.messages_sent n);
  check_int "full fan-out pending" 3 (Network.pending n);
  ignore (Network.deliver_shared n ~round:2);
  check_int "drained" 0 (Network.pending n)

let test_ring_direct_sends_stay_queued () =
  (* send_direct keeps using the per-recipient queues even with the ring
     on — the two lanes coexist. *)
  let n = make ~delta:4 ~players:3 ~policy:Network.Immediate () in
  Network.enable_ring n;
  Network.send_direct n ~recipient:2 ~delay:2 (msg ~sender:(-1) ~round:1 ());
  Network.broadcast n (msg ~sender:0 ~round:1 ());
  check_int "queued + ring pending" 3 (Network.pending n);
  check_int "direct delivery via queue" 1
    (List.length (Network.deliver n ~recipient:2 ~round:3));
  check_int "shared delivery via ring" 1
    (List.length (Network.deliver_shared n ~round:3));
  check_int "nothing left" 0 (Network.pending n)

let test_ring_recipient_dependent_policy_stays_queued () =
  (* Under Uniform_random the ring cannot represent per-recipient delays:
     broadcast falls back to the queue lane even with the ring enabled. *)
  let n = make ~delta:3 ~players:4 ~policy:Network.Uniform_random () in
  Network.enable_ring n;
  Network.broadcast n (msg ~sender:0 ~round:1 ());
  check_true "ring lane empty" (Network.deliver_shared n ~round:10 = []);
  let got = ref 0 in
  for recipient = 1 to 3 do
    for r = 1 to 10 do
      got := !got + List.length (Network.deliver n ~recipient ~round:r)
    done
  done;
  check_int "all copies through the queues" 3 !got

let test_ring_fast_forward_equals_single_steps () =
  (* Skipping k >> delta rounds in one deliver_shared call yields the
     same messages, in the same order, as k single-round drains — the
     Skip executor's fast-forward contract. *)
  let fill n =
    Network.enable_ring n;
    Network.broadcast n (msg ~sender:0 ~round:1 ());
    Network.broadcast_all n ~delay:3
      { Network.sender = -1; sent_round = 1; blocks = [] };
    Network.broadcast n (msg ~sender:2 ~round:2 ())
  in
  let jump = make ~delta:4 ~players:3 ~policy:Network.Immediate () in
  let step = make ~delta:4 ~players:3 ~policy:Network.Immediate () in
  fill jump;
  fill step;
  let jumped = Network.deliver_shared jump ~round:1000 in
  let stepped = ref [] in
  for r = 2 to 1000 do
    stepped := !stepped @ Network.deliver_shared step ~round:r
  done;
  let senders l = List.map (fun (m : Network.message) -> m.Network.sender) l in
  Alcotest.(check (list int))
    "same messages in due order" (senders !stepped) (senders jumped);
  check_int "jump drained everything" 0 (Network.pending jump);
  (* The frontier really moved: a post-jump broadcast lands cleanly in a
     recycled slot. *)
  Network.broadcast jump (msg ~sender:1 ~round:1000 ());
  check_int "recycled slot after the jump" 1
    (List.length (Network.deliver_shared jump ~round:1001))

let test_next_due () =
  let n = make ~delta:4 ~players:3 ~policy:Network.Maximal () in
  Network.enable_ring n;
  Network.enable_due_index n;
  check_true "idle network: no due" (Network.next_due n ~now:0 = None);
  Network.broadcast n (msg ~sender:0 ~round:1 ());
  (* Maximal policy: due at 1 + delta = 5, via the ring lane. *)
  check_true "ring due at 5" (Network.next_due n ~now:1 = Some 5);
  Network.send_direct n ~recipient:2 ~delay:2 (msg ~sender:(-1) ~round:1 ());
  check_true "earlier direct due wins" (Network.next_due n ~now:1 = Some 3);
  ignore (Network.deliver n ~recipient:2 ~round:3);
  check_true "after direct delivery the ring remains"
    (Network.next_due n ~now:3 = Some 5);
  check_raises_invalid "overdue ring delivery is a caller bug" (fun () ->
      ignore (Network.next_due n ~now:5));
  ignore (Network.deliver_shared n ~round:5);
  check_true "fully drained: no due" (Network.next_due n ~now:5 = None)

let test_due_index_guards () =
  let n = make ~delta:4 ~players:3 ~policy:Network.Immediate () in
  Network.enable_due_index n;
  check_raises_invalid "double enable" (fun () ->
      Network.enable_due_index n);
  let busy = make ~delta:4 ~players:3 ~policy:Network.Immediate () in
  Network.broadcast busy (msg ~sender:0 ~round:1 ());
  check_raises_invalid "enable after traffic" (fun () ->
      Network.enable_due_index busy)

let suite =
  [
    case "create validation" test_create_validation;
    case "broadcast excludes sender" test_broadcast_excludes_sender;
    case "immediate = next round" test_immediate_delivery_next_round;
    case "maximal policy waits delta" test_maximal_policy_delays_delta;
    case "fixed policy clamped to [1, delta]" test_fixed_policy_clamped;
    case "uniform policy within bounds" test_uniform_policy_within_bounds;
    case "per-recipient adaptive policy" test_per_recipient_policy;
    case "send_direct" test_send_direct;
    case "same-round delivery order" test_delivery_order;
    case "messages never lost (capability 1)" test_messages_never_lost;
    case "ring enable rules" test_ring_enable_rules;
    case "ring broadcast and drain" test_ring_broadcast_and_drain;
    case "ring order and skipped rounds" test_ring_order_and_skipped_rounds;
    case "ring adversary fan-out" test_ring_adversary_fanout;
    case "ring and queue lanes coexist" test_ring_direct_sends_stay_queued;
    case "ring ignores recipient-dependent broadcasts"
      test_ring_recipient_dependent_policy_stays_queued;
    case "ring fast-forward equals single-round drains"
      test_ring_fast_forward_equals_single_steps;
    case "next_due across both lanes" test_next_due;
    case "due-index enable rules" test_due_index_guards;
  ]
