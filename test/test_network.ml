open Helpers
module Network = Nakamoto_net.Network
module Block = Nakamoto_chain.Block

let make ?(delta = 4) ?(players = 3) ?(policy = Network.Immediate) () =
  Network.create ~delta ~players ~policy ~rng:(rng ())

let msg ?(sender = 0) ~round () =
  { Network.sender; sent_round = round; blocks = [ Block.genesis ] }

let test_create_validation () =
  check_raises_invalid "delta 0" (fun () ->
      ignore (make ~delta:0 ()));
  check_raises_invalid "no players" (fun () -> ignore (make ~players:0 ()))

let test_broadcast_excludes_sender () =
  let n = make () in
  Network.broadcast n (msg ~sender:1 ~round:1 ());
  check_int "two recipients" 2 (Network.messages_sent n);
  check_true "sender gets nothing"
    (Network.deliver n ~recipient:1 ~round:100 = []);
  check_int "others get it" 1
    (List.length (Network.deliver n ~recipient:0 ~round:100))

let test_immediate_delivery_next_round () =
  let n = make () in
  Network.broadcast n (msg ~round:5 ());
  check_true "not yet at round 5" (Network.deliver n ~recipient:1 ~round:5 = []);
  check_int "delivered at round 6" 1
    (List.length (Network.deliver n ~recipient:1 ~round:6))

let test_maximal_policy_delays_delta () =
  let n = make ~delta:4 ~policy:Network.Maximal () in
  Network.broadcast n (msg ~round:10 ());
  check_true "not at 13" (Network.deliver n ~recipient:1 ~round:13 = []);
  check_int "at 14" 1 (List.length (Network.deliver n ~recipient:1 ~round:14))

let test_fixed_policy_clamped () =
  (* Fixed 100 with delta 4 must clamp to 4. *)
  let n = make ~delta:4 ~policy:(Network.Fixed 100) () in
  Network.broadcast n (msg ~round:1 ());
  check_int "clamped to delta" 1
    (List.length (Network.deliver n ~recipient:1 ~round:5));
  (* Fixed 0 clamps up to 1. *)
  let n0 = make ~delta:4 ~policy:(Network.Fixed 0) () in
  Network.broadcast n0 (msg ~round:1 ());
  check_true "same-round delivery impossible"
    (Network.deliver n0 ~recipient:1 ~round:1 = []);
  check_int "clamped to 1" 1
    (List.length (Network.deliver n0 ~recipient:1 ~round:2))

let test_uniform_policy_within_bounds () =
  let n = make ~delta:6 ~policy:Network.Uniform_random ~players:2 () in
  for r = 1 to 200 do
    Network.broadcast n { (msg ~round:r ()) with sender = 0 }
  done;
  (* Everything must arrive within delta rounds. *)
  let received = ref 0 in
  for r = 1 to 206 do
    received := !received + List.length (Network.deliver n ~recipient:1 ~round:r)
  done;
  check_int "all arrive within delta" 200 !received;
  check_int "none pending" 0 (Network.pending n)

let test_per_recipient_policy () =
  let policy =
    Network.Per_recipient
      (fun ~recipient _ -> if recipient = 1 then 1 else 3)
  in
  let n = make ~delta:4 ~players:3 ~policy () in
  Network.broadcast n (msg ~sender:0 ~round:1 ());
  check_int "fast recipient" 1
    (List.length (Network.deliver n ~recipient:1 ~round:2));
  check_true "slow recipient not yet" (Network.deliver n ~recipient:2 ~round:2 = []);
  check_int "slow recipient at 4" 1
    (List.length (Network.deliver n ~recipient:2 ~round:4))

let test_send_direct () =
  let n = make ~delta:4 () in
  Network.send_direct n ~recipient:2 ~delay:2 (msg ~sender:(-1) ~round:1 ());
  check_int "direct delivery" 1
    (List.length (Network.deliver n ~recipient:2 ~round:3));
  check_raises_invalid "recipient range" (fun () ->
      Network.send_direct n ~recipient:7 ~delay:1 (msg ~round:1 ()))

let test_delivery_order () =
  let n = make ~delta:8 ~players:2 () in
  (* Two messages due the same round arrive in send order. *)
  Network.send_direct n ~recipient:1 ~delay:2
    { Network.sender = 0; sent_round = 1; blocks = [] };
  Network.send_direct n ~recipient:1 ~delay:2
    { Network.sender = 0; sent_round = 1; blocks = [ Block.genesis ] };
  match Network.deliver n ~recipient:1 ~round:3 with
  | [ first; second ] ->
    check_int "first sent first" 0 (List.length first.Network.blocks);
    check_int "second second" 1 (List.length second.Network.blocks)
  | _ -> Alcotest.fail "expected both messages"

let test_messages_never_lost () =
  let n = make ~delta:3 ~players:4 ~policy:Network.Uniform_random () in
  for r = 1 to 50 do
    Network.broadcast n (msg ~sender:(r mod 4) ~round:r ())
  done;
  let total = ref 0 in
  for recipient = 0 to 3 do
    for r = 1 to 60 do
      total := !total + List.length (Network.deliver n ~recipient ~round:r)
    done
  done;
  check_int "every enqueued message is delivered exactly once"
    (Network.messages_sent n) !total;
  check_int "nothing pending" 0 (Network.pending n)

let suite =
  [
    case "create validation" test_create_validation;
    case "broadcast excludes sender" test_broadcast_excludes_sender;
    case "immediate = next round" test_immediate_delivery_next_round;
    case "maximal policy waits delta" test_maximal_policy_delays_delta;
    case "fixed policy clamped to [1, delta]" test_fixed_policy_clamped;
    case "uniform policy within bounds" test_uniform_policy_within_bounds;
    case "per-recipient adaptive policy" test_per_recipient_policy;
    case "send_direct" test_send_direct;
    case "same-round delivery order" test_delivery_order;
    case "messages never lost (capability 1)" test_messages_never_lost;
  ]
