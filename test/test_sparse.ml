(* CSR kernel unit tests: construction round-trips, mat-vec against the
   dense reference on edge shapes, domain-pool bit-identity, and the
   stationary solvers on chains with known distributions. *)

open Helpers
module Chain = Nakamoto_markov.Chain
module Sparse = Nakamoto_markov.Sparse
module Linalg = Nakamoto_numerics.Linalg
module Suffix_chain = Nakamoto_core.Suffix_chain

let check_dense msg expected actual =
  let re, ce = Linalg.dims expected and ra, ca = Linalg.dims actual in
  check_int (msg ^ ": rows") re ra;
  check_int (msg ^ ": cols") ce ca;
  for i = 0 to re - 1 do
    for j = 0 to ce - 1 do
      if expected.(i).(j) <> actual.(i).(j) then
        Alcotest.failf "%s: entry (%d,%d) is %.17g, expected %.17g" msg i j
          actual.(i).(j) expected.(i).(j)
    done
  done

let check_vec msg expected actual =
  check_int (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i v ->
      if v <> expected.(i) then
        Alcotest.failf "%s: entry %d is %.17g, expected %.17g" msg i v
          expected.(i))
    actual

(* A rectangular matrix exercising every row shape at once: an empty
   row, a single-entry row, and a full row. *)
let awkward =
  [| [| 0.; 0.; 0. |]; [| 0.; 2.5; 0. |]; [| 1.; -3.; 0.5 |]; [| 0.; 0.; 4. |] |]

let test_roundtrip () =
  List.iter
    (fun (name, m) ->
      check_dense name m (Sparse.to_dense (Sparse.of_dense m)))
    [
      ("awkward", awkward);
      ("1x1", [| [| 7. |] |]);
      ("1x1 zero", [| [| 0. |] |]);
      ("all-zero 3x2", Linalg.make ~rows:3 ~cols:2 0.);
    ]

let test_create_coalesces () =
  (* Duplicate columns sum; explicit zeros disappear; columns sort. *)
  let sp =
    Sparse.create ~rows:2 ~cols:3
      ~entries:[| [ (2, 1.); (0, 0.5); (2, 2.) ]; [ (1, 0.) ] |]
  in
  check_int "nnz after coalescing" 2 (Sparse.nnz sp);
  check_true "row 0 sorted and summed"
    (Sparse.row sp 0 = [ (0, 0.5); (2, 3.) ]);
  check_true "row 1 dropped its zero" (Sparse.row sp 1 = [])

let test_create_validates () =
  check_raises_invalid "column out of range" (fun () ->
      Sparse.create ~rows:1 ~cols:2 ~entries:[| [ (2, 1.) ] |]);
  check_raises_invalid "negative column" (fun () ->
      Sparse.create ~rows:1 ~cols:2 ~entries:[| [ (-1, 1.) ] |]);
  check_raises_invalid "non-finite value" (fun () ->
      Sparse.create ~rows:1 ~cols:2 ~entries:[| [ (0, Float.nan) ] |]);
  check_raises_invalid "entries length mismatch" (fun () ->
      Sparse.create ~rows:2 ~cols:2 ~entries:[| [] |])

let test_mat_vec_edge_shapes () =
  let x3 = [| 2.; -1.; 0.5 |] in
  let sp = Sparse.of_dense awkward in
  check_vec "awkward A x" (Linalg.mat_vec awkward x3) (Sparse.mul_vec sp x3);
  let x4 = [| 1.; 2.; 3.; 4. |] in
  check_vec "awkward x A" (Linalg.vec_mat x4 awkward) (Sparse.vec_mul x4 sp);
  (* 1-state. *)
  let one = Sparse.of_dense [| [| 0.25 |] |] in
  check_vec "1-state" [| 0.5 |] (Sparse.mul_vec one [| 2. |]);
  (* Full bandwidth: a dense 5x5 has every CSR row full. *)
  let full =
    Array.init 5 (fun i ->
        Array.init 5 (fun j -> float_of_int (((i * 5) + j + 1) mod 7)))
  in
  let x5 = Array.init 5 (fun i -> float_of_int i -. 2.) in
  check_vec "full bandwidth"
    (Linalg.mat_vec full x5)
    (Sparse.mul_vec (Sparse.of_dense full) x5);
  check_raises_invalid "mul_vec dimension mismatch" (fun () ->
      ignore (Sparse.mul_vec sp x4));
  check_raises_invalid "vec_mul dimension mismatch" (fun () ->
      ignore (Sparse.vec_mul x3 sp))

let test_transpose () =
  let sp = Sparse.of_dense awkward in
  check_dense "transpose"
    (Linalg.transpose awkward)
    (Sparse.to_dense (Sparse.transpose sp));
  check_int "transpose nnz" (Sparse.nnz sp) (Sparse.nnz (Sparse.transpose sp))

let test_pool_bit_identity () =
  (* A 101-row banded matrix (rows not divisible by any jobs value) —
     every worker count must reproduce the sequential kernel bitwise. *)
  let n = 101 in
  let m =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if abs (i - j) <= 2 then 1. /. float_of_int (i + j + 1) else 0.))
  in
  let sp = Sparse.of_dense m in
  let x = Array.init n (fun i -> sin (float_of_int (i + 1))) in
  let expected = Sparse.mul_vec sp x in
  List.iter
    (fun jobs ->
      let got =
        Sparse.Pool.with_pool ~jobs (fun p -> Sparse.mul_vec_pool p sp x)
      in
      check_vec (Printf.sprintf "jobs=%d" jobs) expected got)
    [ 1; 2; 3; 4; 7 ]

let test_pool_lifecycle () =
  let p = Sparse.Pool.create ~jobs:2 in
  check_int "jobs" 2 (Sparse.Pool.jobs p);
  Sparse.Pool.shutdown p;
  Sparse.Pool.shutdown p;
  (* idempotent *)
  check_raises_invalid "shut-down pool rejected" (fun () ->
      ignore (Sparse.mul_vec_pool p (Sparse.of_dense [| [| 1. |] |]) [| 1. |]));
  check_raises_invalid "jobs < 1" (fun () ->
      ignore (Sparse.Pool.create ~jobs:0))

let weather = [| [| 0.7; 0.3 |]; [| 0.5; 0.5 |] |]

let test_censor_weather () =
  (* pi = (b, a) / (a + b) for [[1-a, a], [b, 1-b]]: (0.625, 0.375). *)
  match Sparse.stationary_censor (Sparse.of_dense weather) with
  | None -> Alcotest.fail "2-state censoring cannot blow its fill budget"
  | Some pi ->
    close "pi(0)" 0.625 pi.(0);
    close "pi(1)" 0.375 pi.(1)

let test_censor_ladder_matches_closed_form () =
  let delta = 600 and alpha = 0.01 in
  let sp = Suffix_chain.build_sparse ~delta ~alpha in
  let closed = Suffix_chain.stationary_closed_form ~delta ~alpha in
  match Sparse.stationary_censor sp with
  | None -> Alcotest.fail "ladder chain must stay within the fill budget"
  | Some pi ->
    check_true "censor vs Eq. 37 below 1e-13"
      (Linalg.max_abs_diff pi closed < 1e-13)

let test_censor_fill_budget () =
  (* The budget bounds the LIVE entry count, so a budget below the
     initial nnz must abort before any elimination happens. *)
  let n = 20 in
  let m =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = 0 then 1. /. float_of_int n
            else if j = i - 1 then 1.
            else 0.))
  in
  match Sparse.stationary_censor ~fill_budget:5 (Sparse.of_dense m) with
  | None -> ()
  | Some _ -> Alcotest.fail "fill_budget:5 must abort the solve"

let test_censor_reducible_rejected () =
  (* State 1 has no flow to lower states. *)
  let sp = Sparse.create ~rows:2 ~cols:2 ~entries:[| [ (0, 1.) ]; [ (1, 1.) ] |] in
  check_raises_invalid "reducible chain rejected" (fun () ->
      ignore (Sparse.stationary_censor sp));
  check_raises_invalid "non-square rejected" (fun () ->
      ignore (Sparse.stationary_censor (Sparse.of_dense awkward)))

let test_power_weather () =
  let pi = Sparse.stationary_power (Sparse.of_dense weather) in
  close "pi(0)" 0.625 pi.(0);
  close "pi(1)" 0.375 pi.(1);
  let one = Sparse.stationary_power (Sparse.of_dense [| [| 1. |] |]) in
  close "singleton" 1. one.(0)

let test_power_nonconvergence_message () =
  (* An asymmetric sticky chain (contraction ~0.97 per step) cannot
     reach 1e-14 in 64 steps: the failure must carry the iteration
     budget, tol, residual and the gap estimate. *)
  let sticky = Sparse.of_dense [| [| 0.99; 0.01 |]; [| 0.02; 0.98 |] |] in
  match Sparse.stationary_power ~max_iter:64 sticky with
  | _ -> Alcotest.fail "expected non-convergence in 64 steps"
  | exception Failure msg ->
    List.iter
      (fun affix ->
        check_true
          (Printf.sprintf "message mentions %s" affix)
          (contains_substring ~affix msg))
      [ "64 iterations"; "tol 1e-14"; "last L1 residual"; "gap estimate" ]

let test_chain_stationary_sparse () =
  let chain =
    Chain.create ~size:2
      ~rows:[| [ (0, 0.7); (1, 0.3) ]; [ (0, 0.5); (1, 0.5) ] |]
      ()
  in
  let pi = Chain.stationary_sparse chain in
  close "pi(0)" 0.625 pi.(0);
  close "pi(1)" 0.375 pi.(1);
  (* Duplicate targets coalesce on the way into CSR. *)
  let dup =
    Chain.create ~size:2
      ~rows:[| [ (0, 0.35); (1, 0.3); (0, 0.35) ]; [ (0, 0.5); (1, 0.5) ] |]
      ()
  in
  check_int "duplicates coalesced" 4 (Sparse.nnz (Chain.to_sparse dup));
  let pi' = Chain.stationary_sparse dup in
  close "coalesced pi(0)" 0.625 pi'.(0)

let test_stationary_auto_crossover () =
  (* At or below the crossover, auto IS the dense LU result, bitwise. *)
  let below = Suffix_chain.build ~delta:255 ~alpha:0.2 in
  check_int "just below crossover" 511 (Chain.size below);
  let dense = Chain.stationary_linear_solve below in
  let auto = Chain.stationary_auto below in
  Array.iteri
    (fun i v ->
      if v <> dense.(i) then
        Alcotest.failf "auto differs from dense LU at state %d below crossover"
          i)
    auto;
  (* Above it, the sparse path takes over and must still match theory. *)
  let above = Suffix_chain.build ~delta:300 ~alpha:0.05 in
  check_true "above crossover" (Chain.size above > Chain.sparse_crossover);
  let closed = Suffix_chain.stationary_closed_form ~delta:300 ~alpha:0.05 in
  check_true "sparse path matches Eq. 37"
    (Linalg.max_abs_diff (Chain.stationary_auto above) closed < 1e-12)

let test_telemetry_instrumentation () =
  let registry = Nakamoto_telemetry.Registry.create ~clock:(fun () -> 0.) () in
  let sp = Suffix_chain.build_sparse ~delta:100 ~alpha:0.05 in
  (match Sparse.stationary_censor ~telemetry:registry sp with
  | Some _ -> ()
  | None -> Alcotest.fail "censor must solve the ladder");
  ignore (Sparse.stationary_power ~telemetry:registry sp);
  let snap = Nakamoto_telemetry.Registry.snapshot registry in
  let module S = Nakamoto_telemetry.Registry.Snapshot in
  (match
     S.find snap "markov_stationary_seconds"
       ~labels:[ ("solver", "censor") ]
   with
  | Some (S.Span _) -> ()
  | _ -> Alcotest.fail "censor span missing");
  (match
     S.find snap "markov_stationary_seconds" ~labels:[ ("solver", "power") ]
   with
  | Some (S.Span _) -> ()
  | _ -> Alcotest.fail "power span missing");
  match S.find snap "markov_spmv_states_total" with
  | Some (S.Counter states) ->
    check_true "spmv counter counts states" (states > 0)
  | _ -> Alcotest.fail "spmv counter missing"

let suite =
  [
    case "dense -> CSR -> dense round-trip" test_roundtrip;
    case "construction coalesces and sorts" test_create_coalesces;
    case "construction validates" test_create_validates;
    case "mat-vec matches dense on edge shapes" test_mat_vec_edge_shapes;
    case "transpose" test_transpose;
    case "pooled mat-vec is bit-identical across jobs" test_pool_bit_identity;
    case "pool lifecycle" test_pool_lifecycle;
    case "censoring solves the weather chain" test_censor_weather;
    case "censoring matches Eq. 37 on the delta=600 ladder"
      test_censor_ladder_matches_closed_form;
    case "censoring respects its fill budget" test_censor_fill_budget;
    case "censoring rejects reducible and non-square input"
      test_censor_reducible_rejected;
    case "power iteration solves the weather chain" test_power_weather;
    case "power iteration failure message is actionable"
      test_power_nonconvergence_message;
    case "Chain.stationary_sparse and duplicate coalescing"
      test_chain_stationary_sparse;
    case "stationary_auto: dense below the crossover, sparse above"
      test_stationary_auto_crossover;
    case "telemetry spans and the spmv counter" test_telemetry_instrumentation;
  ]
