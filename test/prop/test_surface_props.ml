(* The surface differential tier: a certified table must never silently
   disagree with the exact solver.  Either a query is served cached —
   and then the zone, the confirmation depth, and the margin enclosure
   are all checked against a fresh exact assessment — or it carries an
   explicit fallback tag (and the fallback path ran the exact solver
   itself, so agreement is structural).

   The shared table sits on the confirmation-depth plateau around a
   rate ratio of 0.02-0.04 (see test_surface.ml); the point generator
   mixes in-box points with the full paper-scale parameter distribution
   so both the cached path and every fallback reason get exercised. *)

open Prop_helpers
module P = Nakamoto_proptest
module Gen = P.Gen
module Arbitrary = P.Arbitrary
module Grid = Nakamoto_surface.Grid
module Cert = Nakamoto_surface.Cert
module Table = Nakamoto_surface.Table
module Params = Nakamoto_core.Params
module Assessment = Nakamoto_core.Assessment
module Confirmation = Nakamoto_core.Confirmation
module Bounds = Nakamoto_core.Bounds
module I = Nakamoto_numerics.Interval

let box_p = (1.1e-4, 1.4e-4)
let box_n = (100., 140.)
let box_delta = (28., 36.)
let box_nu = (0.012, 0.016)

let table =
  lazy
    (Table.build
       (Grid.create
          ~p:(Grid.axis ~lo:(fst box_p) ~hi:(snd box_p) ~count:4 ~scale:Grid.Log)
          ~n:(Grid.axis ~lo:(fst box_n) ~hi:(snd box_n) ~count:4 ~scale:Grid.Log)
          ~delta:
            (Grid.axis ~lo:(fst box_delta) ~hi:(snd box_delta) ~count:4
               ~scale:Grid.Log)
          ~nu:
            (Grid.axis ~lo:(fst box_nu) ~hi:(snd box_nu) ~count:4
               ~scale:Grid.Linear)))

let in_box_point rng =
  let draw (lo, hi) = Gen.float_range ~lo ~hi rng in
  Params.create ~p:(draw box_p) ~n:(draw box_n) ~delta:(draw box_delta)
    ~nu:(draw box_nu)

(* The exact depth search costs O(depth^2) and the depth diverges as the
   rate ratio approaches 1 from below — single points near the frontier
   take seconds.  Screen the global distribution out of the ratio band
   (0.8, 1): below it depths stay double-digit, at or above 1 the solver
   short-circuits to outside-consistency.  The screen only moves compute
   cost, not coverage — the zone and outside_box logic under test do not
   depend on the depth. *)
let cheap_rate_ratio (p : Params.t) =
  let mu = 1. -. p.Params.nu in
  let log_abar = mu *. p.Params.n *. log1p (-.p.Params.p) in
  let log_alpha1 =
    log (p.Params.p *. mu *. p.Params.n)
    +. ((mu *. p.Params.n) -. 1.) *. log1p (-.p.Params.p)
  in
  let honest = exp ((2. *. p.Params.delta *. log_abar) +. log_alpha1) in
  p.Params.p *. p.Params.nu *. p.Params.n /. honest

let global_point rng =
  let rec draw tries =
    let params = Arbitrary.gen P.Domain_gen.params rng in
    let r = cheap_rate_ratio params in
    if tries = 0 || r <= 0.8 || r >= 1. then params else draw (tries - 1)
  in
  draw 20

(* 60% in-box (cached path and near-frontier fallbacks), 40% paper-scale
   (outside_box fallbacks at every scale). *)
let point_arb =
  Arbitrary.make
    ~print:(fun p -> Format.asprintf "%a" Params.pp p)
    (Gen.frequency [ (3, in_box_point); (2, global_point) ])

let exact_confirmations exact =
  Option.map
    (fun (c : Confirmation.assessment) -> c.Confirmation.confirmations)
    exact.Assessment.confirmations

let fallback_labels = [ "outside_box"; "zone_boundary"; "conf_boundary" ]

let differential_prop (params : Params.t) =
  let t = Lazy.force table in
  let v = Table.assess_cached t params in
  if v.Assessment.v_cached then begin
    let exact = Assessment.assess params in
    if v.Assessment.v_fallback <> None then
      failwith "cached verdict carries a fallback tag";
    if v.Assessment.v_zone <> exact.Assessment.zone then
      failwith
        (Printf.sprintf "cached zone %s but exact zone %s"
           (Assessment.zone_to_string v.Assessment.v_zone)
           (Assessment.zone_to_string exact.Assessment.zone));
    (match (v.Assessment.v_confirmations, exact_confirmations exact) with
    | Some a, Some b when a = b -> ()
    | None, None -> ()
    | a, b ->
      failwith
        (Printf.sprintf "cached depth %s but exact depth %s"
           (match a with Some z -> string_of_int z | None -> "none")
           (match b with Some z -> string_of_int z | None -> "none")));
    if
      not
        (v.Assessment.v_margin_lo <= exact.Assessment.neat_margin
        && exact.Assessment.neat_margin <= v.Assessment.v_margin_hi)
    then
      failwith
        (Printf.sprintf "exact margin %.17g outside certified [%.17g, %.17g]"
           exact.Assessment.neat_margin v.Assessment.v_margin_lo
           v.Assessment.v_margin_hi);
    if
      not
        (v.Assessment.v_margin_lo <= v.Assessment.v_margin
        && v.Assessment.v_margin <= v.Assessment.v_margin_hi)
    then failwith "interpolated margin outside its own enclosure"
  end
  else begin
    (* The fallback path already ran the exact solver — re-running it
       here would only double the suite's cost.  What must hold is the
       explicit tag and a degenerate (point) enclosure. *)
    (match v.Assessment.v_fallback with
    | Some label when List.mem label fallback_labels -> ()
    | Some label -> failwith (Printf.sprintf "unknown fallback tag %S" label)
    | None -> failwith "uncached verdict with no fallback tag");
    if
      not
        (v.Assessment.v_margin_lo = v.Assessment.v_margin
        && v.Assessment.v_margin = v.Assessment.v_margin_hi)
    then failwith "fallback verdict enclosure is not degenerate"
  end

(* Enclosure soundness, cell by cell: the exact floats at any point of a
   cell must lie inside that cell's stored enclosures. *)
let cell_point_arb =
  let gen rng =
    let t = Lazy.force table in
    let g = Table.grid t in
    let id = Gen.int_range ~lo:0 ~hi:(Grid.cell_count g - 1) rng in
    let idx = Grid.cell_of_id g id in
    let axes = Grid.axes g in
    let draw d =
      let lo = Grid.vertex axes.(d) idx.(d)
      and hi = Grid.vertex axes.(d) (idx.(d) + 1) in
      Gen.float_range ~lo ~hi rng
    in
    (id, Params.create ~p:(draw 0) ~n:(draw 1) ~delta:(draw 2) ~nu:(draw 3))
  in
  Arbitrary.make
    ~print:(fun (id, p) -> Format.asprintf "cell %d, %a" id Params.pp p)
    gen

let enclosure_prop (id, (params : Params.t)) =
  let t = Lazy.force table in
  let cell = Table.cell t id in
  let nu = params.Params.nu in
  let contains what iv x =
    if not (I.contains iv x) then
      failwith
        (Printf.sprintf "%s %.17g outside enclosure [%.17g, %.17g]" what x
           (I.lo iv) (I.hi iv))
  in
  let neat = Bounds.neat_c_min ~nu in
  contains "margin" cell.Cert.margin (Params.c params -. neat);
  contains "neat threshold" cell.Cert.neat neat;
  contains "attack threshold" cell.Cert.attack
    (1. /. ((1. /. nu) -. (1. /. (1. -. nu))));
  match Confirmation.assess_checked params with
  | Ok a -> contains "rate ratio" cell.Cert.ratio a.Confirmation.rate_ratio
  | Error (Confirmation.Outside_consistency { rate_ratio })
  | Error (Confirmation.Depth_limited { rate_ratio; _ }) ->
    contains "rate ratio" cell.Cert.ratio rate_ratio
  | Error Confirmation.No_adversary -> ()

(* Monotone slices: c = 1/(p n Delta) falls as p grows, the neat
   threshold is constant in p, so the exact margin falls — and so must
   the interpolated estimate, which is a per-cell convex combination of
   exact vertex margins in monotone weights (continuous across faces
   through the shared vertices). *)
let slice_arb =
  let gen rng =
    let draw (lo, hi) = Gen.float_range ~lo ~hi rng in
    let p1 = draw box_p and p2 = draw box_p in
    ( (Float.min p1 p2, Float.max p1 p2),
      (draw box_n, draw box_delta, draw box_nu) )
  in
  Arbitrary.make
    ~print:(fun ((p1, p2), (n, delta, nu)) ->
      Printf.sprintf "p %.8g -> %.8g at n=%.6g delta=%.6g nu=%.6g" p1 p2 n
        delta nu)
    gen

let monotone_prop ((p1, p2), (n, delta, nu)) =
  let t = Lazy.force table in
  match
    (Table.lookup t ~p:p1 ~n ~delta ~nu, Table.lookup t ~p:p2 ~n ~delta ~nu)
  with
  | Ok a, Ok b ->
    if b.Table.h_margin > a.Table.h_margin +. 1e-12 then
      failwith
        (Printf.sprintf
           "margin estimate rose along p: %.17g at p=%.8g, %.17g at p=%.8g"
           a.Table.h_margin p1 b.Table.h_margin p2)
  | _ -> ()

(* Regeneration determinism on random boxes: the bytes are a pure
   function of the build inputs — across runs and across ~jobs. *)
let grid_arb =
  let axis_gen ~lo_lo ~lo_hi ~spread_hi ~log_ok rng =
    let lo = Gen.log_float_range ~lo:lo_lo ~hi:lo_hi rng in
    let hi = lo *. Gen.float_range ~lo:1.05 ~hi:spread_hi rng in
    let count = Gen.int_range ~lo:2 ~hi:3 rng in
    let scale =
      if log_ok && Gen.bool rng then Grid.Log else Grid.Linear
    in
    Grid.axis ~lo ~hi ~count ~scale
  in
  let gen rng =
    Grid.create
      ~p:(axis_gen ~lo_lo:1e-5 ~lo_hi:1e-3 ~spread_hi:2. ~log_ok:true rng)
      ~n:(axis_gen ~lo_lo:10. ~lo_hi:1e4 ~spread_hi:2. ~log_ok:true rng)
      ~delta:(axis_gen ~lo_lo:1. ~lo_hi:1e3 ~spread_hi:2. ~log_ok:true rng)
      ~nu:(axis_gen ~lo_lo:0.01 ~lo_hi:0.3 ~spread_hi:1.4 ~log_ok:false rng)
  in
  Arbitrary.make ~print:(fun g -> Table.describe (Table.build g)) gen

let determinism_prop g =
  let bytes = Table.to_string (Table.build ~jobs:1 g) in
  if Table.to_string (Table.build ~jobs:2 g) <> bytes then
    failwith "parallel rebuild changed the bytes";
  match Table.of_string bytes with
  | Error m -> failwith ("round-trip load failed: " ^ m)
  | Ok back ->
    if Table.to_string back <> bytes then
      failwith "decode/encode is not the identity"

let suite =
  [
    prop ~count:1000 "cached verdict equals exact or tags a fallback"
      point_arb differential_prop;
    prop ~count:300 "cell enclosures contain the exact floats" cell_point_arb
      enclosure_prop;
    prop ~count:200 "margin estimate falls along p" slice_arb monotone_prop;
    prop ~count:5 "rebuilds are byte-identical across jobs" grid_arb
      determinism_prop;
  ]
