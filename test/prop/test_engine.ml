(* Self-tests of the property engine: deterministic replay, shrinking
   quality, and the statistical assertion kit's calibration. *)

open Prop_helpers
module P = Nakamoto_proptest
module Rng = Nakamoto_prob.Rng
module Stats = Nakamoto_prob.Stats

let test_generation_deterministic_by_path () =
  let gen =
    P.Gen.triple
      (P.Gen.int_range ~lo:0 ~hi:1_000_000)
      (P.Gen.float_range ~lo:(-4.) ~hi:9.)
      (P.Gen.list ~len:(P.Gen.int_range ~lo:0 ~hi:20) P.Gen.bool)
  in
  let draw path = gen (Rng.of_path ~seed:99L path) in
  check_true "same path, same value" (draw [ 0; 7 ] = draw [ 0; 7 ]);
  check_true "different path, different value" (draw [ 0; 7 ] <> draw [ 0; 8 ])

let test_generator_ranges () =
  let rng = Rng.create ~seed:5L in
  for _ = 1 to 2_000 do
    let x = P.Gen.int_range ~lo:(-3) ~hi:17 rng in
    check_true "int in range" (x >= -3 && x <= 17);
    let f = P.Gen.float_range ~lo:2.5 ~hi:2.75 rng in
    check_true "float in range" (f >= 2.5 && f < 2.75);
    let lf = P.Gen.log_float_range ~lo:0.01 ~hi:100. rng in
    check_true "log float in range" (lf >= 0.01 && lf <= 100.)
  done;
  (* A log-uniform draw lands below the geometric midpoint half the
     time; a uniform one over [0.01, 100] almost never does. *)
  let below = ref 0 in
  for _ = 1 to 1_000 do
    if P.Gen.log_float_range ~lo:0.01 ~hi:100. rng < 1. then incr below
  done;
  check_true
    (Printf.sprintf "log-uniform median near geometric mean (%d/1000)" !below)
    (!below > 400 && !below < 600)

let test_oneof_and_frequency_cover () =
  let rng = Rng.create ~seed:6L in
  let seen = Array.make 3 false in
  for _ = 1 to 200 do
    seen.(P.Gen.oneof_value [ 0; 1; 2 ] rng) <- true
  done;
  check_true "all alternatives generated" (Array.for_all Fun.id seen);
  (* Zero-weight alternatives never fire. *)
  for _ = 1 to 200 do
    check_int "zero weight never drawn" 1
      (P.Gen.frequency [ (0, P.Gen.return 0); (5, P.Gen.return 1) ] rng)
  done

let run_expecting_failure ~name ?count arb body =
  match P.Property.check ?count ~name arb body with
  | () -> Alcotest.failf "%s: expected the property to fail" name
  | exception P.Property.Failed f -> f

let test_failure_reports_seed_and_path () =
  let f =
    run_expecting_failure ~name:"fails at 100+"
      (P.Arbitrary.int_range ~lo:0 ~hi:10_000 ())
      (fun x -> if x >= 100 then failwith "too big")
  in
  check_true "path is the failing trial index" (List.length f.path = 1);
  check_true "message mentions replay"
    (let msg = P.Property.failure_message f in
     let has ~affix s =
       let n = String.length affix and m = String.length s in
       let rec scan i = i + n <= m && (String.sub s i n = affix || scan (i + 1)) in
       scan 0
     in
     has ~affix:"PROPTEST_SEED=42" msg && has ~affix:"PROPTEST_REPLAY=" msg);
  (* Replaying the reported (seed, path) regenerates a failing input. *)
  let rng =
    Rng.of_path
      ~seed:(P.Property.property_seed ~seed:f.seed ~name:"fails at 100+")
      f.path
  in
  let replayed = P.Gen.int_range ~lo:0 ~hi:10_000 rng in
  check_true "replayed input fails too" (replayed >= 100);
  check_true "replayed input is the reported one"
    (string_of_int replayed = f.original_input)

let test_shrinking_reaches_boundary () =
  let f =
    run_expecting_failure ~name:"shrinks to 100"
      (P.Arbitrary.int_range ~lo:0 ~hi:10_000 ())
      (fun x -> if x >= 100 then failwith "too big")
  in
  Alcotest.(check string) "greedy shrink hits the boundary" "100" f.shrunk_input

let test_shrinking_lists () =
  let f =
    run_expecting_failure ~name:"shrinks to 3 elements"
      (P.Arbitrary.list ~max_len:30 (P.Arbitrary.int_range ~lo:0 ~hi:9 ()))
      (fun l -> if List.length l >= 3 then failwith "too long")
  in
  let element_count s =
    (* "[a; b; c]" has length - 2 chars of payload, elements = separators + 1 *)
    if s = "[]" then 0
    else
      1 + String.fold_left (fun acc ch -> if ch = ';' then acc + 1 else acc) 0 s
  in
  check_int "minimal failing length" 3 (element_count f.shrunk_input);
  check_true "elements shrunk toward zero"
    (String.for_all (fun ch -> ch <> '9') f.shrunk_input
    || f.shrink_steps > 0)

let test_replay_env_runs_single_trial () =
  let f0 =
    run_expecting_failure ~name:"env replay target"
      (P.Arbitrary.int_range ~lo:0 ~hi:10_000 ())
      (fun x -> if x >= 100 then failwith "too big")
  in
  Unix.putenv "PROPTEST_REPLAY"
    (String.concat "," (List.map string_of_int f0.path));
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PROPTEST_REPLAY" "")
    (fun () ->
      let f =
        run_expecting_failure ~name:"env replay target"
          (P.Arbitrary.int_range ~lo:0 ~hi:10_000 ())
          (fun x -> if x >= 100 then failwith "too big")
      in
      check_true "replay ran exactly one trial" (f.trials_run = 1);
      Alcotest.(check string)
        "replay regenerates the original input" f0.original_input
        f.original_input)

let test_stat_kit_accepts_the_null () =
  (* Counts drawn from the very distribution they are tested against. *)
  let rng = Rng.create ~seed:11L in
  let d = Nakamoto_prob.Binomial.create ~trials:40 ~p:0.2 in
  let observed = Array.make 41 0 in
  let draws = 4_000 in
  for _ = 1 to draws do
    let k = Nakamoto_prob.Binomial.sample rng d in
    observed.(k) <- observed.(k) + 1
  done;
  let expected =
    Array.init 41 (fun k ->
        float_of_int draws *. Nakamoto_prob.Binomial.pmf d k)
  in
  P.Stat.assert_family ~family:"null calibration"
    [
      P.Stat.chi_square_gof ~label:"sampler gof" ~observed ~expected;
      P.Stat.binomial ~label:"fair coin" ~hits:1_007 ~trials:2_000 ~p:0.5;
    ]

let test_stat_kit_rejects_the_biased () =
  let biased () =
    P.Stat.assert_family ~family:"biased"
      [ P.Stat.binomial ~label:"loaded coin" ~hits:1_500 ~trials:2_000 ~p:0.5 ]
  in
  (match biased () with
  | () -> Alcotest.fail "expected rejection of a 75% 'fair' coin"
  | exception P.Stat.Rejected _ -> ());
  let shifted =
    P.Stat.ks ~label:"shifted"
      (Array.init 500 (fun i -> float_of_int i /. 500.))
      (Array.init 500 (fun i -> 0.35 +. (float_of_int i /. 500.)))
  in
  check_true "KS detects a 0.35 shift" (shifted.p_value < 1e-10);
  let same =
    P.Stat.ks ~label:"same"
      (Array.init 500 (fun i -> float_of_int i /. 500.))
      (Array.init 500 (fun i -> float_of_int i /. 500.))
  in
  check_true "KS accepts identical samples" (same.p_value > 0.99)

let test_bonferroni_threshold () =
  close "bonferroni divides" 1e-8 (Stats.bonferroni ~family_size:100 ~alpha:1e-6);
  (match Stats.bonferroni ~family_size:0 ~alpha:0.1 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let suite =
  [
    case "generation deterministic by (seed, path)"
      test_generation_deterministic_by_path;
    case "generator ranges" test_generator_ranges;
    case "oneof and frequency cover" test_oneof_and_frequency_cover;
    case "failure reports (seed, path) and replays"
      test_failure_reports_seed_and_path;
    case "greedy shrinking reaches the boundary" test_shrinking_reaches_boundary;
    case "list shrinking minimizes" test_shrinking_lists;
    case "PROPTEST_REPLAY runs a single trial" test_replay_env_runs_single_trial;
    case "stat kit accepts the null" test_stat_kit_accepts_the_null;
    case "stat kit rejects the biased" test_stat_kit_rejects_the_biased;
    case "bonferroni threshold" test_bonferroni_threshold;
  ]
