(* Property-test tier entry point.  Failures print a (seed, path) pair;
   see DESIGN.md §8 for the replay workflow. *)

let () =
  Alcotest.run "nakamoto_proptest"
    [
      ("engine", Test_engine.suite);
      ("props", Test_props.suite);
      ("telemetry", Test_telemetry.suite);
      ("markov", Test_markov_props.suite);
      ("oracle", Test_oracle.suite);
      ("wire", Test_wire_props.suite);
      ("surface", Test_surface_props.suite);
    ]
