(* The differential oracle tier: generated scenarios through every
   executor lane (Exact, Aggregate, Skip, state process), four-way
   stationary cross-checks, the sampled-gap law behind the Skip
   executor, and the Δ-ring versus per-recipient-queue network
   equivalence (the cross-lane leg of the adversarial strategies that
   cannot share a mining mode). *)

open Prop_helpers
module P = Nakamoto_proptest
module Gen = P.Gen
module Arbitrary = P.Arbitrary
module Rng = Nakamoto_prob.Rng
module Block = Nakamoto_chain.Block
module Network = Nakamoto_net.Network
module Scenarios = Nakamoto_sim.Scenarios
module Config = Nakamoto_sim.Config
module Execution = Nakamoto_sim.Execution
module Adversary = Nakamoto_sim.Adversary

(* --- the oracle proper --- *)

let prop_differential_oracle spec = P.Oracle.check spec

let test_suffix_stationary_sweep () =
  List.iter
    (fun delta ->
      List.iter
        (fun alpha -> P.Oracle.suffix_stationary ~delta ~alpha)
        [ 0.07; 0.3; 0.6; 0.9 ])
    [ 1; 2; 3; 4; 5; 6 ]

let prop_conv_stationary (delta, params) =
  P.Oracle.conv_stationary ~delta params

(* The large-Δ four-way through the sparse substrate: Eq. 37's closed
   form vs GTH censoring vs sequential vs domain-pooled sparse power
   iteration, at Δ two orders of magnitude past what the dense solvers
   reach.  Alphas shrink with Δ so abar^Δ stays ~e^-4 — large enough
   that no leg needs subnormal arithmetic to agree.  The soak tier adds
   the Δ ∈ {500, 2000} legs of the acceptance bar; Δ = 64 guards the
   fast tier. *)
let test_suffix_stationary_sparse () =
  let legs =
    sized
      ~fast:[ (64, 0.05) ]
      ~soak:[ (64, 0.05); (500, 0.008); (2000, 0.002) ]
  in
  List.iter
    (fun (delta, alpha) ->
      P.Oracle.suffix_stationary_sparse ~jobs:3 ~delta ~alpha ())
    legs

let prop_conv_stationary_sparse (delta, params) =
  P.Oracle.conv_stationary_sparse ~jobs:2 ~delta params

(* --- Δ-ring vs queue-lane network equivalence --- *)

type event =
  | Broadcast of { sender : int }  (** policy-delayed honest broadcast *)
  | Release of { sender : int; delay : int }  (** [broadcast_all] *)
  | Direct of { recipient : int; delay : int }  (** adversarial side channel *)

type schedule = {
  delta : int;
  players : int;
  policy : Network.delay_policy;
  events : (int * event) list;  (** (send round, event) *)
}

let policy_to_string = function
  | Network.Immediate -> "Immediate"
  | Network.Fixed d -> Printf.sprintf "Fixed %d" d
  | Network.Maximal -> "Maximal"
  | Network.Uniform_random -> "Uniform_random"
  | Network.Per_recipient _ -> "Per_recipient"

let event_to_string (round, ev) =
  match ev with
  | Broadcast { sender } -> Printf.sprintf "%d:bcast(%d)" round sender
  | Release { sender; delay } ->
    Printf.sprintf "%d:release(%d,+%d)" round sender delay
  | Direct { recipient; delay } ->
    Printf.sprintf "%d:direct(->%d,+%d)" round recipient delay

let schedule_to_string s =
  Printf.sprintf "{delta=%d; players=%d; policy=%s; [%s]}" s.delta s.players
    (policy_to_string s.policy)
    (String.concat "; " (List.map event_to_string s.events))

(* The generated traffic covers every shape the simulator's strategies
   produce: policy-routed honest broadcasts (selfish mining's race
   releases ride these), release-to-everyone at explicit delays (private
   chain, selfish mining), and per-recipient direct sends at divergent
   delays (the balance attack's split views). *)
let schedule_arb =
  let gen rng =
    let delta = Gen.int_range ~lo:1 ~hi:5 rng in
    let players = Gen.int_range ~lo:2 ~hi:6 rng in
    let policy =
      Gen.oneof
        [
          Gen.return Network.Immediate;
          Gen.map (fun d -> Network.Fixed d) (Gen.int_range ~lo:1 ~hi:6);
          Gen.return Network.Maximal;
        ]
        rng
    in
    let event rng =
      let round = Gen.int_range ~lo:1 ~hi:25 rng in
      let ev =
        Gen.frequency
          [
            ( 3,
              Gen.map
                (fun s -> Broadcast { sender = s })
                (Gen.int_range ~lo:0 ~hi:(players - 1)) );
            ( 2,
              Gen.map
                (fun (s, d) -> Release { sender = s; delay = d })
                (Gen.pair
                   (Gen.int_range ~lo:(-1) ~hi:(players - 1))
                   (Gen.int_range ~lo:1 ~hi:7)) );
            ( 2,
              Gen.map
                (fun (r, d) -> Direct { recipient = r; delay = d })
                (Gen.pair
                   (Gen.int_range ~lo:0 ~hi:(players - 1))
                   (Gen.int_range ~lo:1 ~hi:7)) );
          ]
          rng
      in
      (round, ev)
    in
    {
      delta;
      players;
      policy;
      events = Gen.list ~len:(Gen.int_range ~lo:0 ~hi:40) event rng;
    }
  in
  let shrink s =
    Seq.map
      (fun events -> { s with events })
      (P.Shrink.list P.Shrink.nothing s.events)
  in
  Arbitrary.make ~print:schedule_to_string ~shrink gen

(* One message per event, with a payload unique to the event so delivery
   multisets compare by value. *)
let message_of_event idx (round, ev) =
  let sender =
    match ev with
    | Broadcast { sender } -> sender
    | Release { sender; _ } -> sender
    | Direct _ -> -1
  in
  let miner_class = if sender < 0 then Block.Adversarial else Block.Honest in
  let block =
    Block.mine ~parent:Block.genesis ~miner:(max 0 sender) ~miner_class ~round
      ~nonce:idx ~payload:(string_of_int idx)
  in
  { Network.sender; sent_round = round; blocks = [ block ] }

let apply_event net idx (round, ev) =
  let msg = message_of_event idx (round, ev) in
  match ev with
  | Broadcast _ -> Network.broadcast net msg
  | Release { delay; _ } -> Network.broadcast_all net ~delay msg
  | Direct { recipient; delay } -> Network.send_direct net ~recipient ~delay msg

let delivery_key (m : Network.message) =
  ( m.Network.sender,
    m.Network.sent_round,
    match m.Network.blocks with b :: _ -> b.Block.payload | [] -> "" )

let keys msgs = List.sort compare (List.map delivery_key msgs)

let prop_ring_matches_queues s =
  let mk () =
    Network.create ~delta:s.delta ~players:s.players ~policy:s.policy
      ~rng:(Rng.create ~seed:1L)
  in
  let queue_net = mk () in
  let ring_net = mk () in
  Network.enable_ring ring_net;
  let horizon =
    List.fold_left (fun acc (r, _) -> max acc r) 0 s.events + s.delta + 2
  in
  for round = 1 to horizon do
    (* Send, then drain — the executor's per-round cadence, and the only
       one the ring supports: its delta + 1 buckets cover exactly the
       due rounds a message sent *now* can land in. *)
    List.iteri
      (fun i ((r, _) as ev) ->
        if r = round then begin
          apply_event queue_net i ev;
          apply_event ring_net i ev
        end)
      s.events;
    if Network.messages_sent queue_net <> Network.messages_sent ring_net then
      failwith
        (Printf.sprintf "messages_sent after round %d: queue %d, ring %d"
           round
           (Network.messages_sent queue_net)
           (Network.messages_sent ring_net));
    (* The ring is drained once per round; the consumer fans each shared
       message out to every player except its sender — exactly what the
       aggregate executor does with [deliver_shared]. *)
    let shared = Network.deliver_shared ring_net ~round in
    for recipient = 0 to s.players - 1 do
      let expected = keys (Network.deliver queue_net ~recipient ~round) in
      let direct = Network.deliver ring_net ~recipient ~round in
      let fanned =
        List.filter (fun m -> m.Network.sender <> recipient) shared
      in
      let actual = keys (direct @ fanned) in
      if expected <> actual then
        failwith
          (Printf.sprintf
             "round %d recipient %d: queue lane delivered %d, ring lane %d"
             round recipient (List.length expected) (List.length actual))
    done
  done;
  if Network.pending queue_net <> 0 || Network.pending ring_net <> 0 then
    failwith "undelivered messages after the horizon"

(* --- the Skip executor's sampled gap law --- *)

(* Mining is iid per round: a round bears a block (honest or
   adversarial) with probability 1 - q0, q0 = (1-p)^n, independently of
   every other round — so the gaps between consecutive block-bearing
   rounds are Geometric(1 - q0) on {1, 2, ...}.  The Skip executor
   *samples* those gaps (inversion on Geometric, then the conditional
   success law), so this pins the sampler itself: collect the realized
   inter-event gaps of a Skip run and chi-square them against the
   geometric masses at the family alpha. *)
let test_skip_gap_law () =
  let spec =
    {
      Scenarios.default_spec with
      Scenarios.n = 48;
      nu = 0.25;
      c = 4.;
      delta = 2;
      rounds = sized ~fast:30_000 ~soak:120_000;
      seed = 20260807L;
      strategy = Adversary.Idle;
      mining_mode = Config.Skip;
    }
  in
  let cfg = Scenarios.of_spec spec in
  let last_event = ref 0 in
  let gaps = ref [] in
  let (_ : Execution.result) =
    Execution.run
      ~on_round:(fun (rr : Execution.round_report) ->
        (* Skip also simulates delivery-only rounds; mining events are
           exactly the rounds where some query succeeded. *)
        if rr.honest_mined + rr.adversary_successes > 0 then begin
          gaps := (rr.round_number - !last_event) :: !gaps;
          last_event := rr.round_number
        end)
      cfg
  in
  let gaps = !gaps in
  let total = List.length gaps in
  let q0 = (1. -. cfg.Config.p) ** float_of_int cfg.Config.n in
  (* Observed gap counts for k = 1..bins, last bin = everything >= bins;
     expected carries the same total, so the GOF preconditions hold and
     Stats' automatic pooling keeps every compared cell >= 5 expected. *)
  let bins = 36 in
  let observed = Array.make bins 0 in
  List.iter
    (fun g -> observed.(min (bins - 1) (g - 1)) <- observed.(min (bins - 1) (g - 1)) + 1)
    gaps;
  let expected =
    Array.init bins (fun i ->
        let k = i + 1 in
        if k < bins then
          float_of_int total *. (q0 ** float_of_int (k - 1)) *. (1. -. q0)
        else float_of_int total *. (q0 ** float_of_int (bins - 1)))
  in
  P.Stat.assert_family ~family:"skip executor gap law"
    [
      P.Stat.chi_square_gof
        ~label:"inter-event gaps vs Geometric(1 - (1-p)^n)" ~observed
        ~expected;
    ]

(* --- end-to-end cross-lane distribution equality per strategy --- *)

(* Selfish mining and the private-chain attack run under all three full
   executors (their delay policies are recipient-independent); [runs]
   paired executions per lane must agree on every pooled statistic.  The
   balance attack is queue-lane-only by construction — its ring-lane leg
   is the schedule property above, which exercises exactly the traffic
   shapes it emits (split [Direct] views plus [Release] catch-ups). *)
let cross_lane_strategy ~label ~strategy ~tie_break () =
  let base =
    {
      Scenarios.default_spec with
      Scenarios.n = 36;
      nu = 0.3;
      c = 2.0;
      delta = 3;
      rounds = 500;
      strategy;
      delay = None;
      tie_break;
      mining_mode = Config.Exact;
    }
  in
  let runs = sized ~fast:30 ~soak:100 in
  let lane mode tag =
    Array.init runs (fun i ->
        let seed = Rng.seed_of_path ~seed:2026L [ tag; i ] in
        Execution.run
          (Scenarios.of_spec { base with Scenarios.seed; mining_mode = mode }))
  in
  let exact = lane Config.Exact 1 in
  let aggregate = lane Config.Aggregate 2 in
  let skip = lane Config.Skip 3 in
  let sum f lane = Array.fold_left (fun acc r -> acc + f r) 0 lane in
  let cfg = Scenarios.of_spec base in
  let honest = Config.honest_count cfg in
  let round_trials = runs * base.Scenarios.rounds in
  let heights lane =
    Array.map
      (fun (r : Execution.result) ->
        Array.fold_left
          (fun acc (b : Block.t) -> max acc b.Block.height)
          0 r.Execution.final_tips
        |> float_of_int)
      lane
  in
  let lane_checks (vs_name, vs) =
    let prop_check name f trials =
      P.Stat.proportions
        ~label:(Printf.sprintf "%s: %s (exact vs %s)" label name vs_name)
        ~hits_a:(sum f exact) ~trials_a:trials ~hits_b:(sum f vs)
        ~trials_b:trials
    in
    [
      prop_check "H rounds" (fun r -> r.Execution.h_rounds) round_trials;
      prop_check "H1 rounds" (fun r -> r.Execution.h1_rounds) round_trials;
      prop_check "convergence opportunities"
        (fun r -> r.Execution.convergence_opportunities)
        round_trials;
      prop_check "honest blocks"
        (fun r -> r.Execution.honest_blocks)
        (round_trials * honest);
      P.Stat.ks
        ~label:(Printf.sprintf "%s: final heights (exact vs %s)" label vs_name)
        (heights exact) (heights vs);
    ]
  in
  P.Stat.assert_family ~family:(label ^ " cross-lane")
    (List.concat_map lane_checks
       [ ("aggregate", aggregate); ("skip", skip) ])

let suite =
  [
    prop "differential oracle across the four executor lanes" ~count:50
      P.Domain_gen.oracle_spec prop_differential_oracle;
    case "skip executor: sampled inter-event gaps are Geometric(1 - (1-p)^n)"
      test_skip_gap_law;
    case "suffix chain stationary: closed form vs solve vs power iteration"
      test_suffix_stationary_sweep;
    prop "concatenated chain stationary: four derivations agree" ~count:15
      (P.Domain_gen.explicit_chain_point ~delta_max:3)
      prop_conv_stationary;
    case "suffix chain stationary at large delta: sparse four-way"
      test_suffix_stationary_sparse;
    prop "concatenated chain stationary: sparse path agrees with Eqs. 40/44"
      ~count:10
      (P.Domain_gen.explicit_chain_point ~delta_max:3)
      prop_conv_stationary_sparse;
    prop "Δ-ring lane delivers the same multisets as per-recipient queues"
      ~count:200 schedule_arb prop_ring_matches_queues;
    case "selfish mining: Exact, Aggregate and Skip lanes agree"
      (cross_lane_strategy ~label:"selfish mining"
         ~strategy:Adversary.Selfish_mining
         ~tie_break:Nakamoto_chain.Block_tree.Prefer_honest);
    case "private-chain attack: Exact, Aggregate and Skip lanes agree"
      (cross_lane_strategy ~label:"private chain"
         ~strategy:(Adversary.Private_chain { reorg_target = 3 })
         ~tie_break:Nakamoto_chain.Block_tree.First_seen);
  ]
