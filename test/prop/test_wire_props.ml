(* Generative wire-protocol properties: the message codec must be the
   identity under decode-after-encode for arbitrary messages (including
   NaN floats, empty lists, extreme ints), and the frame decoder must be
   indifferent to how the byte stream is chunked. *)

open Prop_helpers
module P = Nakamoto_proptest
module Gen = P.Gen
module Arbitrary = P.Arbitrary
module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message
module Spec = Nakamoto_campaign.Spec
module Shard = Nakamoto_campaign.Shard
module Aggregate = Nakamoto_campaign.Aggregate
module Tel = Nakamoto_telemetry

(* --- generators --- *)

let gen_float =
  Gen.frequency
    [
      (6, Gen.float_range ~lo:(-1e6) ~hi:1e6);
      (1, Gen.return nan);
      (1, Gen.return infinity);
      (1, Gen.return neg_infinity);
      (1, Gen.return (-0.));
    ]

let gen_small_string =
  Gen.map
    (fun codes -> String.init (List.length codes) (List.nth codes))
    (Gen.list
       ~len:(Gen.int_range ~lo:0 ~hi:12)
       (Gen.map Char.chr (Gen.int_range ~lo:0 ~hi:255)))

let gen_spec rng =
  let floats ~lo ~hi =
    Gen.list ~len:(Gen.int_range ~lo:1 ~hi:3) (Gen.float_range ~lo ~hi)
  in
  {
    Spec.ps = floats ~lo:0.001 ~hi:0.2 rng;
    ns = Gen.list ~len:(Gen.int_range ~lo:1 ~hi:2) (Gen.int_range ~lo:4 ~hi:64) rng;
    deltas =
      Gen.list ~len:(Gen.int_range ~lo:1 ~hi:2) (Gen.int_range ~lo:1 ~hi:8) rng;
    nus = floats ~lo:0. ~hi:0.49 rng;
    trials_per_cell = Gen.int_range ~lo:1 ~hi:16 rng;
    rounds = Gen.int_range ~lo:1 ~hi:5000 rng;
    mode = Gen.oneof_value [ Spec.Full_protocol; Spec.State_process ] rng;
    strategy =
      Gen.oneof
        [
          Gen.return Nakamoto_sim.Adversary.Idle;
          Gen.map
            (fun reorg_target ->
              Nakamoto_sim.Adversary.Private_chain { reorg_target })
            (Gen.int_range ~lo:1 ~hi:40);
          Gen.map
            (fun group_boundary ->
              Nakamoto_sim.Adversary.Balance { group_boundary })
            (Gen.int_range ~lo:1 ~hi:40);
          Gen.return Nakamoto_sim.Adversary.Selfish_mining;
        ]
        rng;
    mining_mode =
      Gen.oneof_value
        [
          Nakamoto_sim.Config.Exact;
          Nakamoto_sim.Config.Aggregate;
          Nakamoto_sim.Config.Skip;
        ]
        rng;
    truncate = Gen.int_range ~lo:1 ~hi:100 rng;
    seed =
      Gen.oneof_value [ 0L; 1L; -1L; Int64.min_int; Int64.max_int; 77L ] rng;
    shard_size = Gen.int_range ~lo:1 ~hi:8 rng;
  }

let gen_snapshot rng =
  let summary rng =
    {
      Nakamoto_prob.Stats.Summary.n = Gen.int_range ~lo:0 ~hi:1000 rng;
      mu = gen_float rng;
      m2s = gen_float rng;
      lo = gen_float rng;
      hi = gen_float rng;
    }
  in
  {
    Aggregate.s_trials = Gen.int_range ~lo:0 ~hi:1000 rng;
    s_total_rounds = Gen.int_range ~lo:0 ~hi:100000 rng;
    s_audited_trials = Gen.int_range ~lo:0 ~hi:1000 rng;
    s_violations = Gen.int_range ~lo:0 ~hi:1000 rng;
    s_convergence_opportunities = Gen.int_range ~lo:0 ~hi:100000 rng;
    s_adversary_blocks = Gen.int_range ~lo:0 ~hi:100000 rng;
    s_honest_blocks = Gen.int_range ~lo:0 ~hi:100000 rng;
    s_h_rounds = Gen.int_range ~lo:0 ~hi:100000 rng;
    s_h1_rounds = Gen.int_range ~lo:0 ~hi:100000 rng;
    s_max_reorg_depth = Gen.int_range ~lo:0 ~hi:64 rng;
    s_reorg_hist =
      Gen.array
        ~len:(Gen.int_range ~lo:0 ~hi:Aggregate.hist_depths)
        (Gen.int_range ~lo:0 ~hi:50)
        rng;
    s_growth = summary rng;
    s_quality = summary rng;
    s_reorg = summary rng;
  }

let gen_telemetry rng =
  (* Entries built through a real registry, so keys are canonical. *)
  let reg = Tel.Registry.create ~clock:(fun () -> 0.) () in
  let n = Gen.int_range ~lo:0 ~hi:4 rng in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "prop_metric_%d" i in
    match Gen.int_range ~lo:0 ~hi:2 rng with
    | 0 ->
      Tel.Counter.add
        (Tel.Registry.counter reg name)
        (Gen.int_range ~lo:0 ~hi:1000 rng)
    | 1 ->
      let h = Tel.Registry.log2_histogram reg name in
      for _ = 1 to Gen.int_range ~lo:0 ~hi:5 rng do
        Tel.Histogram.observe h (Gen.float_range ~lo:0. ~hi:100. rng)
      done
    | _ ->
      Tel.Span.record
        (Tel.Registry.span reg
           ~labels:[ ("domain", string_of_int (Gen.int_range ~lo:0 ~hi:9 rng)) ]
           name)
        (Gen.float_range ~lo:0. ~hi:10. rng)
  done;
  Tel.Registry.Snapshot.entries (Tel.Registry.snapshot reg)

let gen_shard rng =
  {
    Shard.id = Gen.int_range ~lo:0 ~hi:10000 rng;
    cell_index = Gen.int_range ~lo:0 ~hi:100 rng;
    trial_start = Gen.int_range ~lo:0 ~hi:100 rng;
    trial_stop = Gen.int_range ~lo:0 ~hi:100 rng;
    slot = Gen.int_range ~lo:0 ~hi:10 rng;
  }

let gen_message rng =
  match Gen.int_range ~lo:0 ~hi:13 rng with
  | 0 ->
    Msg.Hello
      {
        version = Gen.int_range ~lo:0 ~hi:1000 rng;
        role = Gen.oneof_value [ Msg.Worker; Msg.Client ] rng;
      }
  | 1 -> Msg.Hello_ack { version = Gen.int_range ~lo:0 ~hi:1000 rng }
  | 2 ->
    Msg.Submit_campaign
      {
        Msg.sub_spec = gen_spec rng;
        sub_journal =
          (if Gen.bool rng then Some (gen_small_string rng) else None);
        sub_resume = Gen.bool rng;
      }
  | 3 -> Msg.Lease_request { max = Gen.int_range ~lo:1 ~hi:256 rng }
  | 4 ->
    Msg.Lease_grant
      {
        grants =
          Gen.list
            ~len:(Gen.int_range ~lo:1 ~hi:5)
            (fun rng ->
              {
                Msg.lease_id = Gen.int_range ~lo:0 ~hi:100000 rng;
                shard = gen_shard rng;
              })
            rng;
        spec = gen_spec rng;
      }
  | 5 -> Msg.No_work { retry_after = Gen.float_range ~lo:0. ~hi:5. rng }
  | 6 ->
    Msg.Cell_result
      {
        Msg.res_lease = Gen.int_range ~lo:0 ~hi:100000 rng;
        res_shard = Gen.int_range ~lo:0 ~hi:10000 rng;
        res_aggregate = gen_snapshot rng;
        res_telemetry = gen_telemetry rng;
      }
  | 7 ->
    Msg.Query_assess
      {
        Msg.q_nu = gen_float rng;
        q_c = gen_float rng;
        q_n = gen_float rng;
        q_delta = gen_float rng;
      }
  | 8 ->
    Msg.Assess_reply
      {
        Msg.a_zone = gen_small_string rng;
        a_neat_threshold = gen_float rng;
        a_neat_margin = gen_float rng;
        a_attack_threshold = gen_float rng;
        a_confirmations =
          (if Gen.bool rng then Some (Gen.int_range ~lo:0 ~hi:10000 rng)
           else None);
        a_rendered = gen_small_string rng;
      }
  | 9 ->
    Msg.Progress
      {
        Msg.p_trials_done = Gen.int_range ~lo:0 ~hi:100000 rng;
        p_trials_total = Gen.int_range ~lo:0 ~hi:100000 rng;
        p_cells_done = Gen.int_range ~lo:0 ~hi:1000 rng;
        p_cells_total = Gen.int_range ~lo:0 ~hi:1000 rng;
      }
  | 10 ->
    Msg.Done
      {
        table = gen_small_string rng;
        journal = (if Gen.bool rng then Some (gen_small_string rng) else None);
      }
  | 11 -> Msg.Ping { nonce = Gen.int_range ~lo:0 ~hi:1000000 rng }
  | 12 -> Msg.Pong { nonce = Gen.int_range ~lo:0 ~hi:1000000 rng }
  | _ -> Msg.Error (gen_small_string rng)

let arb_message =
  Arbitrary.make
    ~print:(fun m ->
      let tag, payload = Msg.encode m in
      Printf.sprintf "message tag %d, %d payload bytes" tag
        (String.length payload))
    gen_message

(* decode (encode m) = m, witnessed byte-exactly through a re-encode —
   structural equality would choke on NaN. *)
let prop_decode_encode_id m =
  let tag, payload = Msg.encode m in
  match Msg.decode ~tag ~payload with
  | Error e -> failwith ("decode rejected its own encoding: " ^ e)
  | Ok m' ->
    let tag', payload' = Msg.encode m' in
    if tag <> tag' then failwith "tag changed across the round trip";
    if payload <> payload' then failwith "payload bytes changed across the round trip"

(* Feeding one frame stream in arbitrary chunk sizes yields the same
   frames: the decoder state machine has no alignment assumptions. *)
let arb_stream =
  Arbitrary.make
    ~print:(fun (ms, cut) ->
      Printf.sprintf "%d messages, chunk cut %d" (List.length ms) cut)
    (Gen.pair
       (Gen.list ~len:(Gen.int_range ~lo:1 ~hi:5) gen_message)
       (Gen.int_range ~lo:1 ~hi:17))

let frame_bytes ~tag ~payload =
  let len = String.length payload + 1 in
  let b = Buffer.create (5 + String.length payload) in
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_char b (Char.chr tag);
  Buffer.add_string b payload;
  Buffer.contents b

let prop_chunking_indifference (ms, cut) =
  let stream =
    String.concat ""
      (List.map
         (fun m ->
           let tag, payload = Msg.encode m in
           frame_bytes ~tag ~payload)
         ms)
  in
  let d = Frame.Decoder.create () in
  let got = ref [] in
  let drain () =
    let rec go () =
      match Frame.Decoder.next d with
      | `Frame (tag, payload) ->
        got := (tag, payload) :: !got;
        go ()
      | `Awaiting -> ()
      | `Bad e -> failwith ("decoder rejected a valid stream: " ^ e)
    in
    go ()
  in
  let pos = ref 0 in
  while !pos < String.length stream do
    let n = min cut (String.length stream - !pos) in
    Frame.Decoder.feed d (String.sub stream !pos n);
    pos := !pos + n;
    drain ()
  done;
  let expect = List.map Msg.encode ms in
  if List.rev !got <> expect then
    failwith "chunked decode produced different frames"

let suite =
  [
    prop ~count:120 "wire: decode (encode m) = m" arb_message
      prop_decode_encode_id;
    prop ~count:80 "wire: frame decoding is chunking-indifferent" arb_stream
      prop_chunking_indifference;
  ]
