(* Telemetry merge laws and one distributional check.

   Snapshots must form a commutative monoid under merge — that is the
   entire soundness argument for folding per-domain and per-shard
   registries in arbitrary groupings.  Float sums make associativity
   exact only when every observed value (and every partial sum) is an
   exactly-representable dyadic, so the generators draw multiples of
   2^-10 with bounded magnitude; under that regime structural equality
   [=] is the right notion and the laws hold bit-for-bit. *)

open Prop_helpers
module P = Nakamoto_proptest
module Arb = P.Arbitrary
module Tel = Nakamoto_telemetry
module Counter = Tel.Counter
module Histogram = Tel.Histogram
module Span = Tel.Span
module Sim = Nakamoto_sim

(* --- Generators ---------------------------------------------------- *)

(* Dyadic observations: k / 1024 with k in [0, 2^20], so values span
   [0, 1024] at 2^-10 resolution.  Sums of a few hundred of them stay
   far below 2^53 * 2^-10 and are therefore exact. *)
let dyadic =
  Arb.map
    ~print:(fun v -> Printf.sprintf "%h" v)
    (fun k -> float_of_int k /. 1024.)
    (Arb.int_range ~lo:0 ~hi:(1 lsl 20) ())

let values = Arb.list ~max_len:40 dyadic

let counter_snapshot =
  Arb.map ~print:string_of_int Counter.snapshot
    (Arb.map
       (fun k ->
         let c = Counter.create () in
         Counter.add c k;
         c)
       (Arb.int_range ~lo:0 ~hi:1_000_000 ()))

(* All fixed histograms in a law share one bounds array; merge requires
   identical layouts, and the law quantifies over observations, not
   layouts. *)
let law_bounds = [| 0.5; 1.; 8.; 64.; 512. |]

let fixed_snapshot_of vs =
  let h = Histogram.fixed ~bounds:law_bounds in
  List.iter (Histogram.observe h) vs;
  Histogram.snapshot h

let log2_snapshot_of vs =
  let h = Histogram.log2 () in
  List.iter (Histogram.observe h) vs;
  Histogram.snapshot h

let span_snapshot_of vs =
  let sp = Span.create ~clock:(fun () -> 0.) () in
  List.iter (Span.record sp) vs;
  Span.snapshot sp

let print_hist (s : Histogram.snapshot) =
  Printf.sprintf "{count=%d; sum=%h; min=%h; max=%h}" s.Histogram.s_count
    s.Histogram.s_sum s.Histogram.s_min s.Histogram.s_max

let fixed_snapshot = Arb.map ~print:print_hist fixed_snapshot_of values
let log2_snapshot = Arb.map ~print:print_hist log2_snapshot_of values
let span_snapshot = Arb.map ~print:print_hist span_snapshot_of values

let triple a = Arb.pair (Arb.pair a a) a

(* --- The monoid laws, per instrument ------------------------------- *)

let monoid_cases tag snap_arb ~merge ~empty =
  [
    prop ~count:1000
      (tag ^ " merge is associative")
      (triple snap_arb)
      (fun ((a, b), c) ->
        if merge (merge a b) c <> merge a (merge b c) then
          failwith "associativity violated");
    prop ~count:1000
      (tag ^ " merge is commutative")
      (Arb.pair snap_arb snap_arb)
      (fun (a, b) ->
        if merge a b <> merge b a then failwith "commutativity violated");
    prop ~count:1000
      (tag ^ " empty is the identity")
      snap_arb
      (fun a ->
        if merge empty a <> a || merge a empty <> a then
          failwith "identity violated");
  ]

(* Splitting one observation stream across two instruments and merging
   their snapshots must equal observing the whole stream in one — the
   law that makes per-shard registries equivalent to a single global
   one. *)
let split_stream_case tag snapshot_of =
  prop ~count:1000
    (tag ^ " merged split streams equal the single stream")
    (Arb.pair values values)
    (fun (xs, ys) ->
      let together = snapshot_of (xs @ ys) in
      let merged = Histogram.merge (snapshot_of xs) (snapshot_of ys) in
      if merged <> together then
        failwith
          (Printf.sprintf "split %s <> single %s" (print_hist merged)
             (print_hist together)))

let counter_split_case =
  prop ~count:1000 "counter merged split streams equal the single stream"
    (Arb.pair
       (Arb.list ~max_len:40 (Arb.int_range ~lo:0 ~hi:10_000 ()))
       (Arb.list ~max_len:40 (Arb.int_range ~lo:0 ~hi:10_000 ())))
    (fun (xs, ys) ->
      let count is =
        let c = Counter.create () in
        List.iter (Counter.add c) is;
        Counter.snapshot c
      in
      if Counter.merge (count xs) (count ys) <> count (xs @ ys) then
        failwith "split counter streams diverge")

(* --- Interarrival law: log2 histogram against the geometric law ----- *)

(* With nu = 0 and the Idle adversary, a round carries at least one
   honest block with probability alpha = 1 - (1-p)^n, independently
   across rounds, so gaps between successive block rounds are iid
   Geometric(alpha) on {1, 2, ...}.  The executor's log2 interarrival
   histogram therefore has bucket masses
     P(bucket i) = (1-alpha)^(2^(i-33) - 1) - (1-alpha)^(2^(i-32) - 1)
   for i >= 33 (gaps are >= 1, so lower buckets are empty). *)
let test_interarrival_matches_geometric () =
  let n = 50 and rounds = 60_000 in
  (* alpha ~ 0.1: enough blocks for ~6000 gaps, gaps long enough to
     populate several octaves. *)
  let p = 1. -. (0.9 ** (1. /. float_of_int n)) in
  let cfg =
    {
      Sim.Config.default with
      Sim.Config.n;
      p;
      nu = 0.;
      delta = 2;
      rounds;
      seed = 20260806L;
      strategy = Sim.Adversary.Idle;
      mining_mode = Sim.Config.Aggregate;
    }
  in
  let alpha = 1. -. ((1. -. p) ** float_of_int n) in
  let reg = Tel.Registry.create ~clock:(fun () -> 0.) () in
  ignore (Sim.Execution.run ~telemetry:reg cfg);
  let snap = Tel.Registry.snapshot reg in
  let counts =
    match Tel.Registry.Snapshot.find snap "sim_block_interarrival_rounds" with
    | Some (Tel.Registry.Snapshot.Histogram h) -> h.Histogram.s_counts
    | _ -> Alcotest.fail "sim_block_interarrival_rounds missing"
  in
  (* Gaps are integers >= 1: nothing may land below bucket 33. *)
  for i = 0 to 32 do
    check_int (Printf.sprintf "bucket %d stays empty" i) 0 counts.(i)
  done;
  let total = Array.fold_left ( + ) 0 counts in
  check_true "thousands of gaps observed" (total > 3000);
  (* Buckets 33..44 cover gaps up to 4096 rounds; the final cell takes
     the (vanishing) geometric tail so the masses sum to one. *)
  let first = 33 and last = 44 in
  let q = 1. -. alpha in
  let survival g = q ** (float_of_int g -. 1.) in
  let cells = last - first + 2 in
  let observed = Array.make cells 0 in
  let expected = Array.make cells 0. in
  for i = first to last do
    observed.(i - first) <- counts.(i);
    let lo = 1 lsl (i - 33) and hi = 1 lsl (i - 32) in
    expected.(i - first) <- (survival lo -. survival hi) *. float_of_int total
  done;
  for i = last + 1 to Array.length counts - 1 do
    observed.(cells - 1) <- observed.(cells - 1) + counts.(i)
  done;
  expected.(cells - 1) <- survival (1 lsl (last - 32)) *. float_of_int total;
  P.Stat.assert_family ~family:"telemetry interarrival"
    [
      P.Stat.chi_square_gof ~label:"log2 buckets vs geometric law"
        ~observed ~expected;
    ]

let suite =
  monoid_cases "counter" counter_snapshot ~merge:Counter.merge
    ~empty:Counter.empty
  @ monoid_cases "fixed histogram" fixed_snapshot ~merge:Histogram.merge
      ~empty:Histogram.empty
  @ monoid_cases "log2 histogram" log2_snapshot ~merge:Histogram.merge
      ~empty:Histogram.empty
  @ monoid_cases "span" span_snapshot ~merge:Span.merge ~empty:Span.empty
  @ [
      counter_split_case;
      split_stream_case "fixed histogram" fixed_snapshot_of;
      split_stream_case "log2 histogram" log2_snapshot_of;
      split_stream_case "span" span_snapshot_of;
      case "interarrival histogram matches the geometric law"
        test_interarrival_matches_geometric;
    ]
