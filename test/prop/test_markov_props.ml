(* The sparse-substrate property tier: random banded ergodic chains
   through every stationary solver, CSR round-trips, and domain-pool
   bit-identity — the differential pattern of the executor oracle applied
   to lib/markov.

   Every generated chain carries restart mass theta >= 0.05 to state 0,
   so it is Doeblin-ergodic with TV contraction <= 1 - theta: the dense
   power iteration at tol 1e-14 lands within ~2e-13 of the true
   stationary distribution, which is what makes the 1e-12 three-way
   agreement bound meaningful rather than hopeful. *)

open Prop_helpers
module P = Nakamoto_proptest
module Gen = P.Gen
module Arbitrary = P.Arbitrary
module Chain = Nakamoto_markov.Chain
module Sparse = Nakamoto_markov.Sparse
module Linalg = Nakamoto_numerics.Linalg

let max_size = 40
let max_band = 8
let noise_width = (2 * max_band) + 1

type banded_spec = {
  size : int;
  band : int;  (** clipped to [size - 1] at build time *)
  theta : float;  (** restart mass to state 0 *)
  noise : float array;  (** [max_size * noise_width] weights in [0.05, 1.05) *)
}

let spec_to_string s =
  Printf.sprintf "{size=%d; band=%d; theta=%.3f}" s.size s.band s.theta

(* Noise is generated at full capacity so shrinking size or band re-reads
   the same weights — the shrunk chain is a deterministic function of the
   shrunk spec, not of a fresh random stream. *)
let banded_arb =
  let gen rng =
    let size = Gen.int_range ~lo:1 ~hi:max_size rng in
    let band = Gen.int_range ~lo:1 ~hi:max_band rng in
    let theta = Gen.float_range ~lo:0.05 ~hi:0.3 rng in
    let noise =
      Gen.array
        ~len:(Gen.return (max_size * noise_width))
        (Gen.float_range ~lo:0.05 ~hi:1.05)
        rng
    in
    { size; band; theta; noise }
  in
  let shrink s =
    Seq.append
      (Seq.map (fun size -> { s with size }) (P.Shrink.int ~target:1 s.size))
      (Seq.map (fun band -> { s with band }) (P.Shrink.int ~target:1 s.band))
  in
  Arbitrary.make ~print:spec_to_string ~shrink gen

let chain_of_spec s =
  let band = min s.band (max 0 (s.size - 1)) in
  let rows =
    Array.init s.size (fun i ->
        let lo = max 0 (i - band) and hi = min (s.size - 1) (i + band) in
        let w j = s.noise.((i * noise_width) + (j - i + max_band)) in
        let total = ref 0. in
        for j = lo to hi do
          total := !total +. w j
        done;
        let scale = (1. -. s.theta) /. !total in
        let entries = ref [] in
        for j = hi downto lo do
          entries := (j, w j *. scale) :: !entries
        done;
        (* A duplicate column-0 entry whenever the band reaches state 0 —
           deliberate: the dense path sums duplicates and the CSR build
           must coalesce them to the same values. *)
        (0, s.theta) :: !entries)
  in
  Chain.create ~size:s.size ~rows ()

(* --- the differential property: sparse vs dense solvers to 1e-12 --- *)

let prop_sparse_matches_dense spec =
  let chain = chain_of_spec spec in
  let solved = Chain.stationary_linear_solve chain in
  let powered = Chain.stationary_power_iteration chain in
  let sparse = Chain.stationary_sparse chain in
  let err_solve = Linalg.max_abs_diff sparse solved in
  let err_power = Linalg.max_abs_diff sparse powered in
  if err_solve > 1e-12 || err_power > 1e-12 then
    failwith
      (Printf.sprintf
         "sparse stationary disagrees: |sparse - linear_solve| = %.3e, \
          |sparse - power_iteration| = %.3e (bound 1e-12)"
         err_solve err_power)

(* --- CSR round-trip: dense -> CSR -> dense is the identity --- *)

let dense_of_chain chain =
  let n = Chain.size chain in
  let m = Linalg.make ~rows:n ~cols:n 0. in
  for i = 0 to n - 1 do
    List.iter (fun (j, p) -> m.(i).(j) <- m.(i).(j) +. p) (Chain.row chain i)
  done;
  m

let prop_csr_roundtrip spec =
  let chain = chain_of_spec spec in
  let dense = dense_of_chain chain in
  let back = Sparse.to_dense (Chain.to_sparse chain) in
  let back2 = Sparse.to_dense (Sparse.of_dense dense) in
  for i = 0 to Chain.size chain - 1 do
    for j = 0 to Chain.size chain - 1 do
      if back.(i).(j) <> dense.(i).(j) then
        failwith
          (Printf.sprintf "chain->CSR->dense differs at (%d,%d): %.17g vs %.17g"
             i j back.(i).(j) dense.(i).(j));
      if back2.(i).(j) <> dense.(i).(j) then
        failwith
          (Printf.sprintf "dense->CSR->dense differs at (%d,%d): %.17g vs %.17g"
             i j back2.(i).(j) dense.(i).(j))
    done
  done

(* --- pooled mat-vec bit-identity across worker counts --- *)

let prop_pool_bit_identity spec =
  let sp = Chain.to_sparse (chain_of_spec spec) in
  let x = Array.init (Sparse.cols sp) (fun i -> spec.noise.(i) -. 0.5) in
  let expected = Sparse.mul_vec sp x in
  List.iter
    (fun jobs ->
      let got = Sparse.Pool.with_pool ~jobs (fun p -> Sparse.mul_vec_pool p sp x) in
      Array.iteri
        (fun i v ->
          if v <> expected.(i) then
            failwith
              (Printf.sprintf
                 "jobs=%d: row %d differs from sequential (%.17g vs %.17g)"
                 jobs i v expected.(i)))
        got)
    [ 1; 2; 3; 4 ]

let suite =
  [
    prop
      "banded ergodic chains: sparse stationary matches linear solve and \
       power iteration to 1e-12"
      ~count:(sized ~fast:1000 ~soak:2000)
      banded_arb prop_sparse_matches_dense;
    prop "CSR round-trip is the identity on banded chains" ~count:200
      banded_arb prop_csr_roundtrip;
    prop "pooled sparse mat-vec is bit-identical at every worker count"
      ~count:50 banded_arb prop_pool_bit_identity;
  ]
