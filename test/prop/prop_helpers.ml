(* Alcotest adapters for the in-repo property engine. *)

module P = Nakamoto_proptest

let case name f = Alcotest.test_case name `Quick f

(* A property as an alcotest case: engine failures (which carry the
   replayable (seed, path) pair) and statistical rejections render as the
   assertion message. *)
let prop ?count name arb body =
  Alcotest.test_case name `Quick (fun () ->
      try P.Property.check ?count ~name arb body with
      | P.Property.Failed f -> Alcotest.fail (P.Property.failure_message f)
      | P.Stat.Rejected m -> Alcotest.fail m)

let check_true msg b = Alcotest.(check bool) msg true b
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let close ?(rtol = 1e-9) ?(atol = 1e-12) msg expected actual =
  if not (Nakamoto_numerics.Special.approx_equal ~rtol ~atol expected actual)
  then
    Alcotest.failf "%s: expected %.17g, got %.17g (diff %.3e)" msg expected
      actual
      (Float.abs (expected -. actual))

(* Soak scaling: a size that grows when PROPTEST_TRIALS is set. *)
let sized ~fast ~soak = if P.Property.soak_active () then soak else fast
