(* Generative properties over the numeric, probability, pattern, and
   simulation layers — invariants that must hold at every generated
   point, with failures replayable from the printed (seed, path). *)

open Prop_helpers
module P = Nakamoto_proptest
module Gen = P.Gen
module Arbitrary = P.Arbitrary
module Special = Nakamoto_numerics.Special
module Stats = Nakamoto_prob.Stats
module Binomial = Nakamoto_prob.Binomial
module Rng = Nakamoto_prob.Rng
module Round_state = Nakamoto_sim.Round_state
module Pattern = Nakamoto_sim.Pattern
module Scenarios = Nakamoto_sim.Scenarios
module Config = Nakamoto_sim.Config
module Execution = Nakamoto_sim.Execution
module Trace = Nakamoto_sim.Trace

(* --- binomial distribution --- *)

let binomial_params =
  Arbitrary.make
    ~print:(fun (trials, p) -> Printf.sprintf "(trials=%d, p=%.17g)" trials p)
    ~shrink:
      (P.Shrink.pair (P.Shrink.int ~target:0) (fun p ->
           if p = 0. then Seq.empty else List.to_seq [ 0.; 0.5 ]))
    (fun rng ->
      let trials = Gen.int_range ~lo:0 ~hi:300 rng in
      let p =
        Gen.frequency
          [
            (1, Gen.return 0.);
            (1, Gen.return 1.);
            (6, Gen.float_range ~lo:0. ~hi:1.);
          ]
          rng
      in
      (trials, p))

let prop_cdf_survival_complement (trials, p) =
  let d = Binomial.create ~trials ~p in
  if Binomial.cdf d (-1) <> 0. then failwith "cdf(-1) <> 0";
  if Binomial.survival d trials <> 0. then failwith "survival(trials) <> 0";
  if not (Special.approx_equal ~rtol:1e-12 ~atol:0. 1. (Binomial.cdf d trials))
  then failwith "cdf(trials) <> 1";
  let prev = ref 0. in
  for k = -1 to trials + 1 do
    let c = Binomial.cdf d k and s = Binomial.survival d k in
    if c < !prev -. 1e-15 then failwith "cdf not monotone";
    prev := c;
    if not (Special.approx_equal ~rtol:1e-9 ~atol:1e-12 1. (c +. s)) then
      failwith
        (Printf.sprintf "cdf(%d) + survival(%d) = %.17g <> 1" k k (c +. s))
  done

let sampler_params =
  Arbitrary.make
    ~print:(fun (trials, p) -> Printf.sprintf "(trials=%d, p=%.17g)" trials p)
    (fun rng ->
      let trials = int_of_float (Gen.log_float_range ~lo:1. ~hi:2000. rng) in
      let p = Gen.log_float_range ~lo:1e-4 ~hi:0.999 rng in
      (trials, p))

(* The sampler's draws are individually in range and collectively
   indistinguishable from the distribution they claim: pooling 150 draws
   makes the total an exact binom(150 * trials, p) variate.  The sampling
   stream's seed is a function of the parameters, so the verdict at each
   generated point is reproducible in isolation. *)
let prop_sampler_law (trials, p) =
  let rng =
    Rng.create
      ~seed:(Int64.add (Int64.of_int trials) (Int64.of_float (p *. 1e9)))
  in
  let d = Binomial.create ~trials ~p in
  let draws = 150 in
  let total = ref 0 in
  for _ = 1 to draws do
    let k = Binomial.sample rng d in
    if k < 0 || k > trials then
      failwith (Printf.sprintf "sample %d outside [0, %d]" k trials);
    total := !total + k
  done;
  let pv = Stats.binomial_test ~hits:!total ~trials:(draws * trials) ~p in
  if pv < 1e-9 then
    failwith
      (Printf.sprintf "pooled sampler mean rejected: %d/%d hits, p-value %.3e"
         !total (draws * trials) pv)

(* --- special functions --- *)

let gamma_point =
  Arbitrary.make
    ~print:(fun (a, x) -> Printf.sprintf "(a=%.17g, x=%.17g)" a x)
    (fun rng ->
      (Gen.log_float_range ~lo:1e-2 ~hi:100. rng,
       Gen.log_float_range ~lo:1e-6 ~hi:500. rng))

let prop_regularized_gamma_complement (a, x) =
  let p = Special.regularized_gamma_lower ~a ~x in
  let q = Special.regularized_gamma_upper ~a ~x in
  if p < 0. || p > 1. || q < 0. || q > 1. then failwith "P or Q outside [0, 1]";
  if not (Special.approx_equal ~rtol:1e-10 ~atol:1e-13 1. (p +. q)) then
    failwith (Printf.sprintf "P + Q = %.17g <> 1" (p +. q))

let prop_chi_square_df2_exact x =
  (* For df = 2 the chi-square survival has the elementary closed form
     exp(-x/2) — an end-to-end check of the continued-fraction path. *)
  let s = Stats.chi_square_survival ~df:2 x in
  if not (Special.approx_equal ~rtol:1e-10 ~atol:1e-300 (exp (-.x /. 2.)) s)
  then failwith (Printf.sprintf "survival(df=2, %.17g) = %.17g" x s)

(* --- pattern detection --- *)

let round_state_trace =
  let state =
    Gen.frequency
      [
        (6, Gen.return Round_state.N);
        (3, Gen.return (Round_state.H 1));
        (1, Gen.map (fun k -> Round_state.H k) (Gen.int_range ~lo:2 ~hi:4));
      ]
  in
  Arbitrary.make
    ~print:(fun (delta, states) ->
      Printf.sprintf "(delta=%d, \"%s\")" delta
        (String.init (Array.length states) (fun i ->
             Round_state.to_char states.(i))))
    ~shrink:(fun (delta, states) ->
      Seq.map
        (fun l -> (delta, Array.of_list l))
        (P.Shrink.list P.Shrink.nothing (Array.to_list states)))
    (fun rng ->
      let delta = Gen.int_range ~lo:1 ~hi:8 rng in
      let len = Gen.int_range ~lo:0 ~hi:300 rng in
      (delta, Array.init len (fun _ -> state rng)))

let prop_pattern_streaming_matches_rescan (delta, states) =
  let t = Pattern.create ~delta in
  Pattern.observe_all t states;
  let streamed = Pattern.count t in
  let rescanned = Pattern.count_by_rescan ~delta states in
  if streamed <> rescanned then
    failwith
      (Printf.sprintf "streaming %d <> rescan %d over %d rounds" streamed
         rescanned (Array.length states));
  if Pattern.rounds_seen t <> Array.length states then
    failwith "rounds_seen mismatch"

let prop_round_state_roundtrip k =
  let s = Round_state.of_block_count k in
  if Round_state.block_count s <> k then failwith "block_count roundtrip";
  if Round_state.is_h s <> (k >= 1) then failwith "is_h";
  if Round_state.is_h1 s <> (k = 1) then failwith "is_h1"

(* --- scenario specs and the executor --- *)

let prop_of_spec_realizes_c (spec : Scenarios.spec) =
  let cfg = Scenarios.of_spec spec in
  Config.validate cfg;
  let c = Config.c cfg in
  if not (Special.approx_equal ~rtol:1e-9 ~atol:0. spec.c c) then
    failwith (Printf.sprintf "of_spec c: wanted %.17g, got %.17g" spec.c c);
  if cfg.Config.n <> spec.n || cfg.Config.delta <> spec.delta then
    failwith "of_spec dropped a field"

let prop_execution_conservation (spec : Scenarios.spec) =
  let spec = { spec with Scenarios.rounds = min spec.Scenarios.rounds 600 } in
  let cfg = Scenarios.of_spec spec in
  let r = Execution.run cfg in
  let fail fmt = Printf.ksprintf failwith fmt in
  if r.Execution.orphans_remaining <> 0 then
    fail "%d orphans after quiescence" r.Execution.orphans_remaining;
  if not (r.Execution.h1_rounds <= r.Execution.h_rounds) then
    fail "h1_rounds %d > h_rounds %d" r.Execution.h1_rounds
      r.Execution.h_rounds;
  if not (r.Execution.h_rounds <= spec.Scenarios.rounds) then
    fail "h_rounds %d > rounds %d" r.Execution.h_rounds spec.Scenarios.rounds;
  if not (r.Execution.honest_blocks >= r.Execution.h_rounds) then
    fail "honest_blocks %d < h_rounds %d" r.Execution.honest_blocks
      r.Execution.h_rounds;
  if not (r.Execution.convergence_opportunities <= r.Execution.h1_rounds) then
    fail "convergence opportunities %d > h1_rounds %d"
      r.Execution.convergence_opportunities r.Execution.h1_rounds;
  if Array.length r.Execution.final_tips <> Config.honest_count cfg then
    fail "final_tips arity %d <> honest count %d"
      (Array.length r.Execution.final_tips)
      (Config.honest_count cfg);
  if r.Execution.max_reorg_depth < 0 then fail "negative reorg depth";
  (* Every settled tip is a real chain position. *)
  Array.iter
    (fun tip ->
      if tip.Nakamoto_chain.Block.height < 0 then fail "negative tip height")
    r.Execution.final_tips;
  (* Snapshots are chronological. *)
  ignore
    (List.fold_left
       (fun prev (s : Execution.snapshot) ->
         if s.Execution.round < prev then fail "snapshots out of order";
         s.Execution.round)
       0 r.Execution.snapshots)

let prop_trace_capture_deterministic (spec : Scenarios.spec) =
  let spec = { spec with Scenarios.rounds = min spec.Scenarios.rounds 300 } in
  let cfg = Scenarios.of_spec spec in
  let t1 = Trace.capture cfg and t2 = Trace.capture cfg in
  if not (Trace.equal t1 t2) then failwith "capture not deterministic";
  if Trace.digest t1 <> Trace.digest t2 then
    failwith "equal traces, unequal digests";
  (* The text format round-trips and the digest survives it. *)
  let t3 = Trace.of_string (Trace.to_string t1) in
  if not (Trace.equal t1 t3) then failwith "text format does not round-trip";
  if Trace.digest t1 <> Trace.digest t3 then
    failwith "digest changed across the text round-trip"

let suite =
  [
    prop "binomial cdf + survival = 1, cdf monotone" binomial_params
      prop_cdf_survival_complement;
    prop "binomial sampler obeys its own law" ~count:60 sampler_params
      prop_sampler_law;
    prop "regularized gamma P + Q = 1" gamma_point
      prop_regularized_gamma_complement;
    prop "chi-square survival df=2 is exp(-x/2)"
      (Arbitrary.log_float_range ~lo:1e-4 ~hi:200.)
      prop_chi_square_df2_exact;
    prop "pattern streaming matches window rescan" round_state_trace
      prop_pattern_streaming_matches_rescan;
    prop "round state classification round-trips"
      (Arbitrary.int_range ~lo:0 ~hi:1000 ())
      prop_round_state_roundtrip;
    prop "of_spec realizes the requested c" P.Domain_gen.exec_spec
      prop_of_spec_realizes_c;
    prop "executor conservation laws" ~count:25 P.Domain_gen.exec_spec
      prop_execution_conservation;
    prop "trace capture is deterministic and round-trips" ~count:10
      P.Domain_gen.exec_spec prop_trace_capture_deterministic;
  ]
