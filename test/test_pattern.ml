open Helpers
module Pattern = Nakamoto_sim.Pattern
module Round_state = Nakamoto_sim.Round_state

(* Compact trace notation: 'N' = no honest block, '1' = exactly one,
   'H' = two or more. *)
let trace s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | 'N' -> Round_state.N
      | '1' -> Round_state.H 1
      | 'H' -> Round_state.H 2
      | c -> Alcotest.failf "bad trace char %c" c)

let count ~delta s =
  let p = Pattern.create ~delta in
  Pattern.observe_all p (trace s);
  Pattern.count p

let test_minimal_pattern () =
  (* H N N 1 N N with delta = 2: F = HN^{>=2}, then H1, then N^2. *)
  check_int "exact minimal hit" 1 (count ~delta:2 "HNN1NN");
  check_int "missing final N" 0 (count ~delta:2 "HNN1N");
  check_int "H1 replaced by H2" 0 (count ~delta:2 "HNNHNN");
  check_int "gap too short" 0 (count ~delta:2 "HN1NN");
  check_int "no leading H" 0 (count ~delta:2 "NNN1NN")

let test_interrupted_window () =
  (* An H inside the trailing window kills the opportunity. *)
  check_int "window interrupted" 0 (count ~delta:2 "HNN1NH");
  check_int "window interrupted early" 0 (count ~delta:2 "HNN1HN")

let test_longer_gap_still_counts () =
  check_int "gap 5 >= delta 2" 1 (count ~delta:2 "HNNNNN1NN")

let test_chained_opportunities () =
  (* After an opportunity completes, its Delta N's serve as the next gap:
     H NN 1 NN 1 NN -> two opportunities (delta = 2). *)
  check_int "chained" 2 (count ~delta:2 "HNN1NN1NN")

let test_counts_are_per_completion_round () =
  (* Completion happens exactly Delta rounds after the H1; observing the
     trailing Ns one at a time must fire exactly once. *)
  let p = Pattern.create ~delta:3 in
  Pattern.observe_all p (trace "HNNN1");
  check_int "not yet" 0 (Pattern.count p);
  Pattern.observe p Round_state.N;
  Pattern.observe p Round_state.N;
  check_int "still not" 0 (Pattern.count p);
  Pattern.observe p Round_state.N;
  check_int "fires on the Delta-th N" 1 (Pattern.count p);
  Pattern.observe p Round_state.N;
  check_int "does not refire" 1 (Pattern.count p);
  check_int "rounds tracked" 9 (Pattern.rounds_seen p)

let test_delta_one () =
  (* delta = 1: pattern is H N 1 N. *)
  check_int "delta 1 hit" 1 (count ~delta:1 "HN1N");
  check_int "delta 1 consecutive" 2 (count ~delta:1 "HN1N1N");
  check_raises_invalid "delta 0" (fun () -> ignore (Pattern.create ~delta:0))

let test_rescan_agrees_on_cases () =
  List.iter
    (fun (delta, s) ->
      check_int
        (Printf.sprintf "rescan delta=%d %s" delta s)
        (Pattern.count_by_rescan ~delta (trace s))
        (count ~delta s))
    [
      (2, "HNN1NN"); (2, "HNN1NH"); (2, "HNN1NN1NN"); (1, "HN1N1N");
      (3, "HNNNN1NNN"); (2, "NNNN1NN"); (2, "");
    ]

let gen_trace =
  QCheck2.Gen.(
    let* delta = int_range 1 4 in
    let* states =
      list_size (int_range 0 400)
        (frequency [ (6, return 'N'); (3, return '1'); (1, return 'H') ])
    in
    return (delta, String.init (List.length states) (List.nth states)))

let props =
  [
    prop ~count:300 "streaming counter equals window rescan" gen_trace
      (fun (delta, s) ->
        count ~delta s = Pattern.count_by_rescan ~delta (trace s));
  ]

let suite =
  [
    case "minimal pattern" test_minimal_pattern;
    case "interrupted window" test_interrupted_window;
    case "longer gap" test_longer_gap_still_counts;
    case "chained opportunities" test_chained_opportunities;
    case "fires exactly at completion" test_counts_are_per_completion_round;
    case "delta = 1" test_delta_one;
    case "rescan agreement (named cases)" test_rescan_agrees_on_cases;
  ]
  @ props
