open Helpers
module Stats = Nakamoto_prob.Stats

let test_summary_basic () =
  let s = Stats.Summary.create () in
  check_int "empty count" 0 (Stats.Summary.count s);
  check_true "empty mean is nan" (Float.is_nan (Stats.Summary.mean s));
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Stats.Summary.count s);
  close "mean" 5. (Stats.Summary.mean s);
  close "sample variance" (32. /. 7.) (Stats.Summary.variance s);
  close "min" 2. (Stats.Summary.min_value s);
  close "max" 9. (Stats.Summary.max_value s)

let test_summary_single () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 3.;
  close "mean of one" 3. (Stats.Summary.mean s);
  check_true "variance of one is nan" (Float.is_nan (Stats.Summary.variance s));
  check_raises_invalid "ci needs 2" (fun () ->
      ignore (Stats.Summary.confidence_interval_95 s))

let test_confidence_interval () =
  let s = Stats.Summary.create () in
  for i = 1 to 1000 do
    Stats.Summary.add s (float_of_int (i mod 10))
  done;
  let lo, hi = Stats.Summary.confidence_interval_95 s in
  let m = Stats.Summary.mean s in
  check_true "contains mean" (lo <= m && m <= hi);
  check_true "interval narrow for 1000 samples" (hi -. lo < 0.5)

let test_merge () =
  let all = Stats.Summary.create () in
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let g = rng () in
  for i = 1 to 500 do
    let x = Nakamoto_prob.Rng.float g in
    Stats.Summary.add all x;
    Stats.Summary.add (if i mod 2 = 0 then a else b) x
  done;
  let merged = Stats.Summary.merge a b in
  check_int "merged count" 500 (Stats.Summary.count merged);
  close "merged mean" (Stats.Summary.mean all) (Stats.Summary.mean merged);
  close ~rtol:1e-9 "merged variance" (Stats.Summary.variance all)
    (Stats.Summary.variance merged);
  close "merged min" (Stats.Summary.min_value all) (Stats.Summary.min_value merged);
  (* merging with empty is identity *)
  let empty = Stats.Summary.create () in
  let same = Stats.Summary.merge a empty in
  close "merge with empty" (Stats.Summary.mean a) (Stats.Summary.mean same)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -5.; 15. ];
  check_int "total" 6 (Stats.Histogram.total h);
  let c = Stats.Histogram.counts h in
  check_int "first bin holds 0.5 and the underflow" 2 c.(0);
  check_int "second bin" 2 c.(1);
  check_int "last bin holds 9.9 and the overflow" 2 c.(9);
  close "cdf estimate" (4. /. 6.) (Stats.Histogram.fraction_at_most h 2.);
  check_raises_invalid "bad range" (fun () ->
      ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~bins:4))

let test_rates () =
  close "empirical rate" 0.25 (Stats.empirical_rate ~hits:25 ~trials:100);
  check_raises_invalid "hits > trials" (fun () ->
      ignore (Stats.empirical_rate ~hits:5 ~trials:3));
  let lo, hi = Stats.wilson_interval ~hits:25 ~trials:100 in
  check_true "wilson contains p_hat" (lo < 0.25 && 0.25 < hi);
  let lo0, _ = Stats.wilson_interval ~hits:0 ~trials:100 in
  close "wilson at 0 hits stays >= 0" 0. lo0;
  let _, hi1 = Stats.wilson_interval ~hits:100 ~trials:100 in
  close "wilson at all hits stays <= 1" 1. hi1

let props =
  [
    prop "welford mean equals arithmetic mean"
      QCheck2.Gen.(list_size (int_range 2 100) (float_range (-100.) 100.))
      (fun xs ->
        let s = Stats.Summary.create () in
        List.iter (Stats.Summary.add s) xs;
        let direct = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
        Float.abs (Stats.Summary.mean s -. direct) < 1e-9);
    prop "merge is order-insensitive"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 30) (float_range (-10.) 10.))
          (list_size (int_range 1 30) (float_range (-10.) 10.)))
      (fun (xs, ys) ->
        let build l =
          let s = Stats.Summary.create () in
          List.iter (Stats.Summary.add s) l;
          s
        in
        let ab = Stats.Summary.merge (build xs) (build ys) in
        let ba = Stats.Summary.merge (build ys) (build xs) in
        Float.abs (Stats.Summary.mean ab -. Stats.Summary.mean ba) < 1e-9
        && Float.abs (Stats.Summary.variance ab -. Stats.Summary.variance ba)
           < 1e-9);
  ]

let suite =
  [
    case "summary basics" test_summary_basic;
    case "summary single sample" test_summary_single;
    case "confidence interval" test_confidence_interval;
    case "merge" test_merge;
    case "histogram" test_histogram;
    case "empirical rate / wilson" test_rates;
  ]
  @ props
