open Helpers
module Stats = Nakamoto_prob.Stats

let test_summary_basic () =
  let s = Stats.Summary.create () in
  check_int "empty count" 0 (Stats.Summary.count s);
  check_true "empty mean is nan" (Float.is_nan (Stats.Summary.mean s));
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Stats.Summary.count s);
  close "mean" 5. (Stats.Summary.mean s);
  close "sample variance" (32. /. 7.) (Stats.Summary.variance s);
  close "min" 2. (Stats.Summary.min_value s);
  close "max" 9. (Stats.Summary.max_value s)

let test_summary_single () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 3.;
  close "mean of one" 3. (Stats.Summary.mean s);
  check_true "variance of one is nan" (Float.is_nan (Stats.Summary.variance s));
  check_raises_invalid "ci needs 2" (fun () ->
      ignore (Stats.Summary.confidence_interval_95 s))

let test_confidence_interval () =
  let s = Stats.Summary.create () in
  for i = 1 to 1000 do
    Stats.Summary.add s (float_of_int (i mod 10))
  done;
  let lo, hi = Stats.Summary.confidence_interval_95 s in
  let m = Stats.Summary.mean s in
  check_true "contains mean" (lo <= m && m <= hi);
  check_true "interval narrow for 1000 samples" (hi -. lo < 0.5)

let test_merge () =
  let all = Stats.Summary.create () in
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let g = rng () in
  for i = 1 to 500 do
    let x = Nakamoto_prob.Rng.float g in
    Stats.Summary.add all x;
    Stats.Summary.add (if i mod 2 = 0 then a else b) x
  done;
  let merged = Stats.Summary.merge a b in
  check_int "merged count" 500 (Stats.Summary.count merged);
  close "merged mean" (Stats.Summary.mean all) (Stats.Summary.mean merged);
  close ~rtol:1e-9 "merged variance" (Stats.Summary.variance all)
    (Stats.Summary.variance merged);
  close "merged min" (Stats.Summary.min_value all) (Stats.Summary.min_value merged);
  (* merging with empty is identity *)
  let empty = Stats.Summary.create () in
  let same = Stats.Summary.merge a empty in
  close "merge with empty" (Stats.Summary.mean a) (Stats.Summary.mean same)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -5.; 15. ];
  check_int "total" 6 (Stats.Histogram.total h);
  let c = Stats.Histogram.counts h in
  check_int "first bin holds 0.5 and the underflow" 2 c.(0);
  check_int "second bin" 2 c.(1);
  check_int "last bin holds 9.9 and the overflow" 2 c.(9);
  close "cdf estimate" (4. /. 6.) (Stats.Histogram.fraction_at_most h 2.);
  check_raises_invalid "bad range" (fun () ->
      ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~bins:4))

let test_rates () =
  close "empirical rate" 0.25 (Stats.empirical_rate ~hits:25 ~trials:100);
  check_raises_invalid "hits > trials" (fun () ->
      ignore (Stats.empirical_rate ~hits:5 ~trials:3));
  let lo, hi = Stats.wilson_interval ~hits:25 ~trials:100 in
  check_true "wilson contains p_hat" (lo < 0.25 && 0.25 < hi);
  let lo0, _ = Stats.wilson_interval ~hits:0 ~trials:100 in
  close "wilson at 0 hits stays >= 0" 0. lo0;
  let _, hi1 = Stats.wilson_interval ~hits:100 ~trials:100 in
  close "wilson at all hits stays <= 1" 1. hi1

let props =
  [
    prop "welford mean equals arithmetic mean"
      QCheck2.Gen.(list_size (int_range 2 100) (float_range (-100.) 100.))
      (fun xs ->
        let s = Stats.Summary.create () in
        List.iter (Stats.Summary.add s) xs;
        let direct = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
        Float.abs (Stats.Summary.mean s -. direct) < 1e-9);
    prop "merge is order-insensitive"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 30) (float_range (-10.) 10.))
          (list_size (int_range 1 30) (float_range (-10.) 10.)))
      (fun (xs, ys) ->
        let build l =
          let s = Stats.Summary.create () in
          List.iter (Stats.Summary.add s) l;
          s
        in
        let ab = Stats.Summary.merge (build xs) (build ys) in
        let ba = Stats.Summary.merge (build ys) (build xs) in
        Float.abs (Stats.Summary.mean ab -. Stats.Summary.mean ba) < 1e-9
        && Float.abs (Stats.Summary.variance ab -. Stats.Summary.variance ba)
           < 1e-9);
  ]

let test_chi_square_survival () =
  (* Textbook critical values: survival at the alpha = 0.05 / 0.01
     quantiles must recover alpha. *)
  List.iter
    (fun (df, x, alpha) ->
      close ~rtol:1e-6
        (Printf.sprintf "df=%d x=%g" df x)
        alpha
        (Stats.chi_square_survival ~df x))
    [
      (1, 3.841458820694124, 0.05);
      (2, 5.991464547107979, 0.05);
      (5, 11.070497693516351, 0.05);
      (10, 18.307038053275146, 0.05);
      (1, 6.634896601021213, 0.01);
    ];
  close "survival at 0" 1. (Stats.chi_square_survival ~df:3 0.);
  check_true "far tail is tiny but positive"
    (let s = Stats.chi_square_survival ~df:4 300. in
     s > 0. && s < 1e-50)

let test_chi_square_gof () =
  (* A perfectly matching sample has statistic ~ 0, p ~ 1. *)
  let t =
    Stats.chi_square_gof ~observed:[| 250; 250; 250; 250 |]
      ~expected:[| 250.; 250.; 250.; 250. |]
      ()
  in
  close "perfect fit statistic" 0. t.Stats.statistic;
  close "perfect fit p" 1. t.Stats.p_value;
  check_true "df pools to cells - 1" (t.Stats.df = 3.);
  (* A grossly biased one rejects. *)
  let bad =
    Stats.chi_square_gof ~observed:[| 700; 100; 100; 100 |]
      ~expected:[| 250.; 250.; 250.; 250. |]
      ()
  in
  check_true "biased sample rejected" (bad.Stats.p_value < 1e-10);
  (* Sparse-cell pooling: expecteds below the floor merge, so df shrinks
     and the test stays valid on skewed distributions. *)
  let pooled =
    Stats.chi_square_gof ~min_expected:5.
      ~observed:[| 96; 2; 1; 1 |]
      ~expected:[| 94.; 3.; 2.; 1. |]
      ()
  in
  check_true "pooling collapses sparse tail" (pooled.Stats.df = 1.);
  check_true "pooled fit accepted" (pooled.Stats.p_value > 0.05)

let test_homogeneity_and_ks () =
  let same = Stats.chi_square_homogeneity [| 50; 30; 20 |] [| 48; 33; 19 |] () in
  check_true "similar rows accepted" (same.Stats.p_value > 0.1);
  let diff =
    Stats.chi_square_homogeneity [| 500; 300; 200 |] [| 200; 300; 500 |] ()
  in
  check_true "different rows rejected" (diff.Stats.p_value < 1e-10);
  let xs = Array.init 300 (fun i -> float_of_int i /. 300.) in
  let shifted = Array.map (fun x -> x +. 0.5) xs in
  check_true "KS identical" ((Stats.ks_two_sample xs xs).Stats.p_value > 0.99);
  check_true "KS shifted"
    ((Stats.ks_two_sample xs shifted).Stats.p_value < 1e-10)

let test_binomial_test () =
  close "center is 1" 1. (Stats.binomial_test ~hits:5 ~trials:10 ~p:0.5);
  (* All-misses two-sided p doubles the smaller tail: 2 * 2^-10. *)
  close ~rtol:1e-12 "all misses" (2. /. 1024.)
    (Stats.binomial_test ~hits:0 ~trials:10 ~p:0.5);
  close ~rtol:1e-12 "all hits" (2. /. 1024.)
    (Stats.binomial_test ~hits:10 ~trials:10 ~p:0.5);
  close "degenerate p=0, hits=0" 1.
    (Stats.binomial_test ~hits:0 ~trials:10 ~p:0.);
  check_true "degenerate p=0, hits>0 rejects"
    (Stats.binomial_test ~hits:3 ~trials:10 ~p:0. = 0.);
  check_true "symmetric"
    (Stats.binomial_test ~hits:3 ~trials:10 ~p:0.5
    = Stats.binomial_test ~hits:7 ~trials:10 ~p:0.5);
  (match Stats.binomial_test ~hits:11 ~trials:10 ~p:0.5 with
  | _ -> Alcotest.fail "hits > trials should raise"
  | exception Invalid_argument _ -> ())

let suite =
  [
    case "summary basics" test_summary_basic;
    case "chi-square survival" test_chi_square_survival;
    case "chi-square goodness of fit" test_chi_square_gof;
    case "homogeneity and KS" test_homogeneity_and_ks;
    case "exact binomial test" test_binomial_test;
    case "summary single sample" test_summary_single;
    case "confidence interval" test_confidence_interval;
    case "merge" test_merge;
    case "histogram" test_histogram;
    case "empirical rate / wilson" test_rates;
  ]
  @ props
