open Helpers
module Ascii_plot = Nakamoto_numerics.Ascii_plot

let line_series =
  {
    Ascii_plot.label = "line";
    glyph = '*';
    points = List.init 20 (fun i -> (float_of_int i, float_of_int i *. 2.));
  }

let test_renders () =
  let s =
    Ascii_plot.plot ~title:"t" ~x_label:"x" ~y_label:"y" [ line_series ]
  in
  check_true "title" (contains_substring ~affix:"t\n" s);
  check_true "glyph appears" (contains_substring ~affix:"*" s);
  check_true "legend" (contains_substring ~affix:"line" s);
  check_true "axis labels" (contains_substring ~affix:"x: x" s)

let test_log_scale_drops_nonpositive () =
  let s =
    Ascii_plot.plot ~x_scale:Ascii_plot.Log10 ~title:"t" ~x_label:"x"
      ~y_label:"y"
      [
        {
          Ascii_plot.label = "l";
          glyph = 'o';
          points = [ (-1., 1.); (0., 2.); (1., 3.); (10., 4.) ];
        };
      ]
  in
  (* Only the two positive-x points remain; the plot must still render. *)
  check_true "rendered" (String.length s > 0)

let test_empty_rejected () =
  check_raises_invalid "no points" (fun () ->
      ignore
        (Ascii_plot.plot ~title:"t" ~x_label:"x" ~y_label:"y"
           [ { Ascii_plot.label = "e"; glyph = 'e'; points = [] } ]));
  check_raises_invalid "nan only" (fun () ->
      ignore
        (Ascii_plot.plot ~title:"t" ~x_label:"x" ~y_label:"y"
           [ { Ascii_plot.label = "n"; glyph = 'n'; points = [ (nan, 1.) ] } ]))

let test_degenerate_range () =
  (* A single point must not divide by zero. *)
  let s =
    Ascii_plot.plot ~title:"t" ~x_label:"x" ~y_label:"y"
      [ { Ascii_plot.label = "p"; glyph = 'p'; points = [ (1., 1.) ] } ]
  in
  check_true "single point renders" (contains_substring ~affix:"p" s)

let test_small_grid_rejected () =
  check_raises_invalid "tiny grid" (fun () ->
      ignore
        (Ascii_plot.plot ~width:2 ~height:2 ~title:"t" ~x_label:"x"
           ~y_label:"y" [ line_series ]))

let suite =
  [
    case "renders title, glyphs, legend" test_renders;
    case "log scale drops nonpositive" test_log_scale_drops_nonpositive;
    case "empty input rejected" test_empty_rejected;
    case "degenerate range" test_degenerate_range;
    case "small grid rejected" test_small_grid_rejected;
  ]
