(* The appendix proofs rest on a handful of calculus facts; each is
   machine-checked here on dense grids and random points, so the numeric
   lemma checkers in Lemmas are backed by the same arguments the paper
   uses.

   Appendix E (Proposition 2):  f(x) = x^(1/(2D)) - ln x / (2D) - 1 > 0
   for x > 1 (and f(1) = 0, f increasing).

   Appendix H (Lemma 7): with 0 < lambda < 1 and f(x) = x / (1 - lambda^x):
   - g(x) = 1 - (1 - x ln lambda) lambda^x > 0 on (0, 1]  (so f' > 0);
   - f'' > 0 on (0, 1]                                    (f' increasing);
   - 0 <= f'(1) <= 1  (the two log bounds on 1 - (1 + ln(1/lambda)) lambda);
   - the limit  f(x) -> 1 / ln (1/lambda)  as  x -> 0.

   Appendix G (Lemma 6): exp x > 1 + x for x > 0 (the single inequality
   step in Eq. 107). *)

open Helpers

(* ---------- Appendix E ---------- *)

(* Stable form: with u = ln x / (2D) > 0, f(x) = e^u - u - 1 = expm1 u - u,
   which stays nonnegative in floats even when u underflows the direct
   x ** (1/(2D)) evaluation. *)
let prop2_f ~two_delta x =
  let u = log x /. two_delta in
  Float.expm1 u -. u

let test_prop2_function_positive () =
  List.iter
    (fun two_delta ->
      close (Printf.sprintf "f(1) = 0 at 2D=%g" two_delta) 0.
        (prop2_f ~two_delta 1.);
      List.iter
        (fun x ->
          (* Strictly positive mathematically; in floats the quadratic
             term u^2/2 can underflow to exactly 0 for huge 2D. *)
          check_true
            (Printf.sprintf "f(%g) >= 0 at 2D=%g" x two_delta)
            (prop2_f ~two_delta x >= 0.);
          if two_delta <= 200. then
            check_true
              (Printf.sprintf "f(%g) > 0 at 2D=%g" x two_delta)
              (prop2_f ~two_delta x > 0.))
        [ 1.0001; 1.5; 2.; 10.; 1e3; 1e9 ])
    [ 2.; 8.; 200.; 2e13 ]

let test_prop2_monotone () =
  let two_delta = 10. in
  let xs = List.init 50 (fun i -> 1. +. (float_of_int i *. 0.37)) in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      check_true "f increasing" (prop2_f ~two_delta a <= prop2_f ~two_delta b);
      pairs rest
    | [ _ ] | [] -> ()
  in
  pairs xs

(* ---------- Appendix H ---------- *)

(* 1 - lambda^x = -expm1 (x ln lambda), stable for x ln lambda near 0. *)
let lemma7_f ~lambda x = x /. -.Float.expm1 (x *. log lambda)
let lemma7_g ~lambda x = 1. -. ((1. -. (x *. log lambda)) *. (lambda ** x))

let numeric_derivative f x =
  let h = 1e-6 *. Float.max 1e-3 (Float.abs x) in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let test_lemma7_g_positive () =
  List.iter
    (fun lambda ->
      List.iter
        (fun x ->
          check_true
            (Printf.sprintf "g(%g) > 0 at lambda=%g" x lambda)
            (lemma7_g ~lambda x > 0.))
        [ 0.01; 0.1; 0.5; 1. ];
      close (Printf.sprintf "g(0) = 0 at lambda=%g" lambda) 0.
        (lemma7_g ~lambda 1e-12))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_lemma7_f_increasing_convex () =
  List.iter
    (fun lambda ->
      let f = lemma7_f ~lambda in
      let xs = List.init 20 (fun i -> 0.05 +. (float_of_int i *. 0.05)) in
      List.iter
        (fun x ->
          check_true
            (Printf.sprintf "f' > 0 at x=%g lambda=%g" x lambda)
            (numeric_derivative f x > 0.))
        xs;
      (* f' increasing: compare numeric derivatives along the grid. *)
      let ds = List.map (numeric_derivative f) xs in
      let rec mono = function
        | a :: (b :: _ as rest) ->
          check_true "f' increasing" (a <= b +. 1e-6);
          mono rest
        | [ _ ] | [] -> ()
      in
      mono ds)
    [ 0.2; 0.5; 0.8 ]

let test_lemma7_fprime_at_one_bounded () =
  List.iter
    (fun lambda ->
      let fp1 =
        (1. -. ((1. +. log (1. /. lambda)) *. lambda)) /. ((1. -. lambda) ** 2.)
      in
      check_true
        (Printf.sprintf "0 <= f'(1) <= 1 at lambda=%g (%.6f)" lambda fp1)
        (fp1 >= -1e-12 && fp1 <= 1. +. 1e-12))
    [ 0.01; 0.1; 0.3; 0.5; 0.7; 0.9; 0.99 ]

let test_lemma7_limit () =
  (* lim_{x->0} f(x) = 1 / ln (1/lambda) (Eq. 116, L'Hospital). *)
  List.iter
    (fun lambda ->
      close ~rtol:1e-4
        (Printf.sprintf "limit at lambda=%g" lambda)
        (1. /. log (1. /. lambda))
        (lemma7_f ~lambda 1e-6))
    [ 0.1; 0.5; 0.9 ]

let test_lemma7_sandwich_from_calculus () =
  (* The conclusion (Eq. 82) re-derived from f directly:
     1/ln(1/lambda) <= f(1/(2D)) <= 1/ln(1/lambda) + 1/(2D). *)
  List.iter
    (fun (lambda, two_delta) ->
      let f = lemma7_f ~lambda (1. /. two_delta) in
      let base = 1. /. log (1. /. lambda) in
      let tol = 1e-12 *. Float.max 1. base in
      check_true "lower" (f >= base -. tol);
      check_true "upper" (f <= base +. (1. /. two_delta) +. tol))
    [ (0.2, 2.); (0.5, 8.); (0.9, 100.); (0.99, 2e6) ]

(* ---------- Appendix G ---------- *)

let test_lemma6_exp_inequality () =
  (* Checked as expm1 x > x: the direct exp x > 1 + x loses the strict
     inequality to rounding for tiny x. *)
  List.iter
    (fun x ->
      check_true (Printf.sprintf "expm1 %g > %g" x x) (Float.expm1 x > x))
    [ 1e-9; 0.1; 1.; 10. ]

let props =
  [
    prop "Prop 2's f positive for x > 1"
      QCheck2.Gen.(pair (float_range 1.000001 1e6) (float_range 2. 1e6))
      (fun (x, two_delta) -> prop2_f ~two_delta x >= 0.);
    prop "Lemma 7's g positive on (0, 1]"
      QCheck2.Gen.(pair (float_range 0.01 0.99) (float_range 0.001 1.))
      (fun (lambda, x) -> lemma7_g ~lambda x > 0.);
    prop "Lemma 7's sandwich over random (lambda, 2D)"
      QCheck2.Gen.(pair (float_range 0.01 0.99) (float_range 2. 1e6))
      (fun (lambda, two_delta) ->
        let f = lemma7_f ~lambda (1. /. two_delta) in
        let base = 1. /. log (1. /. lambda) in
        let tol = 1e-9 *. Float.max 1. base in
        f >= base -. tol && f <= base +. (1. /. two_delta) +. tol);
  ]

let suite =
  [
    case "Prop 2: f positive (App. E)" test_prop2_function_positive;
    case "Prop 2: f monotone" test_prop2_monotone;
    case "Lemma 7: g > 0 (App. H)" test_lemma7_g_positive;
    case "Lemma 7: f increasing and convex" test_lemma7_f_increasing_convex;
    case "Lemma 7: f'(1) in [0, 1]" test_lemma7_fprime_at_one_bounded;
    case "Lemma 7: L'Hospital limit (Eq. 116)" test_lemma7_limit;
    case "Lemma 7: sandwich re-derived" test_lemma7_sandwich_from_calculus;
    case "Lemma 6: exp x > 1 + x (App. G)" test_lemma6_exp_inequality;
  ]
  @ props
