(* Cross-library integration: the simulator and the analysis must tell one
   story.  These are the "does the theory predict the system we built?"
   tests — the heart of the reproduction. *)

open Helpers
module Sim = Nakamoto_sim
module Core = Nakamoto_core

let test_state_process_matches_eq44 () =
  (* Empirical convergence-opportunity rate vs abar^(2D) alpha1, with a
     CLT-scale tolerance. *)
  let cfg = { Sim.State_process.honest = 40; adversarial = 10; p = 0.01; delta = 3 } in
  let params = Core.Params.create ~n:50. ~delta:3. ~p:0.01 ~nu:0.2 in
  let rounds = 1_000_000 in
  let r = Sim.State_process.run ~rng:(rng ~seed:31L ()) cfg ~rounds in
  let rate = Core.Conv_chain.convergence_rate params in
  let got = float_of_int r.convergence_opportunities /. float_of_int rounds in
  (* Visits are positively correlated across rounds, so allow ~8 CLT sigmas. *)
  let sigma = sqrt (rate /. float_of_int rounds) in
  check_true
    (Printf.sprintf "C/T = %.6f vs %.6f (8 sigma = %.6f)" got rate (8. *. sigma))
    (Float.abs (got -. rate) < 8. *. sigma)

let test_execution_matches_state_process_law () =
  (* The full protocol execution's H/N classification follows the same law
     as the bare state process: equal-seed runs need not match, but their
     rates must agree within noise. *)
  let cfg =
    Sim.Config.with_c
      { Sim.Config.default with rounds = 20_000; seed = 17L }
      ~c:2.0
  in
  let r = Sim.Execution.run cfg in
  let sp =
    Sim.State_process.run ~rng:(rng ~seed:18L ())
      (Sim.Config.state_process_config cfg)
      ~rounds:20_000
  in
  let rate x = float_of_int x /. 20_000. in
  check_true "H-round rates agree"
    (Float.abs (rate r.h_rounds -. rate sp.h_rounds) < 0.02);
  check_true "conv rates agree"
    (Float.abs
       (rate r.convergence_opportunities -. rate sp.convergence_opportunities)
    < 0.01)

let test_theorem1_separates_sim_outcomes () =
  (* Above the bound: no violations.  Attack zone: violations.  Both facts
     already tested individually; here we tie them to the analytic margin
     computed from the *same* configuration. *)
  let safe = Sim.Scenarios.safe_zone ~seed:41L ~nu:0.25 in
  let params_safe = Core.Params.of_sim_config safe in
  check_true "analytic margin positive in safe zone"
    (Core.Bounds.theorem1_margin params_safe > 0.);
  let r_safe = Sim.Execution.run safe in
  check_int "no violations in safe zone" 0
    (Sim.Metrics.check_consistency r_safe).violations;
  let attack = Sim.Scenarios.attack_zone ~seed:41L ~nu:0.3 in
  let params_attack = Core.Params.of_sim_config attack in
  check_true "analytic margin negative in attack zone"
    (Core.Bounds.theorem1_margin params_attack < 0.);
  let r_attack = Sim.Execution.run attack in
  check_true "violations in attack zone"
    ((Sim.Metrics.check_consistency r_attack).violations > 0)

let test_convergence_beats_adversary_above_bound () =
  (* Lemma 1's premise, measured: in the safe zone, convergence
     opportunities outnumber adversary blocks over the window. *)
  let cfg = Sim.Scenarios.safe_zone ~seed:43L ~nu:0.25 in
  let sp =
    Sim.State_process.run ~rng:(rng ~seed:43L ())
      (Sim.Config.state_process_config cfg)
      ~rounds:200_000
  in
  check_true
    (Printf.sprintf "C = %d > A = %d" sp.convergence_opportunities
       sp.adversary_blocks)
    (sp.convergence_opportunities > sp.adversary_blocks);
  (* And the expectations predicted it (Ineq. 18 direction). *)
  let p = Core.Params.of_sim_config cfg in
  check_true "E C > E A"
    (Core.Conv_chain.convergence_rate p > Core.Params.adversary_rate p)

let test_window_concentration_ineq19 () =
  (* Ineq. 19 empirically: the fraction of windows whose C falls below
     (1 - delta2) E[C] is small and shrinks with window length. *)
  let cfg = { Sim.State_process.honest = 40; adversarial = 10; p = 0.01; delta = 3 } in
  let params = Core.Params.create ~n:50. ~delta:3. ~p:0.01 ~nu:0.2 in
  let shortfall_fraction ~window_length ~windows =
    let w =
      Sim.State_process.window_counts ~rng:(rng ~seed:51L ()) cfg ~windows
        ~window_length
    in
    let expect =
      Core.Conv_chain.expected_convergence_count params ~horizon:window_length
    in
    let threshold = 0.75 *. expect in
    let below =
      Array.fold_left
        (fun acc (c, _) -> if float_of_int c <= threshold then acc + 1 else acc)
        0 w
    in
    float_of_int below /. float_of_int windows
  in
  let short = shortfall_fraction ~window_length:400 ~windows:300 in
  let long = shortfall_fraction ~window_length:10_000 ~windows:300 in
  check_true
    (Printf.sprintf "shortfall shrinks with T (%.3f -> %.3f)" short long)
    (long <= short);
  check_true
    (Printf.sprintf "long windows rarely fall 25%% short (%.3f)" long)
    (long < 0.05)

let test_adversary_overshoot_ineq20 () =
  (* Ineq. 20 empirically vs the Arratia-Gordon analytic bound. *)
  let cfg = { Sim.State_process.honest = 40; adversarial = 10; p = 0.01; delta = 3 } in
  let window_length = 2_000 and windows = 500 in
  let w =
    Sim.State_process.window_counts ~rng:(rng ~seed:61L ()) cfg ~windows
      ~window_length
  in
  let mean_a = 0.01 *. 10. *. float_of_int window_length in
  let delta3 = 0.25 in
  let overshoots =
    Array.fold_left
      (fun acc (_, a) ->
        if float_of_int a >= (1. +. delta3) *. mean_a then acc + 1 else acc)
      0 w
  in
  let empirical = float_of_int overshoots /. float_of_int windows in
  let bound =
    Nakamoto_prob.Tail_bounds.binomial_upper_tail
      (Nakamoto_prob.Binomial.create ~trials:(window_length * 10) ~p:0.01)
      ~delta:delta3
  in
  check_true
    (Printf.sprintf "empirical %.4f <= bound %.4f" empirical bound)
    (empirical <= bound +. 0.02)

let test_classifier_on_execution_trace () =
  (* The suffix classifier and the pattern counter agree on a real
     protocol execution: counting Deep||H1 N^D completions from classes
     equals the streaming counter.  Derive states from an execution-scale
     state process trace. *)
  let delta = 3 in
  let cfg = { Sim.State_process.honest = 30; adversarial = 0; p = 0.02; delta } in
  let trace = Sim.State_process.run_trace ~rng:(rng ~seed:71L ()) cfg ~rounds:50_000 in
  let streaming =
    let p = Sim.Pattern.create ~delta in
    Sim.Pattern.observe_all p trace;
    Sim.Pattern.count p
  in
  (* Count via the classifier: a completion at t means classes t-delta-1
     = Deep, state t-delta is H1, and states t-delta+1..t all N. *)
  let classes = Core.Suffix_chain.classify_series ~delta trace in
  let by_classifier = ref 0 in
  Array.iteri
    (fun t _ ->
      if t >= delta + 1 then begin
        let all_n = ref true in
        for i = t - delta + 1 to t do
          if Sim.Round_state.is_h trace.(i) then all_n := false
        done;
        if
          !all_n
          && Sim.Round_state.is_h1 trace.(t - delta)
          && classes.(t - delta - 1) = Some Core.Suffix_chain.Deep
        then incr by_classifier
      end)
    trace;
  check_int "classifier count = streaming count" streaming !by_classifier

let test_cli_scenarios_all_run () =
  (* Every canned scenario must execute and produce internally consistent
     results (conservation, orphan-free termination). *)
  List.iter
    (fun cfg ->
      let r = Sim.Execution.run cfg in
      check_int "no orphans" 0 r.orphans_remaining;
      check_true "tips nonempty" (Array.length r.final_tips > 0);
      check_true "growth bounded by production"
        ((Sim.Metrics.chain_growth r).final_height
        <= r.honest_blocks + r.adversary_blocks))
    [
      Sim.Scenarios.honest_baseline ~seed:81L;
      Sim.Scenarios.safe_zone ~seed:81L ~nu:0.2;
      Sim.Scenarios.attack_zone ~seed:81L ~nu:0.35;
      Sim.Scenarios.split_world ~seed:81L;
      Sim.Scenarios.at_c ~seed:81L ~nu:0.1 ~c:2. ~rounds:2000;
      { (Sim.Scenarios.selfish ~seed:81L ~nu:0.35) with rounds = 4000 };
    ]

let suite =
  [
    case "state process matches Eq. 44" test_state_process_matches_eq44;
    case "execution follows the state law" test_execution_matches_state_process_law;
    case "Theorem 1 separates simulated outcomes" test_theorem1_separates_sim_outcomes;
    case "C > A above the bound (Lemma 1)" test_convergence_beats_adversary_above_bound;
    case "window concentration (Ineq. 19)" test_window_concentration_ineq19;
    case "adversary overshoot (Ineq. 20)" test_adversary_overshoot_ineq20;
    case "classifier agrees with pattern counter" test_classifier_on_execution_trace;
    case "all scenarios run clean" test_cli_scenarios_all_run;
  ]
