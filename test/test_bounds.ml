open Helpers
module Bounds = Nakamoto_core.Bounds
module Params = Nakamoto_core.Params

let test_neat_c_min_known_values () =
  (* nu = 1/3: 2 (2/3) / ln 2. *)
  close "nu = 1/3" (4. /. 3. /. log 2.) (Bounds.neat_c_min ~nu:(1. /. 3.));
  close "nu = 0.25" (1.5 /. log 3.) (Bounds.neat_c_min ~nu:0.25);
  check_raises_invalid "nu = 0" (fun () -> ignore (Bounds.neat_c_min ~nu:0.));
  check_raises_invalid "nu = 0.5" (fun () -> ignore (Bounds.neat_c_min ~nu:0.5))

let test_neat_numax_inverts () =
  List.iter
    (fun nu ->
      let c = Bounds.neat_c_min ~nu in
      close ~rtol:1e-8 (Printf.sprintf "inversion at nu=%g" nu) nu
        (Bounds.neat_numax ~c))
    [ 0.01; 0.1; 0.25; 0.4; 0.49 ];
  check_raises_invalid "c <= 0" (fun () -> ignore (Bounds.neat_numax ~c:0.))

let test_neat_numax_limits () =
  check_true "large c approaches 1/2" (Bounds.neat_numax ~c:1e6 > 0.499);
  check_true "tiny c approaches 0" (Bounds.neat_numax ~c:0.01 < 1e-4)

let test_pss_closed_form () =
  close "zero at c <= 2" 0. (Bounds.pss_numax_closed ~c:1.5);
  close "zero at exactly 2" 0. (Bounds.pss_numax_closed ~c:2.);
  (* c = 3: (2 - 3 + sqrt 3) / 2. *)
  close "c = 3" ((sqrt 3. -. 1.) /. 2.) (Bounds.pss_numax_closed ~c:3.);
  check_true "approaches 1/2" (Bounds.pss_numax_closed ~c:1e5 > 0.499)

let test_pss_attack_nu () =
  (* c = 1: (3 - sqrt 5)/2 = 0.381966... *)
  close "c = 1" ((3. -. sqrt 5.) /. 2.) (Bounds.pss_attack_nu ~c:1.);
  check_true "monotone"
    (Bounds.pss_attack_nu ~c:2. > Bounds.pss_attack_nu ~c:1.);
  (* Inverse relation: at nu = attack threshold, 1/c = 1/nu - 1/(1-nu). *)
  let c = 5. in
  let nu = Bounds.pss_attack_nu ~c in
  close ~rtol:1e-9 "defining identity" (1. /. c) ((1. /. nu) -. (1. /. (1. -. nu)))

let test_pss_exact_near_closed_at_scale () =
  (* At the paper's n and Delta, the exact PSS inversion should sit close
     to (and below, being exact) the closed approximation. *)
  List.iter
    (fun c ->
      let exact = Bounds.pss_numax_exact ~n:1e5 ~delta:1e13 ~c in
      let closed = Bounds.pss_numax_closed ~c in
      check_true
        (Printf.sprintf "close at c=%g (%.6f vs %.6f)" c exact closed)
        (Float.abs (exact -. closed) < 0.02))
    [ 3.; 5.; 10.; 50. ];
  check_raises_invalid "bad args" (fun () ->
      ignore (Bounds.pss_numax_exact ~n:0. ~delta:1. ~c:1.))

let test_pss_consistency_exact_condition () =
  (* Below its numax the exact condition holds; above, it fails. *)
  let n = 1e5 and delta = 1e13 and c = 5. in
  let numax = Bounds.pss_numax_exact ~n ~delta ~c in
  check_true "holds below"
    (Bounds.pss_consistency_holds (Params.of_c ~n ~delta ~nu:(numax *. 0.95) ~c));
  check_false "fails above"
    (Bounds.pss_consistency_holds (Params.of_c ~n ~delta ~nu:(Float.min 0.49 (numax *. 1.05)) ~c))

let test_theorem1_margin_sign () =
  let n = 1e5 and delta = 1e13 and c = 3. in
  let numax = Bounds.theorem1_numax ~n ~delta ~c () in
  check_true "positive margin below numax"
    (Bounds.theorem1_margin (Params.of_c ~n ~delta ~nu:(numax -. 0.01) ~c) > 0.);
  check_true "negative margin above numax"
    (Bounds.theorem1_margin (Params.of_c ~n ~delta ~nu:(numax +. 0.01) ~c) < 0.);
  check_true "nu = 0 trivially safe"
    (Bounds.theorem1_margin (Params.of_c ~n ~delta ~nu:0. ~c) = infinity);
  check_raises_invalid "delta1 < 0" (fun () ->
      ignore (Bounds.theorem1_margin ~delta1:(-0.1) (Params.of_c ~n ~delta ~nu:0.1 ~c)))

let test_theorem1_delta1_shrinks_region () =
  let n = 1e5 and delta = 1e13 and c = 3. in
  let loose = Bounds.theorem1_numax ~n ~delta ~c () in
  let tight = Bounds.theorem1_numax ~delta1:0.5 ~n ~delta ~c () in
  check_true "slack shrinks numax" (tight < loose)

let test_theorem1_approaches_neat () =
  (* The dimensional identity: as n, Delta grow at fixed c, Theorem 1's
     region converges to the neat bound. *)
  let c = 2.5 in
  let neat = Bounds.neat_numax ~c in
  let exact = Bounds.theorem1_numax ~n:1e5 ~delta:1e13 ~c () in
  close ~rtol:1e-5 "converged at paper scale" neat exact;
  let small = Bounds.theorem1_numax ~n:40. ~delta:4. ~c () in
  check_true "small systems tolerate less" (small < neat)

let test_theorem2_c_min () =
  let nu = 0.25 and delta = 1e13 in
  let v = Bounds.theorem2_c_min ~nu ~delta ~eps1:0.5 ~eps2:0.1 in
  (* Must be at least the first branch. *)
  let mu = 0.75 and l = log 3. in
  let first = ((2. *. mu /. l) +. 1e-13) *. 1.1 /. 0.5 in
  check_true "at least first branch" (v >= first -. 1e-9);
  check_raises_invalid "eps1 out of range" (fun () ->
      ignore (Bounds.theorem2_c_min ~nu ~delta ~eps1:1.5 ~eps2:0.1));
  check_raises_invalid "eps2 <= 0" (fun () ->
      ignore (Bounds.theorem2_c_min ~nu ~delta ~eps1:0.5 ~eps2:0.))

let test_theorem2_optimal_dominates () =
  (* The eps1-optimized value is <= the max-form at any particular eps1. *)
  let nu = 0.3 and delta = 1e6 and eps2 = 0.05 in
  let opt = Bounds.theorem2_c_min_optimal ~nu ~delta ~eps2 in
  List.iter
    (fun eps1 ->
      check_true
        (Printf.sprintf "optimal <= max-form at eps1=%g" eps1)
        (opt <= Bounds.theorem2_c_min ~nu ~delta ~eps1 ~eps2 +. 1e-9))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_theorem2_approaches_neat () =
  let nu = 0.25 in
  let neat = Bounds.neat_c_min ~nu in
  let exact = Bounds.theorem2_c_min_optimal ~nu ~delta:1e13 ~eps2:1e-12 in
  close ~rtol:1e-9 "Theorem 2 collapses to the neat bound" neat exact;
  (* At small Delta the finite correction is visible. *)
  let coarse = Bounds.theorem2_c_min_optimal ~nu ~delta:10. ~eps2:1e-12 in
  check_true "finite Delta costs extra" (coarse > neat +. 0.05)

let test_flawed_accounting_ablation () =
  (* The flawed per-block accounting overstates alpha1 (p mu n >= alpha1),
     making the flawed margin strictly larger — i.e. the error in [6] made
     the bound look better than it is. *)
  let p = Params.of_c ~n:100. ~delta:10. ~nu:0.3 ~c:1.5 in
  check_true "flawed alpha1 dominates"
    (Bounds.flawed_alpha1 p >= Params.alpha1 p);
  check_true "flawed margin larger"
    (Bounds.flawed_theorem1_margin p > Bounds.theorem1_margin p)

let props =
  [
    prop "ordering ours within [PSS, attack]" QCheck2.Gen.(float_range 0.11 100.)
      (fun c ->
        let ours = Bounds.neat_numax ~c in
        let pss = Bounds.pss_numax_closed ~c in
        let attack = Bounds.pss_attack_nu ~c in
        pss <= ours +. 1e-9 && ours <= attack +. 1e-9);
    prop "neat bound round trip" QCheck2.Gen.(float_range 0.02 0.48)
      (fun nu ->
        let c = Bounds.neat_c_min ~nu in
        Float.abs (Bounds.neat_numax ~c -. nu) < 1e-7);
    prop "theorem1_holds iff margin positive"
      QCheck2.Gen.(pair (float_range 0.05 0.45) (float_range 0.5 20.))
      (fun (nu, c) ->
        let p = Params.of_c ~n:1e4 ~delta:1e4 ~nu ~c in
        Bounds.theorem1_holds p = (Bounds.theorem1_margin p > 0.));
  ]

let suite =
  [
    case "neat c_min known values" test_neat_c_min_known_values;
    case "neat numax inverts c_min" test_neat_numax_inverts;
    case "neat numax limits" test_neat_numax_limits;
    case "PSS closed form" test_pss_closed_form;
    case "PSS attack threshold" test_pss_attack_nu;
    case "PSS exact near closed at paper scale" test_pss_exact_near_closed_at_scale;
    case "PSS exact condition sign" test_pss_consistency_exact_condition;
    case "Theorem 1 margin sign" test_theorem1_margin_sign;
    case "Theorem 1 delta1 slack" test_theorem1_delta1_shrinks_region;
    case "Theorem 1 converges to neat bound" test_theorem1_approaches_neat;
    case "Theorem 2 c_min" test_theorem2_c_min;
    case "Theorem 2 optimal eps1" test_theorem2_optimal_dominates;
    case "Theorem 2 converges to neat bound" test_theorem2_approaches_neat;
    case "flawed accounting ablation (DESIGN #3)" test_flawed_accounting_ablation;
  ]
  @ props
