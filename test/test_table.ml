open Helpers
module Table = Nakamoto_numerics.Table

let test_basic_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t [ Table.Int 1; Table.Text "x" ];
  Table.add_row t [ Table.Float 2.5; Table.Text "yy" ];
  check_int "row count" 2 (Table.row_count t);
  let s = Table.render t in
  check_true "title present" (String.length s > 0 && String.sub s 0 7 = "== demo");
  check_true "contains row" (Helpers.contains_substring ~affix:"2.5" s)

let test_arity_check () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  check_raises_invalid "wrong arity" (fun () -> Table.add_row t [ Table.Int 1 ])

let test_csv () =
  let t = Table.create ~title:"t" ~columns:[ "name"; "v" ] in
  Table.add_row t [ Table.Text "plain"; Table.Int 3 ];
  Table.add_row t [ Table.Text "with,comma"; Table.Int 4 ];
  Table.add_row t [ Table.Text "with\"quote"; Table.Int 5 ];
  let csv = Table.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "lines" 4 (List.length lines);
  check_true "header" (List.hd lines = "name,v");
  check_true "comma quoted"
    (Helpers.contains_substring ~affix:"\"with,comma\"" csv);
  check_true "quote doubled"
    (Helpers.contains_substring ~affix:"\"with\"\"quote\"" csv)

let test_save_csv () =
  let t = Table.create ~title:"t" ~columns:[ "x" ] in
  Table.add_row t [ Table.Sci 1.5e-20 ];
  let path = Filename.temp_file "table" ".csv" in
  Table.save_csv t ~path;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check_true "file contents" (Helpers.contains_substring ~affix:"1.5000e-20" content)

let test_cell_renderings () =
  Alcotest.(check string) "int" "7" (Table.cell_to_string (Table.Int 7));
  Alcotest.(check string) "sci" "1.2000e-03" (Table.cell_to_string (Table.Sci 1.2e-3));
  Alcotest.(check string) "log10 of 0" "0" (Table.cell_to_string (Table.Log10 neg_infinity));
  (* ln(1e-63) rendered back as a power of ten *)
  let s = Table.cell_to_string (Table.Log10 (log 1e-63)) in
  check_true "log10 rendering" (s = "1e-63.00")

let suite =
  [
    case "render" test_basic_render;
    case "arity check" test_arity_check;
    case "csv escaping" test_csv;
    case "save_csv" test_save_csv;
    case "cell renderings" test_cell_renderings;
  ]
