(* End-to-end serve subsystem tests: daemon, workers and client run in
   separate domains talking over real sockets — Unix-domain and TCP
   loopback.  (Domains, not forks: OCaml forbids [Unix.fork] once any
   domain has ever been spawned, and the campaign engine spawns domains
   for [~jobs].)

   The headline is topology independence: the same spec + seed must
   produce a byte-identical journal whether the campaign runs in
   process, through a daemon with one socket worker, through TCP, or
   through a fleet where workers die or wedge mid-lease. *)

open Helpers
module Campaign = Nakamoto_campaign
module Spec = Campaign.Spec
module Serve = Nakamoto_serve
module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message
module Aggregate = Campaign.Aggregate

let tiny_spec =
  {
    Spec.default with
    Spec.ps = [ 0.02 ];
    ns = [ 8 ];
    deltas = [ 2 ];
    nus = [ 0.1; 0.3 ];
    trials_per_cell = 4;
    rounds = 120;
    seed = 77L;
    shard_size = 1;
  }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let temp_path tag suffix =
  let path = Filename.temp_file ("nakamoto_serve_" ^ tag) suffix in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path
let silent _ = ()

(* The in-process journal every daemon topology must reproduce
   byte-for-byte.  Computed once. *)
let oracle =
  lazy
    (let j = temp_path "inproc" ".jsonl" in
     ignore
       (Campaign.Campaign.run ~jobs:2 ~journal_path:j ~log:silent tiny_spec);
     let s = read_file j in
     cleanup j;
     s)

(* Domain bodies report an exit-code-like int so the assertions read the
   same as they would for processes. *)
let spawn_daemon ?socket ?tcp ?on_tcp_port ?telemetry ?surface
    ?(lease_timeout = 5.) ?heartbeat_interval ?heartbeat_timeout () =
  Domain.spawn (fun () ->
      try
        ignore
          (Serve.Coordinator.serve ?socket ?tcp ?on_tcp_port ~max_campaigns:1
             ~lease_timeout ?heartbeat_interval ?heartbeat_timeout ?telemetry
             ?surface ~log:silent ());
        0
      with _ -> 3)

let spawn_worker ~addr ?lease_batch ?fault () =
  Domain.spawn (fun () ->
      try
        ignore (Serve.Worker.run ~addr ?lease_batch ?fault ~log:silent ());
        0
      with _ -> 70)

let submit ?(resume = false) ?on_progress ~addr ~journal () =
  match Serve.Client.submit ~addr ~journal ~resume ?on_progress tiny_spec with
  | Ok (table, jpath) ->
    check_true "table is rendered" (String.length table > 0);
    check_true "journal path echoed" (jpath = Some journal)
  | Error e -> Alcotest.failf "submit failed: %s" e

(* A hand-driven worker connection, for the tests that need a peer the
   real [Worker.run] would never be: one that wedges, or one that
   answers after its lease expired. *)
let worker_conn ~addr =
  let fd = Serve.Conn.connect ~addr ~timeout:10. in
  let ch = Frame.Channel.of_fd fd in
  (match Serve.Conn.handshake ~role:Msg.Worker ch with
  | Ok () -> ()
  | Error e -> Alcotest.failf "worker handshake: %s" e);
  (fd, ch)

let rec await_grant ch =
  match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Lease_grant { grants = [ g ]; spec }) -> (g, spec)
  | `Msg (Msg.Lease_grant _) -> Alcotest.fail "asked for one lease, got more"
  | `Msg (Msg.Ping { nonce }) ->
    Msg.send ch (Msg.Pong { nonce });
    await_grant ch
  | `Msg (Msg.No_work _) ->
    Unix.sleepf 0.05;
    Msg.send ch (Msg.Lease_request { max = 1 });
    await_grant ch
  | `Timeout -> await_grant ch
  | _ -> Alcotest.fail "unexpected reply to a lease request"

let obtain_grant ch =
  Msg.send ch (Msg.Lease_request { max = 1 });
  await_grant ch

(* Stay connected and responsive (pongs flow) without returning the
   shard — exactly what a slow-but-alive worker looks like. *)
let idle_answering_pings ch ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  while Unix.gettimeofday () < deadline do
    match Msg.recv ~timeout:0.2 ch with
    | `Msg (Msg.Ping { nonce }) -> Msg.send ch (Msg.Pong { nonce })
    | `Timeout | `Msg _ -> ()
    | `Eof -> Alcotest.fail "daemon hung up on a live worker"
    | `Bad m -> Alcotest.failf "protocol error: %s" m
  done

let test_topology_independence () =
  let oracle = Lazy.force oracle in

  (* (a) daemon + one socket worker leasing in batches, daemon-side
     telemetry on *)
  let socket = temp_path "b" ".sock" in
  let j_one = temp_path "one" ".jsonl" in
  let teldir = Filename.temp_file "nakamoto_serve_tel" "" in
  Sys.remove teldir;
  let daemon = spawn_daemon ~socket ~telemetry:teldir () in
  let addr = Serve.Conn.Unix_path socket in
  let worker = spawn_worker ~addr ~lease_batch:3 () in
  let progress_frames = ref 0 in
  submit ~addr ~journal:j_one ~on_progress:(fun _ -> incr progress_frames) ();
  check_int "daemon exits cleanly" 0 (Domain.join daemon);
  check_int "worker exits cleanly on daemon close" 0 (Domain.join worker);
  check_true "progress was streamed" (!progress_frames > 0);
  Alcotest.(check string) "one-worker journal = in-process journal" oracle
    (read_file j_one);
  let prom = read_file (Filename.concat teldir "telemetry.prom") in
  check_true "daemon counters exported"
    (contains_substring ~affix:"serve_leases_granted_total" prom);
  check_true "fold span exported"
    (contains_substring ~affix:"serve_fold_seconds" prom);
  check_true "worker shard spans exported"
    (contains_substring ~affix:"campaign_shard_seconds" prom);

  (* (b) daemon + a worker that dies mid-lease + a healthy worker.  The
     faulty worker joins alone first, so it necessarily leases shard 0
     and dies computing it; the healthy worker then absorbs the
     requeued lease. *)
  let socket = temp_path "c" ".sock" in
  let j_kill = temp_path "kill" ".jsonl" in
  let daemon = spawn_daemon ~socket () in
  let addr = Serve.Conn.Unix_path socket in
  let faulty =
    spawn_worker ~addr
      ~fault:(Campaign.Faultplan.Raising_worker { task = 0; failures = 1 })
      ()
  in
  (* Submit from its own domain so this one can sequence worker startup
     around the faulty worker's death. *)
  let client =
    Domain.spawn (fun () ->
        match Serve.Client.submit ~addr ~journal:j_kill tiny_spec with
        | Ok _ -> 0
        | Error _ | (exception _) -> 4)
  in
  check_int "faulty worker died mid-lease" 70 (Domain.join faulty);
  let healthy = spawn_worker ~addr () in
  check_int "client saw Done" 0 (Domain.join client);
  check_int "daemon exits cleanly" 0 (Domain.join daemon);
  check_int "healthy worker exits cleanly" 0 (Domain.join healthy);
  Alcotest.(check string) "kill-mid-lease journal = in-process journal"
    oracle (read_file j_kill);

  (* (c) server-side resume: a fresh daemon over the finished journal
     recomputes nothing and the bytes stay identical. *)
  let socket = temp_path "d" ".sock" in
  let daemon = spawn_daemon ~socket () in
  submit ~resume:true ~addr:(Serve.Conn.Unix_path socket) ~journal:j_kill ();
  check_int "resume daemon exits cleanly" 0 (Domain.join daemon);
  Alcotest.(check string) "resumed journal untouched" oracle
    (read_file j_kill);

  List.iter cleanup
    [
      j_one; j_kill;
      Filename.concat teldir "telemetry.prom";
      Filename.concat teldir "telemetry.jsonl";
    ];
  (try Unix.rmdir teldir with Unix.Unix_error _ -> ())

let await_tcp_addr port =
  let rec go n =
    if Atomic.get port = 0 then
      if n > 200 then Alcotest.fail "daemon never reported its TCP port"
      else begin
        Unix.sleepf 0.05;
        go (n + 1)
      end
  in
  go 0;
  Serve.Conn.Tcp ("127.0.0.1", Atomic.get port)

let test_tcp_topology () =
  let oracle = Lazy.force oracle in

  (* (a) TCP loopback, one worker: same bytes as the Unix-socket and
     in-process runs.  Port 0 — the kernel picks, the daemon reports. *)
  let j_tcp = temp_path "tcp" ".jsonl" in
  let port = Atomic.make 0 in
  let daemon =
    spawn_daemon ~tcp:("127.0.0.1", 0)
      ~on_tcp_port:(fun p -> Atomic.set port p)
      ()
  in
  let addr = await_tcp_addr port in
  let worker = spawn_worker ~addr () in
  submit ~addr ~journal:j_tcp ();
  check_int "tcp daemon exits cleanly" 0 (Domain.join daemon);
  check_int "tcp worker exits cleanly" 0 (Domain.join worker);
  Alcotest.(check string) "tcp journal = in-process journal" oracle
    (read_file j_tcp);

  (* (b) TCP with a kill mid-lease, same sequencing as the Unix-socket
     leg. *)
  let j_tcp_kill = temp_path "tcpkill" ".jsonl" in
  let port = Atomic.make 0 in
  let daemon =
    spawn_daemon ~tcp:("127.0.0.1", 0)
      ~on_tcp_port:(fun p -> Atomic.set port p)
      ()
  in
  let addr = await_tcp_addr port in
  let faulty =
    spawn_worker ~addr
      ~fault:(Campaign.Faultplan.Raising_worker { task = 0; failures = 1 })
      ()
  in
  let client =
    Domain.spawn (fun () ->
        match Serve.Client.submit ~addr ~journal:j_tcp_kill tiny_spec with
        | Ok _ -> 0
        | Error _ | (exception _) -> 4)
  in
  check_int "faulty tcp worker died mid-lease" 70 (Domain.join faulty);
  let healthy = spawn_worker ~addr () in
  check_int "tcp client saw Done" 0 (Domain.join client);
  check_int "tcp daemon exits cleanly" 0 (Domain.join daemon);
  check_int "healthy tcp worker exits cleanly" 0 (Domain.join healthy);
  Alcotest.(check string) "tcp kill-mid-lease journal = in-process journal"
    oracle (read_file j_tcp_kill);
  List.iter cleanup [ j_tcp; j_tcp_kill ]

let test_wedged_peer () =
  (* A worker that takes a lease and then stops reading entirely.  The
     lease timeout is a deliberately absurd 120 s: if the campaign still
     completes promptly, the recovery was the heartbeat (probe at 0.5 s,
     drop after 1.5 s of silence), not lease expiry — and the wedged
     peer never blocked the select loop for the healthy worker or the
     client. *)
  let oracle = Lazy.force oracle in
  let socket = temp_path "wedge" ".sock" in
  let j = temp_path "wedge" ".jsonl" in
  let teldir = Filename.temp_file "nakamoto_wedge_tel" "" in
  Sys.remove teldir;
  let daemon =
    spawn_daemon ~socket ~telemetry:teldir ~lease_timeout:120.
      ~heartbeat_interval:0.5 ~heartbeat_timeout:1.5 ()
  in
  let addr = Serve.Conn.Unix_path socket in
  let started = Unix.gettimeofday () in
  let client =
    Domain.spawn (fun () ->
        match Serve.Client.submit ~addr ~journal:j tiny_spec with
        | Ok _ -> 0
        | Error _ | (exception _) -> 4)
  in
  let wedged_fd, wedged_ch = worker_conn ~addr in
  let _grant = obtain_grant wedged_ch in
  (* From here the wedged peer neither reads nor writes. *)
  let healthy = spawn_worker ~addr () in
  check_int "client saw Done despite the wedged peer" 0 (Domain.join client);
  let elapsed = Unix.gettimeofday () -. started in
  check_true "recovery came from the heartbeat, not the 120 s lease timeout"
    (elapsed < 60.);
  check_int "daemon exits cleanly" 0 (Domain.join daemon);
  check_int "healthy worker exits cleanly" 0 (Domain.join healthy);
  (try Unix.close wedged_fd with Unix.Unix_error _ -> ());
  Alcotest.(check string) "wedged-peer journal = in-process journal" oracle
    (read_file j);
  let prom = read_file (Filename.concat teldir "telemetry.prom") in
  check_true "the drop is accounted as a heartbeat drop"
    (contains_substring ~affix:"serve_heartbeat_drops_total 1" prom);
  List.iter cleanup
    [
      j;
      Filename.concat teldir "telemetry.prom";
      Filename.concat teldir "telemetry.jsonl";
    ];
  (try Unix.rmdir teldir with Unix.Unix_error _ -> ())

let test_late_result () =
  (* A worker holds its lease past expiry (answering heartbeats, so it
     is alive — just slow), then returns the shard.  Nobody else has
     re-leased it, so the late copy must be accepted, not discarded:
     shards are pure functions of (seed, cell, trial). *)
  let oracle = Lazy.force oracle in
  let socket = temp_path "late" ".sock" in
  let j = temp_path "late" ".jsonl" in
  let teldir = Filename.temp_file "nakamoto_late_tel" "" in
  Sys.remove teldir;
  let daemon = spawn_daemon ~socket ~telemetry:teldir ~lease_timeout:1. () in
  let addr = Serve.Conn.Unix_path socket in
  let client =
    Domain.spawn (fun () ->
        match Serve.Client.submit ~addr ~journal:j tiny_spec with
        | Ok _ -> 0
        | Error _ | (exception _) -> 4)
  in
  let fd, ch = worker_conn ~addr in
  let { Msg.lease_id; shard }, spec = obtain_grant ch in
  idle_answering_pings ch ~seconds:2.5;
  (* The lease is long expired; compute and answer anyway. *)
  let cells = Spec.cells spec in
  let agg = Campaign.Campaign.run_shard spec cells shard in
  Msg.send ch
    (Msg.Cell_result
       {
         Msg.res_lease = lease_id;
         res_shard = shard.Campaign.Shard.id;
         res_aggregate = Aggregate.snapshot agg;
         res_telemetry = [];
       });
  let healthy = spawn_worker ~addr () in
  check_int "client saw Done" 0 (Domain.join client);
  check_int "daemon exits cleanly" 0 (Domain.join daemon);
  check_int "healthy worker exits cleanly" 0 (Domain.join healthy);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Alcotest.(check string) "late-result journal = in-process journal" oracle
    (read_file j);
  let prom = read_file (Filename.concat teldir "telemetry.prom") in
  check_true "the late result was accepted, not dropped as stale"
    (contains_substring ~affix:"serve_late_results_total 1" prom);
  check_true "at least one lease expired on the way"
    (contains_substring ~affix:"serve_leases_expired_total" prom);
  List.iter cleanup
    [
      j;
      Filename.concat teldir "telemetry.prom";
      Filename.concat teldir "telemetry.jsonl";
    ];
  (try Unix.rmdir teldir with Unix.Unix_error _ -> ())

let test_protocol_edges () =
  let socket = temp_path "edges" ".sock" in
  let daemon = spawn_daemon ~socket () in
  let addr = Serve.Conn.Unix_path socket in

  (* Version mismatch: typed Error frame, then the server hangs up. *)
  let fd = Serve.Conn.connect ~addr ~timeout:10. in
  let ch = Frame.Channel.of_fd fd in
  Msg.send ch (Msg.Hello { version = 99; role = Msg.Client });
  (match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Error e) ->
    check_true "names both versions"
      (contains_substring ~affix:"99" e
      && contains_substring ~affix:"version" e)
  | _ -> Alcotest.fail "version mismatch must get a typed Error frame");
  (match Msg.recv ~timeout:10. ch with
  | `Eof -> ()
  | _ -> Alcotest.fail "server must hang up after a version mismatch");
  Unix.close fd;

  (* Unknown tag after a clean handshake: typed Error, connection
     survives and still answers queries. *)
  let fd = Serve.Conn.connect ~addr ~timeout:10. in
  let ch = Frame.Channel.of_fd fd in
  (match Serve.Conn.handshake ~role:Msg.Client ch with
  | Ok () -> ()
  | Error e -> Alcotest.failf "handshake: %s" e);
  Frame.Channel.write ch ~tag:200 ~payload:"junk";
  (match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Error e) ->
    check_true "unknown tag named"
      (contains_substring ~affix:"unknown message tag" e)
  | _ -> Alcotest.fail "unknown tag must get a typed Error reply");
  Msg.send ch
    (Msg.Query_assess { Msg.q_nu = 0.25; q_c = 10.; q_n = 1e5; q_delta = 1e13 });
  (match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Assess_reply a) ->
    Alcotest.(check string) "still serving after the bad frame" "SAFE"
      a.Msg.a_zone
  | _ -> Alcotest.fail "connection must survive an unknown tag");
  Unix.close fd;

  (* The public assess client. *)
  (match Serve.Client.assess ~addr ~nu:0.4 ~c:0.2 ~n:1e5 ~delta:1e13 () with
  | Ok a ->
    Alcotest.(check string) "deep in attack territory" "BROKEN" a.Msg.a_zone;
    check_true "rendered verdict included" (String.length a.Msg.a_rendered > 0)
  | Error e -> Alcotest.failf "assess: %s" e);

  (* Drain the daemon with a real campaign (it serves exactly one, then
     returns) — the bad frames above must not have poisoned it. *)
  let journal = temp_path "edges" ".jsonl" in
  let worker = spawn_worker ~addr () in
  submit ~addr ~journal ();
  check_int "daemon exits cleanly after the abuse" 0 (Domain.join daemon);
  check_int "worker exits cleanly" 0 (Domain.join worker);
  cleanup journal;
  cleanup socket

(* Surface-backed daemon: assess RPCs inside a certified cell are served
   from the table (the rendered verdict says so), everything else still
   routes through the exact solver — and the campaign path is
   untouched. *)
let test_surface_backed_assess () =
  let module Surface = Nakamoto_surface in
  let axis lo hi scale =
    Surface.Grid.axis ~lo ~hi ~count:2 ~scale
  in
  let table =
    Surface.Table.build
      (Surface.Grid.create
         ~p:(axis 1.7e-6 1.8e-6 Surface.Grid.Log)
         ~n:(axis 115. 125. Surface.Grid.Log)
         ~delta:(axis 1870. 1930. Surface.Grid.Log)
         ~nu:(axis 0.0136 0.0144 Surface.Grid.Linear))
  in
  let _, _, full = Surface.Table.conclusive_counts table in
  check_int "the cell certifies" 1 full;
  let socket = temp_path "surface" ".sock" in
  let addr = Serve.Conn.Unix_path socket in
  let daemon = spawn_daemon ~socket ~surface:table () in
  (* c = 1/(p n Delta) at the cell's interior point. *)
  let c = 1. /. (1.75e-6 *. 120. *. 1900.) in
  (match Serve.Client.assess ~addr ~nu:0.014 ~c ~n:120. ~delta:1900. () with
  | Ok a ->
    Alcotest.(check string) "cached zone" "SAFE" a.Msg.a_zone;
    check_true "served from the table"
      (contains_substring ~affix:"(cached)" a.Msg.a_rendered);
    check_true "certified depth" (a.Msg.a_confirmations = Some 3)
  | Error e -> Alcotest.failf "surface assess: %s" e);
  (match Serve.Client.assess ~addr ~nu:0.4 ~c:0.2 ~n:1e5 ~delta:1e13 () with
  | Ok a ->
    Alcotest.(check string) "fallback zone" "BROKEN" a.Msg.a_zone;
    check_false "outside the box is not cached"
      (contains_substring ~affix:"(cached)" a.Msg.a_rendered)
  | Error e -> Alcotest.failf "fallback assess: %s" e);
  let journal = temp_path "surface" ".jsonl" in
  let worker = spawn_worker ~addr () in
  submit ~addr ~journal ();
  Alcotest.(check string)
    "campaign journal unaffected by the surface" (Lazy.force oracle)
    (read_file journal);
  check_int "daemon exits cleanly" 0 (Domain.join daemon);
  check_int "worker exits cleanly" 0 (Domain.join worker);
  cleanup journal;
  cleanup socket

let suite =
  [
    case "journal is byte-identical across topologies (incl. worker kill)"
      test_topology_independence;
    case "tcp loopback reproduces the journal byte-for-byte"
      test_tcp_topology;
    case "a wedged peer neither blocks the loop nor keeps its lease"
      test_wedged_peer;
    case "a late result for a still-pending shard is accepted"
      test_late_result;
    case "version mismatch and unknown tags get typed Error frames"
      test_protocol_edges;
    case "surface-backed daemon serves cached verdicts"
      test_surface_backed_assess;
  ]
