(* End-to-end serve subsystem tests: daemon, workers and client run in
   separate domains talking over a real Unix-domain socket.  (Domains,
   not forks: OCaml forbids [Unix.fork] once any domain has ever been
   spawned, and the campaign engine spawns domains for [~jobs].)

   The headline is topology independence: the same spec + seed must
   produce a byte-identical journal whether the campaign runs in
   process, through a daemon with one socket worker, or through a daemon
   with several workers one of which dies mid-lease. *)

open Helpers
module Campaign = Nakamoto_campaign
module Spec = Campaign.Spec
module Serve = Nakamoto_serve
module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message

let tiny_spec =
  {
    Spec.default with
    Spec.ps = [ 0.02 ];
    ns = [ 8 ];
    deltas = [ 2 ];
    nus = [ 0.1; 0.3 ];
    trials_per_cell = 4;
    rounds = 120;
    seed = 77L;
    shard_size = 1;
  }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let temp_path tag suffix =
  let path = Filename.temp_file ("nakamoto_serve_" ^ tag) suffix in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path
let silent _ = ()

(* Domain bodies report an exit-code-like int so the assertions read the
   same as they would for processes. *)
let spawn_daemon ~socket ?telemetry () =
  Domain.spawn (fun () ->
      try
        ignore
          (Serve.Coordinator.serve ~socket ~max_campaigns:1 ~lease_timeout:5.
             ?telemetry ~log:silent ());
        0
      with _ -> 3)

let spawn_worker ~socket ?fault () =
  Domain.spawn (fun () ->
      try
        ignore (Serve.Worker.run ~socket ?fault ~log:silent ());
        0
      with _ -> 70)

let submit ?(resume = false) ?on_progress ~socket ~journal () =
  match Serve.Client.submit ~socket ~journal ~resume ?on_progress tiny_spec with
  | Ok (table, jpath) ->
    check_true "table is rendered" (String.length table > 0);
    check_true "journal path echoed" (jpath = Some journal)
  | Error e -> Alcotest.failf "submit failed: %s" e

let test_topology_independence () =
  (* (a) in process *)
  let j_inproc = temp_path "inproc" ".jsonl" in
  ignore
    (Campaign.Campaign.run ~jobs:2 ~journal_path:j_inproc ~log:silent
       tiny_spec);
  let oracle = read_file j_inproc in

  (* (b) daemon + one socket worker, daemon-side telemetry on *)
  let socket = temp_path "b" ".sock" in
  let j_one = temp_path "one" ".jsonl" in
  let teldir = Filename.temp_file "nakamoto_serve_tel" "" in
  Sys.remove teldir;
  let daemon = spawn_daemon ~socket ~telemetry:teldir () in
  let worker = spawn_worker ~socket () in
  let progress_frames = ref 0 in
  submit ~socket ~journal:j_one ~on_progress:(fun _ -> incr progress_frames) ();
  check_int "daemon exits cleanly" 0 (Domain.join daemon);
  check_int "worker exits cleanly on daemon close" 0 (Domain.join worker);
  check_true "progress was streamed" (!progress_frames > 0);
  Alcotest.(check string) "one-worker journal = in-process journal" oracle
    (read_file j_one);
  let prom = read_file (Filename.concat teldir "telemetry.prom") in
  check_true "daemon counters exported"
    (contains_substring ~affix:"serve_leases_granted_total" prom);
  check_true "fold span exported"
    (contains_substring ~affix:"serve_fold_seconds" prom);
  check_true "worker shard spans exported"
    (contains_substring ~affix:"campaign_shard_seconds" prom);

  (* (c) daemon + a worker that dies mid-lease + a healthy worker.  The
     faulty worker joins alone first, so it necessarily leases shard 0
     and dies computing it; the healthy worker then absorbs the
     requeued lease. *)
  let socket = temp_path "c" ".sock" in
  let j_kill = temp_path "kill" ".jsonl" in
  let daemon = spawn_daemon ~socket () in
  let faulty =
    spawn_worker ~socket
      ~fault:(Campaign.Faultplan.Raising_worker { task = 0; failures = 1 })
      ()
  in
  (* Submit from its own domain so this one can sequence worker startup
     around the faulty worker's death. *)
  let client =
    Domain.spawn (fun () ->
        match Serve.Client.submit ~socket ~journal:j_kill tiny_spec with
        | Ok _ -> 0
        | Error _ | (exception _) -> 4)
  in
  check_int "faulty worker died mid-lease" 70 (Domain.join faulty);
  let healthy = spawn_worker ~socket () in
  check_int "client saw Done" 0 (Domain.join client);
  check_int "daemon exits cleanly" 0 (Domain.join daemon);
  check_int "healthy worker exits cleanly" 0 (Domain.join healthy);
  Alcotest.(check string) "kill-mid-lease journal = in-process journal"
    oracle (read_file j_kill);

  (* (d) server-side resume: a fresh daemon over the finished journal
     recomputes nothing and the bytes stay identical. *)
  let socket = temp_path "d" ".sock" in
  let daemon = spawn_daemon ~socket () in
  submit ~resume:true ~socket ~journal:j_kill ();
  check_int "resume daemon exits cleanly" 0 (Domain.join daemon);
  Alcotest.(check string) "resumed journal untouched" oracle
    (read_file j_kill);

  List.iter cleanup
    [
      j_inproc; j_one; j_kill;
      Filename.concat teldir "telemetry.prom";
      Filename.concat teldir "telemetry.jsonl";
    ];
  (try Unix.rmdir teldir with Unix.Unix_error _ -> ())

let test_protocol_edges () =
  let socket = temp_path "edges" ".sock" in
  let daemon = spawn_daemon ~socket () in

  (* Version mismatch: typed Error frame, then the server hangs up. *)
  let fd = Serve.Conn.connect ~socket ~timeout:10. in
  let ch = Frame.Channel.of_fd fd in
  Msg.send ch (Msg.Hello { version = 99; role = Msg.Client });
  (match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Error e) ->
    check_true "names both versions"
      (contains_substring ~affix:"99" e
      && contains_substring ~affix:"version" e)
  | _ -> Alcotest.fail "version mismatch must get a typed Error frame");
  (match Msg.recv ~timeout:10. ch with
  | `Eof -> ()
  | _ -> Alcotest.fail "server must hang up after a version mismatch");
  Unix.close fd;

  (* Unknown tag after a clean handshake: typed Error, connection
     survives and still answers queries. *)
  let fd = Serve.Conn.connect ~socket ~timeout:10. in
  let ch = Frame.Channel.of_fd fd in
  (match Serve.Conn.handshake ~role:Msg.Client ch with
  | Ok () -> ()
  | Error e -> Alcotest.failf "handshake: %s" e);
  Frame.Channel.write ch ~tag:200 ~payload:"junk";
  (match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Error e) ->
    check_true "unknown tag named"
      (contains_substring ~affix:"unknown message tag" e)
  | _ -> Alcotest.fail "unknown tag must get a typed Error reply");
  Msg.send ch
    (Msg.Query_assess { Msg.q_nu = 0.25; q_c = 10.; q_n = 1e5; q_delta = 1e13 });
  (match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Assess_reply a) ->
    Alcotest.(check string) "still serving after the bad frame" "SAFE"
      a.Msg.a_zone
  | _ -> Alcotest.fail "connection must survive an unknown tag");
  Unix.close fd;

  (* The public assess client. *)
  (match Serve.Client.assess ~socket ~nu:0.4 ~c:0.2 ~n:1e5 ~delta:1e13 () with
  | Ok a ->
    Alcotest.(check string) "deep in attack territory" "BROKEN" a.Msg.a_zone;
    check_true "rendered verdict included" (String.length a.Msg.a_rendered > 0)
  | Error e -> Alcotest.failf "assess: %s" e);

  (* Drain the daemon with a real campaign (it serves exactly one, then
     returns) — the bad frames above must not have poisoned it. *)
  let journal = temp_path "edges" ".jsonl" in
  let worker = spawn_worker ~socket () in
  submit ~socket ~journal ();
  check_int "daemon exits cleanly after the abuse" 0 (Domain.join daemon);
  check_int "worker exits cleanly" 0 (Domain.join worker);
  cleanup journal;
  cleanup socket

let suite =
  [
    case "journal is byte-identical across topologies (incl. worker kill)"
      test_topology_independence;
    case "version mismatch and unknown tags get typed Error frames"
      test_protocol_edges;
  ]
