open Helpers
module Lemmas = Nakamoto_core.Lemmas
module Bounds = Nakamoto_core.Bounds
module Params = Nakamoto_core.Params

let mk ~nu ~delta ~n ~c = Params.of_c ~n ~delta ~nu ~c

let test_delta4_delta1_positive () =
  let l = log 3. in
  let delta4 = Lemmas.delta4_default ~eps1:0.5 ~eps2:0.1 ~l in
  check_true "delta4 positive" (delta4 > 0.);
  check_true "delta4 < l (Ineq. 73)" (delta4 < l);
  let delta1 = Lemmas.delta1_of ~delta4 ~eps1:0.5 ~l in
  check_true "delta1 positive" (delta1 > 0.);
  check_raises_invalid "bad eps1" (fun () ->
      ignore (Lemmas.delta4_default ~eps1:0. ~eps2:0.1 ~l));
  check_raises_invalid "bad l" (fun () ->
      ignore (Lemmas.delta4_default ~eps1:0.5 ~eps2:0.1 ~l:0.))

let test_delta4_matches_eq60 () =
  let eps1 = 0.3 and eps2 = 0.2 and l = log 4. in
  close "Eq. 60 verbatim"
    ((eps1 +. eps2) *. l /. (eps1 +. eps2 +. ((1. -. eps1) *. (l +. 1.))))
    (Lemmas.delta4_default ~eps1 ~eps2 ~l)

let test_pn_condition () =
  (* c chosen from the second branch of Ineq. 11 makes (50) hold exactly. *)
  let nu = 0.25 and delta = 1e4 and n = 1e4 and eps1 = 0.5 in
  let l = log 3. and mu = 0.75 in
  let c_branch2 = (l +. 1.) *. mu /. (eps1 *. delta *. l) in
  let p_at c = mk ~nu ~delta ~n ~c in
  check_true "holds at branch-2 c"
    (Lemmas.pn_condition_holds ~eps1 (p_at (c_branch2 *. 1.0001)));
  check_false "fails below"
    (Lemmas.pn_condition_holds ~eps1 (p_at (c_branch2 *. 0.999)))

let test_lemma2_implication () =
  (* Lemma 2: premise (66) forces conclusion (10) whenever 0 < p mu n < 1. *)
  let check nu delta n c delta1 =
    let p = mk ~nu ~delta ~n ~c in
    if Lemmas.lemma2_premise ~delta1 p then
      check_true
        (Printf.sprintf "L2 at nu=%g c=%g" nu c)
        (Lemmas.lemma2_conclusion ~delta1 p)
  in
  List.iter
    (fun (nu, delta, n, c, d1) -> check nu delta n c d1)
    [
      (0.25, 100., 1e3, 3., 0.1); (0.4, 10., 100., 5., 0.01);
      (0.1, 1e6, 1e5, 1., 0.5); (0.3, 1e13, 1e5, 2., 0.2);
    ]

let test_lemma4_bound_ordering () =
  (* Lemmas 5-7 assert bound(74) <= bound(77) <= bound(80) <= bound(83). *)
  List.iter
    (fun (nu, delta, n, c) ->
      let p = mk ~nu ~delta ~n ~c in
      let l = Params.log_ratio p in
      let delta4 = Lemmas.delta4_default ~eps1:0.4 ~eps2:0.2 ~l in
      let b74 = Lemmas.lemma4_c_bound ~delta4 p in
      let b77 = Lemmas.lemma5_c_bound ~delta4 p in
      let b80 = Lemmas.lemma6_c_bound ~delta4 p in
      let b83 = Lemmas.lemma8_c_bound ~delta4 p in
      check_true (Printf.sprintf "74<=77 at nu=%g" nu) (b74 <= b77 +. 1e-12);
      check_true (Printf.sprintf "77<=80 at nu=%g" nu) (b77 <= b80 +. 1e-12);
      check_true (Printf.sprintf "80<=83 at nu=%g" nu) (b80 <= b83 *. (1. +. 1e-12)))
    [ (0.25, 100., 1e3, 3.); (0.4, 1e4, 1e4, 8.); (0.05, 10., 100., 2.) ]

let test_proposition2 () =
  let p = mk ~nu:0.3 ~delta:50. ~n:1e3 ~c:3. in
  let l = Params.log_ratio p in
  check_true "holds for delta4 < l" (Lemmas.proposition2_holds ~delta4:(0.9 *. l) p);
  check_true "holds for small delta4" (Lemmas.proposition2_holds ~delta4:1e-6 p)

let test_lemma7 () =
  List.iter
    (fun (nu, delta) ->
      let p = mk ~nu ~delta ~n:1e4 ~c:3. in
      check_true
        (Printf.sprintf "L7 sandwich at nu=%g delta=%g" nu delta)
        (Lemmas.lemma7_holds p))
    [ (0.25, 10.); (0.4, 1e4); (0.01, 1e13); (0.49, 2.) ]

let test_lemma8 () =
  let p = mk ~nu:0.25 ~delta:1e4 ~n:1e4 ~c:3. in
  check_true "Ineq. 85" (Lemmas.lemma8_holds ~eps1:0.5 ~eps2:0.1 p);
  check_true "Ineq. 85 small eps" (Lemmas.lemma8_holds ~eps1:0.01 ~eps2:0.001 p)

let p2 = mk ~nu:0.25 ~delta:2. ~n:40. ~c:2.5

let test_min_stationary_and_pi_norm () =
  let p = mk ~nu:0.25 ~delta:4. ~n:40. ~c:2.5 in
  let log_min = Lemmas.log_min_stationary_fp p in
  check_true "min stationary positive but < 1" (log_min < 0.);
  let bound = Lemmas.pi_norm_bound p in
  check_true "pi norm bound >= 1" (bound >= 1.);
  close "consistent with Prop. 1" (exp (-0.5 *. log_min)) bound;
  (* The formula is the paper's expression verbatim (Eq. 98-99):
     (min pi_F) * (min {p mu n, abar})^(Delta+1).  Check it term by term
     against independently computed pieces. *)
  let alpha = Params.alpha p2 and abar = Params.abar p2 in
  let delta = 2. in
  let abar_d = abar ** delta in
  let min_pi_f = alpha *. (abar ** (delta -. 1.)) *. Float.min (1. -. abar_d) abar_d in
  let pmun = p2.Params.p *. Params.mu p2 *. p2.Params.n in
  let expected = min_pi_f *. (Float.min pmun abar ** (delta +. 1.)) in
  close ~rtol:1e-9 "Eq. 98-99 verbatim" expected
    (exp (Lemmas.log_min_stationary_fp p2));
  (* Note: on the collapsed {N, H1, Hm} alphabet used by the explicit
     chain, the rarest detailed symbol is Hm with probability
     alpha - alpha1, which can undercut min {p mu n, abar}; Prop. 1's
     simplified constant applies to the paper's own alphabet accounting.
     We therefore check the pi-norm direction that the proof uses. *)
  check_true "pi-norm bound is at least 1/sqrt(min pi_F)"
    (bound >= 1. /. sqrt min_pi_f)

let test_verify_chain_on_grid () =
  (* Theorem 3 as an executable statement: wherever (50) and (51) hold,
     every link of (52)-(59) holds. *)
  List.iter
    (fun (nu, delta, n, eps1, eps2) ->
      let c = Bounds.theorem2_c_min ~nu ~delta ~eps1 ~eps2 *. 1.000001 in
      let p = mk ~nu ~delta ~n ~c in
      let r = Lemmas.verify_chain ~eps1 ~eps2 p in
      if not r.all_hold then begin
        List.iter
          (fun (s : Lemmas.chain_step) ->
            if not s.holds then
              Printf.printf "FAILED STEP %s: %s\n" s.name s.detail)
          r.steps;
        Alcotest.failf "chain broke at nu=%g delta=%g n=%g" nu delta n
      end)
    [
      (0.25, 1e13, 1e5, 0.5, 0.1); (0.25, 1e3, 1e4, 0.5, 0.1);
      (0.4, 1e2, 1e3, 0.3, 0.01); (0.1, 1e6, 1e5, 0.7, 1.0);
      (0.49, 1e4, 1e6, 0.2, 0.5); (0.01, 10., 100., 0.9, 0.001);
      (0.33, 2., 10., 0.5, 0.5);
    ]

let test_verify_chain_validation () =
  let p = mk ~nu:0.25 ~delta:10. ~n:100. ~c:3. in
  check_raises_invalid "eps1 range" (fun () ->
      ignore (Lemmas.verify_chain ~eps1:1.0 ~eps2:0.1 p));
  check_raises_invalid "eps2 range" (fun () ->
      ignore (Lemmas.verify_chain ~eps1:0.5 ~eps2:0. p))

let props =
  let gen =
    QCheck2.Gen.(
      let* nu = float_range 0.02 0.48 in
      let* log_delta = float_range 0.5 12. in
      let* log_n = float_range 1. 5.5 in
      let* eps1 = float_range 0.05 0.95 in
      let* eps2 = float_range 0.001 2. in
      return (nu, 10. ** log_delta, 10. ** log_n, eps1, eps2))
  in
  [
    prop ~count:150 "Theorem 3 chain holds under its preconditions" gen
      (fun (nu, delta, n, eps1, eps2) ->
        let c = Bounds.theorem2_c_min ~nu ~delta ~eps1 ~eps2 *. 1.000001 in
        match mk ~nu ~delta ~n ~c with
        | exception Invalid_argument _ -> true (* implied p out of range *)
        | p ->
          let r = Lemmas.verify_chain ~eps1 ~eps2 p in
          r.all_hold);
    prop ~count:150 "delta4 stays below l" gen
      (fun (nu, _delta, _n, eps1, eps2) ->
        let l = log ((1. -. nu) /. nu) in
        let d4 = Lemmas.delta4_default ~eps1 ~eps2 ~l in
        d4 > 0. && d4 < l);
  ]

let suite =
  [
    case "delta4/delta1 constructions" test_delta4_delta1_positive;
    case "delta4 matches Eq. 60" test_delta4_matches_eq60;
    case "pn condition (Ineq. 50)" test_pn_condition;
    case "Lemma 2 implication" test_lemma2_implication;
    case "bound ordering (Lemmas 5-7)" test_lemma4_bound_ordering;
    case "Proposition 2" test_proposition2;
    case "Lemma 7 sandwich" test_lemma7;
    case "Lemma 8" test_lemma8;
    case "Proposition 1 min stationary" test_min_stationary_and_pi_norm;
    case "verify_chain on a grid" test_verify_chain_on_grid;
    case "verify_chain validation" test_verify_chain_validation;
  ]
  @ props
