open Helpers
module Hash = Nakamoto_chain.Hash

let test_roundtrip () =
  let h = Hash.of_int64 0x1234_5678_9ABC_DEF0L in
  check_true "int64 roundtrip" (Hash.to_int64 h = 0x1234_5678_9ABC_DEF0L);
  check_true "equal reflexive" (Hash.equal h h);
  check_int "compare self" 0 (Hash.compare h h)

let test_hex () =
  Alcotest.(check string) "hex" "00000000000000ff" (Hash.to_hex (Hash.of_int64 255L));
  Alcotest.(check string) "zero" "0000000000000000" (Hash.to_hex Hash.zero);
  check_int "hex length" 16 (String.length (Hash.to_hex (Hash.of_int64 (-1L))))

let test_combine_sensitivity () =
  let base = Hash.of_int64 17L in
  check_true "combine changes value" (not (Hash.equal (Hash.combine base 1L) base));
  check_true "different absorbed values differ"
    (not (Hash.equal (Hash.combine base 1L) (Hash.combine base 2L)));
  check_true "order sensitive"
    (not
       (Hash.equal
          (Hash.combine (Hash.combine base 1L) 2L)
          (Hash.combine (Hash.combine base 2L) 1L)))

let test_of_fields_distinct () =
  let mk ~miner ~round ~nonce =
    Hash.of_fields ~parent:Hash.zero ~miner ~round ~nonce
  in
  let a = mk ~miner:1 ~round:1 ~nonce:0 in
  check_true "miner matters" (not (Hash.equal a (mk ~miner:2 ~round:1 ~nonce:0)));
  check_true "round matters" (not (Hash.equal a (mk ~miner:1 ~round:2 ~nonce:0)));
  check_true "nonce matters" (not (Hash.equal a (mk ~miner:1 ~round:1 ~nonce:1)));
  check_true "deterministic" (Hash.equal a (mk ~miner:1 ~round:1 ~nonce:0))

let test_no_collisions_small_space () =
  (* A birthday test over 10^5 headers: any collision would indicate a
     broken mixer, not bad luck (probability < 3e-10). *)
  let seen = Hashtbl.create 200_000 in
  let collisions = ref 0 in
  for miner = 0 to 99 do
    for round = 1 to 100 do
      for nonce = 0 to 9 do
        let h =
          Hash.to_int64 (Hash.of_fields ~parent:Hash.zero ~miner ~round ~nonce)
        in
        if Hashtbl.mem seen h then incr collisions else Hashtbl.add seen h ()
      done
    done
  done;
  check_int "no collisions" 0 !collisions

let suite =
  [
    case "int64 roundtrip" test_roundtrip;
    case "hex rendering" test_hex;
    case "combine sensitivity" test_combine_sensitivity;
    case "of_fields distinguishes fields" test_of_fields_distinct;
    case "birthday test" test_no_collisions_small_space;
  ]
