(* Shared test utilities: float comparison testables and qcheck adapters. *)

let close ?(rtol = 1e-9) ?(atol = 1e-12) msg expected actual =
  if not (Nakamoto_numerics.Special.approx_equal ~rtol ~atol expected actual)
  then
    Alcotest.failf "%s: expected %.17g, got %.17g (diff %.3e)" msg expected
      actual
      (Float.abs (expected -. actual))

let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Invalid_argument, got %s" msg
      (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got a value" msg

let case name f = Alcotest.test_case name `Quick f

let prop ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen law)

(* A deterministic rng for tests that need one. *)
let rng ?(seed = 12345L) () = Nakamoto_prob.Rng.create ~seed

let contains_substring ~affix s =
  let n = String.length affix and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = affix || scan (i + 1)) in
  n = 0 || scan 0
