(* The wire layer: framing edge cases and the message codec.

   The framing tests exercise exactly the defensive properties the
   interface promises — truncation is typed, the max-frame cap rejects
   hostile lengths before allocation, unknown tags decode to an [Error]
   result rather than an exception — and the codec tests pin the
   round-trip contract the serve subsystem's determinism rests on. *)

open Helpers
module Frame = Nakamoto_wire.Frame
module Codec = Nakamoto_wire.Codec
module Msg = Nakamoto_wire.Message
module Spec = Nakamoto_campaign.Spec
module Aggregate = Nakamoto_campaign.Aggregate
module Tel = Nakamoto_telemetry

(* --- codec primitives --- *)

let test_codec_primitives () =
  let w = Codec.writer () in
  Codec.add_int w (-1);
  Codec.add_int w max_int;
  Codec.add_i64 w Int64.min_int;
  Codec.add_f64 w nan;
  Codec.add_f64 w neg_infinity;
  Codec.add_f64 w (-0.);
  Codec.add_bool w true;
  Codec.add_string w "nul\000bytes\nkept";
  Codec.add_opt w Codec.add_int None;
  Codec.add_opt w Codec.add_int (Some 7);
  Codec.add_list w Codec.add_f64 [ 1.5; -2.25 ];
  Codec.add_array w Codec.add_int [| 3; 1; 4 |];
  let r = Codec.reader (Codec.contents w) in
  check_int "int -1" (-1) (Codec.get_int r);
  check_int "max_int" max_int (Codec.get_int r);
  check_true "min_int64" (Codec.get_i64 r = Int64.min_int);
  check_true "nan bits" (Float.is_nan (Codec.get_f64 r));
  check_true "-inf" (Codec.get_f64 r = neg_infinity);
  check_true "-0. sign preserved" (1. /. Codec.get_f64 r = neg_infinity);
  check_true "bool" (Codec.get_bool r);
  Alcotest.(check string) "string" "nul\000bytes\nkept" (Codec.get_string r);
  check_true "none" (Codec.get_opt r Codec.get_int = None);
  check_true "some" (Codec.get_opt r Codec.get_int = Some 7);
  check_true "list" (Codec.get_list r Codec.get_f64 = [ 1.5; -2.25 ]);
  check_true "array" (Codec.get_array r Codec.get_int = [| 3; 1; 4 |]);
  check_true "finished" (Codec.finished r)

let test_codec_truncation_raises () =
  let w = Codec.writer () in
  Codec.add_int w 42;
  let s = Codec.contents w in
  let r = Codec.reader (String.sub s 0 4) in
  (match Codec.get_int r with
  | exception Codec.Error _ -> ()
  | _ -> Alcotest.fail "truncated i64 should raise");
  let r = Codec.reader "\x00\x00\x00\xff" in
  match Codec.get_string r with
  | exception Codec.Error _ -> ()
  | _ -> Alcotest.fail "string length past the end should raise"

(* --- message round trips --- *)

let sample_snapshot () =
  let agg = Aggregate.create () in
  Aggregate.observe agg
    {
      Aggregate.rounds = 120;
      convergence_opportunities = 17;
      adversary_blocks = 3;
      honest_blocks = 29;
      h_rounds = 31;
      h1_rounds = 24;
      full = true;
      violated = true;
      max_reorg_depth = 5;
      growth_rate = 0.25;
      chain_quality = 0.875;
    };
  Aggregate.snapshot agg

let sample_telemetry () =
  let reg = Tel.Registry.create ~clock:(fun () -> 0.) () in
  Tel.Counter.incr (Tel.Registry.counter reg "serve_frames_in_total");
  Tel.Span.record
    (Tel.Registry.span reg ~labels:[ ("domain", "3") ] "campaign_shard_seconds")
    0.125;
  Tel.Registry.Snapshot.entries (Tel.Registry.snapshot reg)

let sample_messages () =
  [
    Msg.Hello { version = 1; role = Msg.Worker };
    Msg.Hello { version = 9; role = Msg.Client };
    Msg.Hello_ack { version = 1 };
    Msg.Submit_campaign
      {
        Msg.sub_spec = Spec.default;
        sub_journal = Some "/tmp/j.jsonl";
        sub_resume = true;
      };
    Msg.Submit_campaign
      { Msg.sub_spec = Spec.default; sub_journal = None; sub_resume = false };
    Msg.Lease_request { max = 1 };
    Msg.Lease_request { max = 64 };
    Msg.Lease_grant
      {
        grants =
          [
            {
              Msg.lease_id = 42;
              shard =
                {
                  Nakamoto_campaign.Shard.id = 3;
                  cell_index = 1;
                  trial_start = 2;
                  trial_stop = 4;
                  slot = 1;
                };
            };
            {
              Msg.lease_id = 43;
              shard =
                {
                  Nakamoto_campaign.Shard.id = 4;
                  cell_index = 1;
                  trial_start = 4;
                  trial_stop = 6;
                  slot = 2;
                };
            };
          ];
        spec = Spec.default;
      };
    Msg.Ping { nonce = 0 };
    Msg.Ping { nonce = max_int };
    Msg.Pong { nonce = 7 };
    Msg.No_work { retry_after = 0.05 };
    Msg.Cell_result
      {
        Msg.res_lease = 42;
        res_shard = 3;
        res_aggregate = sample_snapshot ();
        res_telemetry = sample_telemetry ();
      };
    Msg.Query_assess { Msg.q_nu = 0.25; q_c = 3.; q_n = 1e5; q_delta = 1e13 };
    Msg.Assess_reply
      {
        Msg.a_zone = "SAFE";
        a_neat_threshold = 1.46;
        a_neat_margin = 1.54;
        a_attack_threshold = 0.75;
        a_confirmations = Some 12;
        a_rendered = "multi\nline\nverdict";
      };
    Msg.Progress
      {
        Msg.p_trials_done = 4;
        p_trials_total = 8;
        p_cells_done = 1;
        p_cells_total = 2;
      };
    Msg.Done { table = "the table"; journal = Some "j.jsonl" };
    Msg.Done { table = ""; journal = None };
    Msg.Error "boom";
  ]

let test_message_round_trips () =
  List.iter
    (fun m ->
      let tag, payload = Msg.encode m in
      match Msg.decode ~tag ~payload with
      | Error e -> Alcotest.failf "decode failed on tag %d: %s" tag e
      | Ok m' ->
        let tag', payload' = Msg.encode m' in
        check_int "tag stable" tag tag';
        Alcotest.(check string) "payload stable" payload payload')
    (sample_messages ())

let test_spec_survives_the_wire () =
  let spec =
    {
      Spec.default with
      Spec.ps = [ 0.01; 0.02 ];
      nus = [ 0.; 0.15; 0.4 ];
      seed = Int64.min_int;
      strategy = Nakamoto_sim.Adversary.Balance { group_boundary = 9 };
    }
  in
  let tag, payload =
    Msg.encode
      (Msg.Submit_campaign
         { Msg.sub_spec = spec; sub_journal = None; sub_resume = false })
  in
  match Msg.decode ~tag ~payload with
  | Ok (Msg.Submit_campaign { sub_spec; _ }) ->
    check_true "fingerprint preserved"
      (Spec.fingerprint sub_spec = Spec.fingerprint spec);
    Alcotest.(check string) "canonical json preserved" (Spec.to_json spec)
      (Spec.to_json sub_spec)
  | Ok _ -> Alcotest.fail "decoded to a different constructor"
  | Error e -> Alcotest.fail e

let test_empty_lease_request_decodes_as_one () =
  (* Protocol-1 peers sent Lease_request with an empty payload; the
     decoder keeps reading that as a batch of one. *)
  let tag, _ = Msg.encode (Msg.Lease_request { max = 1 }) in
  match Msg.decode ~tag ~payload:"" with
  | Ok (Msg.Lease_request { max = 1 }) -> ()
  | Ok _ -> Alcotest.fail "empty lease request must decode as { max = 1 }"
  | Error e -> Alcotest.fail e

let test_unknown_tag_is_typed_error () =
  (match Msg.decode ~tag:200 ~payload:"" with
  | Error e -> check_true "names the tag" (contains_substring ~affix:"200" e)
  | Ok _ -> Alcotest.fail "unknown tag must not decode");
  (* Trailing garbage after a valid payload is typed too. *)
  let tag, payload = Msg.encode (Msg.Hello_ack { version = 1 }) in
  match Msg.decode ~tag ~payload:(payload ^ "x") with
  | Error e ->
    check_true "mentions trailing bytes"
      (contains_substring ~affix:"trailing" e)
  | Ok _ -> Alcotest.fail "trailing garbage must not decode"

(* --- framing --- *)

let frame_bytes ~tag ~payload =
  let len = String.length payload + 1 in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.set b 4 (Char.chr tag);
  Bytes.blit_string payload 0 b 5 (String.length payload);
  Bytes.to_string b

let test_decoder_two_frames_one_feed () =
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed d
    (frame_bytes ~tag:1 ~payload:"aa" ^ frame_bytes ~tag:2 ~payload:"b");
  (match Frame.Decoder.next d with
  | `Frame (1, "aa") -> ()
  | _ -> Alcotest.fail "first frame");
  (match Frame.Decoder.next d with
  | `Frame (2, "b") -> ()
  | _ -> Alcotest.fail "second frame: bytes after the first must survive");
  match Frame.Decoder.next d with
  | `Awaiting -> ()
  | _ -> Alcotest.fail "then empty"

let test_decoder_oversized_length_rejected () =
  let d = Frame.Decoder.create ~max_payload:64 () in
  (* length field claims 1 MiB: must be rejected from the header alone,
     and the decoder stays poisoned afterwards. *)
  Frame.Decoder.feed d "\x00\x10\x00\x00";
  (match Frame.Decoder.next d with
  | `Bad e -> check_true "names the cap" (contains_substring ~affix:"cap" e)
  | _ -> Alcotest.fail "oversized length must be rejected");
  Frame.Decoder.feed d (frame_bytes ~tag:1 ~payload:"ok");
  match Frame.Decoder.next d with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "poisoned decoder must not resynchronize"

let test_decoder_zero_length_rejected () =
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed d "\x00\x00\x00\x00";
  match Frame.Decoder.next d with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "a zero-length frame has no tag byte"

let test_channel_truncated_frame_is_bad () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ch = Frame.Channel.of_fd a in
  let bytes = frame_bytes ~tag:7 ~payload:"truncated-payload" in
  let partial = String.sub bytes 0 (String.length bytes - 3) in
  let _ = Unix.write_substring b partial 0 (String.length partial) in
  Unix.close b;
  (match Frame.Channel.read ch with
  | `Bad e ->
    check_true "typed truncation" (contains_substring ~affix:"truncated" e)
  | r ->
    Alcotest.failf "EOF mid-frame must be `Bad, got %s"
      (match r with
      | `Eof -> "`Eof"
      | `Timeout -> "`Timeout"
      | `Frame _ -> "`Frame"
      | `Bad _ -> assert false));
  Unix.close a

let test_channel_clean_eof_and_timeout () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ch = Frame.Channel.of_fd a in
  (match Frame.Channel.read ~timeout:0.05 ch with
  | `Timeout -> ()
  | _ -> Alcotest.fail "no bytes within the deadline must be `Timeout");
  Unix.close b;
  (match Frame.Channel.read ch with
  | `Eof -> ()
  | _ -> Alcotest.fail "close at a frame boundary must be clean `Eof");
  Unix.close a

let test_channel_write_read_round_trip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cha = Frame.Channel.of_fd a and chb = Frame.Channel.of_fd b in
  Frame.Channel.write cha ~tag:5 ~payload:"ping";
  Frame.Channel.write cha ~tag:6 ~payload:"";
  (match Frame.Channel.read ~timeout:5. chb with
  | `Frame (5, "ping") -> ()
  | _ -> Alcotest.fail "first frame");
  (match Frame.Channel.read ~timeout:5. chb with
  | `Frame (6, "") -> ()
  | _ -> Alcotest.fail "empty payload frame");
  Unix.close a;
  Unix.close b

let test_channel_cap_governs_both_directions () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cha = Frame.Channel.of_fd ~max_payload:32 a in
  let chb = Frame.Channel.of_fd ~max_payload:32 b in
  (* In-cap traffic flows. *)
  Frame.Channel.write cha ~tag:1 ~payload:(String.make 32 'x');
  (match Frame.Channel.read ~timeout:5. chb with
  | `Frame (1, p) -> check_int "in-cap payload arrives" 32 (String.length p)
  | _ -> Alcotest.fail "in-cap frame must arrive");
  (* The write side enforces the channel's own cap, not the default:
     a frame this channel's peer must reject is refused at the source. *)
  (match Frame.Channel.write cha ~tag:2 ~payload:(String.make 33 'y') with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "oversized write must be refused at the channel cap");
  (* The read side rejects an oversized frame a raw fd smuggles past the
     channel (the raw write is governed only by the default cap). *)
  Frame.write b ~tag:3 ~payload:(String.make 64 'z');
  (match Frame.Channel.read ~timeout:5. cha with
  | `Bad e -> check_true "names the cap" (contains_substring ~affix:"cap" e)
  | _ -> Alcotest.fail "oversized frame must be `Bad at the reader's cap");
  Unix.close a;
  Unix.close b

let suite =
  [
    case "codec primitives round-trip bit-exactly" test_codec_primitives;
    case "codec truncation raises typed errors" test_codec_truncation_raises;
    case "every message round-trips through its frame" test_message_round_trips;
    case "a spec crosses the wire fingerprint-intact" test_spec_survives_the_wire;
    case "an empty lease request still decodes as a batch of one"
      test_empty_lease_request_decodes_as_one;
    case "unknown tag and trailing garbage are typed errors"
      test_unknown_tag_is_typed_error;
    case "two frames in one chunk both arrive" test_decoder_two_frames_one_feed;
    case "oversized length is rejected at the cap"
      test_decoder_oversized_length_rejected;
    case "zero-length frame is rejected" test_decoder_zero_length_rejected;
    case "EOF mid-frame is `Bad, not `Eof" test_channel_truncated_frame_is_bad;
    case "clean EOF and timeout are distinct"
      test_channel_clean_eof_and_timeout;
    case "channel write/read round-trips" test_channel_write_read_round_trip;
    case "the channel cap governs both directions"
      test_channel_cap_governs_both_directions;
  ]
