open Helpers
module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree
module Hash = Nakamoto_chain.Hash

let mine ?(miner_class = Block.Honest) ~parent ~miner ~round ~nonce () =
  Block.mine ~parent ~miner ~miner_class ~round ~nonce ~payload:""

(* Build a linear chain of [len] blocks on top of [parent]. *)
let extend tree ~parent ~miner ~start_round ~len =
  let rec go parent round left acc =
    if left = 0 then List.rev acc
    else begin
      let b = mine ~parent ~miner ~round ~nonce:left () in
      (match Block_tree.insert tree b with
      | `Inserted -> ()
      | `Duplicate | `Orphan -> Alcotest.fail "unexpected insert result");
      go b (round + 1) (left - 1) (b :: acc)
    end
  in
  go parent start_round len []

let test_create () =
  let t = Block_tree.create () in
  check_int "only genesis" 1 (Block_tree.block_count t);
  check_true "genesis present" (Block_tree.mem t Block.genesis.hash);
  check_true "best tip is genesis" (Block.is_genesis (Block_tree.best_tip t))

let test_insert_cases () =
  let t = Block_tree.create () in
  let b = mine ~parent:Block.genesis ~miner:0 ~round:1 ~nonce:0 () in
  check_true "insert" (Block_tree.insert t b = `Inserted);
  check_true "duplicate" (Block_tree.insert t b = `Duplicate);
  let orphan_parent = mine ~parent:b ~miner:0 ~round:2 ~nonce:0 () in
  let orphan = mine ~parent:orphan_parent ~miner:0 ~round:3 ~nonce:0 () in
  check_true "orphan rejected" (Block_tree.insert t orphan = `Orphan);
  check_false "orphan not stored" (Block_tree.mem t orphan.hash)

let test_insert_chain_sorts () =
  let t = Block_tree.create () in
  let staging = Block_tree.create () in
  let chain = extend staging ~parent:Block.genesis ~miner:1 ~start_round:1 ~len:5 in
  (* Deliver in reverse order: insert_chain must sort by height. *)
  check_int "all inserted" 5 (Block_tree.insert_chain t (List.rev chain));
  check_int "count" 6 (Block_tree.block_count t);
  check_int "repeat inserts nothing" 0 (Block_tree.insert_chain t chain)

let test_best_tip_longest () =
  let t = Block_tree.create () in
  let _short = extend t ~parent:Block.genesis ~miner:0 ~start_round:1 ~len:2 in
  let long = extend t ~parent:Block.genesis ~miner:1 ~start_round:1 ~len:4 in
  check_true "longest wins"
    (Block.equal (Block_tree.best_tip t) (List.nth long 3))

let test_best_tip_tie_break () =
  let t = Block_tree.create () in
  (* Two height-1 blocks: adversarial mined earlier round vs honest later. *)
  let adv =
    mine ~miner_class:Block.Adversarial ~parent:Block.genesis ~miner:9 ~round:1
      ~nonce:0 ()
  in
  let honest = mine ~parent:Block.genesis ~miner:1 ~round:2 ~nonce:0 () in
  ignore (Block_tree.insert t adv);
  ignore (Block_tree.insert t honest);
  check_true "honest preferred at equal height"
    (Block.equal (Block_tree.best_tip t) honest);
  (* Among honest blocks, earlier round wins. *)
  let t2 = Block_tree.create () in
  let late = mine ~parent:Block.genesis ~miner:1 ~round:9 ~nonce:0 () in
  let early = mine ~parent:Block.genesis ~miner:2 ~round:3 ~nonce:0 () in
  ignore (Block_tree.insert t2 late);
  ignore (Block_tree.insert t2 early);
  check_true "earlier round preferred"
    (Block.equal (Block_tree.best_tip t2) early)

let test_first_seen_tie_break () =
  let t = Block_tree.create ~tie_break:Block_tree.First_seen () in
  let adv =
    mine ~miner_class:Block.Adversarial ~parent:Block.genesis ~miner:9 ~round:1
      ~nonce:0 ()
  in
  let honest = mine ~parent:Block.genesis ~miner:1 ~round:1 ~nonce:0 () in
  ignore (Block_tree.insert t adv);
  ignore (Block_tree.insert t honest);
  check_true "first seen wins the tie (even adversarial)"
    (Block.equal (Block_tree.best_tip t) adv);
  (* A strictly taller block still displaces. *)
  let taller = mine ~parent:honest ~miner:1 ~round:2 ~nonce:0 () in
  ignore (Block_tree.insert t taller);
  check_true "height still dominates" (Block.equal (Block_tree.best_tip t) taller);
  (* better reflects the instance's rule. *)
  check_false "equal height never better under first-seen"
    (Block_tree.better t honest adv);
  let d = Block_tree.create () in
  check_true "equal height can be better under prefer-honest"
    (Block_tree.better d honest adv)

let test_best_tip_insertion_order_independent () =
  (* The deterministic tie-break is what makes all honest views agree. *)
  let blocks =
    List.init 5 (fun i ->
        mine ~parent:Block.genesis ~miner:i ~round:(1 + (i mod 3)) ~nonce:i ())
  in
  let tip_of order =
    let t = Block_tree.create () in
    List.iter (fun b -> ignore (Block_tree.insert t b)) order;
    Block_tree.best_tip t
  in
  let reference = tip_of blocks in
  check_true "reversed order, same tip"
    (Block.equal reference (tip_of (List.rev blocks)))

let test_chain_to_genesis () =
  let t = Block_tree.create () in
  let chain = extend t ~parent:Block.genesis ~miner:0 ~start_round:1 ~len:3 in
  let tip = List.nth chain 2 in
  let path = Block_tree.chain_to_genesis t tip in
  check_int "path length" 4 (List.length path);
  check_true "starts at genesis" (Block.is_genesis (List.hd path));
  check_true "ends at tip" (Block.equal (List.nth path 3) tip);
  let foreign = mine ~parent:tip ~miner:0 ~round:10 ~nonce:5 () in
  check_raises_invalid "unknown block" (fun () ->
      ignore (Block_tree.chain_to_genesis t foreign))

let test_ancestor_at_height () =
  let t = Block_tree.create () in
  let chain = extend t ~parent:Block.genesis ~miner:0 ~start_round:1 ~len:5 in
  let tip = List.nth chain 4 in
  check_true "ancestor 3"
    (Block.equal (Block_tree.ancestor_at_height t tip ~height:3) (List.nth chain 2));
  check_true "ancestor 0 is genesis"
    (Block.is_genesis (Block_tree.ancestor_at_height t tip ~height:0));
  check_raises_invalid "too high" (fun () ->
      ignore (Block_tree.ancestor_at_height t tip ~height:9));
  check_raises_invalid "negative" (fun () ->
      ignore (Block_tree.ancestor_at_height t tip ~height:(-1)))

let test_prefix_predicates () =
  let t = Block_tree.create () in
  let chain = extend t ~parent:Block.genesis ~miner:0 ~start_round:1 ~len:6 in
  let mid = List.nth chain 2 and tip = List.nth chain 5 in
  check_true "mid prefix of tip" (Block_tree.is_prefix t ~prefix:mid ~of_:tip);
  check_false "tip not prefix of mid" (Block_tree.is_prefix t ~prefix:tip ~of_:mid);
  check_true "self prefix" (Block_tree.is_prefix t ~prefix:tip ~of_:tip);
  (* A fork of equal height is not a prefix. *)
  let fork = extend t ~parent:mid ~miner:1 ~start_round:10 ~len:3 in
  let fork_tip = List.nth fork 2 in
  check_false "fork not prefix" (Block_tree.is_prefix t ~prefix:fork_tip ~of_:tip);
  check_true "common ancestor is prefix of both"
    (Block_tree.is_prefix t ~prefix:mid ~of_:fork_tip)

let test_prefix_within () =
  let t = Block_tree.create () in
  let chain = extend t ~parent:Block.genesis ~miner:0 ~start_round:1 ~len:6 in
  let mid = List.nth chain 2 in
  let tip = List.nth chain 5 in
  let fork = extend t ~parent:mid ~miner:1 ~start_round:20 ~len:2 in
  let fork_tip = List.nth fork 1 in
  (* tip (h 6) vs fork_tip (h 5): they agree up to height 3. *)
  check_true "T=3 forgives the fork"
    (Block_tree.prefix_within t ~truncate:3 ~chain_r:tip ~chain_s:fork_tip);
  check_false "T=2 does not"
    (Block_tree.prefix_within t ~truncate:2 ~chain_r:tip ~chain_s:fork_tip);
  check_true "vacuous when truncate >= height"
    (Block_tree.prefix_within t ~truncate:6 ~chain_r:tip ~chain_s:Block.genesis);
  check_raises_invalid "negative truncate" (fun () ->
      ignore (Block_tree.prefix_within t ~truncate:(-1) ~chain_r:tip ~chain_s:tip))

let test_common_prefix_and_divergence () =
  let t = Block_tree.create () in
  let chain = extend t ~parent:Block.genesis ~miner:0 ~start_round:1 ~len:4 in
  let mid = List.nth chain 1 in
  let fork = extend t ~parent:mid ~miner:1 ~start_round:10 ~len:5 in
  let a = List.nth chain 3 (* height 4 *) in
  let b = List.nth fork 4 (* height 7 *) in
  check_int "common prefix height" 2 (Block_tree.common_prefix_height t a b);
  check_int "divergence" 5 (Block_tree.divergence t a b);
  check_int "self divergence" 0 (Block_tree.divergence t a a);
  check_int "ancestor divergence counts the suffix" 2
    (Block_tree.divergence t mid a)

let test_honest_fraction () =
  let t = Block_tree.create () in
  let h1 = mine ~parent:Block.genesis ~miner:0 ~round:1 ~nonce:0 () in
  let a1 =
    mine ~miner_class:Block.Adversarial ~parent:h1 ~miner:9 ~round:2 ~nonce:0 ()
  in
  let h2 = mine ~parent:a1 ~miner:1 ~round:3 ~nonce:0 () in
  List.iter (fun b -> ignore (Block_tree.insert t b)) [ h1; a1; h2 ];
  close "2/3 honest" (2. /. 3.) (Block_tree.honest_fraction_on_chain t h2);
  close "genesis-only chain" 1.
    (Block_tree.honest_fraction_on_chain t Block.genesis)

let test_copy_independent () =
  let t = Block_tree.create () in
  let copy = Block_tree.copy t in
  let b = mine ~parent:Block.genesis ~miner:0 ~round:1 ~nonce:0 () in
  ignore (Block_tree.insert t b);
  check_int "original grew" 2 (Block_tree.block_count t);
  check_int "copy untouched" 1 (Block_tree.block_count copy)

let test_children_and_tips () =
  let t = Block_tree.create () in
  let a = mine ~parent:Block.genesis ~miner:0 ~round:1 ~nonce:0 () in
  let b = mine ~parent:Block.genesis ~miner:1 ~round:1 ~nonce:0 () in
  ignore (Block_tree.insert t a);
  ignore (Block_tree.insert t b);
  check_int "two children of genesis" 2
    (List.length (Block_tree.children t Block.genesis.hash));
  check_int "two tips" 2 (List.length (Block_tree.tips t));
  let count = ref 0 in
  Block_tree.iter_blocks t (fun _ -> incr count);
  check_int "iter visits all" 3 !count

let props =
  [
    prop ~count:60 "random trees: best tip maximizes height"
      QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 20) (int_range 0 4)))
      (fun choices ->
        let t = Block_tree.create () in
        let blocks = ref [| Block.genesis |] in
        List.iteri
          (fun i (pick, miner) ->
            let parent = !blocks.(pick mod Array.length !blocks) in
            let b = mine ~parent ~miner ~round:(i + 1) ~nonce:i () in
            match Block_tree.insert t b with
            | `Inserted -> blocks := Array.append !blocks [| b |]
            | `Duplicate | `Orphan -> ())
          choices;
        let best = Block_tree.best_tip t in
        Array.for_all (fun (b : Block.t) -> b.height <= best.Block.height) !blocks);
    prop ~count:60 "prefix_within is reflexive at any T"
      QCheck2.Gen.(int_range 0 10)
      (fun truncate ->
        let t = Block_tree.create () in
        let chain = extend t ~parent:Block.genesis ~miner:0 ~start_round:1 ~len:5 in
        let tip = List.nth chain 4 in
        Block_tree.prefix_within t ~truncate ~chain_r:tip ~chain_s:tip);
  ]

let suite =
  [
    case "create" test_create;
    case "insert cases" test_insert_cases;
    case "insert_chain sorts by height" test_insert_chain_sorts;
    case "best tip longest" test_best_tip_longest;
    case "best tip tie-break" test_best_tip_tie_break;
    case "first-seen tie-break" test_first_seen_tie_break;
    case "best tip order independence" test_best_tip_insertion_order_independent;
    case "chain_to_genesis" test_chain_to_genesis;
    case "ancestor_at_height" test_ancestor_at_height;
    case "prefix predicates" test_prefix_predicates;
    case "prefix_within (Definition 1)" test_prefix_within;
    case "common prefix / divergence" test_common_prefix_and_divergence;
    case "honest fraction (chain quality)" test_honest_fraction;
    case "copy independence" test_copy_independent;
    case "children and tips" test_children_and_tips;
  ]
  @ props
