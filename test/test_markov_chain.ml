open Helpers
module Chain = Nakamoto_markov.Chain

(* A simple two-state weather chain with known stationary (0.625, 0.375). *)
let weather =
  Chain.create ~size:2
    ~rows:[| [ (0, 0.7); (1, 0.3) ]; [ (0, 0.5); (1, 0.5) ] |]
    ()

(* A 3-cycle: periodic, irreducible. *)
let three_cycle =
  Chain.create ~size:3 ~rows:[| [ (1, 1.) ]; [ (2, 1.) ]; [ (0, 1.) ] |] ()

let test_create_validation () =
  check_raises_invalid "row sum" (fun () ->
      ignore (Chain.create ~size:1 ~rows:[| [ (0, 0.5) ] |] ()));
  check_raises_invalid "bad target" (fun () ->
      ignore (Chain.create ~size:1 ~rows:[| [ (3, 1.) ] |] ()));
  check_raises_invalid "negative probability" (fun () ->
      ignore (Chain.create ~size:1 ~rows:[| [ (0, -0.5); (0, 1.5) ] |] ()));
  check_raises_invalid "size mismatch" (fun () ->
      ignore (Chain.create ~size:2 ~rows:[| [ (0, 1.) ] |] ()));
  check_raises_invalid "size zero" (fun () ->
      ignore (Chain.create ~size:0 ~rows:[||] ()))

let test_accessors () =
  check_int "size" 2 (Chain.size weather);
  close "probability" 0.3 (Chain.probability weather ~src:0 ~dst:1);
  close "missing edge" 0. (Chain.probability three_cycle ~src:0 ~dst:0);
  Alcotest.(check string) "default label" "1" (Chain.label weather 1);
  check_int "row arity" 2 (List.length (Chain.row weather 0))

let test_structure_queries () =
  check_true "weather irreducible" (Chain.is_irreducible weather);
  check_true "weather ergodic" (Chain.is_ergodic weather);
  check_true "cycle irreducible" (Chain.is_irreducible three_cycle);
  check_int "cycle period 3" 3 (Chain.period three_cycle);
  check_false "cycle not ergodic" (Chain.is_ergodic three_cycle);
  let reducible =
    Chain.create ~size:2 ~rows:[| [ (0, 1.) ]; [ (0, 1.) ] |] ()
  in
  check_false "absorbing not irreducible" (Chain.is_irreducible reducible)

let test_step_distribution () =
  let d = Chain.step_distribution weather [| 1.; 0. |] in
  close "step [0]" 0.7 d.(0);
  close "step [1]" 0.3 d.(1);
  check_raises_invalid "wrong size" (fun () ->
      ignore (Chain.step_distribution weather [| 1. |]))

let test_stationary_both_ways () =
  let p = Chain.stationary_power_iteration weather in
  let s = Chain.stationary_linear_solve weather in
  close "power [0]" 0.625 p.(0);
  close "power [1]" 0.375 p.(1);
  close "solve [0]" 0.625 s.(0);
  close "solve [1]" 0.375 s.(1);
  (* Stationary of the cycle is uniform (power iteration from uniform is
     already exact despite periodicity; linear solve is unconditional). *)
  let cs = Chain.stationary_linear_solve three_cycle in
  Array.iter (fun x -> close "uniform" (1. /. 3.) x) cs

let test_stationary_is_fixed_point () =
  let s = Chain.stationary_linear_solve weather in
  let s' = Chain.step_distribution weather s in
  close "fixed point [0]" s.(0) s'.(0);
  close "fixed point [1]" s.(1) s'.(1)

let test_total_variation () =
  close "tv" 0.3 (Chain.total_variation [| 0.5; 0.5 |] [| 0.2; 0.8 |]);
  close "tv self" 0. (Chain.total_variation [| 1.; 0. |] [| 1.; 0. |]);
  check_raises_invalid "length mismatch" (fun () ->
      ignore (Chain.total_variation [| 1. |] [| 0.5; 0.5 |]))

let test_mixing_time () =
  (match Chain.mixing_time weather with
  | Some s -> check_true "weather mixes quickly" (s <= 10)
  | None -> Alcotest.fail "weather must mix");
  (* The 3-cycle never mixes (periodic). *)
  check_true "cycle does not mix"
    (Chain.mixing_time ~horizon:100 three_cycle = None)

let test_simulate () =
  let g = rng () in
  let traj = Chain.simulate ~rng:g weather ~start:0 ~steps:10_000 in
  check_int "length" 10_000 (Array.length traj);
  Array.iter (fun s -> check_true "state in range" (s = 0 || s = 1)) traj;
  let ones = Array.fold_left (fun acc s -> acc + s) 0 traj in
  let frac = float_of_int ones /. 10_000. in
  check_true
    (Printf.sprintf "occupancy near stationary (%.3f)" frac)
    (Float.abs (frac -. 0.375) < 0.02);
  check_true "zero steps" (Chain.simulate ~rng:g weather ~start:0 ~steps:0 = [||]);
  check_raises_invalid "bad start" (fun () ->
      ignore (Chain.simulate ~rng:g weather ~start:9 ~steps:1))

let test_occupancy () =
  let g = rng () in
  let visits =
    Chain.occupancy ~rng:g weather ~start:0 ~steps:20_000 ~target:(fun s -> s = 1)
  in
  check_true "occupancy matches T pi(target)"
    (Float.abs (float_of_int visits -. (20_000. *. 0.375)) < 500.)

let test_power_iteration_nonconvergence_message () =
  (* A sticky asymmetric chain (second eigenvalue 0.97, stationary away
     from the uniform start) cannot meet tol 1e-14 in 50 iterations.
     The failure must report the iteration budget, the tolerance and
     the last L1 residual — not just "did not converge". *)
  let sticky =
    Chain.create ~size:2
      ~rows:[| [ (0, 0.99); (1, 0.01) ]; [ (0, 0.02); (1, 0.98) ] |]
      ()
  in
  match Chain.stationary_power_iteration ~tol:1e-14 ~max_iter:50 sticky with
  | _ -> Alcotest.fail "expected non-convergence at max_iter:50"
  | exception Failure msg ->
    List.iter
      (fun affix ->
        check_true
          (Printf.sprintf "message mentions %s" affix)
          (contains_substring ~affix msg))
      [ "50 iterations"; "tol 1e-14"; "residual" ]

let props =
  let gen_chain =
    (* Random dense stochastic matrices of size 2..6. *)
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* raw = list_size (return (n * n)) (float_range 0.05 1.) in
      let rows =
        Array.init n (fun i ->
            let row = List.filteri (fun k _ -> k / n = i) raw in
            let total = List.fold_left ( +. ) 0. row in
            List.mapi (fun j x -> (j, x /. total)) row)
      in
      return (n, rows))
  in
  [
    prop ~count:50 "solve and power iteration agree" gen_chain (fun (n, rows) ->
        let c = Chain.create ~size:n ~rows () in
        let a = Chain.stationary_linear_solve c in
        let b = Chain.stationary_power_iteration c in
        Chain.total_variation a b < 1e-9);
    prop ~count:50 "stationary sums to 1 and is a fixed point" gen_chain
      (fun (n, rows) ->
        let c = Chain.create ~size:n ~rows () in
        let s = Chain.stationary_linear_solve c in
        let total = Array.fold_left ( +. ) 0. s in
        let s' = Chain.step_distribution c s in
        Float.abs (total -. 1.) < 1e-9 && Chain.total_variation s s' < 1e-10);
    prop ~count:50 "dense positive chains are ergodic" gen_chain
      (fun (n, rows) -> Chain.is_ergodic (Chain.create ~size:n ~rows ()));
  ]

let suite =
  [
    case "create validation" test_create_validation;
    case "accessors" test_accessors;
    case "structure queries" test_structure_queries;
    case "step distribution" test_step_distribution;
    case "stationary both ways" test_stationary_both_ways;
    case "stationary is fixed point" test_stationary_is_fixed_point;
    case "total variation" test_total_variation;
    case "mixing time" test_mixing_time;
    case "simulate" test_simulate;
    case "occupancy" test_occupancy;
    case "power iteration non-convergence message"
      test_power_iteration_nonconvergence_message;
  ]
  @ props
