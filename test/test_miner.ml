open Helpers
module Miner = Nakamoto_sim.Miner
module Block = Nakamoto_chain.Block

let mk ~parent ~miner ~round =
  Block.mine ~parent ~miner ~miner_class:Block.Honest ~round ~nonce:0
    ~payload:""

let test_fresh_miner () =
  let m = Miner.create ~id:3 () in
  check_int "id" 3 (Miner.id m);
  check_true "starts at genesis" (Block.is_genesis (Miner.best_tip m));
  check_int "chain length 0" 0 (Miner.chain_length m);
  check_int "no orphans" 0 (Miner.orphan_count m)

let test_extend_tip () =
  let m = Miner.create ~id:0 () in
  let b1 = Miner.extend_tip m ~round:1 ~nonce:0 in
  check_int "length 1" 1 (Miner.chain_length m);
  check_true "tip is the new block" (Block.equal (Miner.best_tip m) b1);
  let b2 = Miner.extend_tip m ~round:2 ~nonce:0 in
  check_int "length 2" 2 (Miner.chain_length m);
  check_true "parent link" (Nakamoto_chain.Hash.equal b2.Block.parent b1.Block.hash)

let test_receive_adopts_longest () =
  let m = Miner.create ~id:0 () in
  ignore (Miner.extend_tip m ~round:1 ~nonce:0);
  (* A longer foreign chain arrives. *)
  let a = mk ~parent:Block.genesis ~miner:1 ~round:1 in
  let b = mk ~parent:a ~miner:1 ~round:2 in
  let c = mk ~parent:b ~miner:1 ~round:3 in
  Miner.receive m [ a; b; c ];
  check_int "adopted length 3" 3 (Miner.chain_length m);
  check_true "tip is foreign" (Block.equal (Miner.best_tip m) c)

let test_receive_keeps_longer_own_chain () =
  let m = Miner.create ~id:0 () in
  ignore (Miner.extend_tip m ~round:1 ~nonce:0);
  let own = Miner.extend_tip m ~round:2 ~nonce:0 in
  let a = mk ~parent:Block.genesis ~miner:1 ~round:1 in
  Miner.receive m [ a ];
  check_true "own longer chain kept" (Block.equal (Miner.best_tip m) own)

let test_orphan_buffering () =
  let m = Miner.create ~id:0 () in
  let a = mk ~parent:Block.genesis ~miner:1 ~round:1 in
  let b = mk ~parent:a ~miner:1 ~round:2 in
  let c = mk ~parent:b ~miner:1 ~round:3 in
  (* Children arrive before the parent (adversarial reordering). *)
  Miner.receive m [ c ];
  check_int "c buffered" 1 (Miner.orphan_count m);
  check_int "tip unchanged" 0 (Miner.chain_length m);
  Miner.receive m [ b ];
  check_int "b and c still disconnected" 2 (Miner.orphan_count m);
  Miner.receive m [ a ];
  check_int "whole chain connects" 0 (Miner.orphan_count m);
  check_int "tip height 3" 3 (Miner.chain_length m)

let test_orphans_connect_within_one_batch () =
  let m = Miner.create ~id:0 () in
  let a = mk ~parent:Block.genesis ~miner:1 ~round:1 in
  let b = mk ~parent:a ~miner:1 ~round:2 in
  Miner.receive m [ b; a ];
  check_int "batch connects regardless of order" 2 (Miner.chain_length m);
  check_int "no leftovers" 0 (Miner.orphan_count m)

let test_duplicate_delivery_harmless () =
  let m = Miner.create ~id:0 () in
  let a = mk ~parent:Block.genesis ~miner:1 ~round:1 in
  Miner.receive m [ a ];
  Miner.receive m [ a; a ];
  check_int "height still 1" 1 (Miner.chain_length m);
  check_int "view size" 2
    (Nakamoto_chain.Block_tree.block_count (Miner.view m))

let test_chain_never_shrinks () =
  (* Longest-chain rule: receiving anything never decreases chain length. *)
  let m = Miner.create ~id:0 () in
  let g = rng () in
  let known = ref [ Block.genesis ] in
  for round = 1 to 200 do
    let parent =
      List.nth !known (Nakamoto_prob.Rng.int g ~bound:(List.length !known))
    in
    let b = mk ~parent ~miner:1 ~round in
    known := b :: !known;
    let before = Miner.chain_length m in
    Miner.receive m [ b ];
    check_true "monotone" (Miner.chain_length m >= before)
  done

let suite =
  [
    case "fresh miner" test_fresh_miner;
    case "extend tip" test_extend_tip;
    case "receive adopts longest" test_receive_adopts_longest;
    case "keeps longer own chain" test_receive_keeps_longer_own_chain;
    case "orphan buffering across rounds" test_orphan_buffering;
    case "orphans connect within a batch" test_orphans_connect_within_one_batch;
    case "duplicate delivery harmless" test_duplicate_delivery_harmless;
    case "chain never shrinks" test_chain_never_shrinks;
  ]
