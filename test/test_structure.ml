open Helpers
module Structure = Nakamoto_markov.Structure

(* Adjacency helpers. *)
let of_edges edges i = List.filter_map (fun (u, v) -> if u = i then Some v else None) edges
let cycle n i = [ (i + 1) mod n ]

let test_scc_cycle () =
  let sccs = Structure.strongly_connected_components ~succ:(cycle 5) ~n:5 in
  check_int "one component" 1 (List.length sccs);
  check_int "component size" 5 (List.length (List.hd sccs))

let test_scc_two_components () =
  (* 0 <-> 1, 2 <-> 3, edge 1 -> 2 joins them weakly only. *)
  let succ = of_edges [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let sccs = Structure.strongly_connected_components ~succ ~n:4 in
  check_int "two components" 2 (List.length sccs);
  let sizes = List.sort compare (List.map List.length sccs) in
  check_true "sizes 2 and 2" (sizes = [ 2; 2 ])

let test_scc_singletons () =
  let succ = of_edges [ (0, 1); (1, 2) ] in
  let sccs = Structure.strongly_connected_components ~succ ~n:3 in
  check_int "three singletons" 3 (List.length sccs);
  check_true "all vertices covered"
    (List.sort compare (List.concat sccs) = [ 0; 1; 2 ])

let test_scc_self_loop () =
  let succ = of_edges [ (0, 0); (0, 1); (1, 1) ] in
  let sccs = Structure.strongly_connected_components ~succ ~n:2 in
  check_int "self loops are singleton SCCs" 2 (List.length sccs)

let test_is_strongly_connected () =
  check_true "cycle" (Structure.is_strongly_connected ~succ:(cycle 4) ~n:4);
  check_false "path"
    (Structure.is_strongly_connected ~succ:(of_edges [ (0, 1); (1, 2) ]) ~n:3);
  check_true "trivial" (Structure.is_strongly_connected ~succ:(fun _ -> []) ~n:1)

let test_period () =
  check_int "4-cycle has period 4" 4
    (Structure.period ~succ:(cycle 4) ~n:4 ~start:0);
  (* Cycle of length 4 plus a chord creating a 3-cycle -> gcd(4,3) = 1. *)
  let succ = of_edges [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ] in
  check_int "chord makes aperiodic" 1 (Structure.period ~succ ~n:4 ~start:0);
  (* Self loop forces period 1. *)
  let succ = of_edges [ (0, 1); (1, 0); (0, 0) ] in
  check_int "self loop" 1 (Structure.period ~succ ~n:2 ~start:0);
  (* Bipartite 2-cycle has period 2. *)
  check_int "2-cycle" 2 (Structure.period ~succ:(cycle 2) ~n:2 ~start:0);
  (* No cycle reachable -> 0. *)
  check_int "dag" 0
    (Structure.period ~succ:(of_edges [ (0, 1) ]) ~n:2 ~start:0);
  check_raises_invalid "bad start" (fun () ->
      ignore (Structure.period ~succ:(cycle 2) ~n:2 ~start:5))

let test_reachable () =
  let succ = of_edges [ (0, 1); (1, 2) ] in
  let r = Structure.reachable ~succ ~n:4 ~start:0 in
  check_true "reaches 0,1,2" (r.(0) && r.(1) && r.(2));
  check_false "not 3" (r.(3))

let test_scc_large_path_no_overflow () =
  (* The iterative Tarjan must handle deep structures. *)
  let n = 200_000 in
  let succ i = if i + 1 < n then [ i + 1 ] else [] in
  let sccs = Structure.strongly_connected_components ~succ ~n in
  check_int "all singletons" n (List.length sccs)

let suite =
  [
    case "scc of a cycle" test_scc_cycle;
    case "scc two components" test_scc_two_components;
    case "scc singletons" test_scc_singletons;
    case "scc self loops" test_scc_self_loop;
    case "is_strongly_connected" test_is_strongly_connected;
    case "period" test_period;
    case "reachable" test_reachable;
    case "deep path (stack safety)" test_scc_large_path_no_overflow;
  ]
