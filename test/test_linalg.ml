open Helpers
module Linalg = Nakamoto_numerics.Linalg

let check_vec msg expected actual =
  Alcotest.(check int) (msg ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri (fun i x -> close (Printf.sprintf "%s[%d]" msg i) x actual.(i)) expected

let test_make_identity () =
  let m = Linalg.make ~rows:2 ~cols:3 0.5 in
  check_int "rows" 2 (Array.length m);
  close "fill" 0.5 m.(1).(2);
  let i3 = Linalg.identity 3 in
  close "diag" 1. i3.(1).(1);
  close "off-diag" 0. i3.(0).(2);
  check_raises_invalid "negative dims" (fun () ->
      ignore (Linalg.make ~rows:(-1) ~cols:2 0.))

let test_dims_ragged () =
  check_raises_invalid "ragged" (fun () ->
      ignore (Linalg.dims [| [| 1. |]; [| 1.; 2. |] |]))

let test_transpose () =
  let m = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Linalg.transpose m in
  check_int "rows" 3 (Array.length t);
  close "t[2][1]" 6. t.(2).(1);
  close "t[0][0]" 1. t.(0).(0)

let test_mat_vec () =
  let m = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_vec "mat_vec" [| 5.; 11. |] (Linalg.mat_vec m [| 1.; 2. |]);
  check_vec "vec_mat" [| 7.; 10. |] (Linalg.vec_mat [| 1.; 2. |] m);
  check_raises_invalid "mismatch" (fun () -> ignore (Linalg.mat_vec m [| 1. |]))

let test_mat_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let c = Linalg.mat_mul a b in
  close "swap columns" 2. c.(0).(0);
  close "" 1. c.(0).(1);
  let i = Linalg.identity 2 in
  let ai = Linalg.mat_mul a i in
  close "identity right" a.(1).(0) ai.(1).(0)

let test_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linalg.solve a [| 5.; 10. |] in
  check_vec "solution" [| 1.; 3. |] x;
  (* Pivoting required: zero leading entry. *)
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_vec "pivot case" [| 2.; 1. |] (Linalg.solve b [| 1.; 2. |]);
  (match Linalg.solve [| [| 1.; 1. |]; [| 1.; 1. |] |] [| 1.; 1. |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "singular should fail");
  check_raises_invalid "non-square" (fun () ->
      ignore (Linalg.solve [| [| 1.; 2. |] |] [| 1. |]))

let test_norms_and_vec_ops () =
  close "norm_inf" 3. (Linalg.norm_inf [| 1.; -3.; 2. |]);
  close "norm_l1" 6. (Linalg.norm_l1 [| 1.; -3.; 2. |]);
  check_vec "vec_sub" [| -1.; 1. |] (Linalg.vec_sub [| 1.; 3. |] [| 2.; 2. |]);
  check_vec "vec_scale" [| 2.; -4. |] (Linalg.vec_scale 2. [| 1.; -2. |]);
  check_vec "normalize_l1" [| 0.25; 0.75 |] (Linalg.normalize_l1 [| 1.; 3. |]);
  check_raises_invalid "normalize zero" (fun () ->
      ignore (Linalg.normalize_l1 [| 0.; 0. |]))

let props =
  let gen_system =
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* entries = list_size (return (n * n)) (float_range (-5.) 5.) in
      let* rhs = list_size (return n) (float_range (-5.) 5.) in
      return (n, entries, rhs))
  in
  [
    prop "solve then multiply returns rhs" gen_system (fun (n, entries, rhs) ->
        let m =
          Array.init n (fun i ->
              Array.init n (fun j ->
                  List.nth entries ((i * n) + j)
                  +. if i = j then 10. else 0. (* diagonally dominant *)))
        in
        let b = Array.of_list rhs in
        let x = Linalg.solve m b in
        let back = Linalg.mat_vec m x in
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-8) back b);
    prop "transpose is an involution"
      QCheck2.Gen.(
        let* rows = int_range 1 5 in
        let* cols = int_range 1 5 in
        let* entries = list_size (return (rows * cols)) (float_range (-1.) 1.) in
        return (rows, cols, entries))
      (fun (rows, cols, entries) ->
        let m =
          Array.init rows (fun i ->
              Array.init cols (fun j -> List.nth entries ((i * cols) + j)))
        in
        Linalg.transpose (Linalg.transpose m) = m);
  ]

let suite =
  [
    case "make/identity" test_make_identity;
    case "dims rejects ragged" test_dims_ragged;
    case "transpose" test_transpose;
    case "mat_vec/vec_mat" test_mat_vec;
    case "mat_mul" test_mat_mul;
    case "solve (LU with pivoting)" test_solve;
    case "norms and vector ops" test_norms_and_vec_ops;
  ]
  @ props
