open Helpers
module Event_queue = Nakamoto_net.Event_queue

let test_basic_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "e";
  Event_queue.push q ~time:1 "a";
  Event_queue.push q ~time:3 "c";
  check_int "length" 3 (Event_queue.length q);
  check_true "peek earliest" (Event_queue.peek_time q = Some 1);
  (match Event_queue.pop q with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "expected (1, a)");
  check_true "then 3" (Event_queue.peek_time q = Some 3)

let test_stability () =
  let q = Event_queue.create () in
  List.iteri (fun i s -> Event_queue.push q ~time:(i mod 2) s)
    [ "a0"; "b1"; "c0"; "d1"; "e0" ];
  let t0 = Event_queue.pop_due q ~now:0 in
  Alcotest.(check (list string)) "time-0 events in insertion order"
    [ "a0"; "c0"; "e0" ] t0;
  let t1 = Event_queue.pop_due q ~now:1 in
  Alcotest.(check (list string)) "time-1 events in insertion order"
    [ "b1"; "d1" ] t1

let test_pop_due_threshold () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t t) [ 2; 4; 6; 8 ];
  Alcotest.(check (list int)) "due at 5" [ 2; 4 ] (Event_queue.pop_due q ~now:5);
  check_int "rest remain" 2 (Event_queue.length q);
  Alcotest.(check (list int)) "nothing due at 5 now" []
    (Event_queue.pop_due q ~now:5);
  Alcotest.(check (list int)) "rest due at 100" [ 6; 8 ]
    (Event_queue.pop_due q ~now:100)

let test_empty () =
  let q : int Event_queue.t = Event_queue.create () in
  check_true "empty" (Event_queue.is_empty q);
  check_true "no peek" (Event_queue.peek_time q = None);
  check_true "no pop" (Event_queue.pop q = None);
  check_true "pop_due empty" (Event_queue.pop_due q ~now:10 = [])

let test_negative_time_rejected () =
  let q = Event_queue.create () in
  check_raises_invalid "negative time" (fun () ->
      Event_queue.push q ~time:(-1) "x")

let test_drop_due () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t t) [ 2; 4; 6; 8 ];
  check_int "drops the due prefix" 2 (Event_queue.drop_due q ~now:5);
  check_int "rest remain" 2 (Event_queue.length q);
  check_true "next is 6" (Event_queue.peek_time q = Some 6);
  check_int "idempotent at the same now" 0 (Event_queue.drop_due q ~now:5);
  check_int "drains the rest" 2 (Event_queue.drop_due q ~now:100);
  check_true "empty afterwards" (Event_queue.is_empty q);
  check_int "empty queue drops nothing" 0 (Event_queue.drop_due q ~now:100)

let test_drop_due_matches_pop_due () =
  (* drop_due ~now must discard exactly the entries pop_due ~now would
     have returned — the due-index fast-forward contract. *)
  let mk times =
    let q = Event_queue.create () in
    List.iter (fun t -> Event_queue.push q ~time:t t) times;
    q
  in
  let times = [ 3; 1; 7; 7; 2; 9; 4 ] in
  let a = mk times and b = mk times in
  let popped = List.length (Event_queue.pop_due a ~now:6) in
  check_int "same count" popped (Event_queue.drop_due b ~now:6);
  check_true "same frontier"
    (Event_queue.peek_time a = Event_queue.peek_time b);
  check_int "same remainder" (Event_queue.length a) (Event_queue.length b)

let test_heap_growth () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    Event_queue.push q ~time:i i
  done;
  check_int "all stored" 1000 (Event_queue.length q);
  let drained = Event_queue.pop_due q ~now:10_000 in
  check_int "all drained" 1000 (List.length drained);
  Alcotest.(check (list int)) "sorted" (List.init 1000 Fun.id) drained

let props =
  [
    prop ~count:60 "pop sequence is sorted by time"
      QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 50))
      (fun times ->
        let q = Event_queue.create () in
        List.iter (fun t -> Event_queue.push q ~time:t t) times;
        let rec drain acc =
          match Event_queue.pop q with
          | Some (t, _) -> drain (t :: acc)
          | None -> List.rev acc
        in
        let out = drain [] in
        out = List.sort compare times);
  ]

let suite =
  [
    case "basic ordering" test_basic_ordering;
    case "stability within a time" test_stability;
    case "pop_due threshold" test_pop_due_threshold;
    case "empty queue" test_empty;
    case "negative time rejected" test_negative_time_rejected;
    case "drop_due threshold" test_drop_due;
    case "drop_due matches pop_due" test_drop_due_matches_pop_due;
    case "heap growth" test_heap_growth;
  ]
  @ props
