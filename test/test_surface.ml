open Helpers
module Grid = Nakamoto_surface.Grid
module Cert = Nakamoto_surface.Cert
module Table = Nakamoto_surface.Table
module Params = Nakamoto_core.Params
module Assessment = Nakamoto_core.Assessment
module I = Nakamoto_numerics.Interval
module Tel = Nakamoto_telemetry

(* A 3x3x3x3-vertex box (16 cells) whose c spans roughly 0.2 .. 14:
   cells on every side of both frontiers.  Cells this coarse (a factor
   of 8 in c each) rarely certify — they exercise the format and the
   fallback paths. *)
let small_grid () =
  Grid.create
    ~p:(Grid.axis ~lo:5e-5 ~hi:2e-4 ~count:3 ~scale:Grid.Log)
    ~n:(Grid.axis ~lo:60. ~hi:240. ~count:3 ~scale:Grid.Log)
    ~delta:(Grid.axis ~lo:24. ~hi:96. ~count:3 ~scale:Grid.Log)
    ~nu:(Grid.axis ~lo:0.08 ~hi:0.2 ~count:3 ~scale:Grid.Linear)

(* A narrow box strictly inside the safe zone (c in ~1.4 .. 3.3 against
   a neat threshold under 0.48) sitting on a confirmation-depth plateau:
   the rate ratio stays near 0.02-0.04 where the exact depth is 3 across
   wide parameter bands, so the interval certifier can conclude — which
   is what query serving relies on.  (At larger nu the ratio climbs
   toward 0.2 where consecutive depth bands are only a few percent of
   ratio apart, and no cell of useful size can certify a constant
   depth.) *)
let fine_safe_grid () =
  Grid.create
    ~p:(Grid.axis ~lo:1.1e-4 ~hi:1.4e-4 ~count:4 ~scale:Grid.Log)
    ~n:(Grid.axis ~lo:100. ~hi:140. ~count:4 ~scale:Grid.Log)
    ~delta:(Grid.axis ~lo:28. ~hi:36. ~count:4 ~scale:Grid.Log)
    ~nu:(Grid.axis ~lo:0.012 ~hi:0.016 ~count:4 ~scale:Grid.Linear)

let test_grid_indexing () =
  let g = small_grid () in
  check_int "vertices" 81 (Grid.vertex_count g);
  check_int "cells" 16 (Grid.cell_count g);
  for id = 0 to Grid.vertex_count g - 1 do
    check_int "vertex id round-trip" id
      (Grid.vertex_id g (Grid.vertex_of_id g id))
  done;
  for id = 0 to Grid.cell_count g - 1 do
    check_int "cell id round-trip" id (Grid.cell_id g (Grid.cell_of_id g id))
  done;
  let p = Grid.p_axis g in
  check_true "lo endpoint pinned" (Grid.vertex p 0 = 5e-5);
  check_true "hi endpoint pinned" (Grid.vertex p 2 = 2e-4);
  check_true "interior vertex between"
    (Grid.vertex p 1 > 5e-5 && Grid.vertex p 1 < 2e-4);
  check_true "locate at lo" (Grid.locate p 5e-5 = Some 0);
  check_true "locate at hi" (Grid.locate p 2e-4 = Some 1);
  check_true "locate outside" (Grid.locate p 3e-4 = None);
  close "weight at cell start" 0. (Grid.weight p 0 5e-5);
  close "weight at cell end" 1. (Grid.weight p 0 (Grid.vertex p 1))

let test_roundtrip_and_job_invariance () =
  let g = small_grid () in
  let t1 = Table.build ~jobs:1 g in
  let bytes1 = Table.to_string t1 in
  let t2 = Table.build ~jobs:1 g in
  check_true "rebuild is byte-identical" (Table.to_string t2 = bytes1);
  let t3 = Table.build ~jobs:3 g in
  check_true "parallel build is byte-identical" (Table.to_string t3 = bytes1);
  match Table.of_string bytes1 with
  | Error msg -> Alcotest.failf "round-trip load failed: %s" msg
  | Ok back ->
    check_true "decode/encode is the identity" (Table.to_string back = bytes1);
    check_true "fingerprint survives" (Table.fingerprint back = Table.fingerprint t1)

let test_load_rejects_corruption () =
  let g = small_grid () in
  let bytes = Table.to_string (Table.build g) in
  let expect_error label s =
    match Table.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupt surface loaded" label
  in
  expect_error "bad magic" ("XXKSURF1" ^ String.sub bytes 8 (String.length bytes - 8));
  expect_error "truncated" (String.sub bytes 0 (String.length bytes - 9));
  let flipped = Bytes.of_string bytes in
  let mid = String.length bytes - 100 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xff));
  expect_error "flipped body byte" (Bytes.to_string flipped)

let test_cached_agrees_with_exact () =
  let g = fine_safe_grid () in
  let t = Table.build g in
  let hits = ref 0 in
  (* Probe every cell at its midpoint: conclusive cells must agree with
     the exact solver on both the zone and the depth, and the margin
     estimate must sit inside the certified enclosure. *)
  for id = 0 to Grid.cell_count g - 1 do
    let idx = Grid.cell_of_id g id in
    let axes = Grid.axes g in
    let mid d =
      let lo = Grid.vertex axes.(d) idx.(d)
      and hi = Grid.vertex axes.(d) (idx.(d) + 1) in
      (lo +. hi) /. 2.
    in
    let p = mid 0 and n = mid 1 and delta = mid 2 and nu = mid 3 in
    let params = Params.create ~p ~n ~delta ~nu in
    let exact = Assessment.assess params in
    match Table.lookup t ~p ~n ~delta ~nu with
    | Error _ -> ()
    | Ok hit ->
      incr hits;
      let cell = hit.Table.h_cell in
      (match cell.Cert.zone with
      | Cert.Zone z ->
        check_true "cached zone equals exact" (z = exact.Assessment.zone)
      | Cert.Zone_inconclusive -> Alcotest.fail "hit with inconclusive zone");
      (match cell.Cert.conf with
      | Cert.Conf z ->
        check_true "cached depth equals exact"
          (Some z
          = Option.map
              (fun c -> c.Nakamoto_core.Confirmation.confirmations)
              exact.Assessment.confirmations)
      | Cert.Conf_none ->
        check_true "certified-none depth is exactly none"
          (exact.Assessment.confirmations = None)
      | Cert.Conf_inconclusive -> Alcotest.fail "hit with inconclusive depth");
      check_true "margin estimate inside the enclosure"
        (I.contains cell.Cert.margin hit.Table.h_margin);
      check_true "exact margin inside the enclosure"
        (I.contains cell.Cert.margin exact.Assessment.neat_margin)
  done;
  check_true "some cells are conclusive" (!hits > 0)

let counter_value r ?labels name =
  Tel.Counter.value (Tel.Registry.counter r ?labels name)

let test_telemetry_counters () =
  let g = fine_safe_grid () in
  let t = Table.build g in
  let r = Tel.Registry.create ~clock:(fun () -> 0.) () in
  (* Outside the box on every axis. *)
  let outside = Params.create ~p:1e-3 ~n:1000. ~delta:4. ~nu:0.3 in
  let v = Table.assess_cached ~telemetry:r t outside in
  check_true "outside-box falls back"
    (v.Assessment.v_fallback = Some "outside_box");
  check_false "fallback is not cached" v.Assessment.v_cached;
  check_int "fallback counted" 1
    (counter_value r ~labels:[ ("reason", "outside_box") ]
       "surface_fallbacks_total");
  (* A safe interior point of the fine grid, inside a certified cell. *)
  let inside = Params.create ~p:1.15e-4 ~n:105. ~delta:29. ~nu:0.014 in
  let v = Table.assess_cached ~telemetry:r t inside in
  check_true "interior point is served from the table" v.Assessment.v_cached;
  check_int "hit counted" 1 (counter_value r "surface_hits_total");
  check_true "cached verdict equals exact"
    (v.Assessment.v_zone = (Assessment.assess inside).Assessment.zone)

let test_describe_and_header () =
  let g = small_grid () in
  let t = Table.build g in
  let header = Table.header_json t in
  check_true "header names the format"
    (contains_substring ~affix:"nakamoto-assessment-surface" header);
  check_true "header carries the fingerprint"
    (contains_substring ~affix:(Int64.to_string (Table.fingerprint t)) header);
  check_true "describe mentions cells"
    (contains_substring ~affix:"16 cells" (Table.describe t))

let suite =
  [
    case "grid indexing" test_grid_indexing;
    case "round-trip and --jobs byte-identity" test_roundtrip_and_job_invariance;
    case "corrupt surfaces rejected" test_load_rejects_corruption;
    case "cached answers agree with exact" test_cached_agrees_with_exact;
    case "telemetry hit/fallback counters" test_telemetry_counters;
    case "describe and header" test_describe_and_header;
  ]
