open Helpers
module Tel = Nakamoto_telemetry
module Counter = Tel.Counter
module Histogram = Tel.Histogram
module Span = Tel.Span
module Registry = Tel.Registry
module Export = Tel.Export
module Sim = Nakamoto_sim
module Trace = Nakamoto_sim.Trace
module Campaign = Nakamoto_campaign

(* --- Counters ------------------------------------------------------ *)

let test_counter_basics () =
  let c = Counter.create () in
  Counter.incr c;
  Counter.add c 4;
  check_int "value accumulates" 5 (Counter.value c);
  let s = Counter.snapshot c in
  Counter.incr c;
  check_int "snapshot is immutable" 5 s;
  check_int "instrument keeps counting" 6 (Counter.value c);
  check_int "merge is addition" 11 (Counter.merge s (Counter.snapshot c));
  check_int "empty is the identity" 5 (Counter.merge Counter.empty s);
  check_raises_invalid "negative increment rejected" (fun () ->
      Counter.add c (-1))

(* --- Histograms ---------------------------------------------------- *)

let log2_bucket v =
  let h = Histogram.log2 () in
  Histogram.observe h v;
  let s = Histogram.snapshot h in
  let found = ref (-1) in
  Array.iteri
    (fun i c -> if c = 1 then found := i)
    s.Histogram.s_counts;
  !found

let test_log2_bucket_placement () =
  (* Bucket 0: everything below 2^-32, zero and negatives included. *)
  check_int "zero underflows" 0 (log2_bucket 0.);
  check_int "negative underflows" 0 (log2_bucket (-3.));
  check_int "2^-33 underflows" 0 (log2_bucket (ldexp 1. (-33)));
  (* Bucket i in 1..64 holds [2^(i-33), 2^(i-32)). *)
  check_int "2^-32 opens bucket 1" 1 (log2_bucket (ldexp 1. (-32)));
  check_int "0.5 lands in bucket 32" 32 (log2_bucket 0.5);
  check_int "0.999 stays in bucket 32" 32 (log2_bucket 0.999);
  check_int "1.0 opens bucket 33" 33 (log2_bucket 1.0);
  check_int "1.5 stays in bucket 33" 33 (log2_bucket 1.5);
  check_int "2.0 opens bucket 34" 34 (log2_bucket 2.0);
  check_int "2^31 lands in bucket 64" 64 (log2_bucket (ldexp 1. 31));
  (* Bucket 65: 2^32 and beyond, infinity saturating. *)
  check_int "2^32 overflows" 65 (log2_bucket (ldexp 1. 32));
  check_int "infinity saturates" 65 (log2_bucket infinity);
  let h = Histogram.log2 () in
  check_raises_invalid "NaN rejected" (fun () -> Histogram.observe h nan)

let test_fixed_bucket_placement () =
  let h = Histogram.fixed ~bounds:[| 1.; 2.; 4. |] in
  List.iter (Histogram.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 5.0 ];
  let s = Histogram.snapshot h in
  (* Cumulative-le semantics: bucket i counts v <= bounds.(i). *)
  check_true "counts per bucket" (s.Histogram.s_counts = [| 2; 2; 2; 1 |]);
  check_int "total count" 7 s.Histogram.s_count;
  close "sum tracked" 17.0 s.Histogram.s_sum;
  close "min tracked" 0.5 s.Histogram.s_min;
  close "max tracked" 5.0 s.Histogram.s_max;
  check_raises_invalid "empty bounds rejected" (fun () ->
      ignore (Histogram.fixed ~bounds:[||]));
  check_raises_invalid "non-increasing bounds rejected" (fun () ->
      ignore (Histogram.fixed ~bounds:[| 1.; 1. |]));
  check_raises_invalid "non-finite bound rejected" (fun () ->
      ignore (Histogram.fixed ~bounds:[| 1.; infinity |]))

let test_histogram_merge () =
  let a = Histogram.fixed ~bounds:[| 1.; 2. |] in
  let b = Histogram.fixed ~bounds:[| 1.; 2. |] in
  Histogram.observe a 0.5;
  Histogram.observe a 3.0;
  Histogram.observe b 1.5;
  let sa = Histogram.snapshot a and sb = Histogram.snapshot b in
  let m = Histogram.merge sa sb in
  check_true "counts add pointwise" (m.Histogram.s_counts = [| 1; 1; 1 |]);
  check_int "count adds" 3 m.Histogram.s_count;
  close "sum adds" 5.0 m.Histogram.s_sum;
  close "min is the lattice meet" 0.5 m.Histogram.s_min;
  close "max is the lattice join" 3.0 m.Histogram.s_max;
  check_true "empty is an identity"
    (Histogram.merge Histogram.empty sa = sa
    && Histogram.merge sa Histogram.empty = sa);
  let other = Histogram.snapshot (Histogram.fixed ~bounds:[| 1.; 3. |]) in
  check_raises_invalid "different bounds rejected" (fun () ->
      ignore (Histogram.merge sa other));
  let l = Histogram.snapshot (Histogram.log2 ()) in
  check_raises_invalid "fixed vs log2 rejected" (fun () ->
      ignore (Histogram.merge sa l))

let test_histogram_quantile () =
  let h = Histogram.fixed ~bounds:[| 1.; 2.; 4.; 8. |] in
  (* 10 observations: 5 at 1.0, 4 at 2.0, 1 at 8.0. *)
  for _ = 1 to 5 do Histogram.observe h 1.0 done;
  for _ = 1 to 4 do Histogram.observe h 2.0 done;
  Histogram.observe h 8.0;
  let s = Histogram.snapshot h in
  close "median in the first bucket" 1.0 (Histogram.quantile s 0.5);
  close "p90 in the second bucket" 2.0 (Histogram.quantile s 0.9);
  close "p100 clamps to the observed max" 8.0 (Histogram.quantile s 1.0);
  close "p0 clamps to the observed min" 1.0 (Histogram.quantile s 0.);
  check_true "empty snapshot yields nan"
    (Float.is_nan (Histogram.quantile Histogram.empty 0.5));
  check_raises_invalid "q outside [0,1] rejected" (fun () ->
      ignore (Histogram.quantile s 1.5))

(* --- Spans --------------------------------------------------------- *)

let test_span_with_injected_clock () =
  let now = ref 0. in
  let sp = Span.create ~clock:(fun () -> !now) () in
  let began = Span.start sp in
  now := 0.25;
  Span.stop sp began;
  let v = Span.time sp (fun () -> now := !now +. 1.0; 42) in
  check_int "time returns the thunk's value" 42 v;
  Span.record sp 2.0;
  let s = Span.snapshot sp in
  check_int "three durations recorded" 3 s.Histogram.s_count;
  close "durations sum" 3.25 s.Histogram.s_sum;
  close "min duration" 0.25 s.Histogram.s_min;
  close "max duration" 2.0 s.Histogram.s_max;
  (* time records even when the thunk raises. *)
  (try Span.time sp (fun () -> failwith "boom") with Failure _ -> ());
  check_int "raising thunk still recorded" 4 (Span.snapshot sp).Histogram.s_count

(* --- Registry ------------------------------------------------------ *)

let test_registry_find_or_create () =
  let r = Registry.create ~clock:(fun () -> 0.) () in
  let c1 = Registry.counter r "hits_total" in
  let c2 = Registry.counter r "hits_total" in
  Counter.incr c1;
  check_int "same key, same instrument" 1 (Counter.value c2);
  let lbl = Registry.counter r ~labels:[ ("kind", "a") ] "hits_total" in
  Counter.add lbl 5;
  check_int "labelled twin is distinct" 1 (Counter.value c1);
  (* Labels are canonicalized by sorting, so order cannot split a key. *)
  let h1 =
    Registry.log2_histogram r
      ~labels:[ ("b", "2"); ("a", "1") ]
      "lat_seconds"
  in
  let h2 =
    Registry.log2_histogram r
      ~labels:[ ("a", "1"); ("b", "2") ]
      "lat_seconds"
  in
  Histogram.observe h1 1.0;
  check_int "label order is canonical" 1 (Histogram.snapshot h2).Histogram.s_count;
  check_raises_invalid "type conflict rejected" (fun () ->
      ignore (Registry.span r "hits_total"));
  ignore (Registry.fixed_histogram r ~bounds:[| 1.; 2. |] "depth");
  check_raises_invalid "bounds conflict rejected" (fun () ->
      ignore (Registry.fixed_histogram r ~bounds:[| 1.; 3. |] "depth"));
  check_raises_invalid "layout conflict rejected" (fun () ->
      ignore (Registry.log2_histogram r "depth"));
  check_raises_invalid "invalid metric name rejected" (fun () ->
      ignore (Registry.counter r "hits.total"));
  check_raises_invalid "invalid label name rejected" (fun () ->
      ignore (Registry.counter r ~labels:[ ("1bad", "x") ] "ok_total"));
  check_raises_invalid "duplicate label rejected" (fun () ->
      ignore (Registry.counter r ~labels:[ ("a", "1"); ("a", "2") ] "ok_total"))

let test_registry_snapshot_and_merge () =
  let r = Registry.create ~clock:(fun () -> 0.) () in
  Counter.add (Registry.counter r "b_total") 2;
  Counter.add (Registry.counter r "a_total") 1;
  Histogram.observe (Registry.log2_histogram r "lat") 1.0;
  let snap = Registry.snapshot r in
  let names =
    List.map
      (fun ((k : Registry.Snapshot.key), _) -> k.name)
      (Registry.Snapshot.entries snap)
  in
  check_true "entries in key order" (names = [ "a_total"; "b_total"; "lat" ]);
  (match Registry.Snapshot.find snap "a_total" with
  | Some (Registry.Snapshot.Counter 1) -> ()
  | _ -> Alcotest.fail "find a_total");
  check_true "find misses honestly"
    (Registry.Snapshot.find snap "zzz" = None);
  (* Merge: disjoint keys union, shared keys combine. *)
  let r2 = Registry.create ~clock:(fun () -> 0.) () in
  Counter.add (Registry.counter r2 "a_total") 10;
  Counter.add (Registry.counter r2 "c_total") 3;
  let m = Registry.Snapshot.merge snap (Registry.snapshot r2) in
  (match Registry.Snapshot.find m "a_total" with
  | Some (Registry.Snapshot.Counter 11) -> ()
  | _ -> Alcotest.fail "shared key merged");
  (match Registry.Snapshot.find m "c_total" with
  | Some (Registry.Snapshot.Counter 3) -> ()
  | _ -> Alcotest.fail "disjoint key unioned");
  check_int "merged entry count" 4 (List.length (Registry.Snapshot.entries m));
  (* Same name, different instrument type: merge must refuse. *)
  let r3 = Registry.create ~clock:(fun () -> 0.) () in
  ignore (Registry.span r3 "a_total");
  check_raises_invalid "type mismatch across snapshots rejected" (fun () ->
      ignore (Registry.Snapshot.merge snap (Registry.snapshot r3)))

(* --- Exports ------------------------------------------------------- *)

let test_export_shapes () =
  let r = Registry.create ~clock:(fun () -> 0.) () in
  Counter.add (Registry.counter r "events_total") 7;
  let h =
    Registry.fixed_histogram r
      ~labels:[ ("stage", "x\"y" ) ]
      ~bounds:[| 1.; 2. |] "depth"
  in
  Histogram.observe h 1.5;
  let snap = Registry.snapshot r in
  let prom = Export.prometheus snap in
  List.iter
    (fun affix ->
      check_true (Printf.sprintf "prom contains %S" affix)
        (contains_substring ~affix prom))
    [
      "# TYPE depth histogram";
      "# TYPE events_total counter";
      "events_total 7";
      "depth_bucket{stage=\"x\\\"y\",le=\"2\"} 1";
      "depth_bucket{stage=\"x\\\"y\",le=\"+Inf\"} 1";
      "depth_sum{stage=\"x\\\"y\"} 1.5";
      "depth_count{stage=\"x\\\"y\"} 1";
    ];
  let jsonl = Export.jsonl ~emitted_at:12.5 snap in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  check_int "meta line plus one event per instrument" 3 (List.length lines);
  check_true "meta line carries the stamp"
    (contains_substring ~affix:"\"emitted_at\":12.5" (List.nth lines 0));
  check_true "counter event"
    (contains_substring
       ~affix:"{\"name\":\"events_total\",\"labels\":{},\"type\":\"counter\",\"value\":7}"
       jsonl);
  check_true "histogram event carries sparse buckets"
    (contains_substring ~affix:"\"buckets\":[[1,1]]" jsonl);
  check_true "fixed kind carries its bounds"
    (contains_substring ~affix:"\"kind\":\"fixed\",\"bounds\":[1,2]" jsonl);
  (* Equal snapshots produce equal bytes — the golden check's premise. *)
  check_true "prometheus is a pure function of the snapshot"
    (Export.prometheus snap = prom)

(* --- Executor differential: telemetry must not move the simulation --- *)

let capture_with ?telemetry cfg =
  let t = Trace.create () in
  let on_round (r : Sim.Execution.round_report) =
    Trace.record t
      {
        Trace.round = r.round_number;
        honest_blocks = r.honest_mined;
        adversary_blocks = r.adversary_successes;
        releases = r.releases_issued;
        best_height = r.best_height;
        reorg_depth = r.reorg_depth;
      }
  in
  let res = Sim.Execution.run ~on_round ?telemetry cfg in
  (res, Trace.digest t)

let check_run_identical name cfg =
  let plain, plain_digest = capture_with cfg in
  let reg = Registry.create () in
  let instrumented, instr_digest = capture_with ~telemetry:reg cfg in
  let fields (r : Sim.Execution.result) =
    ( r.honest_blocks, r.adversary_blocks, r.h_rounds, r.h1_rounds,
      r.convergence_opportunities, r.max_reorg_depth, r.adversary_releases,
      r.messages_sent, r.orphans_remaining )
  in
  check_true (name ^ ": summary statistics identical")
    (fields plain = fields instrumented);
  check_true (name ^ ": final tips identical")
    (plain.final_tips = instrumented.final_tips);
  check_true (name ^ ": snapshot cadence identical")
    (List.map (fun (s : Sim.Execution.snapshot) -> (s.round, s.tips))
       plain.snapshots
    = List.map (fun (s : Sim.Execution.snapshot) -> (s.round, s.tips))
        instrumented.snapshots);
  check_true (name ^ ": trace digest identical") (plain_digest = instr_digest);
  (* And the registry really observed the run. *)
  let snap = Registry.snapshot reg in
  (match Registry.Snapshot.find snap "sim_rounds_total" with
  | Some (Registry.Snapshot.Counter n) ->
    check_int (name ^ ": every round counted") cfg.Sim.Config.rounds n
  | _ -> Alcotest.fail "sim_rounds_total missing");
  match Registry.Snapshot.find snap "sim_honest_blocks_total" with
  | Some (Registry.Snapshot.Counter n) ->
    check_int (name ^ ": honest blocks counted") plain.honest_blocks n
  | _ -> Alcotest.fail "sim_honest_blocks_total missing"

let test_execution_differential_exact () =
  check_run_identical "exact"
    { (Sim.Scenarios.attack_zone ~seed:11L ~nu:0.3) with Sim.Config.rounds = 300 }

let test_execution_differential_aggregate () =
  check_run_identical "aggregate"
    {
      (Sim.Scenarios.attack_zone ~seed:11L ~nu:0.3) with
      Sim.Config.rounds = 300;
      mining_mode = Sim.Config.Aggregate;
    }

(* --- Campaign telemetry ------------------------------------------- *)

let tiny_spec =
  {
    Campaign.Spec.default with
    Campaign.Spec.ps = [ 0.02 ];
    ns = [ 8 ];
    deltas = [ 2 ];
    nus = [ 0.1; 0.3 ];
    trials_per_cell = 4;
    rounds = 120;
    seed = 77L;
    shard_size = 1;
  }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let with_temp_dir tag f =
  let dir = Filename.temp_file ("telemetry_" ^ tag) "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let counter_value snap name =
  match Registry.Snapshot.find snap name with
  | Some (Registry.Snapshot.Counter n) -> n
  | _ -> Alcotest.failf "counter %s missing from the campaign snapshot" name

let test_campaign_telemetry_invariants () =
  with_temp_dir "campaign" (fun dir ->
      let outcome =
        Campaign.Campaign.run ~jobs:2 ~telemetry:dir
          ~log:(fun _ -> ())
          tiny_spec
      in
      let snap =
        match outcome.Campaign.Campaign.telemetry with
        | Some s -> s
        | None -> Alcotest.fail "outcome.telemetry absent despite ~telemetry"
      in
      (* Counts that must hold at any worker count. *)
      let trials = Campaign.Spec.trial_count tiny_spec in
      check_int "every simulated round counted"
        (trials * tiny_spec.Campaign.Spec.rounds)
        (counter_value snap "sim_rounds_total");
      check_int "no retries in a clean run" 0
        (counter_value snap "campaign_shard_retries_total");
      check_int "no salvage in a clean run" 0
        (counter_value snap "campaign_shard_salvaged_total");
      (* Shard spans: one duration per shard, across however many
         domain labels the scheduler produced. *)
      let shard_count =
        List.fold_left
          (fun acc (_, v) ->
            match v with
            | Registry.Snapshot.Span h -> acc + h.Histogram.s_count
            | _ -> acc)
          0
          (Registry.Snapshot.find_all snap "campaign_shard_seconds")
      in
      check_int "one shard span per shard" trials shard_count;
      (* Files landed and carry the headline instruments. *)
      let prom = read_file (Filename.concat dir "telemetry.prom") in
      check_true "prom exported"
        (contains_substring ~affix:"campaign_shard_seconds_bucket{domain="
           prom);
      check_true "prom carries executor metrics"
        (contains_substring ~affix:"# TYPE sim_rounds_total counter" prom);
      let jsonl = read_file (Filename.concat dir "telemetry.jsonl") in
      check_true "jsonl meta line"
        (contains_substring ~affix:"{\"telemetry\":\"nakamoto\",\"version\":1"
           jsonl))

let test_campaign_telemetry_does_not_move_results () =
  let journal tag telemetry =
    let path = Filename.temp_file ("campaign_tel_" ^ tag) ".jsonl" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        (match telemetry with
        | None ->
          ignore
            (Campaign.Campaign.run ~jobs:2 ~journal_path:path
               ~log:(fun _ -> ())
               tiny_spec)
        | Some dir ->
          ignore
            (Campaign.Campaign.run ~jobs:2 ~journal_path:path ~telemetry:dir
               ~log:(fun _ -> ())
               tiny_spec));
        read_file path)
  in
  let plain = journal "off" None in
  with_temp_dir "on" (fun dir ->
      let instrumented = journal "on" (Some dir) in
      check_true "journal bytes identical with and without telemetry"
        (plain = instrumented))

let suite =
  [
    case "counter basics" test_counter_basics;
    case "log2 bucket placement" test_log2_bucket_placement;
    case "fixed bucket placement" test_fixed_bucket_placement;
    case "histogram merge" test_histogram_merge;
    case "histogram quantile" test_histogram_quantile;
    case "span with injected clock" test_span_with_injected_clock;
    case "registry find-or-create" test_registry_find_or_create;
    case "registry snapshot and merge" test_registry_snapshot_and_merge;
    case "export shapes" test_export_shapes;
    case "execution differential (exact)" test_execution_differential_exact;
    case "execution differential (aggregate)"
      test_execution_differential_aggregate;
    case "campaign telemetry invariants" test_campaign_telemetry_invariants;
    case "campaign results unmoved by telemetry"
      test_campaign_telemetry_does_not_move_results;
  ]
