open Helpers
module Params = Nakamoto_core.Params

let p0 = Params.create ~n:100. ~delta:10. ~p:0.001 ~nu:0.2

let test_validation () =
  check_raises_invalid "n < 4" (fun () ->
      ignore (Params.create ~n:3. ~delta:1. ~p:0.1 ~nu:0.1));
  check_raises_invalid "delta < 1" (fun () ->
      ignore (Params.create ~n:10. ~delta:0.5 ~p:0.1 ~nu:0.1));
  check_raises_invalid "p = 0" (fun () ->
      ignore (Params.create ~n:10. ~delta:1. ~p:0. ~nu:0.1));
  check_raises_invalid "p = 1" (fun () ->
      ignore (Params.create ~n:10. ~delta:1. ~p:1. ~nu:0.1));
  check_raises_invalid "nu = 1/2" (fun () ->
      ignore (Params.create ~n:10. ~delta:1. ~p:0.1 ~nu:0.5));
  check_raises_invalid "nu < 0" (fun () ->
      ignore (Params.create ~n:10. ~delta:1. ~p:0.1 ~nu:(-0.1)));
  (* nu = 0 is tolerated for baselines. *)
  ignore (Params.create ~n:10. ~delta:1. ~p:0.1 ~nu:0.)

let test_of_c_roundtrip () =
  let p = Params.of_c ~n:1000. ~delta:100. ~nu:0.3 ~c:2.5 in
  close "c roundtrip" 2.5 (Params.c p);
  close "p derived" (1. /. (2.5 *. 1000. *. 100.)) p.Params.p;
  check_raises_invalid "c <= 0" (fun () ->
      ignore (Params.of_c ~n:10. ~delta:1. ~nu:0.1 ~c:0.))

let test_derived_quantities () =
  close "mu" 0.8 (Params.mu p0);
  close "log ratio" (log 4.) (Params.log_ratio p0);
  (* alpha and abar against direct binomial forms (mu n = 80 trials). *)
  close "abar" (0.999 ** 80.) (Params.abar p0);
  close "alpha" (1. -. (0.999 ** 80.)) (Params.alpha p0);
  close "alpha1" (0.001 *. 80. *. (0.999 ** 79.)) (Params.alpha1 p0);
  close "alpha + abar = 1" 1. (Params.alpha p0 +. Params.abar p0);
  close "adversary rate" (0.001 *. 0.2 *. 100.) (Params.adversary_rate p0);
  close "honest rate" (0.001 *. 0.8 *. 100.) (Params.honest_rate p0);
  close "log_abar" (log (Params.abar p0)) (Params.log_abar p0);
  close "log_alpha1" (log (Params.alpha1 p0)) (Params.log_alpha1 p0)

let test_nu_zero_cases () =
  let p = Params.create ~n:10. ~delta:1. ~p:0.1 ~nu:0. in
  check_true "adversary rate log is -inf"
    (Params.log_adversary_rate p = neg_infinity);
  close "adversary rate 0" 0. (Params.adversary_rate p);
  check_raises_invalid "log_ratio needs nu > 0" (fun () ->
      ignore (Params.log_ratio p))

let test_extreme_scale_log_domain () =
  (* The paper's Figure 1 point: everything must stay finite in logs. *)
  let p = Params.figure1_point ~nu:0.25 ~c:3. in
  check_true "abar underflow-free" (Params.log_abar p < 0.);
  check_true "log_abar finite" (Float.is_finite (Params.log_abar p));
  check_true "log_alpha1 finite" (Float.is_finite (Params.log_alpha1 p));
  (* 2 Delta log abar ~ -2 mu / c: the dimensional identity behind the
     neat bound. *)
  close ~rtol:1e-6 "2D log abar = -2mu/c" (-2. *. 0.75 /. 3.)
    (2. *. p.Params.delta *. Params.log_abar p)

let test_of_sim_config () =
  let cfg = { Nakamoto_sim.Config.default with n = 40; nu = 0.25 } in
  let p = Params.of_sim_config cfg in
  close "n" 40. p.Params.n;
  close "realized nu" 0.25 p.Params.nu;
  close "p carried" cfg.Nakamoto_sim.Config.p p.Params.p

let props =
  let gen =
    QCheck2.Gen.(
      let* n = float_range 4. 1e6 in
      let* delta = float_range 1. 1e6 in
      let* nu = float_range 0.01 0.49 in
      let* c = float_range 0.1 100. in
      return (n, delta, nu, c))
  in
  [
    prop "alpha1 <= alpha <= 1" gen (fun (n, delta, nu, c) ->
        let p = Params.of_c ~n ~delta ~nu ~c in
        let a = Params.alpha p and a1 = Params.alpha1 p in
        a1 <= a +. 1e-15 && a <= 1.);
    prop "c of of_c" gen (fun (n, delta, nu, c) ->
        let p = Params.of_c ~n ~delta ~nu ~c in
        Float.abs (Params.c p -. c) /. c < 1e-9);
    prop "exp log_abar = abar" gen (fun (n, delta, nu, c) ->
        let p = Params.of_c ~n ~delta ~nu ~c in
        Nakamoto_numerics.Special.approx_equal (exp (Params.log_abar p))
          (Params.abar p));
  ]

let suite =
  [
    case "validation (Eqs. 1-3)" test_validation;
    case "of_c roundtrip" test_of_c_roundtrip;
    case "derived quantities (Eqs. 7-9)" test_derived_quantities;
    case "nu = 0 edge cases" test_nu_zero_cases;
    case "extreme scale stays in log domain" test_extreme_scale_log_domain;
    case "of_sim_config" test_of_sim_config;
  ]
  @ props
