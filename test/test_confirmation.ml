open Helpers
module Confirmation = Nakamoto_core.Confirmation
module Params = Nakamoto_core.Params

let test_overtake_closed_form () =
  (* ratio 0.4, deficit 3 -> 0.4^4. *)
  close "basic" (0.4 ** 4.)
    (Confirmation.overtake_probability ~honest_rate:0.1 ~adversary_rate:0.04
       ~deficit:3);
  close "deficit 0 still needs one net block" 0.4
    (Confirmation.overtake_probability ~honest_rate:0.1 ~adversary_rate:0.04
       ~deficit:0);
  close "stronger attacker is certain" 1.
    (Confirmation.overtake_probability ~honest_rate:0.04 ~adversary_rate:0.1
       ~deficit:5);
  close "equal rates certain" 1.
    (Confirmation.overtake_probability ~honest_rate:0.1 ~adversary_rate:0.1
       ~deficit:2);
  check_raises_invalid "negative deficit" (fun () ->
      ignore
        (Confirmation.overtake_probability ~honest_rate:0.1 ~adversary_rate:0.04
           ~deficit:(-1)));
  check_raises_invalid "zero rate" (fun () ->
      ignore
        (Confirmation.overtake_probability ~honest_rate:0. ~adversary_rate:0.1
           ~deficit:1))

let test_bounded_race_converges_to_unbounded () =
  let closed =
    Confirmation.overtake_probability ~honest_rate:0.1 ~adversary_rate:0.04
      ~deficit:2
  in
  let at g =
    Confirmation.overtake_probability_bounded ~honest_rate:0.1
      ~adversary_rate:0.04 ~deficit:2 ~give_up_behind:g
  in
  check_true "small cutoff underestimates" (at 5 < closed);
  close ~rtol:1e-6 "large cutoff converges" closed (at 80);
  check_true "monotone in cutoff" (at 5 <= at 10 && at 10 <= at 40);
  check_raises_invalid "cutoff must exceed deficit" (fun () ->
      ignore
        (Confirmation.overtake_probability_bounded ~honest_rate:0.1
           ~adversary_rate:0.04 ~deficit:5 ~give_up_behind:5))

let test_nakamoto_formula () =
  (* Known anchors from the Bitcoin whitepaper's q = 0.1 table:
     z=1 -> 0.2045873, z=5 -> 0.0009137, z=10 -> 0.0000012.  The
     whitepaper parameterizes by the attacker share q of total power with
     lambda = z q/p, p = 1-q — our ratio = q/p. *)
  let p_at z =
    Confirmation.nakamoto_double_spend ~ratio:(0.1 /. 0.9) ~confirmations:z
  in
  check_true
    (Printf.sprintf "z=1 near 0.2046 (%.7f)" (p_at 1))
    (Float.abs (p_at 1 -. 0.2045873) < 1e-4);
  check_true
    (Printf.sprintf "z=5 near 0.0009137 (%.7f)" (p_at 5))
    (Float.abs (p_at 5 -. 0.0009137) < 1e-5);
  check_true
    (Printf.sprintf "z=10 near 1.2e-6 (%.3e)" (p_at 10))
    (Float.abs (p_at 10 -. 0.0000012) < 5e-7);
  close "ratio >= 1 is hopeless" 1.
    (Confirmation.nakamoto_double_spend ~ratio:1.2 ~confirmations:50);
  check_raises_invalid "z = 0" (fun () ->
      ignore (Confirmation.nakamoto_double_spend ~ratio:0.3 ~confirmations:0))

let test_nakamoto_monotone () =
  let p z = Confirmation.nakamoto_double_spend ~ratio:0.4 ~confirmations:z in
  let ok = ref true in
  for z = 1 to 30 do
    if p (z + 1) > p z +. 1e-12 then ok := false
  done;
  check_true "decreasing in confirmations" !ok

let test_confirmations_for () =
  let z =
    match Confirmation.confirmations_for ~ratio:(0.1 /. 0.9) ~epsilon:0.001 () with
    | Some z -> z
    | None -> Alcotest.fail "q=0.1 must settle"
  in
  (* The whitepaper's "solving for P < 0.1%" table: q=0.1 -> z=5. *)
  check_int "whitepaper q=0.1 row" 5 z;
  (* z is the first depth at or below epsilon. *)
  check_true "z achieves epsilon"
    (Confirmation.nakamoto_double_spend ~ratio:(0.1 /. 0.9) ~confirmations:z
    <= 0.001);
  check_true "z-1 does not"
    (z = 1
    || Confirmation.nakamoto_double_spend ~ratio:(0.1 /. 0.9)
         ~confirmations:(z - 1)
       > 0.001);
  (* An exhausted search limit is an answer, not a crash. *)
  check_true "limit exhaustion is None"
    (Confirmation.confirmations_for ~limit:3 ~ratio:0.9 ~epsilon:1e-9 () = None);
  check_true "a ratio near 1 is unsettleable"
    (Confirmation.confirmations_for ~limit:2000 ~ratio:0.999 ~epsilon:1e-6 ()
    = None);
  check_raises_invalid "epsilon range" (fun () ->
      ignore (Confirmation.confirmations_for ~ratio:0.3 ~epsilon:0. ()));
  check_raises_invalid "limit range" (fun () ->
      ignore (Confirmation.confirmations_for ~limit:0 ~ratio:0.3 ~epsilon:0.1 ()))

let test_assess () =
  let p = Params.of_c ~n:1e5 ~delta:10. ~nu:0.2 ~c:6. in
  let a = Confirmation.assess p in
  check_true "ratio < 1 inside the region" (a.rate_ratio < 1.);
  check_true "risk below default epsilon" (a.residual_risk <= 1e-3);
  check_true "confirmations grow with nu"
    ((Confirmation.assess (Params.of_c ~n:1e5 ~delta:10. ~nu:0.3 ~c:6.)).confirmations
    > a.confirmations);
  check_true "stricter epsilon needs more"
    ((Confirmation.assess ~epsilon:1e-6 p).confirmations > a.confirmations);
  check_raises_invalid "nu = 0" (fun () ->
      ignore (Confirmation.assess (Params.of_c ~n:1e5 ~delta:10. ~nu:0. ~c:6.)));
  check_raises_invalid "outside the consistency region" (fun () ->
      ignore (Confirmation.assess (Params.of_c ~n:1e5 ~delta:10. ~nu:0.45 ~c:0.5)))

let test_table_rendering () =
  let a = Confirmation.assess (Params.of_c ~n:1e5 ~delta:10. ~nu:0.1 ~c:6.) in
  let t = Confirmation.to_table [ a ] in
  check_int "one row" 1 (Nakamoto_numerics.Table.row_count t)

let props =
  [
    prop "overtake decreasing in deficit"
      QCheck2.Gen.(pair (float_range 0.1 0.9) (int_range 0 20))
      (fun (ratio, deficit) ->
        let h = 0.1 in
        let a = h *. ratio in
        Confirmation.overtake_probability ~honest_rate:h ~adversary_rate:a
          ~deficit:(deficit + 1)
        <= Confirmation.overtake_probability ~honest_rate:h ~adversary_rate:a
             ~deficit
           +. 1e-12);
    prop ~count:50 "bounded race matches closed form at large cutoff"
      QCheck2.Gen.(pair (float_range 0.1 0.7) (int_range 0 4))
      (fun (ratio, deficit) ->
        let h = 0.1 in
        let a = h *. ratio in
        let closed =
          Confirmation.overtake_probability ~honest_rate:h ~adversary_rate:a
            ~deficit
        in
        let bounded =
          Confirmation.overtake_probability_bounded ~honest_rate:h
            ~adversary_rate:a ~deficit ~give_up_behind:120
        in
        Float.abs (closed -. bounded) < 1e-5);
  ]

let suite =
  [
    case "overtake closed form" test_overtake_closed_form;
    case "bounded race converges" test_bounded_race_converges_to_unbounded;
    case "Nakamoto formula anchors" test_nakamoto_formula;
    case "Nakamoto monotone" test_nakamoto_monotone;
    case "confirmations_for" test_confirmations_for;
    case "assess" test_assess;
    case "table rendering" test_table_rendering;
  ]
  @ props
