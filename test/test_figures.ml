open Helpers
module Figure1 = Nakamoto_core.Figure1
module Figure2 = Nakamoto_core.Figure2
module Table = Nakamoto_numerics.Table

let small_grid = [ 0.3; 1.; 2.; 3.; 10.; 100. ]
let rows = Figure1.series ~c_grid:small_grid ()

let test_grid () =
  let g = Figure1.default_c_grid () in
  check_int "61 points" 61 (List.length g);
  close "starts at 0.1" 0.1 (List.hd g);
  close ~rtol:1e-9 "ends at 100" 100. (List.nth g 60);
  (* log-spaced: ratios constant *)
  let r01 = List.nth g 1 /. List.nth g 0 in
  let r12 = List.nth g 2 /. List.nth g 1 in
  close "log spacing" r01 r12

let test_shape_invariants () =
  check_true "shape invariants" (Figure1.shape_invariants_hold rows);
  (* deliberately break ordering to prove the check has teeth *)
  let broken =
    List.map
      (fun (r : Figure1.row) -> { r with Figure1.pss_attack = r.ours_neat /. 2. })
      rows
  in
  check_false "detects violation" (Figure1.shape_invariants_hold broken)

let test_figure1_key_points () =
  (* Qualitative anchors read off the paper's figure. *)
  let at c =
    List.find (fun (r : Figure1.row) -> Float.abs (r.c -. c) < 1e-9) rows
  in
  let r3 = at 3. in
  check_true "at c=3 ours ~ 0.40" (Float.abs (r3.ours_neat -. 0.40) < 0.01);
  check_true "at c=3 pss ~ 0.366" (Float.abs (r3.pss_consistency -. 0.366) < 0.01);
  check_true "at c=1 pss = 0 but ours > 0.15"
    ((at 1.).pss_consistency = 0. && (at 1.).ours_neat > 0.15);
  check_true "at c=100 all near 1/2"
    ((at 100.).ours_neat > 0.49 && (at 100.).pss_attack > 0.49)

let test_figure1_exact_extensions () =
  List.iter
    (fun (r : Figure1.row) ->
      check_true "Thm1 exact close to neat at paper scale"
        (Float.abs (r.theorem1_exact -. r.ours_neat) < 1e-3);
      check_true "Thm2 exact <= neat (finite Delta costs)"
        (r.theorem2_exact <= r.ours_neat +. 1e-9))
    rows

let test_figure1_table_and_plot () =
  let t = Figure1.to_table rows in
  check_int "one row per c" (List.length small_grid) (Table.row_count t);
  let plot = Figure1.to_plot rows in
  check_true "plot has all three glyphs"
    (contains_substring ~affix:"o" plot
    && contains_substring ~affix:"+" plot
    && contains_substring ~affix:"x" plot)

let test_compute_row_validation () =
  check_raises_invalid "c <= 0" (fun () ->
      ignore (Figure1.compute_row ~c:0. ()))

let test_figure2_census () =
  let c = Figure2.census ~delta:4 ~alpha:0.3 in
  check_int "states" 9 c.states;
  check_int "recent" 4 c.recent_states;
  check_int "deep" 1 c.deep_states;
  check_int "deep recent" 4 c.deep_recent_states;
  check_int "edges 2 per state" 18 c.edges;
  check_true "irreducible" c.irreducible;
  check_true "aperiodic" c.aperiodic;
  check_true "Eq.37 vs solve tight" (c.stationary_max_abs_error < 1e-10)

let test_figure2_census_range () =
  List.iter
    (fun delta ->
      let c = Figure2.census ~delta ~alpha:0.2 in
      check_int
        (Printf.sprintf "2D+1 at %d" delta)
        ((2 * delta) + 1)
        c.states;
      check_true "always ergodic" (c.irreducible && c.aperiodic))
    [ 1; 2; 3; 8; 16; 64 ]

let test_figure2_table () =
  let t = Figure2.to_table [ Figure2.census ~delta:3 ~alpha:0.4 ] in
  check_int "one row" 1 (Table.row_count t);
  check_true "rendered"
    (contains_substring ~affix:"suffix chain" (Table.render t))

let suite =
  [
    case "default c grid" test_grid;
    case "shape invariants hold (and have teeth)" test_shape_invariants;
    case "Figure 1 key anchor points" test_figure1_key_points;
    case "Figure 1 exact-curve extensions" test_figure1_exact_extensions;
    case "Figure 1 table and plot" test_figure1_table_and_plot;
    case "compute_row validation" test_compute_row_validation;
    case "Figure 2 census" test_figure2_census;
    case "Figure 2 census across deltas" test_figure2_census_range;
    case "Figure 2 table" test_figure2_table;
  ]
