open Helpers
module Campaign = Nakamoto_campaign
module Spec = Campaign.Spec
module Shard = Campaign.Shard
module Worker_pool = Campaign.Worker_pool
module Aggregate = Campaign.Aggregate
module Journal = Campaign.Journal
module Stats = Nakamoto_prob.Stats

(* A tiny full-protocol grid: 2 cells x 4 trials of 120 rounds each,
   small enough for the determinism and resume tests to rerun it several
   times. *)
let tiny_spec =
  {
    Spec.default with
    Spec.ps = [ 0.02 ];
    ns = [ 8 ];
    deltas = [ 2 ];
    nus = [ 0.1; 0.3 ];
    trials_per_cell = 4;
    rounds = 120;
    seed = 77L;
    shard_size = 1;
  }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let temp_journal tag =
  let path = Filename.temp_file ("campaign_" ^ tag) ".jsonl" in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path

(* --- Spec ---------------------------------------------------------- *)

let test_spec_cells_enumeration () =
  let spec =
    {
      tiny_spec with
      Spec.ps = [ 0.01; 0.02 ];
      deltas = [ 2; 4 ];
      nus = [ 0.1; 0.3 ];
    }
  in
  let cells = Spec.cells spec in
  check_int "cell count" 8 (Array.length cells);
  check_int "cell_count agrees" 8 (Spec.cell_count spec);
  check_int "trial_count" 32 (Spec.trial_count spec);
  Array.iteri
    (fun i (c : Spec.cell) -> check_int "indices are positions" i c.index)
    cells;
  (* Row-major: p outermost, nu innermost. *)
  check_true "first cell" (cells.(0).p = 0.01 && cells.(0).delta = 2 && cells.(0).nu = 0.1);
  check_true "nu varies fastest" (cells.(1).nu = 0.3 && cells.(1).delta = 2);
  check_true "then delta" (cells.(2).delta = 4 && cells.(2).p = 0.01);
  check_true "p varies slowest" (cells.(4).p = 0.02 && cells.(4).delta = 2 && cells.(4).nu = 0.1);
  close "c = 1/(p n Delta)"
    (1. /. (0.01 *. 8. *. 2.))
    (Spec.c_of_cell cells.(0))

let test_spec_validation () =
  Spec.validate tiny_spec;
  check_raises_invalid "empty axis" (fun () ->
      Spec.validate { tiny_spec with Spec.nus = [] });
  check_raises_invalid "bad p" (fun () ->
      Spec.validate { tiny_spec with Spec.ps = [ 0. ] });
  check_raises_invalid "nu >= 1/2" (fun () ->
      Spec.validate { tiny_spec with Spec.nus = [ 0.5 ] });
  check_raises_invalid "no trials" (fun () ->
      Spec.validate { tiny_spec with Spec.trials_per_cell = 0 });
  check_raises_invalid "bad shard size" (fun () ->
      Spec.validate { tiny_spec with Spec.shard_size = 0 })

let test_spec_fingerprint () =
  let fp = Spec.fingerprint tiny_spec in
  check_true "stable" (Int64.equal fp (Spec.fingerprint tiny_spec));
  let differs s = not (Int64.equal fp (Spec.fingerprint s)) in
  check_true "seed matters" (differs { tiny_spec with Spec.seed = 78L });
  check_true "trials matter"
    (differs { tiny_spec with Spec.trials_per_cell = 5 });
  check_true "axis matters" (differs { tiny_spec with Spec.nus = [ 0.1 ] });
  check_true "strategy matters"
    (differs { tiny_spec with Spec.strategy = Nakamoto_sim.Adversary.Idle })

(* --- Shard plan ---------------------------------------------------- *)

let test_shard_plan () =
  check_int "ceil division" 3 (Shard.per_cell ~trials_per_cell:5 ~shard_size:2);
  let plan =
    Shard.plan ~cells:3 ~trials_per_cell:5 ~shard_size:2 ~skip:(fun _ -> false)
  in
  check_int "shards" 9 (Array.length plan);
  Array.iteri (fun i (s : Shard.t) -> check_int "plan ids" i s.id) plan;
  (* Within a cell: contiguous trial ranges covering [0, 5). *)
  let covered = Array.make 5 false in
  Array.iter
    (fun (s : Shard.t) ->
      if s.cell_index = 1 then
        for t = s.trial_start to s.trial_stop - 1 do
          check_false "no trial twice" covered.(t);
          covered.(t) <- true
        done)
    plan;
  Array.iter (fun c -> check_true "all trials covered" c) covered;
  check_int "last shard is the remainder" 1
    (Shard.trials plan.(Array.length plan - 1));
  (* skip excises cells without renumbering the survivors. *)
  let resumed =
    Shard.plan ~cells:3 ~trials_per_cell:5 ~shard_size:2 ~skip:(fun i -> i = 1)
  in
  check_int "skipped cell's shards gone" 6 (Array.length resumed);
  Array.iter
    (fun (s : Shard.t) ->
      check_true "cell 1 excised" (s.cell_index <> 1))
    resumed;
  check_raises_invalid "bad shard size" (fun () ->
      ignore (Shard.plan ~cells:1 ~trials_per_cell:1 ~shard_size:0 ~skip:(fun _ -> false)))

(* --- Worker pool --------------------------------------------------- *)

let test_worker_pool_order_and_draining () =
  check_int "empty input" 0
    (Array.length (Worker_pool.run ~jobs:4 (fun x -> x) [||]));
  let tasks = Array.init 23 (fun i -> i) in
  let seen = ref 0 in
  let results =
    Worker_pool.run ~jobs:4
      ~on_result:(fun _ _ -> incr seen)
      (fun i -> i * i)
      tasks
  in
  check_int "on_result once per task" 23 !seen;
  Array.iteri (fun i r -> check_int "results in task order" (i * i) r) results;
  (* More workers than tasks: pool clamps and still drains. *)
  let one = Worker_pool.run ~jobs:16 (fun i -> i + 1) [| 41 |] in
  check_int "jobs > tasks" 42 one.(0);
  check_raises_invalid "jobs < 1" (fun () ->
      ignore (Worker_pool.run ~jobs:0 (fun x -> x) [| 1 |]))

let test_worker_pool_exception_propagates () =
  match
    Worker_pool.run ~jobs:3
      (fun i -> if i = 5 then failwith "task 5 exploded" else i)
      (Array.init 12 (fun i -> i))
  with
  | exception Failure msg -> check_true "first failure re-raised" (msg = "task 5 exploded")
  | _ -> Alcotest.fail "expected the task exception to propagate"

(* --- Aggregate ----------------------------------------------------- *)

let obs ?(violated = false) ?(depth = 0) growth quality =
  {
    Aggregate.rounds = 100;
    convergence_opportunities = 7;
    adversary_blocks = 2;
    honest_blocks = 11;
    h_rounds = 20;
    h1_rounds = 15;
    full = true;
    violated;
    max_reorg_depth = depth;
    growth_rate = growth;
    chain_quality = quality;
  }

let test_aggregate_closed_form () =
  let t = Aggregate.create () in
  List.iter (Aggregate.observe t)
    [
      obs ~violated:true ~depth:3 0.10 0.9;
      obs 0.20 0.8;
      obs ~violated:true ~depth:40 0.30 0.7;
      obs 0.40 0.6;
    ];
  check_int "trials" 4 (Aggregate.trials t);
  check_int "rounds pooled" 400 (Aggregate.total_rounds t);
  check_int "violations" 2 (Aggregate.violations t);
  close "violation rate" 0.5 (Aggregate.violation_rate t);
  close "convergence rate" (28. /. 400.) (Aggregate.convergence_rate t);
  (* Welford matches the closed form on the fixed data. *)
  let g = Aggregate.growth_summary t in
  close "mean" 0.25 (Stats.Summary.mean g);
  close "sample variance" (0.05 /. 3.) (Stats.Summary.variance g);
  (* Wilson interval is exactly the library's closed form. *)
  (match Aggregate.wilson_interval t with
  | None -> Alcotest.fail "expected an interval"
  | Some (lo, hi) ->
    let elo, ehi = Stats.wilson_interval ~hits:2 ~trials:4 in
    check_true "wilson = closed form" (lo = elo && hi = ehi));
  (* Histogram: depth 40 saturates into the last bin. *)
  let hist = Aggregate.reorg_histogram t in
  check_int "hist length" Aggregate.hist_depths (Array.length hist);
  check_int "depth 0 bin" 2 hist.(0);
  check_int "depth 3 bin" 1 hist.(3);
  check_int "saturating bin" 1 hist.(Aggregate.hist_depths - 1);
  check_int "max depth kept exact" 40 (Aggregate.max_reorg_depth t);
  (* Nothing audited -> rate is nan, interval absent. *)
  let empty = Aggregate.create () in
  check_true "nan when unaudited" (Float.is_nan (Aggregate.violation_rate empty));
  check_true "no interval when unaudited" (Aggregate.wilson_interval empty = None)

let test_aggregate_merge_and_snapshot () =
  let all = Aggregate.create () and a = Aggregate.create () and b = Aggregate.create () in
  let stream =
    [
      obs ~depth:1 0.11 0.91; obs 0.22 0.82; obs ~violated:true ~depth:5 0.33 0.73;
      obs 0.44 0.64; obs ~depth:2 0.55 0.55;
    ]
  in
  List.iteri
    (fun i o ->
      Aggregate.observe all o;
      Aggregate.observe (if i < 2 then a else b) o)
    stream;
  let merged = Aggregate.merge a b in
  (* Integer tallies merge exactly.  The Welford floats combine by the
     parallel-merge formula, which is algebraically but not bitwise equal
     to one sequential stream — cross-jobs bit-identity instead comes
     from the campaign always merging the same shard tree. *)
  let ints (s : Aggregate.snapshot) =
    ( s.Aggregate.s_trials, s.Aggregate.s_total_rounds,
      s.Aggregate.s_audited_trials, s.Aggregate.s_violations,
      s.Aggregate.s_convergence_opportunities, s.Aggregate.s_h_rounds,
      s.Aggregate.s_max_reorg_depth, s.Aggregate.s_reorg_hist )
  in
  check_true "integer tallies merge exactly"
    (ints (Aggregate.snapshot merged) = ints (Aggregate.snapshot all));
  close "merged mean = sequential mean"
    (Stats.Summary.mean (Aggregate.growth_summary all))
    (Stats.Summary.mean (Aggregate.growth_summary merged));
  close "merged variance = sequential variance"
    (Stats.Summary.variance (Aggregate.growth_summary all))
    (Stats.Summary.variance (Aggregate.growth_summary merged));
  let snap = Aggregate.snapshot all in
  check_true "snapshot round-trips bit-identically"
    (compare (Aggregate.snapshot (Aggregate.of_snapshot snap)) snap = 0);
  check_raises_invalid "short histogram rejected" (fun () ->
      ignore (Aggregate.of_snapshot { snap with Aggregate.s_reorg_hist = [| 0 |] }));
  check_raises_invalid "negative count rejected" (fun () ->
      ignore (Aggregate.of_snapshot { snap with Aggregate.s_trials = -1 }))

(* --- Journal ------------------------------------------------------- *)

let test_journal_round_trip () =
  let header = Journal.header_of_spec tiny_spec in
  check_true "header fingerprint" (Int64.equal header.Journal.fingerprint (Spec.fingerprint tiny_spec));
  let parsed = Journal.parse (Journal.render (Journal.Header header)) in
  check_true "header round-trips" (compare parsed (Journal.Header header) = 0);
  let t = Aggregate.create () in
  List.iter (Aggregate.observe t)
    [ obs ~violated:true ~depth:2 0.125 0.875; obs (1. /. 3.) 0.5 ];
  let cell = (Spec.cells tiny_spec).(1) in
  let line = Journal.Cell (cell, Aggregate.snapshot t) in
  check_true "cell line round-trips (17g floats, int64 strings)"
    (compare (Journal.parse (Journal.render line)) line = 0);
  (match Journal.parse (Journal.render line) with
  | Journal.Cell (c, s) ->
    check_int "cell index survives" cell.Spec.index c.Spec.index;
    check_int "welford count survives" 2 s.Aggregate.s_growth.Stats.Summary.n
  | Journal.Header _ -> Alcotest.fail "expected a cell line");
  check_true "load on a missing path is None"
    (Journal.load ~path:"/nonexistent/campaign.jsonl" = None);
  (match Journal.parse "{\"oops\": tru" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line should fail")

(* --- Campaign: determinism, resume, draining ----------------------- *)

let outcome_snapshots (o : Campaign.Campaign.outcome) =
  Array.map
    (fun (r : Campaign.Campaign.cell_result) ->
      Aggregate.snapshot r.Campaign.Campaign.aggregate)
    o.Campaign.Campaign.cells

let test_jobs_determinism () =
  let j1 = temp_journal "j1" and j4 = temp_journal "j4" in
  Fun.protect
    ~finally:(fun () -> cleanup j1; cleanup j4)
    (fun () ->
      let o1 = Campaign.Campaign.run ~jobs:1 ~journal_path:j1 tiny_spec in
      let o4 = Campaign.Campaign.run ~jobs:4 ~journal_path:j4 tiny_spec in
      check_true "aggregates bit-identical across jobs"
        (compare (outcome_snapshots o1) (outcome_snapshots o4) = 0);
      check_true "journal files byte-identical across jobs"
        (read_file j1 = read_file j4);
      check_int "all trials fresh" (Spec.trial_count tiny_spec)
        o1.Campaign.Campaign.fresh_trials;
      (* Trial RNG is addressed by (seed, cell, trial): a different master
         seed shifts every stream. *)
      let o' = Campaign.Campaign.run ~jobs:1 { tiny_spec with Spec.seed = 78L } in
      check_true "seed changes results"
        (compare (outcome_snapshots o1) (outcome_snapshots o') <> 0))

let test_resume_skips_completed_cells () =
  let full = temp_journal "full" and part = temp_journal "part" in
  Fun.protect
    ~finally:(fun () -> cleanup full; cleanup part)
    (fun () ->
      let o = Campaign.Campaign.run ~jobs:2 ~journal_path:full tiny_spec in
      check_int "two cells" 2 (Array.length o.Campaign.Campaign.cells);
      (* Simulate a crash after the first cell was flushed: keep the
         header and the first cell line only. *)
      let lines = String.split_on_char '\n' (read_file full) in
      let oc = open_out_bin part in
      output_string oc (List.nth lines 0);
      output_char oc '\n';
      output_string oc (List.nth lines 1);
      output_char oc '\n';
      close_out oc;
      let r =
        Campaign.Campaign.run ~jobs:2 ~journal_path:part ~resume:true tiny_spec
      in
      check_int "one cell recovered" 1 r.Campaign.Campaign.resumed_cells;
      check_int "only the missing cell recomputed"
        tiny_spec.Spec.trials_per_cell r.Campaign.Campaign.fresh_trials;
      check_true "cell 0 came from the journal"
        r.Campaign.Campaign.cells.(0).Campaign.Campaign.from_journal;
      check_false "cell 1 was recomputed"
        r.Campaign.Campaign.cells.(1).Campaign.Campaign.from_journal;
      check_true "resumed outcome equals the uninterrupted one"
        (compare (outcome_snapshots r) (outcome_snapshots o) = 0);
      check_true "completed journal byte-identical to uninterrupted"
        (read_file part = read_file full);
      (* Resuming a complete journal computes nothing. *)
      let done_ =
        Campaign.Campaign.run ~jobs:2 ~journal_path:full ~resume:true tiny_spec
      in
      check_int "nothing left to do" 0 done_.Campaign.Campaign.fresh_trials;
      check_int "both cells recovered" 2 done_.Campaign.Campaign.resumed_cells)

let test_resume_rejects_other_spec () =
  let path = temp_journal "fp" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      ignore (Campaign.Campaign.run ~jobs:1 ~journal_path:path tiny_spec);
      check_raises_invalid "fingerprint mismatch" (fun () ->
          ignore
            (Campaign.Campaign.run ~jobs:1 ~journal_path:path ~resume:true
               { tiny_spec with Spec.trials_per_cell = 8 })))

let test_single_cell_grid_drains () =
  (* One cell, more workers than shards: the pool must clamp and drain. *)
  let spec =
    { tiny_spec with Spec.nus = [ 0.25 ]; trials_per_cell = 3; shard_size = 2 }
  in
  let o = Campaign.Campaign.run ~jobs:8 spec in
  check_int "one cell" 1 (Array.length o.Campaign.Campaign.cells);
  check_int "fresh trials" 3 o.Campaign.Campaign.fresh_trials;
  let agg = o.Campaign.Campaign.cells.(0).Campaign.Campaign.aggregate in
  check_int "all trials aggregated" 3 (Aggregate.trials agg);
  check_int "rounds pooled" (3 * spec.Spec.rounds) (Aggregate.total_rounds agg);
  check_true "audited" (Aggregate.audited_trials agg = 3)

let test_state_mode_matches_direct_runs () =
  (* The campaign in State_process mode pools exactly the counts of the
     manually-run trials with the same (seed, cell, trial) streams. *)
  let spec =
    {
      tiny_spec with
      Spec.mode = Spec.State_process;
      nus = [ 0.2 ];
      trials_per_cell = 3;
      rounds = 500;
    }
  in
  let o = Campaign.Campaign.run ~jobs:2 spec in
  let agg = o.Campaign.Campaign.cells.(0).Campaign.Campaign.aggregate in
  let cell = (Spec.cells spec).(0) in
  let expect = ref 0 in
  for trial = 0 to 2 do
    let rng = Spec.trial_rng spec cell ~trial in
    let r =
      Nakamoto_sim.State_process.run ~rng
        (Spec.state_config_of_cell cell)
        ~rounds:spec.Spec.rounds
    in
    expect := !expect + r.Nakamoto_sim.State_process.convergence_opportunities
  done;
  check_int "pooled C matches per-trial streams" !expect
    (Aggregate.convergence_opportunities agg)

let test_region_verdicts () =
  let cell ~p ~n ~delta ~nu = { Spec.index = 0; p; n; delta; nu } in
  (* Large c, tiny nu: comfortably past the neat bound. *)
  check_true "safe region"
    (Campaign.Campaign.region (cell ~p:0.001 ~n:10 ~delta:2 ~nu:0.01) = "SAFE");
  (* c < 1 with a strong adversary: PSS attack applies. *)
  check_true "attack region"
    (Campaign.Campaign.region (cell ~p:0.05 ~n:40 ~delta:4 ~nu:0.45) = "ATTACK")

let suite =
  [
    case "spec cell enumeration" test_spec_cells_enumeration;
    case "spec validation" test_spec_validation;
    case "spec fingerprint" test_spec_fingerprint;
    case "shard plan" test_shard_plan;
    case "worker pool order and draining" test_worker_pool_order_and_draining;
    case "worker pool exception propagation" test_worker_pool_exception_propagates;
    case "aggregate closed forms" test_aggregate_closed_form;
    case "aggregate merge and snapshot" test_aggregate_merge_and_snapshot;
    case "journal round trip" test_journal_round_trip;
    case "jobs determinism" test_jobs_determinism;
    case "resume skips completed cells" test_resume_skips_completed_cells;
    case "resume rejects a different spec" test_resume_rejects_other_spec;
    case "single-cell grid drains" test_single_cell_grid_drains;
    case "state mode matches direct runs" test_state_mode_matches_direct_runs;
    case "region verdicts" test_region_verdicts;
  ]
