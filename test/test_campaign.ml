open Helpers
module Campaign = Nakamoto_campaign
module Spec = Campaign.Spec
module Shard = Campaign.Shard
module Worker_pool = Campaign.Worker_pool
module Aggregate = Campaign.Aggregate
module Journal = Campaign.Journal
module Stats = Nakamoto_prob.Stats

(* A tiny full-protocol grid: 2 cells x 4 trials of 120 rounds each,
   small enough for the determinism and resume tests to rerun it several
   times. *)
let tiny_spec =
  {
    Spec.default with
    Spec.ps = [ 0.02 ];
    ns = [ 8 ];
    deltas = [ 2 ];
    nus = [ 0.1; 0.3 ];
    trials_per_cell = 4;
    rounds = 120;
    seed = 77L;
    shard_size = 1;
  }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let temp_journal tag =
  let path = Filename.temp_file ("campaign_" ^ tag) ".jsonl" in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path

(* --- Spec ---------------------------------------------------------- *)

let test_spec_cells_enumeration () =
  let spec =
    {
      tiny_spec with
      Spec.ps = [ 0.01; 0.02 ];
      deltas = [ 2; 4 ];
      nus = [ 0.1; 0.3 ];
    }
  in
  let cells = Spec.cells spec in
  check_int "cell count" 8 (Array.length cells);
  check_int "cell_count agrees" 8 (Spec.cell_count spec);
  check_int "trial_count" 32 (Spec.trial_count spec);
  Array.iteri
    (fun i (c : Spec.cell) -> check_int "indices are positions" i c.index)
    cells;
  (* Row-major: p outermost, nu innermost. *)
  check_true "first cell" (cells.(0).p = 0.01 && cells.(0).delta = 2 && cells.(0).nu = 0.1);
  check_true "nu varies fastest" (cells.(1).nu = 0.3 && cells.(1).delta = 2);
  check_true "then delta" (cells.(2).delta = 4 && cells.(2).p = 0.01);
  check_true "p varies slowest" (cells.(4).p = 0.02 && cells.(4).delta = 2 && cells.(4).nu = 0.1);
  close "c = 1/(p n Delta)"
    (1. /. (0.01 *. 8. *. 2.))
    (Spec.c_of_cell cells.(0))

let test_spec_validation () =
  Spec.validate tiny_spec;
  check_raises_invalid "empty axis" (fun () ->
      Spec.validate { tiny_spec with Spec.nus = [] });
  check_raises_invalid "bad p" (fun () ->
      Spec.validate { tiny_spec with Spec.ps = [ 0. ] });
  check_raises_invalid "nu >= 1/2" (fun () ->
      Spec.validate { tiny_spec with Spec.nus = [ 0.5 ] });
  check_raises_invalid "no trials" (fun () ->
      Spec.validate { tiny_spec with Spec.trials_per_cell = 0 });
  check_raises_invalid "bad shard size" (fun () ->
      Spec.validate { tiny_spec with Spec.shard_size = 0 })

let test_spec_fingerprint () =
  let fp = Spec.fingerprint tiny_spec in
  check_true "stable" (Int64.equal fp (Spec.fingerprint tiny_spec));
  let differs s = not (Int64.equal fp (Spec.fingerprint s)) in
  check_true "seed matters" (differs { tiny_spec with Spec.seed = 78L });
  check_true "trials matter"
    (differs { tiny_spec with Spec.trials_per_cell = 5 });
  check_true "axis matters" (differs { tiny_spec with Spec.nus = [ 0.1 ] });
  check_true "strategy matters"
    (differs { tiny_spec with Spec.strategy = Nakamoto_sim.Adversary.Idle })

(* --- Shard plan ---------------------------------------------------- *)

let test_shard_plan () =
  check_int "ceil division" 3 (Shard.per_cell ~trials_per_cell:5 ~shard_size:2);
  let plan =
    Shard.plan ~cells:3 ~trials_per_cell:5 ~shard_size:2 ~skip:(fun _ -> false)
  in
  check_int "shards" 9 (Array.length plan);
  Array.iteri (fun i (s : Shard.t) -> check_int "plan ids" i s.id) plan;
  (* Within a cell: contiguous trial ranges covering [0, 5). *)
  let covered = Array.make 5 false in
  Array.iter
    (fun (s : Shard.t) ->
      if s.cell_index = 1 then
        for t = s.trial_start to s.trial_stop - 1 do
          check_false "no trial twice" covered.(t);
          covered.(t) <- true
        done)
    plan;
  Array.iter (fun c -> check_true "all trials covered" c) covered;
  check_int "last shard is the remainder" 1
    (Shard.trials plan.(Array.length plan - 1));
  (* skip excises cells without renumbering the survivors. *)
  let resumed =
    Shard.plan ~cells:3 ~trials_per_cell:5 ~shard_size:2 ~skip:(fun i -> i = 1)
  in
  check_int "skipped cell's shards gone" 6 (Array.length resumed);
  Array.iter
    (fun (s : Shard.t) ->
      check_true "cell 1 excised" (s.cell_index <> 1))
    resumed;
  check_raises_invalid "bad shard size" (fun () ->
      ignore (Shard.plan ~cells:1 ~trials_per_cell:1 ~shard_size:0 ~skip:(fun _ -> false)))

(* --- Worker pool --------------------------------------------------- *)

let test_worker_pool_order_and_draining () =
  check_int "empty input" 0
    (Array.length (Worker_pool.run ~jobs:4 (fun ~worker:_ x -> x) [||]));
  let tasks = Array.init 23 (fun i -> i) in
  let seen = ref 0 in
  let workers_seen = ref [] in
  let results =
    Worker_pool.run ~jobs:4
      ~on_result:(fun _ _ -> incr seen)
      (fun ~worker i ->
        if not (List.mem worker !workers_seen) then
          workers_seen := worker :: !workers_seen;
        i * i)
      tasks
  in
  check_int "on_result once per task" 23 !seen;
  Array.iteri (fun i r -> check_int "results in task order" (i * i) r) results;
  check_true "worker indices stay within [0, jobs)"
    (List.for_all (fun w -> w >= 0 && w < 4) !workers_seen);
  (* More workers than tasks: pool clamps and still drains. *)
  let one = Worker_pool.run ~jobs:16 (fun ~worker:_ i -> i + 1) [| 41 |] in
  check_int "jobs > tasks" 42 one.(0);
  check_raises_invalid "jobs < 1" (fun () ->
      ignore (Worker_pool.run ~jobs:0 (fun ~worker:_ x -> x) [| 1 |]))

let test_worker_pool_exception_propagates () =
  match
    Worker_pool.run ~jobs:3
      (fun ~worker:_ i -> if i = 5 then failwith "task 5 exploded" else i)
      (Array.init 12 (fun i -> i))
  with
  | exception Failure msg -> check_true "first failure re-raised" (msg = "task 5 exploded")
  | _ -> Alcotest.fail "expected the task exception to propagate"

let test_worker_pool_retries_requeue () =
  (* Task 5 fails on its first two attempts; a retry budget of 2 gives it
     three attempts total, so the pool must still drain every slot. *)
  let attempts = Atomic.make 0 in
  let retried = ref [] in
  let results =
    Worker_pool.run ~jobs:3 ~retries:2
      ~on_retry:(fun ~task ~attempt _e -> retried := (task, attempt) :: !retried)
      (fun ~worker:_ i ->
        if i = 5 && Atomic.fetch_and_add attempts 1 < 2 then
          failwith "flaky shard"
        else i * 10)
      (Array.init 8 (fun i -> i))
  in
  Array.iteri (fun i r -> check_int "every slot drained" (i * 10) r) results;
  check_true "both failures reported to on_retry"
    (List.sort compare !retried = [ (5, 1); (5, 2) ]);
  (* The same flake with retries:1 exhausts the budget and re-raises. *)
  let attempts = Atomic.make 0 in
  match
    Worker_pool.run ~jobs:3 ~retries:1
      (fun ~worker:_ i ->
        if i = 5 && Atomic.fetch_and_add attempts 1 < 2 then
          failwith "flaky shard"
        else i)
      (Array.init 8 (fun i -> i))
  with
  | exception Failure msg -> check_true "budget exhausted" (msg = "flaky shard")
  | _ -> Alcotest.fail "expected the exhausted retry budget to re-raise"

let test_worker_pool_retry_determinism () =
  (* A retried task runs the same pure function on the same input, so a
     pool with flakes returns exactly what a clean pool returns. *)
  let clean =
    Worker_pool.run ~jobs:4 (fun ~worker:_ i -> i * i)
      (Array.init 20 (fun i -> i))
  in
  let tries = Array.init 20 (fun _ -> Atomic.make 0) in
  let flaky =
    Worker_pool.run ~jobs:4 ~retries:1
      (fun ~worker:_ i ->
        (* Every third task fails its first attempt, everywhere at once. *)
        if Atomic.fetch_and_add tries.(i) 1 = 0 && i mod 3 = 0 then
          failwith "chaos"
        else i * i)
      (Array.init 20 (fun i -> i))
  in
  check_true "flaky pool converges to the clean result" (clean = flaky)

(* --- Aggregate ----------------------------------------------------- *)

let obs ?(violated = false) ?(depth = 0) growth quality =
  {
    Aggregate.rounds = 100;
    convergence_opportunities = 7;
    adversary_blocks = 2;
    honest_blocks = 11;
    h_rounds = 20;
    h1_rounds = 15;
    full = true;
    violated;
    max_reorg_depth = depth;
    growth_rate = growth;
    chain_quality = quality;
  }

let test_aggregate_closed_form () =
  let t = Aggregate.create () in
  List.iter (Aggregate.observe t)
    [
      obs ~violated:true ~depth:3 0.10 0.9;
      obs 0.20 0.8;
      obs ~violated:true ~depth:40 0.30 0.7;
      obs 0.40 0.6;
    ];
  check_int "trials" 4 (Aggregate.trials t);
  check_int "rounds pooled" 400 (Aggregate.total_rounds t);
  check_int "violations" 2 (Aggregate.violations t);
  close "violation rate" 0.5 (Aggregate.violation_rate t);
  close "convergence rate" (28. /. 400.) (Aggregate.convergence_rate t);
  (* Welford matches the closed form on the fixed data. *)
  let g = Aggregate.growth_summary t in
  close "mean" 0.25 (Stats.Summary.mean g);
  close "sample variance" (0.05 /. 3.) (Stats.Summary.variance g);
  (* Wilson interval is exactly the library's closed form. *)
  (match Aggregate.wilson_interval t with
  | None -> Alcotest.fail "expected an interval"
  | Some (lo, hi) ->
    let elo, ehi = Stats.wilson_interval ~hits:2 ~trials:4 in
    check_true "wilson = closed form" (lo = elo && hi = ehi));
  (* Histogram: depth 40 saturates into the last bin. *)
  let hist = Aggregate.reorg_histogram t in
  check_int "hist length" Aggregate.hist_depths (Array.length hist);
  check_int "depth 0 bin" 2 hist.(0);
  check_int "depth 3 bin" 1 hist.(3);
  check_int "saturating bin" 1 hist.(Aggregate.hist_depths - 1);
  check_int "max depth kept exact" 40 (Aggregate.max_reorg_depth t);
  (* Nothing audited -> rate is nan, interval absent. *)
  let empty = Aggregate.create () in
  check_true "nan when unaudited" (Float.is_nan (Aggregate.violation_rate empty));
  check_true "no interval when unaudited" (Aggregate.wilson_interval empty = None)

let test_aggregate_merge_and_snapshot () =
  let all = Aggregate.create () and a = Aggregate.create () and b = Aggregate.create () in
  let stream =
    [
      obs ~depth:1 0.11 0.91; obs 0.22 0.82; obs ~violated:true ~depth:5 0.33 0.73;
      obs 0.44 0.64; obs ~depth:2 0.55 0.55;
    ]
  in
  List.iteri
    (fun i o ->
      Aggregate.observe all o;
      Aggregate.observe (if i < 2 then a else b) o)
    stream;
  let merged = Aggregate.merge a b in
  (* Integer tallies merge exactly.  The Welford floats combine by the
     parallel-merge formula, which is algebraically but not bitwise equal
     to one sequential stream — cross-jobs bit-identity instead comes
     from the campaign always merging the same shard tree. *)
  let ints (s : Aggregate.snapshot) =
    ( s.Aggregate.s_trials, s.Aggregate.s_total_rounds,
      s.Aggregate.s_audited_trials, s.Aggregate.s_violations,
      s.Aggregate.s_convergence_opportunities, s.Aggregate.s_h_rounds,
      s.Aggregate.s_max_reorg_depth, s.Aggregate.s_reorg_hist )
  in
  check_true "integer tallies merge exactly"
    (ints (Aggregate.snapshot merged) = ints (Aggregate.snapshot all));
  close "merged mean = sequential mean"
    (Stats.Summary.mean (Aggregate.growth_summary all))
    (Stats.Summary.mean (Aggregate.growth_summary merged));
  close "merged variance = sequential variance"
    (Stats.Summary.variance (Aggregate.growth_summary all))
    (Stats.Summary.variance (Aggregate.growth_summary merged));
  let snap = Aggregate.snapshot all in
  check_true "snapshot round-trips bit-identically"
    (compare (Aggregate.snapshot (Aggregate.of_snapshot snap)) snap = 0);
  check_raises_invalid "short histogram rejected" (fun () ->
      ignore (Aggregate.of_snapshot { snap with Aggregate.s_reorg_hist = [| 0 |] }));
  check_raises_invalid "negative count rejected" (fun () ->
      ignore (Aggregate.of_snapshot { snap with Aggregate.s_trials = -1 }))

(* --- Journal ------------------------------------------------------- *)

let test_journal_round_trip () =
  let header = Journal.header_of_spec tiny_spec in
  check_true "header fingerprint" (Int64.equal header.Journal.fingerprint (Spec.fingerprint tiny_spec));
  let parsed = Journal.parse (Journal.render (Journal.Header header)) in
  check_true "header round-trips" (compare parsed (Journal.Header header) = 0);
  let t = Aggregate.create () in
  List.iter (Aggregate.observe t)
    [ obs ~violated:true ~depth:2 0.125 0.875; obs (1. /. 3.) 0.5 ];
  let cell = (Spec.cells tiny_spec).(1) in
  let line = Journal.Cell (cell, Aggregate.snapshot t) in
  check_true "cell line round-trips (17g floats, int64 strings)"
    (compare (Journal.parse (Journal.render line)) line = 0);
  (match Journal.parse (Journal.render line) with
  | Journal.Cell (c, s) ->
    check_int "cell index survives" cell.Spec.index c.Spec.index;
    check_int "welford count survives" 2 s.Aggregate.s_growth.Stats.Summary.n
  | Journal.Header _ -> Alcotest.fail "expected a cell line");
  check_true "load on a missing path is No_file"
    (Journal.load ~path:"/nonexistent/campaign.jsonl" = Journal.No_file);
  (match Journal.parse "{\"oops\": tru" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line should fail")

(* --- Journal: writer + torn-tail classification -------------------- *)

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* A complete well-formed journal (header + 2 cells) rendered through
   the writer, for the tear tests to mutilate. *)
let render_tiny_journal path =
  let w = Journal.create_writer ~path ~fresh:true () in
  Journal.append w (Journal.Header (Journal.header_of_spec tiny_spec));
  let t = Aggregate.create () in
  List.iter (Aggregate.observe t) [ obs 0.125 0.875; obs 0.25 0.75 ];
  Array.iter
    (fun cell -> Journal.append w (Journal.Cell (cell, Aggregate.snapshot t)))
    (Spec.cells tiny_spec);
  Journal.close_writer w

let test_journal_writer_round_trip () =
  let path = temp_journal "writer" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      render_tiny_journal path;
      match Journal.load ~path with
      | Journal.Loaded { l_header; entries; torn } ->
        check_true "fingerprint survives"
          (Int64.equal l_header.Journal.fingerprint (Spec.fingerprint tiny_spec));
        check_int "both cells load" 2 (List.length entries);
        check_true "clean file has no torn tail" (torn = None);
        (* Reopening in append mode and closing changes nothing. *)
        let before = read_file path in
        Journal.close_writer (Journal.create_writer ~path ~fresh:false ());
        check_true "append-mode open is byte-preserving" (read_file path = before)
      | _ -> Alcotest.fail "expected Loaded")

let test_journal_torn_tail_detected_and_repaired () =
  let path = temp_journal "torn" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      render_tiny_journal path;
      let whole = read_file path in
      (* Tear the last line in half: SIGKILL mid-append. *)
      let tail_start = 1 + String.rindex_from whole (String.length whole - 2) '\n' in
      let torn_len = (String.length whole - tail_start) / 2 in
      write_raw path (String.sub whole 0 (tail_start + torn_len));
      (match Journal.load ~path with
      | Journal.Loaded { entries; torn = Some t; _ } ->
        check_int "intact prefix survives the tear" 1 (List.length entries);
        check_int "valid_bytes = offset of the torn line" tail_start t.Journal.valid_bytes;
        check_int "dropped_bytes = the partial tail" torn_len t.Journal.dropped_bytes;
        Journal.repair ~path t;
        check_true "repair truncates to the valid prefix"
          (read_file path = String.sub whole 0 tail_start);
        (match Journal.load ~path with
        | Journal.Loaded { entries; torn = None; _ } ->
          check_int "repaired file loads cleanly" 1 (List.length entries)
        | _ -> Alcotest.fail "repaired journal should load with no torn tail")
      | _ -> Alcotest.fail "expected Loaded with a torn tail");
      (* A final line that parses but lacks its newline is also torn:
         the append was cut between the payload and the terminator. *)
      write_raw path (String.sub whole 0 (String.length whole - 1));
      (match Journal.load ~path with
      | Journal.Loaded { entries; torn = Some t; _ } ->
        check_int "unterminated-but-parseable tail is torn" 1 (List.length entries);
        check_int "tail measured to the last newline" tail_start t.Journal.valid_bytes
      | _ -> Alcotest.fail "expected a torn tail for a missing newline"))

let test_journal_unusable_and_fatal_shapes () =
  let path = temp_journal "shapes" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      render_tiny_journal path;
      let whole = read_file path in
      let lines = String.split_on_char '\n' whole in
      let header = List.nth lines 0 and cell0 = List.nth lines 1 in
      (* Empty file: unusable, not fatal — resume starts fresh. *)
      write_raw path "";
      (match Journal.load ~path with
      | Journal.Unusable _ -> ()
      | _ -> Alcotest.fail "empty file should be Unusable");
      (* Torn header (no newline yet): nothing recoverable either. *)
      write_raw path (String.sub header 0 (String.length header / 2));
      (match Journal.load ~path with
      | Journal.Unusable _ -> ()
      | _ -> Alcotest.fail "torn header should be Unusable");
      (* Duplicate header mid-file: real corruption, must stay fatal. *)
      write_raw path (header ^ "\n" ^ cell0 ^ "\n" ^ header ^ "\n");
      (match Journal.load ~path with
      | exception Failure msg ->
        check_true "duplicate header named"
          (contains_substring ~affix:"duplicate header" msg)
      | _ -> Alcotest.fail "duplicate header should be fatal");
      (* Malformed line *before* the tail: fatal, not a torn tail. *)
      write_raw path (header ^ "\n{\"oops\": tru\n" ^ cell0 ^ "\n");
      (match Journal.load ~path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "mid-file damage should be fatal");
      (* A journal that starts with a cell line never had a header. *)
      write_raw path (cell0 ^ "\n");
      match Journal.load ~path with
      | exception Failure msg ->
        check_true "missing header named"
          (contains_substring ~affix:"header" msg)
      | _ -> Alcotest.fail "cell-first journal should be fatal")

(* --- Progress ------------------------------------------------------ *)

let test_progress_resume_rate_and_eta () =
  let module Progress = Campaign.Progress in
  (* 100 resumed + 900 fresh; 10s in, 100 fresh done.  The rate must
     count only the fresh 100, not the journal's 100 freebies. *)
  let p = Progress.create ~interval:0. ~resumed_trials:100 ~total_trials:1000 () in
  let now = Progress.started p +. 10. in
  close "rate excludes resumed trials" 10. (Progress.rate p ~trials_done:200 ~now);
  (* 800 remaining at 10/s. *)
  close "eta from the fresh rate" 80. (Progress.eta p ~trials_done:200 ~now);
  check_true "eta is 0 when done" (Progress.eta p ~trials_done:1000 ~now = 0.);
  (* No fresh work yet: the rate is 0 and the ETA honestly unknown. *)
  check_true "rate is 0 before any fresh trial"
    (Progress.rate p ~trials_done:100 ~now = 0.);
  check_true "eta is infinite at rate 0"
    (Progress.eta p ~trials_done:100 ~now = Float.infinity);
  (* Without the fix the old reporter divided 200 trials by 10s: 20/s. *)
  let skewed = float_of_int 200 /. 10. in
  check_true "regression: resumed trials no longer inflate the rate"
    (Progress.rate p ~trials_done:200 ~now < skewed);
  check_raises_invalid "resumed > total rejected" (fun () ->
      ignore (Progress.create ~resumed_trials:2 ~total_trials:1 ()))

let test_progress_silent_is_fresh () =
  let module Progress = Campaign.Progress in
  (* Each silent reporter owns its clock: two created at different times
     must not share state (the old [silent] was one global record). *)
  let a = Progress.silent () in
  Unix.sleepf 0.02;
  let b = Progress.silent () in
  check_true "distinct silent reporters have distinct clocks"
    (Progress.started b > Progress.started a);
  (* Silent reporters never print, whatever is thrown at them. *)
  Progress.note a ~trials_done:5;
  Progress.finish a ~trials_done:5

(* --- Campaign: determinism, resume, draining ----------------------- *)

let outcome_snapshots (o : Campaign.Campaign.outcome) =
  Array.map
    (fun (r : Campaign.Campaign.cell_result) ->
      Aggregate.snapshot r.Campaign.Campaign.aggregate)
    o.Campaign.Campaign.cells

let test_jobs_determinism () =
  let j1 = temp_journal "j1" and j4 = temp_journal "j4" in
  Fun.protect
    ~finally:(fun () -> cleanup j1; cleanup j4)
    (fun () ->
      let o1 = Campaign.Campaign.run ~jobs:1 ~journal_path:j1 tiny_spec in
      let o4 = Campaign.Campaign.run ~jobs:4 ~journal_path:j4 tiny_spec in
      check_true "aggregates bit-identical across jobs"
        (compare (outcome_snapshots o1) (outcome_snapshots o4) = 0);
      check_true "journal files byte-identical across jobs"
        (read_file j1 = read_file j4);
      check_int "all trials fresh" (Spec.trial_count tiny_spec)
        o1.Campaign.Campaign.fresh_trials;
      (* Trial RNG is addressed by (seed, cell, trial): a different master
         seed shifts every stream. *)
      let o' = Campaign.Campaign.run ~jobs:1 { tiny_spec with Spec.seed = 78L } in
      check_true "seed changes results"
        (compare (outcome_snapshots o1) (outcome_snapshots o') <> 0))

let test_resume_skips_completed_cells () =
  let full = temp_journal "full" and part = temp_journal "part" in
  Fun.protect
    ~finally:(fun () -> cleanup full; cleanup part)
    (fun () ->
      let o = Campaign.Campaign.run ~jobs:2 ~journal_path:full tiny_spec in
      check_int "two cells" 2 (Array.length o.Campaign.Campaign.cells);
      (* Simulate a crash after the first cell was flushed: keep the
         header and the first cell line only. *)
      let lines = String.split_on_char '\n' (read_file full) in
      let oc = open_out_bin part in
      output_string oc (List.nth lines 0);
      output_char oc '\n';
      output_string oc (List.nth lines 1);
      output_char oc '\n';
      close_out oc;
      let r =
        Campaign.Campaign.run ~jobs:2 ~journal_path:part ~resume:true
          ~log:ignore tiny_spec
      in
      check_int "one cell recovered" 1 r.Campaign.Campaign.resumed_cells;
      check_int "only the missing cell recomputed"
        tiny_spec.Spec.trials_per_cell r.Campaign.Campaign.fresh_trials;
      check_true "cell 0 came from the journal"
        r.Campaign.Campaign.cells.(0).Campaign.Campaign.from_journal;
      check_false "cell 1 was recomputed"
        r.Campaign.Campaign.cells.(1).Campaign.Campaign.from_journal;
      check_true "resumed outcome equals the uninterrupted one"
        (compare (outcome_snapshots r) (outcome_snapshots o) = 0);
      check_true "completed journal byte-identical to uninterrupted"
        (read_file part = read_file full);
      (* Resuming a complete journal computes nothing. *)
      let done_ =
        Campaign.Campaign.run ~jobs:2 ~journal_path:full ~resume:true
          ~log:ignore tiny_spec
      in
      check_int "nothing left to do" 0 done_.Campaign.Campaign.fresh_trials;
      check_int "both cells recovered" 2 done_.Campaign.Campaign.resumed_cells)

let test_resume_repairs_torn_tail () =
  let full = temp_journal "tfull" and torn = temp_journal "ttorn" in
  Fun.protect
    ~finally:(fun () -> cleanup full; cleanup torn)
    (fun () ->
      let o = Campaign.Campaign.run ~jobs:2 ~journal_path:full tiny_spec in
      let whole = read_file full in
      (* SIGKILL mid-append of the last cell: the journal ends in a
         partial line.  Before the fix this bricked --resume with
         [Failure "journal line ..."].  *)
      let tail_start = 1 + String.rindex_from whole (String.length whole - 2) '\n' in
      let cut = tail_start + ((String.length whole - tail_start) / 2) in
      write_raw torn (String.sub whole 0 cut);
      let logged = ref [] in
      let r =
        Campaign.Campaign.run ~jobs:2 ~journal_path:torn ~resume:true
          ~log:(fun m -> logged := m :: !logged)
          tiny_spec
      in
      check_true "the repair was logged, not fatal"
        (List.exists (contains_substring ~affix:"torn tail") !logged);
      check_int "only the torn cell recomputed" tiny_spec.Spec.trials_per_cell
        r.Campaign.Campaign.fresh_trials;
      check_true "resumed outcome equals the uninterrupted one"
        (compare (outcome_snapshots r) (outcome_snapshots o) = 0);
      check_true "repaired journal byte-identical to uninterrupted"
        (read_file torn = whole);
      (* An empty journal file (killed before the header append finished
         its write) resumes as a fresh run, with a logged warning. *)
      write_raw torn "";
      let logged = ref [] in
      let r2 =
        Campaign.Campaign.run ~jobs:2 ~journal_path:torn ~resume:true
          ~log:(fun m -> logged := m :: !logged)
          tiny_spec
      in
      check_true "unusable journal logged"
        (List.exists (contains_substring ~affix:"no usable state") !logged);
      check_int "everything recomputed" (Spec.trial_count tiny_spec)
        r2.Campaign.Campaign.fresh_trials;
      check_true "rebuilt journal byte-identical" (read_file torn = whole))

let test_resume_rejects_other_spec () =
  let path = temp_journal "fp" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      ignore (Campaign.Campaign.run ~jobs:1 ~journal_path:path tiny_spec);
      check_raises_invalid "fingerprint mismatch" (fun () ->
          ignore
            (Campaign.Campaign.run ~jobs:1 ~journal_path:path ~resume:true
               { tiny_spec with Spec.trials_per_cell = 8 })))

let test_single_cell_grid_drains () =
  (* One cell, more workers than shards: the pool must clamp and drain. *)
  let spec =
    { tiny_spec with Spec.nus = [ 0.25 ]; trials_per_cell = 3; shard_size = 2 }
  in
  let o = Campaign.Campaign.run ~jobs:8 spec in
  check_int "one cell" 1 (Array.length o.Campaign.Campaign.cells);
  check_int "fresh trials" 3 o.Campaign.Campaign.fresh_trials;
  let agg = o.Campaign.Campaign.cells.(0).Campaign.Campaign.aggregate in
  check_int "all trials aggregated" 3 (Aggregate.trials agg);
  check_int "rounds pooled" (3 * spec.Spec.rounds) (Aggregate.total_rounds agg);
  check_true "audited" (Aggregate.audited_trials agg = 3)

let test_state_mode_matches_direct_runs () =
  (* The campaign in State_process mode pools exactly the counts of the
     manually-run trials with the same (seed, cell, trial) streams. *)
  let spec =
    {
      tiny_spec with
      Spec.mode = Spec.State_process;
      nus = [ 0.2 ];
      trials_per_cell = 3;
      rounds = 500;
    }
  in
  let o = Campaign.Campaign.run ~jobs:2 spec in
  let agg = o.Campaign.Campaign.cells.(0).Campaign.Campaign.aggregate in
  let cell = (Spec.cells spec).(0) in
  let expect = ref 0 in
  for trial = 0 to 2 do
    let rng = Spec.trial_rng spec cell ~trial in
    let r =
      Nakamoto_sim.State_process.run ~rng
        (Spec.state_config_of_cell cell)
        ~rounds:spec.Spec.rounds
    in
    expect := !expect + r.Nakamoto_sim.State_process.convergence_opportunities
  done;
  check_int "pooled C matches per-trial streams" !expect
    (Aggregate.convergence_opportunities agg)

let test_region_verdicts () =
  let cell ~p ~n ~delta ~nu = { Spec.index = 0; p; n; delta; nu } in
  (* Large c, tiny nu: comfortably past the neat bound. *)
  check_true "safe region"
    (Campaign.Campaign.region (cell ~p:0.001 ~n:10 ~delta:2 ~nu:0.01) = "SAFE");
  (* c < 1 with a strong adversary: PSS attack applies. *)
  check_true "attack region"
    (Campaign.Campaign.region (cell ~p:0.05 ~n:40 ~delta:4 ~nu:0.45) = "ATTACK")

(* --- canonical spec JSON (the wire / journal / fingerprint codec) --- *)

let test_spec_json_round_trip () =
  let variants =
    [
      tiny_spec;
      Spec.default;
      { tiny_spec with Spec.mode = Spec.State_process; seed = Int64.min_int };
      {
        tiny_spec with
        Spec.strategy = Nakamoto_sim.Adversary.Idle;
        nus = [ 0.; 0.25 ];
      };
      {
        tiny_spec with
        Spec.strategy = Nakamoto_sim.Adversary.Balance { group_boundary = 7 };
      };
      { tiny_spec with Spec.strategy = Nakamoto_sim.Adversary.Selfish_mining };
    ]
  in
  List.iter
    (fun spec ->
      let json = Spec.to_json spec in
      match Spec.of_json json with
      | Error e -> Alcotest.failf "of_json rejected its own output: %s" e
      | Ok spec' ->
        Alcotest.(check string) "canonical bytes stable" json
          (Spec.to_json spec');
        check_true "fingerprint stable"
          (Spec.fingerprint spec = Spec.fingerprint spec'))
    variants;
  (* Whitespace-insensitive on input, canonical on output. *)
  let replace ~sub ~by s =
    let n = String.length sub in
    let rec find i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> Alcotest.failf "expected %S in the canonical json" sub
    | Some i ->
      String.sub s 0 i ^ by
      ^ String.sub s (i + n) (String.length s - i - n)
  in
  let json = Spec.to_json tiny_spec in
  (match Spec.of_json (replace ~sub:"," ~by:" ,\n " json) with
  | Ok spec' ->
    Alcotest.(check string) "whitespace tolerated" json (Spec.to_json spec')
  | Error e -> Alcotest.failf "whitespace variant rejected: %s" e);
  (match Spec.of_json "{" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed json must be rejected");
  (match Spec.of_json "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields must be rejected");
  match Spec.of_json (replace ~sub:"\"full\"" ~by:"\"woo\"" json) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mode must be rejected"

let test_journal_fold_resume () =
  let path = temp_journal "fold" in
  let messages = ref [] in
  let log m = messages := m :: !messages in
  (* No file yet: Fresh None, nothing logged. *)
  (match
     Journal.fold ~log ~path ~fingerprint:(Spec.fingerprint tiny_spec)
       ~init:0
       (fun acc _ _ -> acc + 1)
   with
  | Journal.Fresh None -> ()
  | _ -> Alcotest.fail "no file must fold to Fresh None");
  (* A journal with two cells folds them in file order. *)
  let outcome =
    Campaign.Campaign.run ~jobs:1 ~journal_path:path ~log:(fun _ -> ())
      tiny_spec
  in
  (match
     Journal.fold ~log ~path ~fingerprint:(Spec.fingerprint tiny_spec)
       ~init:[]
       (fun acc (cell : Spec.cell) _ -> cell.Spec.index :: acc)
   with
  | Journal.Recovered { acc; entries } ->
    check_int "both cells folded" 2 entries;
    check_true "file order" (List.rev acc = [ 0; 1 ])
  | Journal.Fresh _ -> Alcotest.fail "a complete journal must recover");
  ignore outcome;
  (* Fingerprint mismatch is loud and names the path. *)
  (match
     Journal.fold ~log ~path ~fingerprint:1L ~init:() (fun () _ _ -> ())
   with
  | exception Invalid_argument m ->
    check_true "mismatch names the journal path"
      (contains_substring ~affix:path m)
  | _ -> Alcotest.fail "fingerprint mismatch must raise");
  (* A torn tail is repaired in place, with a logged line naming the
     path, and the torn cell simply drops out of the fold. *)
  let whole = read_file path in
  let oc = open_out_bin path in
  output_string oc (String.sub whole 0 (String.length whole - 7));
  close_out oc;
  messages := [];
  (match
     Journal.fold ~log ~path ~fingerprint:(Spec.fingerprint tiny_spec)
       ~init:0
       (fun acc _ _ -> acc + 1)
   with
  | Journal.Recovered { acc; entries } ->
    check_int "torn final cell dropped" 1 entries;
    check_int "acc matches entries" 1 acc;
    check_true "repair logged with the path"
      (List.exists
         (fun m ->
           contains_substring ~affix:"repaired torn tail" m
           && contains_substring ~affix:path m)
         !messages)
  | Journal.Fresh _ -> Alcotest.fail "torn tail must still recover");
  (* An unusable file (no complete header) folds Fresh with the reason. *)
  let oc = open_out_bin path in
  output_string oc "{\"v\":1";
  close_out oc;
  messages := [];
  (match
     Journal.fold ~log ~path ~fingerprint:(Spec.fingerprint tiny_spec)
       ~init:() (fun () _ _ -> ())
   with
  | Journal.Fresh (Some _) ->
    check_true "unusable logged with the path"
      (List.exists (fun m -> contains_substring ~affix:path m) !messages)
  | _ -> Alcotest.fail "a header-less file must fold Fresh (Some reason)");
  cleanup path

let suite =
  [
    case "spec cell enumeration" test_spec_cells_enumeration;
    case "spec validation" test_spec_validation;
    case "spec fingerprint" test_spec_fingerprint;
    case "shard plan" test_shard_plan;
    case "worker pool order and draining" test_worker_pool_order_and_draining;
    case "worker pool exception propagation" test_worker_pool_exception_propagates;
    case "worker pool retries requeue" test_worker_pool_retries_requeue;
    case "worker pool retry determinism" test_worker_pool_retry_determinism;
    case "aggregate closed forms" test_aggregate_closed_form;
    case "aggregate merge and snapshot" test_aggregate_merge_and_snapshot;
    case "journal round trip" test_journal_round_trip;
    case "journal writer round trip" test_journal_writer_round_trip;
    case "journal torn tail detect and repair" test_journal_torn_tail_detected_and_repaired;
    case "journal unusable and fatal shapes" test_journal_unusable_and_fatal_shapes;
    case "progress resume rate and eta" test_progress_resume_rate_and_eta;
    case "progress silent reporters are fresh" test_progress_silent_is_fresh;
    case "jobs determinism" test_jobs_determinism;
    case "resume skips completed cells" test_resume_skips_completed_cells;
    case "resume repairs a torn tail" test_resume_repairs_torn_tail;
    case "resume rejects a different spec" test_resume_rejects_other_spec;
    case "single-cell grid drains" test_single_cell_grid_drains;
    case "state mode matches direct runs" test_state_mode_matches_direct_runs;
    case "region verdicts" test_region_verdicts;
    case "spec canonical json round-trips" test_spec_json_round_trip;
    case "journal fold: fresh, recover, repair, reject"
      test_journal_fold_resume;
  ]
