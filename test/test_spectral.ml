open Helpers
module Chain = Nakamoto_markov.Chain
module Spectral = Nakamoto_markov.Spectral

let weather =
  Chain.create ~size:2
    ~rows:[| [ (0, 0.7); (1, 0.3) ]; [ (0, 0.5); (1, 0.5) ] |]
    ()

let test_two_state_exact () =
  (* Eigenvalues of a 2x2 stochastic matrix are 1 and (a + d - 1). *)
  close ~rtol:1e-6 "weather slem" 0.2 (Spectral.slem weather);
  close ~rtol:1e-6 "relaxation" (1. /. 0.8) (Spectral.relaxation_time weather)

let test_iid_chain_slem_zero () =
  (* Rows all equal: one-step mixing, SLEM 0. *)
  let iid =
    Chain.create ~size:3
      ~rows:
        [|
          [ (0, 0.2); (1, 0.3); (2, 0.5) ];
          [ (0, 0.2); (1, 0.3); (2, 0.5) ];
          [ (0, 0.2); (1, 0.3); (2, 0.5) ];
        |]
      ()
  in
  check_true "slem ~ 0" (Spectral.slem iid < 1e-6)

let test_slow_chain_large_slem () =
  (* Sticky two-state chain: eigenvalue 0.98. *)
  let sticky =
    Chain.create ~size:2
      ~rows:[| [ (0, 0.99); (1, 0.01) ]; [ (0, 0.01); (1, 0.99) ] |]
      ()
  in
  close ~rtol:1e-5 "sticky slem" 0.98 (Spectral.slem sticky);
  check_true "long relaxation" (Spectral.relaxation_time sticky > 49.)

let test_periodic_rejected () =
  let cyc =
    Chain.create ~size:3 ~rows:[| [ (1, 1.) ]; [ (2, 1.) ]; [ (0, 1.) ] |] ()
  in
  check_raises_invalid "periodic chain rejected" (fun () ->
      ignore (Spectral.slem cyc))

let test_singleton () =
  let one = Chain.create ~size:1 ~rows:[| [ (0, 1.) ] |] () in
  close "singleton slem 0" 0. (Spectral.slem one)

let test_estimate_tracks_exact_mixing () =
  (* On the paper's suffix chains (non-reversible), the spectral estimate
     must stay within a small factor of the exact mixing time. *)
  List.iter
    (fun (delta, alpha) ->
      let chain = Nakamoto_core.Suffix_chain.build ~delta ~alpha in
      let estimate = Spectral.mixing_time_estimate chain in
      match Chain.mixing_time chain with
      | None -> Alcotest.fail "suffix chain must mix"
      | Some exact ->
        let ratio = estimate /. float_of_int exact in
        check_true
          (Printf.sprintf "d=%d a=%g estimate %.1f vs exact %d" delta alpha
             estimate exact)
          (ratio > 0.1 && ratio < 10.))
    [ (4, 0.3); (8, 0.2); (16, 0.1) ]

let test_nonconvergence_message_is_actionable () =
  (* Starve a cycle-like chain (complex non-principal eigenvalues, so
     the block estimates oscillate) of iterations: the failure must name
     the step count, the tolerance, the last estimate and the residual —
     not just "did not stabilize". *)
  let slow = Nakamoto_core.Suffix_chain.build ~delta:16 ~alpha:0.1 in
  match Spectral.slem ~tol:1e-15 ~max_iter:128 slow with
  | _ -> Alcotest.fail "expected non-convergence at max_iter:128"
  | exception Failure msg ->
    List.iter
      (fun affix ->
        check_true
          (Printf.sprintf "message mentions %s" affix)
          (contains_substring ~affix msg))
      [
        "128 steps"; "tol 1e-15"; "last estimate"; "last residual";
        "current gap estimate";
      ]

let test_default_budget_scales () =
  (* tol < 0 can never be met, so the default budget itself shows up in
     the failure: a 2-state chain must still get the historical 2M-step
     ceiling (the work-budget scaling only bites past ~1000 states). *)
  match Spectral.slem ~tol:(-1.) weather with
  | _ -> Alcotest.fail "tol < 0 cannot converge"
  | exception Failure msg ->
    check_true "small chains keep the 2M-step default"
      (contains_substring ~affix:"2000000 steps" msg);
    check_true "gap estimate is reported"
      (contains_substring ~affix:"current gap estimate 0.8" msg)

let test_sparse_routing_matches_dense () =
  (* Just above the crossover the pushforward runs on the CSR transpose;
     the estimate must agree with the dense path to estimator tolerance. *)
  let chain = Nakamoto_core.Suffix_chain.build ~delta:280 ~alpha:0.3 in
  check_true "above crossover"
    (Chain.size chain > Chain.sparse_crossover);
  let small = Nakamoto_core.Suffix_chain.build ~delta:200 ~alpha:0.3 in
  let s_small = Spectral.slem ~tol:1e-6 small in
  let s_large = Spectral.slem ~tol:1e-6 chain in
  (* Both SLEMs are ~abar-driven and within a few percent of each other;
     the point is that the sparse route returns a sane value, not NaN or
     a kernel mismatch. *)
  check_true "sparse-routed slem in (0, 1)" (s_large > 0. && s_large < 1.);
  check_true "comparable to the dense-routed neighbour"
    (Float.abs (s_large -. s_small) < 0.05)

let test_estimate_exact_for_reversible () =
  (* weather is reversible (2 states always are): the formula upper-bounds
     the true mixing time. *)
  let estimate = Spectral.mixing_time_estimate weather in
  match Chain.mixing_time weather with
  | Some exact -> check_true "upper bound" (estimate >= float_of_int exact -. 1.)
  | None -> Alcotest.fail "weather mixes"

let suite =
  [
    case "two-state exact eigenvalue" test_two_state_exact;
    case "iid chain has slem 0" test_iid_chain_slem_zero;
    case "sticky chain has large slem" test_slow_chain_large_slem;
    case "periodic rejected" test_periodic_rejected;
    case "singleton" test_singleton;
    case "estimate tracks exact mixing (suffix chains)"
      test_estimate_tracks_exact_mixing;
    case "upper bound for reversible chains" test_estimate_exact_for_reversible;
    case "non-convergence message is actionable"
      test_nonconvergence_message_is_actionable;
    case "default iteration budget keeps the 2M ceiling on small chains"
      test_default_budget_scales;
    case "sparse routing above the crossover" test_sparse_routing_matches_dense;
  ]
