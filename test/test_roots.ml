open Helpers
module Roots = Nakamoto_numerics.Roots

let root_of = function
  | Roots.Converged { root; _ } -> root
  | Roots.No_sign_change _ -> Alcotest.fail "no sign change"
  | Roots.Max_iterations _ -> Alcotest.fail "did not converge"

let test_bisect_basic () =
  let r = root_of (Roots.bisect ~f:(fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. ()) in
  close ~rtol:1e-10 "sqrt 2" (sqrt 2.) r

let test_bisect_endpoint_root () =
  (match Roots.bisect ~f:(fun x -> x) ~lo:0. ~hi:1. () with
  | Roots.Converged { root; iterations } ->
    close "endpoint root" 0. root;
    check_int "no iterations needed" 0 iterations
  | _ -> Alcotest.fail "expected convergence");
  match Roots.bisect ~f:(fun x -> x -. 1.) ~lo:0. ~hi:1. () with
  | Roots.Converged { root; _ } -> close "hi endpoint root" 1. root
  | _ -> Alcotest.fail "expected convergence"

let test_bisect_no_sign_change () =
  match Roots.bisect ~f:(fun x -> (x *. x) +. 1.) ~lo:(-1.) ~hi:1. () with
  | Roots.No_sign_change { f_lo; f_hi; _ } ->
    check_true "both positive" (f_lo > 0. && f_hi > 0.)
  | _ -> Alcotest.fail "expected No_sign_change"

let test_bisect_validation () =
  check_raises_invalid "lo >= hi" (fun () ->
      ignore (Roots.bisect ~f:Fun.id ~lo:1. ~hi:1. ()));
  check_raises_invalid "non-finite" (fun () ->
      ignore (Roots.bisect ~f:Fun.id ~lo:nan ~hi:1. ()))

let test_brent_matches_bisect () =
  let f x = exp x -. 3. in
  let b = root_of (Roots.bisect ~f ~lo:0. ~hi:2. ()) in
  let br = root_of (Roots.brent ~f ~lo:0. ~hi:2. ()) in
  close ~rtol:1e-9 "brent = bisect" b br;
  close ~rtol:1e-9 "= log 3" (log 3.) br

let test_brent_hard_function () =
  (* A function with a flat region then a sharp rise. *)
  let f x = if x < 1. then -1e-8 else ((x -. 1.) ** 3.) -. 1e-8 in
  let r = root_of (Roots.brent ~tol:1e-10 ~f ~lo:0. ~hi:3. ()) in
  check_true "found root past the flat region" (r > 1.);
  close ~rtol:1e-2 "cube-root location" (1. +. (1e-8 ** (1. /. 3.))) r

let test_find_root_exn () =
  close ~rtol:1e-9 "find_root_exn" (log 2.)
    (Roots.find_root_exn ~f:(fun x -> exp x -. 2.) ~lo:0. ~hi:1. ());
  match Roots.find_root_exn ~f:(fun _ -> 1.) ~lo:0. ~hi:1. () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on no sign change"

let test_bracket_upward () =
  (match Roots.bracket_upward ~f:(fun x -> x -. 100.) ~lo:0. ~hi0:1. () with
  | Some (lo, hi) ->
    check_true "bracket straddles" (lo -. 100. < 0. && hi -. 100. > 0.)
  | None -> Alcotest.fail "expected a bracket");
  check_true "unbracketable returns None"
    (Roots.bracket_upward ~max_steps:5 ~f:(fun _ -> 1.) ~lo:0. ~hi0:1. () = None)

let props =
  [
    prop "bisect finds the root of monotone cubics"
      QCheck2.Gen.(float_range (-3.) 3.)
      (fun target ->
        let f x = ((x -. target) ** 3.) +. (x -. target) in
        match Roots.bisect ~f ~lo:(-10.) ~hi:10. () with
        | Roots.Converged { root; _ } -> Float.abs (root -. target) < 1e-9
        | _ -> false);
    prop "brent agrees with bisect on exp(x) - k"
      QCheck2.Gen.(float_range 1.5 50.)
      (fun k ->
        let f x = exp x -. k in
        let a = root_of (Roots.bisect ~f ~lo:0. ~hi:10. ()) in
        let b = root_of (Roots.brent ~f ~lo:0. ~hi:10. ()) in
        Float.abs (a -. b) < 1e-8);
  ]

let suite =
  [
    case "bisect basic" test_bisect_basic;
    case "bisect endpoint root" test_bisect_endpoint_root;
    case "bisect no sign change" test_bisect_no_sign_change;
    case "bisect validation" test_bisect_validation;
    case "brent matches bisect" test_brent_matches_bisect;
    case "brent hard function" test_brent_hard_function;
    case "find_root_exn" test_find_root_exn;
    case "bracket_upward" test_bracket_upward;
  ]
  @ props
