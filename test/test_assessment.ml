open Helpers
module Assessment = Nakamoto_core.Assessment
module Params = Nakamoto_core.Params

let point ~nu ~c = Params.of_c ~n:1e5 ~delta:1e6 ~nu ~c

let test_zones () =
  let zone a = (Assessment.assess a).Assessment.zone in
  check_true "well above the bound is safe"
    (zone (point ~nu:0.25 ~c:5.) = Assessment.Safe);
  check_true "below the attack line is broken"
    (zone (point ~nu:0.3 ~c:0.2) = Assessment.Broken);
  check_true "between is the gap"
    (zone (point ~nu:0.3 ~c:0.8) = Assessment.Gap);
  check_true "nu = 0 is always safe"
    (zone (Params.of_c ~n:1e5 ~delta:1e6 ~nu:0. ~c:0.01) = Assessment.Safe)

let test_zone_boundaries_consistent () =
  (* The zone must agree with the underlying bound functions. *)
  List.iter
    (fun (nu, c) ->
      let a = Assessment.assess (point ~nu ~c) in
      (match a.Assessment.zone with
      | Assessment.Safe -> check_true "safe means margin > 0" (a.neat_margin > 0.)
      | Assessment.Broken ->
        check_true "broken means below attack" (c < a.attack_threshold)
      | Assessment.Gap ->
        check_true "gap between the lines"
          (c <= a.neat_threshold +. 1e-12 && c >= a.attack_threshold -. 1e-12));
      check_true "thresholds ordered"
        (a.attack_threshold <= a.neat_threshold +. 1e-9))
    [ (0.1, 3.); (0.25, 1.); (0.4, 0.5); (0.45, 10.); (0.05, 0.1) ]

let test_safe_zone_has_settlement () =
  let a = Assessment.assess (point ~nu:0.2 ~c:5.) in
  (match a.Assessment.confirmations with
  | Some conf ->
    check_true "finite depth" (conf.Nakamoto_core.Confirmation.confirmations > 0)
  | None -> Alcotest.fail "safe zone must have a settlement depth");
  (* Deep in the broken zone the conservative rates give no finite depth. *)
  let broken = Assessment.assess (point ~nu:0.45 ~c:0.2) in
  check_true "no settlement when broken"
    (broken.Assessment.confirmations = None)

let test_margins_and_envelopes () =
  let a = Assessment.assess (point ~nu:0.25 ~c:5.) in
  close "neat margin is c - threshold" (5. -. a.neat_threshold)
    a.Assessment.neat_margin;
  check_true "Thm1 margin positive in safe zone" (a.theorem1_log_margin > 0.);
  let lo, hi = a.growth_bounds in
  check_true "growth bounds ordered" (0. < lo && lo <= hi);
  check_true "quality floor in [0,1]"
    (a.quality_bound >= 0. && a.quality_bound <= 1.);
  check_true "exact Thm2 threshold at least the neat one"
    (a.theorem2_exact_threshold >= a.neat_threshold -. 1e-9)

let test_rendering () =
  let a = Assessment.assess (point ~nu:0.25 ~c:5.) in
  let s = Format.asprintf "%a" Assessment.pp a in
  check_true "zone shown" (contains_substring ~affix:"SAFE" s);
  check_true "bound shown" (contains_substring ~affix:"our bound" s);
  let table = Assessment.to_table [ a; Assessment.assess (point ~nu:0.3 ~c:0.2) ] in
  check_int "two rows" 2 (Nakamoto_numerics.Table.row_count table)

(* --- surface fallback frontiers -----------------------------------
   Single-cell surfaces built to straddle a verdict boundary: the
   certifier must refuse the cell, the query must route to the exact
   solver, and the fallback must be counted — never a silently wrong
   cached answer. *)

module Surface = Nakamoto_surface
module Tel = Nakamoto_telemetry
module Confirmation = Nakamoto_core.Confirmation

let single_cell ?epsilon ?conf_limit ~p:(plo, phi) ~n:(nlo, nhi)
    ~delta:(dlo, dhi) ~nu:(vlo, vhi) () =
  Surface.Table.build ?epsilon ?conf_limit
    (Surface.Grid.create
       ~p:(Surface.Grid.axis ~lo:plo ~hi:phi ~count:2 ~scale:Surface.Grid.Log)
       ~n:(Surface.Grid.axis ~lo:nlo ~hi:nhi ~count:2 ~scale:Surface.Grid.Log)
       ~delta:
         (Surface.Grid.axis ~lo:dlo ~hi:dhi ~count:2 ~scale:Surface.Grid.Log)
       ~nu:
         (Surface.Grid.axis ~lo:vlo ~hi:vhi ~count:2
            ~scale:Surface.Grid.Linear))

let expect_fallback ~label ~reason table params =
  let r = Tel.Registry.create ~clock:(fun () -> 0.) () in
  let v = Surface.Table.assess_cached ~telemetry:r table params in
  check_true (label ^ ": not served cached") (not v.Assessment.v_cached);
  check_true
    (label ^ ": tagged " ^ reason)
    (v.Assessment.v_fallback = Some reason);
  check_int
    (label ^ ": fallback counted")
    1
    (Tel.Counter.value
       (Tel.Registry.counter r ~labels:[ ("reason", reason) ]
          "surface_fallbacks_total"));
  check_int
    (label ^ ": no hit counted")
    0
    (Tel.Counter.value (Tel.Registry.counter r "surface_hits_total"));
  let exact = Assessment.assess params in
  check_true
    (label ^ ": fallback verdict equals exact")
    (v.Assessment.v_zone = exact.Assessment.zone)

let test_safe_gap_frontier_falls_back () =
  (* c spans ~0.35 .. 4.2 against a neat threshold near 1.4: the cell
     straddles SAFE/GAP and its zone cannot certify. *)
  let t =
    single_cell ~p:(1e-4, 4e-4) ~n:(80., 120.) ~delta:(30., 60.)
      ~nu:(0.2, 0.3) ()
  in
  (match (Surface.Table.cell t 0).Surface.Cert.zone with
  | Surface.Cert.Zone_inconclusive -> ()
  | Surface.Cert.Zone _ -> Alcotest.fail "straddling cell certified a zone");
  expect_fallback ~label:"safe/gap" ~reason:"zone_boundary" t
    (Params.create ~p:2e-4 ~n:100. ~delta:45. ~nu:0.25)

let test_gap_attack_frontier_falls_back () =
  (* c in ~0.49 .. 0.66 against an attack threshold in ~0.53 .. 0.60:
     below the neat bound everywhere, but GAP vs BROKEN is undecidable
     over the cell. *)
  let t =
    single_cell ~p:(3.8e-4, 4.2e-4) ~n:(100., 110.) ~delta:(40., 44.)
      ~nu:(0.3, 0.32) ()
  in
  expect_fallback ~label:"gap/attack" ~reason:"zone_boundary" t
    (Params.create ~p:4e-4 ~n:105. ~delta:42. ~nu:0.31)

let test_conf_frontier_falls_back () =
  (* A comfortably-safe cell whose depth certifies at 3 — strangling the
     certified search at conf_limit 1 leaves the depth inconclusive, so
     only the confirmation boundary can trigger the fallback. *)
  let box () = (single_cell ~p:(1.1e-4, 1.19e-4) ~n:(100., 111.) ~delta:(28., 30.4) ~nu:(0.0134, 0.0146)) in
  let full = box () () in
  let zc, cc, fc = Surface.Table.conclusive_counts full in
  check_int "control cell fully conclusive" 1 fc;
  check_int "control zone certified" 1 zc;
  check_int "control depth certified" 1 cc;
  let strangled = box () ~conf_limit:1 () in
  let zc, cc, _ = Surface.Table.conclusive_counts strangled in
  check_int "strangled zone still certified" 1 zc;
  check_int "strangled depth inconclusive" 0 cc;
  expect_fallback ~label:"conf" ~reason:"conf_boundary" strangled
    (Params.create ~p:1.15e-4 ~n:105. ~delta:29. ~nu:0.014)

(* --- depth-limit surfacing (the assess_checked split) -------------- *)

let test_depth_limited_is_structured () =
  (* A rate ratio just under 1 needs more than the solver's 10_000-depth
     cap: historically this aborted batch callers with Invalid_argument;
     assess_checked must surface it as data instead. *)
  let params = Params.create ~p:1e-6 ~n:100. ~delta:10. ~nu:0.4995 in
  let a = Assessment.assess params in
  check_true "no finite depth" (a.Assessment.confirmations = None);
  (match a.Assessment.confirmation_failure with
  | Some (Confirmation.Depth_limited { rate_ratio; limit }) ->
    check_int "limit is the solver cap" 10_000 limit;
    check_true "ratio just under one" (rate_ratio > 0.99 && rate_ratio < 1.)
  | _ -> Alcotest.fail "expected Depth_limited");
  let v = Assessment.verdict_of a in
  check_true "verdict reason is depth_limited"
    (v.Assessment.v_conf_reason = Some "depth_limited");
  check_true "rendering names the reason"
    (contains_substring ~affix:"depth_limited"
       (Format.asprintf "%a" Assessment.pp a))

let test_outside_consistency_is_structured () =
  let params = Params.create ~p:1e-6 ~n:100. ~delta:10. ~nu:0.4998 in
  let a = Assessment.assess params in
  (match a.Assessment.confirmation_failure with
  | Some (Confirmation.Outside_consistency { rate_ratio }) ->
    check_true "ratio at least one" (rate_ratio >= 1.)
  | _ -> Alcotest.fail "expected Outside_consistency");
  check_true "verdict reason is outside_consistency"
    ((Assessment.verdict_of a).Assessment.v_conf_reason
    = Some "outside_consistency")

let props =
  [
    prop ~count:100 "zone ordering is monotone in c"
      QCheck2.Gen.(
        (* c is round-tripped through p = 1/(cnD); keep the two points a
           few ulps apart so rounding cannot swap them across a boundary. *)
        let* nu = float_range 0.05 0.45 in
        let* c1 = float_range 0.05 50. in
        let* factor = float_range 1.001 3. in
        return (nu, c1, c1 *. factor))
      (fun (nu, c_lo, c_hi) ->
        let rank z =
          match z with Assessment.Broken -> 0 | Assessment.Gap -> 1 | Assessment.Safe -> 2
        in
        let z c = (Assessment.assess (point ~nu ~c)).Assessment.zone in
        rank (z c_lo) <= rank (z c_hi));
  ]

let suite =
  [
    case "zones" test_zones;
    case "zone boundaries consistent" test_zone_boundaries_consistent;
    case "settlement availability" test_safe_zone_has_settlement;
    case "margins and envelopes" test_margins_and_envelopes;
    case "rendering" test_rendering;
    case "safe/gap frontier falls back" test_safe_gap_frontier_falls_back;
    case "gap/attack frontier falls back" test_gap_attack_frontier_falls_back;
    case "confirmation frontier falls back" test_conf_frontier_falls_back;
    case "depth limit surfaces as data" test_depth_limited_is_structured;
    case "outside consistency surfaces as data"
      test_outside_consistency_is_structured;
  ]
  @ props
