open Helpers
module Assessment = Nakamoto_core.Assessment
module Params = Nakamoto_core.Params

let point ~nu ~c = Params.of_c ~n:1e5 ~delta:1e6 ~nu ~c

let test_zones () =
  let zone a = (Assessment.assess a).Assessment.zone in
  check_true "well above the bound is safe"
    (zone (point ~nu:0.25 ~c:5.) = Assessment.Safe);
  check_true "below the attack line is broken"
    (zone (point ~nu:0.3 ~c:0.2) = Assessment.Broken);
  check_true "between is the gap"
    (zone (point ~nu:0.3 ~c:0.8) = Assessment.Gap);
  check_true "nu = 0 is always safe"
    (zone (Params.of_c ~n:1e5 ~delta:1e6 ~nu:0. ~c:0.01) = Assessment.Safe)

let test_zone_boundaries_consistent () =
  (* The zone must agree with the underlying bound functions. *)
  List.iter
    (fun (nu, c) ->
      let a = Assessment.assess (point ~nu ~c) in
      (match a.Assessment.zone with
      | Assessment.Safe -> check_true "safe means margin > 0" (a.neat_margin > 0.)
      | Assessment.Broken ->
        check_true "broken means below attack" (c < a.attack_threshold)
      | Assessment.Gap ->
        check_true "gap between the lines"
          (c <= a.neat_threshold +. 1e-12 && c >= a.attack_threshold -. 1e-12));
      check_true "thresholds ordered"
        (a.attack_threshold <= a.neat_threshold +. 1e-9))
    [ (0.1, 3.); (0.25, 1.); (0.4, 0.5); (0.45, 10.); (0.05, 0.1) ]

let test_safe_zone_has_settlement () =
  let a = Assessment.assess (point ~nu:0.2 ~c:5.) in
  (match a.Assessment.confirmations with
  | Some conf ->
    check_true "finite depth" (conf.Nakamoto_core.Confirmation.confirmations > 0)
  | None -> Alcotest.fail "safe zone must have a settlement depth");
  (* Deep in the broken zone the conservative rates give no finite depth. *)
  let broken = Assessment.assess (point ~nu:0.45 ~c:0.2) in
  check_true "no settlement when broken"
    (broken.Assessment.confirmations = None)

let test_margins_and_envelopes () =
  let a = Assessment.assess (point ~nu:0.25 ~c:5.) in
  close "neat margin is c - threshold" (5. -. a.neat_threshold)
    a.Assessment.neat_margin;
  check_true "Thm1 margin positive in safe zone" (a.theorem1_log_margin > 0.);
  let lo, hi = a.growth_bounds in
  check_true "growth bounds ordered" (0. < lo && lo <= hi);
  check_true "quality floor in [0,1]"
    (a.quality_bound >= 0. && a.quality_bound <= 1.);
  check_true "exact Thm2 threshold at least the neat one"
    (a.theorem2_exact_threshold >= a.neat_threshold -. 1e-9)

let test_rendering () =
  let a = Assessment.assess (point ~nu:0.25 ~c:5.) in
  let s = Format.asprintf "%a" Assessment.pp a in
  check_true "zone shown" (contains_substring ~affix:"SAFE" s);
  check_true "bound shown" (contains_substring ~affix:"our bound" s);
  let table = Assessment.to_table [ a; Assessment.assess (point ~nu:0.3 ~c:0.2) ] in
  check_int "two rows" 2 (Nakamoto_numerics.Table.row_count table)

let props =
  [
    prop ~count:100 "zone ordering is monotone in c"
      QCheck2.Gen.(
        (* c is round-tripped through p = 1/(cnD); keep the two points a
           few ulps apart so rounding cannot swap them across a boundary. *)
        let* nu = float_range 0.05 0.45 in
        let* c1 = float_range 0.05 50. in
        let* factor = float_range 1.001 3. in
        return (nu, c1, c1 *. factor))
      (fun (nu, c_lo, c_hi) ->
        let rank z =
          match z with Assessment.Broken -> 0 | Assessment.Gap -> 1 | Assessment.Safe -> 2
        in
        let z c = (Assessment.assess (point ~nu ~c)).Assessment.zone in
        rank (z c_lo) <= rank (z c_hi));
  ]

let suite =
  [
    case "zones" test_zones;
    case "zone boundaries consistent" test_zone_boundaries_consistent;
    case "settlement availability" test_safe_zone_has_settlement;
    case "margins and envelopes" test_margins_and_envelopes;
    case "rendering" test_rendering;
  ]
  @ props
