(** The asynchronous Δ-delay message layer.

    Capability ① of the paper's adversary: it may delay and reorder every
    message, per recipient and adaptively, by up to [delta] rounds, but can
    neither drop nor modify it.  The network enforces the [delta] cap
    regardless of what the delay policy asks for; delivery of a message
    sent at round [r] happens when the recipient processes round
    [r + chosen_delay] (with [chosen_delay >= 1]: a block mined in round
    [r] is never seen by others within round [r], matching the model where
    honest queries within one round are parallel). *)

type message = {
  sender : int;  (** miner index, or [-1] for the adversary's releases *)
  sent_round : int;
  blocks : Nakamoto_chain.Block.t list;  (** a chain segment, any order *)
}

type delay_policy =
  | Immediate  (** delay 1: next-round delivery, the synchronous baseline *)
  | Fixed of int  (** constant delay in [1, delta] (clamped) *)
  | Uniform_random  (** uniform on [1, delta], drawn per recipient *)
  | Maximal  (** always the full [delta] — the worst honest-facing case *)
  | Per_recipient of (recipient:int -> message -> int)
      (** adaptive adversarial choice, still clamped to [1, delta] *)

type t

val create : delta:int -> players:int -> policy:delay_policy ->
  rng:Nakamoto_prob.Rng.t -> t
(** [create ~delta ~players ~policy ~rng] builds an empty network.
    @raise Invalid_argument if [delta < 1] or [players <= 0]. *)

val delta : t -> int

val broadcast : t -> message -> unit
(** [broadcast t msg] enqueues [msg] to every player except the sender,
    with per-recipient delays chosen by the policy (clamped to
    [[1, delta]]). *)

val send_direct : t -> recipient:int -> delay:int -> message -> unit
(** [send_direct t ~recipient ~delay msg] enqueues with an explicit delay
    (clamped to [[1, delta]]) — used by adversarial strategies that release
    different views to different players.
    @raise Invalid_argument if [recipient] is out of range. *)

val deliver : t -> recipient:int -> round:int -> message list
(** [deliver t ~recipient ~round] removes and returns the messages due at
    or before [round] for [recipient], in due order. *)

val pending : t -> int
(** [pending t] counts undelivered messages across all recipients. *)

val messages_sent : t -> int
(** [messages_sent t] is the cumulative per-recipient enqueue count. *)
