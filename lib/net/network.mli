(** The asynchronous Δ-delay message layer.

    Capability ① of the paper's adversary: it may delay and reorder every
    message, per recipient and adaptively, by up to [delta] rounds, but can
    neither drop nor modify it.  The network enforces the [delta] cap
    regardless of what the delay policy asks for; delivery of a message
    sent at round [r] happens when the recipient processes round
    [r + chosen_delay] (with [chosen_delay >= 1]: a block mined in round
    [r] is never seen by others within round [r], matching the model where
    honest queries within one round are parallel). *)

type message = {
  sender : int;  (** miner index, or [-1] for the adversary's releases *)
  sent_round : int;
  blocks : Nakamoto_chain.Block.t list;  (** a chain segment, any order *)
}

type delay_policy =
  | Immediate  (** delay 1: next-round delivery, the synchronous baseline *)
  | Fixed of int  (** constant delay in [1, delta] (clamped) *)
  | Uniform_random  (** uniform on [1, delta], drawn per recipient *)
  | Maximal  (** always the full [delta] — the worst honest-facing case *)
  | Per_recipient of (recipient:int -> message -> int)
      (** adaptive adversarial choice, still clamped to [1, delta] *)

type t

val create : delta:int -> players:int -> policy:delay_policy ->
  rng:Nakamoto_prob.Rng.t -> t
(** [create ~delta ~players ~policy ~rng] builds an empty network.
    @raise Invalid_argument if [delta < 1] or [players <= 0]. *)

val delta : t -> int

val enable_ring : t -> unit
(** [enable_ring t] switches on the Δ-ring broadcast lane: a shared ring
    of [delta + 1] per-round buckets.  Afterwards, a {!broadcast} under a
    recipient-independent policy ([Immediate], [Fixed], [Maximal]) and any
    {!broadcast_all} cost O(1) — one shared enqueue standing for
    [players - 1] deliveries — and are read back with {!deliver_shared}.
    [Uniform_random] and [Per_recipient] broadcasts and {!send_direct}
    keep using the per-recipient event queues regardless.  The executor's
    aggregate mode turns this on; the exact mode never does, so its
    per-recipient delivery order is untouched.
    @raise Invalid_argument if already enabled or after a send. *)

val ring_enabled : t -> bool

val enable_due_index : t -> unit
(** [enable_due_index t] switches on an auxiliary index of direct-queue
    due times so {!next_due} can answer without scanning every inbox.
    The skip executor turns this on; the other modes never need it.
    @raise Invalid_argument if already enabled or after a send. *)

val broadcast : t -> message -> unit
(** [broadcast t msg] sends [msg] to every player except the sender, with
    per-recipient delays chosen by the policy (clamped to [[1, delta]]).
    With the ring enabled and a recipient-independent policy this is one
    ring insertion; otherwise [players - 1] queue enqueues. *)

val broadcast_all : t -> delay:int -> message -> unit
(** [broadcast_all t ~delay msg] sends to every player except the sender
    at one explicit delay (clamped to [[1, delta]]) — the adversary's
    release-to-everyone, which is a broadcast in all but name.  Uses the
    ring when enabled (even under a queue-lane policy: the ring is keyed
    by absolute due round, so mixed delays coexist), per-recipient queues
    otherwise. *)

val send_direct : t -> recipient:int -> delay:int -> message -> unit
(** [send_direct t ~recipient ~delay msg] enqueues with an explicit delay
    (clamped to [[1, delta]]) — used by adversarial strategies that release
    different views to different players.
    @raise Invalid_argument if [recipient] is out of range. *)

val deliver : t -> recipient:int -> round:int -> message list
(** [deliver t ~recipient ~round] removes and returns the queue-lane
    messages due at or before [round] for [recipient], in due order.
    Ring-lane messages are not included — aggregate-mode consumers read
    those once via {!deliver_shared} and fan them out themselves. *)

val deliver_shared : t -> round:int -> message list
(** [deliver_shared t ~round] drains the ring buckets for every round up
    to and including [round] (in due order, send-stable within a round)
    and returns their messages.  Each message is returned exactly once;
    the caller routes it to every player except its sender.  Returns [[]]
    when the ring is disabled or [round] was already drained. *)

val next_due : t -> now:int -> int option
(** [next_due t ~now] is the earliest round strictly after [now] at which
    some delivery is due — ring lane or direct queues — or [None] when
    nothing is in flight.  The ring side scans at most [delta + 1] slots;
    the direct side needs {!enable_due_index} (without it only the ring
    lane is reported).  Callers must have drained everything due at or
    before [now]: a still-pending ring due [<= now] raises
    [Invalid_argument]. *)

val pending : t -> int
(** [pending t] counts undelivered per-recipient deliveries: queued
    messages plus the fan-out of each undrained ring message
    ([players - 1] for a player sender, [players] for the adversary). *)

val messages_sent : t -> int
(** [messages_sent t] is the cumulative per-recipient delivery count —
    a ring broadcast counts its full fan-out, same as the queue lane
    would have enqueued. *)
