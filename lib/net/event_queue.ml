(* Binary min-heap on (time, seq); the monotone sequence number makes the
   ordering stable for equal times. *)
type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

let entry_less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let dummy = q.heap.(0) in
    let fresh = Array.make (max 8 (2 * cap)) dummy in
    Array.blit q.heap 0 fresh 0 q.size;
    q.heap <- fresh
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_less q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && entry_less q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && entry_less q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~time value =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if Array.length q.heap = 0 then q.heap <- Array.make 8 entry;
  grow q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.value)
  end

let pop_due q ~now =
  let rec drain acc =
    match peek_time q with
    | Some t when t <= now -> (
      match pop q with
      | Some (_, v) -> drain (v :: acc)
      | None -> List.rev acc)
    | Some _ | None -> List.rev acc
  in
  drain []

let drop_due q ~now =
  let rec drain n =
    match peek_time q with
    | Some t when t <= now -> (
      match pop q with Some _ -> drain (n + 1) | None -> n)
    | Some _ | None -> n
  in
  drain 0
