(** A stable binary-heap priority queue keyed by integer time.

    Drives message delivery: events inserted with the same due time pop in
    insertion order (stability matters — the adversary is allowed to
    reorder, the honest network must not reorder spontaneously). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** [push q ~time x] schedules [x] at [time].
    @raise Invalid_argument on negative [time]. *)

val peek_time : 'a t -> int option
(** [peek_time q] is the due time of the earliest event, if any. *)

val pop_due : 'a t -> now:int -> 'a list
(** [pop_due q ~now] removes and returns every event with
    [time <= now], earliest first and insertion-stable within a time. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes the earliest event. *)

val drop_due : 'a t -> now:int -> int
(** [drop_due q ~now] discards every event with [time <= now] and returns
    how many were dropped.  Equivalent to [List.length (pop_due q ~now)]
    without materializing the values; used to fast-forward auxiliary
    indices across skipped spans. *)
