type message = {
  sender : int;
  sent_round : int;
  blocks : Nakamoto_chain.Block.t list;
}

type delay_policy =
  | Immediate
  | Fixed of int
  | Uniform_random
  | Maximal
  | Per_recipient of (recipient:int -> message -> int)

(* The Δ-ring broadcast lane: one shared bucket per due round, recycled
   modulo delta + 1.  A broadcast under a recipient-independent policy is
   one list-cons here instead of players - 1 heap pushes; the executor
   drains each round's bucket once and routes it to every live view.
   Buckets hold messages in reverse send order (cons), reversed on drain. *)
type ring = {
  buckets : message list array;  (* indexed by due round mod (delta + 1) *)
  mutable drained_through : int;  (* every round <= this has been drained *)
  mutable ring_pending : int;  (* undelivered deliveries, recipient-weighted *)
}

type t = {
  delta : int;
  players : int;
  policy : delay_policy;
  rng : Nakamoto_prob.Rng.t;
  inboxes : message Event_queue.t array;
  mutable ring : ring option;
  (* Opt-in index of direct-queue due times, so [next_due] can answer in
     O(log pending) instead of scanning every inbox.  Entries are never
     removed on delivery; [next_due] lazily drops the stale prefix. *)
  mutable due_index : unit Event_queue.t option;
  mutable sent : int;
}

let create ~delta ~players ~policy ~rng =
  if delta < 1 then invalid_arg "Network.create: delta must be >= 1";
  if players <= 0 then invalid_arg "Network.create: players must be positive";
  {
    delta;
    players;
    policy;
    rng;
    inboxes = Array.init players (fun _ -> Event_queue.create ());
    ring = None;
    due_index = None;
    sent = 0;
  }

let delta t = t.delta

let shared_policy = function
  | Immediate | Fixed _ | Maximal -> true
  | Uniform_random | Per_recipient _ -> false

let enable_ring t =
  if t.ring <> None then invalid_arg "Network.enable_ring: already enabled";
  if t.sent > 0 then
    invalid_arg "Network.enable_ring: messages already in flight";
  t.ring <-
    Some
      {
        buckets = Array.make (t.delta + 1) [];
        drained_through = 0;
        ring_pending = 0;
      }

let ring_enabled t = t.ring <> None

let enable_due_index t =
  if t.due_index <> None then
    invalid_arg "Network.enable_due_index: already enabled";
  if t.sent > 0 then
    invalid_arg "Network.enable_due_index: messages already in flight";
  t.due_index <- Some (Event_queue.create ())

let clamp_delay t d = max 1 (min t.delta d)

let chosen_delay t ~recipient msg =
  let raw =
    match t.policy with
    | Immediate -> 1
    | Fixed d -> d
    | Uniform_random -> 1 + Nakamoto_prob.Rng.int t.rng ~bound:t.delta
    | Maximal -> t.delta
    | Per_recipient f -> f ~recipient msg
  in
  clamp_delay t raw

let enqueue t ~recipient ~delay msg =
  let time = msg.sent_round + delay in
  Event_queue.push t.inboxes.(recipient) ~time msg;
  (match t.due_index with
  | None -> ()
  | Some idx -> Event_queue.push idx ~time ());
  t.sent <- t.sent + 1

(* A shared enqueue stands for one delivery per player, minus the sender's
   own copy when the sender is a player (it skips its own message at drain
   time).  A non-player sender (the adversary, id -1) reaches everyone. *)
let ring_fanout t msg =
  if msg.sender >= 0 && msg.sender < t.players then t.players - 1
  else t.players

(* [sent] advances by the same amount as the queue lane would, so the
   metric stays comparable across lanes. *)
let ring_push t ring ~delay msg =
  let due = msg.sent_round + delay in
  if due <= ring.drained_through then
    invalid_arg "Network: ring broadcast due in an already-drained round";
  if due > ring.drained_through + t.delta + 1 then
    invalid_arg "Network: ring broadcast due beyond the ring horizon";
  let slot = due mod (t.delta + 1) in
  ring.buckets.(slot) <- msg :: ring.buckets.(slot);
  let fanout = ring_fanout t msg in
  ring.ring_pending <- ring.ring_pending + fanout;
  t.sent <- t.sent + fanout

let broadcast t msg =
  match t.ring with
  | Some ring when shared_policy t.policy ->
    ring_push t ring ~delay:(chosen_delay t ~recipient:(-1) msg) msg
  | Some _ | None ->
    for recipient = 0 to t.players - 1 do
      if recipient <> msg.sender then
        enqueue t ~recipient ~delay:(chosen_delay t ~recipient msg) msg
    done

let broadcast_all t ~delay msg =
  let delay = clamp_delay t delay in
  match t.ring with
  | Some ring -> ring_push t ring ~delay msg
  | None ->
    for recipient = 0 to t.players - 1 do
      if recipient <> msg.sender then enqueue t ~recipient ~delay msg
    done

let send_direct t ~recipient ~delay msg =
  if recipient < 0 || recipient >= t.players then
    invalid_arg "Network.send_direct: recipient out of range";
  enqueue t ~recipient ~delay:(clamp_delay t delay) msg

let deliver t ~recipient ~round =
  Event_queue.pop_due t.inboxes.(recipient) ~now:round

let deliver_shared t ~round =
  match t.ring with
  | None -> []
  | Some ring ->
    if round <= ring.drained_through then []
    else begin
      (* Drain every round up to [round] in order.  Buckets only ever hold
         rounds within delta + 1 of the drain frontier, so a caller that
         skipped k >> delta rounds ahead still sees each message exactly
         once and in due order while the scan stays bounded by delta + 1
         slots — fast-forward is O(delta), not O(k). *)
      let acc = ref [] in
      let hi = min round (ring.drained_through + t.delta + 1) in
      for r = ring.drained_through + 1 to hi do
        let slot = r mod (t.delta + 1) in
        let due = List.rev ring.buckets.(slot) in
        ring.buckets.(slot) <- [];
        ring.ring_pending <-
          List.fold_left
            (fun p msg -> p - ring_fanout t msg)
            ring.ring_pending due;
        acc := List.rev_append due !acc
      done;
      ring.drained_through <- round;
      List.rev !acc
    end

(* Earliest round with a pending delivery strictly after [now]: the ring
   scan is bounded by delta + 1 slots (every pending due lies in
   (drained_through, drained_through + delta + 1]) and the direct lane is
   answered by the due index after dropping entries already delivered. *)
let next_due t ~now =
  let ring_due =
    match t.ring with
    | None -> max_int
    | Some ring ->
      let best = ref max_int in
      let r = ref (ring.drained_through + 1) in
      while !best = max_int && !r <= ring.drained_through + t.delta + 1 do
        if ring.buckets.(!r mod (t.delta + 1)) <> [] then best := !r;
        incr r
      done;
      if !best <= now then
        invalid_arg "Network.next_due: ring delivery already overdue";
      !best
  in
  let direct_due =
    match t.due_index with
    | None -> max_int
    | Some idx -> (
      ignore (Event_queue.drop_due idx ~now);
      match Event_queue.peek_time idx with Some d -> d | None -> max_int)
  in
  let due = min ring_due direct_due in
  if due = max_int then None else Some due

let pending t =
  let ring_pending =
    match t.ring with None -> 0 | Some ring -> ring.ring_pending
  in
  ring_pending
  + Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.inboxes

let messages_sent t = t.sent
