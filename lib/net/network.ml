type message = {
  sender : int;
  sent_round : int;
  blocks : Nakamoto_chain.Block.t list;
}

type delay_policy =
  | Immediate
  | Fixed of int
  | Uniform_random
  | Maximal
  | Per_recipient of (recipient:int -> message -> int)

type t = {
  delta : int;
  players : int;
  policy : delay_policy;
  rng : Nakamoto_prob.Rng.t;
  inboxes : message Event_queue.t array;
  mutable sent : int;
}

let create ~delta ~players ~policy ~rng =
  if delta < 1 then invalid_arg "Network.create: delta must be >= 1";
  if players <= 0 then invalid_arg "Network.create: players must be positive";
  {
    delta;
    players;
    policy;
    rng;
    inboxes = Array.init players (fun _ -> Event_queue.create ());
    sent = 0;
  }

let delta t = t.delta

let clamp_delay t d = max 1 (min t.delta d)

let chosen_delay t ~recipient msg =
  let raw =
    match t.policy with
    | Immediate -> 1
    | Fixed d -> d
    | Uniform_random -> 1 + Nakamoto_prob.Rng.int t.rng ~bound:t.delta
    | Maximal -> t.delta
    | Per_recipient f -> f ~recipient msg
  in
  clamp_delay t raw

let enqueue t ~recipient ~delay msg =
  Event_queue.push t.inboxes.(recipient) ~time:(msg.sent_round + delay) msg;
  t.sent <- t.sent + 1

let broadcast t msg =
  for recipient = 0 to t.players - 1 do
    if recipient <> msg.sender then
      enqueue t ~recipient ~delay:(chosen_delay t ~recipient msg) msg
  done

let send_direct t ~recipient ~delay msg =
  if recipient < 0 || recipient >= t.players then
    invalid_arg "Network.send_direct: recipient out of range";
  enqueue t ~recipient ~delay:(clamp_delay t delay) msg

let deliver t ~recipient ~round =
  Event_queue.pop_due t.inboxes.(recipient) ~now:round

let pending t =
  Array.fold_left (fun acc q -> acc + Event_queue.length q) 0 t.inboxes

let messages_sent t = t.sent
