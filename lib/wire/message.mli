(** Typed protocol messages and their frame codec.

    The campaign daemon's whole vocabulary: version negotiation
    ([Hello]/[Hello_ack]), campaign submission, the worker lease cycle
    ([Lease_request] → [Lease_grant]/[No_work] → [Cell_result]),
    assessment queries, streamed [Progress], the terminal [Done], and
    the typed [Error] that replaces exceptions on the wire.

    Specs travel as their canonical JSON ({!Nakamoto_campaign.Spec.to_json}),
    so the fingerprint a worker computes from a received spec equals the
    submitter's.  Aggregates and telemetry snapshots travel as bit-exact
    binary ({!Codec}): a result that crosses the wire folds to the same
    journal bytes as one computed in-process — the topology-independence
    contract rests on this. *)

module Spec := Nakamoto_campaign.Spec
module Shard := Nakamoto_campaign.Shard
module Aggregate := Nakamoto_campaign.Aggregate
module Telemetry := Nakamoto_telemetry

type role = Worker | Client

type submit = {
  sub_spec : Spec.t;
  sub_journal : string option;
      (** daemon-side journal path; [None] = don't journal *)
  sub_resume : bool;  (** server-side {!Nakamoto_campaign.Journal.fold} resume *)
}

type lease = {
  lease_id : int;  (** coordinator-unique; echoed back in [Cell_result] *)
  shard : Shard.t;  (** the leased cell range: one cell's trial interval *)
}

type cell_result = {
  res_lease : int;
  res_shard : int;  (** plan id, for cross-checking the lease table *)
  res_aggregate : Aggregate.snapshot;
  res_telemetry : (Telemetry.Registry.Snapshot.key * Telemetry.Registry.Snapshot.value) list;
      (** entries of the shard's registry snapshot; [[]] = telemetry off *)
}

type assess_params = { q_nu : float; q_c : float; q_n : float; q_delta : float }

type assess_reply = {
  a_zone : string;  (** ["SAFE"] / ["GAP"] / ["ATTACK"] *)
  a_neat_threshold : float;
  a_neat_margin : float;
  a_attack_threshold : float;
  a_confirmations : int option;
  a_rendered : string;  (** the full multi-line assessment, for humans *)
}

type progress = {
  p_trials_done : int;
  p_trials_total : int;
  p_cells_done : int;
  p_cells_total : int;
}

type t =
  | Hello of { version : int; role : role }
  | Hello_ack of { version : int }
  | Submit_campaign of submit
  | Lease_request of { max : int }
      (** grant me up to [max] leases in one reply — batching amortizes
          round trips at high shard counts; an empty protocol-1 payload
          decodes as [max = 1] *)
  | Lease_grant of { grants : lease list; spec : Spec.t }
      (** 1 to [max] leases of one campaign; never empty (an empty
          queue answers [No_work]) *)
  | No_work of { retry_after : float }
      (** nothing leasable right now; poll again after [retry_after] s *)
  | Cell_result of cell_result
  | Query_assess of assess_params
  | Assess_reply of assess_reply
  | Progress of progress
  | Done of { table : string; journal : string option }
  | Error of string
  | Ping of { nonce : int }
      (** heartbeat probe: the coordinator pings lease holders so a
          wedged-but-connected worker is detected before the full lease
          timeout; every peer must answer [Pong] with the same nonce *)
  | Pong of { nonce : int }

val tag : t -> int
(** The frame tag byte; stable across releases within a protocol
    version. *)

val encode : t -> int * string
(** [(tag, payload)]. *)

val decode : tag:int -> payload:string -> (t, string) result
(** Total: an unknown tag or an undecodable payload is an [Error]
    result, never an exception — servers answer it with a typed
    {!constructor-Error} frame rather than dying. *)

(** {2 Channel helpers} *)

type read_result =
  [ `Msg of t | `Eof | `Timeout | `Bad of string ]

val send : Frame.Channel.t -> t -> unit
val recv : ?timeout:float -> Frame.Channel.t -> read_result
(** [`Bad] covers both framing violations and payload decode failures —
    either way the peer spoke a language we don't, and the caller should
    reply {!constructor-Error} (if writable) and drop the connection. *)
