type writer = Buffer.t

let writer () = Buffer.create 256
let contents w = Buffer.contents w

let add_u8 w v =
  if v < 0 || v > 255 then invalid_arg "Codec.add_u8: outside [0, 255]";
  Buffer.add_char w (Char.chr v)

let add_i64 w v =
  for i = 7 downto 0 do
    Buffer.add_char w
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let add_int w v = add_i64 w (Int64.of_int v)
let add_f64 w v = add_i64 w (Int64.bits_of_float v)
let add_bool w v = Buffer.add_char w (if v then '\001' else '\000')

let add_u32 w v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.add_u32: outside u32";
  for i = 3 downto 0 do
    Buffer.add_char w (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_string w s =
  add_u32 w (String.length s);
  Buffer.add_string w s

let add_opt w f = function
  | None -> add_bool w false
  | Some v ->
    add_bool w true;
    f w v

let add_list w f xs =
  add_u32 w (List.length xs);
  List.iter (f w) xs

let add_array w f xs =
  add_u32 w (Array.length xs);
  Array.iter (f w) xs

(* ------------------------------------------------------------------ *)

type reader = { s : string; mutable pos : int }

exception Error of string

let reader s = { s; pos = 0 }
let finished r = r.pos = String.length r.s

let need r n =
  if r.pos + n > String.length r.s then
    raise
      (Error
         (Printf.sprintf "payload truncated: need %d bytes at offset %d of %d"
            n r.pos (String.length r.s)))

let get_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_i64 r =
  need r 8;
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.s.[r.pos]));
    r.pos <- r.pos + 1
  done;
  !v

let get_int r =
  let v = get_i64 r in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then
    raise (Error (Printf.sprintf "int64 %Ld does not fit a native int" v));
  i

let get_f64 r = Int64.float_of_bits (get_i64 r)

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | b -> raise (Error (Printf.sprintf "invalid bool byte %d" b))

let get_u32 r =
  need r 4;
  let v = ref 0 in
  for _ = 0 to 3 do
    v := (!v lsl 8) lor Char.code r.s.[r.pos];
    r.pos <- r.pos + 1
  done;
  !v

let get_string r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let get_opt r f = if get_bool r then Some (f r) else None

(* Explicit left-to-right loops: [List.init]/[Array.init] leave the
   evaluation order of [f] unspecified, which a stateful reader cannot
   tolerate. *)
let get_list r f =
  let n = get_u32 r in
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (f r :: acc) in
  go 0 []

let get_array r f = Array.of_list (get_list r f)
