(** Length-prefixed binary framing over a stream socket.

    A frame is [u32 length (big-endian)] + [u8 tag] + [payload], where
    [length] counts the tag byte plus the payload — the
    [Message_channel] shape of framed p2p protocols, with three
    defensive properties baked in:

    - {b max-frame cap}: a length above [max_payload + 1] is rejected
      before any payload byte is read, so a corrupt or hostile peer
      cannot make the reader allocate unboundedly;
    - {b truncation is typed}: EOF in the middle of a frame yields
      [`Bad], distinct from the clean [`Eof] at a frame boundary — a
      torn frame is a protocol error, a closed connection is not;
    - {b read timeouts}: every blocking read takes an optional deadline
      and yields [`Timeout] instead of hanging on a stalled peer.

    The {!Decoder} is the same state machine in pull form, for callers
    (the serve coordinator) that multiplex many connections under
    [select] and feed bytes as they arrive. *)

val protocol_version : int
(** Version negotiated by the [Hello] exchange; bumped on any breaking
    change to the framing or message payloads.  Version 2 added
    heartbeats ([Ping]/[Pong]) and batched lease grants. *)

val min_protocol_version : int
(** Oldest peer version a server still accepts: the handshake admits
    any [Hello] version in [[min_protocol_version, protocol_version]]
    and acks with the server's own version.  Both ends apply the same
    rule, so a mixed fleet drains cleanly across a compatible bump. *)

val default_max_payload : int
(** 8 MiB — generous for campaign specs and telemetry snapshots, small
    enough that a garbage length prefix fails fast. *)

type result =
  [ `Frame of int * string  (** tag, payload *)
  | `Eof  (** clean close at a frame boundary *)
  | `Timeout
  | `Bad of string  (** truncated frame, oversized length, zero length *)
  ]

val encode : ?max_payload:int -> tag:int -> payload:string -> unit -> string
(** The frame bytes, without touching a descriptor — for callers (the
    serve coordinator) that queue writes and drain them on
    write-readiness instead of blocking.
    @raise Invalid_argument if [tag] is outside [0, 255] or the payload
    exceeds [max_payload] (default {!default_max_payload}). *)

val write : ?max_payload:int -> Unix.file_descr -> tag:int -> payload:string -> unit
(** Write one frame (single buffered write, looped to completion).
    @raise Invalid_argument under {!encode}'s conditions. *)

(** {2 Blocking channel}

    A descriptor plus the incremental decoder state.  The decoder is
    persistent across reads — two frames arriving in one TCP segment
    must both be delivered — so blocking readers (worker, client) hold a
    channel, never a bare descriptor. *)

module Channel : sig
  type t

  val of_fd : ?max_payload:int -> Unix.file_descr -> t
  (** [max_payload] (default {!default_max_payload}) caps {e both}
      directions: frames read through and written over this channel. *)

  val fd : t -> Unix.file_descr

  val write : t -> tag:int -> payload:string -> unit
  (** Write one frame under the channel's own cap — a channel created
      with a larger [max_payload] can write the large frames it was
      configured to read. *)

  val read : ?timeout:float -> t -> result
  (** Read exactly one frame.  [timeout] bounds the {e total} wall-clock
      wait (default: block forever); [`Timeout] may leave a partial
      frame buffered — harmless, the next read resumes where it left
      off. *)
end

(** {2 Incremental decoding} *)

module Decoder : sig
  type t

  val create : ?max_payload:int -> unit -> t

  val feed : t -> string -> unit
  (** Append received bytes. *)

  val available : t -> int
  (** Buffered bytes not yet extracted — nonzero at EOF means the peer
      died mid-frame. *)

  val next : t -> [ `Frame of int * string | `Awaiting | `Bad of string ]
  (** Extract the next complete frame, if any.  After [`Bad] the decoder
      is poisoned and keeps returning the same error — framing cannot
      resynchronize, the connection must be dropped. *)
end
