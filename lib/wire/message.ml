module Spec = Nakamoto_campaign.Spec
module Shard = Nakamoto_campaign.Shard
module Aggregate = Nakamoto_campaign.Aggregate
module Stats = Nakamoto_prob.Stats
module Tel = Nakamoto_telemetry

type role = Worker | Client

type submit = {
  sub_spec : Spec.t;
  sub_journal : string option;
  sub_resume : bool;
}

type lease = { lease_id : int; shard : Shard.t }

type cell_result = {
  res_lease : int;
  res_shard : int;
  res_aggregate : Aggregate.snapshot;
  res_telemetry : (Tel.Registry.Snapshot.key * Tel.Registry.Snapshot.value) list;
}

type assess_params = { q_nu : float; q_c : float; q_n : float; q_delta : float }

type assess_reply = {
  a_zone : string;
  a_neat_threshold : float;
  a_neat_margin : float;
  a_attack_threshold : float;
  a_confirmations : int option;
  a_rendered : string;
}

type progress = {
  p_trials_done : int;
  p_trials_total : int;
  p_cells_done : int;
  p_cells_total : int;
}

type t =
  | Hello of { version : int; role : role }
  | Hello_ack of { version : int }
  | Submit_campaign of submit
  | Lease_request of { max : int }
  | Lease_grant of { grants : lease list; spec : Spec.t }
  | No_work of { retry_after : float }
  | Cell_result of cell_result
  | Query_assess of assess_params
  | Assess_reply of assess_reply
  | Progress of progress
  | Done of { table : string; journal : string option }
  | Error of string
  | Ping of { nonce : int }
  | Pong of { nonce : int }

let tag = function
  | Hello _ -> 1
  | Hello_ack _ -> 2
  | Submit_campaign _ -> 3
  | Lease_request _ -> 4
  | Lease_grant _ -> 5
  | No_work _ -> 6
  | Cell_result _ -> 7
  | Query_assess _ -> 8
  | Assess_reply _ -> 9
  | Progress _ -> 10
  | Done _ -> 11
  | Error _ -> 12
  | Ping _ -> 13
  | Pong _ -> 14

(* --- Component codecs ---------------------------------------------- *)

let add_shard w (sh : Shard.t) =
  Codec.add_int w sh.Shard.id;
  Codec.add_int w sh.Shard.cell_index;
  Codec.add_int w sh.Shard.trial_start;
  Codec.add_int w sh.Shard.trial_stop;
  Codec.add_int w sh.Shard.slot

let get_shard r =
  let id = Codec.get_int r in
  let cell_index = Codec.get_int r in
  let trial_start = Codec.get_int r in
  let trial_stop = Codec.get_int r in
  let slot = Codec.get_int r in
  { Shard.id; cell_index; trial_start; trial_stop; slot }

let add_summary w (s : Stats.Summary.raw) =
  Codec.add_int w s.Stats.Summary.n;
  Codec.add_f64 w s.Stats.Summary.mu;
  Codec.add_f64 w s.Stats.Summary.m2s;
  Codec.add_f64 w s.Stats.Summary.lo;
  Codec.add_f64 w s.Stats.Summary.hi

let get_summary r =
  let n = Codec.get_int r in
  let mu = Codec.get_f64 r in
  let m2s = Codec.get_f64 r in
  let lo = Codec.get_f64 r in
  let hi = Codec.get_f64 r in
  { Stats.Summary.n; mu; m2s; lo; hi }

let add_aggregate w (s : Aggregate.snapshot) =
  Codec.add_int w s.Aggregate.s_trials;
  Codec.add_int w s.s_total_rounds;
  Codec.add_int w s.s_audited_trials;
  Codec.add_int w s.s_violations;
  Codec.add_int w s.s_convergence_opportunities;
  Codec.add_int w s.s_adversary_blocks;
  Codec.add_int w s.s_honest_blocks;
  Codec.add_int w s.s_h_rounds;
  Codec.add_int w s.s_h1_rounds;
  Codec.add_int w s.s_max_reorg_depth;
  Codec.add_array w Codec.add_int s.s_reorg_hist;
  add_summary w s.s_growth;
  add_summary w s.s_quality;
  add_summary w s.s_reorg

let get_aggregate r =
  let s_trials = Codec.get_int r in
  let s_total_rounds = Codec.get_int r in
  let s_audited_trials = Codec.get_int r in
  let s_violations = Codec.get_int r in
  let s_convergence_opportunities = Codec.get_int r in
  let s_adversary_blocks = Codec.get_int r in
  let s_honest_blocks = Codec.get_int r in
  let s_h_rounds = Codec.get_int r in
  let s_h1_rounds = Codec.get_int r in
  let s_max_reorg_depth = Codec.get_int r in
  let s_reorg_hist = Codec.get_array r Codec.get_int in
  let s_growth = get_summary r in
  let s_quality = get_summary r in
  let s_reorg = get_summary r in
  {
    Aggregate.s_trials;
    s_total_rounds;
    s_audited_trials;
    s_violations;
    s_convergence_opportunities;
    s_adversary_blocks;
    s_honest_blocks;
    s_h_rounds;
    s_h1_rounds;
    s_max_reorg_depth;
    s_reorg_hist;
    s_growth;
    s_quality;
    s_reorg;
  }

let add_hist w (h : Tel.Histogram.snapshot) =
  (match h.Tel.Histogram.s_kind with
  | None -> Codec.add_u8 w 0
  | Some (Tel.Histogram.Fixed bounds) ->
    Codec.add_u8 w 1;
    Codec.add_array w Codec.add_f64 bounds
  | Some Tel.Histogram.Log2 -> Codec.add_u8 w 2);
  Codec.add_array w Codec.add_int h.s_counts;
  Codec.add_int w h.s_count;
  Codec.add_f64 w h.s_sum;
  Codec.add_f64 w h.s_min;
  Codec.add_f64 w h.s_max

let get_hist r =
  let s_kind =
    match Codec.get_u8 r with
    | 0 -> None
    | 1 -> Some (Tel.Histogram.Fixed (Codec.get_array r Codec.get_f64))
    | 2 -> Some Tel.Histogram.Log2
    | k -> raise (Codec.Error (Printf.sprintf "invalid histogram kind %d" k))
  in
  let s_counts = Codec.get_array r Codec.get_int in
  let s_count = Codec.get_int r in
  let s_sum = Codec.get_f64 r in
  let s_min = Codec.get_f64 r in
  let s_max = Codec.get_f64 r in
  { Tel.Histogram.s_kind; s_counts; s_count; s_sum; s_min; s_max }

let add_tel_entry w ((k : Tel.Registry.Snapshot.key), v) =
  Codec.add_string w k.Tel.Registry.Snapshot.name;
  Codec.add_list w
    (fun w (l, value) ->
      Codec.add_string w l;
      Codec.add_string w value)
    k.labels;
  match v with
  | Tel.Registry.Snapshot.Counter c ->
    Codec.add_u8 w 0;
    Codec.add_int w c
  | Tel.Registry.Snapshot.Histogram h ->
    Codec.add_u8 w 1;
    add_hist w h
  | Tel.Registry.Snapshot.Span s ->
    Codec.add_u8 w 2;
    add_hist w s

let get_tel_entry r =
  let name = Codec.get_string r in
  let labels =
    Codec.get_list r (fun r ->
        let l = Codec.get_string r in
        let v = Codec.get_string r in
        (l, v))
  in
  let value =
    match Codec.get_u8 r with
    | 0 -> Tel.Registry.Snapshot.Counter (Codec.get_int r)
    | 1 -> Tel.Registry.Snapshot.Histogram (get_hist r)
    | 2 -> Tel.Registry.Snapshot.Span (get_hist r)
    | k -> raise (Codec.Error (Printf.sprintf "invalid instrument kind %d" k))
  in
  ({ Tel.Registry.Snapshot.name; labels }, value)

let add_spec w spec = Codec.add_string w (Spec.to_json spec)

let get_spec r =
  match Spec.of_json (Codec.get_string r) with
  | Ok spec -> spec
  | Error msg -> raise (Codec.Error msg)

let role_to_u8 = function Worker -> 0 | Client -> 1

let get_role r =
  match Codec.get_u8 r with
  | 0 -> Worker
  | 1 -> Client
  | k -> raise (Codec.Error (Printf.sprintf "invalid role byte %d" k))

(* --- Message codec ------------------------------------------------- *)

let encode m =
  let w = Codec.writer () in
  (match m with
  | Hello { version; role } ->
    Codec.add_int w version;
    Codec.add_u8 w (role_to_u8 role)
  | Hello_ack { version } -> Codec.add_int w version
  | Submit_campaign { sub_spec; sub_journal; sub_resume } ->
    add_spec w sub_spec;
    Codec.add_opt w Codec.add_string sub_journal;
    Codec.add_bool w sub_resume
  | Lease_request { max } -> Codec.add_int w max
  | Lease_grant { grants; spec } ->
    Codec.add_list w
      (fun w { lease_id; shard } ->
        Codec.add_int w lease_id;
        add_shard w shard)
      grants;
    add_spec w spec
  | No_work { retry_after } -> Codec.add_f64 w retry_after
  | Cell_result { res_lease; res_shard; res_aggregate; res_telemetry } ->
    Codec.add_int w res_lease;
    Codec.add_int w res_shard;
    add_aggregate w res_aggregate;
    Codec.add_list w add_tel_entry res_telemetry
  | Query_assess { q_nu; q_c; q_n; q_delta } ->
    Codec.add_f64 w q_nu;
    Codec.add_f64 w q_c;
    Codec.add_f64 w q_n;
    Codec.add_f64 w q_delta
  | Assess_reply a ->
    Codec.add_string w a.a_zone;
    Codec.add_f64 w a.a_neat_threshold;
    Codec.add_f64 w a.a_neat_margin;
    Codec.add_f64 w a.a_attack_threshold;
    Codec.add_opt w Codec.add_int a.a_confirmations;
    Codec.add_string w a.a_rendered
  | Progress p ->
    Codec.add_int w p.p_trials_done;
    Codec.add_int w p.p_trials_total;
    Codec.add_int w p.p_cells_done;
    Codec.add_int w p.p_cells_total
  | Done { table; journal } ->
    Codec.add_string w table;
    Codec.add_opt w Codec.add_string journal
  | Error msg -> Codec.add_string w msg
  | Ping { nonce } -> Codec.add_int w nonce
  | Pong { nonce } -> Codec.add_int w nonce);
  (tag m, Codec.contents w)

let decode ~tag ~payload =
  let r = Codec.reader payload in
  match
    let m =
      match tag with
      | 1 ->
        let version = Codec.get_int r in
        let role = get_role r in
        Hello { version; role }
      | 2 -> Hello_ack { version = Codec.get_int r }
      | 3 ->
        let sub_spec = get_spec r in
        let sub_journal = Codec.get_opt r Codec.get_string in
        let sub_resume = Codec.get_bool r in
        Submit_campaign { sub_spec; sub_journal; sub_resume }
      | 4 ->
        (* A protocol-1 peer sent an empty payload; that meant "one". *)
        if String.length payload = 0 then Lease_request { max = 1 }
        else Lease_request { max = Codec.get_int r }
      | 5 ->
        let grants =
          Codec.get_list r (fun r ->
              let lease_id = Codec.get_int r in
              let shard = get_shard r in
              { lease_id; shard })
        in
        let spec = get_spec r in
        Lease_grant { grants; spec }
      | 6 -> No_work { retry_after = Codec.get_f64 r }
      | 7 ->
        let res_lease = Codec.get_int r in
        let res_shard = Codec.get_int r in
        let res_aggregate = get_aggregate r in
        let res_telemetry = Codec.get_list r get_tel_entry in
        Cell_result { res_lease; res_shard; res_aggregate; res_telemetry }
      | 8 ->
        let q_nu = Codec.get_f64 r in
        let q_c = Codec.get_f64 r in
        let q_n = Codec.get_f64 r in
        let q_delta = Codec.get_f64 r in
        Query_assess { q_nu; q_c; q_n; q_delta }
      | 9 ->
        let a_zone = Codec.get_string r in
        let a_neat_threshold = Codec.get_f64 r in
        let a_neat_margin = Codec.get_f64 r in
        let a_attack_threshold = Codec.get_f64 r in
        let a_confirmations = Codec.get_opt r Codec.get_int in
        let a_rendered = Codec.get_string r in
        Assess_reply
          {
            a_zone;
            a_neat_threshold;
            a_neat_margin;
            a_attack_threshold;
            a_confirmations;
            a_rendered;
          }
      | 10 ->
        let p_trials_done = Codec.get_int r in
        let p_trials_total = Codec.get_int r in
        let p_cells_done = Codec.get_int r in
        let p_cells_total = Codec.get_int r in
        Progress { p_trials_done; p_trials_total; p_cells_done; p_cells_total }
      | 11 ->
        let table = Codec.get_string r in
        let journal = Codec.get_opt r Codec.get_string in
        Done { table; journal }
      | 12 -> Error (Codec.get_string r)
      | 13 -> Ping { nonce = Codec.get_int r }
      | 14 -> Pong { nonce = Codec.get_int r }
      | t -> raise (Codec.Error (Printf.sprintf "unknown message tag %d" t))
    in
    if not (Codec.finished r) then
      raise (Codec.Error "trailing bytes after message payload");
    m
  with
  | m -> Ok m
  | exception Codec.Error msg ->
    Result.Error (Printf.sprintf "tag %d: %s" tag msg)

(* --- Channel helpers ----------------------------------------------- *)

type read_result = [ `Msg of t | `Eof | `Timeout | `Bad of string ]

let send ch m =
  let tag, payload = encode m in
  Frame.Channel.write ch ~tag ~payload

let recv ?timeout ch : read_result =
  match Frame.Channel.read ?timeout ch with
  | `Eof -> `Eof
  | `Timeout -> `Timeout
  | `Bad msg -> `Bad msg
  | `Frame (tag, payload) -> (
    match decode ~tag ~payload with
    | Ok m -> `Msg m
    | Result.Error msg -> `Bad msg)
