let protocol_version = 2
let min_protocol_version = 2
let default_max_payload = 8 * 1024 * 1024

type result =
  [ `Frame of int * string | `Eof | `Timeout | `Bad of string ]

(* ------------------------------------------------------------------ *)
(* Incremental decoder: shared by the blocking reader and the          *)
(* coordinator's select loop                                           *)
(* ------------------------------------------------------------------ *)

module Decoder = struct
  type t = {
    max_payload : int;
    buf : Buffer.t;
    mutable consumed : int;  (** bytes of [buf] already handed out *)
    mutable poison : string option;
  }

  let create ?(max_payload = default_max_payload) () =
    { max_payload; buf = Buffer.create 4096; consumed = 0; poison = None }

  let feed t s = if t.poison = None then Buffer.add_string t.buf s

  (* Compact once the consumed prefix dominates, so long-lived
     connections don't grow the buffer without bound. *)
  let compact t =
    let len = Buffer.length t.buf in
    if t.consumed > 0 && (t.consumed = len || t.consumed > 65536) then begin
      let rest = Buffer.sub t.buf t.consumed (len - t.consumed) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.consumed <- 0
    end

  let available t = Buffer.length t.buf - t.consumed

  let u32_be t off =
    let b i = Char.code (Buffer.nth t.buf (t.consumed + off + i)) in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

  let next t =
    match t.poison with
    | Some msg -> `Bad msg
    | None ->
      if available t < 4 then (compact t; `Awaiting)
      else begin
        let len = u32_be t 0 in
        if len < 1 || len > t.max_payload + 1 then begin
          let msg =
            Printf.sprintf
              "frame length %d outside [1, %d] (max-frame cap)" len
              (t.max_payload + 1)
          in
          t.poison <- Some msg;
          `Bad msg
        end
        else if available t < 4 + len then (compact t; `Awaiting)
        else begin
          let tag = Char.code (Buffer.nth t.buf (t.consumed + 4)) in
          let payload = Buffer.sub t.buf (t.consumed + 5) (len - 1) in
          t.consumed <- t.consumed + 4 + len;
          compact t;
          `Frame (tag, payload)
        end
      end
end

(* ------------------------------------------------------------------ *)
(* Encoding, blocking write / read                                     *)
(* ------------------------------------------------------------------ *)

let encode ?(max_payload = default_max_payload) ~tag ~payload () =
  if tag < 0 || tag > 255 then
    invalid_arg "Frame.encode: tag outside [0, 255]";
  if String.length payload > max_payload then
    invalid_arg "Frame.encode: payload exceeds the max-frame cap";
  let len = String.length payload + 1 in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.set b 4 (Char.chr tag);
  Bytes.blit_string payload 0 b 5 (String.length payload);
  Bytes.to_string b

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let write ?max_payload fd ~tag ~payload =
  write_all fd (encode ?max_payload ~tag ~payload ())

(* Wait for readability until [deadline] (absolute, None = forever).
   Returns false on timeout. *)
let wait_readable fd deadline =
  let rec go () =
    let remaining =
      match deadline with
      | None -> -1.
      | Some d -> d -. Unix.gettimeofday ()
    in
    if deadline <> None && remaining <= 0. then false
    else begin
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> deadline = None && go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ()

module Channel = struct
  type t = {
    ch_fd : Unix.file_descr;
    ch_max_payload : int;
    dec : Decoder.t;
    chunk : Bytes.t;
  }

  let of_fd ?(max_payload = default_max_payload) fd =
    {
      ch_fd = fd;
      ch_max_payload = max_payload;
      dec = Decoder.create ~max_payload ();
      chunk = Bytes.create 65536;
    }

  let fd t = t.ch_fd

  (* The channel's own cap governs both directions: a channel created to
     read oversized frames must be able to write them too. *)
  let write t ~tag ~payload =
    write ~max_payload:t.ch_max_payload t.ch_fd ~tag ~payload

  let read ?timeout t : result =
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
    let rec go () =
      match Decoder.next t.dec with
      | `Frame (tag, payload) -> `Frame (tag, payload)
      | `Bad msg -> `Bad msg
      | `Awaiting ->
        if not (wait_readable t.ch_fd deadline) then `Timeout
        else begin
          match Unix.read t.ch_fd t.chunk 0 (Bytes.length t.chunk) with
          | 0 ->
            if Decoder.available t.dec > 0 then
              `Bad "truncated frame: EOF mid-frame"
            else `Eof
          | n ->
            Decoder.feed t.dec (Bytes.sub_string t.chunk 0 n);
            go ()
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
            go ()
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
            if Decoder.available t.dec > 0 then
              `Bad "truncated frame: connection reset"
            else `Eof
        end
    in
    go ()
end
