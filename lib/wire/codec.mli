(** Binary payload primitives for the wire protocol.

    Fixed-width big-endian encodings, chosen for auditability over
    compactness: ints and floats travel as 8 bytes ([Int64], IEEE-754
    bits), strings and sequences carry a u32 count.  Floats round-trip
    {e bit-exactly} (including infinities and NaN payloads) because the
    campaign determinism contract is byte-level: an aggregate that
    crosses the wire must fold to the same journal bytes as one that
    never left the process. *)

(** {2 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val add_u8 : writer -> int -> unit
val add_int : writer -> int -> unit
val add_i64 : writer -> int64 -> unit
val add_f64 : writer -> float -> unit
val add_bool : writer -> bool -> unit
val add_string : writer -> string -> unit
val add_opt : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val add_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val add_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit

(** {2 Reading} *)

type reader

exception Error of string
(** Raised by every [get_*] on truncation or a malformed count; message
    names the offset. *)

val reader : string -> reader

val finished : reader -> bool
(** All bytes consumed — decoders check this to reject trailing
    garbage. *)

val get_u8 : reader -> int
val get_int : reader -> int
val get_i64 : reader -> int64
val get_f64 : reader -> float
val get_bool : reader -> bool
val get_string : reader -> string
val get_opt : reader -> (reader -> 'a) -> 'a option
val get_list : reader -> (reader -> 'a) -> 'a list
val get_array : reader -> (reader -> 'a) -> 'a array
