module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message
module Spec = Nakamoto_campaign.Spec
module Shard = Nakamoto_campaign.Shard
module Aggregate = Nakamoto_campaign.Aggregate
module Journal = Nakamoto_campaign.Journal
module Campaign = Nakamoto_campaign.Campaign
module Core = Nakamoto_core
module Tel = Nakamoto_telemetry

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_dec : Frame.Decoder.t;
  c_buf : Bytes.t;
  mutable c_hello : bool;
  (* Output side: encoded frames queued until the socket is writable.
     [c_out_off] counts bytes of the head frame already written. *)
  c_out : string Queue.t;
  mutable c_out_off : int;
  mutable c_queued : int;
  (* Heartbeat state: when the peer last delivered any frame, and the
     outstanding ping (nonce, sent-at) if one is in flight. *)
  mutable c_last_seen : float;
  mutable c_ping : (int * float) option;
}

type lease_info = { l_plan : int; l_conn : int; l_deadline : float }

(* One in-flight campaign.  The arrays mirror [Campaign.run]'s local
   state exactly: that is the point — the fold must be the same fold. *)
type campaign = {
  g_spec : Spec.t;
  g_cells : Spec.cell array;
  g_slots : int;  (** shards per cell *)
  g_plan : Shard.t array;
  g_completed : Aggregate.t option array;
  g_from_journal : bool array;
  g_written : bool array;
  g_writer : Journal.writer option;
  g_journal_path : string option;
  mutable g_next_flush : int;
  g_shard_results : Aggregate.t option array array;
  g_shards_done : int array;
  g_shard_snaps : Tel.Registry.Snapshot.t array;
  mutable g_pending : int list;  (** plan indices awaiting a lease *)
  g_leases : (int, lease_info) Hashtbl.t;
  mutable g_trials_done : int;
  mutable g_cells_done : int;
  g_resumed_cells : int;
  g_fresh_trials : int;
  g_client : int;  (** conn id of the submitter, for progress / done *)
  g_started : float;
  g_workers : (int, unit) Hashtbl.t;  (** conn ids ever granted a lease *)
}

exception Done_serving

let default_log msg = Printf.eprintf "serve: %s\n%!" msg
let max_grants_per_request = 64

let write_text_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let listen_tcp (host, port) =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.SO_REUSEADDR true
   with Unix.Unix_error _ -> ());
  let ip =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match (Unix.gethostbyname host).Unix.h_addr_list with
      | [||] ->
        Unix.close fd;
        failwith (Printf.sprintf "no address found for host %s" host)
      | addrs -> addrs.(0)
      | exception Not_found ->
        Unix.close fd;
        failwith (Printf.sprintf "cannot resolve host %s" host))
  in
  (try Unix.bind fd (Unix.ADDR_INET (ip, port))
   with e -> Unix.close fd; raise e);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound_port)

let serve ?socket ?tcp ?max_campaigns ?(max_conns = 240)
    ?(max_queue = 16 * 1024 * 1024) ?(lease_timeout = 30.)
    ?heartbeat_interval ?heartbeat_timeout ?telemetry
    ?(telemetry_clock = Unix.gettimeofday) ?surface ?(log = default_log)
    ?(on_tcp_port = fun _ -> ()) () =
  (match max_campaigns with
  | Some n when n < 1 ->
    invalid_arg "Coordinator.serve: max_campaigns must be >= 1"
  | _ -> ());
  if socket = None && tcp = None then
    invalid_arg "Coordinator.serve: need a Unix socket path or a TCP endpoint";
  if max_conns < 1 then
    invalid_arg "Coordinator.serve: max_conns must be >= 1";
  if max_queue < 65536 then
    invalid_arg "Coordinator.serve: max_queue must be >= 65536";
  (* A wedged worker should lose its lease well before the lease itself
     expires: probe at a fraction of the lease timeout and drop a peer
     that stays silent for another fraction.  Both are overridable —
     the probe budget must exceed the slowest shard compute, since a
     worker deep in [run_shard] cannot answer until it surfaces. *)
  let heartbeat_interval =
    match heartbeat_interval with
    | Some s -> s
    | None -> Float.max 0.5 (lease_timeout /. 6.)
  in
  let heartbeat_timeout =
    match heartbeat_timeout with
    | Some s -> s
    | None -> Float.max (2. *. heartbeat_interval) (lease_timeout /. 2.)
  in
  if heartbeat_interval <= 0. || heartbeat_timeout <= 0. then
    invalid_arg "Coordinator.serve: heartbeat settings must be positive";
  Conn.ignore_sigpipe ();
  let tel =
    Option.map (fun _ -> Tel.Registry.create ~clock:telemetry_clock ()) telemetry
  in
  let counter name = Option.map (fun r -> Tel.Registry.counter r name) tel in
  let c_frames_in = counter "serve_frames_in_total" in
  let c_frames_out = counter "serve_frames_out_total" in
  let c_granted = counter "serve_leases_granted_total" in
  let c_expired = counter "serve_leases_expired_total" in
  let c_stale = counter "serve_stale_results_total" in
  let c_late = counter "serve_late_results_total" in
  let c_shed = counter "serve_conns_shed_total" in
  let c_hb_drop = counter "serve_heartbeat_drops_total" in
  let c_overflow = counter "serve_queue_overflow_drops_total" in
  let sp_fold = Option.map (fun r -> Tel.Registry.span r "serve_fold_seconds") tel in
  let unix_listener = Option.map listen_unix socket in
  let tcp_listener =
    match tcp with
    | None -> None
    | Some endpoint ->
      let fd, port = listen_tcp endpoint in
      on_tcp_port port;
      Some (fd, (fst endpoint, port))
  in
  let listeners =
    Option.to_list unix_listener
    @ List.map fst (Option.to_list tcp_listener)
  in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  (* The select loop's dispatch index: ready fd -> connection, kept in
     sync by accept/drop so readiness handling is O(ready), not
     O(ready * conns). *)
  let by_fd : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  let next_conn = ref 0 in
  let next_lease = ref 0 in
  let next_nonce = ref 0 in
  let campaigns_served = ref 0 in
  let current : campaign option ref = ref None in

  (* --- connection plumbing --------------------------------------- *)
  let release_leases g ~conn_id ~reason =
    let stale =
      Hashtbl.fold
        (fun id l acc -> if l.l_conn = conn_id then (id, l) :: acc else acc)
        g.g_leases []
    in
    List.iter
      (fun (id, l) ->
        Hashtbl.remove g.g_leases id;
        g.g_pending <- l.l_plan :: g.g_pending;
        log
          (Printf.sprintf "lease %d (shard %d) released: %s; requeued" id
             g.g_plan.(l.l_plan).Shard.id reason))
      stale
  in
  let drop_conn conn reason =
    if Hashtbl.mem conns conn.c_id then begin
      Hashtbl.remove conns conn.c_id;
      Hashtbl.remove by_fd conn.c_fd;
      (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
      Option.iter
        (fun g -> release_leases g ~conn_id:conn.c_id ~reason)
        !current;
      if reason <> "eof" then
        log (Printf.sprintf "connection %d dropped: %s" conn.c_id reason)
    end
  in
  (* Drain as much queued output as the socket accepts right now; the
     fds are non-blocking, so a peer that stops reading costs EAGAIN
     and a retry at the next write-readiness, never a wedged loop. *)
  let rec try_flush conn =
    if Hashtbl.mem conns conn.c_id && not (Queue.is_empty conn.c_out) then begin
      let head = Queue.peek conn.c_out in
      let len = String.length head - conn.c_out_off in
      match Unix.write_substring conn.c_fd head conn.c_out_off len with
      | n ->
        conn.c_queued <- conn.c_queued - n;
        if n = len then begin
          ignore (Queue.pop conn.c_out);
          conn.c_out_off <- 0;
          try_flush conn
        end
        else conn.c_out_off <- conn.c_out_off + n
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ -> drop_conn conn "write failed"
      | exception Sys_error _ -> drop_conn conn "write failed"
    end
  in
  let send_msg conn m =
    if Hashtbl.mem conns conn.c_id then begin
      let tag, payload = Msg.encode m in
      let bytes = Frame.encode ~tag ~payload () in
      Queue.push bytes conn.c_out;
      conn.c_queued <- conn.c_queued + String.length bytes;
      Option.iter Tel.Counter.incr c_frames_out;
      if conn.c_queued > max_queue then begin
        (* Backpressure cap: a peer that will not read gets dropped, not
           buffered without bound. *)
        Option.iter Tel.Counter.incr c_overflow;
        drop_conn conn
          (Printf.sprintf
             "output queue overflow (%d bytes queued, peer not reading)"
             conn.c_queued)
      end
      else try_flush conn
    end
  in
  let send_progress g =
    match Hashtbl.find_opt conns g.g_client with
    | None -> ()
    | Some client ->
      send_msg client
        (Msg.Progress
           {
             Msg.p_trials_done = g.g_trials_done;
             p_trials_total = Spec.trial_count g.g_spec;
             p_cells_done = g.g_cells_done;
             p_cells_total = Array.length g.g_cells;
           })
  in

  (* --- journal flush: strictly in cell order --------------------- *)
  let flush_prefix g =
    let ncells = Array.length g.g_cells in
    while
      g.g_next_flush < ncells && g.g_completed.(g.g_next_flush) <> None
    do
      let i = g.g_next_flush in
      (match g.g_writer with
      | Some w when not g.g_written.(i) ->
        (match g.g_completed.(i) with
        | Some agg ->
          Journal.append w (Journal.Cell (g.g_cells.(i), Aggregate.snapshot agg))
        | None -> assert false);
        g.g_written.(i) <- true
      | _ -> ());
      g.g_next_flush <- g.g_next_flush + 1
    done
  in

  (* --- campaign completion --------------------------------------- *)
  let finalize g =
    Option.iter Journal.close_writer g.g_writer;
    let results =
      Array.mapi
        (fun i cell ->
          match g.g_completed.(i) with
          | Some aggregate ->
            { Campaign.cell; aggregate; from_journal = g.g_from_journal.(i) }
          | None -> assert false)
        g.g_cells
    in
    let telemetry_snapshot =
      match tel with
      | None -> None
      | Some reg ->
        Some
          (Array.fold_left Tel.Registry.Snapshot.merge
             (Tel.Registry.snapshot reg) g.g_shard_snaps)
    in
    let outcome =
      {
        Campaign.spec = g.g_spec;
        cells = results;
        fresh_trials = g.g_fresh_trials;
        resumed_cells = g.g_resumed_cells;
        jobs = max 1 (Hashtbl.length g.g_workers);
        elapsed = Unix.gettimeofday () -. g.g_started;
        telemetry = telemetry_snapshot;
      }
    in
    let table =
      Nakamoto_numerics.Table.render (Campaign.summary_table outcome)
    in
    (match (telemetry, telemetry_snapshot) with
    | Some dir, Some snap ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      write_text_file
        (Filename.concat dir "telemetry.prom")
        (Tel.Export.prometheus snap);
      write_text_file
        (Filename.concat dir "telemetry.jsonl")
        (Tel.Export.jsonl ~emitted_at:(Unix.gettimeofday ()) snap)
    | _ -> ());
    (match Hashtbl.find_opt conns g.g_client with
    | None -> ()
    | Some client ->
      send_msg client (Msg.Done { table; journal = g.g_journal_path }));
    incr campaigns_served;
    current := None;
    log
      (Printf.sprintf "campaign %d complete: %s" !campaigns_served
         (Spec.describe g.g_spec));
    match max_campaigns with
    | Some n when !campaigns_served >= n -> raise Done_serving
    | _ -> ()
  in
  let maybe_finish g =
    if g.g_cells_done = Array.length g.g_cells then begin
      flush_prefix g;
      finalize g
    end
  in

  (* --- message handlers ------------------------------------------ *)
  let start_campaign conn (s : Msg.submit) =
    match !current with
    | Some _ -> send_msg conn (Msg.Error "busy: a campaign is already running")
    | None -> (
      match Spec.validate s.Msg.sub_spec with
      | exception Invalid_argument m -> send_msg conn (Msg.Error m)
      | () -> (
        let spec = s.Msg.sub_spec in
        let cells = Spec.cells spec in
        let ncells = Array.length cells in
        let completed : Aggregate.t option array = Array.make ncells None in
        let from_journal = Array.make ncells false in
        let written = Array.make ncells false in
        match
          match s.Msg.sub_journal with
          | None -> Ok None
          | Some path -> (
            let fresh () =
              let w = Journal.create_writer ?telemetry:tel ~path ~fresh:true () in
              (try
                 Journal.append w
                   (Journal.Header (Journal.header_of_spec spec))
               with e ->
                 Journal.close_writer w;
                 raise e);
              Ok (Some w)
            in
            if not s.Msg.sub_resume then fresh ()
            else
              match
                Journal.fold ~log ~path ~fingerprint:(Spec.fingerprint spec)
                  ~init:() (fun () (cell : Spec.cell) snap ->
                    if cell.Spec.index < 0 || cell.Spec.index >= ncells then
                      failwith
                        (Printf.sprintf "journal %s: cell index out of range"
                           path);
                    completed.(cell.Spec.index) <-
                      Some (Aggregate.of_snapshot snap);
                    from_journal.(cell.Spec.index) <- true;
                    written.(cell.Spec.index) <- true)
              with
              | Journal.Fresh _ -> fresh ()
              | Journal.Recovered { entries; _ } ->
                log
                  (Printf.sprintf
                     "resuming %s: %d of %d cells recovered from %s"
                     (Spec.describe spec) entries ncells path);
                Ok (Some (Journal.create_writer ?telemetry:tel ~path ~fresh:false ()))
              | exception Invalid_argument m -> Error m
              | exception Failure m -> Error m)
        with
        | Error m -> send_msg conn (Msg.Error m)
        | Ok writer ->
          let resumed_cells =
            Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
              from_journal
          in
          let plan =
            Shard.plan ~cells:ncells ~trials_per_cell:spec.Spec.trials_per_cell
              ~shard_size:spec.Spec.shard_size
              ~skip:(fun i -> completed.(i) <> None)
          in
          let slots =
            Shard.per_cell ~trials_per_cell:spec.Spec.trials_per_cell
              ~shard_size:spec.Spec.shard_size
          in
          let g =
            {
              g_spec = spec;
              g_cells = cells;
              g_slots = slots;
              g_plan = plan;
              g_completed = completed;
              g_from_journal = from_journal;
              g_written = written;
              g_writer = writer;
              g_journal_path = s.Msg.sub_journal;
              g_next_flush = 0;
              g_shard_results =
                Array.init ncells (fun _ -> Array.make slots None);
              g_shards_done = Array.make ncells 0;
              g_shard_snaps =
                Array.make (Array.length plan) Tel.Registry.Snapshot.empty;
              g_pending = List.init (Array.length plan) Fun.id;
              g_leases = Hashtbl.create 16;
              g_trials_done = resumed_cells * spec.Spec.trials_per_cell;
              g_cells_done = resumed_cells;
              g_resumed_cells = resumed_cells;
              g_fresh_trials =
                Array.fold_left (fun acc sh -> acc + Shard.trials sh) 0 plan;
              g_client = conn.c_id;
              g_started = Unix.gettimeofday ();
              g_workers = Hashtbl.create 8;
            }
          in
          flush_prefix g;
          current := Some g;
          log
            (Printf.sprintf "campaign submitted by connection %d: %s"
               conn.c_id (Spec.describe spec));
          send_progress g;
          maybe_finish g))
  in
  let handle_lease_request conn ~max =
    match !current with
    | None -> send_msg conn (Msg.No_work { retry_after = 0.2 })
    | Some g -> (
      match g.g_pending with
      | [] -> send_msg conn (Msg.No_work { retry_after = 0.05 })
      | _ :: _ ->
        let now = Unix.gettimeofday () in
        let budget = max |> Int.max 1 |> Int.min max_grants_per_request in
        let rec take k acc =
          if k = 0 then List.rev acc
          else
            match g.g_pending with
            | [] -> List.rev acc
            | pi :: rest ->
              g.g_pending <- rest;
              let id = !next_lease in
              incr next_lease;
              Hashtbl.replace g.g_leases id
                {
                  l_plan = pi;
                  l_conn = conn.c_id;
                  l_deadline = now +. lease_timeout;
                };
              Option.iter Tel.Counter.incr c_granted;
              take (k - 1)
                ({ Msg.lease_id = id; shard = g.g_plan.(pi) } :: acc)
        in
        let grants = take budget [] in
        Hashtbl.replace g.g_workers conn.c_id ();
        send_msg conn (Msg.Lease_grant { grants; spec = g.g_spec }))
  in
  (* The shared fold for a landed shard result — identical whether the
     lease was live or the result arrived late for a requeued shard. *)
  let apply_result g ~pi agg snap =
    let sh = g.g_plan.(pi) in
    let ci = sh.Shard.cell_index in
    g.g_shard_results.(ci).(sh.Shard.slot) <- Some agg;
    g.g_shard_snaps.(pi) <- snap;
    g.g_shards_done.(ci) <- g.g_shards_done.(ci) + 1;
    g.g_trials_done <- g.g_trials_done + Shard.trials sh;
    if g.g_shards_done.(ci) = g.g_slots then begin
      (* Merge in slot order — never completion order. *)
      let t0 =
        match sp_fold with Some _ -> telemetry_clock () | None -> 0.
      in
      let merged =
        Array.fold_left
          (fun acc slot ->
            match (acc, slot) with
            | None, Some a -> Some a
            | Some m, Some a -> Some (Aggregate.merge m a)
            | _, None -> assert false)
          None
          g.g_shard_results.(ci)
      in
      (match sp_fold with
      | Some sp ->
        Tel.Span.record sp (Float.max 0. (telemetry_clock () -. t0))
      | None -> ());
      g.g_completed.(ci) <- merged;
      g.g_cells_done <- g.g_cells_done + 1;
      flush_prefix g;
      send_progress g;
      maybe_finish g
    end
  in
  let decode_result conn (r : Msg.cell_result) k =
    match
      ( Aggregate.of_snapshot r.Msg.res_aggregate,
        Tel.Registry.Snapshot.of_entries r.Msg.res_telemetry )
    with
    | exception Invalid_argument m ->
      send_msg conn (Msg.Error ("malformed result: " ^ m));
      drop_conn conn "malformed result";
      None
    | agg, snap -> k agg snap
  in
  let handle_cell_result conn (r : Msg.cell_result) =
    match !current with
    | None -> Option.iter Tel.Counter.incr c_stale
    | Some g -> (
      match Hashtbl.find_opt g.g_leases r.Msg.res_lease with
      | None -> (
        (* The lease expired (or its connection died) and the shard went
           back to pending.  Shards are deterministic, so if nobody has
           recomputed or re-leased it yet, this late copy is as good as
           any — accept it and spare the recompute.  Anything else is a
           genuine duplicate: the first landed copy stays
           authoritative. *)
        match
          List.find_opt
            (fun pi -> g.g_plan.(pi).Shard.id = r.Msg.res_shard)
            g.g_pending
        with
        | Some pi ->
          ignore
            (decode_result conn r (fun agg snap ->
                 g.g_pending <- List.filter (fun pj -> pj <> pi) g.g_pending;
                 Option.iter Tel.Counter.incr c_late;
                 log
                   (Printf.sprintf
                      "late result for lease %d (shard %d) accepted: shard \
                       was still unassigned"
                      r.Msg.res_lease r.Msg.res_shard);
                 apply_result g ~pi agg snap;
                 Some ()))
        | None ->
          Option.iter Tel.Counter.incr c_stale;
          log
            (Printf.sprintf "ignoring stale result for lease %d (shard %d)"
               r.Msg.res_lease r.Msg.res_shard))
      | Some l ->
        Hashtbl.remove g.g_leases r.Msg.res_lease;
        let sh = g.g_plan.(l.l_plan) in
        if sh.Shard.id <> r.Msg.res_shard then begin
          send_msg conn
            (Msg.Error
               (Printf.sprintf "lease %d covers shard %d, not %d"
                  r.Msg.res_lease sh.Shard.id r.Msg.res_shard));
          g.g_pending <- l.l_plan :: g.g_pending;
          drop_conn conn "shard id mismatch"
        end
        else
          ignore
            (decode_result conn r (fun agg snap ->
                 apply_result g ~pi:l.l_plan agg snap;
                 Some ())))
  in
  let handle_assess conn (q : Msg.assess_params) =
    match
      Core.Params.of_c ~n:q.Msg.q_n ~delta:q.Msg.q_delta ~nu:q.Msg.q_nu
        ~c:q.Msg.q_c
    with
    | exception Invalid_argument m -> send_msg conn (Msg.Error m)
    | p -> (
      match surface with
      | Some table ->
        (* Surface-backed serving: certified table cells answer directly,
           everything else falls back to the exact solver inside
           [assess_cached]; both paths tick the surface counters on the
           daemon registry when telemetry is on. *)
        let v = Nakamoto_surface.Table.assess_cached ?telemetry:tel table p in
        let nu = p.Core.Params.nu in
        let mu = 1. -. nu in
        send_msg conn
          (Msg.Assess_reply
             {
               Msg.a_zone = Core.Assessment.zone_to_string v.Core.Assessment.v_zone;
               a_neat_threshold = Core.Bounds.neat_c_min ~nu;
               a_neat_margin = v.Core.Assessment.v_margin;
               a_attack_threshold = 1. /. ((1. /. nu) -. (1. /. mu));
               a_confirmations = v.Core.Assessment.v_confirmations;
               a_rendered =
                 Format.asprintf "%a" Core.Assessment.pp_verdict v;
             })
      | None ->
        let a = Core.Assessment.assess p in
        send_msg conn
          (Msg.Assess_reply
             {
               Msg.a_zone = Core.Assessment.zone_to_string a.Core.Assessment.zone;
               a_neat_threshold = a.neat_threshold;
               a_neat_margin = a.neat_margin;
               a_attack_threshold = a.attack_threshold;
               a_confirmations =
                 Option.map
                   (fun (c : Core.Confirmation.assessment) ->
                     c.Core.Confirmation.confirmations)
                   a.confirmations;
               a_rendered = Format.asprintf "%a" Core.Assessment.pp a;
             }))
  in
  let handle_msg conn (m : Msg.t) =
    conn.c_last_seen <- Unix.gettimeofday ();
    if not conn.c_hello then begin
      match m with
      | Msg.Hello { version; _ }
        when version >= Frame.min_protocol_version
             && version <= Frame.protocol_version ->
        conn.c_hello <- true;
        send_msg conn (Msg.Hello_ack { version = Frame.protocol_version })
      | Msg.Hello { version; _ } ->
        send_msg conn
          (Msg.Error
             (Printf.sprintf
                "protocol version mismatch: server speaks %d (accepts >= \
                 %d), peer sent %d"
                Frame.protocol_version Frame.min_protocol_version version));
        drop_conn conn "version mismatch"
      | _ ->
        send_msg conn (Msg.Error "expected hello");
        drop_conn conn "no hello"
    end
    else
      match m with
      | Msg.Hello _ ->
        send_msg conn (Msg.Error "duplicate hello");
        drop_conn conn "duplicate hello"
      | Msg.Submit_campaign s -> start_campaign conn s
      | Msg.Lease_request { max } -> handle_lease_request conn ~max
      | Msg.Cell_result r -> handle_cell_result conn r
      | Msg.Query_assess q -> handle_assess conn q
      | Msg.Ping { nonce } -> send_msg conn (Msg.Pong { nonce })
      | Msg.Pong _ -> conn.c_ping <- None
      | Msg.Error e -> log (Printf.sprintf "peer %d error: %s" conn.c_id e)
      | Msg.Hello_ack _ | Msg.Lease_grant _ | Msg.No_work _
      | Msg.Assess_reply _ | Msg.Progress _ | Msg.Done _ ->
        send_msg conn (Msg.Error "unexpected message for a server");
        drop_conn conn "protocol violation"
  in

  (* --- the read path --------------------------------------------- *)
  let rec drain conn =
    if Hashtbl.mem conns conn.c_id then begin
      match Frame.Decoder.next conn.c_dec with
      | `Awaiting -> ()
      | `Bad msg ->
        send_msg conn (Msg.Error msg);
        drop_conn conn msg
      | `Frame (tag, payload) ->
        Option.iter Tel.Counter.incr c_frames_in;
        (match Msg.decode ~tag ~payload with
        | Ok m -> handle_msg conn m
        | Error msg ->
          (* Unknown tag or undecodable payload: a typed reply, and the
             connection survives — the framing itself was clean. *)
          send_msg conn (Msg.Error msg));
        drain conn
    end
  in
  let handle_readable conn =
    match Unix.read conn.c_fd conn.c_buf 0 (Bytes.length conn.c_buf) with
    | 0 ->
      if Frame.Decoder.available conn.c_dec > 0 then
        drop_conn conn "eof mid-frame"
      else drop_conn conn "eof"
    | n ->
      Frame.Decoder.feed conn.c_dec (Bytes.sub_string conn.c_buf 0 n);
      drain conn
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      drop_conn conn "connection reset"
  in
  let shed fd =
    (* Accept-time shedding: at the connection cap, refuse with a typed
       frame (best-effort, single write) instead of leaving the dial
       hanging in the backlog. *)
    Option.iter Tel.Counter.incr c_shed;
    let tag, payload =
      Msg.encode (Msg.Error "server at connection capacity; retry later")
    in
    let bytes = Frame.encode ~tag ~payload () in
    (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
    (try ignore (Unix.write_substring fd bytes 0 (String.length bytes))
     with Unix.Unix_error _ | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    log
      (Printf.sprintf "connection shed: %d connections at the cap" max_conns)
  in
  let rec accept_loop lfd ~is_tcp =
    match Unix.accept lfd with
    | fd, _ ->
      if Hashtbl.length conns >= max_conns then shed fd
      else begin
        Unix.set_nonblock fd;
        if is_tcp then (
          try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error _ -> ());
        let id = !next_conn in
        incr next_conn;
        let conn =
          {
            c_id = id;
            c_fd = fd;
            c_dec = Frame.Decoder.create ();
            c_buf = Bytes.create 65536;
            c_hello = false;
            c_out = Queue.create ();
            c_out_off = 0;
            c_queued = 0;
            c_last_seen = Unix.gettimeofday ();
            c_ping = None;
          }
        in
        Hashtbl.replace conns id conn;
        Hashtbl.replace by_fd fd conn
      end;
      accept_loop lfd ~is_tcp
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop lfd ~is_tcp
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
      accept_loop lfd ~is_tcp
  in
  let expire_leases g now =
    let expired =
      Hashtbl.fold
        (fun id l acc -> if l.l_deadline <= now then (id, l) :: acc else acc)
        g.g_leases []
    in
    List.iter
      (fun (id, l) ->
        Hashtbl.remove g.g_leases id;
        g.g_pending <- l.l_plan :: g.g_pending;
        Option.iter Tel.Counter.incr c_expired;
        log
          (Printf.sprintf
             "lease %d (shard %d, connection %d) expired after %.1fs; \
              requeued"
             id g.g_plan.(l.l_plan).Shard.id l.l_conn lease_timeout))
      expired
  in
  (* Probe lease holders that have gone quiet; drop the ones whose probe
     went unanswered.  A worker that merely computes surfaces and pongs
     within [heartbeat_timeout]; one that stopped reading never will,
     and its leases go back to the queue long before [lease_timeout]. *)
  let heartbeat g now =
    let holders = Hashtbl.create 8 in
    Hashtbl.iter (fun _ l -> Hashtbl.replace holders l.l_conn ()) g.g_leases;
    let to_drop = ref [] in
    Hashtbl.iter
      (fun cid () ->
        match Hashtbl.find_opt conns cid with
        | None -> ()
        | Some conn -> (
          match conn.c_ping with
          | Some (_, sent) when now -. sent > heartbeat_timeout ->
            to_drop := conn :: !to_drop
          | Some _ -> ()
          | None ->
            if now -. conn.c_last_seen >= heartbeat_interval then begin
              let nonce = !next_nonce in
              incr next_nonce;
              conn.c_ping <- Some (nonce, now);
              send_msg conn (Msg.Ping { nonce })
            end))
      holders;
    List.iter
      (fun conn ->
        Option.iter Tel.Counter.incr c_hb_drop;
        drop_conn conn
          (Printf.sprintf "heartbeat timeout (no pong within %.1fs)"
             heartbeat_timeout))
      !to_drop
  in

  (* --- the loop ---------------------------------------------------- *)
  let flush_remaining conn =
    (* Shutdown courtesy: the queued Done/Error frames should reach the
       peer before the fd closes, but a wedged peer must not wedge the
       daemon's exit — bound the blocking flush. *)
    let deadline = Unix.gettimeofday () +. 5. in
    try
      while not (Queue.is_empty conn.c_out) do
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then raise Exit;
        match Unix.select [] [ conn.c_fd ] [] remaining with
        | _, [], _ -> raise Exit
        | _ ->
          let head = Queue.peek conn.c_out in
          let len = String.length head - conn.c_out_off in
          let n = Unix.write_substring conn.c_fd head conn.c_out_off len in
          if n = len then begin
            ignore (Queue.pop conn.c_out);
            conn.c_out_off <- 0
          end
          else conn.c_out_off <- conn.c_out_off + n
      done
    with
    | Exit -> ()
    | Unix.Unix_error _ | Sys_error _ -> ()
  in
  let cleanup () =
    Hashtbl.iter
      (fun _ conn ->
        flush_remaining conn;
        try Unix.close conn.c_fd with Unix.Unix_error _ -> ())
      conns;
    Hashtbl.reset conns;
    Hashtbl.reset by_fd;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      listeners;
    match socket with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ()
  in
  Option.iter (fun path -> log (Printf.sprintf "listening on %s" path)) socket;
  Option.iter
    (fun (_, (host, port)) ->
      log (Printf.sprintf "listening on tcp %s:%d" host port))
    tcp_listener;
  (try
     while true do
       let timeout =
         match !current with
         | Some g when Hashtbl.length g.g_leases > 0 ->
           (* Wake for the nearest lease deadline, but at least twice
              per heartbeat interval so probes go out on time. *)
           let now = Unix.gettimeofday () in
           let next =
             Hashtbl.fold
               (fun _ l acc -> Float.min acc l.l_deadline)
               g.g_leases infinity
           in
           Float.max 0.01
             (Float.min (next -. now) (heartbeat_interval /. 2.))
         | _ -> -1.
       in
       let read_fds =
         listeners @ Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) conns []
       in
       let write_fds =
         Hashtbl.fold
           (fun _ c acc -> if c.c_queued > 0 then c.c_fd :: acc else acc)
           conns []
       in
       let readable, writable, _ =
         match Unix.select read_fds write_fds [] timeout with
         | r -> r
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       List.iter
         (fun fd ->
           match Hashtbl.find_opt by_fd fd with
           | Some conn -> try_flush conn
           | None -> ())
         writable;
       List.iter
         (fun fd ->
           if Option.fold ~none:false ~some:(( = ) fd) unix_listener then
             accept_loop fd ~is_tcp:false
           else if
             Option.fold ~none:false ~some:(fun (l, _) -> l = fd) tcp_listener
           then accept_loop fd ~is_tcp:true
           else
             match Hashtbl.find_opt by_fd fd with
             | Some conn -> handle_readable conn
             | None -> ())
         readable;
       let now = Unix.gettimeofday () in
       Option.iter (fun g -> expire_leases g now) !current;
       Option.iter (fun g -> heartbeat g now) !current
     done
   with
  | Done_serving -> cleanup ()
  | e ->
    cleanup ();
    raise e);
  !campaigns_served
