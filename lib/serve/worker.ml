module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message
module Spec = Nakamoto_campaign.Spec
module Shard = Nakamoto_campaign.Shard
module Aggregate = Nakamoto_campaign.Aggregate
module Campaign = Nakamoto_campaign.Campaign
module Faultplan = Nakamoto_campaign.Faultplan
module Tel = Nakamoto_telemetry

let default_log msg = Printf.eprintf "worker[%d]: %s\n%!" (Unix.getpid ()) msg

let run ~socket ?(connect_timeout = 10.) ?fault
    ?(telemetry_clock = Unix.gettimeofday) ?(log = default_log) () =
  let fd = Conn.connect ~socket ~timeout:connect_timeout in
  let ch = Frame.Channel.of_fd fd in
  (match Conn.handshake ~role:Msg.Worker ch with
  | Ok () -> ()
  | Error e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failwith ("handshake failed: " ^ e));
  let fault = Option.map Faultplan.arm fault in
  (* Cache the decoded grid: every lease of one campaign carries the
     same spec, and [cells] must be recomputed only when it changes. *)
  let cache : (string * Spec.t * Spec.cell array) option ref = ref None in
  let cells_of spec =
    let key = Spec.to_json spec in
    match !cache with
    | Some (k, s, c) when k = key -> (s, c)
    | _ ->
      let c = Spec.cells spec in
      cache := Some (key, spec, c);
      (spec, c)
  in
  let computed = ref 0 in
  let rec loop () =
    Msg.send ch Msg.Lease_request;
    match Msg.recv ch with
    | `Msg (Msg.Lease_grant { grant = { Msg.lease_id; shard }; spec }) ->
      let spec, cells = cells_of spec in
      let sreg = Tel.Registry.create ~clock:telemetry_clock () in
      let sp =
        Tel.Registry.span sreg
          ~labels:[ ("domain", string_of_int (Unix.getpid ())) ]
          "campaign_shard_seconds"
      in
      let began = Tel.Span.start sp in
      let agg =
        Faultplan.wrap_task fault ~task:shard.Shard.id (fun () ->
            Campaign.run_shard ~telemetry:sreg spec cells shard)
      in
      Tel.Span.stop sp began;
      incr computed;
      Msg.send ch
        (Msg.Cell_result
           {
             Msg.res_lease = lease_id;
             res_shard = shard.Shard.id;
             res_aggregate = Aggregate.snapshot agg;
             res_telemetry =
               Tel.Registry.Snapshot.entries (Tel.Registry.snapshot sreg);
           });
      loop ()
    | `Msg (Msg.No_work { retry_after }) ->
      Unix.sleepf (Float.max 0.01 retry_after);
      loop ()
    | `Msg (Msg.Error e) -> failwith ("server error: " ^ e)
    | `Msg _ -> failwith "unexpected message from the coordinator"
    | `Timeout -> loop ()
    | `Eof ->
      (* The daemon served its campaigns and closed up: normal exit. *)
      log (Printf.sprintf "coordinator closed; %d shards computed" !computed)
    | `Bad m -> failwith ("protocol error: " ^ m)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop;
  !computed
