module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message
module Spec = Nakamoto_campaign.Spec
module Shard = Nakamoto_campaign.Shard
module Aggregate = Nakamoto_campaign.Aggregate
module Campaign = Nakamoto_campaign.Campaign
module Faultplan = Nakamoto_campaign.Faultplan
module Tel = Nakamoto_telemetry

let default_log msg = Printf.eprintf "worker[%d]: %s\n%!" (Unix.getpid ()) msg

let run ~addr ?(connect_timeout = 10.) ?(lease_batch = 1) ?fault
    ?(telemetry_clock = Unix.gettimeofday) ?(log = default_log) () =
  if lease_batch < 1 then invalid_arg "Worker.run: lease_batch must be >= 1";
  let ch =
    match Conn.establish ~addr ~timeout:connect_timeout ~role:Msg.Worker with
    | Ok ch -> ch
    | Error e -> failwith ("handshake failed: " ^ e)
  in
  let fd = Frame.Channel.fd ch in
  let fault = Option.map Faultplan.arm fault in
  (* Cache the decoded grid: every lease of one campaign carries the
     same spec, and [cells] must be recomputed only when it changes. *)
  let cache : (string * Spec.t * Spec.cell array) option ref = ref None in
  let cells_of spec =
    let key = Spec.to_json spec in
    match !cache with
    | Some (k, s, c) when k = key -> (s, c)
    | _ ->
      let c = Spec.cells spec in
      cache := Some (key, spec, c);
      (spec, c)
  in
  let computed = ref 0 in
  (* Heartbeats arrive on their own schedule — between a request and
     its grant, or queued up behind a long compute — and are answered
     wherever the worker happens to be reading. *)
  let rec recv () =
    match Msg.recv ch with
    | `Msg (Msg.Ping { nonce }) ->
      Msg.send ch (Msg.Pong { nonce });
      recv ()
    | `Timeout -> recv ()
    | other -> other
  in
  let compute spec cells { Msg.lease_id; shard } =
    let sreg = Tel.Registry.create ~clock:telemetry_clock () in
    let sp =
      Tel.Registry.span sreg
        ~labels:[ ("domain", string_of_int (Unix.getpid ())) ]
        "campaign_shard_seconds"
    in
    let began = Tel.Span.start sp in
    let agg =
      Faultplan.wrap_task fault ~task:shard.Shard.id (fun () ->
          Campaign.run_shard ~telemetry:sreg spec cells shard)
    in
    Tel.Span.stop sp began;
    incr computed;
    Msg.send ch
      (Msg.Cell_result
         {
           Msg.res_lease = lease_id;
           res_shard = shard.Shard.id;
           res_aggregate = Aggregate.snapshot agg;
           res_telemetry =
             Tel.Registry.Snapshot.entries (Tel.Registry.snapshot sreg);
         })
  in
  let rec loop () =
    Msg.send ch (Msg.Lease_request { max = lease_batch });
    match recv () with
    | `Msg (Msg.Lease_grant { grants; spec }) ->
      let spec, cells = cells_of spec in
      List.iter (compute spec cells) grants;
      loop ()
    | `Msg (Msg.No_work { retry_after }) ->
      Unix.sleepf (Float.max 0.01 retry_after);
      loop ()
    | `Msg (Msg.Error e) -> failwith ("server error: " ^ e)
    | `Msg _ -> failwith "unexpected message from the coordinator"
    | `Timeout -> loop ()
    | `Eof ->
      (* The daemon served its campaigns and closed up: normal exit. *)
      log (Printf.sprintf "coordinator closed; %d shards computed" !computed)
    | `Bad m -> failwith ("protocol error: " ^ m)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop;
  !computed
