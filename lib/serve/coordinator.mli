(** The campaign daemon: a single-threaded [Unix.select] event loop on a
    Unix-domain socket.

    One coordinator serves three kinds of peers over the same wire
    protocol: clients submitting campaign specs and streaming progress
    back, worker processes leasing shards and returning aggregate +
    telemetry snapshots, and assessment queries.  The campaign fold is
    the in-process engine's, relocated: shard aggregates merge in slot
    order, telemetry snapshots in plan order, and journal lines flush
    strictly in cell order through the same fsync-on-append
    {!Nakamoto_campaign.Journal} writer — so the journal a daemon-run
    campaign produces is byte-identical to the one [Campaign.run] writes
    in process, for any number of workers.

    Leases carry a deadline: a shard whose worker disconnects or fails
    to answer within [lease_timeout] goes back to the head of the
    pending queue and is granted to the next worker that asks.  A result
    arriving for an expired (reassigned) lease is ignored — shard
    results are deterministic, so whichever copy lands first is the
    result, and the duplicate carries no new information. *)

val serve :
  socket:string ->
  ?max_campaigns:int ->
  ?lease_timeout:float ->
  ?telemetry:string ->
  ?telemetry_clock:(unit -> float) ->
  ?log:(string -> unit) ->
  unit ->
  int
(** [serve ~socket ()] binds [socket] (unlinking any stale file first)
    and runs the event loop; returns the number of campaigns served.

    With [max_campaigns] (>= 1) the daemon exits cleanly — connections
    closed, socket unlinked — after that many campaigns complete; without
    it the loop runs until the process is killed.  [lease_timeout]
    (default 30 s) bounds how long a granted shard may stay unanswered
    before reassignment.  [telemetry] names a directory that receives
    [telemetry.prom] / [telemetry.jsonl] at each campaign completion:
    the daemon's own instruments (leases granted/expired, frames in/out,
    the [serve_fold_seconds] span around every plan-order merge) merged
    with the workers' shard snapshots in plan order.  [log] receives
    one-line operational messages (default: [stderr] prefixed with
    ["serve: "]).
    @raise Invalid_argument on [max_campaigns < 1]. *)
