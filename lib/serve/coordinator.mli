(** The campaign daemon: a single-threaded [Unix.select] event loop over
    a Unix-domain socket, a TCP listener, or both.

    One coordinator serves three kinds of peers over the same wire
    protocol: clients submitting campaign specs and streaming progress
    back, worker processes leasing shards (singly or in batches) and
    returning aggregate + telemetry snapshots, and assessment queries.
    The campaign fold is the in-process engine's, relocated: shard
    aggregates merge in slot order, telemetry snapshots in plan order,
    and journal lines flush strictly in cell order through the same
    fsync-on-append {!Nakamoto_campaign.Journal} writer — so the journal
    a daemon-run campaign produces is byte-identical to the one
    [Campaign.run] writes in process, for any transport, worker count,
    or failure schedule.

    {b Fleet hardening.}  Every accepted connection is non-blocking with
    a bounded per-connection output queue, drained opportunistically at
    enqueue time and again whenever [select] reports the socket
    writable.  A peer that stops reading therefore never wedges the
    event loop; once its queue exceeds [max_queue] bytes it is dropped
    (and its leases requeued) instead of buffered without bound.  At
    [max_conns] connections new dials are shed at accept time with a
    best-effort typed [Error] frame.  Lease holders that go quiet are
    probed with [Ping] frames every [heartbeat_interval]; an unanswered
    probe after [heartbeat_timeout] drops the connection and requeues its
    leases — long before the full [lease_timeout] — so a wedged worker
    costs a probe interval, not a lease interval.

    Leases carry a deadline: a shard whose worker disconnects or fails
    to answer within [lease_timeout] goes back to the head of the
    pending queue and is granted to the next worker that asks.  A result
    that arrives for an expired lease whose shard is still {e pending}
    is accepted (shards are pure functions of the spec, so the late copy
    is the result, and the recompute is spared); a result for a shard
    already completed or re-leased is a true duplicate and is
    discarded. *)

val serve :
  ?socket:string ->
  ?tcp:string * int ->
  ?max_campaigns:int ->
  ?max_conns:int ->
  ?max_queue:int ->
  ?lease_timeout:float ->
  ?heartbeat_interval:float ->
  ?heartbeat_timeout:float ->
  ?telemetry:string ->
  ?telemetry_clock:(unit -> float) ->
  ?surface:Nakamoto_surface.Table.t ->
  ?log:(string -> unit) ->
  ?on_tcp_port:(int -> unit) ->
  unit ->
  int
(** [serve ?socket ?tcp ()] binds the given endpoints — a Unix socket
    path (unlinking any stale file first), a TCP [host, port] pair, or
    both; at least one is required — and runs the event loop; returns
    the number of campaigns served.

    [surface] arms a precomputed certified assessment surface: assess
    queries landing in a conclusive cell are answered from the table
    ([v_cached] replies), everything else falls back to the exact
    solver; both paths count into the daemon's telemetry registry
    ([surface_hits_total] / [surface_fallbacks_total]) when [telemetry]
    is set.

    With [max_campaigns] (>= 1) the daemon exits cleanly — queued output
    flushed (bounded, 5 s), connections closed, socket unlinked — after
    that many campaigns complete; without it the loop runs until the
    process is killed.  [max_conns] (default 240, safely under
    [FD_SETSIZE]) caps simultaneous connections; [max_queue] (default
    16 MiB, >= 64 KiB) caps each connection's unread output.
    [lease_timeout] (default 30 s) bounds how long a granted shard may
    stay unanswered before reassignment; [heartbeat_interval] (default
    [lease_timeout / 6]) and [heartbeat_timeout] (default
    [lease_timeout / 2]) govern the liveness probe of lease holders —
    the timeout must exceed the slowest shard compute, since a worker
    deep in a shard cannot answer until it surfaces.  Binding [tcp] with
    port 0 lets the kernel pick; [on_tcp_port] receives the bound port
    before the loop starts.  [telemetry] names a directory that receives
    [telemetry.prom] / [telemetry.jsonl] at each campaign completion:
    the daemon's own instruments (leases granted/expired, frames in/out,
    connections shed, heartbeat drops, queue-overflow drops, late
    results accepted, stale results dropped, the [serve_fold_seconds]
    span around every slot-order merge) merged with the workers' shard
    snapshots in plan order.  [log] receives one-line operational
    messages (default: [stderr] prefixed with ["serve: "]).
    @raise Invalid_argument when neither [socket] nor [tcp] is given, on
    [max_campaigns < 1], [max_conns < 1], [max_queue < 65536], or
    non-positive heartbeat settings. *)
