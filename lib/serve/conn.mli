(** Client-side connection establishment for the serve protocol.

    Both the worker and the submitting client start the same way: dial
    the coordinator — a Unix-domain socket or a TCP endpoint, the wire
    protocol is transport-agnostic — with a bounded retry loop (so a
    process launched moments before the daemon still connects) and run
    the version handshake.  SIGPIPE is switched to ignore exactly once
    per process — every peer of a socket protocol must survive the
    other end dying mid-write. *)

type addr =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val addr_to_string : addr -> string

val ignore_sigpipe : unit -> unit
(** Idempotent: the first call installs [Signal_ignore] for SIGPIPE,
    later calls are free.  [connect] forces it; servers call it
    directly. *)

val connect : addr:addr -> timeout:float -> Unix.file_descr
(** Dial [addr], retrying on [ENOENT]/[ECONNREFUSED] (and the TCP
    equivalents) every 50 ms until [timeout] seconds have passed.  TCP
    connections get [TCP_NODELAY].
    @raise Unix.Unix_error when the deadline expires.
    @raise Failure when a TCP host does not resolve. *)

val handshake :
  ?timeout:float ->
  role:Nakamoto_wire.Message.role ->
  Nakamoto_wire.Frame.Channel.t ->
  (unit, string) result
(** Send [Hello] at {!Nakamoto_wire.Frame.protocol_version} and await
    [Hello_ack], accepting any acked version in
    [[min_protocol_version, protocol_version]].  [timeout] (default
    10 s) bounds the recv.  [Error] carries the server's typed refusal
    (version mismatch) or a transport failure. *)

val establish :
  addr:addr ->
  timeout:float ->
  role:Nakamoto_wire.Message.role ->
  (Nakamoto_wire.Frame.Channel.t, string) result
(** [connect] then [handshake] under a single deadline: the handshake
    recv gets whatever the connect retries left of [timeout] (floored
    at one second).  On [Error] the descriptor is already closed. *)
