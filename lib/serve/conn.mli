(** Client-side connection establishment for the serve protocol.

    Both the worker and the submitting client start the same way: dial
    the coordinator's Unix-domain socket (with a bounded retry loop, so
    a process launched moments before the daemon still connects) and
    run the version handshake.  SIGPIPE is switched to ignore here —
    every peer of a socket protocol must survive the other end dying
    mid-write. *)

val connect : socket:string -> timeout:float -> Unix.file_descr
(** Dial [socket], retrying on [ENOENT]/[ECONNREFUSED] every 50 ms
    until [timeout] seconds have passed.
    @raise Unix.Unix_error when the deadline expires. *)

val handshake :
  role:Nakamoto_wire.Message.role ->
  Nakamoto_wire.Frame.Channel.t ->
  (unit, string) result
(** Send [Hello] at {!Nakamoto_wire.Frame.protocol_version} and await
    [Hello_ack].  [Error] carries the server's typed refusal (version
    mismatch) or a transport failure. *)
