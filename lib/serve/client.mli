(** The submitting side of the serve protocol.

    [submit] drives one campaign end to end: connect (Unix socket or
    TCP), handshake, send the spec, relay streamed [Progress] frames to
    a callback, and return the rendered summary table from the terminal
    [Done] frame.  The heavy lifting — simulation, journaling,
    telemetry — happens in the daemon and its workers; this process
    only watches. *)

val submit :
  addr:Conn.addr ->
  ?connect_timeout:float ->
  ?journal:string ->
  ?resume:bool ->
  ?on_progress:(Nakamoto_wire.Message.progress -> unit) ->
  Nakamoto_campaign.Spec.t ->
  (string * string option, string) result
(** [submit ~addr spec] returns [(rendered_table, journal_path)] on
    completion.  [journal] names a {e daemon-side} path for the
    fsync-on-append journal; with [resume] the daemon folds that journal
    first and recomputes only the missing cells.  [Error] carries the
    server's typed refusal (busy, invalid spec, fingerprint mismatch) or
    a transport failure. *)

val assess :
  addr:Conn.addr ->
  ?connect_timeout:float ->
  nu:float ->
  c:float ->
  n:float ->
  delta:float ->
  unit ->
  (Nakamoto_wire.Message.assess_reply, string) result
(** One [Query_assess] round trip: the daemon computes
    {!Nakamoto_core.Assessment.assess} and replies with the structured
    verdict plus its human rendering. *)
