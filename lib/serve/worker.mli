(** A socket worker: lease shards from a coordinator, compute, return.

    The compute step is {!Nakamoto_campaign.Campaign.run_shard} — the
    exact unit the in-process pool runs — so a shard computed here is
    bit-identical to one computed by [Campaign.run].  The worker is
    deliberately fragile: any exception (including an armed
    {!Nakamoto_campaign.Faultplan.Raising_worker}) escapes and kills the
    process mid-lease, which is precisely the failure the coordinator's
    heartbeat / lease-expiry / EOF reassignment exists to absorb.  Retry
    policy lives server-side, not here. *)

val run :
  addr:Conn.addr ->
  ?connect_timeout:float ->
  ?lease_batch:int ->
  ?fault:Nakamoto_campaign.Faultplan.t ->
  ?telemetry_clock:(unit -> float) ->
  ?log:(string -> unit) ->
  unit ->
  int
(** [run ~addr ()] connects — Unix socket or TCP — (retrying until
    [connect_timeout], default 10 s, a budget the handshake shares),
    performs the hello handshake, then loops: [Lease_request] →
    compute → [Cell_result], sleeping through [No_work] backoffs and
    answering coordinator [Ping]s with [Pong]s wherever it happens to
    be reading.  [lease_batch] (default 1) asks for up to that many
    leases per request, amortizing round trips at high shard counts;
    the granted shards are computed and returned in grant order.
    Returns the number of shards computed when the coordinator closes
    the connection (daemon shutdown) — the worker's natural exit.  Each
    shard records into a private telemetry registry
    ([campaign_shard_seconds{domain=<pid>}] plus the executor's [sim_*]
    instruments) whose entries ride back on the result frame.
    @raise Invalid_argument on [lease_batch < 1].
    @raise Failure on a handshake refusal or a server [Error] frame.
    @raise Nakamoto_campaign.Faultplan.Injected_crash / [Failure] when
    an armed fault fires mid-shard. *)
