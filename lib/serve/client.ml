module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message

let with_conn ~addr ~connect_timeout ~role f =
  match Conn.establish ~addr ~timeout:connect_timeout ~role with
  | Error e -> Error ("handshake failed: " ^ e)
  | Ok ch ->
    Fun.protect
      ~finally:(fun () ->
        try Unix.close (Frame.Channel.fd ch) with Unix.Unix_error _ -> ())
      (fun () -> f ch)

let submit ~addr ?(connect_timeout = 10.) ?journal ?(resume = false)
    ?(on_progress = fun _ -> ()) spec =
  with_conn ~addr ~connect_timeout ~role:Msg.Client (fun ch ->
      Msg.send ch
        (Msg.Submit_campaign
           { Msg.sub_spec = spec; sub_journal = journal; sub_resume = resume });
      let rec wait () =
        match Msg.recv ch with
        | `Msg (Msg.Progress p) ->
          on_progress p;
          wait ()
        | `Msg (Msg.Ping { nonce }) ->
          Msg.send ch (Msg.Pong { nonce });
          wait ()
        | `Msg (Msg.Done { table; journal }) -> Ok (table, journal)
        | `Msg (Msg.Error e) -> Error e
        | `Msg _ -> Error "unexpected message from the coordinator"
        | `Eof -> Error "coordinator closed the connection mid-campaign"
        | `Timeout -> wait ()
        | `Bad m -> Error ("protocol error: " ^ m)
      in
      wait ())

let assess ~addr ?(connect_timeout = 10.) ~nu ~c ~n ~delta () =
  with_conn ~addr ~connect_timeout ~role:Msg.Client (fun ch ->
      Msg.send ch
        (Msg.Query_assess { Msg.q_nu = nu; q_c = c; q_n = n; q_delta = delta });
      let rec wait () =
        match Msg.recv ~timeout:30. ch with
        | `Msg (Msg.Assess_reply a) -> Ok a
        | `Msg (Msg.Ping { nonce }) ->
          Msg.send ch (Msg.Pong { nonce });
          wait ()
        | `Msg (Msg.Error e) -> Error e
        | `Msg _ -> Error "unexpected message from the coordinator"
        | `Eof -> Error "coordinator closed the connection"
        | `Timeout -> Error "assessment query timed out"
        | `Bad m -> Error ("protocol error: " ^ m)
      in
      wait ())
