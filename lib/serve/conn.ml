module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message

let connect ~socket ~timeout =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EINTR), _, _)
      when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      Unix.sleepf 0.05;
      go ()
    | exception e ->
      Unix.close fd;
      raise e
  in
  go ()

let handshake ~role ch =
  Msg.send ch (Msg.Hello { version = Frame.protocol_version; role });
  match Msg.recv ~timeout:10. ch with
  | `Msg (Msg.Hello_ack _) -> Ok ()
  | `Msg (Msg.Error e) -> Error e
  | `Msg _ -> Error "unexpected reply to hello"
  | `Eof -> Error "server closed the connection during handshake"
  | `Timeout -> Error "handshake timed out"
  | `Bad m -> Error m
