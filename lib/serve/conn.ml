module Frame = Nakamoto_wire.Frame
module Msg = Nakamoto_wire.Message

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* Every peer of a socket protocol must survive the other end dying
   mid-write, but the disposition is process-global state: install it
   exactly once instead of re-issuing the syscall on every dial. *)
let sigpipe_ignored =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let ignore_sigpipe () = Lazy.force sigpipe_ignored

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match (Unix.gethostbyname host).Unix.h_addr_list with
        | [||] -> failwith (Printf.sprintf "no address found for host %s" host)
        | addrs -> addrs.(0)
        | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %s" host))
    in
    Unix.ADDR_INET (ip, port)

let socket_domain = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let connect ~addr ~timeout =
  ignore_sigpipe ();
  let sockaddr = sockaddr_of addr in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let fd = Unix.socket (socket_domain addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () ->
      (match addr with
      | Tcp _ -> (
        (* Lease grants and pings are latency-bound small frames. *)
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ())
      | Unix_path _ -> ());
      fd
    | exception
        Unix.Unix_error
          ( ( Unix.ENOENT | Unix.ECONNREFUSED | Unix.EAGAIN | Unix.EINTR
            | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH ),
            _, _ )
      when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      Unix.sleepf 0.05;
      go ()
    | exception e ->
      Unix.close fd;
      raise e
  in
  go ()

let handshake ?(timeout = 10.) ~role ch =
  Msg.send ch (Msg.Hello { version = Frame.protocol_version; role });
  match Msg.recv ~timeout ch with
  | `Msg (Msg.Hello_ack { version })
    when version >= Frame.min_protocol_version
         && version <= Frame.protocol_version ->
    Ok ()
  | `Msg (Msg.Hello_ack { version }) ->
    Result.Error
      (Printf.sprintf
         "server speaks protocol %d, this peer accepts [%d, %d]" version
         Frame.min_protocol_version Frame.protocol_version)
  | `Msg (Msg.Error e) -> Result.Error e
  | `Msg _ -> Result.Error "unexpected reply to hello"
  | `Eof -> Result.Error "server closed the connection during handshake"
  | `Timeout -> Result.Error "handshake timed out"
  | `Bad m -> Result.Error m

let establish ~addr ~timeout ~role =
  (* One budget for the whole dial: connect retries eat into the time
     the handshake recv has left, with a one-second floor so a connect
     that lands at the wire gets a typed refusal instead of a spurious
     timeout. *)
  let deadline = Unix.gettimeofday () +. timeout in
  let fd = connect ~addr ~timeout in
  let ch = Frame.Channel.of_fd fd in
  let remaining = Float.max 1. (deadline -. Unix.gettimeofday ()) in
  match handshake ~timeout:remaining ~role ch with
  | Ok () -> Ok ch
  | Result.Error e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Result.Error e
