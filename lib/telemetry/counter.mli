(** Monotonic event counter.

    The cheapest instrument: one mutable [int], incremented on the hot
    path, snapshotted when a view is exported.  Snapshots form a
    commutative monoid under {!merge} ([+] with identity [0]), which is
    what lets per-domain and per-shard counters be combined in any
    grouping without changing the total. *)

type t

val create : unit -> t

val incr : t -> unit

val add : t -> int -> unit
(** @raise Invalid_argument on a negative increment — counters are
    monotonic by contract, so rates derived from merged snapshots are
    meaningful. *)

val value : t -> int

type snapshot = int
(** Immutable; the instrument keeps counting after {!snapshot}. *)

val snapshot : t -> snapshot

val empty : snapshot
(** The merge identity, [0]. *)

val merge : snapshot -> snapshot -> snapshot
(** Associative and commutative; [merge empty s = s]. *)
