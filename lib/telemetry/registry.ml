type instrument =
  | I_counter of Counter.t
  | I_histogram of Histogram.t
  | I_span of Span.t

type key = { name : string; labels : (string * string) list }

type t = {
  r_clock : unit -> float;
  tbl : (key, instrument) Hashtbl.t;
}

let create ?(clock = Unix.gettimeofday) () =
  { r_clock = clock; tbl = Hashtbl.create 32 }

let clock t = t.r_clock

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let make_key name labels =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Telemetry: invalid metric name %S" name);
  List.iter
    (fun (l, _) ->
      if not (valid_name l) then
        invalid_arg (Printf.sprintf "Telemetry: invalid label name %S" l))
    labels;
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as tl) -> if a = b then Some a else dup tl
    | _ -> None
  in
  (match dup labels with
  | Some l -> invalid_arg (Printf.sprintf "Telemetry: duplicate label %S" l)
  | None -> ());
  { name; labels }

let mismatch key =
  invalid_arg
    (Printf.sprintf
       "Telemetry: instrument %s already registered with another type"
       key.name)

let counter t ?(labels = []) name =
  let key = make_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some (I_counter c) -> c
  | Some _ -> mismatch key
  | None ->
    let c = Counter.create () in
    Hashtbl.add t.tbl key (I_counter c);
    c

let histogram_with t key mk same =
  match Hashtbl.find_opt t.tbl key with
  | Some (I_histogram h) -> if same h then h else mismatch key
  | Some _ -> mismatch key
  | None ->
    let h = mk () in
    Hashtbl.add t.tbl key (I_histogram h);
    h

let fixed_histogram t ?(labels = []) ~bounds name =
  let key = make_key name labels in
  histogram_with t key
    (fun () -> Histogram.fixed ~bounds)
    (fun h -> Histogram.kind h = Histogram.Fixed bounds)

let log2_histogram t ?(labels = []) name =
  let key = make_key name labels in
  histogram_with t key
    (fun () -> Histogram.log2 ())
    (fun h -> Histogram.kind h = Histogram.Log2)

let span t ?(labels = []) name =
  let key = make_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some (I_span s) -> s
  | Some _ -> mismatch key
  | None ->
    let s = Span.create ~clock:t.r_clock () in
    Hashtbl.add t.tbl key (I_span s);
    s

module Snapshot = struct
  type nonrec key = key = { name : string; labels : (string * string) list }

  type value =
    | Counter of Counter.snapshot
    | Histogram of Histogram.snapshot
    | Span of Span.snapshot

  type t = (key * value) list
  (* Invariant: sorted by key, keys unique. *)

  let compare_key (a : key) (b : key) = compare (a.name, a.labels) (b.name, b.labels)

  let empty = []

  let merge_value key a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (Counter.merge x y)
    | Histogram x, Histogram y -> Histogram (Histogram.merge x y)
    | Span x, Span y -> Span (Span.merge x y)
    | _ ->
      invalid_arg
        (Printf.sprintf "Telemetry.Snapshot.merge: %s has mismatched types"
           key.name)

  let rec merge a b =
    match (a, b) with
    | [], s | s, [] -> s
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = compare_key ka kb in
      if c < 0 then (ka, va) :: merge ta b
      else if c > 0 then (kb, vb) :: merge a tb
      else (ka, merge_value ka va vb) :: merge ta tb

  let entries t = t

  let of_entries es =
    let es =
      List.map
        (fun ((k : key), v) ->
          (* Re-derive the key so names are validated and labels land in
             canonical sort order even if the wire peer shuffled them. *)
          (make_key k.name k.labels, v))
        es
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare_key a b) es in
    let rec check = function
      | (a, _) :: ((b, _) :: _ as tl) ->
        if compare_key (a : key) b = 0 then
          invalid_arg
            (Printf.sprintf "Telemetry.Snapshot.of_entries: duplicate key %s"
               a.name)
        else check tl
      | _ -> ()
    in
    check sorted;
    sorted

  let find ?(labels = []) t name =
    let key = make_key name labels in
    List.assoc_opt key t

  let find_all t name = List.filter (fun ((k : key), _) -> k.name = name) t
end

let snapshot t =
  Hashtbl.fold
    (fun key instr acc ->
      let value =
        match instr with
        | I_counter c -> Snapshot.Counter (Counter.snapshot c)
        | I_histogram h -> Snapshot.Histogram (Histogram.snapshot h)
        | I_span s -> Snapshot.Span (Span.snapshot s)
      in
      (key, value) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> Snapshot.compare_key a b)
