type t = { hist : Histogram.t; clock : unit -> float }

let create ~clock () = { hist = Histogram.log2 (); clock }
let record t seconds = Histogram.observe t.hist seconds
let start t = t.clock ()
let stop t started = record t (t.clock () -. started)

let time t f =
  let started = start t in
  Fun.protect ~finally:(fun () -> stop t started) f

type snapshot = Histogram.snapshot

let snapshot t = Histogram.snapshot t.hist
let empty = Histogram.empty
let merge = Histogram.merge
