(** Timed spans: a {!Histogram.Log2} of durations plus the clock that
    measures them.

    The clock is injected at creation (the registry passes its own), so
    tests and the golden smoke run can substitute a deterministic clock
    and keep exported durations byte-stable.  A span aggregate is just a
    duration histogram, so span snapshots inherit the histogram's
    commutative-monoid merge. *)

type t

val create : clock:(unit -> float) -> unit -> t

val record : t -> float -> unit
(** [record t seconds] adds one already-measured duration.
    @raise Invalid_argument on NaN. *)

val start : t -> float
(** Reads the clock; pass the result to {!stop}.  The token is a plain
    float, so an open span costs no allocation beyond the box. *)

val stop : t -> float -> unit
(** [stop t started] records [clock () - started]. *)

val time : t -> (unit -> 'a) -> 'a
(** [time t f] records how long [f ()] took, even when it raises. *)

type snapshot = Histogram.snapshot

val snapshot : t -> snapshot
val empty : snapshot
val merge : snapshot -> snapshot -> snapshot
