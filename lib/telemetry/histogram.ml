type kind = Fixed of float array | Log2

(* Log2 layout: bucket 0 catches v < 2^-32 (zero and negatives
   included); bucket i in 1..64 holds [2^(i-33), 2^(i-32)); bucket 65
   catches v >= 2^32. *)
let log2_buckets = 66
let log2_min = ldexp 1. (-32)
let log2_max = ldexp 1. 32

type t = {
  h_kind : kind;
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let validate_kind = function
  | Log2 -> ()
  | Fixed bounds ->
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Histogram.create: empty bounds";
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then
          invalid_arg "Histogram.create: non-finite bound";
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Histogram.create: bounds must be strictly increasing")
      bounds

let buckets_of_kind = function
  | Log2 -> log2_buckets
  | Fixed bounds -> Array.length bounds + 1

let create k =
  validate_kind k;
  {
    h_kind = k;
    counts = Array.make (buckets_of_kind k) 0;
    count = 0;
    sum = 0.;
    min = infinity;
    max = neg_infinity;
  }

let fixed ~bounds = create (Fixed (Array.copy bounds))
let log2 () = create Log2
let kind t = t.h_kind

let bucket_of kind v =
  match kind with
  | Log2 ->
    if v < log2_min then 0
    else if v >= log2_max then log2_buckets - 1
    else begin
      (* frexp v = (m, e) with 0.5 <= m < 1, so v lives in
         [2^(e-1), 2^e) and its bucket index is e + 32. *)
      let _, e = Float.frexp v in
      e + 32
    end
  | Fixed bounds ->
    let n = Array.length bounds in
    (* Binary search for the first bound >= v (cumulative-le
       semantics); v above every bound goes to the overflow bucket. *)
    if v > bounds.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if v <= bounds.(mid) then hi := mid else lo := mid + 1
      done;
      !lo
    end

let observe t v =
  if Float.is_nan v then invalid_arg "Histogram.observe: NaN";
  let i = bucket_of t.h_kind v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

type snapshot = {
  s_kind : kind option;
  s_counts : int array;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
}

let snapshot t =
  {
    s_kind = Some t.h_kind;
    s_counts = Array.copy t.counts;
    s_count = t.count;
    s_sum = t.sum;
    s_min = t.min;
    s_max = t.max;
  }

let empty =
  {
    s_kind = None;
    s_counts = [||];
    s_count = 0;
    s_sum = 0.;
    s_min = infinity;
    s_max = neg_infinity;
  }

let kind_equal a b =
  match (a, b) with
  | Log2, Log2 -> true
  | Fixed x, Fixed y -> x = y
  | _ -> false

let merge a b =
  match (a.s_kind, b.s_kind) with
  | None, _ -> b
  | _, None -> a
  | Some ka, Some kb ->
    if not (kind_equal ka kb) then
      invalid_arg "Histogram.merge: incompatible bucket layouts";
    {
      s_kind = a.s_kind;
      s_counts =
        Array.init (Array.length a.s_counts) (fun i ->
            a.s_counts.(i) + b.s_counts.(i));
      s_count = a.s_count + b.s_count;
      s_sum = a.s_sum +. b.s_sum;
      s_min = Float.min a.s_min b.s_min;
      s_max = Float.max a.s_max b.s_max;
    }

let upper_bound kind i =
  match kind with
  | Log2 ->
    if i = 0 then log2_min
    else if i >= log2_buckets - 1 then infinity
    else ldexp 1. (i - 32)
  | Fixed bounds -> if i >= Array.length bounds then infinity else bounds.(i)

let quantile s q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Histogram.quantile: q outside [0, 1]";
  if s.s_count = 0 then nan
  else begin
    match s.s_kind with
    | None -> nan
    | Some kind ->
      let target =
        Stdlib.max 1 (int_of_float (ceil (q *. float_of_int s.s_count)))
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < target && !i < Array.length s.s_counts do
        seen := !seen + s.s_counts.(!i);
        if !seen < target then incr i
      done;
      Float.min s.s_max (Float.max s.s_min (upper_bound kind !i))
  end
