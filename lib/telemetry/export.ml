module S = Registry.Snapshot

(* %.17g round-trips every finite double (the journal's convention). *)
let float_str f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.17g" f

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (l, v) -> Printf.sprintf "%s=\"%s\"" l (escape_label_value v))
           labels)
    ^ "}"

(* A histogram/span sample: cumulative buckets (empty ones elided — the
   cumulative counts at the surviving [le] edges carry the same
   information), then sum and count. *)
let prom_histogram buf name labels (h : Histogram.snapshot) =
  let labelled extra =
    let all = labels @ extra in
    render_labels all
  in
  (match h.Histogram.s_kind with
  | None -> ()
  | Some kind ->
    let cumulative = ref 0 in
    Array.iteri
      (fun i c ->
        cumulative := !cumulative + c;
        if c > 0 && i < Array.length h.Histogram.s_counts - 1 then begin
          let le = float_str (Histogram.upper_bound kind i) in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (labelled [ ("le", le) ])
               !cumulative)
        end)
      h.Histogram.s_counts);
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" name
       (labelled [ ("le", "+Inf") ])
       h.Histogram.s_count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
       (float_str h.Histogram.s_sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
       h.Histogram.s_count)

let prometheus snap =
  let buf = Buffer.create 4096 in
  let last_typed = ref "" in
  List.iter
    (fun ((key : S.key), value) ->
      let ty =
        match value with
        | S.Counter _ -> "counter"
        | S.Histogram _ | S.Span _ -> "histogram"
      in
      if !last_typed <> key.name then begin
        last_typed := key.name;
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" key.name ty)
      end;
      match value with
      | S.Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" key.name (render_labels key.labels) c)
      | S.Histogram h | S.Span h -> prom_histogram buf key.name key.labels h)
    (S.entries snap);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSONL event stream                                                  *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (l, v) -> Printf.sprintf "%s:%s" (json_string l) (json_string v))
         labels)
  ^ "}"

let json_histogram_fields (h : Histogram.snapshot) =
  let buckets =
    let parts = ref [] in
    Array.iteri
      (fun i c -> if c > 0 then parts := Printf.sprintf "[%d,%d]" i c :: !parts)
      h.Histogram.s_counts;
    "[" ^ String.concat "," (List.rev !parts) ^ "]"
  in
  let kind_fields =
    match h.Histogram.s_kind with
    | None | Some Histogram.Log2 -> Printf.sprintf "\"kind\":\"log2\""
    | Some (Histogram.Fixed bounds) ->
      Printf.sprintf "\"kind\":\"fixed\",\"bounds\":[%s]"
        (String.concat ","
           (List.map float_str (Array.to_list bounds)))
  in
  let extremes =
    if h.Histogram.s_count = 0 then ""
    else
      Printf.sprintf ",\"min\":%s,\"max\":%s"
        (float_str h.Histogram.s_min)
        (float_str h.Histogram.s_max)
  in
  Printf.sprintf "%s,\"count\":%d,\"sum\":%s%s,\"buckets\":%s" kind_fields
    h.Histogram.s_count
    (float_str h.Histogram.s_sum)
    extremes buckets

let jsonl ~emitted_at snap =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"telemetry\":\"nakamoto\",\"version\":1,\"emitted_at\":%s}\n"
       (float_str emitted_at));
  List.iter
    (fun ((key : S.key), value) ->
      let head =
        Printf.sprintf "{\"name\":%s,\"labels\":%s," (json_string key.name)
          (json_labels key.labels)
      in
      let body =
        match value with
        | S.Counter c -> Printf.sprintf "\"type\":\"counter\",\"value\":%d" c
        | S.Histogram h ->
          Printf.sprintf "\"type\":\"histogram\",%s" (json_histogram_fields h)
        | S.Span h -> Printf.sprintf "\"type\":\"span\",%s" (json_histogram_fields h)
      in
      Buffer.add_string buf head;
      Buffer.add_string buf body;
      Buffer.add_string buf "}\n")
    (S.entries snap);
  Buffer.contents buf
