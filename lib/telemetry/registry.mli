(** The telemetry handle: a named collection of instruments and the
    immutable snapshots it exports.

    Instrumented code holds a [Registry.t option]: [None] is the
    zero-cost disabled handle (the hot path pays one pattern match and
    does nothing else — no clock reads, no allocation), [Some t] the
    live one.  Instruments are addressed by a Prometheus-compatible
    metric name plus an optional label set, and are find-or-create:
    asking twice for the same [(name, labels)] returns the same
    instrument, so independent code paths can feed one metric.

    {!snapshot} freezes every instrument into a {!Snapshot.t}, and
    snapshots form a commutative monoid under {!Snapshot.merge}: keys
    are unioned, same-key instruments merged by their own monoid.  This
    is what makes multi-domain aggregation sound — each worker records
    into its own registry with no synchronization, and the coordinator
    folds the snapshots in any grouping. *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] (default [Unix.gettimeofday]) is handed to every {!Span}
    created here; inject a deterministic clock for byte-stable
    exports. *)

val clock : t -> unit -> float

val counter : t -> ?labels:(string * string) list -> string -> Counter.t

val fixed_histogram :
  t -> ?labels:(string * string) list -> bounds:float array -> string ->
  Histogram.t
(** @raise Invalid_argument if the name exists with different bounds. *)

val log2_histogram :
  t -> ?labels:(string * string) list -> string -> Histogram.t

val span : t -> ?labels:(string * string) list -> string -> Span.t

(** All registration functions
    @raise Invalid_argument on a name or label that is not
    Prometheus-compatible ([[a-zA-Z_][a-zA-Z0-9_]*]), on duplicate label
    names, or when the [(name, labels)] key already holds an instrument
    of another type. *)

module Snapshot : sig
  type key = { name : string; labels : (string * string) list }
  (** [labels] sorted by label name — the canonical identity. *)

  type value =
    | Counter of Counter.snapshot
    | Histogram of Histogram.snapshot
    | Span of Span.snapshot

  type t

  val empty : t
  (** The merge identity. *)

  val merge : t -> t -> t
  (** Key union; same-key values merge through their instrument monoid.
      Associative and commutative (up to float-sum rounding, exactly as
      {!Histogram.merge}).
      @raise Invalid_argument when one key holds different instrument
      types (or incompatible histogram layouts) on the two sides. *)

  val entries : t -> (key * value) list
  (** Sorted by [(name, labels)] — deterministic export order. *)

  val of_entries : (key * value) list -> t
  (** Rebuild a snapshot from an {!entries} listing, in any order —
      the decode half of a wire codec.  [of_entries (entries s) = s].
      @raise Invalid_argument on a duplicate key or an invalid metric or
      label name. *)

  val find : ?labels:(string * string) list -> t -> string -> value option

  val find_all : t -> string -> (key * value) list
  (** Every label set recorded under [name], in key order. *)
end

val snapshot : t -> Snapshot.t
(** Freeze every instrument; the registry keeps recording afterwards. *)
