(** Snapshot renderers: Prometheus text exposition and a JSONL event
    stream.

    Both renderings are pure functions of the snapshot (entries are
    already in canonical key order), so equal snapshots produce equal
    bytes — the property the golden smoke check pins.  The only
    non-snapshot input is the JSONL meta line's [emitted_at] wall-clock
    stamp, which callers scrub when comparing. *)

val prometheus : Registry.Snapshot.t -> string
(** Prometheus text format: one [# TYPE] comment per metric name, then
    one sample line per counter, and cumulative [_bucket]/[_sum]/[_count]
    series per histogram and span (spans render as histograms of
    seconds).  Empty buckets are elided — cumulative [le] semantics make
    them redundant. *)

val jsonl : emitted_at:float -> Registry.Snapshot.t -> string
(** One JSON object per line: a meta line
    [{"telemetry":"nakamoto","version":1,"emitted_at":...}] followed by
    one event per instrument in key order.  Histogram buckets are sparse
    [[index, count]] pairs; [min]/[max] are emitted only when at least
    one observation was recorded (JSON has no infinities). *)
