(** Bucketed distributions: fixed upper-bound boundaries or log₂ buckets.

    Two bucket layouts cover every instrumented quantity:

    - [Fixed bounds] — Prometheus-style cumulative-[le] semantics: bucket
      [i] counts observations [v <= bounds.(i)] (with [v] above every
      bound falling into a final overflow bucket).  Right for quantities
      with a known, narrow range (reorg depths, burst sizes).
    - [Log2] — 66 buckets spanning [[2^-32, 2^32)] in powers of two, with
      an underflow bucket for values below [2^-32] (including zero and
      negatives) and an overflow bucket above.  Right for heavy-tailed
      quantities spanning many decades (latencies in seconds, interarrival
      times in rounds) at a fixed, mergeable shape.

    Snapshots of histograms with the same layout form a commutative
    monoid under {!merge} (pointwise count sums, [min]/[max] lattice,
    float sum).  The float [sum] field makes merge associative only up
    to rounding in general; it is exactly associative whenever all
    observed values are representable dyadics whose running sums stay
    exact (the regime the property suite pins), and every integer-valued
    field is exactly associative always. *)

type kind =
  | Fixed of float array
      (** strictly increasing, finite upper bounds; bucket [i] holds
          [v <= bounds.(i)], plus one overflow bucket *)
  | Log2

val log2_buckets : int
(** [66]: underflow, 64 power-of-two buckets, overflow. *)

type t

val create : kind -> t
(** @raise Invalid_argument on empty, non-finite or non-increasing
    [Fixed] bounds. *)

val fixed : bounds:float array -> t
val log2 : unit -> t
val kind : t -> kind

val observe : t -> float -> unit
(** @raise Invalid_argument on NaN.  Infinities saturate into the edge
    buckets. *)

type snapshot = {
  s_kind : kind option;
      (** [None] only for {!empty}, the universal merge identity *)
  s_counts : int array;
  s_count : int;
  s_sum : float;
  s_min : float;  (** [infinity] when no observation was recorded *)
  s_max : float;  (** [neg_infinity] when no observation was recorded *)
}

val snapshot : t -> snapshot
(** An immutable copy; the instrument keeps recording afterwards. *)

val empty : snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise.  [empty] is the identity on either side.
    @raise Invalid_argument when both sides carry a kind and the kinds
    (including [Fixed] bounds) differ. *)

val quantile : snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile ([0 <= q <= 1]) as the
    upper edge of the bucket holding the [ceil (q * count)]-th
    observation, clamped into [[s_min, s_max]]; [nan] on an empty
    snapshot.
    @raise Invalid_argument when [q] is outside [[0, 1]]. *)

val upper_bound : kind -> int -> float
(** [upper_bound kind i] is the inclusive upper edge of bucket [i]
    ([infinity] for the overflow bucket) — the [le] labels of the
    Prometheus exposition. *)
