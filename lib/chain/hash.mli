(** 64-bit hash values standing in for the paper's random oracle
    [H : {0,1}* -> {0,1}^kappa].

    The analysis uses [H] only as an idealized unpredictable function; for
    the simulator a 64-bit SplitMix64-mixed digest suffices (collisions at
    the simulated block counts, well under 2^20 blocks, have probability
    below 2^-24 and would only manifest as a spurious block-tree edge,
    which {!Block_tree.insert} rejects). *)

type t
(** An abstract 64-bit digest; equality and comparison are structural. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** [hash t] folds the digest to an [int] for [Hashtbl] use. *)

val zero : t
(** The all-zero digest, used as the genesis block's parent pointer. *)

val of_int64 : int64 -> t
val to_int64 : t -> int64

val combine : t -> int64 -> t
(** [combine t x] absorbs [x] into the digest through the SplitMix64
    permutation — the compression step of our random-oracle stand-in. *)

val of_fields : parent:t -> miner:int -> round:int -> nonce:int -> t
(** [of_fields ~parent ~miner ~round ~nonce] digests a block header. *)

val to_hex : t -> string
(** [to_hex t] is the 16-character lowercase hex rendering. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints the first 8 hex characters (enough to disambiguate in
    logs). *)
