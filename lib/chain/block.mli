(** Blocks: the abstract records of the protocol model.

    A block records who mined it, when, and on top of what.  The model's
    "message from the environment Z" reduces to an opaque payload string we
    never interpret; consistency is purely a statement about block
    ancestry. *)

type miner_class = Honest | Adversarial

type t = private {
  hash : Hash.t;
  parent : Hash.t;
  height : int;  (** genesis has height 0 *)
  miner : int;  (** miner index in [0, n); [-1] for genesis *)
  miner_class : miner_class;
  round : int;  (** round in which the block was mined; [0] for genesis *)
  payload : string;
}

val genesis : t
(** [genesis] is the unique common ancestor every execution starts from. *)

val is_genesis : t -> bool

val mine :
  parent:t -> miner:int -> miner_class:miner_class -> round:int ->
  nonce:int -> payload:string -> t
(** [mine ~parent ~miner ~miner_class ~round ~nonce ~payload] assembles the
    successor block of [parent]; its height is [parent.height + 1] and its
    hash commits to the header fields.
    @raise Invalid_argument if [round <= 0] or [miner < 0]. *)

val equal : t -> t -> bool
(** Hash equality — sufficient because hashes commit to all fields. *)

val pp : Format.formatter -> t -> unit
