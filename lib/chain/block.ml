type miner_class = Honest | Adversarial

type t = {
  hash : Hash.t;
  parent : Hash.t;
  height : int;
  miner : int;
  miner_class : miner_class;
  round : int;
  payload : string;
}

let genesis =
  {
    hash = Hash.of_fields ~parent:Hash.zero ~miner:(-1) ~round:0 ~nonce:0;
    parent = Hash.zero;
    height = 0;
    miner = -1;
    miner_class = Honest;
    round = 0;
    payload = "genesis";
  }

let is_genesis b = Hash.equal b.hash genesis.hash

let mine ~parent ~miner ~miner_class ~round ~nonce ~payload =
  if round <= 0 then invalid_arg "Block.mine: round must be positive";
  if miner < 0 then invalid_arg "Block.mine: miner must be nonnegative";
  {
    hash = Hash.of_fields ~parent:parent.hash ~miner ~round ~nonce;
    parent = parent.hash;
    height = parent.height + 1;
    miner;
    miner_class;
    round;
    payload;
  }

let equal a b = Hash.equal a.hash b.hash

let pp fmt b =
  Format.fprintf fmt "#%a(h=%d,r=%d,by=%d%s)" Hash.pp b.hash b.height b.round
    b.miner
    (match b.miner_class with Honest -> "" | Adversarial -> ",adv")
