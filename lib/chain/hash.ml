type t = int64

let equal = Int64.equal
let compare = Int64.compare
let hash t = Int64.to_int t land max_int
let zero = 0L
let of_int64 x = x
let to_int64 x = x

let combine t x =
  Nakamoto_prob.Rng.splitmix64 (Int64.add (Int64.mul t 0x100000001B3L) x)

let of_fields ~parent ~miner ~round ~nonce =
  let t = combine parent (Int64.of_int miner) in
  let t = combine t (Int64.of_int round) in
  combine t (Int64.of_int nonce)

let to_hex t = Printf.sprintf "%016Lx" t
let pp fmt t = Format.pp_print_string fmt (String.sub (to_hex t) 0 8)
