(** A store of blocks forming a tree rooted at genesis.

    Each miner's view of the world is a block tree plus the longest-chain
    selection rule.  The consistency property (Definition 1) is decided
    here: [prefix_within] implements "all but the last T blocks of chain_r
    is a prefix of chain_s". *)

type t

type tie_break =
  | Prefer_honest
      (** equal-height ties go to the (honest-first, earlier-round,
          smaller-hash) block — deterministic across all players, which
          denies a block-withholding attacker every race (the Eyal–Sirer
          [gamma = 0] regime) *)
  | First_seen
      (** equal-height ties go to the incumbent: a player never switches
          to a chain of the same length.  Races are then decided by
          arrival order, so a withholding attacker wins the share of the
          network its release reaches first ([gamma > 0]) *)

val create : ?tie_break:tie_break -> unit -> t
(** [create ()] is a tree containing only {!Block.genesis}; [tie_break]
    defaults to [Prefer_honest]. *)

val copy : t -> t
(** [copy t] is an independent snapshot (blocks are immutable and shared). *)

val block_count : t -> int
(** [block_count t] includes genesis. *)

val mem : t -> Hash.t -> bool
val find : t -> Hash.t -> Block.t option
val find_exn : t -> Hash.t -> Block.t
(** @raise Not_found when absent. *)

val insert : t -> Block.t -> [ `Inserted | `Duplicate | `Orphan ]
(** [insert t b] adds [b] if its parent is present.  [`Orphan] blocks are
    not stored — the caller (the network layer delivers blocks in order
    along each chain, and publishers always send full chains) retries or
    buffers.  Inserting an existing hash is a no-op [`Duplicate]. *)

val insert_chain : t -> Block.t list -> int
(** [insert_chain t blocks] inserts blocks in order of increasing height
    (sorting internally), returning the number newly inserted.  This is the
    "receive a chain from the network" operation: any block whose parent is
    unknown even after the whole batch is ignored. *)

val children : t -> Hash.t -> Block.t list
val tips : t -> Block.t list
(** [tips t] lists the leaves of the tree. *)

val best_tip : t -> Block.t
(** [best_tip t] is the head of the longest chain, ties resolved by the
    tree's {!tie_break} rule.  O(1): the tree caches the best tip across
    insertions. *)

val better : t -> Block.t -> Block.t -> bool
(** [better t candidate incumbent] is the strict chain-selection order
    used by {!best_tip}: strictly higher, or (under [Prefer_honest])
    equal height and preferred by the deterministic triple. *)

val chain_to_genesis : t -> Block.t -> Block.t list
(** [chain_to_genesis t b] is the path [genesis; ...; b] (genesis first).
    @raise Invalid_argument if [b] is not in the tree. *)

val ancestor_at_height : t -> Block.t -> height:int -> Block.t
(** [ancestor_at_height t b ~height] walks up from [b].
    @raise Invalid_argument if [height] is negative, exceeds [b.height], or
    [b] is not in the tree. *)

val is_prefix : t -> prefix:Block.t -> of_:Block.t -> bool
(** [is_prefix t ~prefix ~of_] holds iff the chain ending at [prefix] is an
    ancestor-or-equal of the chain ending at [of_]. *)

val prefix_within : t -> truncate:int -> chain_r:Block.t -> chain_s:Block.t -> bool
(** [prefix_within t ~truncate ~chain_r ~chain_s] is Definition 1's
    predicate: all but the last [truncate] blocks of the chain ending at
    [chain_r] form a prefix of the chain ending at [chain_s].  When
    [chain_r.height <= truncate] this is vacuously true.
    @raise Invalid_argument if [truncate < 0]. *)

val common_prefix_height : t -> Block.t -> Block.t -> int
(** [common_prefix_height t a b] is the height of the deepest common
    ancestor of [a] and [b]. *)

val divergence : t -> Block.t -> Block.t -> int
(** [divergence t a b] is [max (height a, height b) - common_prefix_height],
    the number of blocks that would have to be rolled back to reconcile the
    two chains — the "reorg depth" reported by the attack experiments. *)

val honest_fraction_on_chain : t -> Block.t -> float
(** [honest_fraction_on_chain t b] is the fraction of honest-mined blocks
    among the non-genesis blocks of the chain ending at [b] — the chain
    quality statistic.  Returns [1.] for a genesis-only chain. *)

val iter_blocks : t -> (Block.t -> unit) -> unit
(** [iter_blocks t f] visits every stored block in unspecified order. *)
