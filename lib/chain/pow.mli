(** The proof-of-work oracle of Section III.

    The model gives every player access to a random function
    [H : {0,1}* -> {0,1}^kappa] with two entry points: [H(x)] (costly —
    one query per honest player per round, [q] sequential queries for the
    adversary) and the free verifier [H.ver(x, y)].  A "proof of work" for
    parent [h-1] and message [m] is an [eta] with
    [H(h-1, eta, m) <= D_p], the threshold set so a query succeeds with
    probability [p].

    This module realizes that oracle with the SplitMix64-mixed 64-bit
    digest: a query digests [(seed, parent, miner, round, query index)]
    and succeeds iff the digest, read as a uniform 64-bit integer, falls
    below [threshold p].  Success is thus an independent Bernoulli(p) per
    distinct query — exactly the law the analysis assumes — while
    remaining deterministic (replayable) and verifiable by anyone holding
    the oracle seed. *)

type t
(** An oracle instance (the shared random function). *)

type proof = private {
  parent : Hash.t;
  miner : int;
  round : int;
  query_index : int;  (** which of the miner's queries this round *)
  digest : Hash.t;  (** the winning H-output *)
}

val create : seed:int64 -> p:float -> t
(** [create ~seed ~p] fixes the random function and the hardness.
    @raise Invalid_argument unless [0. < p && p < 1.]. *)

val hardness : t -> float

val threshold : t -> int64
(** The difficulty target [D_p] as an unsigned 64-bit bound; a query
    succeeds iff its digest (unsigned) is strictly below it.
    [threshold] / 2^64 differs from [p] by less than 2^-53. *)

val query : t -> parent:Hash.t -> miner:int -> round:int -> query_index:int ->
  proof option
(** [query t ~parent ~miner ~round ~query_index] is one H-query: [Some
    proof] iff the digest beats the target.  Distinct [(parent, miner,
    round, query_index)] tuples are independent Bernoulli(p) events;
    repeating a query returns the same answer (it is a function, not a
    sampler).
    @raise Invalid_argument on negative [round] or [query_index], or
    [miner < -1] ([-1] is the adversary's mining identity). *)

val verify : t -> proof -> bool
(** [verify t proof] is [H.ver]: recompute the digest and check it beats
    the target.  Free (the model charges only for [H]). *)

val successes : t -> parent:Hash.t -> miner:int -> round:int ->
  queries:int -> int
(** [successes t ~parent ~miner ~round ~queries] is
    [List.length (success_count t ...)] without building the proofs: the
    allocation-free counting loop for callers (the executor's adversary
    phase) that only need how many of the [queries] sequential H-queries
    won.  @raise Invalid_argument like {!query}. *)

val success_count : t -> parent:Hash.t -> miner:int -> round:int ->
  queries:int -> proof list
(** [success_count t ~parent ~miner ~round ~queries] runs [queries]
    sequential queries (indices [0 .. queries-1]) and returns the winning
    proofs — the adversary's per-round interface.  Its length is
    [binomial(queries, p)]-distributed across rounds. *)
