module Table = Hashtbl.Make (struct
  type t = Hash.t

  let equal = Hash.equal
  let hash = Hash.hash
end)

type tie_break = Prefer_honest | First_seen

type t = {
  blocks : Block.t Table.t;
  children : Hash.t list Table.t;  (** parent hash -> child hashes *)
  tie_break : tie_break;
  mutable best : Block.t;  (** cached longest-chain head *)
}

(* Deterministic preference among equal-height candidates: honest blocks
   first, then earlier round, then smaller hash.  Every honest player
   holding the same block set therefore selects the same best chain. *)
let tip_preference (a : Block.t) (b : Block.t) =
  let class_rank = function Block.Honest -> 0 | Block.Adversarial -> 1 in
  let c = compare (class_rank a.miner_class) (class_rank b.miner_class) in
  if c <> 0 then c
  else
    let c = compare a.round b.round in
    if c <> 0 then c else Hash.compare a.hash b.hash

(* Since blocks are never removed, the best tip can only be displaced by a
   newly inserted block it prefers; and because a child always has greater
   height than its parent, the argmax over all blocks is a leaf. *)
let better t (candidate : Block.t) (incumbent : Block.t) =
  candidate.height > incumbent.height
  ||
  match t.tie_break with
  | First_seen -> false
  | Prefer_honest ->
    candidate.height = incumbent.height && tip_preference candidate incumbent < 0

let create ?(tie_break = Prefer_honest) () =
  let t =
    {
      blocks = Table.create 1024;
      children = Table.create 1024;
      tie_break;
      best = Block.genesis;
    }
  in
  Table.replace t.blocks Block.genesis.hash Block.genesis;
  t

let copy t =
  {
    blocks = Table.copy t.blocks;
    children = Table.copy t.children;
    tie_break = t.tie_break;
    best = t.best;
  }

let block_count t = Table.length t.blocks
let mem t h = Table.mem t.blocks h
let find t h = Table.find_opt t.blocks h
let find_exn t h = Table.find t.blocks h

let insert t (b : Block.t) =
  if Table.mem t.blocks b.hash then `Duplicate
  else if not (Table.mem t.blocks b.parent) then `Orphan
  else begin
    Table.replace t.blocks b.hash b;
    let siblings = Option.value ~default:[] (Table.find_opt t.children b.parent) in
    Table.replace t.children b.parent (b.hash :: siblings);
    if better t b t.best then t.best <- b;
    `Inserted
  end

let insert_chain t blocks =
  let sorted =
    List.sort (fun (a : Block.t) (b : Block.t) -> compare a.height b.height) blocks
  in
  List.fold_left
    (fun acc b -> match insert t b with `Inserted -> acc + 1 | `Duplicate | `Orphan -> acc)
    0 sorted

let children t h =
  Option.value ~default:[] (Table.find_opt t.children h)
  |> List.filter_map (find t)

let tips t =
  let leaves = ref [] in
  Table.iter
    (fun h b -> if not (Table.mem t.children h) then leaves := b :: !leaves)
    t.blocks;
  !leaves

let best_tip t = t.best

let chain_to_genesis t (b : Block.t) =
  if not (mem t b.hash) then invalid_arg "Block_tree.chain_to_genesis: unknown block";
  let rec walk acc (b : Block.t) =
    if Block.is_genesis b then b :: acc
    else walk (b :: acc) (find_exn t b.parent)
  in
  walk [] b

let ancestor_at_height t (b : Block.t) ~height =
  if height < 0 || height > b.height then
    invalid_arg "Block_tree.ancestor_at_height: height outside [0, b.height]";
  if not (mem t b.hash) then
    invalid_arg "Block_tree.ancestor_at_height: unknown block";
  let rec walk (b : Block.t) =
    if b.height = height then b else walk (find_exn t b.parent)
  in
  walk b

let is_prefix t ~prefix ~of_ =
  let open Block in
  if prefix.height > of_.height then false
  else equal prefix (ancestor_at_height t of_ ~height:prefix.height)

let prefix_within t ~truncate ~chain_r ~chain_s =
  if truncate < 0 then invalid_arg "Block_tree.prefix_within: negative truncate";
  let open Block in
  let keep = chain_r.height - truncate in
  if keep <= 0 then true
  else if keep > chain_s.height then false
  else
    let truncated = ancestor_at_height t chain_r ~height:keep in
    is_prefix t ~prefix:truncated ~of_:chain_s

let common_prefix_height t a b =
  let open Block in
  let rec descend (a : Block.t) (b : Block.t) =
    if equal a b then a.height
    else if a.height > b.height then descend (find_exn t a.parent) b
    else if b.height > a.height then descend a (find_exn t b.parent)
    else descend (find_exn t a.parent) (find_exn t b.parent)
  in
  descend a b

let divergence t a b =
  let open Block in
  max a.height b.height - common_prefix_height t a b

let honest_fraction_on_chain t b =
  match chain_to_genesis t b with
  | [ _genesis ] -> 1.
  | chain ->
    let non_genesis = List.filter (fun b -> not (Block.is_genesis b)) chain in
    let honest =
      List.length
        (List.filter
           (fun (b : Block.t) -> b.miner_class = Block.Honest)
           non_genesis)
    in
    float_of_int honest /. float_of_int (List.length non_genesis)

let iter_blocks t f = Table.iter (fun _ b -> f b) t.blocks
