type t = { seed : int64; p : float; threshold : int64 }

type proof = {
  parent : Hash.t;
  miner : int;
  round : int;
  query_index : int;
  digest : Hash.t;
}

let create ~seed ~p =
  if not (p > 0. && p < 1.) then invalid_arg "Pow.create: p must lie in (0, 1)";
  (* Unsigned threshold floor (p * 2^64), stored as the signed bit
     pattern: for p >= 1/2 the unsigned value exceeds Int64.max, so it is
     materialized as (p - 1) * 2^64, the same bits read signed.
     (Int64.of_float saturates rather than wraps, so the shift must happen
     in float space.) *)
  let two64 = 18446744073709551616. in
  let threshold =
    if p < 0.5 then Int64.of_float (p *. two64)
    else Int64.of_float ((p -. 1.) *. two64)
  in
  { seed; p; threshold }

let hardness t = t.p
let threshold t = t.threshold

let unsigned_less a b =
  Int64.compare (Int64.add a Int64.min_int) (Int64.add b Int64.min_int) < 0

let digest_of t ~parent ~miner ~round ~query_index =
  let h = Hash.combine (Hash.of_int64 t.seed) (Hash.to_int64 parent) in
  let h = Hash.combine h (Int64.of_int miner) in
  let h = Hash.combine h (Int64.of_int round) in
  Hash.combine h (Int64.of_int query_index)

let query t ~parent ~miner ~round ~query_index =
  if round < 0 then invalid_arg "Pow.query: negative round";
  if query_index < 0 then invalid_arg "Pow.query: negative query index";
  if miner < -1 then invalid_arg "Pow.query: bad miner id";
  let digest = digest_of t ~parent ~miner ~round ~query_index in
  if unsigned_less (Hash.to_int64 digest) t.threshold then
    Some { parent; miner; round; query_index; digest }
  else None

let verify t proof =
  let recomputed =
    digest_of t ~parent:proof.parent ~miner:proof.miner ~round:proof.round
      ~query_index:proof.query_index
  in
  Hash.equal recomputed proof.digest
  && unsigned_less (Hash.to_int64 recomputed) t.threshold

let successes t ~parent ~miner ~round ~queries =
  if round < 0 then invalid_arg "Pow.successes: negative round";
  if miner < -1 then invalid_arg "Pow.successes: bad miner id";
  let count = ref 0 in
  for query_index = 0 to queries - 1 do
    let digest = digest_of t ~parent ~miner ~round ~query_index in
    if unsigned_less (Hash.to_int64 digest) t.threshold then incr count
  done;
  !count

let success_count t ~parent ~miner ~round ~queries =
  let rec go i acc =
    if i >= queries then List.rev acc
    else
      match query t ~parent ~miner ~round ~query_index:i with
      | Some proof -> go (i + 1) (proof :: acc)
      | None -> go (i + 1) acc
  in
  go 0 []
