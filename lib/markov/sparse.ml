module Linalg = Nakamoto_numerics.Linalg
module Registry = Nakamoto_telemetry.Registry
module Span = Nakamoto_telemetry.Span
module Counter = Nakamoto_telemetry.Counter

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (* length rows + 1 *)
  col_idx : int array;  (* length nnz, ascending within each row *)
  values : float array;  (* length nnz *)
}

let rows t = t.rows
let cols t = t.cols
let nnz t = Array.length t.values

(* Sort a row's entries by column, sum duplicates, drop exact zeros. *)
let coalesce ~cols row_index entries =
  List.iter
    (fun (j, v) ->
      if j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.create: row %d targets out-of-range column %d"
             row_index j);
      if not (Float.is_finite v) then
        invalid_arg
          (Printf.sprintf "Sparse.create: row %d has a non-finite value"
             row_index))
    entries;
  let sorted =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) entries
  in
  let rec merge = function
    | (j1, v1) :: (j2, v2) :: rest when j1 = j2 -> merge ((j1, v1 +. v2) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  List.filter (fun (_, v) -> v <> 0.) (merge sorted)

let of_fn ~rows ~cols f =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.create: negative dimension";
  let row_ptr = Array.make (rows + 1) 0 in
  (* Two passes keep peak memory at one row of cons cells beyond the CSR
     arrays themselves — the band-aware generators re-emit each row. *)
  for i = 0 to rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + List.length (coalesce ~cols i (f i))
  done;
  let n = row_ptr.(rows) in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0. in
  for i = 0 to rows - 1 do
    List.iteri
      (fun k (j, v) ->
        col_idx.(row_ptr.(i) + k) <- j;
        values.(row_ptr.(i) + k) <- v)
      (coalesce ~cols i (f i))
  done;
  { rows; cols; row_ptr; col_idx; values }

let create ~rows ~cols ~entries =
  if Array.length entries <> rows then
    invalid_arg "Sparse.create: entries array length differs from rows";
  of_fn ~rows ~cols (fun i -> entries.(i))

let of_dense m =
  let r, c = Linalg.dims m in
  of_fn ~rows:r ~cols:c (fun i ->
      let row = ref [] in
      for j = c - 1 downto 0 do
        if m.(i).(j) <> 0. then row := (j, m.(i).(j)) :: !row
      done;
      !row)

let to_dense t =
  let m = Linalg.make ~rows:t.rows ~cols:t.cols 0. in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      m.(i).(t.col_idx.(k)) <- m.(i).(t.col_idx.(k)) +. t.values.(k)
    done
  done;
  m

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Sparse.row: index out of range";
  let out = ref [] in
  for k = t.row_ptr.(i + 1) - 1 downto t.row_ptr.(i) do
    out := (t.col_idx.(k), t.values.(k)) :: !out
  done;
  !out

let transpose t =
  let counts = Array.make t.cols 0 in
  Array.iter (fun j -> counts.(j) <- counts.(j) + 1) t.col_idx;
  let row_ptr = Array.make (t.cols + 1) 0 in
  for j = 0 to t.cols - 1 do
    row_ptr.(j + 1) <- row_ptr.(j) + counts.(j)
  done;
  let pos = Array.sub row_ptr 0 t.cols in
  let n = Array.length t.values in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0. in
  (* Scanning rows in order makes each transposed row's columns (the
     original row indices) ascending — a valid CSR without re-sorting. *)
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      col_idx.(pos.(j)) <- i;
      values.(pos.(j)) <- t.values.(k);
      pos.(j) <- pos.(j) + 1
    done
  done;
  { rows = t.cols; cols = t.rows; row_ptr; col_idx; values }

(* The gather kernel over a contiguous row range: each output entry is a
   left-to-right sum over one CSR row, so any partition of [0, rows) into
   ranges computes bit-identical results. *)
let gather_range t src dst lo hi =
  for i = lo to hi - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. src.(t.col_idx.(k)))
    done;
    dst.(i) <- !acc
  done

let mul_vec t x =
  if Array.length x <> t.cols then
    invalid_arg "Sparse.mul_vec: dimension mismatch";
  let dst = Array.make t.rows 0. in
  gather_range t x dst 0 t.rows;
  dst

let vec_mul x t =
  if Array.length x <> t.rows then
    invalid_arg "Sparse.vec_mul: dimension mismatch";
  let out = Array.make t.cols 0. in
  for i = 0 to t.rows - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        out.(t.col_idx.(k)) <- out.(t.col_idx.(k)) +. (xi *. t.values.(k))
      done
  done;
  out

module Pool = struct
  type job = { m : t; src : float array; dst : float array }

  type pool = {
    jobs : int;
    mu : Mutex.t;
    work : Condition.t;
    done_c : Condition.t;
    mutable generation : int;
    mutable remaining : int;
    mutable job : job option;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
    mutable alive : bool;
  }

  let range ~n ~jobs w = (n * w / jobs, n * (w + 1) / jobs)

  let worker p w =
    let last = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock p.mu;
      while (not p.stop) && p.generation = !last do
        Condition.wait p.work p.mu
      done;
      if p.stop then begin
        Mutex.unlock p.mu;
        running := false
      end
      else begin
        last := p.generation;
        let job = Option.get p.job in
        Mutex.unlock p.mu;
        let lo, hi = range ~n:job.m.rows ~jobs:p.jobs w in
        gather_range job.m job.src job.dst lo hi;
        Mutex.lock p.mu;
        p.remaining <- p.remaining - 1;
        if p.remaining = 0 then Condition.signal p.done_c;
        Mutex.unlock p.mu
      end
    done

  let create ~jobs =
    if jobs < 1 then invalid_arg "Sparse.Pool.create: jobs must be >= 1";
    let p =
      {
        jobs;
        mu = Mutex.create ();
        work = Condition.create ();
        done_c = Condition.create ();
        generation = 0;
        remaining = 0;
        job = None;
        stop = false;
        domains = [];
        alive = true;
      }
    in
    p.domains <-
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker p (i + 1)));
    p

  let jobs p = p.jobs

  let shutdown p =
    if p.alive then begin
      Mutex.lock p.mu;
      p.stop <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.mu;
      List.iter Domain.join p.domains;
      p.domains <- [];
      p.alive <- false
    end

  let with_pool ~jobs f =
    let p = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
end

let mul_vec_pool (p : Pool.pool) t x =
  if not p.Pool.alive then invalid_arg "Sparse.mul_vec_pool: pool is shut down";
  if Array.length x <> t.cols then
    invalid_arg "Sparse.mul_vec_pool: dimension mismatch";
  let dst = Array.make t.rows 0. in
  if p.Pool.jobs = 1 then gather_range t x dst 0 t.rows
  else begin
    Mutex.lock p.Pool.mu;
    p.Pool.job <- Some { Pool.m = t; src = x; dst };
    p.Pool.generation <- p.Pool.generation + 1;
    p.Pool.remaining <- p.Pool.jobs - 1;
    Condition.broadcast p.Pool.work;
    Mutex.unlock p.Pool.mu;
    (* The calling domain is worker 0. *)
    let lo, hi = Pool.range ~n:t.rows ~jobs:p.Pool.jobs 0 in
    gather_range t x dst lo hi;
    Mutex.lock p.Pool.mu;
    while p.Pool.remaining > 0 do
      Condition.wait p.Pool.done_c p.Pool.mu
    done;
    p.Pool.job <- None;
    Mutex.unlock p.Pool.mu
  end;
  dst

(* ------------------------------------------------------------------ *)
(* Stationary solvers                                                  *)
(* ------------------------------------------------------------------ *)

let solver_span telemetry which =
  Option.map
    (fun r ->
      Registry.span r ~labels:[ ("solver", which) ] "markov_stationary_seconds")
    telemetry

let check_square name t =
  if t.rows <> t.cols then invalid_arg (name ^ ": matrix must be square");
  if t.rows = 0 then invalid_arg (name ^ ": empty matrix")

(* Working storage for the elimination: one growable (column, value)
   row per state, looked up by linear scan.  The fill budget keeps rows
   near the bandwidth, where scanning a short int array beats hashing on
   every probe — swapping Hashtbls for these arrays is worth ~3x on the
   banded ladders the solver exists for. *)
type grow_row = {
  mutable gk : int array;
  mutable gv : float array;
  mutable glen : int;
}

let grow_find r j =
  let rec go i =
    if i >= r.glen then -1 else if r.gk.(i) = j then i else go (i + 1)
  in
  go 0

let grow_push r j v =
  if r.glen = Array.length r.gk then begin
    let cap = max 8 (2 * r.glen) in
    let gk = Array.make cap 0 and gv = Array.make cap 0. in
    Array.blit r.gk 0 gk 0 r.glen;
    Array.blit r.gv 0 gv 0 r.glen;
    r.gk <- gk;
    r.gv <- gv
  end;
  r.gk.(r.glen) <- j;
  r.gv.(r.glen) <- v;
  r.glen <- r.glen + 1

let grow_remove r idx =
  let last = r.glen - 1 in
  r.gk.(idx) <- r.gk.(last);
  r.gv.(idx) <- r.gv.(last);
  r.glen <- last

(* In-place insertion sort of parallel (key, value) arrays — rows are a
   handful of entries, far below where an O(n log n) sort pays off. *)
let sort_pairs keys vals len =
  for i = 1 to len - 1 do
    let k = keys.(i) and v = vals.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && keys.(!j) > k do
      keys.(!j + 1) <- keys.(!j);
      vals.(!j + 1) <- vals.(!j);
      decr j
    done;
    keys.(!j + 1) <- k;
    vals.(!j + 1) <- v
  done

type grow_ints = { mutable ik : int array; mutable ilen : int }

let ints_push r i =
  if r.ilen = Array.length r.ik then begin
    let cap = max 8 (2 * r.ilen) in
    let ik = Array.make cap 0 in
    Array.blit r.ik 0 ik 0 r.ilen;
    r.ik <- ik
  end;
  r.ik.(r.ilen) <- i;
  r.ilen <- r.ilen + 1

(* GTH state reduction.  Diagonal entries are never consulted — the
   censoring step conditions on leaving the eliminated state and the
   unfolding reads only strictly-lower column entries — so they are
   dropped at load time and never created by fill-in. *)
let stationary_censor ?fill_budget ?telemetry t =
  check_square "Sparse.stationary_censor" t;
  let n = t.rows in
  let fill_budget =
    match fill_budget with Some b -> b | None -> max 200_000 (64 * n)
  in
  let span = solver_span telemetry "censor" in
  let compute () =
    if n = 1 then Some [| 1. |]
    else begin
      let rowt = Array.init n (fun _ -> { gk = [||]; gv = [||]; glen = 0 }) in
      (* preds.(j) over-approximates { i | p_ij > 0 }: entries go stale
         when i is eliminated, and are filtered at extraction time. *)
      let preds = Array.init n (fun _ -> { ik = [||]; ilen = 0 }) in
      let live = ref 0 in
      for i = 0 to n - 1 do
        for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
          let j = t.col_idx.(k) in
          if i <> j && t.values.(k) > 0. then begin
            grow_push rowt.(i) j t.values.(k);
            ints_push preds.(j) i;
            incr live
          end
        done
      done;
      (* unfold.(k) holds the scaled column [(i, p_ik / S_k)], i < k —
         everything the forward pass needs. *)
      let unfold = Array.make n [] in
      let blown = ref (!live > fill_budget) in
      let k = ref (n - 1) in
      while (not !blown) && !k >= 1 do
        let kk = !k in
        let krow = rowt.(kk) in
        sort_pairs krow.gk krow.gv krow.glen;
        (* Columns >= kk were removed when those states were eliminated,
           and the diagonal is never stored, so the whole surviving row
           sums to S_k. *)
        let s = ref 0. in
        for x = 0 to krow.glen - 1 do
          s := !s +. krow.gv.(x)
        done;
        let s = !s in
        if not (s > 0.) then
          invalid_arg
            (Printf.sprintf
               "Sparse.stationary_censor: state %d has no flow to lower \
                states - the chain is reducible"
               kk);
        (* Predecessors i < kk, ascending; p_ik is guaranteed present in
           rowt.(i) because column kk is only ever removed right here. *)
        let pk = preds.(kk) in
        let pis = Array.make pk.ilen 0 and pvs = Array.make pk.ilen 0. in
        let m = ref 0 in
        for x = 0 to pk.ilen - 1 do
          let i = pk.ik.(x) in
          if i < kk then begin
            let idx = grow_find rowt.(i) kk in
            if idx >= 0 then begin
              pis.(!m) <- i;
              pvs.(!m) <- rowt.(i).gv.(idx);
              incr m
            end
          end
        done;
        let m = !m in
        sort_pairs pis pvs m;
        let scaled_col = ref [] in
        for x = m - 1 downto 0 do
          scaled_col := (pis.(x), pvs.(x) /. s) :: !scaled_col
        done;
        unfold.(kk) <- !scaled_col;
        for x = 0 to m - 1 do
          let i = pis.(x) in
          let scaled = pvs.(x) /. s in
          let ri = rowt.(i) in
          let idx = grow_find ri kk in
          if idx >= 0 then begin
            grow_remove ri idx;
            decr live
          end;
          for y = 0 to krow.glen - 1 do
            let j = krow.gk.(y) in
            if i <> j then begin
              let add = scaled *. krow.gv.(y) in
              let jdx = grow_find ri j in
              if jdx >= 0 then ri.gv.(jdx) <- ri.gv.(jdx) +. add
              else begin
                grow_push ri j add;
                ints_push preds.(j) i;
                incr live;
                if !live > fill_budget then blown := true
              end
            end
          done
        done;
        decr k
      done;
      if !blown then None
      else begin
        let pi = Array.make n 0. in
        pi.(0) <- 1.;
        for kk = 1 to n - 1 do
          pi.(kk) <-
            List.fold_left
              (fun acc (i, w) -> acc +. (pi.(i) *. w))
              0. unfold.(kk)
        done;
        Some (Linalg.normalize_l1 pi)
      end
    end
  in
  match span with Some s -> Span.time s compute | None -> compute ()

let aitken_window = 16

let stationary_power ?(tol = 1e-14) ?(max_iter = 1_000_000) ?pool ?telemetry t =
  check_square "Sparse.stationary_power" t;
  let n = t.rows in
  let span = solver_span telemetry "power" in
  let counter =
    Option.map (fun r -> Registry.counter r "markov_spmv_states_total") telemetry
  in
  let compute () =
    if n = 1 then [| 1. |]
    else begin
      let pt = transpose t in
      let mul =
        match pool with
        | Some pl -> fun d -> mul_vec_pool pl pt d
        | None -> fun d -> mul_vec pt d
      in
      let d = ref (Array.make n (1. /. float_of_int n)) in
      let steps = ref 0 in
      let converged = ref false in
      let last_r = ref infinity in
      let window_r = ref nan in
      let rho = ref nan in
      let projected = ref infinity in
      while (not !converged) && !steps < max_iter do
        let next = mul !d in
        (match counter with Some c -> Counter.add c n | None -> ());
        let r = Linalg.l1_diff next !d in
        d := next;
        incr steps;
        last_r := r;
        if r <= tol then converged := true
        else if !steps mod aitken_window = 0 then begin
          (* Aitken-style projection: the windowed geometric decay ratio
             rho bounds the remaining distance by the geometric tail
             r * rho / (1 - rho), so a clean slow decay stops as soon as
             the projection clears tol rather than when r itself does. *)
          (if Float.is_finite !window_r && !window_r > 0. then begin
             let ratio = (r /. !window_r) ** (1. /. float_of_int aitken_window) in
             rho := ratio;
             if ratio < 1. then begin
               projected := r *. ratio /. (1. -. ratio);
               if !projected <= tol then converged := true
             end
           end);
          window_r := r
        end
      done;
      if not !converged then
        failwith
          (Printf.sprintf
             "Sparse.stationary_power: did not converge within %d iterations \
              (tol %.3g, last L1 residual %.3g, projected error %.3g, current \
              gap estimate %.3g)"
             max_iter tol !last_r !projected
             (1. -. !rho));
      Linalg.normalize_l1 !d
    end
  in
  match span with Some s -> Span.time s compute | None -> compute ()
