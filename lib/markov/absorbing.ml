module Linalg = Nakamoto_numerics.Linalg

type t = {
  chain : Chain.t;
  is_absorbing : bool array;
  transient : int array;  (** ascending transient state ids *)
  transient_index : int array;  (** state id -> row in the transient system, or -1 *)
}

let create ~chain ~absorbing =
  let n = Chain.size chain in
  if absorbing = [] then invalid_arg "Absorbing.create: no absorbing states";
  let is_absorbing = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Absorbing.create: state out of range";
      if is_absorbing.(s) then invalid_arg "Absorbing.create: duplicate state";
      is_absorbing.(s) <- true)
    absorbing;
  let transient =
    Array.of_list
      (List.filter (fun s -> not is_absorbing.(s)) (List.init n Fun.id))
  in
  let transient_index = Array.make n (-1) in
  Array.iteri (fun row s -> transient_index.(s) <- row) transient;
  (* Certain absorption: every transient state must reach some absorbing
     state in the support graph. *)
  let reaches_absorbing = Array.make n false in
  (* Reverse reachability from absorbing states. *)
  let pred = Array.make n [] in
  for s = 0 to n - 1 do
    if not is_absorbing.(s) then
      List.iter
        (fun (j, p) -> if p > 0. then pred.(j) <- s :: pred.(j))
        (Chain.row chain s)
  done;
  let queue = Queue.create () in
  List.iter
    (fun s ->
      reaches_absorbing.(s) <- true;
      Queue.add s queue)
    absorbing;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun p ->
        if not reaches_absorbing.(p) then begin
          reaches_absorbing.(p) <- true;
          Queue.add p queue
        end)
      pred.(s)
  done;
  Array.iter
    (fun s ->
      if not reaches_absorbing.(s) then
        invalid_arg
          (Printf.sprintf
             "Absorbing.create: transient state %d cannot reach absorption" s))
    transient;
  { chain; is_absorbing; transient; transient_index }

let transient_states t = Array.to_list t.transient

(* Solve (I - Q) x = b over the transient states. *)
let solve_transient t b =
  let m = Array.length t.transient in
  let a = Linalg.make ~rows:m ~cols:m 0. in
  Array.iteri
    (fun row s ->
      a.(row).(row) <- 1.;
      List.iter
        (fun (j, p) ->
          if (not t.is_absorbing.(j)) && p > 0. then begin
            let col = t.transient_index.(j) in
            a.(row).(col) <- a.(row).(col) -. p
          end)
        (Chain.row t.chain s))
    t.transient;
  Linalg.solve a b

let check_state t s =
  if s < 0 || s >= Chain.size t.chain then
    invalid_arg "Absorbing: state out of range"

let absorption_probability t ~from ~into =
  check_state t from;
  check_state t into;
  if not t.is_absorbing.(into) then
    invalid_arg "Absorbing.absorption_probability: target is not absorbing";
  if t.is_absorbing.(from) then if from = into then 1. else 0.
  else begin
    (* b_i = one-step probability of hitting [into] from transient i. *)
    let b =
      Array.map
        (fun s ->
          List.fold_left
            (fun acc (j, p) -> if j = into then acc +. p else acc)
            0. (Chain.row t.chain s))
        t.transient
    in
    let x = solve_transient t b in
    x.(t.transient_index.(from))
  end

let expected_steps_to_absorption t ~from =
  check_state t from;
  if t.is_absorbing.(from) then 0.
  else begin
    let b = Array.make (Array.length t.transient) 1. in
    let x = solve_transient t b in
    x.(t.transient_index.(from))
  end

let absorption_distribution t ~from =
  check_state t from;
  let absorbing =
    List.filter
      (fun s -> t.is_absorbing.(s))
      (List.init (Chain.size t.chain) Fun.id)
  in
  List.map (fun into -> (into, absorption_probability t ~from ~into)) absorbing
