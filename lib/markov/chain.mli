(** Finite discrete-time Markov chains with sparse rows.

    States are integers [0 .. size-1], optionally labelled.  Rows store
    only nonzero transition probabilities, which keeps the paper's suffix
    chain [C_F] (a union of two long cycles: sparse, 2–3 entries per row)
    cheap even for thousands of states. *)

type t

val create :
  ?labels:(int -> string) -> size:int -> rows:(int * float) list array -> unit -> t
(** [create ~size ~rows ()] validates the chain: [Array.length rows = size],
    every target index in range, probabilities nonnegative, each row
    summing to [1.] within [1e-9].
    @raise Invalid_argument otherwise. *)

val size : t -> int
val label : t -> int -> string
(** [label t i] is the state label ([string_of_int] by default). *)

val row : t -> int -> (int * float) list
(** [row t i] lists the nonzero transitions out of state [i]. *)

val probability : t -> src:int -> dst:int -> float
(** [probability t ~src ~dst] is the one-step transition probability. *)

val is_irreducible : t -> bool
(** [is_irreducible t] holds iff the support graph is strongly connected. *)

val period : t -> int
(** [period t] is the period of state [0]'s communicating class. *)

val is_ergodic : t -> bool
(** [is_ergodic t] holds iff the chain is irreducible and aperiodic —
    exactly the properties the paper asserts for [C_F] and [C_F||P]. *)

val step_distribution : t -> float array -> float array
(** [step_distribution t d] is the one-step pushforward [d P].
    @raise Invalid_argument on size mismatch. *)

val stationary_power_iteration :
  ?tol:float -> ?max_iter:int -> t -> float array
(** [stationary_power_iteration t] iterates [d <- d P] from uniform until
    the L1 change is below [tol] (default [1e-14]).
    @raise Failure if it does not converge within [max_iter]
    (default 1_000_000) iterations; the message reports the iteration
    budget, [tol] and the last L1 residual, so the caller can tell a
    periodic chain (residual stuck high) from a tolerance set below
    what the spectral gap can deliver (residual small but above
    [tol]). *)

val stationary_linear_solve : t -> float array
(** [stationary_linear_solve t] solves [(P^T - I) pi = 0, sum pi = 1]
    directly (replacing one equation with the normalization), which is
    exact up to LU rounding and independent of mixing speed.
    @raise Failure on singular systems (reducible chains). *)

val to_sparse : t -> Sparse.t
(** [to_sparse t] is the transition matrix as a {!Sparse.t} CSR — the
    rows are already sparse, so this is a flat repack. *)

val sparse_crossover : int
(** State count above which {!stationary_auto} (and the call sites
    routed through it) switch from the dense LU solve to the sparse
    path.  Below or at this size the dense result is bit-pinned. *)

val stationary_sparse :
  ?tol:float ->
  ?max_iter:int ->
  ?jobs:int ->
  ?telemetry:Nakamoto_telemetry.Registry.t ->
  t ->
  float array
(** [stationary_sparse t] computes the stationary distribution through
    the sparse substrate: {!Sparse.stationary_censor} (GTH state
    reduction — exact up to rounding, O(nnz) on the paper's ladder
    chains) first, falling back to {!Sparse.stationary_power} when
    censoring exceeds its fill budget.  [jobs > 1] runs the fallback's
    mat-vecs on a domain pool (bit-identical at every [jobs]); [tol] and
    [max_iter] reach the fallback only.
    @raise Invalid_argument on a reducible chain (from the censor) and
    @raise Failure when the power fallback exhausts [max_iter]. *)

val stationary_auto :
  ?jobs:int -> ?telemetry:Nakamoto_telemetry.Registry.t -> t -> float array
(** [stationary_auto t] is {!stationary_linear_solve} when
    [size t <= sparse_crossover] (bit-identical to the historical dense
    results) and {!stationary_sparse} above it. *)

val total_variation : float array -> float array -> float
(** [total_variation a b] is [0.5 * sum_i |a_i - b_i|].
    @raise Invalid_argument on length mismatch. *)

val mixing_time : ?epsilon:float -> ?horizon:int -> t -> int option
(** [mixing_time t] is the smallest [s] such that from every deterministic
    start the distribution after [s] steps is within [epsilon] (default
    [1/8], the paper's choice) of stationary in total variation, or [None]
    if [horizon] (default [100_000]) steps do not suffice.  Exact (iterates
    all [size] start distributions), so intended for small chains. *)

val simulate :
  rng:Nakamoto_prob.Rng.t -> t -> start:int -> steps:int -> int array
(** [simulate ~rng t ~start ~steps] samples a trajectory of [steps] states
    beginning at [start] (the returned array has length [steps] and starts
    with the state after one transition).
    @raise Invalid_argument if [start] is out of range or [steps < 0]. *)

val occupancy :
  rng:Nakamoto_prob.Rng.t -> t -> start:int -> steps:int ->
  target:(int -> bool) -> int
(** [occupancy ~rng t ~start ~steps ~target] counts visits to states
    satisfying [target] along a fresh [steps]-step trajectory — the
    Monte-Carlo counterpart of [T * pi(target)]. *)

val visit_counts :
  rng:Nakamoto_prob.Rng.t -> t -> start:int -> steps:int -> int array
(** [visit_counts ~rng t ~start ~steps] samples a fresh [steps]-step
    trajectory from [start] and returns per-state visit counts (summing to
    [steps]) — the empirical occupancy a chi-square test compares against
    [steps * pi] (streaming: O(size) memory regardless of [steps]).
    @raise Invalid_argument if [start] is out of range or [steps < 0]. *)

val restrict_support : t -> (int -> int list)
(** [restrict_support t] is the successor function of the support graph,
    for reuse with {!Structure}. *)
