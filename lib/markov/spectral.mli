(** Spectral estimates for ergodic chains.

    The exact [epsilon]-mixing time of {!Chain.mixing_time} marches every
    point-mass start forward — O(size^2) per step.  For larger chains the
    standard route is the spectral gap: if [lambda] is the second-largest
    eigenvalue modulus (SLEM) of the transition matrix, then
    [tau(eps) <= log (1 / (eps * sqrt min_pi)) / (1 - lambda)], so a power
    iteration that estimates [lambda] yields a usable mixing-time upper
    bound in O(size * edges) time. *)

val slem : ?tol:float -> ?max_iter:int -> Chain.t -> float
(** [slem chain] estimates the second-largest eigenvalue modulus by power
    iteration on the space orthogonal to the stationary distribution
    (deflation): iterate [x -> x P] while projecting out the known
    principal pair, tracking the growth ratio.  Returns a value in
    [[0, 1]].
    @raise Invalid_argument if the chain is not ergodic (the principal
    eigenvalue would not be simple).
    Above {!Chain.sparse_crossover} states the per-step pushforward runs
    on the transposed CSR from {!Chain.to_sparse}; at or below it the
    dense path is kept, bit-pinned.
    @raise Failure if the iteration does not stabilize within [max_iter]
    steps (default [min 2_000_000 (max 100_000 (2_000_000_000 / size))]
    — a flat {e work} budget: each step costs O(size), so the step cap
    scales down with chain size and a near-tie between the top
    eigenvalues on a large chain fails in bounded time instead of
    burning the historical 2M-step ceiling)
    to tolerance [tol] (default 1e-8); the message reports the step
    count, [tol], the last estimate, the last residual and the current
    spectral-gap estimate [1 - estimate], enough to decide between
    loosening [tol], raising [max_iter] and recognising a near-tie.  The
    estimator is a cumulative geometric mean, so the returned value
    carries error of order [tol]; treat low-order digits accordingly. *)

val mixing_time_estimate : ?epsilon:float -> Chain.t -> float
(** [mixing_time_estimate chain] is the reversible-case spectral formula
    [log (1 / (epsilon * sqrt min_pi)) / (1 - slem)] with [epsilon]
    defaulting to [1/8] (the paper's choice).  For reversible chains this
    is a genuine upper bound on the mixing time; the paper's suffix
    chains are {e not} reversible, where it serves as an order-of-
    magnitude estimate only — {!Chain.mixing_time} is the ground truth
    when the chain is small enough to afford it (the test suite checks
    the two stay within a small factor on the chains we use).
    @raise Invalid_argument / Failure as {!slem}; also
    @raise Failure when [slem = 1.] within tolerance (no spectral gap
    detected). *)

val relaxation_time : Chain.t -> float
(** [1 / (1 - slem chain)]. *)
