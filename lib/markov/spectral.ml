(* Power iteration with deflation of the principal pair (pi, 1):
   row vectors evolve as x -> x P; the all-ones vector is the principal
   right eigenvector, so the zero-sum subspace { x : sum x = 0 } is
   invariant under the iteration and contains every non-principal left
   eigenvector.  Because non-principal eigenvalues may be complex (the
   suffix chain is cycle-like), single-step growth ratios oscillate; the
   robust estimator is the geometric mean decay rate
   (||x P^m|| / ||x||)^(1/m), accumulated in blocks. *)

let project_zero_sum x =
  let n = Array.length x in
  let mean = Array.fold_left ( +. ) 0. x /. float_of_int n in
  Array.map (fun v -> v -. mean) x

let norm x = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. x)

let normalize x =
  let nn = norm x in
  if nn = 0. then x else Array.map (fun v -> v /. nn) x

let slem ?(tol = 1e-8) ?max_iter chain =
  if not (Chain.is_ergodic chain) then
    invalid_arg "Spectral.slem: chain must be ergodic";
  let n = Chain.size chain in
  (* A near-tie between the top eigenvalues stalls the estimator however
     long it runs, and each step costs O(states), so the default budget
     is a flat work budget, not a flat step count: small chains keep the
     historical 2M-step ceiling, large ones scale the cap down as
     2e9/states (floor 100k) so a stalled large-chain run fails in
     bounded time instead of burning 2M expensive steps. *)
  let max_iter =
    match max_iter with
    | Some m -> m
    | None -> min 2_000_000 (max 100_000 (2_000_000_000 / n))
  in
  if n = 1 then 0.
  else begin
    let step =
      if n <= Chain.sparse_crossover then Chain.step_distribution chain
      else begin
        let pt = Sparse.transpose (Chain.to_sparse chain) in
        Sparse.mul_vec pt
      end
    in
    let x =
      ref
        (normalize
           (project_zero_sum (Array.init n (fun i -> sin (float_of_int (i + 1))))))
    in
    let block = 64 in
    let log_growth = ref 0. in
    let steps = ref 0 in
    let estimate = ref nan in
    let residual = ref nan in
    let converged = ref false in
    while (not !converged) && !steps < max_iter do
      (* One block of iterations, accumulating the log of the growth. *)
      let block_log = ref 0. in
      let dead = ref false in
      for _ = 1 to block do
        if not !dead then begin
          let next = project_zero_sum (step !x) in
          let nn = norm next in
          if nn < 1e-300 then dead := true
          else begin
            block_log := !block_log +. log nn;
            x := Array.map (fun v -> v /. nn) next
          end
        end
      done;
      if !dead then begin
        (* The orthogonal component vanished: SLEM indistinguishable from 0. *)
        estimate := 0.;
        converged := true
      end
      else begin
        log_growth := !log_growth +. !block_log;
        steps := !steps + block;
        let current = exp (!log_growth /. float_of_int !steps) in
        residual := Float.abs (current -. !estimate);
        if Float.is_finite !estimate && !residual <= tol *. Float.max 1. current
        then converged := true;
        estimate := current
      end
    done;
    if not !converged then
      (* Report everything a caller needs to act: loosen tol, raise
         max_iter, or recognise a near-tie between the top eigenvalues
         from how small the last step still was. *)
      failwith
        (Printf.sprintf
           "Spectral.slem: power iteration did not stabilize after %d steps \
            (tol %.3g, last estimate %.12g, last residual %.3g, current gap \
            estimate %.3g)"
           !steps tol !estimate !residual
           (1. -. !estimate));
    Float.min 1. (Float.max 0. !estimate)
  end

let relaxation_time chain = 1. /. (1. -. slem chain)

let mixing_time_estimate ?(epsilon = 0.125) chain =
  let lambda = slem chain in
  if 1. -. lambda < 1e-12 then
    failwith "Spectral.mixing_time_estimate: no spectral gap detected";
  let pi = Chain.stationary_auto chain in
  let min_pi = Array.fold_left Float.min 1. pi in
  log (1. /. (epsilon *. sqrt min_pi)) /. (1. -. lambda)
