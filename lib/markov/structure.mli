(** Directed-graph structure queries on a chain's support graph.

    The paper calls its chains time-homogeneous, irreducible and ergodic;
    this module makes those claims checkable: irreducibility is "one
    strongly connected component", ergodicity additionally needs period 1.
    Graphs are given by out-adjacency lists. *)

val strongly_connected_components : succ:(int -> int list) -> n:int -> int list list
(** [strongly_connected_components ~succ ~n] lists the SCCs of the graph on
    vertices [0 .. n-1] (Tarjan's algorithm, iterative), in reverse
    topological order of the condensation.  Every vertex appears in exactly
    one component. *)

val is_strongly_connected : succ:(int -> int list) -> n:int -> bool
(** [is_strongly_connected ~succ ~n] holds iff the graph has one SCC
    (vacuously true for [n <= 1]). *)

val period : succ:(int -> int list) -> n:int -> start:int -> int
(** [period ~succ ~n ~start] is the gcd of all closed-walk lengths through
    vertices reachable from [start] — the period of [start]'s communicating
    class, computed from BFS level differences.  Returns [0] when no cycle
    is reachable from [start].
    @raise Invalid_argument if [start] is outside [0 .. n-1]. *)

val reachable : succ:(int -> int list) -> n:int -> start:int -> bool array
(** [reachable ~succ ~n ~start] flags vertices reachable from [start]
    (including [start] itself). *)
