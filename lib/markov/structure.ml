(* Iterative Tarjan SCC: an explicit work stack avoids stack overflow on the
   long path-shaped chains (Delta up to a few thousand states). *)
let strongly_connected_components ~succ ~n =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  (* Work items: (vertex, remaining successors). *)
  let visit root =
    let work = ref [ (root, succ root) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, remaining) :: rest -> (
        match remaining with
        | [] ->
          work := rest;
          (match rest with
          | (parent, _) :: _ ->
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            let rec pop acc =
              match !stack with
              | [] -> acc
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                if w = v then w :: acc else pop (w :: acc)
            in
            components := pop [] :: !components
          end
        | w :: others ->
          work := (v, others) :: rest;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            work := (w, succ w) :: !work
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  !components

let is_strongly_connected ~succ ~n =
  n <= 1 || List.length (strongly_connected_components ~succ ~n) = 1

let reachable ~succ ~n ~start =
  if start < 0 || start >= n then invalid_arg "Structure.reachable: bad start";
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      (succ v)
  done;
  seen

(* Period via BFS levels: for every edge u->w inside the reachable set, the
   quantity level(u) + 1 - level(w) is a multiple of the period; the gcd of
   all such quantities (over a spanning BFS) is exactly the period of the
   communicating class when the graph restricted to reachable vertices is
   strongly connected, and a divisor-sound estimate otherwise. *)
let period ~succ ~n ~start =
  if start < 0 || start >= n then invalid_arg "Structure.period: bad start";
  let level = Array.make n (-1) in
  let queue = Queue.create () in
  level.(start) <- 0;
  Queue.add start queue;
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let g = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if level.(w) = -1 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w queue
        end
        else begin
          (* Non-tree edge: level(v) + 1 - level(w) is a multiple of the
             period; tree edges contribute 0, which gcd ignores. *)
          let diff = abs (level.(v) + 1 - level.(w)) in
          if diff <> 0 then g := gcd !g diff
        end)
      (succ v)
  done;
  !g
