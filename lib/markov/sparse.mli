(** Compressed-sparse-row matrices and structure-aware stationary solvers.

    The paper's chains are sparse and nearly skip-free: the suffix chain
    [C_F] has 2Δ+1 states with exactly two transitions per row (climb the
    ladder or restart at the base), and the concatenated chain [C_F||P]
    has three.  Dense LU tops out near Δ ≈ 100; this module carries the
    same computations to Δ in the thousands by never materializing the
    dense matrix.

    Three layers:
    - the CSR container and its kernels ([mul_vec] / [vec_mul] /
      [transpose]), general rectangular matrices, empty rows allowed;
    - a {!Pool} of long-lived domains for row-partitioned parallel
      [mul_vec] — each output entry is computed by exactly one domain in
      the same left-to-right order, so results are bit-identical at every
      worker count;
    - stationary solvers for square stochastic matrices:
      {!stationary_censor} (GTH state reduction — censoring along the
      suffix ladder, subtraction-free and componentwise accurate) with a
      fill budget, and {!stationary_power} (sparse power iteration with
      Aitken-style residual projection) as the fallback. *)

type t
(** Immutable CSR: row pointers, column indices, values.  Within each
    row, columns are strictly increasing (duplicates coalesced at
    construction, explicit zeros dropped). *)

val create : rows:int -> cols:int -> entries:(int * float) list array -> t
(** [create ~rows ~cols ~entries] builds the CSR form of the matrix whose
    row [i] holds [entries.(i)] as [(column, value)] pairs, in any order;
    duplicate columns are summed, zero values dropped.
    @raise Invalid_argument if [Array.length entries <> rows], an index
    is outside [0, cols), or a value is not finite. *)

val of_fn : rows:int -> cols:int -> (int -> (int * float) list) -> t
(** [of_fn ~rows ~cols row] is {!create} with rows produced on demand —
    the band-aware construction path: generators emit transitions row by
    row and no intermediate row array outlives the build. *)

val of_dense : Nakamoto_numerics.Linalg.matrix -> t
(** Drops exact zeros.  @raise Invalid_argument on ragged input. *)

val to_dense : t -> Nakamoto_numerics.Linalg.matrix

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val row : t -> int -> (int * float) list
(** Column-sorted nonzeros of row [i].
    @raise Invalid_argument if [i] is out of range. *)

val transpose : t -> t
(** CSR of the transpose (equivalently, the CSC view) — the pull form a
    gather-based distribution step wants. *)

val mul_vec : t -> float array -> float array
(** [mul_vec a x] is the column vector [A x]: a per-row gather, no
    writes outside the output row — the parallelizable orientation.
    @raise Invalid_argument on dimension mismatch. *)

val vec_mul : float array -> t -> float array
(** [vec_mul x a] is the row vector [x A] (a scatter over rows; the
    distribution-pushforward orientation when [a] holds [P] itself).
    @raise Invalid_argument on dimension mismatch. *)

(** Long-lived worker domains for row-partitioned {!mul_vec}.

    [jobs] counts the calling domain plus [jobs - 1] spawned ones — the
    {!Nakamoto_campaign.Worker_pool} shape, but with static contiguous
    row ranges instead of a work queue: partitioning by output row makes
    every entry of the result the work of exactly one domain, summed in
    the same order as the sequential kernel, so [mul_vec_pool] is
    bit-identical to {!mul_vec} at every [jobs]. *)
module Pool : sig
  type pool

  val create : jobs:int -> pool
  (** Spawns [jobs - 1] domains that wait for work.
      @raise Invalid_argument if [jobs < 1]. *)

  val jobs : pool -> int

  val shutdown : pool -> unit
  (** Joins the domains.  Idempotent; the pool is unusable afterwards. *)

  val with_pool : jobs:int -> (pool -> 'a) -> 'a
  (** [with_pool ~jobs f] runs [f] and shuts the pool down, even on
      exceptions. *)
end

val mul_vec_pool : Pool.pool -> t -> float array -> float array
(** [mul_vec_pool pool a x] is [mul_vec a x] with rows split into
    [Pool.jobs pool] contiguous ranges.  Bit-identical to the sequential
    kernel.
    @raise Invalid_argument on dimension mismatch or a shut-down pool. *)

val stationary_censor :
  ?fill_budget:int ->
  ?telemetry:Nakamoto_telemetry.Registry.t ->
  t ->
  float array option
(** [stationary_censor p] computes the stationary distribution of the
    irreducible stochastic matrix [p] by GTH state reduction (censoring):
    states are eliminated from the highest index down, each elimination
    redistributing the censored state's flow onto its predecessors, and
    the distribution is recovered by the standard forward unfolding.  No
    subtractions anywhere, so every entry carries componentwise relative
    accuracy — including stationary masses far below [1e-300]'s
    neighborhood where iterative solvers see only absolute error.

    On ladder-structured chains (transitions climb one rung or restart at
    the base — both paper chains) elimination from the top produces O(1)
    fill per state and the whole solve is O(nnz).  On general chains fill
    can grow; when the live entry count would exceed [fill_budget]
    (default [max 200_000 (64 * rows)]) the solve stops and returns
    [None] — callers fall back to {!stationary_power}.
    @raise Invalid_argument if [p] is not square or a row of a state
    reachable in the elimination order sums to 0 outside itself (the
    chain is reducible). *)

val stationary_power :
  ?tol:float ->
  ?max_iter:int ->
  ?pool:Pool.pool ->
  ?telemetry:Nakamoto_telemetry.Registry.t ->
  t ->
  float array
(** [stationary_power p] iterates [d <- d P] from uniform using the
    transposed CSR (gather form; row-partitioned across [pool] when
    given, bit-identical at every worker count).  Convergence is judged
    by Aitken-style residual projection: the L1 step residual [r_t] and
    its windowed geometric decay ratio [rho] project the remaining
    distance as [r_t * rho / (1 - rho)], so a slowly-mixing chain stops
    as soon as the *projected* error is below [tol] (default [1e-14])
    instead of grinding the raw residual down.
    @raise Failure if [max_iter] (default [1_000_000]) iterations do not
    converge; the message reports steps, [tol], the last residual, the
    projected error and the current spectral-gap estimate [1 - rho].
    @raise Invalid_argument if [p] is not square. *)

(** {1 Telemetry}

    When a registry is passed, both solvers time themselves under the
    [markov_stationary_seconds] span (label [solver="censor"] /
    ["power"]) and the power iteration counts every state it touches into
    the [markov_spmv_states_total] counter — states-per-second is the
    counter over the span sum, the MARKOVSCALE bench's throughput
    metric. *)
