module Linalg = Nakamoto_numerics.Linalg

type t = {
  size : int;
  rows : (int * float) array array;
  labels : int -> string;
}

let validate_rows ~size rows =
  if Array.length rows <> size then
    invalid_arg "Chain.create: rows array length differs from size";
  Array.iteri
    (fun i row ->
      let total = ref 0. in
      List.iter
        (fun (j, p) ->
          if j < 0 || j >= size then
            invalid_arg
              (Printf.sprintf "Chain.create: row %d targets out-of-range state %d"
                 i j);
          if p < 0. || not (Float.is_finite p) then
            invalid_arg
              (Printf.sprintf "Chain.create: row %d has invalid probability" i);
          total := !total +. p)
        row;
      if Float.abs (!total -. 1.) > 1e-9 then
        invalid_arg
          (Printf.sprintf "Chain.create: row %d sums to %.17g, not 1" i !total))
    rows

let create ?(labels = string_of_int) ~size ~rows () =
  if size <= 0 then invalid_arg "Chain.create: size must be positive";
  validate_rows ~size rows;
  { size; rows = Array.map Array.of_list rows; labels }

let size t = t.size
let label t i = t.labels i
let row t i = Array.to_list t.rows.(i)

let probability t ~src ~dst =
  if src < 0 || src >= t.size then invalid_arg "Chain.probability: bad src";
  Array.fold_left
    (fun acc (j, p) -> if j = dst then acc +. p else acc)
    0. t.rows.(src)

let support_succ t i =
  Array.to_list t.rows.(i)
  |> List.filter_map (fun (j, p) -> if p > 0. then Some j else None)

let restrict_support t i = support_succ t i

let is_irreducible t =
  Structure.is_strongly_connected ~succ:(support_succ t) ~n:t.size

let period t = Structure.period ~succ:(support_succ t) ~n:t.size ~start:0
let is_ergodic t = is_irreducible t && period t = 1

let step_distribution t d =
  if Array.length d <> t.size then
    invalid_arg "Chain.step_distribution: size mismatch";
  let out = Array.make t.size 0. in
  for i = 0 to t.size - 1 do
    let di = d.(i) in
    if di <> 0. then
      Array.iter (fun (j, p) -> out.(j) <- out.(j) +. (di *. p)) t.rows.(i)
  done;
  out

let stationary_power_iteration ?(tol = 1e-14) ?(max_iter = 1_000_000) t =
  let d = ref (Array.make t.size (1. /. float_of_int t.size)) in
  let rec iterate k ~last_change =
    if k > max_iter then
      failwith
        (Printf.sprintf
           "Chain.stationary_power_iteration: did not converge within %d \
            iterations (tol %.3g, last L1 residual %.3g); the chain may be \
            periodic or the gap too small for this tol"
           max_iter tol last_change);
    let next = step_distribution t !d in
    let change =
      let acc = ref 0. in
      for i = 0 to t.size - 1 do
        acc := !acc +. Float.abs (next.(i) -. !d.(i))
      done;
      !acc
    in
    d := next;
    if change > tol then iterate (k + 1) ~last_change:change
  in
  iterate 0 ~last_change:infinity;
  Linalg.normalize_l1 !d

let to_sparse t =
  Sparse.of_fn ~rows:t.size ~cols:t.size (fun i -> Array.to_list t.rows.(i))

let sparse_crossover = 512

let stationary_sparse ?tol ?max_iter ?jobs ?telemetry t =
  let sp = to_sparse t in
  match Sparse.stationary_censor ?telemetry sp with
  | Some pi -> pi
  | None -> (
      match jobs with
      | Some j when j > 1 ->
          Sparse.Pool.with_pool ~jobs:j (fun pool ->
              Sparse.stationary_power ?tol ?max_iter ~pool ?telemetry sp)
      | _ -> Sparse.stationary_power ?tol ?max_iter ?telemetry sp)

let stationary_linear_solve t =
  (* Solve pi P = pi with sum(pi) = 1: build A = P^T - I, replace the last
     equation with the all-ones normalization row. *)
  let n = t.size in
  let a = Linalg.make ~rows:n ~cols:n 0. in
  for i = 0 to n - 1 do
    Array.iter (fun (j, p) -> a.(j).(i) <- a.(j).(i) +. p) t.rows.(i)
  done;
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) -. 1.
  done;
  let b = Array.make n 0. in
  for j = 0 to n - 1 do
    a.(n - 1).(j) <- 1.
  done;
  b.(n - 1) <- 1.;
  let pi = Linalg.solve a b in
  Linalg.normalize_l1 pi

let stationary_auto ?jobs ?telemetry t =
  if t.size <= sparse_crossover then stationary_linear_solve t
  else stationary_sparse ?jobs ?telemetry t

let total_variation a b =
  if Array.length a <> Array.length b then
    invalid_arg "Chain.total_variation: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  0.5 *. !acc

let mixing_time ?(epsilon = 0.125) ?(horizon = 100_000) t =
  let pi = stationary_linear_solve t in
  (* March all point-mass starts forward together; stop at the first step
     where the worst start is epsilon-close to stationary. *)
  let dists =
    Array.init t.size (fun i ->
        Array.init t.size (fun j -> if i = j then 1. else 0.))
  in
  let worst () =
    Array.fold_left (fun acc d -> Float.max acc (total_variation d pi)) 0. dists
  in
  let rec advance s =
    if worst () <= epsilon then Some s
    else if s >= horizon then None
    else begin
      Array.iteri (fun i d -> dists.(i) <- step_distribution t d) dists;
      advance (s + 1)
    end
  in
  advance 0

let sample_row rng row =
  let u = Nakamoto_prob.Rng.float rng in
  let n = Array.length row in
  let rec pick i acc =
    if i >= n - 1 then fst row.(n - 1)
    else
      let j, p = row.(i) in
      if u < acc +. p then j else pick (i + 1) (acc +. p)
  in
  pick 0 0.

let simulate ~rng t ~start ~steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.simulate: bad start";
  if steps < 0 then invalid_arg "Chain.simulate: negative steps";
  let out = Array.make (max steps 1) start in
  let current = ref start in
  for s = 0 to steps - 1 do
    current := sample_row rng t.rows.(!current);
    out.(s) <- !current
  done;
  if steps = 0 then [||] else out

let occupancy ~rng t ~start ~steps ~target =
  let trajectory = simulate ~rng t ~start ~steps in
  Array.fold_left (fun acc s -> if target s then acc + 1 else acc) 0 trajectory

let visit_counts ~rng t ~start ~steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.visit_counts: bad start";
  if steps < 0 then invalid_arg "Chain.visit_counts: negative steps";
  let counts = Array.make t.size 0 in
  let current = ref start in
  for _ = 1 to steps do
    current := sample_row rng t.rows.(!current);
    counts.(!current) <- counts.(!current) + 1
  done;
  counts
