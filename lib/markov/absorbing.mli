(** Absorbing Markov chains: absorption probabilities and expected times.

    The block-race analyses (how likely is a [k]-blocks-behind private
    chain to ever catch up?) are absorption problems: states are the
    adversary's lead, play stops at "overtaken" or "gave up".  Solved
    exactly with one LU factorization of [I - Q] where [Q] is the chain
    restricted to transient states (the fundamental-matrix method). *)

type t

val create : chain:Chain.t -> absorbing:int list -> t
(** [create ~chain ~absorbing] marks the given states absorbing (their
    outgoing transitions are ignored; they are treated as self-loops).
    @raise Invalid_argument if [absorbing] is empty, contains duplicates
    or out-of-range states, or if some transient state cannot reach any
    absorbing state (absorption would not be certain). *)

val transient_states : t -> int list
(** Transient (non-absorbing) states, ascending. *)

val absorption_probability : t -> from:int -> into:int -> float
(** [absorption_probability t ~from ~into] is the probability that the
    walk started at [from] is (eventually) absorbed at the absorbing
    state [into].  If [from] is itself absorbing this is 1 or 0.
    @raise Invalid_argument if [into] is not absorbing or either state is
    out of range. *)

val expected_steps_to_absorption : t -> from:int -> float
(** [expected_steps_to_absorption t ~from] is the expected number of
    steps before absorption starting from [from] ([0.] if [from] is
    absorbing). *)

val absorption_distribution : t -> from:int -> (int * float) list
(** [absorption_distribution t ~from] lists [(absorbing_state, probability)]
    pairs summing to 1. *)
