type t = {
  id : int;
  cell_index : int;
  trial_start : int;
  trial_stop : int;
  slot : int;
}

let trials t = t.trial_stop - t.trial_start

let per_cell ~trials_per_cell ~shard_size =
  if trials_per_cell < 1 then invalid_arg "Shard.per_cell: trials_per_cell < 1";
  if shard_size < 1 then invalid_arg "Shard.per_cell: shard_size < 1";
  (trials_per_cell + shard_size - 1) / shard_size

let plan ~cells ~trials_per_cell ~shard_size ~skip =
  if cells < 0 then invalid_arg "Shard.plan: negative cell count";
  let slots = per_cell ~trials_per_cell ~shard_size in
  let acc = ref [] in
  let id = ref 0 in
  for cell_index = 0 to cells - 1 do
    if not (skip cell_index) then
      for slot = 0 to slots - 1 do
        let trial_start = slot * shard_size in
        let trial_stop = min trials_per_cell (trial_start + shard_size) in
        acc := { id = !id; cell_index; trial_start; trial_stop; slot } :: !acc;
        incr id
      done
  done;
  Array.of_list (List.rev !acc)
