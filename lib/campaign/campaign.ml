module Sim = Nakamoto_sim
module Core = Nakamoto_core
module Table = Nakamoto_numerics.Table

type cell_result = {
  cell : Spec.cell;
  aggregate : Aggregate.t;
  from_journal : bool;
}

type outcome = {
  spec : Spec.t;
  cells : cell_result array;
  fresh_trials : int;
  resumed_cells : int;
  jobs : int;
  elapsed : float;
}

let run_shard spec cells (sh : Shard.t) =
  let cell = cells.(sh.Shard.cell_index) in
  let agg = Aggregate.create () in
  for trial = sh.Shard.trial_start to sh.Shard.trial_stop - 1 do
    let obs =
      match spec.Spec.mode with
      | Spec.Full_protocol ->
        let cfg = Spec.config_of_cell spec cell ~trial in
        Aggregate.of_execution (Sim.Execution.run cfg)
      | Spec.State_process ->
        let rng = Spec.trial_rng spec cell ~trial in
        Aggregate.of_state_run
          (Sim.State_process.run ~rng
             (Spec.state_config_of_cell cell)
             ~rounds:spec.Spec.rounds)
    in
    Aggregate.observe agg obs
  done;
  agg

let default_log msg = Printf.eprintf "campaign: %s\n%!" msg

let run ?jobs ?journal_path ?(resume = false) ?(retries = 2) ?fault
    ?(progress_interval = 0.) ?(progress_out = stderr) ?(log = default_log)
    spec =
  Spec.validate spec;
  let jobs =
    match jobs with
    | None -> Worker_pool.default_jobs ()
    | Some j ->
      if j < 1 then invalid_arg "Campaign.run: jobs must be >= 1";
      j
  in
  if retries < 0 then invalid_arg "Campaign.run: retries must be >= 0";
  let fault = Option.map Faultplan.arm fault in
  let started = Unix.gettimeofday () in
  let cells = Spec.cells spec in
  let ncells = Array.length cells in
  let completed : Aggregate.t option array = Array.make ncells None in
  let from_journal = Array.make ncells false in
  let written = Array.make ncells false in
  (* Journal setup: load on resume — repairing a torn tail and starting
     fresh over an unusable file, both logged — after a fingerprint
     check; start fresh otherwise.  The writer stays open (and fsyncs
     every append) until the run ends. *)
  let writer =
    match journal_path with
    | None -> None
    | Some path ->
      let fresh () =
        let w = Journal.create_writer ~path ~fresh:true in
        (try
           Faultplan.journal_append fault w
             (Journal.Header (Journal.header_of_spec spec))
         with e ->
           Journal.close_writer w;
           raise e);
        Some w
      in
      if not resume then fresh ()
      else begin
        match Journal.load ~path with
        | Journal.No_file -> fresh ()
        | Journal.Unusable reason ->
          log
            (Printf.sprintf
               "journal %s holds no usable state (%s); starting fresh" path
               reason);
          fresh ()
        | Journal.Loaded { l_header = header; entries; torn } ->
          if header.Journal.fingerprint <> Spec.fingerprint spec then
            invalid_arg
              "Campaign.run: journal fingerprint does not match the spec \
               (resume must reuse the exact grid, seed and trial counts)";
          (match torn with
          | None -> ()
          | Some t ->
            Journal.repair ~path t;
            log
              (Printf.sprintf
                 "journal %s: repaired torn tail (dropped %d partial bytes \
                  at offset %d); the interrupted cell will be recomputed"
                 path t.Journal.dropped_bytes t.Journal.valid_bytes));
          List.iter
            (fun ((cell : Spec.cell), snap) ->
              if cell.Spec.index < 0 || cell.Spec.index >= ncells then
                failwith "Campaign.run: journal cell index out of range";
              completed.(cell.Spec.index) <- Some (Aggregate.of_snapshot snap);
              from_journal.(cell.Spec.index) <- true;
              written.(cell.Spec.index) <- true)
            entries;
          log
            (Printf.sprintf "resuming %s: %d of %d cells recovered from %s"
               (Spec.describe spec)
               (List.length entries) ncells path);
          Some (Journal.create_writer ~path ~fresh:false)
      end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close_writer writer)
    (fun () ->
      let resumed_cells =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 from_journal
      in
      let resumed_trials = resumed_cells * spec.Spec.trials_per_cell in
      let plan =
        Shard.plan ~cells:ncells ~trials_per_cell:spec.Spec.trials_per_cell
          ~shard_size:spec.Spec.shard_size
          ~skip:(fun i -> completed.(i) <> None)
      in
      let fresh_trials =
        Array.fold_left (fun acc sh -> acc + Shard.trials sh) 0 plan
      in
      let progress =
        if progress_interval > 0. then
          Progress.create ~out:progress_out ~interval:progress_interval
            ~resumed_trials ~total_trials:(Spec.trial_count spec) ()
        else Progress.silent ()
      in
      let slots =
        Shard.per_cell ~trials_per_cell:spec.Spec.trials_per_cell
          ~shard_size:spec.Spec.shard_size
      in
      let shard_results = Array.init ncells (fun _ -> Array.make slots None) in
      let shards_done = Array.make ncells 0 in
      let trials_done = ref resumed_trials in
      (* Journal lines go out strictly in cell order: a cell that finishes
         early waits here until every lower-indexed cell has been flushed.
         This is what makes journals byte-identical across worker counts. *)
      let next_flush = ref 0 in
      let flush_prefix () =
        match writer with
        | None -> ()
        | Some w ->
          while !next_flush < ncells && completed.(!next_flush) <> None do
            let i = !next_flush in
            if not written.(i) then begin
              (match completed.(i) with
              | Some agg ->
                Faultplan.journal_append fault w
                  (Journal.Cell (cells.(i), Aggregate.snapshot agg))
              | None -> assert false);
              written.(i) <- true
            end;
            incr next_flush
          done
      in
      flush_prefix ();
      let on_result task_index agg =
        let sh = plan.(task_index) in
        let ci = sh.Shard.cell_index in
        shard_results.(ci).(sh.Shard.slot) <- Some agg;
        shards_done.(ci) <- shards_done.(ci) + 1;
        trials_done := !trials_done + Shard.trials sh;
        if shards_done.(ci) = slots then begin
          (* Merge in slot order — never completion order. *)
          let merged =
            Array.fold_left
              (fun acc slot ->
                match (acc, slot) with
                | None, Some a -> Some a
                | Some m, Some a -> Some (Aggregate.merge m a)
                | _, None -> assert false)
              None shard_results.(ci)
          in
          completed.(ci) <- merged;
          flush_prefix ()
        end;
        Progress.note progress ~trials_done:!trials_done
      in
      let task (sh : Shard.t) =
        Faultplan.wrap_task fault ~task:sh.Shard.id (fun () ->
            run_shard spec cells sh)
      in
      let on_retry ~task ~attempt e =
        log
          (Printf.sprintf
             "shard %d failed on attempt %d (%s); requeueing (%d %s left)"
             task attempt (Printexc.to_string e) (retries - attempt)
             (if retries - attempt = 1 then "retry" else "retries"))
      in
      ignore (Worker_pool.run ~jobs ~retries ~on_retry ~on_result task plan);
      Progress.finish progress ~trials_done:!trials_done;
      let results =
        Array.mapi
          (fun i cell ->
            match completed.(i) with
            | Some aggregate ->
              { cell; aggregate; from_journal = from_journal.(i) }
            | None -> assert false (* the pool drained every shard *))
          cells
      in
      {
        spec;
        cells = results;
        fresh_trials;
        resumed_cells;
        jobs;
        elapsed = Unix.gettimeofday () -. started;
      })

let region (cell : Spec.cell) =
  if cell.Spec.nu <= 0. then "SAFE"
  else begin
    let c = Spec.c_of_cell cell in
    if c > Core.Bounds.neat_c_min ~nu:cell.Spec.nu then "SAFE"
    else if cell.Spec.nu > Core.Bounds.pss_attack_nu ~c then "ATTACK"
    else "GAP"
  end

let totals outcome =
  Array.fold_left
    (fun acc r -> Aggregate.merge acc r.aggregate)
    (Aggregate.create ()) outcome.cells

let summary_table outcome =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "campaign: %d cells x %d trials x %d rounds (seed %Ld, %d fresh \
            trials, %d resumed cells, %.1fs at %d jobs)"
           (Array.length outcome.cells) outcome.spec.Spec.trials_per_cell
           outcome.spec.Spec.rounds outcome.spec.Spec.seed
           outcome.fresh_trials outcome.resumed_cells outcome.elapsed
           outcome.jobs)
      ~columns:
        [ "cell"; "p"; "n"; "Delta"; "nu"; "c"; "viol"; "rate"; "95% lo";
          "95% hi"; "max reorg"; "growth"; "quality"; "region"; "agrees" ]
  in
  Array.iter
    (fun { cell; aggregate = a; _ } ->
      let reg = region cell in
      let audited = Aggregate.audited_trials a > 0 in
      let lo, hi =
        match Aggregate.wilson_interval a with
        | Some (lo, hi) -> (lo, hi)
        | None -> (nan, nan)
      in
      let agrees =
        if not audited then "-"
        else
          match reg with
          | "SAFE" -> if Aggregate.violations a = 0 then "yes" else "NO"
          | "ATTACK" -> if Aggregate.violations a > 0 then "yes" else "weak"
          | _ -> "-"
      in
      let mean_or_nan s =
        if Nakamoto_prob.Stats.Summary.count s = 0 then nan
        else Nakamoto_prob.Stats.Summary.mean s
      in
      Table.add_row t
        [
          Table.Int cell.Spec.index; Table.Sci cell.Spec.p;
          Table.Int cell.Spec.n; Table.Int cell.Spec.delta;
          Table.Float cell.Spec.nu; Table.Float (Spec.c_of_cell cell);
          Table.Text
            (Printf.sprintf "%d/%d" (Aggregate.violations a)
               (Aggregate.audited_trials a));
          Table.Float (Aggregate.violation_rate a); Table.Float lo;
          Table.Float hi; Table.Int (Aggregate.max_reorg_depth a);
          Table.Float (mean_or_nan (Aggregate.growth_summary a));
          Table.Float (mean_or_nan (Aggregate.quality_summary a));
          Table.Text reg; Table.Text agrees;
        ])
    outcome.cells;
  t
