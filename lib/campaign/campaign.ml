module Sim = Nakamoto_sim
module Core = Nakamoto_core
module Table = Nakamoto_numerics.Table
module Tel = Nakamoto_telemetry

type cell_result = {
  cell : Spec.cell;
  aggregate : Aggregate.t;
  from_journal : bool;
}

type outcome = {
  spec : Spec.t;
  cells : cell_result array;
  fresh_trials : int;
  resumed_cells : int;
  jobs : int;
  elapsed : float;
  telemetry : Tel.Registry.Snapshot.t option;
}

let run_shard ?telemetry spec cells (sh : Shard.t) =
  let cell = cells.(sh.Shard.cell_index) in
  let agg = Aggregate.create () in
  for trial = sh.Shard.trial_start to sh.Shard.trial_stop - 1 do
    let obs =
      match spec.Spec.mode with
      | Spec.Full_protocol ->
        let cfg = Spec.config_of_cell spec cell ~trial in
        Aggregate.of_execution (Sim.Execution.run ?telemetry cfg)
      | Spec.State_process ->
        let rng = Spec.trial_rng spec cell ~trial in
        Aggregate.of_state_run
          (Sim.State_process.run ~rng
             (Spec.state_config_of_cell cell)
             ~rounds:spec.Spec.rounds)
    in
    Aggregate.observe agg obs
  done;
  agg

let default_log msg = Printf.eprintf "campaign: %s\n%!" msg

(* The progress reporter's derived one-liner: overall p50/p99 shard time
   and the domain with the most accumulated busy time, read off the
   merged [campaign_shard_seconds{domain=...}] spans. *)
let shard_progress_view snap =
  let spans =
    List.filter_map
      (fun ((k : Tel.Registry.Snapshot.key), v) ->
        match v with
        | Tel.Registry.Snapshot.Span h -> Some (k.labels, h)
        | _ -> None)
      (Tel.Registry.Snapshot.find_all snap "campaign_shard_seconds")
  in
  let all =
    List.fold_left
      (fun acc (_, h) -> Tel.Histogram.merge acc h)
      Tel.Histogram.empty spans
  in
  if all.Tel.Histogram.s_count = 0 then ""
  else begin
    let slowest =
      List.fold_left
        (fun acc (labels, (h : Tel.Histogram.snapshot)) ->
          match acc with
          | Some (_, best) when best >= h.Tel.Histogram.s_sum -> acc
          | _ -> Some (labels, h.Tel.Histogram.s_sum))
        None spans
    in
    let slowest_str =
      match slowest with
      | Some (labels, busy) ->
        let d = Option.value ~default:"?" (List.assoc_opt "domain" labels) in
        Printf.sprintf "; slowest domain %s (%.2fs busy)" d busy
      | None -> ""
    in
    Printf.sprintf "shard time p50 %.3fs p99 %.3fs over %d shards%s"
      (Tel.Histogram.quantile all 0.5)
      (Tel.Histogram.quantile all 0.99)
      all.Tel.Histogram.s_count slowest_str
  end

let write_text_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let run ?jobs ?journal_path ?(resume = false) ?(retries = 2) ?fault
    ?(progress_interval = 0.) ?(progress_out = stderr) ?(log = default_log)
    ?telemetry ?(telemetry_clock = Unix.gettimeofday) spec =
  Spec.validate spec;
  let jobs =
    match jobs with
    | None -> Worker_pool.default_jobs ()
    | Some j ->
      if j < 1 then invalid_arg "Campaign.run: jobs must be >= 1";
      j
  in
  if retries < 0 then invalid_arg "Campaign.run: retries must be >= 0";
  let fault = Option.map Faultplan.arm fault in
  (* The coordinator's registry: journal latency and retry/salvage
     counters, fed only from under the pool mutex (or before/after the
     pool runs), so unsynchronized instruments are safe.  Worker domains
     never touch it — each shard records into its own registry. *)
  let tel =
    Option.map (fun _ -> Tel.Registry.create ~clock:telemetry_clock ()) telemetry
  in
  let c_retries =
    Option.map (fun r -> Tel.Registry.counter r "campaign_shard_retries_total") tel
  in
  let c_salvaged =
    Option.map (fun r -> Tel.Registry.counter r "campaign_shard_salvaged_total") tel
  in
  let started = Unix.gettimeofday () in
  let cells = Spec.cells spec in
  let ncells = Array.length cells in
  let completed : Aggregate.t option array = Array.make ncells None in
  let from_journal = Array.make ncells false in
  let written = Array.make ncells false in
  (* Journal setup: load on resume — repairing a torn tail and starting
     fresh over an unusable file, both logged — after a fingerprint
     check; start fresh otherwise.  The writer stays open (and fsyncs
     every append) until the run ends. *)
  let writer =
    match journal_path with
    | None -> None
    | Some path ->
      let fresh () =
        let w = Journal.create_writer ?telemetry:tel ~path ~fresh:true () in
        (try
           Faultplan.journal_append fault w
             (Journal.Header (Journal.header_of_spec spec))
         with e ->
           Journal.close_writer w;
           raise e);
        Some w
      in
      if not resume then fresh ()
      else begin
        match
          Journal.fold ~log ~path ~fingerprint:(Spec.fingerprint spec)
            ~init:() (fun () (cell : Spec.cell) snap ->
              if cell.Spec.index < 0 || cell.Spec.index >= ncells then
                failwith
                  (Printf.sprintf "journal %s: cell index out of range" path);
              completed.(cell.Spec.index) <- Some (Aggregate.of_snapshot snap);
              from_journal.(cell.Spec.index) <- true;
              written.(cell.Spec.index) <- true)
        with
        | Journal.Fresh _ -> fresh ()
        | Journal.Recovered { entries; _ } ->
          log
            (Printf.sprintf "resuming %s: %d of %d cells recovered from %s"
               (Spec.describe spec) entries ncells path);
          Some (Journal.create_writer ?telemetry:tel ~path ~fresh:false ())
      end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close_writer writer)
    (fun () ->
      let resumed_cells =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 from_journal
      in
      let resumed_trials = resumed_cells * spec.Spec.trials_per_cell in
      let plan =
        Shard.plan ~cells:ncells ~trials_per_cell:spec.Spec.trials_per_cell
          ~shard_size:spec.Spec.shard_size
          ~skip:(fun i -> completed.(i) <> None)
      in
      let fresh_trials =
        Array.fold_left (fun acc sh -> acc + Shard.trials sh) 0 plan
      in
      let progress =
        if progress_interval > 0. then
          Progress.create ~out:progress_out ~interval:progress_interval
            ~resumed_trials ~total_trials:(Spec.trial_count spec) ()
        else Progress.silent ()
      in
      let slots =
        Shard.per_cell ~trials_per_cell:spec.Spec.trials_per_cell
          ~shard_size:spec.Spec.shard_size
      in
      let shard_results = Array.init ncells (fun _ -> Array.make slots None) in
      let shards_done = Array.make ncells 0 in
      let trials_done = ref resumed_trials in
      (* Journal lines go out strictly in cell order: a cell that finishes
         early waits here until every lower-indexed cell has been flushed.
         This is what makes journals byte-identical across worker counts. *)
      let next_flush = ref 0 in
      let flush_prefix () =
        match writer with
        | None -> ()
        | Some w ->
          while !next_flush < ncells && completed.(!next_flush) <> None do
            let i = !next_flush in
            if not written.(i) then begin
              (match completed.(i) with
              | Some agg ->
                Faultplan.journal_append fault w
                  (Journal.Cell (cells.(i), Aggregate.snapshot agg))
              | None -> assert false);
              written.(i) <- true
            end;
            incr next_flush
          done
      in
      flush_prefix ();
      (* Per-shard telemetry snapshots, indexed by plan position.  The
         final merge folds them in plan order — never completion order —
         so the exported snapshot is deterministic for a fixed worker
         count.  [live] is the coordinator's running merge, read only by
         the progress reporter's derived line (order there is harmless:
         it is a human-facing view, not an artifact). *)
      let shard_snaps =
        Array.make (Array.length plan) Tel.Registry.Snapshot.empty
      in
      let live = ref Tel.Registry.Snapshot.empty in
      let progress_extra =
        Option.map (fun _ -> fun () -> shard_progress_view !live) tel
      in
      let pool_started = telemetry_clock () in
      let on_result task_index (agg, snap) =
        let sh = plan.(task_index) in
        let ci = sh.Shard.cell_index in
        shard_snaps.(task_index) <- snap;
        (match tel with
        | None -> ()
        | Some _ -> live := Tel.Registry.Snapshot.merge !live snap);
        shard_results.(ci).(sh.Shard.slot) <- Some agg;
        shards_done.(ci) <- shards_done.(ci) + 1;
        trials_done := !trials_done + Shard.trials sh;
        if shards_done.(ci) = slots then begin
          (* Merge in slot order — never completion order. *)
          let merged =
            Array.fold_left
              (fun acc slot ->
                match (acc, slot) with
                | None, Some a -> Some a
                | Some m, Some a -> Some (Aggregate.merge m a)
                | _, None -> assert false)
              None shard_results.(ci)
          in
          completed.(ci) <- merged;
          flush_prefix ()
        end;
        Progress.note ?extra:progress_extra progress ~trials_done:!trials_done
      in
      let task ~worker (sh : Shard.t) =
        Faultplan.wrap_task fault ~task:sh.Shard.id (fun () ->
            match tel with
            | None -> (run_shard spec cells sh, Tel.Registry.Snapshot.empty)
            | Some _ ->
              (* The shard's own registry: no cross-domain sharing, and
                 its contents (queue wait aside) depend only on the
                 shard, so plan-order merging stays deterministic. *)
              let sreg = Tel.Registry.create ~clock:telemetry_clock () in
              Tel.Span.record
                (Tel.Registry.span sreg "campaign_queue_wait_seconds")
                (Float.max 0. (telemetry_clock () -. pool_started));
              let sp =
                Tel.Registry.span sreg
                  ~labels:[ ("domain", string_of_int worker) ]
                  "campaign_shard_seconds"
              in
              let began = Tel.Span.start sp in
              let agg = run_shard ~telemetry:sreg spec cells sh in
              Tel.Span.stop sp began;
              (agg, Tel.Registry.snapshot sreg))
      in
      let on_retry ~task ~attempt e =
        Option.iter Tel.Counter.incr c_retries;
        log
          (Printf.sprintf
             "shard %d failed on attempt %d (%s); requeueing (%d %s left)"
             task attempt (Printexc.to_string e) (retries - attempt)
             (if retries - attempt = 1 then "retry" else "retries"))
      in
      let on_salvage ~task =
        Option.iter Tel.Counter.incr c_salvaged;
        log
          (Printf.sprintf
             "shard %d abandoned by a dead worker; recomputing on the main \
              domain"
             task)
      in
      ignore
        (Worker_pool.run ~jobs ~retries ~on_retry ~on_salvage ~on_result task
           plan);
      Progress.finish ?extra:progress_extra progress ~trials_done:!trials_done;
      let results =
        Array.mapi
          (fun i cell ->
            match completed.(i) with
            | Some aggregate ->
              { cell; aggregate; from_journal = from_journal.(i) }
            | None -> assert false (* the pool drained every shard *))
          cells
      in
      let telemetry_snapshot =
        match tel with
        | None -> None
        | Some reg ->
          Some
            (Array.fold_left Tel.Registry.Snapshot.merge
               (Tel.Registry.snapshot reg) shard_snaps)
      in
      (match (telemetry, telemetry_snapshot) with
      | Some dir, Some snap ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        write_text_file
          (Filename.concat dir "telemetry.prom")
          (Tel.Export.prometheus snap);
        write_text_file
          (Filename.concat dir "telemetry.jsonl")
          (Tel.Export.jsonl ~emitted_at:(Unix.gettimeofday ()) snap)
      | _ -> ());
      {
        spec;
        cells = results;
        fresh_trials;
        resumed_cells;
        jobs;
        elapsed = Unix.gettimeofday () -. started;
        telemetry = telemetry_snapshot;
      })

let region (cell : Spec.cell) =
  if cell.Spec.nu <= 0. then "SAFE"
  else begin
    let c = Spec.c_of_cell cell in
    if c > Core.Bounds.neat_c_min ~nu:cell.Spec.nu then "SAFE"
    else if cell.Spec.nu > Core.Bounds.pss_attack_nu ~c then "ATTACK"
    else "GAP"
  end

let totals outcome =
  Array.fold_left
    (fun acc r -> Aggregate.merge acc r.aggregate)
    (Aggregate.create ()) outcome.cells

let summary_table outcome =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "campaign: %d cells x %d trials x %d rounds (seed %Ld, %d fresh \
            trials, %d resumed cells, %.1fs at %d jobs)"
           (Array.length outcome.cells) outcome.spec.Spec.trials_per_cell
           outcome.spec.Spec.rounds outcome.spec.Spec.seed
           outcome.fresh_trials outcome.resumed_cells outcome.elapsed
           outcome.jobs)
      ~columns:
        [ "cell"; "p"; "n"; "Delta"; "nu"; "c"; "viol"; "rate"; "95% lo";
          "95% hi"; "max reorg"; "growth"; "quality"; "region"; "agrees" ]
  in
  Array.iter
    (fun { cell; aggregate = a; _ } ->
      let reg = region cell in
      let audited = Aggregate.audited_trials a > 0 in
      let lo, hi =
        match Aggregate.wilson_interval a with
        | Some (lo, hi) -> (lo, hi)
        | None -> (nan, nan)
      in
      let agrees =
        if not audited then "-"
        else
          match reg with
          | "SAFE" -> if Aggregate.violations a = 0 then "yes" else "NO"
          | "ATTACK" -> if Aggregate.violations a > 0 then "yes" else "weak"
          | _ -> "-"
      in
      let mean_or_nan s =
        if Nakamoto_prob.Stats.Summary.count s = 0 then nan
        else Nakamoto_prob.Stats.Summary.mean s
      in
      Table.add_row t
        [
          Table.Int cell.Spec.index; Table.Sci cell.Spec.p;
          Table.Int cell.Spec.n; Table.Int cell.Spec.delta;
          Table.Float cell.Spec.nu; Table.Float (Spec.c_of_cell cell);
          Table.Text
            (Printf.sprintf "%d/%d" (Aggregate.violations a)
               (Aggregate.audited_trials a));
          Table.Float (Aggregate.violation_rate a); Table.Float lo;
          Table.Float hi; Table.Int (Aggregate.max_reorg_depth a);
          Table.Float (mean_or_nan (Aggregate.growth_summary a));
          Table.Float (mean_or_nan (Aggregate.quality_summary a));
          Table.Text reg; Table.Text agrees;
        ])
    outcome.cells;
  t
