type t =
  | Num of string
  | Str of string
  | Bool of bool
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string

(* %.17g round-trips every finite double; OCaml's float_of_string reads
   the inf/-inf/nan tokens back natively. *)
let float_str f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.17g" f

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render v =
  let b = Buffer.create 256 in
  let rec go = function
    | Num tok -> Buffer.add_string b tok
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Bool bo -> Buffer.add_string b (if bo then "true" else "false")
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          go (Str k);
          Buffer.add_char b ':';
          go x)
        kvs;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some (('"' | '\\' | '/') as c) -> Buffer.add_char b c; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | _ -> fail "unsupported escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let is_num_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    (* the letters of inf / nan *)
    || c = 'i' || c = 'n' || c = 'f' || c = 'a'
  in
  let parse_number () =
    let start = !pos in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    Num (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elements [])
      end
    | Some 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
      pos := !pos + 4;
      Bool true
    | Some 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
      pos := !pos + 5;
      Bool false
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member v key =
  match v with
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some x -> x
    | None -> raise (Malformed ("missing field " ^ key)))
  | _ -> raise (Malformed "expected an object")

let member_opt v key =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_int = function
  | Num tok -> (
    try int_of_string tok
    with _ -> raise (Malformed ("not an int: " ^ tok)))
  | _ -> raise (Malformed "expected an int")

let to_float = function
  | Num tok -> (
    try float_of_string tok
    with _ -> raise (Malformed ("not a float: " ^ tok)))
  | _ -> raise (Malformed "expected a float")

let to_int64_string = function
  | Str tok -> (
    try Int64.of_string tok
    with _ -> raise (Malformed ("not an int64: " ^ tok)))
  | _ -> raise (Malformed "expected a quoted int64")

let to_string = function
  | Str s -> s
  | _ -> raise (Malformed "expected a string")

let to_list = function
  | Arr xs -> xs
  | _ -> raise (Malformed "expected an array")
