module Stats = Nakamoto_prob.Stats

type header = {
  version : int;
  fingerprint : int64;
  cells : int;
  trials_per_cell : int;
  seed : int64;
}

type line = Header of header | Cell of Spec.cell * Aggregate.snapshot

let version = 1

let header_of_spec (spec : Spec.t) =
  {
    version;
    fingerprint = Spec.fingerprint spec;
    cells = Spec.cell_count spec;
    trials_per_cell = spec.Spec.trials_per_cell;
    seed = spec.Spec.seed;
  }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let float_str = Json.float_str

let summary_str (r : Stats.Summary.raw) =
  Printf.sprintf "[%d,%s,%s,%s,%s]" r.Stats.Summary.n
    (float_str r.Stats.Summary.mu)
    (float_str r.Stats.Summary.m2s)
    (float_str r.Stats.Summary.lo)
    (float_str r.Stats.Summary.hi)

let int_array_str a =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"

let render = function
  | Header h ->
    Printf.sprintf
      "{\"journal\":\"nakamoto-campaign\",\"version\":%d,\"fingerprint\":\"%Ld\",\"cells\":%d,\"trials_per_cell\":%d,\"seed\":\"%Ld\"}"
      h.version h.fingerprint h.cells h.trials_per_cell h.seed
  | Cell (cell, s) ->
    Printf.sprintf
      "{\"cell\":%d,\"p\":%s,\"n\":%d,\"delta\":%d,\"nu\":%s,\"trials\":%d,\"rounds\":%d,\"audited\":%d,\"violations\":%d,\"conv\":%d,\"adv\":%d,\"honest\":%d,\"h\":%d,\"h1\":%d,\"max_reorg\":%d,\"hist\":%s,\"growth\":%s,\"quality\":%s,\"reorg\":%s}"
      cell.Spec.index (float_str cell.Spec.p) cell.Spec.n cell.Spec.delta
      (float_str cell.Spec.nu) s.Aggregate.s_trials s.Aggregate.s_total_rounds
      s.Aggregate.s_audited_trials s.Aggregate.s_violations
      s.Aggregate.s_convergence_opportunities s.Aggregate.s_adversary_blocks
      s.Aggregate.s_honest_blocks s.Aggregate.s_h_rounds
      s.Aggregate.s_h1_rounds s.Aggregate.s_max_reorg_depth
      (int_array_str s.Aggregate.s_reorg_hist)
      (summary_str s.Aggregate.s_growth)
      (summary_str s.Aggregate.s_quality)
      (summary_str s.Aggregate.s_reorg)

(* ------------------------------------------------------------------ *)
(* Parser: the shared campaign JSON dialect (see {!Json})              *)
(* ------------------------------------------------------------------ *)

let as_summary = function
  | Json.Arr [ n; mu; m2s; lo; hi ] ->
    {
      Stats.Summary.n = Json.to_int n;
      mu = Json.to_float mu;
      m2s = Json.to_float m2s;
      lo = Json.to_float lo;
      hi = Json.to_float hi;
    }
  | _ -> raise (Json.Malformed "expected a 5-element summary array")

let as_int_array j = Array.of_list (List.map Json.to_int (Json.to_list j))

let parse text =
  try
    let j = Json.parse text in
    match j with
    | Json.Obj kvs when List.mem_assoc "journal" kvs ->
      (match Json.member j "journal" with
      | Json.Str "nakamoto-campaign" -> ()
      | _ -> raise (Json.Malformed "not a nakamoto-campaign journal"));
      Header
        {
          version = Json.to_int (Json.member j "version");
          fingerprint = Json.to_int64_string (Json.member j "fingerprint");
          cells = Json.to_int (Json.member j "cells");
          trials_per_cell = Json.to_int (Json.member j "trials_per_cell");
          seed = Json.to_int64_string (Json.member j "seed");
        }
    | Json.Obj _ ->
      let cell =
        {
          Spec.index = Json.to_int (Json.member j "cell");
          p = Json.to_float (Json.member j "p");
          n = Json.to_int (Json.member j "n");
          delta = Json.to_int (Json.member j "delta");
          nu = Json.to_float (Json.member j "nu");
        }
      in
      let snapshot =
        {
          Aggregate.s_trials = Json.to_int (Json.member j "trials");
          s_total_rounds = Json.to_int (Json.member j "rounds");
          s_audited_trials = Json.to_int (Json.member j "audited");
          s_violations = Json.to_int (Json.member j "violations");
          s_convergence_opportunities = Json.to_int (Json.member j "conv");
          s_adversary_blocks = Json.to_int (Json.member j "adv");
          s_honest_blocks = Json.to_int (Json.member j "honest");
          s_h_rounds = Json.to_int (Json.member j "h");
          s_h1_rounds = Json.to_int (Json.member j "h1");
          s_max_reorg_depth = Json.to_int (Json.member j "max_reorg");
          s_reorg_hist = as_int_array (Json.member j "hist");
          s_growth = as_summary (Json.member j "growth");
          s_quality = as_summary (Json.member j "quality");
          s_reorg = as_summary (Json.member j "reorg");
        }
      in
      Cell (cell, snapshot)
    | _ -> raise (Json.Malformed "journal lines are JSON objects")
  with Json.Malformed msg -> failwith ("Journal.parse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Writer: one open descriptor for the campaign's lifetime, fsync     *)
(* before every append returns                                         *)
(* ------------------------------------------------------------------ *)

module Tel = Nakamoto_telemetry

(* Resolved once at writer creation so [append] pays only an option
   match when telemetry is off. *)
type writer_tel = {
  j_appends : Tel.Counter.t;
  sp_append : Tel.Span.t;  (** render + write + fsync, end to end *)
  sp_fsync : Tel.Span.t;  (** the [fsync] alone *)
}

type writer = {
  fd : Unix.file_descr;
  w_path : string;
  w_tel : writer_tel option;
  mutable closed : bool;
}

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let create_writer ?telemetry ~path ~fresh () =
  let flags =
    if fresh then Unix.[ O_WRONLY; O_CREAT; O_TRUNC ]
    else Unix.[ O_WRONLY; O_CREAT; O_APPEND ]
  in
  let w_tel =
    Option.map
      (fun reg ->
        {
          j_appends = Tel.Registry.counter reg "campaign_journal_appends_total";
          sp_append = Tel.Registry.span reg "campaign_journal_append_seconds";
          sp_fsync = Tel.Registry.span reg "campaign_journal_fsync_seconds";
        })
      telemetry
  in
  { fd = Unix.openfile path flags 0o644; w_path = path; w_tel; closed = false }

let check_open w op =
  if w.closed then
    invalid_arg (Printf.sprintf "Journal.%s: writer for %s is closed" op w.w_path)

let append w line =
  check_open w "append";
  match w.w_tel with
  | None ->
    write_all w.fd (render line);
    write_all w.fd "\n";
    Unix.fsync w.fd
  | Some t ->
    Tel.Counter.incr t.j_appends;
    let began = Tel.Span.start t.sp_append in
    write_all w.fd (render line);
    write_all w.fd "\n";
    let fsync_began = Tel.Span.start t.sp_fsync in
    Unix.fsync w.fd;
    Tel.Span.stop t.sp_fsync fsync_began;
    Tel.Span.stop t.sp_append began

(* Fault harness only: leave a deliberately torn tail — a strict prefix
   of the rendered line with no newline, made durable so a resume sees
   exactly what a mid-[append] power loss would have left. *)
let torn_append w line =
  check_open w "torn_append";
  let s = render line in
  write_all w.fd (String.sub s 0 (max 1 (String.length s / 2)));
  Unix.fsync w.fd

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    Unix.close w.fd
  end

(* ------------------------------------------------------------------ *)
(* Loading with torn-tail detection                                    *)
(* ------------------------------------------------------------------ *)

type torn_tail = { valid_bytes : int; dropped_bytes : int }

type loaded = {
  l_header : header;
  entries : (Spec.cell * Aggregate.snapshot) list;
  torn : torn_tail option;
}

type load_result = No_file | Unusable of string | Loaded of loaded

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* (byte offset, line, has trailing newline) triples, in file order. *)
let segments text =
  let len = String.length text in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt text pos '\n' with
      | Some nl ->
        go (nl + 1) ((pos, String.sub text pos (nl - pos), true) :: acc)
      | None -> List.rev ((pos, String.sub text pos (len - pos), false) :: acc)
  in
  go 0 []

let load ~path =
  (* Every fatal message names the file: campaigns juggle several
     journals (resume legs, fault legs, server-side submissions), and a
     path-less "duplicate header line" is undebuggable. *)
  let fail fmt =
    Printf.ksprintf (fun msg -> failwith (Printf.sprintf "journal %s: %s" path msg)) fmt
  in
  if not (Sys.file_exists path) then No_file
  else begin
    let text = read_file path in
    match segments text with
    | [] -> Unusable "empty file"
    | (_, first, first_complete) :: rest ->
      if not first_complete then Unusable "torn header line"
      else begin
        match parse first with
        | exception Failure _ when rest = [] -> Unusable "unparseable header line"
        | exception Failure msg -> fail "%s" msg
        | Cell _ -> fail "journal does not start with a header"
        | Header h ->
          if h.version <> version then
            fail "unsupported journal version %d (expected %d)" h.version version;
          (* Walk the cell lines.  A final segment that is unterminated or
             fails to parse is a torn tail — the footprint of an [append]
             cut short by SIGKILL or power loss — and is reported, not
             fatal.  Anything malformed *before* the tail means the file
             was corrupted some other way and stays a hard error. *)
          let entries = ref [] in
          let torn = ref None in
          let rec walk = function
            | [] -> ()
            | (off, line, complete) :: tl ->
              let last = tl = [] in
              if String.trim line = "" then walk tl
              else if last && not complete then
                torn := Some { valid_bytes = off; dropped_bytes = String.length text - off }
              else begin
                match parse line with
                | Cell (c, s) -> entries := (c, s) :: !entries; walk tl
                | Header _ -> fail "duplicate header line"
                | exception Failure msg ->
                  if last then
                    torn := Some { valid_bytes = off; dropped_bytes = String.length text - off }
                  else fail "%s" msg
              end
          in
          walk rest;
          Loaded { l_header = h; entries = List.rev !entries; torn = !torn }
      end
  end

let repair ~path (t : torn_tail) = Unix.truncate path t.valid_bytes

(* ------------------------------------------------------------------ *)
(* Resume fold: the one loader both resume paths share                 *)
(* ------------------------------------------------------------------ *)

type 'a resume = Fresh of string option | Recovered of { acc : 'a; entries : int }

let default_fold_log msg = Printf.eprintf "journal: %s\n%!" msg

let fold ?(log = default_fold_log) ~path ~fingerprint ~init f =
  match load ~path with
  | No_file -> Fresh None
  | Unusable reason ->
    log
      (Printf.sprintf "journal %s holds no usable state (%s); starting fresh"
         path reason);
    Fresh (Some reason)
  | Loaded { l_header; entries; torn } ->
    if l_header.fingerprint <> fingerprint then
      invalid_arg
        (Printf.sprintf
           "journal %s: fingerprint %Ld does not match the spec's %Ld (resume \
            must reuse the exact grid, seed and trial counts)"
           path l_header.fingerprint fingerprint);
    (match torn with
    | None -> ()
    | Some t ->
      repair ~path t;
      log
        (Printf.sprintf
           "journal %s: repaired torn tail (dropped %d partial bytes at \
            offset %d); the interrupted cell will be recomputed"
           path t.dropped_bytes t.valid_bytes));
    Recovered
      {
        acc = List.fold_left (fun acc (c, s) -> f acc c s) init entries;
        entries = List.length entries;
      }
