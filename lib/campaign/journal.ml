module Stats = Nakamoto_prob.Stats

type header = {
  version : int;
  fingerprint : int64;
  cells : int;
  trials_per_cell : int;
  seed : int64;
}

type line = Header of header | Cell of Spec.cell * Aggregate.snapshot

let version = 1

let header_of_spec (spec : Spec.t) =
  {
    version;
    fingerprint = Spec.fingerprint spec;
    cells = Spec.cell_count spec;
    trials_per_cell = spec.Spec.trials_per_cell;
    seed = spec.Spec.seed;
  }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips every finite double; OCaml's float_of_string reads
   the inf/-inf/nan tokens back natively. *)
let float_str f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.17g" f

let summary_str (r : Stats.Summary.raw) =
  Printf.sprintf "[%d,%s,%s,%s,%s]" r.Stats.Summary.n
    (float_str r.Stats.Summary.mu)
    (float_str r.Stats.Summary.m2s)
    (float_str r.Stats.Summary.lo)
    (float_str r.Stats.Summary.hi)

let int_array_str a =
  "[" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ "]"

let render = function
  | Header h ->
    Printf.sprintf
      "{\"journal\":\"nakamoto-campaign\",\"version\":%d,\"fingerprint\":\"%Ld\",\"cells\":%d,\"trials_per_cell\":%d,\"seed\":\"%Ld\"}"
      h.version h.fingerprint h.cells h.trials_per_cell h.seed
  | Cell (cell, s) ->
    Printf.sprintf
      "{\"cell\":%d,\"p\":%s,\"n\":%d,\"delta\":%d,\"nu\":%s,\"trials\":%d,\"rounds\":%d,\"audited\":%d,\"violations\":%d,\"conv\":%d,\"adv\":%d,\"honest\":%d,\"h\":%d,\"h1\":%d,\"max_reorg\":%d,\"hist\":%s,\"growth\":%s,\"quality\":%s,\"reorg\":%s}"
      cell.Spec.index (float_str cell.Spec.p) cell.Spec.n cell.Spec.delta
      (float_str cell.Spec.nu) s.Aggregate.s_trials s.Aggregate.s_total_rounds
      s.Aggregate.s_audited_trials s.Aggregate.s_violations
      s.Aggregate.s_convergence_opportunities s.Aggregate.s_adversary_blocks
      s.Aggregate.s_honest_blocks s.Aggregate.s_h_rounds
      s.Aggregate.s_h1_rounds s.Aggregate.s_max_reorg_depth
      (int_array_str s.Aggregate.s_reorg_hist)
      (summary_str s.Aggregate.s_growth)
      (summary_str s.Aggregate.s_quality)
      (summary_str s.Aggregate.s_reorg)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the JSON subset we emit              *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnum of string  (** unconverted token: caller picks int/float/int64 *)
  | Jstr of string
  | Jbool of bool
  | Jarr of json list
  | Jobj of (string * json) list

exception Malformed of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some (('"' | '\\' | '/') as c) -> Buffer.add_char b c; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | _ -> fail "unsupported escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let is_num_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    (* the letters of inf / nan *)
    || c = 'i' || c = 'n' || c = 'f' || c = 'a'
  in
  let parse_number () =
    let start = !pos in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    Jnum (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jarr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Jarr (elements [])
      end
    | Some 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
      pos := !pos + 4;
      Jbool true
    | Some 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
      pos := !pos + 5;
      Jbool false
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* Field accessors. *)

let field obj key =
  match obj with
  | Jobj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> raise (Malformed ("missing field " ^ key)))
  | _ -> raise (Malformed "expected an object")

let as_int = function
  | Jnum tok -> (
    try int_of_string tok
    with _ -> raise (Malformed ("not an int: " ^ tok)))
  | _ -> raise (Malformed "expected an int")

let as_float = function
  | Jnum tok -> (
    try float_of_string tok
    with _ -> raise (Malformed ("not a float: " ^ tok)))
  | _ -> raise (Malformed "expected a float")

let as_int64_str = function
  | Jstr tok -> (
    try Int64.of_string tok
    with _ -> raise (Malformed ("not an int64: " ^ tok)))
  | _ -> raise (Malformed "expected a quoted int64")

let as_summary = function
  | Jarr [ n; mu; m2s; lo; hi ] ->
    {
      Stats.Summary.n = as_int n;
      mu = as_float mu;
      m2s = as_float m2s;
      lo = as_float lo;
      hi = as_float hi;
    }
  | _ -> raise (Malformed "expected a 5-element summary array")

let as_int_array = function
  | Jarr xs -> Array.of_list (List.map as_int xs)
  | _ -> raise (Malformed "expected an int array")

let parse text =
  try
    let j = parse_json text in
    match j with
    | Jobj kvs when List.mem_assoc "journal" kvs ->
      (match field j "journal" with
      | Jstr "nakamoto-campaign" -> ()
      | _ -> raise (Malformed "not a nakamoto-campaign journal"));
      Header
        {
          version = as_int (field j "version");
          fingerprint = as_int64_str (field j "fingerprint");
          cells = as_int (field j "cells");
          trials_per_cell = as_int (field j "trials_per_cell");
          seed = as_int64_str (field j "seed");
        }
    | Jobj _ ->
      let cell =
        {
          Spec.index = as_int (field j "cell");
          p = as_float (field j "p");
          n = as_int (field j "n");
          delta = as_int (field j "delta");
          nu = as_float (field j "nu");
        }
      in
      let snapshot =
        {
          Aggregate.s_trials = as_int (field j "trials");
          s_total_rounds = as_int (field j "rounds");
          s_audited_trials = as_int (field j "audited");
          s_violations = as_int (field j "violations");
          s_convergence_opportunities = as_int (field j "conv");
          s_adversary_blocks = as_int (field j "adv");
          s_honest_blocks = as_int (field j "honest");
          s_h_rounds = as_int (field j "h");
          s_h1_rounds = as_int (field j "h1");
          s_max_reorg_depth = as_int (field j "max_reorg");
          s_reorg_hist = as_int_array (field j "hist");
          s_growth = as_summary (field j "growth");
          s_quality = as_summary (field j "quality");
          s_reorg = as_summary (field j "reorg");
        }
      in
      Cell (cell, snapshot)
    | _ -> raise (Malformed "journal lines are JSON objects")
  with Malformed msg -> failwith ("Journal.parse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Writer: one open descriptor for the campaign's lifetime, fsync     *)
(* before every append returns                                         *)
(* ------------------------------------------------------------------ *)

module Tel = Nakamoto_telemetry

(* Resolved once at writer creation so [append] pays only an option
   match when telemetry is off. *)
type writer_tel = {
  j_appends : Tel.Counter.t;
  sp_append : Tel.Span.t;  (** render + write + fsync, end to end *)
  sp_fsync : Tel.Span.t;  (** the [fsync] alone *)
}

type writer = {
  fd : Unix.file_descr;
  w_path : string;
  w_tel : writer_tel option;
  mutable closed : bool;
}

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let create_writer ?telemetry ~path ~fresh () =
  let flags =
    if fresh then Unix.[ O_WRONLY; O_CREAT; O_TRUNC ]
    else Unix.[ O_WRONLY; O_CREAT; O_APPEND ]
  in
  let w_tel =
    Option.map
      (fun reg ->
        {
          j_appends = Tel.Registry.counter reg "campaign_journal_appends_total";
          sp_append = Tel.Registry.span reg "campaign_journal_append_seconds";
          sp_fsync = Tel.Registry.span reg "campaign_journal_fsync_seconds";
        })
      telemetry
  in
  { fd = Unix.openfile path flags 0o644; w_path = path; w_tel; closed = false }

let check_open w op =
  if w.closed then
    invalid_arg (Printf.sprintf "Journal.%s: writer for %s is closed" op w.w_path)

let append w line =
  check_open w "append";
  match w.w_tel with
  | None ->
    write_all w.fd (render line);
    write_all w.fd "\n";
    Unix.fsync w.fd
  | Some t ->
    Tel.Counter.incr t.j_appends;
    let began = Tel.Span.start t.sp_append in
    write_all w.fd (render line);
    write_all w.fd "\n";
    let fsync_began = Tel.Span.start t.sp_fsync in
    Unix.fsync w.fd;
    Tel.Span.stop t.sp_fsync fsync_began;
    Tel.Span.stop t.sp_append began

(* Fault harness only: leave a deliberately torn tail — a strict prefix
   of the rendered line with no newline, made durable so a resume sees
   exactly what a mid-[append] power loss would have left. *)
let torn_append w line =
  check_open w "torn_append";
  let s = render line in
  write_all w.fd (String.sub s 0 (max 1 (String.length s / 2)));
  Unix.fsync w.fd

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    Unix.close w.fd
  end

(* ------------------------------------------------------------------ *)
(* Loading with torn-tail detection                                    *)
(* ------------------------------------------------------------------ *)

type torn_tail = { valid_bytes : int; dropped_bytes : int }

type loaded = {
  l_header : header;
  entries : (Spec.cell * Aggregate.snapshot) list;
  torn : torn_tail option;
}

type load_result = No_file | Unusable of string | Loaded of loaded

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* (byte offset, line, has trailing newline) triples, in file order. *)
let segments text =
  let len = String.length text in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt text pos '\n' with
      | Some nl ->
        go (nl + 1) ((pos, String.sub text pos (nl - pos), true) :: acc)
      | None -> List.rev ((pos, String.sub text pos (len - pos), false) :: acc)
  in
  go 0 []

let load ~path =
  if not (Sys.file_exists path) then No_file
  else begin
    let text = read_file path in
    match segments text with
    | [] -> Unusable "empty file"
    | (_, first, first_complete) :: rest ->
      if not first_complete then Unusable "torn header line"
      else begin
        match parse first with
        | exception Failure _ when rest = [] -> Unusable "unparseable header line"
        | exception Failure msg -> failwith msg
        | Cell _ -> failwith "Journal.load: journal does not start with a header"
        | Header h ->
          if h.version <> version then
            failwith
              (Printf.sprintf "Journal.load: unsupported journal version %d (expected %d)"
                 h.version version);
          (* Walk the cell lines.  A final segment that is unterminated or
             fails to parse is a torn tail — the footprint of an [append]
             cut short by SIGKILL or power loss — and is reported, not
             fatal.  Anything malformed *before* the tail means the file
             was corrupted some other way and stays a hard error. *)
          let entries = ref [] in
          let torn = ref None in
          let rec walk = function
            | [] -> ()
            | (off, line, complete) :: tl ->
              let last = tl = [] in
              if String.trim line = "" then walk tl
              else if last && not complete then
                torn := Some { valid_bytes = off; dropped_bytes = String.length text - off }
              else begin
                match parse line with
                | Cell (c, s) -> entries := (c, s) :: !entries; walk tl
                | Header _ -> failwith "Journal.load: duplicate header line"
                | exception Failure msg ->
                  if last then
                    torn := Some { valid_bytes = off; dropped_bytes = String.length text - off }
                  else failwith msg
              end
          in
          walk rest;
          Loaded { l_header = h; entries = List.rev !entries; torn = !torn }
      end
  end

let repair ~path (t : torn_tail) = Unix.truncate path t.valid_bytes
