module Sim = Nakamoto_sim
module Rng = Nakamoto_prob.Rng

type mode = Full_protocol | State_process

type t = {
  ps : float list;
  ns : int list;
  deltas : int list;
  nus : float list;
  trials_per_cell : int;
  rounds : int;
  mode : mode;
  strategy : Sim.Adversary.strategy;
  mining_mode : Sim.Config.mining_mode;
  truncate : int;
  seed : int64;
  shard_size : int;
}

type cell = { index : int; p : float; n : int; delta : int; nu : float }

let default =
  {
    ps = [ 0.005 ];
    ns = [ 40 ];
    deltas = [ 4 ];
    nus = [ 0.1; 0.25; 0.4 ];
    trials_per_cell = 8;
    rounds = 1_500;
    mode = Full_protocol;
    strategy = Sim.Adversary.Private_chain { reorg_target = 12 };
    mining_mode = Sim.Config.Exact;
    truncate = 6;
    seed = 42L;
    shard_size = 2;
  }

let validate t =
  let nonempty name = function
    | [] -> invalid_arg (Printf.sprintf "Spec: %s axis is empty" name)
    | _ -> ()
  in
  nonempty "p" t.ps;
  nonempty "n" t.ns;
  nonempty "delta" t.deltas;
  nonempty "nu" t.nus;
  List.iter
    (fun p ->
      if not (p > 0. && p < 1.) then invalid_arg "Spec: p must lie in (0, 1)")
    t.ps;
  List.iter (fun n -> if n < 4 then invalid_arg "Spec: n must be >= 4") t.ns;
  List.iter
    (fun d -> if d < 1 then invalid_arg "Spec: delta must be >= 1")
    t.deltas;
  List.iter
    (fun nu ->
      if not (nu >= 0. && nu < 0.5) then
        invalid_arg "Spec: nu must lie in [0, 1/2)")
    t.nus;
  if t.trials_per_cell < 1 then invalid_arg "Spec: trials_per_cell must be >= 1";
  if t.rounds < 1 then invalid_arg "Spec: rounds must be >= 1";
  if t.truncate < 0 then invalid_arg "Spec: truncate must be nonnegative";
  if t.shard_size < 1 then invalid_arg "Spec: shard_size must be >= 1";
  (* The fast executors ride the shared delivery lane, which requires a
     recipient-independent delay policy; Balance's cross-group routing is
     inherently per-recipient.  Reject at spec level so the operator hears
     about it before any trial runs (Config.validate would re-raise, per
     cell, with the typed Config.Incompatible for Skip). *)
  match (t.mode, t.mining_mode, t.strategy) with
  | Full_protocol, (Sim.Config.Aggregate | Sim.Config.Skip), Sim.Adversary.Balance _
    ->
    invalid_arg
      "Spec: aggregate/skip mining is incompatible with the balance strategy \
       (its delay policy is per-recipient)"
  | _ -> ()

let cells t =
  let acc = ref [] in
  let index = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun n ->
          List.iter
            (fun delta ->
              List.iter
                (fun nu ->
                  acc := { index = !index; p; n; delta; nu } :: !acc;
                  incr index)
                t.nus)
            t.deltas)
        t.ns)
    t.ps;
  Array.of_list (List.rev !acc)

let cell_count t =
  List.length t.ps * List.length t.ns * List.length t.deltas
  * List.length t.nus

let trial_count t = cell_count t * t.trials_per_cell
let c_of_cell cell = 1. /. (cell.p *. float_of_int (cell.n * cell.delta))

(* Snapshots feed the consistency audit; scale their cadence with the
   horizon so short trials still collect a handful of audit points. *)
let snapshot_interval_for rounds = max 1 (min 200 (rounds / 20))

let config_of_cell t cell ~trial =
  if trial < 0 || trial >= t.trials_per_cell then
    invalid_arg "Spec.config_of_cell: trial outside [0, trials_per_cell)";
  {
    Sim.Config.default with
    n = cell.n;
    nu = cell.nu;
    p = cell.p;
    delta = cell.delta;
    rounds = t.rounds;
    seed = Rng.seed_of_path ~seed:t.seed [ cell.index; trial ];
    strategy = t.strategy;
    mining_mode = t.mining_mode;
    snapshot_interval = snapshot_interval_for t.rounds;
    truncate = t.truncate;
  }

let state_config_of_cell cell =
  let adversarial = int_of_float (cell.nu *. float_of_int cell.n) in
  {
    Sim.State_process.honest = cell.n - adversarial;
    adversarial;
    p = cell.p;
    delta = cell.delta;
  }

let trial_rng t cell ~trial =
  if trial < 0 || trial >= t.trials_per_cell then
    invalid_arg "Spec.trial_rng: trial outside [0, trials_per_cell)";
  Rng.of_path ~seed:t.seed [ cell.index; trial ]

(* ------------------------------------------------------------------ *)
(* Canonical JSON codec                                                *)
(* ------------------------------------------------------------------ *)

let codec_version = 1

let strategy_to_json = function
  | Sim.Adversary.Idle -> Json.Obj [ ("kind", Json.Str "idle") ]
  | Sim.Adversary.Private_chain { reorg_target } ->
    Json.Obj
      [ ("kind", Json.Str "private_chain");
        ("reorg_target", Json.Num (string_of_int reorg_target)) ]
  | Sim.Adversary.Balance { group_boundary } ->
    Json.Obj
      [ ("kind", Json.Str "balance");
        ("group_boundary", Json.Num (string_of_int group_boundary)) ]
  | Sim.Adversary.Selfish_mining -> Json.Obj [ ("kind", Json.Str "selfish_mining") ]

let strategy_of_json j =
  match Json.to_string (Json.member j "kind") with
  | "idle" -> Sim.Adversary.Idle
  | "private_chain" ->
    Sim.Adversary.Private_chain
      { reorg_target = Json.to_int (Json.member j "reorg_target") }
  | "balance" ->
    Sim.Adversary.Balance
      { group_boundary = Json.to_int (Json.member j "group_boundary") }
  | "selfish_mining" -> Sim.Adversary.Selfish_mining
  | other -> raise (Json.Malformed ("unknown strategy kind " ^ other))

let mining_mode_name = function
  | Sim.Config.Exact -> "exact"
  | Sim.Config.Aggregate -> "aggregate"
  | Sim.Config.Skip -> "skip"

let to_json t =
  let num_int i = Json.Num (string_of_int i) in
  let num_float f = Json.Num (Json.float_str f) in
  (* [mining_mode] is emitted only when it differs from the historical
     default: every pre-existing exact-mode spec keeps its canonical
     bytes, and therefore its fingerprint and journal compatibility. *)
  let mining_mode =
    match t.mining_mode with
    | Sim.Config.Exact -> []
    | m -> [ ("mining_mode", Json.Str (mining_mode_name m)) ]
  in
  Json.render
    (Json.Obj
       ([
         ("spec", Json.Str "nakamoto-campaign");
         ("version", num_int codec_version);
         ("ps", Json.Arr (List.map num_float t.ps));
         ("ns", Json.Arr (List.map num_int t.ns));
         ("deltas", Json.Arr (List.map num_int t.deltas));
         ("nus", Json.Arr (List.map num_float t.nus));
         ("trials_per_cell", num_int t.trials_per_cell);
         ("rounds", num_int t.rounds);
         ( "mode",
           Json.Str
             (match t.mode with
             | Full_protocol -> "full"
             | State_process -> "state") );
         ("strategy", strategy_to_json t.strategy);
         ("truncate", num_int t.truncate);
         ("seed", Json.Str (Int64.to_string t.seed));
         ("shard_size", num_int t.shard_size);
        ]
       @ mining_mode))

let of_json text =
  match Json.parse text with
  | exception Json.Malformed msg -> Error ("Spec.of_json: " ^ msg)
  | j -> (
    try
      (match Json.to_string (Json.member j "spec") with
      | "nakamoto-campaign" -> ()
      | other -> raise (Json.Malformed ("not a campaign spec: " ^ other)));
      let v = Json.to_int (Json.member j "version") in
      if v <> codec_version then
        raise
          (Json.Malformed
             (Printf.sprintf "unsupported spec codec version %d (expected %d)"
                v codec_version));
      Ok
        {
          ps = List.map Json.to_float (Json.to_list (Json.member j "ps"));
          ns = List.map Json.to_int (Json.to_list (Json.member j "ns"));
          deltas = List.map Json.to_int (Json.to_list (Json.member j "deltas"));
          nus = List.map Json.to_float (Json.to_list (Json.member j "nus"));
          trials_per_cell = Json.to_int (Json.member j "trials_per_cell");
          rounds = Json.to_int (Json.member j "rounds");
          mode =
            (match Json.to_string (Json.member j "mode") with
            | "full" -> Full_protocol
            | "state" -> State_process
            | other -> raise (Json.Malformed ("unknown mode " ^ other)));
          strategy = strategy_of_json (Json.member j "strategy");
          mining_mode =
            (match Json.member_opt j "mining_mode" with
            | None -> Sim.Config.Exact
            | Some m -> (
              match Json.to_string m with
              | "exact" -> Sim.Config.Exact
              | "aggregate" -> Sim.Config.Aggregate
              | "skip" -> Sim.Config.Skip
              | other ->
                raise (Json.Malformed ("unknown mining_mode " ^ other))));
          truncate = Json.to_int (Json.member j "truncate");
          seed = Json.to_int64_string (Json.member j "seed");
          shard_size = Json.to_int (Json.member j "shard_size");
        }
    with Json.Malformed msg -> Error ("Spec.of_json: " ^ msg))

(* The fingerprint hashes the canonical serialization byte by byte
   through the SplitMix64 finalizer.  Structural rather than
   cryptographic: its only job is to make accidental spec drift across a
   resume (or across the wire) loudly detectable — and because the input
   is [to_json], any field that changes the campaign changes the bytes
   and therefore the fingerprint, with no second field list to keep in
   sync. *)
let fingerprint t =
  let s = to_json t in
  let acc = ref 0x6E616B616D6F746FL in
  String.iter
    (fun c ->
      acc := Rng.splitmix64 (Int64.logxor !acc (Int64.of_int (Char.code c))))
    s;
  !acc

let describe t =
  Printf.sprintf "%d cells x %d trials x %d rounds, seed %Ld, fingerprint %Ld"
    (cell_count t) t.trials_per_cell t.rounds t.seed (fingerprint t)
