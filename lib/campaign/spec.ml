module Sim = Nakamoto_sim
module Rng = Nakamoto_prob.Rng

type mode = Full_protocol | State_process

type t = {
  ps : float list;
  ns : int list;
  deltas : int list;
  nus : float list;
  trials_per_cell : int;
  rounds : int;
  mode : mode;
  strategy : Sim.Adversary.strategy;
  truncate : int;
  seed : int64;
  shard_size : int;
}

type cell = { index : int; p : float; n : int; delta : int; nu : float }

let default =
  {
    ps = [ 0.005 ];
    ns = [ 40 ];
    deltas = [ 4 ];
    nus = [ 0.1; 0.25; 0.4 ];
    trials_per_cell = 8;
    rounds = 1_500;
    mode = Full_protocol;
    strategy = Sim.Adversary.Private_chain { reorg_target = 12 };
    truncate = 6;
    seed = 42L;
    shard_size = 2;
  }

let validate t =
  let nonempty name = function
    | [] -> invalid_arg (Printf.sprintf "Spec: %s axis is empty" name)
    | _ -> ()
  in
  nonempty "p" t.ps;
  nonempty "n" t.ns;
  nonempty "delta" t.deltas;
  nonempty "nu" t.nus;
  List.iter
    (fun p ->
      if not (p > 0. && p < 1.) then invalid_arg "Spec: p must lie in (0, 1)")
    t.ps;
  List.iter (fun n -> if n < 4 then invalid_arg "Spec: n must be >= 4") t.ns;
  List.iter
    (fun d -> if d < 1 then invalid_arg "Spec: delta must be >= 1")
    t.deltas;
  List.iter
    (fun nu ->
      if not (nu >= 0. && nu < 0.5) then
        invalid_arg "Spec: nu must lie in [0, 1/2)")
    t.nus;
  if t.trials_per_cell < 1 then invalid_arg "Spec: trials_per_cell must be >= 1";
  if t.rounds < 1 then invalid_arg "Spec: rounds must be >= 1";
  if t.truncate < 0 then invalid_arg "Spec: truncate must be nonnegative";
  if t.shard_size < 1 then invalid_arg "Spec: shard_size must be >= 1"

let cells t =
  let acc = ref [] in
  let index = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun n ->
          List.iter
            (fun delta ->
              List.iter
                (fun nu ->
                  acc := { index = !index; p; n; delta; nu } :: !acc;
                  incr index)
                t.nus)
            t.deltas)
        t.ns)
    t.ps;
  Array.of_list (List.rev !acc)

let cell_count t =
  List.length t.ps * List.length t.ns * List.length t.deltas
  * List.length t.nus

let trial_count t = cell_count t * t.trials_per_cell
let c_of_cell cell = 1. /. (cell.p *. float_of_int (cell.n * cell.delta))

(* Snapshots feed the consistency audit; scale their cadence with the
   horizon so short trials still collect a handful of audit points. *)
let snapshot_interval_for rounds = max 1 (min 200 (rounds / 20))

let config_of_cell t cell ~trial =
  if trial < 0 || trial >= t.trials_per_cell then
    invalid_arg "Spec.config_of_cell: trial outside [0, trials_per_cell)";
  {
    Sim.Config.default with
    n = cell.n;
    nu = cell.nu;
    p = cell.p;
    delta = cell.delta;
    rounds = t.rounds;
    seed = Rng.seed_of_path ~seed:t.seed [ cell.index; trial ];
    strategy = t.strategy;
    snapshot_interval = snapshot_interval_for t.rounds;
    truncate = t.truncate;
  }

let state_config_of_cell cell =
  let adversarial = int_of_float (cell.nu *. float_of_int cell.n) in
  {
    Sim.State_process.honest = cell.n - adversarial;
    adversarial;
    p = cell.p;
    delta = cell.delta;
  }

let trial_rng t cell ~trial =
  if trial < 0 || trial >= t.trials_per_cell then
    invalid_arg "Spec.trial_rng: trial outside [0, trials_per_cell)";
  Rng.of_path ~seed:t.seed [ cell.index; trial ]

(* Fold every field through the SplitMix64 finalizer.  Structural rather
   than cryptographic: its only job is to make accidental spec drift
   across a resume loudly detectable. *)
let fingerprint t =
  let mix acc x = Rng.splitmix64 (Int64.add acc x) in
  let mix_int acc i = mix acc (Int64.of_int i) in
  let mix_float acc f = mix acc (Int64.bits_of_float f) in
  let mix_floats acc fs = List.fold_left mix_float (mix_int acc 0x5F) fs in
  let mix_ints acc is = List.fold_left mix_int (mix_int acc 0x5B) is in
  let strategy_tag =
    match t.strategy with
    | Sim.Adversary.Idle -> (1, 0)
    | Sim.Adversary.Private_chain { reorg_target } -> (2, reorg_target)
    | Sim.Adversary.Balance { group_boundary } -> (3, group_boundary)
    | Sim.Adversary.Selfish_mining -> (4, 0)
  in
  let acc = mix 0x6E616B616D6F746FL t.seed in
  let acc = mix_floats acc t.ps in
  let acc = mix_ints acc t.ns in
  let acc = mix_ints acc t.deltas in
  let acc = mix_floats acc t.nus in
  let acc = mix_int acc t.trials_per_cell in
  let acc = mix_int acc t.rounds in
  let acc = mix_int acc (match t.mode with Full_protocol -> 1 | State_process -> 2) in
  let acc = mix_int acc (fst strategy_tag) in
  let acc = mix_int acc (snd strategy_tag) in
  let acc = mix_int acc t.truncate in
  mix_int acc t.shard_size

let describe t =
  Printf.sprintf "%d cells x %d trials x %d rounds, seed %Ld, fingerprint %Ld"
    (cell_count t) t.trials_per_cell t.rounds t.seed (fingerprint t)
