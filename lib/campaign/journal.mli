(** Crash-safe JSONL campaign journal.

    Line 1 is a header binding the file to a spec {!Spec.fingerprint};
    every further line is one completed cell with its exact aggregate
    state.  The writer emits keys in a fixed order and floats with
    [%.17g] (round-trip precise), so two campaigns that compute the same
    aggregates produce byte-identical journals — the determinism test
    and the golden smoke file rely on this.  Parsing is hand-rolled
    recursive descent over a small JSON subset (objects, arrays, numbers
    including [inf]/[-inf]/[nan], strings, booleans); no external
    dependency.  64-bit values that a double cannot carry exactly
    (seeds, fingerprints) travel as decimal strings. *)

type header = {
  version : int;
  fingerprint : int64;
  cells : int;  (** grid size, for progress accounting on resume *)
  trials_per_cell : int;
  seed : int64;
}

type line =
  | Header of header
  | Cell of Spec.cell * Aggregate.snapshot

val header_of_spec : Spec.t -> header

val render : line -> string
(** One JSON object, no trailing newline. *)

val parse : string -> line
(** @raise Failure on malformed input. *)

(** {2 Writer}

    A persistent writer: the campaign opens the journal once and keeps
    the descriptor for its whole run.  Every {!append} ends with an
    [fsync], so the durability contract is simple — {e when [append]
    returns, that line survives SIGKILL and power loss}.  A crash {e
    during} an append leaves at most one torn (partial, newline-less)
    final line, which {!load} detects and {!repair} truncates away. *)

type writer

val create_writer :
  ?telemetry:Nakamoto_telemetry.Registry.t ->
  path:string ->
  fresh:bool ->
  unit ->
  writer
(** [create_writer ~path ~fresh ()] opens [path] for writing.
    [fresh:true] truncates (or creates) the file; [fresh:false] opens in
    append mode, the resume path after {!load}/{!repair}.  [telemetry],
    if given, registers [campaign_journal_appends_total] and the
    [campaign_journal_append_seconds] / [campaign_journal_fsync_seconds]
    latency spans, fed on every {!append}; instruments are resolved here
    so the append path pays one option match when telemetry is off. *)

val append : writer -> line -> unit
(** Write [render line] plus a newline and [fsync] before returning.
    The line is durable once this returns. *)

val torn_append : writer -> line -> unit
(** Fault-injection harness only: durably write a strict {e prefix} of
    [render line] with no newline — the exact on-disk footprint of an
    [append] interrupted by SIGKILL mid-write. *)

val close_writer : writer -> unit
(** Close the descriptor.  Idempotent; further appends raise
    [Invalid_argument]. *)

(** {2 Loading} *)

type torn_tail = {
  valid_bytes : int;  (** file prefix that parsed cleanly *)
  dropped_bytes : int;  (** length of the torn final line *)
}

type loaded = {
  l_header : header;
  entries : (Spec.cell * Aggregate.snapshot) list;  (** in file order *)
  torn : torn_tail option;
      (** present when the final line was partial or unparseable — the
          footprint of a crash mid-[append]; pass it to {!repair} *)
}

type load_result =
  | No_file  (** nothing at that path *)
  | Unusable of string
      (** the file exists but holds no complete, valid header line (empty
          file, or a crash during the very first append); the journal
          carries no state and a resume should start fresh — the payload
          says why *)
  | Loaded of loaded

val load : path:string -> load_result
(** [load ~path] parses the journal, tolerating a torn tail: a {e final}
    line that is unterminated or fails to parse is reported in
    [loaded.torn] rather than raised.  Malformed lines anywhere {e
    before} the tail — including a duplicate header — cannot result from
    an interrupted append and stay fatal.
    @raise Failure on a malformed non-tail line, a duplicate header, a
    leading non-header line, or an unsupported journal version. *)

val repair : path:string -> torn_tail -> unit
(** Truncate the file to [valid_bytes], discarding the torn tail.  After
    repair the journal is byte-identical to one whose last append never
    started, so appending the recomputed cell reproduces the
    uninterrupted file exactly. *)

(** {2 Resume fold}

    The one loader every resume path shares: the CLI's [--resume], and
    the serve coordinator's server-side resume.  It composes
    {!load}/{!repair} with the fingerprint check and the operator
    logging, so the two paths cannot drift in how they treat a torn
    tail, an unusable file or a mismatched spec. *)

type 'a resume =
  | Fresh of string option
      (** no usable journal: [None] = no file, [Some reason] = the
          {!Unusable} payload (already logged) *)
  | Recovered of { acc : 'a; entries : int }

val fold :
  ?log:(string -> unit) ->
  path:string ->
  fingerprint:int64 ->
  init:'a ->
  ('a -> Spec.cell -> Aggregate.snapshot -> 'a) ->
  'a resume
(** [fold ~path ~fingerprint ~init f] loads the journal and folds [f]
    over its cell entries in file order.  A torn tail is repaired in
    place first (logged, with the path); an absent or unusable file
    yields [Fresh] (unusable is logged too); [log] defaults to [stderr]
    prefixed with ["journal: "].  Every message names [path].
    @raise Invalid_argument when the journal's fingerprint differs from
    [fingerprint] — resuming against an edited spec.
    @raise Failure as {!load} (mid-file corruption stays fatal). *)
