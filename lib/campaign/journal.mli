(** Crash-safe JSONL campaign journal.

    Line 1 is a header binding the file to a spec {!Spec.fingerprint};
    every further line is one completed cell with its exact aggregate
    state.  The writer emits keys in a fixed order and floats with
    [%.17g] (round-trip precise), so two campaigns that compute the same
    aggregates produce byte-identical journals — the determinism test
    and the golden smoke file rely on this.  Parsing is hand-rolled
    recursive descent over a small JSON subset (objects, arrays, numbers
    including [inf]/[-inf]/[nan], strings, booleans); no external
    dependency.  64-bit values that a double cannot carry exactly
    (seeds, fingerprints) travel as decimal strings. *)

type header = {
  version : int;
  fingerprint : int64;
  cells : int;  (** grid size, for progress accounting on resume *)
  trials_per_cell : int;
  seed : int64;
}

type line =
  | Header of header
  | Cell of Spec.cell * Aggregate.snapshot

val header_of_spec : Spec.t -> header

val render : line -> string
(** One JSON object, no trailing newline. *)

val parse : string -> line
(** @raise Failure on malformed input. *)

val append : path:string -> line -> unit
(** Append [render line] and a newline, fsync-free but flushed and
    closed before returning. *)

val load : path:string -> (header * (Spec.cell * Aggregate.snapshot) list) option
(** [load ~path] is [None] when the file does not exist; otherwise the
    parsed header and cell lines in file order.
    @raise Failure when the file exists but is empty, starts with a
    non-header line, or contains a malformed line. *)
