(** The campaign layer's shared JSON dialect.

    One parser and one set of rendering conventions, used by both the
    journal lines and the {!Spec} codec so that every serialized spec —
    journal header, wire payload, fingerprint input — is the {e same}
    bytes.  The dialect is the subset the writers emit: objects, arrays,
    numbers (including the bare [inf]/[-inf]/[nan] tokens), strings with
    the quote/backslash/slash/newline/tab escapes, and booleans.
    Hand-rolled recursive descent; no external dependency. *)

type t =
  | Num of string  (** unconverted token: the caller picks int/float/int64 *)
  | Str of string
  | Bool of bool
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string
(** Every accessor and the parser fail through this; callers wrap it
    into their own error discipline. *)

val parse : string -> t
(** @raise Malformed on anything outside the dialect, including trailing
    garbage. *)

(** {2 Canonical rendering}

    [render] emits no whitespace, object keys in the order given, floats
    through {!float_str} — so equal values render to equal bytes, the
    property the spec fingerprint and the journal goldens rely on. *)

val render : t -> string

val float_str : float -> string
(** [%.17g], round-trip precise for every finite double; [inf]/[-inf]/
    [nan] as bare tokens. *)

val escape : string -> string
(** The escaping [render] applies inside string literals. *)

(** {2 Accessors}

    All raise {!Malformed} with the offending key or token in the
    message. *)

val member : t -> string -> t
val member_opt : t -> string -> t option
val to_int : t -> int
val to_float : t -> float
val to_int64_string : t -> int64
(** 64-bit values travel as decimal strings (a double cannot carry them
    exactly). *)

val to_string : t -> string
val to_list : t -> t list
