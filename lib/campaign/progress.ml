type t = {
  out : out_channel;
  interval : float;
  total_trials : int;
  started : float;
  mutable last_report : float;
}

let create ?(out = stderr) ?(interval = 5.) ~total_trials () =
  let now = Unix.gettimeofday () in
  { out; interval; total_trials; started = now; last_report = now }

let silent = { out = stderr; interval = 0.; total_trials = 0; started = 0.; last_report = 0. }

let elapsed t = Unix.gettimeofday () -. t.started

let rate t ~trials_done ~now =
  let dt = now -. t.started in
  if dt <= 0. then 0. else float_of_int trials_done /. dt

let print_line t ~trials_done ~now ~final =
  let r = rate t ~trials_done ~now in
  let eta =
    if r <= 0. || trials_done >= t.total_trials then 0.
    else float_of_int (t.total_trials - trials_done) /. r
  in
  if final then
    Printf.fprintf t.out "campaign: %d trials in %.1fs (%.2f trials/s)\n%!"
      trials_done (now -. t.started) r
  else
    Printf.fprintf t.out
      "campaign: %d/%d trials (%.2f trials/s, eta %.0fs)\n%!" trials_done
      t.total_trials r eta

let note t ~trials_done =
  if t.interval > 0. then begin
    let now = Unix.gettimeofday () in
    if now -. t.last_report >= t.interval then begin
      t.last_report <- now;
      print_line t ~trials_done ~now ~final:false
    end
  end

let finish t ~trials_done =
  if t.interval > 0. then
    print_line t ~trials_done ~now:(Unix.gettimeofday ()) ~final:true
