type t = {
  out : out_channel;
  interval : float;
  total_trials : int;
  resumed_trials : int;
  started : float;
  mutable last_report : float;
}

let create ?(out = stderr) ?(interval = 5.) ?(resumed_trials = 0)
    ~total_trials () =
  if total_trials < 0 then invalid_arg "Progress.create: negative total_trials";
  if resumed_trials < 0 || resumed_trials > total_trials then
    invalid_arg "Progress.create: resumed_trials outside [0, total_trials]";
  let now = Unix.gettimeofday () in
  { out; interval; total_trials; resumed_trials; started = now; last_report = now }

let silent () = create ~interval:0. ~total_trials:0 ()

let started t = t.started
let elapsed t = Unix.gettimeofday () -. t.started

(* Only this process's work counts toward throughput: trials recovered
   from a journal cost no wall time here, so they are subtracted before
   dividing — otherwise a resume reports inflated trials/s and an ETA
   that undershoots. *)
let fresh_done t ~trials_done = max 0 (trials_done - t.resumed_trials)

let rate t ~trials_done ~now =
  let dt = now -. t.started in
  if dt <= 0. then 0. else float_of_int (fresh_done t ~trials_done) /. dt

let eta t ~trials_done ~now =
  let remaining = t.total_trials - trials_done in
  if remaining <= 0 then 0.
  else begin
    let r = rate t ~trials_done ~now in
    if r <= 0. then Float.infinity else float_of_int remaining /. r
  end

let print_extra t extra =
  match extra with
  | None -> ()
  | Some f -> (
    match f () with
    | "" -> ()
    | line -> Printf.fprintf t.out "campaign: %s\n%!" line)

let print_line t ~trials_done ~now ~final =
  let r = rate t ~trials_done ~now in
  if final then
    Printf.fprintf t.out "campaign: %d fresh trials in %.1fs (%.2f trials/s)\n%!"
      (fresh_done t ~trials_done)
      (now -. t.started) r
  else begin
    let e = eta t ~trials_done ~now in
    let eta_str = if Float.is_finite e then Printf.sprintf "%.0fs" e else "?" in
    if t.resumed_trials > 0 then
      Printf.fprintf t.out
        "campaign: %d/%d trials (%d resumed; %.2f trials/s, eta %s)\n%!"
        trials_done t.total_trials t.resumed_trials r eta_str
    else
      Printf.fprintf t.out "campaign: %d/%d trials (%.2f trials/s, eta %s)\n%!"
        trials_done t.total_trials r eta_str
  end

let note ?extra t ~trials_done =
  if t.interval > 0. then begin
    let now = Unix.gettimeofday () in
    if now -. t.last_report >= t.interval then begin
      t.last_report <- now;
      print_line t ~trials_done ~now ~final:false;
      print_extra t extra
    end
  end

let finish ?extra t ~trials_done =
  if t.interval > 0. then begin
    print_line t ~trials_done ~now:(Unix.gettimeofday ()) ~final:true;
    print_extra t extra
  end
