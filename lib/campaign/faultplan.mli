(** Fault-injection plans for campaign crash-recovery testing.

    A plan describes one deliberate failure to inject into a campaign
    run; the CLI ([--fault]), [make faultinject-smoke] and the test
    suite use them to rehearse the crashes that long campaigns actually
    meet — SIGKILL between appends, power loss mid-append, a worker
    domain that raises, a straggler — and then assert that [--resume]
    reproduces the uninterrupted result bit-for-bit.

    The two crash plans simulate process death by raising
    {!Injected_crash} from the journaling path {e after} making the
    same bytes durable that a real crash would have left (a full
    fsynced line for [Crash_after_appends], a fsynced newline-less
    prefix for [Torn_write]) and by refusing to write anything
    afterwards.  The exception escapes {!Campaign.run} uncaught; the
    CLI maps it to exit code 70. *)

type t =
  | Crash_after_appends of int
      (** die immediately after the [N]th cell line is durably appended *)
  | Torn_write of int
      (** the [N]th cell append writes only a prefix of the line (no
          newline), then dies — the torn-tail footprint *)
  | Raising_worker of { task : int; failures : int }
      (** shard [task] (its plan id) raises [Failure] on its first
          [failures] attempts, then succeeds — exercises
          {!Worker_pool.run}'s bounded-retry supervision *)
  | Slow_worker of { task : int; delay : float }
      (** shard [task] sleeps [delay] seconds before running — a
          straggler, for scheduling/timeout behaviour *)

exception Injected_crash of string
(** Simulated process death.  Never caught inside the library. *)

val of_string : string -> (t, string) result
(** Parse the CLI syntax: [crash-after-appends=N], [torn-write=N],
    [raising-worker=TASK[:FAILURES]] (default 1 failure),
    [slow-worker=TASK[:SECONDS]] (default 0.05 s). *)

val to_string : t -> string
(** Inverse of {!of_string}. *)

(** {2 Armed plans — campaign-internal}

    Arming binds the per-run mutable counters (appends seen, failures
    injected, dead flag), so a single [t] can drive several runs. *)

type armed

val arm : t -> armed

val journal_append : armed option -> Journal.writer -> Journal.line -> unit
(** The campaign's only cell-append point: applies [Crash_after_appends]
    / [Torn_write], otherwise delegates to {!Journal.append}.  Once a
    crash plan has fired, every further call re-raises — a dead process
    writes nothing.
    @raise Injected_crash when a crash plan fires. *)

val wrap_task : armed option -> task:int -> (unit -> 'a) -> 'a
(** Wrap one shard execution: applies [Raising_worker] / [Slow_worker]
    when [task] matches the plan's target, otherwise runs [f] directly. *)
