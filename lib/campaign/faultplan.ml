type t =
  | Crash_after_appends of int
  | Torn_write of int
  | Raising_worker of { task : int; failures : int }
  | Slow_worker of { task : int; delay : float }

exception Injected_crash of string

let to_string = function
  | Crash_after_appends n -> Printf.sprintf "crash-after-appends=%d" n
  | Torn_write n -> Printf.sprintf "torn-write=%d" n
  | Raising_worker { task; failures } ->
    Printf.sprintf "raising-worker=%d:%d" task failures
  | Slow_worker { task; delay } -> Printf.sprintf "slow-worker=%d:%g" task delay

let of_string s =
  let split_eq s =
    match String.index_opt s '=' with
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  let split_colon v =
    match String.index_opt v ':' with
    | Some i ->
      (String.sub v 0 i, Some (String.sub v (i + 1) (String.length v - i - 1)))
    | None -> (v, None)
  in
  let int_of name v =
    match int_of_string_opt v with
    | Some i when i >= 1 -> Ok i
    | _ -> Error (Printf.sprintf "fault plan %s wants a positive integer, got %S" name v)
  in
  match split_eq (String.trim s) with
  | "crash-after-appends", Some v ->
    Result.map (fun n -> Crash_after_appends n) (int_of "crash-after-appends" v)
  | "torn-write", Some v -> Result.map (fun n -> Torn_write n) (int_of "torn-write" v)
  | "raising-worker", Some v -> (
    let task, rest = split_colon v in
    match (int_of_string_opt task, rest) with
    | Some task, None when task >= 0 -> Ok (Raising_worker { task; failures = 1 })
    | Some task, Some k when task >= 0 -> (
      match int_of_string_opt k with
      | Some failures when failures >= 1 -> Ok (Raising_worker { task; failures })
      | _ -> Error (Printf.sprintf "raising-worker failure count must be >= 1, got %S" k))
    | _ -> Error (Printf.sprintf "raising-worker wants TASK[:FAILURES], got %S" v))
  | "slow-worker", Some v -> (
    let task, rest = split_colon v in
    match (int_of_string_opt task, rest) with
    | Some task, None when task >= 0 -> Ok (Slow_worker { task; delay = 0.05 })
    | Some task, Some d when task >= 0 -> (
      match float_of_string_opt d with
      | Some delay when delay >= 0. -> Ok (Slow_worker { task; delay })
      | _ -> Error (Printf.sprintf "slow-worker delay must be >= 0, got %S" d))
    | _ -> Error (Printf.sprintf "slow-worker wants TASK[:SECONDS], got %S" v))
  | name, _ ->
    Error
      (Printf.sprintf
         "unknown fault plan %S (want crash-after-appends=N | torn-write=N | \
          raising-worker=TASK[:FAILURES] | slow-worker=TASK[:SECONDS])"
         name)

(* ------------------------------------------------------------------ *)
(* Armed plans: the mutable counters live here so one [t] value can be  *)
(* armed once per campaign run                                          *)
(* ------------------------------------------------------------------ *)

type armed = {
  plan : t;
  appends : int ref;  (* journal appends so far (header included); the
                         campaign serializes all journal writes *)
  raised : int Atomic.t;  (* injected worker failures so far *)
  dead : bool ref;  (* the simulated process has "crashed" *)
}

let arm plan = { plan; appends = ref 0; raised = Atomic.make 0; dead = ref false }

let crash a msg =
  a.dead := true;
  raise (Injected_crash msg)

(* The campaign's single cell-append point.  Crash plans fire *after*
   the decisive write is durable (Crash_after_appends) or *during* it
   (Torn_write), and once dead every later append re-raises: a crashed
   process writes nothing more. *)
let journal_append armed writer line =
  match armed with
  | None -> Journal.append writer line
  | Some a ->
    if !(a.dead) then crash a (to_string a.plan ^ " (already down)");
    incr a.appends;
    (match a.plan with
    | Crash_after_appends n ->
      Journal.append writer line;
      if !(a.appends) >= n then
        crash a (Printf.sprintf "crash-after-appends=%d tripped" n)
    | Torn_write n ->
      if !(a.appends) >= n then begin
        Journal.torn_append writer line;
        crash a (Printf.sprintf "torn-write=%d tripped" n)
      end
      else Journal.append writer line
    | Raising_worker _ | Slow_worker _ -> Journal.append writer line)

let wrap_task armed ~task f =
  match armed with
  | None -> f ()
  | Some a -> (
    match a.plan with
    | Raising_worker { task = t; failures } when t = task ->
      let k = Atomic.fetch_and_add a.raised 1 in
      if k < failures then
        failwith (Printf.sprintf "faultplan: raising-worker task %d (failure %d)" t (k + 1))
      else f ()
    | Slow_worker { task = t; delay } when t = task ->
      Unix.sleepf delay;
      f ()
    | _ -> f ())
