let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let run ~jobs ?(retries = 0) ?on_retry ?on_salvage ?on_result f tasks =
  if jobs < 1 then invalid_arg "Worker_pool.run: jobs must be >= 1";
  if retries < 0 then invalid_arg "Worker_pool.run: retries must be >= 0";
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs = min jobs n in
    let results = Array.make n None in
    let next = ref 0 in
    (* Requeued (task, attempt) pairs; retried before fresh tasks so a
       flaky shard drains promptly instead of piling up at the end. *)
    let requeued = ref [] in
    let failure = ref None in
    let lock = Mutex.create () in
    let record_failure e =
      if !failure = None then failure := Some e
    in
    (* Under [lock]. *)
    let take () =
      match !requeued with
      | (i, attempt) :: tl ->
        requeued := tl;
        Some (i, attempt)
      | [] ->
        if !next >= n then None
        else begin
          let i = !next in
          incr next;
          Some (i, 1)
        end
    in
    let record_success i r =
      results.(i) <- Some r;
      match on_result with
      | None -> ()
      | Some g -> ( try g i r with e -> record_failure e)
    in
    (* Under [lock]: a task raised on its [attempt]th try.  Requeue it
       while the retry budget lasts; give up (and stop the pool) after
       [retries + 1] total attempts. *)
    let record_attempt_failure i attempt e =
      if attempt <= retries then begin
        (match on_retry with
        | None -> ()
        | Some g -> ( try g ~task:i ~attempt e with e' -> record_failure e'));
        if !failure = None then requeued := (i, attempt + 1) :: !requeued
      end
      else record_failure e
    in
    let rec worker w () =
      Mutex.lock lock;
      if !failure <> None then Mutex.unlock lock
      else begin
        match take () with
        | None -> Mutex.unlock lock
        | Some (i, attempt) ->
          Mutex.unlock lock;
          (match f ~worker:w tasks.(i) with
          | r ->
            Mutex.lock lock;
            record_success i r;
            Mutex.unlock lock
          | exception e ->
            Mutex.lock lock;
            record_attempt_failure i attempt e;
            Mutex.unlock lock);
          worker w ()
      end
    in
    let domains = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    (* Supervision: join every domain; one that died outside the task
       try-block (async exception, runtime failure) surfaces here instead
       of hanging or vanishing. *)
    Array.iter
      (fun d -> try Domain.join d with e -> record_failure e)
      domains;
    (* Salvage pass: if a domain died between dequeuing a task and
       recording its outcome, that slot is still empty even though no
       failure was recorded against it — requeue and finish the work on
       this (surviving) domain. *)
    if !failure = None then begin
      for i = 0 to n - 1 do
        if results.(i) = None && !failure = None then
          (match on_salvage with
          | None -> ()
          | Some g -> ( try g ~task:i with e -> record_failure e));
        let rec attempt_from attempt =
          if results.(i) = None && !failure = None then begin
            match f ~worker:0 tasks.(i) with
            | r -> record_success i r
            | exception e ->
              if attempt <= retries then begin
                (match on_retry with
                | None -> ()
                | Some g -> ( try g ~task:i ~attempt e with e' -> record_failure e'));
                attempt_from (attempt + 1)
              end
              else record_failure e
          end
        in
        attempt_from 1
      done
    end;
    match !failure with
    | Some e -> raise e
    | None ->
      Array.map
        (function Some r -> r | None -> assert false (* every slot filled *))
        results
  end
