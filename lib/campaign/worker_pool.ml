let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let run ~jobs ?on_result f tasks =
  if jobs < 1 then invalid_arg "Worker_pool.run: jobs must be >= 1";
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs = min jobs n in
    let results = Array.make n None in
    let next = ref 0 in
    let failure = ref None in
    let lock = Mutex.create () in
    let record_failure e =
      if !failure = None then failure := Some e
    in
    let rec worker () =
      Mutex.lock lock;
      if !next >= n || !failure <> None then Mutex.unlock lock
      else begin
        let i = !next in
        incr next;
        Mutex.unlock lock;
        (match f tasks.(i) with
        | r ->
          Mutex.lock lock;
          results.(i) <- Some r;
          (match on_result with
          | None -> ()
          | Some g -> ( try g i r with e -> record_failure e));
          Mutex.unlock lock
        | exception e ->
          Mutex.lock lock;
          record_failure e;
          Mutex.unlock lock);
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    match !failure with
    | Some e -> raise e
    | None ->
      Array.map
        (function Some r -> r | None -> assert false (* every slot filled *))
        results
  end
