(** Throughput and ETA reporting for long campaigns.

    The reporter is fed trial-completion counts from inside the worker
    pool's serialized [on_result] callback, and rate-limits its own
    output to a configurable cadence.  It writes to [stderr] by default
    so journals and summary tables on [stdout] stay machine-readable.
    A cadence of [0.] disables output entirely (the mode used by tests
    and the golden smoke run).

    Resume-aware: trials recovered from a journal are declared up front
    via [resumed_trials] and excluded from the throughput denominator,
    so [trials/s] and the ETA describe only the work this process is
    actually doing. *)

type t

val create :
  ?out:out_channel ->
  ?interval:float ->
  ?resumed_trials:int ->
  total_trials:int ->
  unit ->
  t
(** [create ~total_trials ()] starts the clock now.  [interval] is the
    minimum seconds between reports (default [5.]; [0.] silences the
    reporter).  [resumed_trials] (default [0]) is how many of
    [total_trials] were recovered from a journal rather than computed
    here; they count toward completion but not toward the rate.
    @raise Invalid_argument unless
    [0 <= resumed_trials <= total_trials]. *)

val silent : unit -> t
(** A fresh never-printing reporter.  A function, not a shared constant:
    each call returns its own record, so concurrent campaigns never
    share mutable reporter state. *)

val note : ?extra:(unit -> string) -> t -> trials_done:int -> unit
(** Record that [trials_done] trials have completed in total — resumed
    plus fresh, monotone, not incremental; prints a [trials/s] + ETA
    line when the cadence allows.  [extra], if given, is evaluated only
    when a line is actually printed, and its (non-empty) result is
    printed as one further [campaign: ...] line — the hook for the
    telemetry-derived shard-timing view.  Call under the pool mutex. *)

val finish : ?extra:(unit -> string) -> t -> trials_done:int -> unit
(** Print the final throughput line (unless silenced): fresh trials
    only, over this process's wall time.  [extra] as in {!note}. *)

val rate : t -> trials_done:int -> now:float -> float
(** Fresh trials per second: [(trials_done - resumed_trials) / (now -
    started)].  Exposed for tests; [now] is a [Unix.gettimeofday]-style
    timestamp. *)

val eta : t -> trials_done:int -> now:float -> float
(** Seconds to finish the remaining [total_trials - trials_done] at the
    current {!rate}; [0.] when done, [infinity] when the rate is 0. *)

val started : t -> float
(** The creation timestamp (the clock {!rate} measures from). *)

val elapsed : t -> float
(** Seconds since [create]. *)
