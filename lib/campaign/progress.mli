(** Throughput and ETA reporting for long campaigns.

    The reporter is fed trial-completion counts from inside the worker
    pool's serialized [on_result] callback, and rate-limits its own
    output to a configurable cadence.  It writes to [stderr] by default
    so journals and summary tables on [stdout] stay machine-readable.
    A cadence of [0.] disables output entirely (the mode used by tests
    and the golden smoke run). *)

type t

val create :
  ?out:out_channel -> ?interval:float -> total_trials:int -> unit -> t
(** [create ~total_trials ()] starts the clock now.  [interval] is the
    minimum seconds between reports (default [5.]; [0.] silences the
    reporter). *)

val silent : t
(** Never prints; safe to share. *)

val note : t -> trials_done:int -> unit
(** Record that [trials_done] trials have completed in total (monotone,
    not incremental); prints a [trials/s] + ETA line when the cadence
    allows.  Call under the pool mutex. *)

val finish : t -> trials_done:int -> unit
(** Print the final throughput line (unless silenced). *)

val elapsed : t -> float
(** Seconds since [create]. *)
