(** Streaming per-cell statistics for Monte Carlo campaigns.

    An aggregate consumes one {!observation} per completed trial and
    retains only O(1) state: integer tallies, Welford summaries (via
    {!Nakamoto_prob.Stats.Summary}) for the per-trial chain metrics, and
    a saturating max-reorg-depth histogram.  Aggregates merge exactly
    (integers) or in the standard parallel-Welford way (floats); the
    campaign engine always merges shard aggregates in plan order, so the
    merged floats are bit-identical across worker counts. *)

type observation = {
  rounds : int;
  convergence_opportunities : int;
  adversary_blocks : int;
  honest_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  full : bool;
      (** whether the trial ran the full protocol: only then are the
          audit verdict, reorg depth, growth and quality meaningful *)
  violated : bool;  (** the Definition-1 audit found a violation *)
  max_reorg_depth : int;
  growth_rate : float;
  chain_quality : float;
}

val of_execution : Nakamoto_sim.Execution.result -> observation
(** Audits the run (consistency at the configured truncation, growth,
    quality) and flattens it to an observation. *)

val of_state_run : Nakamoto_sim.State_process.run -> observation
(** State-process trials carry only the counting statistics. *)

type t
(** Mutable accumulator. *)

val hist_depths : int
(** Reorg histogram resolution: depths [0 .. hist_depths - 2] get their
    own bin, anything deeper saturates into the last. *)

val create : unit -> t
val observe : t -> observation -> unit

val merge : t -> t -> t
(** [merge a b] combines as if [b]'s trials streamed in after [a]'s;
    inputs are unchanged. *)

val trials : t -> int
val total_rounds : t -> int
val audited_trials : t -> int
val violations : t -> int
val convergence_opportunities : t -> int
val adversary_blocks : t -> int
val honest_blocks : t -> int

val violation_rate : t -> float
(** Violating fraction of audited trials; [nan] when none were audited. *)

val wilson_interval : t -> (float * float) option
(** 95% Wilson score interval for the violation rate; [None] when no
    trials were audited. *)

val convergence_rate : t -> float
(** Convergence opportunities per round, pooled over all trials. *)

val adversary_rate : t -> float
val h_rate : t -> float
val h1_rate : t -> float
val max_reorg_depth : t -> int
val reorg_histogram : t -> int array
(** A copy; index = depth, last bin saturating, one entry per audited
    trial. *)

val growth_summary : t -> Nakamoto_prob.Stats.Summary.t
val quality_summary : t -> Nakamoto_prob.Stats.Summary.t
val reorg_summary : t -> Nakamoto_prob.Stats.Summary.t

(** Exact state, for the journal. *)
type snapshot = {
  s_trials : int;
  s_total_rounds : int;
  s_audited_trials : int;
  s_violations : int;
  s_convergence_opportunities : int;
  s_adversary_blocks : int;
  s_honest_blocks : int;
  s_h_rounds : int;
  s_h1_rounds : int;
  s_max_reorg_depth : int;
  s_reorg_hist : int array;
  s_growth : Nakamoto_prob.Stats.Summary.raw;
  s_quality : Nakamoto_prob.Stats.Summary.raw;
  s_reorg : Nakamoto_prob.Stats.Summary.raw;
}

val snapshot : t -> snapshot
val of_snapshot : snapshot -> t
(** Round-trips bit-identically with {!snapshot}.
    @raise Invalid_argument when the histogram length is not
    {!hist_depths} or a count is negative. *)
