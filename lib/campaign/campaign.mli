(** The campaign engine: a parameter grid, executed in parallel,
    aggregated deterministically, journaled for resume.

    Determinism contract: for a fixed spec, the outcome — including the
    journal bytes — is identical for every [jobs] value.  Three
    mechanisms combine to give this: (1) every trial's RNG is derived
    from [(seed, cell_index, trial_index)] alone
    ({!Nakamoto_prob.Rng.of_path}); (2) workers return per-shard
    aggregates that are merged in plan order, never in completion order;
    (3) journal lines are flushed in cell order, a completed
    out-of-order cell waiting for its predecessors.  Killing a campaign
    loses at most the unflushed suffix; rerunning with [resume] skips
    every journaled cell and recomputes only the rest.

    Crash-safety contract: every journal line is fsynced before the
    engine proceeds, so a line the journal claims is durable really is;
    a SIGKILL mid-append leaves at most one torn final line, which
    resume repairs (truncates, with a logged warning) rather than
    rejecting.  Worker domains are supervised: a shard whose worker
    raises or dies is requeued up to [retries] times, and because a
    shard's result depends only on [(seed, cell, trial)], a retried
    shard is bit-identical to a first-attempt one. *)

type cell_result = {
  cell : Spec.cell;
  aggregate : Aggregate.t;
  from_journal : bool;  (** recovered from the journal, not recomputed *)
}

type outcome = {
  spec : Spec.t;
  cells : cell_result array;  (** in cell order, one per grid cell *)
  fresh_trials : int;  (** trials actually executed by this run *)
  resumed_cells : int;  (** cells recovered from the journal *)
  jobs : int;  (** worker domains used *)
  elapsed : float;  (** wall-clock seconds for this run *)
  telemetry : Nakamoto_telemetry.Registry.Snapshot.t option;
      (** present iff [~telemetry] was passed to {!run}: the merged
          campaign-wide snapshot (coordinator + every fresh shard) *)
}

val run :
  ?jobs:int ->
  ?journal_path:string ->
  ?resume:bool ->
  ?retries:int ->
  ?fault:Faultplan.t ->
  ?progress_interval:float ->
  ?progress_out:out_channel ->
  ?log:(string -> unit) ->
  ?telemetry:string ->
  ?telemetry_clock:(unit -> float) ->
  Spec.t ->
  outcome
(** [run spec] executes the campaign.

    [jobs] defaults to {!Worker_pool.default_jobs}.  When
    [journal_path] is given, a header plus one fsynced line per
    completed cell is streamed to it; with [resume] also set and the
    file present, its cells are loaded instead of recomputed — after
    checking that the journal's {!Spec.fingerprint} matches, so a
    resume against an edited spec fails loudly.  A torn final line
    (SIGKILL mid-append) is repaired in place and logged; a journal
    with no usable state (empty, or torn before the header completed)
    is logged and overwritten as if starting fresh.  Without [resume],
    an existing journal at that path is overwritten.

    [retries] (default [2]) bounds how many times a failing shard is
    requeued before the campaign gives up and re-raises; retried shards
    are deterministic, so the outcome is unaffected.  [fault] arms a
    {!Faultplan} for crash-recovery testing.  [progress_interval]
    (seconds, default [0.] = silent) enables the {!Progress} reporter
    on [progress_out] (default [stderr]).  [log] receives one-line
    operational messages — resume summaries, torn-tail repairs, shard
    requeues (default: [stderr] prefixed with ["campaign: "]).

    {b Telemetry.}  [telemetry] names a directory (created if absent)
    that receives [telemetry.prom] (Prometheus text exposition) and
    [telemetry.jsonl] (one event per instrument) when the run
    completes.  Each worker shard records into a private registry —
    per-domain shard timings ([campaign_shard_seconds{domain=...}]),
    queue wait, and the executor's [sim_*] instruments — and the
    coordinator adds journal append/fsync latency plus retry/salvage
    counters; shard snapshots are merged in plan order, so the exported
    snapshot is deterministic for a fixed worker count and clock.
    Resumed cells contribute no telemetry (their work happened in an
    earlier process).  [telemetry_clock] (default [Unix.gettimeofday])
    feeds every span — inject a constant clock for byte-stable golden
    output.  The simulation results are bit-identical with and without
    telemetry.  When enabled, the progress reporter appends a derived
    line: p50/p99 shard time and the busiest domain.

    @raise Invalid_argument on an invalid spec, [jobs < 1],
    [retries < 0], or a fingerprint mismatch.
    @raise Failure on a corrupt journal file (mid-file damage or a
    duplicate header — never a torn tail).
    @raise Faultplan.Injected_crash when an armed crash plan fires. *)

val run_shard :
  ?telemetry:Nakamoto_telemetry.Registry.t ->
  Spec.t ->
  Spec.cell array ->
  Shard.t ->
  Aggregate.t
(** [run_shard spec cells sh] executes one work-queue shard — the trials
    [sh.trial_start .. sh.trial_stop - 1] of cell
    [cells.(sh.cell_index)] — and returns its aggregate.  Pure in
    [(spec.seed, cell, trial)]: this is the unit the in-process worker
    pool and the socket workers of the serve subsystem both execute, so
    a shard computed by a remote process is bit-identical to one
    computed here.  [cells] must be [Spec.cells spec]. *)

val region : Spec.cell -> string
(** ["SAFE"] when [c] clears the neat bound [2mu/ln(mu/nu)], ["ATTACK"]
    when [nu] exceeds the PSS attack threshold at this [c], ["GAP"] for
    the open region in between. *)

val totals : outcome -> Aggregate.t
(** All cells merged (in cell order) — the campaign-wide pool. *)

val summary_table : outcome -> Nakamoto_numerics.Table.t
(** Per-cell table: parameters, [c], violation rate with Wilson 95%
    interval, reorg depths, growth, quality, the analytic {!region}
    verdict, and whether the observations agree with it (SAFE cells must
    show zero violations; ATTACK cells are expected to show some within
    the simulated horizon; the GAP is the paper's open question and gets
    ["-"]). *)
