module Sim = Nakamoto_sim
module Stats = Nakamoto_prob.Stats

type observation = {
  rounds : int;
  convergence_opportunities : int;
  adversary_blocks : int;
  honest_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  full : bool;
  violated : bool;
  max_reorg_depth : int;
  growth_rate : float;
  chain_quality : float;
}

let of_execution (r : Sim.Execution.result) =
  let cons = Sim.Metrics.check_consistency r in
  let growth = Sim.Metrics.chain_growth r in
  {
    rounds = r.config.Sim.Config.rounds;
    convergence_opportunities = r.convergence_opportunities;
    adversary_blocks = r.adversary_blocks;
    honest_blocks = r.honest_blocks;
    h_rounds = r.h_rounds;
    h1_rounds = r.h1_rounds;
    full = true;
    violated = cons.violations > 0;
    max_reorg_depth = r.max_reorg_depth;
    growth_rate = growth.growth_rate;
    chain_quality = Sim.Metrics.chain_quality r;
  }

let of_state_run (r : Sim.State_process.run) =
  {
    rounds = r.rounds;
    convergence_opportunities = r.convergence_opportunities;
    adversary_blocks = r.adversary_blocks;
    honest_blocks = r.honest_blocks;
    h_rounds = r.h_rounds;
    h1_rounds = r.h1_rounds;
    full = false;
    violated = false;
    max_reorg_depth = 0;
    growth_rate = 0.;
    chain_quality = 0.;
  }

let hist_depths = 33

type t = {
  mutable trials : int;
  mutable total_rounds : int;
  mutable audited_trials : int;
  mutable violations : int;
  mutable convergence_opportunities : int;
  mutable adversary_blocks : int;
  mutable honest_blocks : int;
  mutable h_rounds : int;
  mutable h1_rounds : int;
  mutable max_reorg : int;
  reorg_hist : int array;
  mutable growth : Stats.Summary.t;
  mutable quality : Stats.Summary.t;
  mutable reorg : Stats.Summary.t;
}

let create () =
  {
    trials = 0;
    total_rounds = 0;
    audited_trials = 0;
    violations = 0;
    convergence_opportunities = 0;
    adversary_blocks = 0;
    honest_blocks = 0;
    h_rounds = 0;
    h1_rounds = 0;
    max_reorg = 0;
    reorg_hist = Array.make hist_depths 0;
    growth = Stats.Summary.create ();
    quality = Stats.Summary.create ();
    reorg = Stats.Summary.create ();
  }

let observe t (o : observation) =
  t.trials <- t.trials + 1;
  t.total_rounds <- t.total_rounds + o.rounds;
  t.convergence_opportunities <-
    t.convergence_opportunities + o.convergence_opportunities;
  t.adversary_blocks <- t.adversary_blocks + o.adversary_blocks;
  t.honest_blocks <- t.honest_blocks + o.honest_blocks;
  t.h_rounds <- t.h_rounds + o.h_rounds;
  t.h1_rounds <- t.h1_rounds + o.h1_rounds;
  if o.full then begin
    t.audited_trials <- t.audited_trials + 1;
    if o.violated then t.violations <- t.violations + 1;
    if o.max_reorg_depth > t.max_reorg then t.max_reorg <- o.max_reorg_depth;
    let bin = min o.max_reorg_depth (hist_depths - 1) in
    t.reorg_hist.(bin) <- t.reorg_hist.(bin) + 1;
    Stats.Summary.add t.growth o.growth_rate;
    Stats.Summary.add t.quality o.chain_quality;
    Stats.Summary.add t.reorg (float_of_int o.max_reorg_depth)
  end

let merge a b =
  {
    trials = a.trials + b.trials;
    total_rounds = a.total_rounds + b.total_rounds;
    audited_trials = a.audited_trials + b.audited_trials;
    violations = a.violations + b.violations;
    convergence_opportunities =
      a.convergence_opportunities + b.convergence_opportunities;
    adversary_blocks = a.adversary_blocks + b.adversary_blocks;
    honest_blocks = a.honest_blocks + b.honest_blocks;
    h_rounds = a.h_rounds + b.h_rounds;
    h1_rounds = a.h1_rounds + b.h1_rounds;
    max_reorg = max a.max_reorg b.max_reorg;
    reorg_hist = Array.init hist_depths (fun i -> a.reorg_hist.(i) + b.reorg_hist.(i));
    growth = Stats.Summary.merge a.growth b.growth;
    quality = Stats.Summary.merge a.quality b.quality;
    reorg = Stats.Summary.merge a.reorg b.reorg;
  }

let trials t = t.trials
let total_rounds t = t.total_rounds
let audited_trials t = t.audited_trials
let violations t = t.violations
let convergence_opportunities t = t.convergence_opportunities
let adversary_blocks t = t.adversary_blocks
let honest_blocks t = t.honest_blocks

let violation_rate t =
  if t.audited_trials = 0 then nan
  else float_of_int t.violations /. float_of_int t.audited_trials

let wilson_interval t =
  if t.audited_trials = 0 then None
  else Some (Stats.wilson_interval ~hits:t.violations ~trials:t.audited_trials)

let per_round t count =
  if t.total_rounds = 0 then nan
  else float_of_int count /. float_of_int t.total_rounds

let convergence_rate t = per_round t t.convergence_opportunities
let adversary_rate t = per_round t t.adversary_blocks
let h_rate t = per_round t t.h_rounds
let h1_rate t = per_round t t.h1_rounds
let max_reorg_depth t = t.max_reorg
let reorg_histogram t = Array.copy t.reorg_hist
let growth_summary t = t.growth
let quality_summary t = t.quality
let reorg_summary t = t.reorg

type snapshot = {
  s_trials : int;
  s_total_rounds : int;
  s_audited_trials : int;
  s_violations : int;
  s_convergence_opportunities : int;
  s_adversary_blocks : int;
  s_honest_blocks : int;
  s_h_rounds : int;
  s_h1_rounds : int;
  s_max_reorg_depth : int;
  s_reorg_hist : int array;
  s_growth : Stats.Summary.raw;
  s_quality : Stats.Summary.raw;
  s_reorg : Stats.Summary.raw;
}

let snapshot t =
  {
    s_trials = t.trials;
    s_total_rounds = t.total_rounds;
    s_audited_trials = t.audited_trials;
    s_violations = t.violations;
    s_convergence_opportunities = t.convergence_opportunities;
    s_adversary_blocks = t.adversary_blocks;
    s_honest_blocks = t.honest_blocks;
    s_h_rounds = t.h_rounds;
    s_h1_rounds = t.h1_rounds;
    s_max_reorg_depth = t.max_reorg;
    s_reorg_hist = Array.copy t.reorg_hist;
    s_growth = Stats.Summary.raw t.growth;
    s_quality = Stats.Summary.raw t.quality;
    s_reorg = Stats.Summary.raw t.reorg;
  }

let of_snapshot s =
  if Array.length s.s_reorg_hist <> hist_depths then
    invalid_arg "Aggregate.of_snapshot: histogram length mismatch";
  List.iter
    (fun c -> if c < 0 then invalid_arg "Aggregate.of_snapshot: negative count")
    [
      s.s_trials; s.s_total_rounds; s.s_audited_trials; s.s_violations;
      s.s_convergence_opportunities; s.s_adversary_blocks; s.s_honest_blocks;
      s.s_h_rounds; s.s_h1_rounds; s.s_max_reorg_depth;
    ];
  {
    trials = s.s_trials;
    total_rounds = s.s_total_rounds;
    audited_trials = s.s_audited_trials;
    violations = s.s_violations;
    convergence_opportunities = s.s_convergence_opportunities;
    adversary_blocks = s.s_adversary_blocks;
    honest_blocks = s.s_honest_blocks;
    h_rounds = s.s_h_rounds;
    h1_rounds = s.s_h1_rounds;
    max_reorg = s.s_max_reorg_depth;
    reorg_hist = Array.copy s.s_reorg_hist;
    growth = Stats.Summary.of_raw s.s_growth;
    quality = Stats.Summary.of_raw s.s_quality;
    reorg = Stats.Summary.of_raw s.s_reorg;
  }
