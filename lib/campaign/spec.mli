(** Parameter-grid specification for a Monte Carlo campaign.

    A spec is the cross product of four parameter axes — the per-query
    success probability [p], the miner count [n], the delay bound [Delta]
    and the adversarial fraction [nu] — times a trial count per cell.
    Cells are enumerated in a fixed row-major order ([p] outermost, [nu]
    innermost) so that cell indices, and therefore the per-trial RNG
    paths derived from them, are stable properties of the spec alone. *)

type mode =
  | Full_protocol
      (** each trial is a {!Nakamoto_sim.Execution.run}: real miners,
          message layer, adversary strategy and consistency audit *)
  | State_process
      (** each trial is a {!Nakamoto_sim.State_process.run}: the bare
          binomial mining law, orders of magnitude faster, no
          consistency audit *)

type t = {
  ps : float list;  (** per-query success probabilities, each in (0, 1) *)
  ns : int list;  (** miner counts, each >= 4 *)
  deltas : int list;  (** delay bounds, each >= 1 *)
  nus : float list;  (** adversarial fractions, each in [0, 1/2) *)
  trials_per_cell : int;  (** independent trials per grid cell, >= 1 *)
  rounds : int;  (** rounds simulated per trial, >= 1 *)
  mode : mode;
  strategy : Nakamoto_sim.Adversary.strategy;
      (** adversary for [Full_protocol] trials; ignored by
          [State_process] *)
  mining_mode : Nakamoto_sim.Config.mining_mode;
      (** executor for [Full_protocol] trials ([Exact] by default;
          [Aggregate]/[Skip] select the fast paths and exclude the
          balance strategy); ignored by [State_process] *)
  truncate : int;  (** the [T] of the consistency audit *)
  seed : int64;  (** campaign master seed *)
  shard_size : int;  (** trials per work-queue shard, >= 1 *)
}

type cell = {
  index : int;  (** position in {!cells}; the RNG path component *)
  p : float;
  n : int;
  delta : int;
  nu : float;
}

val default : t
(** A small full-protocol demonstration grid (one [p], one [n], one
    [Delta], three [nu] regimes). *)

val validate : t -> unit
(** @raise Invalid_argument when any axis is empty or out of range, or
    when a fast mining mode ([Aggregate]/[Skip]) is paired with the
    balance strategy, whose delay policy is per-recipient. *)

val cells : t -> cell array
(** [cells t] enumerates the grid in the canonical order. *)

val cell_count : t -> int

val trial_count : t -> int
(** [cell_count * trials_per_cell]. *)

val c_of_cell : cell -> float
(** The governing ratio [c = 1/(p n Delta)] at this cell. *)

val config_of_cell : t -> cell -> trial:int -> Nakamoto_sim.Config.t
(** [config_of_cell t cell ~trial] is the full-protocol configuration for
    one trial, with its seed derived via
    [Rng.seed_of_path ~seed:t.seed [cell.index; trial]]. *)

val state_config_of_cell : cell -> Nakamoto_sim.State_process.config

val trial_rng : t -> cell -> trial:int -> Nakamoto_prob.Rng.t
(** The deterministic stream for a [State_process] trial, addressed by
    [(seed, cell_index, trial_index)]. *)

val to_json : t -> string
(** The canonical serialization: one JSON object, no whitespace, fixed
    key order, floats rendered round-trip precisely ({!Json.float_str}),
    64-bit seeds as decimal strings; [mining_mode] is emitted only when
    it differs from the historical default [Exact], so pre-existing
    exact-mode specs keep their bytes and fingerprints.  Equal specs always produce equal
    bytes — the journal header, the wire protocol's campaign submission
    and {!fingerprint} all consume exactly this string, so there is one
    serialization to audit rather than three ad-hoc ones. *)

val of_json : string -> (t, string) result
(** Inverse of {!to_json} (also accepts semantically equal documents
    with different whitespace).  [Error] carries a one-line reason:
    malformed JSON, a missing field, an unknown [mode]/[strategy] kind,
    or an unsupported codec version. *)

val fingerprint : t -> int64
(** A SplitMix64 hash-chain over the bytes of {!to_json} — the spec's
    identity {e is} its canonical serialization.  Two specs with the
    same fingerprint run identical campaigns; the journal stores it so
    that a resume against a different spec is rejected rather than
    silently mixing incompatible results. *)

val describe : t -> string
(** One-line human summary — grid size, trials, rounds, seed and
    {!fingerprint} — used in resume/repair log messages so an operator
    can tell at a glance which campaign a journal belongs to. *)
