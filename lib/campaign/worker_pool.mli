(** A [Domain]-based worker pool over a mutex-protected work queue.

    [jobs] domains (the calling domain plus [jobs - 1] spawned ones) pull
    task indices from a shared cursor and write each result into its own
    slot, so the output array is in task order no matter which domain
    computed what.  The task function must not touch shared mutable state
    — campaign trials satisfy this because every trial derives a private
    RNG from its path and the simulator keeps all state per-run. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1 —
    leave one core for the aggregating/journaling main thread on big
    machines, degrade to sequential on small ones. *)

val run :
  jobs:int ->
  ?on_result:(int -> 'b -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [run ~jobs f tasks] computes [f] over every task and returns the
    results in task order.  [on_result i r] is invoked once per task as
    it completes, from the completing worker but serialized under the
    pool mutex — safe for journaling, aggregation and progress output.
    Completion order is scheduling-dependent; anything that must be
    deterministic belongs after the call (or must reorder internally, as
    the campaign journal does).  If [f] or [on_result] raises, the pool
    stops issuing new tasks, joins every domain, and re-raises the first
    exception.  [jobs] is clamped to [[1, Array.length tasks]].
    @raise Invalid_argument if [jobs < 1]. *)
