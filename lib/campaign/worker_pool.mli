(** A [Domain]-based worker pool over a mutex-protected work queue, with
    bounded-retry supervision.

    [jobs] domains (the calling domain plus [jobs - 1] spawned ones) pull
    task indices from a shared cursor and write each result into its own
    slot, so the output array is in task order no matter which domain
    computed what.  The task function must not touch shared mutable state
    — campaign trials satisfy this because every trial derives a private
    RNG from its path and the simulator keeps all state per-run.  That
    same purity is what makes retries sound: re-running a task yields
    bit-identical results, so a requeued shard cannot perturb the
    campaign's determinism contract. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1 —
    leave one core for the aggregating/journaling main thread on big
    machines, degrade to sequential on small ones. *)

val run :
  jobs:int ->
  ?retries:int ->
  ?on_retry:(task:int -> attempt:int -> exn -> unit) ->
  ?on_salvage:(task:int -> unit) ->
  ?on_result:(int -> 'b -> unit) ->
  (worker:int -> 'a -> 'b) ->
  'a array ->
  'b array
(** [run ~jobs f tasks] computes [f] over every task and returns the
    results in task order.  [f ~worker] receives the index of the domain
    executing it — [0] for the calling domain, [1 .. jobs-1] for spawned
    ones — so tasks can label per-domain telemetry; the index must not
    influence the result.  [on_result i r] is invoked once per task as
    it completes, from the completing worker but serialized under the
    pool mutex — safe for journaling, aggregation and progress output.
    Completion order is scheduling-dependent; anything that must be
    deterministic belongs after the call (or must reorder internally, as
    the campaign journal does).

    {b Supervision.}  A task that raises is requeued and re-attempted up
    to [retries] more times (default [0]); [on_retry ~task ~attempt e]
    is called (under the pool mutex) before each requeue.  Only when a
    task exhausts its [retries + 1] attempts does the pool stop issuing
    work, join every domain, and re-raise that exception; an [on_result]
    exception is never retried and fails the pool directly.  Domains are
    always joined — one that dies outside the task body (an async
    exception, say) is detected, and any task it abandoned mid-flight is
    recomputed on the calling domain within the same retry budget, so a
    dead domain costs throughput, never results; [on_salvage ~task] is
    called once per such abandoned task before it is recomputed.  [jobs]
    is clamped to [[1, Array.length tasks]].
    @raise Invalid_argument if [jobs < 1] or [retries < 0]. *)
