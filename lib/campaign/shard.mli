(** Deterministic decomposition of a campaign into work-queue units.

    A shard is a contiguous run of trials of one cell.  The plan — which
    shards exist and in what order — is a pure function of the grid shape
    and the shard size, never of worker count or scheduling.  Workers may
    finish shards in any order; because every shard knows its position,
    per-cell aggregates are always merged back in plan order, which is
    what makes campaign results bit-identical across [--jobs] settings. *)

type t = {
  id : int;  (** position in the plan *)
  cell_index : int;
  trial_start : int;  (** first trial index, inclusive *)
  trial_stop : int;  (** last trial index, exclusive *)
  slot : int;  (** position among the shards of the same cell *)
}

val trials : t -> int

val per_cell : trials_per_cell:int -> shard_size:int -> int
(** Number of shards each cell decomposes into ([ceil (trials/size)]).
    @raise Invalid_argument unless both arguments are positive. *)

val plan :
  cells:int ->
  trials_per_cell:int ->
  shard_size:int ->
  skip:(int -> bool) ->
  t array
(** [plan ~cells ~trials_per_cell ~shard_size ~skip] enumerates the
    shards of every cell whose index fails [skip], in (cell, slot) order.
    [skip] is how a resumed campaign excises already-journaled cells
    without renumbering anything: surviving shards keep the cell indices
    and trial ranges they would have had in a fresh run.
    @raise Invalid_argument on a negative cell count or nonpositive
    [trials_per_cell] or [shard_size]. *)
