(** The continuous-time (Poisson) limit of the Δ-delay model.

    As rounds shrink ([p -> 0] at fixed [c = 1/(p n Delta)]), the
    round-based mining process converges to a Poisson process: blocks
    arrive at rate [lambda = p n] per unit time, each honest with
    probability [mu].  The continuous analogue of a convergence
    opportunity is a {e Δ-isolated honest arrival} — an honest block with
    no other honest block within [Delta] on either side — whose rate is
    [lambda mu exp (-2 lambda mu Delta)].

    Requiring that rate to exceed the adversary's [lambda nu] gives
    [exp (-2 mu / c) > nu / mu], i.e. exactly the paper's neat bound
    [c > 2 mu / ln (mu / nu)] — the continuous limit is where the bound's
    closed form lives, and this module lets the test suite and bench
    verify both that formula and the discrete chain's convergence to it. *)

type config = {
  lambda : float;  (** total arrival rate (blocks per unit time), > 0 *)
  mu : float;  (** honest fraction of arrivals, in (0, 1] *)
  delta : float;  (** the delay bound, > 0, in the same time unit *)
}

val validate : config -> unit
(** @raise Invalid_argument on out-of-range fields. *)

val isolated_rate : config -> float
(** [lambda mu exp (-2 lambda mu delta)] — Δ-isolated honest arrivals per
    unit time. *)

val adversary_rate : config -> float
(** [lambda (1 - mu)]. *)

val consistency_margin : config -> float
(** [log (isolated_rate) - log (adversary_rate)]: positive iff the
    continuous loner condition holds.  [infinity] when [mu = 1.]. *)

val neat_bound_equivalent : config -> bool
(** Checks the algebraic identity that {!consistency_margin} [> 0] iff
    [c > 2 mu / ln (mu / nu)] where [c = 1 / (lambda delta)] — evaluated
    numerically at this configuration (used as a self-test). *)

type run = {
  horizon : float;  (** simulated time *)
  arrivals : int;  (** total blocks *)
  honest_arrivals : int;
  isolated_honest : int;  (** Δ-isolated honest arrivals *)
  adversary_arrivals : int;
}

val simulate : rng:Nakamoto_prob.Rng.t -> config -> horizon:float -> run
(** [simulate ~rng config ~horizon] draws the Poisson process (exponential
    inter-arrival times, honest/adversarial thinning) and counts
    Δ-isolated honest arrivals with a streaming three-point window.
    @raise Invalid_argument on a non-positive horizon or invalid config. *)

val discrete_rate_per_time : p:float -> n:float -> mu:float -> delta_rounds:int -> float
(** The round-based rate [abar^(2 Delta) alpha1] expressed per unit of
    continuous time when one round is [1 / (n p ... )]... concretely:
    [abar^(2 delta_rounds) * alpha1] per round — helper for the
    convergence-of-limits table (bench section CONT).
    @raise Invalid_argument on out-of-range arguments. *)
