type t = N | H of int

let of_block_count k =
  if k < 0 then invalid_arg "Round_state.of_block_count: negative count";
  if k = 0 then N else H k

let is_h = function H _ -> true | N -> false
let is_h1 = function H 1 -> true | H _ | N -> false
let block_count = function N -> 0 | H k -> k

let to_char = function
  | N -> 'N'
  | H 1 -> '1'
  | H _ -> 'H'

let equal a b =
  match (a, b) with
  | N, N -> true
  | H x, H y -> x = y
  | N, H _ | H _, N -> false
