(** Post-execution audits: consistency (Definition 1), chain growth, chain
    quality.

    The consistency audit is the literal quantifier structure of the
    paper's definition, evaluated over the recorded snapshots: for all
    snapshot rounds [r <= s] and honest players [i, j], all but the last
    [T] blocks of [i]'s chain at [r] must be a prefix of [j]'s chain at
    [s].  Because common ancestors in a tree are totally ordered, "prefix
    of every player's chain at [s]" is equivalent to "prefix of the meet
    of all tips at [s]", which the audit exploits. *)

type consistency_report = {
  truncate : int;  (** the [T] audited *)
  pairs_checked : int;
  violations : int;
  worst_violation_depth : int;
      (** max over violating pairs of how many blocks beyond [T] the
          prefix property failed by; [0] when no violations *)
}

val check_consistency : ?truncate:int -> Execution.result -> consistency_report
(** [check_consistency result] audits the snapshots; [truncate] defaults to
    the configured [result.config.truncate].
    @raise Invalid_argument on negative [truncate]. *)

val max_disagreement : Execution.result -> int
(** [max_disagreement result] is the largest pairwise divergence (in
    blocks) between two honest tips within any single snapshot — the
    "split depth" sustained by the balance attack. *)

type growth_report = {
  final_height : int;  (** height of the lowest honest tip at the end *)
  rounds : int;
  growth_rate : float;  (** final_height / rounds *)
}

val chain_growth : Execution.result -> growth_report
(** Chain growth, measured on the slowest honest miner (the property's
    quantifier is "the chain of (every) honest player grew by..."). *)

val chain_quality : Execution.result -> float
(** [chain_quality result] is the honest fraction of the blocks on the
    first honest miner's final chain (genesis excluded). *)

val agreed_prefix_height : Execution.result -> Execution.snapshot -> int
(** [agreed_prefix_height result snap] is the height of the deepest block
    all honest players agree on in [snap]. *)
