let base ~seed =
  { Config.default with seed }

let check_nu nu =
  if not (nu > 0. && nu < 0.5) then
    invalid_arg "Scenarios: nu must lie in (0, 1/2)"

let honest_baseline ~seed =
  Config.with_c { (base ~seed) with nu = 0.; strategy = Adversary.Idle } ~c:2.5

let neat_bound_c ~nu =
  let mu = 1. -. nu in
  2. *. mu /. log (mu /. nu)

let at_c ~seed ~nu ~c ~rounds =
  check_nu nu;
  (* The audit's T sits well below the attack's reorg target so that the
     pre-release fork is witnessable for a whole window of snapshots, not
     only at the instant of release. *)
  Config.with_c
    {
      (base ~seed) with
      nu;
      rounds;
      strategy = Adversary.Private_chain { reorg_target = 12 };
      truncate = 6;
    }
    ~c

let safe_zone ~seed ~nu =
  (* Comfortably above the neat bound: consistency should hold. *)
  at_c ~seed ~nu ~c:(3. *. neat_bound_c ~nu) ~rounds:6000

let attack_zone ~seed ~nu =
  check_nu nu;
  (* Below the PSS attack threshold 1/c > 1/nu - 1/(1-nu): the private
     miner's drift beats the Delta-throttled honest chain.  Snapshots are
     taken densely because the forks the attack creates are short-lived. *)
  let c_attack = 1. /. ((1. /. nu) -. (1. /. (1. -. nu))) in
  let cfg = at_c ~seed ~nu ~c:(0.5 *. c_attack) ~rounds:6000 in
  { cfg with snapshot_interval = 20 }

let selfish ~seed ~nu =
  check_nu nu;
  Config.with_c
    {
      (base ~seed) with
      nu;
      rounds = 20_000;
      strategy = Adversary.Selfish_mining;
      truncate = 8;
      snapshot_interval = 500;
    }
    ~c:4.

type spec = {
  n : int;
  nu : float;
  c : float;
  delta : int;
  rounds : int;
  seed : int64;
  strategy : Adversary.strategy;
  delay : Nakamoto_net.Network.delay_policy option;
  tie_break : Nakamoto_chain.Block_tree.tie_break;
  mining_mode : Config.mining_mode;
}

let default_spec =
  {
    n = 40;
    nu = 0.25;
    c = 2.5;
    delta = 4;
    rounds = 2_000;
    seed = 42L;
    strategy = Adversary.Idle;
    delay = None;
    tie_break = Nakamoto_chain.Block_tree.Prefer_honest;
    mining_mode = Config.Exact;
  }

let of_spec s =
  let cfg =
    {
      Config.default with
      n = s.n;
      nu = s.nu;
      delta = s.delta;
      rounds = s.rounds;
      seed = s.seed;
      strategy = s.strategy;
      delay_override = s.delay;
      tie_break = s.tie_break;
      mining_mode = s.mining_mode;
      snapshot_interval = max 1 (s.rounds / 20);
      truncate = 6;
    }
  in
  let cfg = Config.with_c cfg ~c:s.c in
  Config.validate cfg;
  cfg

let strategy_to_string = function
  | Adversary.Idle -> "idle"
  | Adversary.Private_chain { reorg_target } ->
    Printf.sprintf "private-chain(reorg_target=%d)" reorg_target
  | Adversary.Balance { group_boundary } ->
    Printf.sprintf "balance(group_boundary=%d)" group_boundary
  | Adversary.Selfish_mining -> "selfish-mining"

let delay_to_string = function
  | None -> "strategy-default"
  | Some Nakamoto_net.Network.Immediate -> "immediate"
  | Some (Nakamoto_net.Network.Fixed d) -> Printf.sprintf "fixed(%d)" d
  | Some Nakamoto_net.Network.Uniform_random -> "uniform-random"
  | Some Nakamoto_net.Network.Maximal -> "maximal"
  | Some (Nakamoto_net.Network.Per_recipient _) -> "per-recipient(<fun>)"

let spec_to_string s =
  Printf.sprintf
    "{n=%d; nu=%.4f; c=%.4f; delta=%d; rounds=%d; seed=%Ld; strategy=%s; \
     delay=%s; tie_break=%s; mode=%s}"
    s.n s.nu s.c s.delta s.rounds s.seed
    (strategy_to_string s.strategy)
    (delay_to_string s.delay)
    (match s.tie_break with
    | Nakamoto_chain.Block_tree.Prefer_honest -> "prefer-honest"
    | Nakamoto_chain.Block_tree.First_seen -> "first-seen")
    (match s.mining_mode with
    | Config.Exact -> "exact"
    | Config.Aggregate -> "aggregate"
    | Config.Skip -> "skip")

let split_world ~seed =
  let cfg =
    {
      (base ~seed) with
      nu = 0.3;
      strategy = Adversary.Balance { group_boundary = 14 };
      rounds = 6000;
      truncate = 12;
    }
  in
  Config.with_c cfg ~c:1.5
