let base ~seed =
  { Config.default with seed }

let check_nu nu =
  if not (nu > 0. && nu < 0.5) then
    invalid_arg "Scenarios: nu must lie in (0, 1/2)"

let honest_baseline ~seed =
  Config.with_c { (base ~seed) with nu = 0.; strategy = Adversary.Idle } ~c:2.5

let neat_bound_c ~nu =
  let mu = 1. -. nu in
  2. *. mu /. log (mu /. nu)

let at_c ~seed ~nu ~c ~rounds =
  check_nu nu;
  (* The audit's T sits well below the attack's reorg target so that the
     pre-release fork is witnessable for a whole window of snapshots, not
     only at the instant of release. *)
  Config.with_c
    {
      (base ~seed) with
      nu;
      rounds;
      strategy = Adversary.Private_chain { reorg_target = 12 };
      truncate = 6;
    }
    ~c

let safe_zone ~seed ~nu =
  (* Comfortably above the neat bound: consistency should hold. *)
  at_c ~seed ~nu ~c:(3. *. neat_bound_c ~nu) ~rounds:6000

let attack_zone ~seed ~nu =
  check_nu nu;
  (* Below the PSS attack threshold 1/c > 1/nu - 1/(1-nu): the private
     miner's drift beats the Delta-throttled honest chain.  Snapshots are
     taken densely because the forks the attack creates are short-lived. *)
  let c_attack = 1. /. ((1. /. nu) -. (1. /. (1. -. nu))) in
  let cfg = at_c ~seed ~nu ~c:(0.5 *. c_attack) ~rounds:6000 in
  { cfg with snapshot_interval = 20 }

let selfish ~seed ~nu =
  check_nu nu;
  Config.with_c
    {
      (base ~seed) with
      nu;
      rounds = 20_000;
      strategy = Adversary.Selfish_mining;
      truncate = 8;
      snapshot_interval = 500;
    }
    ~c:4.

let split_world ~seed =
  let cfg =
    {
      (base ~seed) with
      nu = 0.3;
      strategy = Adversary.Balance { group_boundary = 14 };
      rounds = 6000;
      truncate = 12;
    }
  in
  Config.with_c cfg ~c:1.5
