(** Canned simulation scenarios used by examples, benches, and tests.

    All are scaled-down (small [n], small [Delta]) but hold [c = 1/(pn*Delta)]
    at meaningful positions relative to the paper's bounds, which is the
    dimension the theory actually depends on (see DESIGN.md, substitution
    table). *)

val honest_baseline : seed:int64 -> Config.t
(** No active adversary, moderate [c]: the chain should converge and stay
    consistent with zero violations. *)

val safe_zone : seed:int64 -> nu:float -> Config.t
(** Private-chain adversary with [c] placed above our bound
    [2 mu / ln (mu/nu)] for the given [nu]: consistency should hold.
    @raise Invalid_argument unless [0 < nu < 1/2]. *)

val attack_zone : seed:int64 -> nu:float -> Config.t
(** Private-chain adversary with [c] placed below the PSS attack line for
    the given [nu] (adversary provably wins eventually): expect deep
    reorgs.
    @raise Invalid_argument unless [0 < nu < 1/2]. *)

val split_world : seed:int64 -> Config.t
(** Balance adversary keeping two halves of the honest miners apart. *)

val selfish : seed:int64 -> nu:float -> Config.t
(** Eyal–Sirer selfish mining at a comfortable [c] (the attack targets
    revenue share, not consistency).
    @raise Invalid_argument unless [0 < nu < 1/2]. *)

val at_c : seed:int64 -> nu:float -> c:float -> rounds:int -> Config.t
(** Fully parameterized private-chain scenario at an explicit [c]. *)
