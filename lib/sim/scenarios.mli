(** Canned simulation scenarios used by examples, benches, and tests.

    All are scaled-down (small [n], small [Delta]) but hold [c = 1/(pn*Delta)]
    at meaningful positions relative to the paper's bounds, which is the
    dimension the theory actually depends on (see DESIGN.md, substitution
    table). *)

val honest_baseline : seed:int64 -> Config.t
(** No active adversary, moderate [c]: the chain should converge and stay
    consistent with zero violations. *)

val safe_zone : seed:int64 -> nu:float -> Config.t
(** Private-chain adversary with [c] placed above our bound
    [2 mu / ln (mu/nu)] for the given [nu]: consistency should hold.
    @raise Invalid_argument unless [0 < nu < 1/2]. *)

val attack_zone : seed:int64 -> nu:float -> Config.t
(** Private-chain adversary with [c] placed below the PSS attack line for
    the given [nu] (adversary provably wins eventually): expect deep
    reorgs.
    @raise Invalid_argument unless [0 < nu < 1/2]. *)

val split_world : seed:int64 -> Config.t
(** Balance adversary keeping two halves of the honest miners apart. *)

val selfish : seed:int64 -> nu:float -> Config.t
(** Eyal–Sirer selfish mining at a comfortable [c] (the attack targets
    revenue share, not consistency).
    @raise Invalid_argument unless [0 < nu < 1/2]. *)

val at_c : seed:int64 -> nu:float -> c:float -> rounds:int -> Config.t
(** Fully parameterized private-chain scenario at an explicit [c]. *)

(** {1 Scenario-from-spec}

    The generative surface of the property-test layer: a [spec] is a
    plain, printable record over the paper's parameter region; an
    arbitrary valid [spec] maps to a runnable {!Config.t}.  Generators in
    {!Nakamoto_proptest.Domain_gen} produce and shrink these. *)

type spec = {
  n : int;  (** total miners, [>= 4] *)
  nu : float;  (** adversarial fraction in [0, 1/2) *)
  c : float;  (** the central ratio [1/(p n delta)], [> 0] *)
  delta : int;  (** maximum message delay, [>= 1] *)
  rounds : int;  (** execution length *)
  seed : int64;
  strategy : Adversary.strategy;
  delay : Nakamoto_net.Network.delay_policy option;  (** override, or [None] *)
  tie_break : Nakamoto_chain.Block_tree.tie_break;
  mining_mode : Config.mining_mode;
}

val default_spec : spec
(** The {!Config.default} operating point as a spec. *)

val of_spec : spec -> Config.t
(** [of_spec s] is the validated configuration at the spec's parameters
    ([p] derived from [c]; snapshot cadence [rounds / 20], audit window
    [T = 6]).
    @raise Invalid_argument when the spec violates any model constraint
    (e.g. implied [p] outside (0, 1], [n < 4], aggregate mode with a
    recipient-dependent delay). *)

val spec_to_string : spec -> string
(** One-line rendering used in property-failure reports. *)
