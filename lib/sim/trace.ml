type entry = {
  round : int;
  honest_blocks : int;
  adversary_blocks : int;
  releases : int;
  best_height : int;
  reorg_depth : int;
}

type t = { mutable rev_entries : entry list; mutable last_round : int }

let header = "# nakamoto trace v1"
let columns = "round honest_blocks adversary_blocks releases best_height reorg_depth"

let create () = { rev_entries = []; last_round = 0 }

let record t e =
  if e.round <= t.last_round then
    invalid_arg "Trace.record: rounds must be strictly increasing";
  t.rev_entries <- e :: t.rev_entries;
  t.last_round <- e.round

let length t = List.length t.rev_entries
let entries t = List.rev t.rev_entries

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("# " ^ columns ^ "\n");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %d %d %d\n" e.round e.honest_blocks
           e.adversary_blocks e.releases e.best_height e.reorg_depth))
    (entries t);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  (match lines with
  | first :: _ when String.trim first = header -> ()
  | _ -> failwith "Trace.of_string: missing v1 header");
  let t = create () in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ a; b; c; d; e; f ] -> (
          match
            ( int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
              int_of_string_opt d, int_of_string_opt e, int_of_string_opt f )
          with
          | Some round, Some hb, Some ab, Some rel, Some bh, Some rd ->
            record t
              {
                round;
                honest_blocks = hb;
                adversary_blocks = ab;
                releases = rel;
                best_height = bh;
                reorg_depth = rd;
              }
          | _ ->
            failwith
              (Printf.sprintf "Trace.of_string: non-numeric field on line %d"
                 (lineno + 1)))
        | _ ->
          failwith
            (Printf.sprintf "Trace.of_string: expected 6 fields on line %d"
               (lineno + 1))
      end)
    lines;
  t

let equal a b = entries a = entries b

let digest t =
  let mix = Nakamoto_prob.Rng.splitmix64 in
  let feed acc v = mix (Int64.add acc (Int64.of_int v)) in
  List.fold_left
    (fun acc e ->
      let acc = feed acc e.round in
      let acc = feed acc e.honest_blocks in
      let acc = feed acc e.adversary_blocks in
      let acc = feed acc e.releases in
      let acc = feed acc e.best_height in
      feed acc e.reorg_depth)
    (mix 0x9e3779b97f4a7c15L) (entries t)

let capture config =
  let t = create () in
  let on_round (r : Execution.round_report) =
    record t
      {
        round = r.round_number;
        honest_blocks = r.honest_mined;
        adversary_blocks = r.adversary_successes;
        releases = r.releases_issued;
        best_height = r.best_height;
        reorg_depth = r.reorg_depth;
      }
  in
  ignore (Execution.run ~on_round config);
  t

let summarize t =
  let es = entries t in
  let total f = List.fold_left (fun acc e -> acc + f e) 0 es in
  let maxi f = List.fold_left (fun acc e -> max acc (f e)) 0 es in
  Printf.sprintf
    "%d rounds: %d honest blocks, %d adversarial successes, %d releases, \
     final height %d, deepest reorg %d"
    (length t)
    (total (fun e -> e.honest_blocks))
    (total (fun e -> e.adversary_blocks))
    (total (fun e -> e.releases))
    (maxi (fun e -> e.best_height))
    (maxi (fun e -> e.reorg_depth))
