(** Adversarial strategies (capability ② of the model).

    The adversary controls [nu * n] miners whose [q] sequential oracle
    queries per round yield [binom(nu*n, p)] blocks; it sees every honest
    block the moment it is broadcast (it routes all messages) and chooses
    what to mine on and what to release to whom, with per-recipient delays
    up to [Delta] (enforced by {!Nakamoto_net.Network}). *)

type audience =
  | All_honest
      (** every honest miner — a broadcast in all but name, which the
          aggregate executor routes through the O(1) Δ-ring lane instead
          of one enqueue per recipient *)
  | Only of int list  (** the listed honest miner indices *)

type release = {
  audience : audience;
  delay : int;  (** requested delay; the network clamps to [1, Delta] *)
  blocks : Nakamoto_chain.Block.t list;
}

type strategy =
  | Idle
      (** corrupted miners do nothing — the honest-only baseline *)
  | Private_chain of { reorg_target : int }
      (** The PSS Remark 8.5 attack: mine privately on a withheld fork;
          once the private chain both exceeds the public chain and is
          [reorg_target] blocks past the fork point, release it to
          everyone, unwinding at least [reorg_target] public blocks.  If
          the public chain overtakes the private one the adversary adopts
          the public tip and forks afresh. *)
  | Balance of { group_boundary : int }
      (** Split-world attack: honest miners [0 .. group_boundary-1] form
          group A, the rest group B (the matching cross-group delay policy
          comes from {!delay_policy_for}).  The adversary always mines on
          the shorter group-chain and releases instantly to that group
          only, keeping the two halves in disagreement. *)
  | Selfish_mining
      (** The Eyal–Sirer block-withholding strategy (gamma = 0: our
          deterministic tie-break prefers honest blocks, so the selfish
          miner loses every tie).  Mine privately on a withheld branch;
          when the public chain catches up to one behind, publish the
          whole branch to orphan the honest work; when it ties, race;
          when it passes, abandon and re-fork.  Degrades chain quality
          below the honest fraction once [nu] is large enough — the
          classic revenue curve reproduced by the bench's EXT2 section. *)

type t

val create : strategy:strategy -> honest_count:int -> t
(** @raise Invalid_argument if [honest_count <= 0], a [reorg_target < 1],
    or a [group_boundary] outside [1, honest_count - 1]. *)

val strategy : t -> strategy

val observe : t -> Nakamoto_chain.Block.t list -> unit
(** [observe t blocks] feeds honest blocks to the adversary's omniscient
    view the round they are mined. *)

val act :
  t -> round:int -> successes:int -> release list
(** [act t ~round ~successes] lets the adversary spend [successes] block
    creations (its binomial draw for the round) and returns the releases
    it wants delivered.  @raise Invalid_argument on negative inputs. *)

val advance_empty : t -> round:int -> rounds:int -> unit
(** [advance_empty t ~round ~rounds] fast-forwards the adversary across
    [rounds] consecutive rounds (the first being [round]) in which it
    mines nothing and observes nothing — the skip executor's bulk
    advance.  Equivalent to [rounds] calls of [act ~successes:0]: every
    strategy is event-driven, so those calls are idempotent no-ops past
    the first.  The single head call is executed for real, which also
    verifies the quiescence contract at run time.
    @raise Invalid_argument on negative inputs.
    @raise Failure if the strategy tries to release during the span
    (impossible for the shipped strategies; a guard for future
    time-dependent ones). *)

val delay_policy_for :
  strategy -> delta:int -> honest_count:int -> Nakamoto_net.Network.delay_policy
(** [delay_policy_for strategy ~delta ~honest_count] is the delay rule the
    adversary imposes on honest broadcasts: maximal delay under
    [Private_chain] (starve propagation), cross-group-[Delta] /
    in-group-immediate under [Balance], immediate under [Idle]. *)

val view : t -> Nakamoto_chain.Block_tree.t
(** The adversary's omniscient block tree (every block ever mined —
    withheld ones included). *)

val private_tip : t -> Nakamoto_chain.Block.t
(** Current private mining tip (equals the best public tip under [Idle]). *)

val blocks_mined : t -> int
val reorgs_caused : t -> int
(** Number of [Private_chain] releases executed so far. *)
