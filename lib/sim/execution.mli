(** The round-by-round protocol execution of Section III.

    Each round, in order: (1) every honest miner drains its inbox and
    adopts the longest known chain; (2) every honest miner makes its single
    parallel [H]-query and broadcasts on success (the adversary's routing
    chooses per-recipient delays, capped at [Delta]); (3) the adversary,
    who saw everything instantly, spends its [binom(nu*n, p)] sequential
    queries and releases whatever its strategy dictates.  Per-miner best
    tips are snapshotted on a configurable cadence for the consistency
    audit in {!Metrics}.

    Three executors implement the same round semantics
    (see {!Config.mining_mode}):

    - [Exact] walks every honest miner and every sequential adversary
      query individually — O(n) per round, bit-for-bit the historical
      executor, and the mode behind the committed campaign goldens.
    - [Aggregate] draws per-round success {e counts} from the exact
      binomial law, selects winners by partial Fisher–Yates, routes
      broadcasts through the network's shared Δ-ring lane, and keeps one
      shared "crowd" view for every miner never individually touched —
      O(blocks mined + messages due) per round.  Distribution-identical
      to [Exact] (same law for every statistic in {!result}), not
      bit-identical, and restricted to recipient-independent delay
      policies ([Immediate], [Fixed], [Maximal]).
    - [Skip] is Aggregate that never iterates an empty round: the gap to
      the next block-bearing round is sampled from
      Geometric(1 - (1-p)^(mu n + nu n)) jointly with the conditional
      success counts, the Δ-ring / adversary / convergence pattern are
      fast-forwarded across the span in O(1), and only rounds where
      blocks appear or deliveries fall due are simulated — O(events)
      total.  Distribution-identical to [Aggregate]; [on_round] fires
      only for simulated rounds (compare [processed_rounds] with
      [config.rounds]). *)

type snapshot = {
  round : int;
  tips : Nakamoto_chain.Block.t array;  (** indexed by honest miner *)
}

type result = {
  config : Config.t;
  snapshots : snapshot list;  (** chronological *)
  god_view : Nakamoto_chain.Block_tree.t;  (** every block ever mined *)
  final_tips : Nakamoto_chain.Block.t array;
  convergence_opportunities : int;
  adversary_blocks : int;
  honest_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  max_reorg_depth : int;
      (** deepest rollback any honest miner ever performed when switching
          tips — a direct witness against [T]-consistency for
          [T <= max_reorg_depth] *)
  adversary_releases : int;
  messages_sent : int;
  orphans_remaining : int;  (** undeliverable blocks at the end (should be 0) *)
  processed_rounds : int;
      (** rounds the executor actually simulated: equals [config.rounds]
          for [Exact] and [Aggregate]; for [Skip] it is the event count —
          block-bearing rounds plus delivery-due rounds — and the skipped
          remainder were provably all-empty *)
}

type round_report = {
  round_number : int;
  honest_mined : int;  (** honest blocks this round *)
  adversary_successes : int;  (** adversary's binomial draw this round *)
  releases_issued : int;  (** release messages the adversary sent *)
  best_height : int;  (** tallest honest chain after the round *)
  reorg_depth : int;  (** deepest rollback performed this round *)
}

val run :
  ?on_round:(round_report -> unit) ->
  ?telemetry:Nakamoto_telemetry.Registry.t ->
  Config.t ->
  result
(** [run config] executes the protocol, then quiesces: [delta] further
    delivery-only rounds flush every in-flight message, so
    [orphans_remaining] is [0] under any delay policy and [final_tips]
    describe a settled network.  [on_round], if given, is called once per
    mining round (not the quiescence rounds) after the adversary has
    acted — the hook behind {!Trace.capture}.  Under [Skip] mining it
    fires only for simulated rounds; every unsimulated round had zero
    honest and adversarial successes, zero releases and no deliveries.

    [telemetry], if given, registers the executor's instruments
    ([sim_*] counters, histograms and phase spans) in the registry and
    feeds them as the run progresses.  The simulation itself is
    oblivious to the registry: the RNG stream, every statistic in
    {!result}, and the {!round_report} sequence are bit-identical with
    and without it.  When absent, the hot path performs no clock reads
    and no allocation on its behalf.
    @raise Invalid_argument when the configuration is invalid, or when
    [config.mining_mode] is [Aggregate] and the effective delay policy
    depends on the recipient ([Uniform_random] or [Per_recipient]).
    @raise Config.Incompatible when [config.mining_mode] is [Skip] with
    such a policy (the typed variant of the same rejection). *)
