(** An honest miner's local state: block view, orphan buffer, chain rule.

    An honest miner follows the protocol exactly: it accepts every block it
    receives, holds those whose parents it has not yet seen in an orphan
    buffer (the network never loses a message, so the parent always
    arrives within [Delta] rounds), and mines on the tip of the longest
    chain in its view. *)

type t

val create : ?tie_break:Nakamoto_chain.Block_tree.tie_break -> id:int -> unit -> t
(** [create ~id] builds a miner whose view contains only genesis;
    [tie_break] (default [Prefer_honest]) is the chain-selection rule its
    view applies to equal-height ties. *)

val id : t -> int

val clone : t -> id:int -> t
(** [clone t ~id] is an independent miner with [t]'s exact view (tree,
    orphan buffer and best tip) under a new identity.  The aggregate
    executor materializes a miner from the shared crowd view the first
    time it wins a block or is targeted by a direct send. *)

val receive : t -> Nakamoto_chain.Block.t list -> unit
(** [receive t blocks] adds blocks to the view, draining any orphans that
    became connectable. *)

val best_tip : t -> Nakamoto_chain.Block.t
(** [best_tip t] is the head of the longest chain currently known. *)

val chain_length : t -> int
(** [chain_length t] is [best_tip t]'s height. *)

val extend_tip :
  t -> round:int -> nonce:int -> Nakamoto_chain.Block.t
(** [extend_tip t ~round ~nonce] mines one block on the current best tip,
    inserts it into the view, and returns it.  Called only when the
    miner's single [H]-query for the round succeeded. *)

val view : t -> Nakamoto_chain.Block_tree.t
(** [view t] is the miner's block tree (shared, not a copy — read only). *)

val orphan_count : t -> int
(** [orphan_count t] is the number of buffered parentless blocks. *)
