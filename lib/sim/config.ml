type mining_mode = Exact | Aggregate | Skip

exception Incompatible of { mode : mining_mode; reason : string }

let () =
  Printexc.register_printer (function
    | Incompatible { mode; reason } ->
      let mode_name =
        match mode with
        | Exact -> "exact"
        | Aggregate -> "aggregate"
        | Skip -> "skip"
      in
      Some (Printf.sprintf "Config.Incompatible(%s): %s" mode_name reason)
    | _ -> None)

type t = {
  n : int;
  nu : float;
  p : float;
  delta : int;
  rounds : int;
  seed : int64;
  strategy : Adversary.strategy;
  snapshot_interval : int;
  truncate : int;
  delay_override : Nakamoto_net.Network.delay_policy option;
  tie_break : Nakamoto_chain.Block_tree.tie_break;
  mining_mode : mining_mode;
}

let adversary_count t = int_of_float (t.nu *. float_of_int t.n)
let honest_count t = t.n - adversary_count t
let mu t = float_of_int (honest_count t) /. float_of_int t.n

let validate t =
  if t.n < 4 then invalid_arg "Config: n must be >= 4 (paper Eq. 3)";
  if not (t.nu >= 0. && t.nu < 0.5) then
    invalid_arg "Config: nu must lie in [0, 1/2) (paper Eq. 2)";
  if not (t.p > 0. && t.p <= 1.) then invalid_arg "Config: p must lie in (0, 1]";
  if t.delta < 1 then invalid_arg "Config: delta must be >= 1";
  if t.rounds < 0 then invalid_arg "Config: rounds must be nonnegative";
  if t.snapshot_interval < 1 then
    invalid_arg "Config: snapshot_interval must be >= 1";
  if t.truncate < 0 then invalid_arg "Config: truncate must be nonnegative";
  if honest_count t <= 0 then invalid_arg "Config: no honest miners left";
  (match t.strategy with
  | Adversary.Idle | Adversary.Private_chain _ | Adversary.Balance _
  | Adversary.Selfish_mining ->
    ());
  (* Skip mode samples the gap to the next block-bearing round and
     fast-forwards everything in between, so per-round adversarial delay
     choices ([Uniform_random], [Per_recipient]) have no round to inspect.
     Reject the combination here, typed, instead of silently degrading. *)
  match t.mining_mode with
  | Exact | Aggregate -> ()
  | Skip -> (
    let policy =
      match t.delay_override with
      | Some policy -> policy
      | None ->
        Adversary.delay_policy_for t.strategy ~delta:t.delta
          ~honest_count:(honest_count t)
    in
    match policy with
    | Nakamoto_net.Network.Immediate | Nakamoto_net.Network.Fixed _
    | Nakamoto_net.Network.Maximal ->
      ()
    | Nakamoto_net.Network.Uniform_random | Nakamoto_net.Network.Per_recipient _
      ->
      raise
        (Incompatible
           {
             mode = Skip;
             reason =
               "Skip mining requires a recipient-independent delay policy \
                (Immediate, Fixed or Maximal); the effective policy needs \
                per-round inspection";
           }))

let c t = 1. /. (t.p *. float_of_int t.n *. float_of_int t.delta)

let with_c t ~c =
  if c <= 0. then invalid_arg "Config.with_c: c must be positive";
  let p = 1. /. (c *. float_of_int t.n *. float_of_int t.delta) in
  if not (p > 0. && p <= 1.) then
    invalid_arg "Config.with_c: implied p outside (0, 1]";
  { t with p }

let state_process_config t =
  {
    State_process.honest = honest_count t;
    adversarial = adversary_count t;
    p = t.p;
    delta = t.delta;
  }

let default =
  let base =
    {
      n = 40;
      nu = 0.25;
      p = 1.;
      delta = 4;
      rounds = 4000;
      seed = 42L;
      strategy = Adversary.Idle;
      snapshot_interval = 200;
      truncate = 8;
      delay_override = None;
      tie_break = Nakamoto_chain.Block_tree.Prefer_honest;
      mining_mode = Exact;
    }
  in
  with_c base ~c:2.5
