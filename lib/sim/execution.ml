module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree
module Network = Nakamoto_net.Network
module Rng = Nakamoto_prob.Rng
module Binomial = Nakamoto_prob.Binomial
module Pow = Nakamoto_chain.Pow

module Tel = Nakamoto_telemetry

let log_src = Logs.Src.create "nakamoto.sim" ~doc:"Delta-delay protocol execution"

module Log = (val Logs.src_log log_src)

type snapshot = { round : int; tips : Block.t array }

type result = {
  config : Config.t;
  snapshots : snapshot list;
  god_view : Block_tree.t;
  final_tips : Block.t array;
  convergence_opportunities : int;
  adversary_blocks : int;
  honest_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  max_reorg_depth : int;
  adversary_releases : int;
  messages_sent : int;
  orphans_remaining : int;
  processed_rounds : int;
}

type round_report = {
  round_number : int;
  honest_mined : int;
  adversary_successes : int;
  releases_issued : int;
  best_height : int;
  reorg_depth : int;
}

(* ------------------------------------------------------------------ *)
(* Telemetry: every instrument is resolved once before the round loop
   and threaded through as an [instruments option].  The disabled handle
   is [None]; the hot path then pays one pattern match per phase and
   nothing else — no clock reads, no allocation — which is what keeps
   telemetry-off throughput within noise of the uninstrumented build.
   Telemetry never draws from any RNG stream, so results are bit-
   identical with the handle on or off (pinned by the differential
   test).                                                              *)
(* ------------------------------------------------------------------ *)

type instruments = {
  i_rounds : Tel.Counter.t;
  i_honest : Tel.Counter.t;
  i_adversary : Tel.Counter.t;
  i_releases : Tel.Counter.t;
  i_height_growth : Tel.Counter.t;
  i_reorg_rounds : Tel.Counter.t;
  i_release_burst : Tel.Histogram.t;  (** blocks per adversarial release *)
  i_reorg_depth : Tel.Histogram.t;  (** fixed-boundary, per reorging round *)
  i_interarrival : Tel.Histogram.t;  (** rounds between honest-block rounds *)
  i_conv_gap : Tel.Histogram.t;  (** rounds between convergence opportunities *)
  sp_delivery : Tel.Span.t;
  sp_mining : Tel.Span.t;
  sp_adversary : Tel.Span.t;
  mutable last_block_round : int;
  mutable last_conv_count : int;
  mutable last_conv_round : int;
  mutable last_best_height : int;
  mutable phase_started : float;
}

let reorg_depth_bounds =
  [| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24.; 32.; 48.; 64. |]

let make_instruments reg =
  {
    i_rounds = Tel.Registry.counter reg "sim_rounds_total";
    i_honest = Tel.Registry.counter reg "sim_honest_blocks_total";
    i_adversary = Tel.Registry.counter reg "sim_adversary_blocks_total";
    i_releases = Tel.Registry.counter reg "sim_adversary_releases_total";
    i_height_growth = Tel.Registry.counter reg "sim_best_height_growth_total";
    i_reorg_rounds = Tel.Registry.counter reg "sim_reorg_rounds_total";
    i_release_burst = Tel.Registry.log2_histogram reg "sim_release_burst_blocks";
    i_reorg_depth =
      Tel.Registry.fixed_histogram reg ~bounds:reorg_depth_bounds
        "sim_reorg_depth";
    i_interarrival =
      Tel.Registry.log2_histogram reg "sim_block_interarrival_rounds";
    i_conv_gap = Tel.Registry.log2_histogram reg "sim_convergence_gap_rounds";
    sp_delivery = Tel.Registry.span reg "sim_phase_delivery_seconds";
    sp_mining = Tel.Registry.span reg "sim_phase_mining_seconds";
    sp_adversary = Tel.Registry.span reg "sim_phase_adversary_seconds";
    last_block_round = 0;
    last_conv_count = 0;
    last_conv_round = 0;
    last_best_height = 0;
    phase_started = 0.;
  }

let phase_start instr span =
  match instr with
  | None -> ()
  | Some i -> i.phase_started <- Tel.Span.start (span i)

let phase_stop instr span =
  match instr with
  | None -> ()
  | Some i -> Tel.Span.stop (span i) i.phase_started

(* A convergence opportunity completed: record the gap since the previous
   one.  [conv_round] is the true completion round — for the per-round
   executors that is the round being observed, but skip mode can complete
   an opportunity strictly inside a fast-forwarded span. *)
let note_convergence i ~conv_count ~conv_round =
  if conv_count > i.last_conv_count then begin
    if i.last_conv_round > 0 then
      Tel.Histogram.observe i.i_conv_gap
        (float_of_int (conv_round - i.last_conv_round));
    i.last_conv_count <- conv_count;
    i.last_conv_round <- conv_round
  end

(* End-of-round bookkeeping shared by the executors; [releases] is the
   round's release list (burst sizes), the rest are this round's already
   computed statistics. *)
let observe_round ?conv_round instr ~round ~h ~successes ~releases
    ~round_reorg ~best_height ~conv_count =
  match instr with
  | None -> ()
  | Some i ->
    Tel.Counter.incr i.i_rounds;
    Tel.Counter.add i.i_honest h;
    Tel.Counter.add i.i_adversary successes;
    Tel.Counter.add i.i_releases (List.length releases);
    List.iter
      (fun { Adversary.blocks; _ } ->
        Tel.Histogram.observe i.i_release_burst
          (float_of_int (List.length blocks)))
      releases;
    if round_reorg > 0 then begin
      Tel.Counter.incr i.i_reorg_rounds;
      Tel.Histogram.observe i.i_reorg_depth (float_of_int round_reorg)
    end;
    if h > 0 then begin
      if i.last_block_round > 0 then
        Tel.Histogram.observe i.i_interarrival
          (float_of_int (round - i.last_block_round));
      i.last_block_round <- round
    end;
    note_convergence i ~conv_count
      ~conv_round:(Option.value conv_round ~default:round);
    if best_height > i.last_best_height then begin
      Tel.Counter.add i.i_height_growth (best_height - i.last_best_height);
      i.last_best_height <- best_height
    end

(* ------------------------------------------------------------------ *)
(* Exact mode: one H-query per honest miner per round, nu n sequential
   adversary queries, every message enqueued per recipient.  This path is
   bit-for-bit the historical executor.                                 *)
(* ------------------------------------------------------------------ *)

let run_exact ?on_round ~instr config =
  let honest_n = Config.honest_count config in
  let adv_n = Config.adversary_count config in
  let rng = Rng.create ~seed:config.seed in
  let oracle = Pow.create ~seed:(Rng.bits64 rng) ~p:config.p in
  let net_rng = Rng.split rng in
  let adversary = Adversary.create ~strategy:config.strategy ~honest_count:honest_n in
  let policy =
    match config.delay_override with
    | Some policy -> policy
    | None ->
      Adversary.delay_policy_for config.strategy ~delta:config.delta
        ~honest_count:honest_n
  in
  let network =
    Network.create ~delta:config.delta ~players:honest_n ~policy ~rng:net_rng
  in
  let miners =
    Array.init honest_n (fun id -> Miner.create ~tie_break:config.tie_break ~id ())
  in
  let pattern = Pattern.create ~delta:config.delta in
  let god = Adversary.view adversary in
  let snapshots = ref [] in
  let honest_blocks = ref 0 in
  let adversary_blocks = ref 0 in
  let h_rounds = ref 0 in
  let h1_rounds = ref 0 in
  let max_reorg = ref 0 in
  let take_snapshot round =
    snapshots :=
      { round; tips = Array.map Miner.best_tip miners } :: !snapshots
  in
  (* Drain one round of deliveries for every miner, tracking how deep any
     of them had to roll back its chain. *)
  let deliver_round round ~track_round_reorg =
    Array.iter
      (fun miner ->
        let inbox = Network.deliver network ~recipient:(Miner.id miner) ~round in
        if inbox <> [] then begin
          let old_tip = Miner.best_tip miner in
          Miner.receive miner
            (List.concat_map (fun (m : Network.message) -> m.blocks) inbox);
          let new_tip = Miner.best_tip miner in
          if not (Block.equal old_tip new_tip) then begin
            let meet = Block_tree.common_prefix_height god old_tip new_tip in
            let rolled_back = old_tip.Block.height - meet in
            (match track_round_reorg with
            | Some cell -> if rolled_back > !cell then cell := rolled_back
            | None -> ());
            if rolled_back > 2 then
              Log.debug (fun m ->
                  m "round %d: miner %d rolled back %d blocks (%d -> %d)" round
                    (Miner.id miner) rolled_back old_tip.Block.height
                    new_tip.Block.height);
            if rolled_back > !max_reorg then max_reorg := rolled_back
          end
        end)
      miners
  in
  for round = 1 to config.rounds do
    let round_reorg = ref 0 in
    (* Phase 1: delivery.  Record reorg depth when a miner abandons part of
       its previously-best chain. *)
    phase_start instr (fun i -> i.sp_delivery);
    deliver_round round ~track_round_reorg:(Some round_reorg);
    phase_stop instr (fun i -> i.sp_delivery);
    (* Phase 2: honest mining — one parallel H-query each (Section III's
       oracle: the query digests the miner's current parent). *)
    phase_start instr (fun i -> i.sp_mining);
    let mined_this_round = ref [] in
    Array.iter
      (fun miner ->
        let parent = (Miner.best_tip miner).Block.hash in
        match
          Pow.query oracle ~parent ~miner:(Miner.id miner) ~round ~query_index:0
        with
        | None -> ()
        | Some _proof ->
          let block = Miner.extend_tip miner ~round ~nonce:(Miner.id miner) in
          mined_this_round := block :: !mined_this_round;
          Network.broadcast network
            { Network.sender = Miner.id miner; sent_round = round; blocks = [ block ] })
      miners;
    let h = List.length !mined_this_round in
    phase_stop instr (fun i -> i.sp_mining);
    honest_blocks := !honest_blocks + h;
    if h > 0 then incr h_rounds;
    if h = 1 then incr h1_rounds;
    Pattern.observe pattern (Round_state.of_block_count h);
    Adversary.observe adversary !mined_this_round;
    (* Phase 3: the adversary's q = nu n sequential H-queries on its
       strategy-chosen tip, then releases. *)
    phase_start instr (fun i -> i.sp_adversary);
    let successes =
      Pow.successes oracle
        ~parent:(Adversary.private_tip adversary).Block.hash ~miner:(-1)
        ~round ~queries:adv_n
    in
    adversary_blocks := !adversary_blocks + successes;
    let releases = Adversary.act adversary ~round ~successes in
    if releases <> [] then
      Log.debug (fun m ->
          m "round %d: adversary issued %d release(s) (%d successes this round)"
            round (List.length releases) successes);
    List.iter
      (fun { Adversary.audience; delay; blocks } ->
        let send recipient =
          Network.send_direct network ~recipient ~delay
            { Network.sender = -1; sent_round = round; blocks }
        in
        match audience with
        | Adversary.All_honest ->
          for recipient = 0 to honest_n - 1 do
            send recipient
          done
        | Adversary.Only recipients -> List.iter send recipients)
      releases;
    phase_stop instr (fun i -> i.sp_adversary);
    if Option.is_some on_round || Option.is_some instr then begin
      let best_height =
        Array.fold_left
          (fun acc m -> max acc (Miner.chain_length m))
          0 miners
      in
      (match on_round with
      | None -> ()
      | Some report ->
        report
          {
            round_number = round;
            honest_mined = h;
            adversary_successes = successes;
            releases_issued = List.length releases;
            best_height;
            reorg_depth = !round_reorg;
          });
      observe_round instr ~round ~h ~successes ~releases
        ~round_reorg:!round_reorg ~best_height
        ~conv_count:(Pattern.count pattern)
    end;
    if round mod config.snapshot_interval = 0 || round = config.rounds then
      take_snapshot round
  done;
  (* Quiesce: deliver the messages still in flight (at most delta rounds'
     worth).  Without this, an adversary that reorders heavily can leave a
     child block delivered but its parent still in transit at the cutoff,
     stranding orphans that the model says must connect. *)
  for round = config.rounds + 1 to config.rounds + config.delta do
    deliver_round round ~track_round_reorg:None
  done;
  {
    config;
    snapshots = List.rev !snapshots;
    god_view = god;
    final_tips = Array.map Miner.best_tip miners;
    convergence_opportunities = Pattern.count pattern;
    adversary_blocks = !adversary_blocks;
    honest_blocks = !honest_blocks;
    h_rounds = !h_rounds;
    h1_rounds = !h1_rounds;
    max_reorg_depth = !max_reorg;
    adversary_releases = Adversary.reorgs_caused adversary;
    messages_sent = Network.messages_sent network;
    orphans_remaining =
      Array.fold_left (fun acc m -> acc + Miner.orphan_count m) 0 miners;
    processed_rounds = config.rounds;
  }

(* ------------------------------------------------------------------ *)
(* Aggregate mode: the paper-scale fast path.

   Per-round cost is O(blocks mined + messages due) instead of O(n):

   - The number of honest winners is drawn from binom(mu n, p) (the exact
     law realized by mu n independent H-queries) and *which* miners won is
     a partial Fisher-Yates draw over the honest ids — round outcomes are
     distribution-identical to exact mode, though not bit-identical.
   - The adversary's nu n sequential queries collapse to one
     binom(nu n, p) draw (their count is all Adversary.act consumes).
   - Broadcasts ride the network's shared Δ-ring lane (O(1) per
     broadcast); every miner whose view never diverges from that shared
     stream is represented by one "crowd" view.  A miner is materialized
     (cloned from the crowd) the first time it wins a block or is targeted
     by a direct send, and from then on consumes the ring plus its own
     event queue every round.

   Untouched miners are exact replicas of the crowd by construction (they
   received exactly the shared stream and mined nothing), so snapshots and
   final tips fill their slots with the crowd tip.  [orphans_remaining]
   counts the crowd view once, not once per untouched miner.

   The crowd stands for the untouched miners and for nothing else: once
   every miner has been materialized (the Balance adversary forces this at
   its first release, whose [Only] audiences cover all honest miners) the
   crowd retires — it stops consuming the shared stream and drops out of
   reorg and orphan accounting.  A retired crowd would otherwise keep
   receiving ring blocks whose direct-sent parents it never saw and report
   phantom orphans no real miner holds. *)
(* ------------------------------------------------------------------ *)

let run_aggregate ?on_round ~instr config =
  let honest_n = Config.honest_count config in
  let adv_n = Config.adversary_count config in
  let rng = Rng.create ~seed:config.seed in
  (* Keep the stream layout of exact mode (oracle seed, then the network
     split) so the two modes draw from decorrelated streams per seed. *)
  let _oracle_seed = Rng.bits64 rng in
  let net_rng = Rng.split rng in
  let adversary = Adversary.create ~strategy:config.strategy ~honest_count:honest_n in
  let policy =
    match config.delay_override with
    | Some policy -> policy
    | None ->
      Adversary.delay_policy_for config.strategy ~delta:config.delta
        ~honest_count:honest_n
  in
  (match policy with
  | Network.Immediate | Network.Fixed _ | Network.Maximal -> ()
  | Network.Uniform_random | Network.Per_recipient _ ->
    invalid_arg
      "Execution.run: Aggregate mining requires a recipient-independent \
       delay policy (Immediate, Fixed or Maximal)");
  let network =
    Network.create ~delta:config.delta ~players:honest_n ~policy ~rng:net_rng
  in
  Network.enable_ring network;
  let honest_dist = Binomial.create ~trials:honest_n ~p:config.p in
  let adv_dist = Binomial.create ~trials:adv_n ~p:config.p in
  (* The crowd: the one view shared by every miner never touched
     individually.  Its id is never a message sender, so it consumes the
     whole shared stream. *)
  let crowd = Miner.create ~tie_break:config.tie_break ~id:(-1) () in
  let materialized : (int, Miner.t) Hashtbl.t = Hashtbl.create 64 in
  (* Winner-selection pool: a persistent permutation of the honest ids.
     Each round's partial Fisher-Yates prefix is uniform over k-subsets
     regardless of the permutation it starts from. *)
  let pool = Array.init honest_n Fun.id in
  let pattern = Pattern.create ~delta:config.delta in
  let god = Adversary.view adversary in
  let snapshots = ref [] in
  let honest_blocks = ref 0 in
  let adversary_blocks = ref 0 in
  let h_rounds = ref 0 in
  let h1_rounds = ref 0 in
  let max_reorg = ref 0 in
  let receive_tracked miner blocks ~round ~track_round_reorg =
    if blocks <> [] then begin
      let old_tip = Miner.best_tip miner in
      Miner.receive miner blocks;
      let new_tip = Miner.best_tip miner in
      if not (Block.equal old_tip new_tip) then begin
        let meet = Block_tree.common_prefix_height god old_tip new_tip in
        let rolled_back = old_tip.Block.height - meet in
        (match track_round_reorg with
        | Some cell -> if rolled_back > !cell then cell := rolled_back
        | None -> ());
        if rolled_back > 2 then
          Log.debug (fun m ->
              m "round %d: miner %d rolled back %d blocks (%d -> %d)" round
                (Miner.id miner) rolled_back old_tip.Block.height
                new_tip.Block.height);
        if rolled_back > !max_reorg then max_reorg := rolled_back
      end
    end
  in
  (* The crowd is live while it still stands for at least one untouched
     miner; materialization is monotone, so once this flips it stays. *)
  let crowd_live () = Hashtbl.length materialized < honest_n in
  let deliver_round round ~track_round_reorg =
    let shared = Network.deliver_shared network ~round in
    let shared_blocks =
      List.concat_map (fun (m : Network.message) -> m.blocks) shared
    in
    if crowd_live () then
      receive_tracked crowd shared_blocks ~round ~track_round_reorg;
    Hashtbl.iter
      (fun id miner ->
        let own_filtered =
          if shared = [] then []
          else
            List.concat_map
              (fun (m : Network.message) ->
                if m.sender = id then [] else m.blocks)
              shared
        in
        let direct = Network.deliver network ~recipient:id ~round in
        let blocks =
          own_filtered
          @ List.concat_map (fun (m : Network.message) -> m.blocks) direct
        in
        receive_tracked miner blocks ~round ~track_round_reorg)
      materialized
  in
  let materialize id =
    match Hashtbl.find_opt materialized id with
    | Some miner -> miner
    | None ->
      let miner = Miner.clone crowd ~id in
      Hashtbl.add materialized id miner;
      miner
  in
  let tip_of id =
    match Hashtbl.find_opt materialized id with
    | Some miner -> Miner.best_tip miner
    | None -> Miner.best_tip crowd
  in
  let take_snapshot round =
    snapshots := { round; tips = Array.init honest_n tip_of } :: !snapshots
  in
  for round = 1 to config.rounds do
    let round_reorg = ref 0 in
    (* Phase 1: delivery — the shared ring stream to the crowd and every
       materialized miner, plus per-miner direct queues. *)
    phase_start instr (fun i -> i.sp_delivery);
    deliver_round round ~track_round_reorg:(Some round_reorg);
    phase_stop instr (fun i -> i.sp_delivery);
    (* Phase 2: honest mining — one binomial draw for how many of the mu n
       parallel H-queries won, a partial Fisher-Yates draw for which. *)
    phase_start instr (fun i -> i.sp_mining);
    let h = Binomial.sample rng honest_dist in
    let mined_this_round = ref [] in
    for i = 0 to h - 1 do
      let j = i + Rng.int rng ~bound:(honest_n - i) in
      let winner = pool.(j) in
      pool.(j) <- pool.(i);
      pool.(i) <- winner;
      let miner = materialize winner in
      let block = Miner.extend_tip miner ~round ~nonce:winner in
      mined_this_round := block :: !mined_this_round;
      Network.broadcast network
        { Network.sender = winner; sent_round = round; blocks = [ block ] }
    done;
    phase_stop instr (fun i -> i.sp_mining);
    honest_blocks := !honest_blocks + h;
    if h > 0 then incr h_rounds;
    if h = 1 then incr h1_rounds;
    Pattern.observe pattern (Round_state.of_block_count h);
    Adversary.observe adversary !mined_this_round;
    (* Phase 3: the adversary's nu n sequential queries, as one binomial
       draw (only the count reaches the strategy), then releases. *)
    phase_start instr (fun i -> i.sp_adversary);
    let successes = Binomial.sample rng adv_dist in
    adversary_blocks := !adversary_blocks + successes;
    let releases = Adversary.act adversary ~round ~successes in
    if releases <> [] then
      Log.debug (fun m ->
          m "round %d: adversary issued %d release(s) (%d successes this round)"
            round (List.length releases) successes);
    List.iter
      (fun { Adversary.audience; delay; blocks } ->
        let msg = { Network.sender = -1; sent_round = round; blocks } in
        match audience with
        | Adversary.All_honest -> Network.broadcast_all network ~delay msg
        | Adversary.Only recipients ->
          List.iter
            (fun recipient ->
              ignore (materialize recipient);
              Network.send_direct network ~recipient ~delay msg)
            recipients)
      releases;
    phase_stop instr (fun i -> i.sp_adversary);
    if Option.is_some on_round || Option.is_some instr then begin
      let best_height =
        Hashtbl.fold
          (fun _ m acc -> max acc (Miner.chain_length m))
          materialized
          (Miner.chain_length crowd)
      in
      (match on_round with
      | None -> ()
      | Some report ->
        report
          {
            round_number = round;
            honest_mined = h;
            adversary_successes = successes;
            releases_issued = List.length releases;
            best_height;
            reorg_depth = !round_reorg;
          });
      observe_round instr ~round ~h ~successes ~releases
        ~round_reorg:!round_reorg ~best_height
        ~conv_count:(Pattern.count pattern)
    end;
    if round mod config.snapshot_interval = 0 || round = config.rounds then
      take_snapshot round
  done;
  for round = config.rounds + 1 to config.rounds + config.delta do
    deliver_round round ~track_round_reorg:None
  done;
  {
    config;
    snapshots = List.rev !snapshots;
    god_view = god;
    final_tips = Array.init honest_n tip_of;
    convergence_opportunities = Pattern.count pattern;
    adversary_blocks = !adversary_blocks;
    honest_blocks = !honest_blocks;
    h_rounds = !h_rounds;
    h1_rounds = !h1_rounds;
    max_reorg_depth = !max_reorg;
    adversary_releases = Adversary.reorgs_caused adversary;
    messages_sent = Network.messages_sent network;
    orphans_remaining =
      Hashtbl.fold
        (fun _ m acc -> acc + Miner.orphan_count m)
        materialized
        (if crowd_live () then Miner.orphan_count crowd else 0);
    processed_rounds = config.rounds;
  }

(* ------------------------------------------------------------------ *)
(* Skip mode: the O(events) path on top of Aggregate.

   At the paper's operating point c = 1/(p n Delta) almost every round is
   empty — no honest or adversarial success and no delivery due — yet
   Aggregate still pays O(1) per round.  Skip never iterates an empty
   round:

   - The gap to the next block-bearing round is one draw from
     Geometric(1 - q0) on {0, 1, ...} where q0 = (1-p)^(mu n + nu n) is
     the probability a round mines nothing on either side; the success
     counts of that round are drawn from the exact conditional law
     (H, A) | H + A > 0, split as: with probability (1 - qh)/(1 - q0) a
     zero-truncated binom(mu n, p) honest count paired with an
     unconditional binom(nu n, p) adversary count, else an honest zero
     paired with a zero-truncated binom(nu n, p).  Multiplying out
     recovers P(H = h) P(A = a) / (1 - q0) exactly, so the per-round
     joint law matches Aggregate's two independent draws conditioned on
     the round being non-empty — and empty rounds carry no other
     randomness.  Zero-truncated sampling is O(1) expected
     (Binomial.sample_positive): rejection would cost the gap length
     back.
   - The next simulated round is the earliest of {sampled mining round,
     next due delivery (Network.next_due: ring scan bounded by delta + 1
     slots plus the direct-queue due index)}.  Releases are the third
     event source in principle, but every strategy is event-driven —
     Adversary.advance_empty verifies at run time that no release can
     originate inside an empty span, so releases always surface at a
     simulated round and are visible to next_due the moment they are
     routed.
   - The span in between is fast-forwarded in O(1): the geometric draw
     stands for its mining randomness, Pattern.observe_empty advances
     the convergence detector (reporting a mid-span completion at its
     true round), the adversary is advanced by one verified no-op act,
     telemetry adds the span to the round counter, and snapshot-cadence
     rounds inside the span replay the (unchanged) current tips.

   Because mining is i.i.d. per round, a sampled mining round stays
   valid across intermediate delivery-only rounds (memorylessness); it
   is resampled only after being consumed.  Results are
   distribution-identical to Aggregate, not bit-identical: the RNG is
   consumed per event rather than per round.  [on_round] fires only for
   simulated rounds — consumers reconstruct the skipped all-zero rounds
   from [processed_rounds] vs [config.rounds].                          *)
(* ------------------------------------------------------------------ *)

let run_skip ?on_round ~instr config =
  let honest_n = Config.honest_count config in
  let adv_n = Config.adversary_count config in
  let rng = Rng.create ~seed:config.seed in
  (* Keep the stream layout of the other modes (oracle seed, then the
     network split) so the modes draw from decorrelated streams per seed. *)
  let _oracle_seed = Rng.bits64 rng in
  let net_rng = Rng.split rng in
  let adversary = Adversary.create ~strategy:config.strategy ~honest_count:honest_n in
  let policy =
    match config.delay_override with
    | Some policy -> policy
    | None ->
      Adversary.delay_policy_for config.strategy ~delta:config.delta
        ~honest_count:honest_n
  in
  (* Config.validate rejected recipient-dependent policies (typed). *)
  let network =
    Network.create ~delta:config.delta ~players:honest_n ~policy ~rng:net_rng
  in
  Network.enable_ring network;
  Network.enable_due_index network;
  let honest_dist = Binomial.create ~trials:honest_n ~p:config.p in
  let adv_dist = Binomial.create ~trials:adv_n ~p:config.p in
  let crowd = Miner.create ~tie_break:config.tie_break ~id:(-1) () in
  let materialized : (int, Miner.t) Hashtbl.t = Hashtbl.create 64 in
  let pool = Array.init honest_n Fun.id in
  let pattern = Pattern.create ~delta:config.delta in
  let god = Adversary.view adversary in
  let snapshots = ref [] in
  let honest_blocks = ref 0 in
  let adversary_blocks = ref 0 in
  let h_rounds = ref 0 in
  let h1_rounds = ref 0 in
  let max_reorg = ref 0 in
  let processed = ref 0 in
  let receive_tracked miner blocks ~track_round_reorg =
    if blocks <> [] then begin
      let old_tip = Miner.best_tip miner in
      Miner.receive miner blocks;
      let new_tip = Miner.best_tip miner in
      if not (Block.equal old_tip new_tip) then begin
        let meet = Block_tree.common_prefix_height god old_tip new_tip in
        let rolled_back = old_tip.Block.height - meet in
        (match track_round_reorg with
        | Some cell -> if rolled_back > !cell then cell := rolled_back
        | None -> ());
        if rolled_back > !max_reorg then max_reorg := rolled_back
      end
    end
  in
  let crowd_live () = Hashtbl.length materialized < honest_n in
  let deliver_round round ~track_round_reorg =
    let shared = Network.deliver_shared network ~round in
    let shared_blocks =
      List.concat_map (fun (m : Network.message) -> m.blocks) shared
    in
    if crowd_live () then
      receive_tracked crowd shared_blocks ~track_round_reorg;
    Hashtbl.iter
      (fun id miner ->
        let own_filtered =
          if shared = [] then []
          else
            List.concat_map
              (fun (m : Network.message) ->
                if m.sender = id then [] else m.blocks)
              shared
        in
        let direct = Network.deliver network ~recipient:id ~round in
        let blocks =
          own_filtered
          @ List.concat_map (fun (m : Network.message) -> m.blocks) direct
        in
        receive_tracked miner blocks ~track_round_reorg)
      materialized
  in
  let materialize id =
    match Hashtbl.find_opt materialized id with
    | Some miner -> miner
    | None ->
      let miner = Miner.clone crowd ~id in
      Hashtbl.add materialized id miner;
      miner
  in
  let tip_of id =
    match Hashtbl.find_opt materialized id with
    | Some miner -> Miner.best_tip miner
    | None -> Miner.best_tip crowd
  in
  let last_snap_round = ref 0 in
  let take_snapshot round =
    snapshots := { round; tips = Array.init honest_n tip_of } :: !snapshots;
    last_snap_round := round
  in
  (* Snapshot-cadence rounds inside a skipped span see exactly the state
     after the last simulated round, so they can be emitted lazily from
     the current tips. *)
  let next_snap = ref config.snapshot_interval in
  let emit_snapshots_through r =
    while !next_snap <= r do
      take_snapshot !next_snap;
      next_snap := !next_snap + config.snapshot_interval
    done
  in
  (* The joint gap law. *)
  let log_q0 =
    Binomial.log_prob_zero honest_dist +. Binomial.log_prob_zero adv_dist
  in
  let one_minus_q0 = -.Float.expm1 log_q0 in
  let p_honest_branch =
    (* P(H > 0 | H + A > 0); pinned to 1 when the adversary has no miners
       so the truncated adversary draw is provably never reached. *)
    if adv_n = 0 then 1.
    else Binomial.prob_positive honest_dist /. one_minus_q0
  in
  let horizon = config.rounds in
  let sample_gap () =
    if log_q0 = neg_infinity then 0
    else begin
      (* Inversion: floor (log u / log q0) with u in (0, 1] is
         Geometric(1 - q0) on {0, 1, ...}. *)
      let u = 1. -. Rng.float rng in
      let g = Float.log u /. log_q0 in
      if g > float_of_int horizon then horizon else int_of_float g
    end
  in
  let sample_event_successes () =
    if Rng.float rng < p_honest_branch then
      (Binomial.sample_positive rng honest_dist, Binomial.sample rng adv_dist)
    else (0, Binomial.sample_positive rng adv_dist)
  in
  let advance_empty_span ~first ~len =
    if len > 0 then begin
      Pattern.observe_empty pattern ~rounds:len;
      Adversary.advance_empty adversary ~round:first ~rounds:len;
      (match instr with
      | None -> ()
      | Some i ->
        Tel.Counter.add i.i_rounds len;
        note_convergence i ~conv_count:(Pattern.count pattern)
          ~conv_round:(Pattern.last_count_round pattern));
      emit_snapshots_through (first + len - 1)
    end
  in
  let cursor = ref 0 in
  let next_mining = ref None in
  while !cursor < horizon do
    let nm =
      match !next_mining with
      | Some r -> r
      | None ->
        let gap = sample_gap () in
        (* horizon + 1 is the "no mining within the horizon" sentinel. *)
        let r =
          if gap > horizon - !cursor - 1 then horizon + 1
          else !cursor + 1 + gap
        in
        next_mining := Some r;
        r
    in
    let nd =
      match Network.next_due network ~now:!cursor with
      | Some d -> d
      | None -> max_int
    in
    let target = min nm nd in
    if target > horizon then begin
      advance_empty_span ~first:(!cursor + 1) ~len:(horizon - !cursor);
      cursor := horizon
    end
    else begin
      advance_empty_span ~first:(!cursor + 1) ~len:(target - !cursor - 1);
      let round = target in
      incr processed;
      let round_reorg = ref 0 in
      phase_start instr (fun i -> i.sp_delivery);
      deliver_round round ~track_round_reorg:(Some round_reorg);
      phase_stop instr (fun i -> i.sp_delivery);
      phase_start instr (fun i -> i.sp_mining);
      let h, successes =
        if round = nm then begin
          next_mining := None;
          sample_event_successes ()
        end
        else (0, 0) (* delivery-only round; the sampled mining round keeps *)
        (* its law by memorylessness and is consumed later. *)
      in
      let mined_this_round = ref [] in
      for i = 0 to h - 1 do
        let j = i + Rng.int rng ~bound:(honest_n - i) in
        let winner = pool.(j) in
        pool.(j) <- pool.(i);
        pool.(i) <- winner;
        let miner = materialize winner in
        let block = Miner.extend_tip miner ~round ~nonce:winner in
        mined_this_round := block :: !mined_this_round;
        Network.broadcast network
          { Network.sender = winner; sent_round = round; blocks = [ block ] }
      done;
      phase_stop instr (fun i -> i.sp_mining);
      honest_blocks := !honest_blocks + h;
      if h > 0 then incr h_rounds;
      if h = 1 then incr h1_rounds;
      Pattern.observe pattern (Round_state.of_block_count h);
      Adversary.observe adversary !mined_this_round;
      phase_start instr (fun i -> i.sp_adversary);
      adversary_blocks := !adversary_blocks + successes;
      let releases = Adversary.act adversary ~round ~successes in
      if releases <> [] then
        Log.debug (fun m ->
            m "round %d: adversary issued %d release(s) (%d successes this round)"
              round (List.length releases) successes);
      List.iter
        (fun { Adversary.audience; delay; blocks } ->
          let msg = { Network.sender = -1; sent_round = round; blocks } in
          match audience with
          | Adversary.All_honest -> Network.broadcast_all network ~delay msg
          | Adversary.Only recipients ->
            List.iter
              (fun recipient ->
                ignore (materialize recipient);
                Network.send_direct network ~recipient ~delay msg)
              recipients)
        releases;
      phase_stop instr (fun i -> i.sp_adversary);
      if Option.is_some on_round || Option.is_some instr then begin
        let best_height =
          Hashtbl.fold
            (fun _ m acc -> max acc (Miner.chain_length m))
            materialized
            (Miner.chain_length crowd)
        in
        (match on_round with
        | None -> ()
        | Some report ->
          report
            {
              round_number = round;
              honest_mined = h;
              adversary_successes = successes;
              releases_issued = List.length releases;
              best_height;
              reorg_depth = !round_reorg;
            });
        observe_round
          ~conv_round:(Pattern.last_count_round pattern)
          instr ~round ~h ~successes ~releases ~round_reorg:!round_reorg
          ~best_height
          ~conv_count:(Pattern.count pattern)
      end;
      emit_snapshots_through round;
      cursor := round
    end
  done;
  emit_snapshots_through horizon;
  if horizon > 0 && !last_snap_round <> horizon then take_snapshot horizon;
  for round = config.rounds + 1 to config.rounds + config.delta do
    deliver_round round ~track_round_reorg:None
  done;
  {
    config;
    snapshots = List.rev !snapshots;
    god_view = god;
    final_tips = Array.init honest_n tip_of;
    convergence_opportunities = Pattern.count pattern;
    adversary_blocks = !adversary_blocks;
    honest_blocks = !honest_blocks;
    h_rounds = !h_rounds;
    h1_rounds = !h1_rounds;
    max_reorg_depth = !max_reorg;
    adversary_releases = Adversary.reorgs_caused adversary;
    messages_sent = Network.messages_sent network;
    orphans_remaining =
      Hashtbl.fold
        (fun _ m acc -> acc + Miner.orphan_count m)
        materialized
        (if crowd_live () then Miner.orphan_count crowd else 0);
    processed_rounds = !processed;
  }

let run ?on_round ?telemetry config =
  Config.validate config;
  let instr = Option.map make_instruments telemetry in
  match config.mining_mode with
  | Config.Exact -> run_exact ?on_round ~instr config
  | Config.Aggregate -> run_aggregate ?on_round ~instr config
  | Config.Skip -> run_skip ?on_round ~instr config
