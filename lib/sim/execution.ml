module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree
module Network = Nakamoto_net.Network
module Rng = Nakamoto_prob.Rng
module Binomial = Nakamoto_prob.Binomial
module Pow = Nakamoto_chain.Pow

let log_src = Logs.Src.create "nakamoto.sim" ~doc:"Delta-delay protocol execution"

module Log = (val Logs.src_log log_src)

type snapshot = { round : int; tips : Block.t array }

type result = {
  config : Config.t;
  snapshots : snapshot list;
  god_view : Block_tree.t;
  final_tips : Block.t array;
  convergence_opportunities : int;
  adversary_blocks : int;
  honest_blocks : int;
  h_rounds : int;
  h1_rounds : int;
  max_reorg_depth : int;
  adversary_releases : int;
  messages_sent : int;
  orphans_remaining : int;
}

type round_report = {
  round_number : int;
  honest_mined : int;
  adversary_successes : int;
  releases_issued : int;
  best_height : int;
  reorg_depth : int;
}

(* ------------------------------------------------------------------ *)
(* Exact mode: one H-query per honest miner per round, nu n sequential
   adversary queries, every message enqueued per recipient.  This path is
   bit-for-bit the historical executor.                                 *)
(* ------------------------------------------------------------------ *)

let run_exact ?on_round config =
  let honest_n = Config.honest_count config in
  let adv_n = Config.adversary_count config in
  let rng = Rng.create ~seed:config.seed in
  let oracle = Pow.create ~seed:(Rng.bits64 rng) ~p:config.p in
  let net_rng = Rng.split rng in
  let adversary = Adversary.create ~strategy:config.strategy ~honest_count:honest_n in
  let policy =
    match config.delay_override with
    | Some policy -> policy
    | None ->
      Adversary.delay_policy_for config.strategy ~delta:config.delta
        ~honest_count:honest_n
  in
  let network =
    Network.create ~delta:config.delta ~players:honest_n ~policy ~rng:net_rng
  in
  let miners =
    Array.init honest_n (fun id -> Miner.create ~tie_break:config.tie_break ~id ())
  in
  let pattern = Pattern.create ~delta:config.delta in
  let god = Adversary.view adversary in
  let snapshots = ref [] in
  let honest_blocks = ref 0 in
  let adversary_blocks = ref 0 in
  let h_rounds = ref 0 in
  let h1_rounds = ref 0 in
  let max_reorg = ref 0 in
  let take_snapshot round =
    snapshots :=
      { round; tips = Array.map Miner.best_tip miners } :: !snapshots
  in
  (* Drain one round of deliveries for every miner, tracking how deep any
     of them had to roll back its chain. *)
  let deliver_round round ~track_round_reorg =
    Array.iter
      (fun miner ->
        let inbox = Network.deliver network ~recipient:(Miner.id miner) ~round in
        if inbox <> [] then begin
          let old_tip = Miner.best_tip miner in
          Miner.receive miner
            (List.concat_map (fun (m : Network.message) -> m.blocks) inbox);
          let new_tip = Miner.best_tip miner in
          if not (Block.equal old_tip new_tip) then begin
            let meet = Block_tree.common_prefix_height god old_tip new_tip in
            let rolled_back = old_tip.Block.height - meet in
            (match track_round_reorg with
            | Some cell -> if rolled_back > !cell then cell := rolled_back
            | None -> ());
            if rolled_back > 2 then
              Log.debug (fun m ->
                  m "round %d: miner %d rolled back %d blocks (%d -> %d)" round
                    (Miner.id miner) rolled_back old_tip.Block.height
                    new_tip.Block.height);
            if rolled_back > !max_reorg then max_reorg := rolled_back
          end
        end)
      miners
  in
  for round = 1 to config.rounds do
    let round_reorg = ref 0 in
    (* Phase 1: delivery.  Record reorg depth when a miner abandons part of
       its previously-best chain. *)
    deliver_round round ~track_round_reorg:(Some round_reorg);
    (* Phase 2: honest mining — one parallel H-query each (Section III's
       oracle: the query digests the miner's current parent). *)
    let mined_this_round = ref [] in
    Array.iter
      (fun miner ->
        let parent = (Miner.best_tip miner).Block.hash in
        match
          Pow.query oracle ~parent ~miner:(Miner.id miner) ~round ~query_index:0
        with
        | None -> ()
        | Some _proof ->
          let block = Miner.extend_tip miner ~round ~nonce:(Miner.id miner) in
          mined_this_round := block :: !mined_this_round;
          Network.broadcast network
            { Network.sender = Miner.id miner; sent_round = round; blocks = [ block ] })
      miners;
    let h = List.length !mined_this_round in
    honest_blocks := !honest_blocks + h;
    if h > 0 then incr h_rounds;
    if h = 1 then incr h1_rounds;
    Pattern.observe pattern (Round_state.of_block_count h);
    Adversary.observe adversary !mined_this_round;
    (* Phase 3: the adversary's q = nu n sequential H-queries on its
       strategy-chosen tip, then releases. *)
    let successes =
      Pow.successes oracle
        ~parent:(Adversary.private_tip adversary).Block.hash ~miner:(-1)
        ~round ~queries:adv_n
    in
    adversary_blocks := !adversary_blocks + successes;
    let releases = Adversary.act adversary ~round ~successes in
    if releases <> [] then
      Log.debug (fun m ->
          m "round %d: adversary issued %d release(s) (%d successes this round)"
            round (List.length releases) successes);
    List.iter
      (fun { Adversary.audience; delay; blocks } ->
        let send recipient =
          Network.send_direct network ~recipient ~delay
            { Network.sender = -1; sent_round = round; blocks }
        in
        match audience with
        | Adversary.All_honest ->
          for recipient = 0 to honest_n - 1 do
            send recipient
          done
        | Adversary.Only recipients -> List.iter send recipients)
      releases;
    (match on_round with
    | None -> ()
    | Some report ->
      let best_height =
        Array.fold_left
          (fun acc m -> max acc (Miner.chain_length m))
          0 miners
      in
      report
        {
          round_number = round;
          honest_mined = h;
          adversary_successes = successes;
          releases_issued = List.length releases;
          best_height;
          reorg_depth = !round_reorg;
        });
    if round mod config.snapshot_interval = 0 || round = config.rounds then
      take_snapshot round
  done;
  (* Quiesce: deliver the messages still in flight (at most delta rounds'
     worth).  Without this, an adversary that reorders heavily can leave a
     child block delivered but its parent still in transit at the cutoff,
     stranding orphans that the model says must connect. *)
  for round = config.rounds + 1 to config.rounds + config.delta do
    deliver_round round ~track_round_reorg:None
  done;
  {
    config;
    snapshots = List.rev !snapshots;
    god_view = god;
    final_tips = Array.map Miner.best_tip miners;
    convergence_opportunities = Pattern.count pattern;
    adversary_blocks = !adversary_blocks;
    honest_blocks = !honest_blocks;
    h_rounds = !h_rounds;
    h1_rounds = !h1_rounds;
    max_reorg_depth = !max_reorg;
    adversary_releases = Adversary.reorgs_caused adversary;
    messages_sent = Network.messages_sent network;
    orphans_remaining =
      Array.fold_left (fun acc m -> acc + Miner.orphan_count m) 0 miners;
  }

(* ------------------------------------------------------------------ *)
(* Aggregate mode: the paper-scale fast path.

   Per-round cost is O(blocks mined + messages due) instead of O(n):

   - The number of honest winners is drawn from binom(mu n, p) (the exact
     law realized by mu n independent H-queries) and *which* miners won is
     a partial Fisher-Yates draw over the honest ids — round outcomes are
     distribution-identical to exact mode, though not bit-identical.
   - The adversary's nu n sequential queries collapse to one
     binom(nu n, p) draw (their count is all Adversary.act consumes).
   - Broadcasts ride the network's shared Δ-ring lane (O(1) per
     broadcast); every miner whose view never diverges from that shared
     stream is represented by one "crowd" view.  A miner is materialized
     (cloned from the crowd) the first time it wins a block or is targeted
     by a direct send, and from then on consumes the ring plus its own
     event queue every round.

   Untouched miners are exact replicas of the crowd by construction (they
   received exactly the shared stream and mined nothing), so snapshots and
   final tips fill their slots with the crowd tip.  [orphans_remaining]
   counts the crowd view once, not once per untouched miner.

   The crowd stands for the untouched miners and for nothing else: once
   every miner has been materialized (the Balance adversary forces this at
   its first release, whose [Only] audiences cover all honest miners) the
   crowd retires — it stops consuming the shared stream and drops out of
   reorg and orphan accounting.  A retired crowd would otherwise keep
   receiving ring blocks whose direct-sent parents it never saw and report
   phantom orphans no real miner holds. *)
(* ------------------------------------------------------------------ *)

let run_aggregate ?on_round config =
  let honest_n = Config.honest_count config in
  let adv_n = Config.adversary_count config in
  let rng = Rng.create ~seed:config.seed in
  (* Keep the stream layout of exact mode (oracle seed, then the network
     split) so the two modes draw from decorrelated streams per seed. *)
  let _oracle_seed = Rng.bits64 rng in
  let net_rng = Rng.split rng in
  let adversary = Adversary.create ~strategy:config.strategy ~honest_count:honest_n in
  let policy =
    match config.delay_override with
    | Some policy -> policy
    | None ->
      Adversary.delay_policy_for config.strategy ~delta:config.delta
        ~honest_count:honest_n
  in
  (match policy with
  | Network.Immediate | Network.Fixed _ | Network.Maximal -> ()
  | Network.Uniform_random | Network.Per_recipient _ ->
    invalid_arg
      "Execution.run: Aggregate mining requires a recipient-independent \
       delay policy (Immediate, Fixed or Maximal)");
  let network =
    Network.create ~delta:config.delta ~players:honest_n ~policy ~rng:net_rng
  in
  Network.enable_ring network;
  let honest_dist = Binomial.create ~trials:honest_n ~p:config.p in
  let adv_dist = Binomial.create ~trials:adv_n ~p:config.p in
  (* The crowd: the one view shared by every miner never touched
     individually.  Its id is never a message sender, so it consumes the
     whole shared stream. *)
  let crowd = Miner.create ~tie_break:config.tie_break ~id:(-1) () in
  let materialized : (int, Miner.t) Hashtbl.t = Hashtbl.create 64 in
  (* Winner-selection pool: a persistent permutation of the honest ids.
     Each round's partial Fisher-Yates prefix is uniform over k-subsets
     regardless of the permutation it starts from. *)
  let pool = Array.init honest_n Fun.id in
  let pattern = Pattern.create ~delta:config.delta in
  let god = Adversary.view adversary in
  let snapshots = ref [] in
  let honest_blocks = ref 0 in
  let adversary_blocks = ref 0 in
  let h_rounds = ref 0 in
  let h1_rounds = ref 0 in
  let max_reorg = ref 0 in
  let receive_tracked miner blocks ~round ~track_round_reorg =
    if blocks <> [] then begin
      let old_tip = Miner.best_tip miner in
      Miner.receive miner blocks;
      let new_tip = Miner.best_tip miner in
      if not (Block.equal old_tip new_tip) then begin
        let meet = Block_tree.common_prefix_height god old_tip new_tip in
        let rolled_back = old_tip.Block.height - meet in
        (match track_round_reorg with
        | Some cell -> if rolled_back > !cell then cell := rolled_back
        | None -> ());
        if rolled_back > 2 then
          Log.debug (fun m ->
              m "round %d: miner %d rolled back %d blocks (%d -> %d)" round
                (Miner.id miner) rolled_back old_tip.Block.height
                new_tip.Block.height);
        if rolled_back > !max_reorg then max_reorg := rolled_back
      end
    end
  in
  (* The crowd is live while it still stands for at least one untouched
     miner; materialization is monotone, so once this flips it stays. *)
  let crowd_live () = Hashtbl.length materialized < honest_n in
  let deliver_round round ~track_round_reorg =
    let shared = Network.deliver_shared network ~round in
    let shared_blocks =
      List.concat_map (fun (m : Network.message) -> m.blocks) shared
    in
    if crowd_live () then
      receive_tracked crowd shared_blocks ~round ~track_round_reorg;
    Hashtbl.iter
      (fun id miner ->
        let own_filtered =
          if shared = [] then []
          else
            List.concat_map
              (fun (m : Network.message) ->
                if m.sender = id then [] else m.blocks)
              shared
        in
        let direct = Network.deliver network ~recipient:id ~round in
        let blocks =
          own_filtered
          @ List.concat_map (fun (m : Network.message) -> m.blocks) direct
        in
        receive_tracked miner blocks ~round ~track_round_reorg)
      materialized
  in
  let materialize id =
    match Hashtbl.find_opt materialized id with
    | Some miner -> miner
    | None ->
      let miner = Miner.clone crowd ~id in
      Hashtbl.add materialized id miner;
      miner
  in
  let tip_of id =
    match Hashtbl.find_opt materialized id with
    | Some miner -> Miner.best_tip miner
    | None -> Miner.best_tip crowd
  in
  let take_snapshot round =
    snapshots := { round; tips = Array.init honest_n tip_of } :: !snapshots
  in
  for round = 1 to config.rounds do
    let round_reorg = ref 0 in
    (* Phase 1: delivery — the shared ring stream to the crowd and every
       materialized miner, plus per-miner direct queues. *)
    deliver_round round ~track_round_reorg:(Some round_reorg);
    (* Phase 2: honest mining — one binomial draw for how many of the mu n
       parallel H-queries won, a partial Fisher-Yates draw for which. *)
    let h = Binomial.sample rng honest_dist in
    let mined_this_round = ref [] in
    for i = 0 to h - 1 do
      let j = i + Rng.int rng ~bound:(honest_n - i) in
      let winner = pool.(j) in
      pool.(j) <- pool.(i);
      pool.(i) <- winner;
      let miner = materialize winner in
      let block = Miner.extend_tip miner ~round ~nonce:winner in
      mined_this_round := block :: !mined_this_round;
      Network.broadcast network
        { Network.sender = winner; sent_round = round; blocks = [ block ] }
    done;
    honest_blocks := !honest_blocks + h;
    if h > 0 then incr h_rounds;
    if h = 1 then incr h1_rounds;
    Pattern.observe pattern (Round_state.of_block_count h);
    Adversary.observe adversary !mined_this_round;
    (* Phase 3: the adversary's nu n sequential queries, as one binomial
       draw (only the count reaches the strategy), then releases. *)
    let successes = Binomial.sample rng adv_dist in
    adversary_blocks := !adversary_blocks + successes;
    let releases = Adversary.act adversary ~round ~successes in
    if releases <> [] then
      Log.debug (fun m ->
          m "round %d: adversary issued %d release(s) (%d successes this round)"
            round (List.length releases) successes);
    List.iter
      (fun { Adversary.audience; delay; blocks } ->
        let msg = { Network.sender = -1; sent_round = round; blocks } in
        match audience with
        | Adversary.All_honest -> Network.broadcast_all network ~delay msg
        | Adversary.Only recipients ->
          List.iter
            (fun recipient ->
              ignore (materialize recipient);
              Network.send_direct network ~recipient ~delay msg)
            recipients)
      releases;
    (match on_round with
    | None -> ()
    | Some report ->
      let best_height =
        Hashtbl.fold
          (fun _ m acc -> max acc (Miner.chain_length m))
          materialized
          (Miner.chain_length crowd)
      in
      report
        {
          round_number = round;
          honest_mined = h;
          adversary_successes = successes;
          releases_issued = List.length releases;
          best_height;
          reorg_depth = !round_reorg;
        });
    if round mod config.snapshot_interval = 0 || round = config.rounds then
      take_snapshot round
  done;
  for round = config.rounds + 1 to config.rounds + config.delta do
    deliver_round round ~track_round_reorg:None
  done;
  {
    config;
    snapshots = List.rev !snapshots;
    god_view = god;
    final_tips = Array.init honest_n tip_of;
    convergence_opportunities = Pattern.count pattern;
    adversary_blocks = !adversary_blocks;
    honest_blocks = !honest_blocks;
    h_rounds = !h_rounds;
    h1_rounds = !h1_rounds;
    max_reorg_depth = !max_reorg;
    adversary_releases = Adversary.reorgs_caused adversary;
    messages_sent = Network.messages_sent network;
    orphans_remaining =
      Hashtbl.fold
        (fun _ m acc -> acc + Miner.orphan_count m)
        materialized
        (if crowd_live () then Miner.orphan_count crowd else 0);
  }

let run ?on_round config =
  Config.validate config;
  match config.mining_mode with
  | Config.Exact -> run_exact ?on_round config
  | Config.Aggregate -> run_aggregate ?on_round config
