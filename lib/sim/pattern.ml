type t = {
  delta : int;
  mutable n_run : int;  (** consecutive N rounds ending at the last round *)
  mutable ever_h : bool;  (** some H has been seen *)
  mutable armed_at : int;  (** round of a qualifying H1, or -1 *)
  mutable round : int;
  mutable count : int;
  mutable last_count_round : int;  (** round of the latest completion, or 0 *)
}

let create ~delta =
  if delta < 1 then invalid_arg "Pattern.create: delta must be >= 1";
  {
    delta;
    n_run = 0;
    ever_h = false;
    armed_at = -1;
    round = 0;
    count = 0;
    last_count_round = 0;
  }

let observe t (s : Round_state.t) =
  t.round <- t.round + 1;
  match s with
  | H k ->
    (* An H inside the armed window kills the pending opportunity.  This H
       itself opens one iff it is H1 and the N run before it is >= Delta
       with an H before the run. *)
    if t.ever_h && t.n_run >= t.delta && k = 1 then t.armed_at <- t.round
    else t.armed_at <- -1;
    t.ever_h <- true;
    t.n_run <- 0
  | N ->
    t.n_run <- t.n_run + 1;
    if t.armed_at >= 0 && t.round = t.armed_at + t.delta then begin
      t.count <- t.count + 1;
      t.last_count_round <- t.round;
      t.armed_at <- -1
    end

(* A span of [rounds] consecutive N rounds collapses to O(1): the only
   state an N round can change is the run length, the round counter and a
   pending completion at armed_at + delta — which, when armed, lies
   strictly after the current round, so at most one completion can fall
   inside the span.  Equivalent to [rounds] calls of [observe t N]. *)
let observe_empty t ~rounds =
  if rounds < 0 then invalid_arg "Pattern.observe_empty: negative rounds";
  if rounds > 0 then begin
    if t.armed_at >= 0 && t.armed_at + t.delta <= t.round + rounds then begin
      t.count <- t.count + 1;
      t.last_count_round <- t.armed_at + t.delta;
      t.armed_at <- -1
    end;
    t.n_run <- t.n_run + rounds;
    t.round <- t.round + rounds
  end

let count t = t.count
let last_count_round t = t.last_count_round
let rounds_seen t = t.round
let observe_all t states = Array.iter (observe t) states

let count_by_rescan ~delta states =
  if delta < 1 then invalid_arg "Pattern.count_by_rescan: delta must be >= 1";
  let len = Array.length states in
  let is_n i = i >= 0 && i < len && not (Round_state.is_h states.(i)) in
  let is_h i = i >= 0 && i < len && Round_state.is_h states.(i) in
  let occurrences = ref 0 in
  (* An opportunity completes at index t (0-based) when:
     - states.(t - delta) is H1,
     - states.(t - delta + 1 .. t) are all N,
     - the N run ending at t - delta - 1 has length d >= delta, and
     - the position just before that run holds an H. *)
  for t = 0 to len - 1 do
    let h1_pos = t - delta in
    if h1_pos >= 0 && Round_state.is_h1 states.(h1_pos) then begin
      let tail_all_n = ref true in
      for i = h1_pos + 1 to t do
        if not (is_n i) then tail_all_n := false
      done;
      if !tail_all_n then begin
        let d = ref 0 in
        while is_n (h1_pos - 1 - !d) do
          incr d
        done;
        if !d >= delta && is_h (h1_pos - 1 - !d) then incr occurrences
      end
    end
  done;
  !occurrences
