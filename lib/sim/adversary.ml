module Block = Nakamoto_chain.Block
module Block_tree = Nakamoto_chain.Block_tree

type audience = All_honest | Only of int list
type release = { audience : audience; delay : int; blocks : Block.t list }

type strategy =
  | Idle
  | Private_chain of { reorg_target : int }
  | Balance of { group_boundary : int }
  | Selfish_mining

type t = {
  strategy : strategy;
  honest_count : int;
  god : Block_tree.t;  (** every block ever mined, withheld included *)
  public : Block_tree.t;  (** honest blocks + released adversarial blocks *)
  mutable private_tip : Block.t;
  mutable fork_base : Block.t;
  mutable withheld : Block.t list;
  mutable branch_a : Block.t;  (** balance: tip pushed to group A *)
  mutable branch_b : Block.t;
  mutable mined : int;
  mutable reorgs : int;
  mutable nonce : int;
}

let create ~strategy ~honest_count =
  if honest_count <= 0 then
    invalid_arg "Adversary.create: honest_count must be positive";
  (match strategy with
  | Private_chain { reorg_target } ->
    if reorg_target < 1 then
      invalid_arg "Adversary.create: reorg_target must be >= 1"
  | Balance { group_boundary } ->
    if group_boundary < 1 || group_boundary >= honest_count then
      invalid_arg "Adversary.create: group_boundary outside [1, honest_count-1]"
  | Idle | Selfish_mining -> ());
  {
    strategy;
    honest_count;
    god = Block_tree.create ();
    public = Block_tree.create ();
    private_tip = Block.genesis;
    fork_base = Block.genesis;
    withheld = [];
    branch_a = Block.genesis;
    branch_b = Block.genesis;
    mined = 0;
    reorgs = 0;
    nonce = 0;
  }

let strategy t = t.strategy

let group_of t (b : Block.t) =
  match t.strategy with
  | Balance { group_boundary } when b.miner >= 0 && b.miner < group_boundary ->
    `A
  | Balance _ -> `B
  | Idle | Private_chain _ | Selfish_mining -> `A

let observe t blocks =
  List.iter
    (fun (b : Block.t) ->
      ignore (Block_tree.insert t.god b);
      ignore (Block_tree.insert t.public b);
      match t.strategy with
      | Balance _ ->
        (* Track the branch each honest group is extending. *)
        (match group_of t b with
        | `A -> if b.height > t.branch_a.Block.height then t.branch_a <- b
        | `B -> if b.height > t.branch_b.Block.height then t.branch_b <- b)
      | Idle | Private_chain _ | Selfish_mining -> ())
    blocks

let mine_on t parent ~round =
  t.nonce <- t.nonce + 1;
  let b =
    Block.mine ~parent ~miner:t.honest_count ~miner_class:Block.Adversarial
      ~round ~nonce:t.nonce ~payload:""
  in
  (match Block_tree.insert t.god b with
  | `Inserted -> ()
  | `Duplicate | `Orphan -> assert false);
  t.mined <- t.mined + 1;
  b

let act_private t ~round ~successes ~reorg_target =
  let public_best = Block_tree.best_tip t.public in
  (* Lost the race: adopt the public tip and fork anew. *)
  if
    t.private_tip.Block.height <= public_best.Block.height
    && not (Block.equal t.private_tip public_best)
  then begin
    t.private_tip <- public_best;
    t.fork_base <- public_best;
    t.withheld <- []
  end;
  for _ = 1 to successes do
    let b = mine_on t t.private_tip ~round in
    t.private_tip <- b;
    t.withheld <- b :: t.withheld
  done;
  let public_best = Block_tree.best_tip t.public in
  let public_lead = public_best.Block.height - t.fork_base.Block.height in
  if
    t.withheld <> []
    && t.private_tip.Block.height > public_best.Block.height
    && public_lead >= reorg_target
  then begin
    (* Release: every honest player reorgs at least [public_lead] deep. *)
    let blocks = List.rev t.withheld in
    List.iter (fun b -> ignore (Block_tree.insert t.public b)) blocks;
    t.withheld <- [];
    t.fork_base <- t.private_tip;
    t.reorgs <- t.reorgs + 1;
    [ { audience = All_honest; delay = 1; blocks } ]
  end
  else []

let act_balance t ~round ~successes ~group_boundary =
  let group_a = List.init group_boundary Fun.id in
  let group_b =
    List.init (t.honest_count - group_boundary) (fun i -> group_boundary + i)
  in
  let releases = ref [] in
  for _ = 1 to successes do
    let target_a = t.branch_a.Block.height <= t.branch_b.Block.height in
    let parent = if target_a then t.branch_a else t.branch_b in
    let b = mine_on t parent ~round in
    ignore (Block_tree.insert t.public b);
    if target_a then t.branch_a <- b else t.branch_b <- b;
    let near, far = if target_a then (group_a, group_b) else (group_b, group_a) in
    releases :=
      { audience = Only far; delay = max_int; blocks = [ b ] }
      :: { audience = Only near; delay = 1; blocks = [ b ] }
      :: !releases
  done;
  List.rev !releases

(* Eyal-Sirer selfish mining (gamma = 0 under our honest-preferring
   tie-break).  The lead walk runs over the withheld branch:
   - a success extends the private branch silently;
   - when the public chain ties the private tip, publish the whole branch
     (the race state: our blocks lose height ties, so winning requires
     mining the next block first — which the adversary attempts by staying
     on its own tip);
   - when the public chain passes the private tip, abandon and re-fork
     from the public best;
   - when the public chain comes within one of a lead >= 2, publish
     everything and bank the whole branch. *)
let act_selfish t ~round ~successes =
  let publish () =
    match t.withheld with
    | [] -> []
    | withheld ->
      let blocks = List.rev withheld in
      List.iter (fun b -> ignore (Block_tree.insert t.public b)) blocks;
      t.withheld <- [];
      t.fork_base <- t.private_tip;
      t.reorgs <- t.reorgs + 1;
      [ { audience = All_honest; delay = 1; blocks } ]
  in
  (* React to honest progress since the last round. *)
  let public_best = Block_tree.best_tip t.public in
  let lead = t.private_tip.Block.height - public_best.Block.height in
  let releases =
    if t.withheld = [] then begin
      (* No private branch: follow the public tip. *)
      t.private_tip <- public_best;
      t.fork_base <- public_best;
      []
    end
    else if lead < 0 then begin
      (* Passed: abandon the branch. *)
      t.private_tip <- public_best;
      t.fork_base <- public_best;
      t.withheld <- [];
      []
    end
    else if lead = 0 then
      (* Tied: race by publishing the branch (gamma = 0 -> ties lose, but
         a further private success on top wins by height). *)
      publish ()
    else if lead = 1 && t.private_tip.Block.height - t.fork_base.Block.height >= 2
    then
      (* The classic "lead shrank to 1": bank everything. *)
      publish ()
    else []
  in
  for _ = 1 to successes do
    let b = mine_on t t.private_tip ~round in
    t.private_tip <- b;
    t.withheld <- b :: t.withheld
  done;
  releases

let act t ~round ~successes =
  if round < 0 || successes < 0 then invalid_arg "Adversary.act: negative input";
  match t.strategy with
  | Idle -> []
  | Private_chain { reorg_target } -> act_private t ~round ~successes ~reorg_target
  | Balance { group_boundary } -> act_balance t ~round ~successes ~group_boundary
  | Selfish_mining -> act_selfish t ~round ~successes

(* Every strategy is event-driven: with no successes and no observation
   since the previous [act], a further [act ~successes:0] can only re-run
   the (idempotent) normalization it already ran and can never schedule a
   release — releases require either fresh honest progress (delivered via
   [observe] at a simulated round) or fresh adversarial blocks.  One real
   [act] call at the head of the span both performs that normalization and
   verifies the claim at run time, so a future time-dependent strategy
   fails loudly here instead of silently losing its releases. *)
let advance_empty t ~round ~rounds =
  if round < 0 || rounds < 0 then
    invalid_arg "Adversary.advance_empty: negative input";
  if rounds > 0 then
    match act t ~round ~successes:0 with
    | [] -> ()
    | _ :: _ ->
      failwith
        "Adversary.advance_empty: strategy released during an empty span"

let delay_policy_for strategy ~delta ~honest_count:_ =
  match strategy with
  | Idle | Selfish_mining -> Nakamoto_net.Network.Immediate
  | Private_chain _ -> Nakamoto_net.Network.Maximal
  | Balance { group_boundary } ->
    let group i = if i < group_boundary then `A else `B in
    Nakamoto_net.Network.Per_recipient
      (fun ~recipient (msg : Nakamoto_net.Network.message) ->
        if msg.sender < 0 then 1
        else if group msg.sender = group recipient then 1
        else delta)

let view t = t.god

let private_tip t =
  match t.strategy with
  | Idle -> Block_tree.best_tip t.public
  | Private_chain _ | Selfish_mining -> t.private_tip
  | Balance _ ->
    if t.branch_a.Block.height <= t.branch_b.Block.height then t.branch_a
    else t.branch_b

let blocks_mined t = t.mined
let reorgs_caused t = t.reorgs
